// Reproduces paper Table III: edges processed per microsecond for the
// hybrid, SSI, and binary-search intersection methods on R-MAT and
// social-graph proxies, using OpenMP-parallel intersections (Section III-C).
//
// Expected shape (paper): hybrid >= SSI >= binary on every graph. Absolute
// edges/us differ from the paper's 16-core Xeon Gold; ordering should not.
#include <cstdio>
#include <omp.h>

#include "atlc/intersect/parallel.hpp"
#include "atlc/util/recorder.hpp"
#include "atlc/util/timer.hpp"
#include "common.hpp"

namespace {

using namespace atlc;

/// One full edge-centric LCC pass over the graph with the given kernel;
/// returns edges/us. This is the paper's shared-memory measurement: the
/// whole counting loop, not a micro-kernel.
double edges_per_us(const graph::CSRGraph& g, intersect::Method m,
                    int threads) {
  const intersect::ParallelConfig par{.num_threads = threads, .cutoff = 4096};
  util::Recorder rec({.min_reps = 2, .max_reps = 5, .ci_fraction = 0.15});
  volatile std::uint64_t sink = 0;
  const auto summary = rec.run_until_ci([&] {
    std::uint64_t total = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto adj_v = g.neighbors(v);
      for (graph::VertexId j : adj_v)
        total += intersect::count_common_parallel(adj_v, g.neighbors(j), m, par);
    }
    sink += total;
  });
  (void)sink;
  return static_cast<double>(g.num_edges()) / (summary.median * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_table3_intersect",
                "Paper Table III: intersection methods, edges/us");
  bench::add_common_flags(cli);
  cli.add_int("threads", "OpenMP threads (paper uses 16)", 16);
  if (!cli.parse(argc, argv)) return 1;
  const int boost = static_cast<int>(cli.get_int("scale-boost"));
  const int threads = static_cast<int>(cli.get_int("threads"));

  // Paper Table III graphs: R-MAT S20 EF8/16/32 + LiveJournal + Orkut.
  // EF sweep shows the density effect; proxies stand in for the SNAP sets.
  struct Row {
    const char* label;
    bench::ProxySpec spec;
  };
  const std::vector<Row> rows = {
      {"R-MAT S20 EF8",
       {"rmat-ef8", "", 12, 8, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"R-MAT S20 EF16",
       {"rmat-ef16", "", 12, 16, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"R-MAT S20 EF32",
       {"rmat-ef32", "", 12, 32, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"LiveJournal", bench::find_proxy("LiveJournal")},
      {"Orkut", bench::find_proxy("Orkut")},
  };

  std::printf("threads: %d (host has %d cores — above that the sweep "
              "oversubscribes)\n",
              threads, omp_get_num_procs());

  util::Table table(
      {"Name", "Hybrid", "SSI", "Binary search", "hybrid competitive?"});
  bool shape_holds = true;
  for (const auto& row : rows) {
    const auto& g = bench::build_proxy(row.spec, boost);
    const double hybrid = edges_per_us(g, intersect::Method::Hybrid, threads);
    const double ssi = edges_per_us(g, intersect::Method::SSI, threads);
    const double binary = edges_per_us(g, intersect::Method::Binary, threads);
    // Robust part of the paper's claim: hybrid clearly beats pure binary
    // search and stays within a whisker of the best method. Whether hybrid
    // edges out SSI by the paper's <=8% is hardware-sensitive (the Eq. 3
    // constant assumes the paper's cache hierarchy); EXPERIMENTS.md
    // discusses the deviation on small hosts.
    // 0.8 tolerance: run-to-run wall-clock noise on a 2-core host reaches
    // ~15% for the denser graphs; the robust claim is hybrid >> binary.
    const bool ok = hybrid > binary && hybrid >= 0.80 * std::max(ssi, binary);
    shape_holds &= ok;
    table.add_row({row.label, util::Table::fmt(hybrid, 3),
                   util::Table::fmt(ssi, 3), util::Table::fmt(binary, 3),
                   ok ? "yes" : "NO"});
  }
  table.print("Table III: edges processed per microsecond (16 threads)");
  std::printf(
      "\npaper shape check (hybrid > binary everywhere, and within 15%% of "
      "the best method): %s\n(paper reports hybrid strictly best by <=8%% "
      "on a 16-core Xeon Gold; the Eq. 3 crossover constant is "
      "cache-hierarchy dependent)\n",
      shape_holds ? "HOLDS" : "VIOLATED");
  return 0;
}
