#include "scenario.hpp"

#include <algorithm>

#include "atlc/obs/metrics.hpp"

namespace atlc::bench {

namespace {

std::vector<Scenario>& mutable_registry() {
  static std::vector<Scenario> registry;
  return registry;
}

}  // namespace

void register_scenario(Scenario s) {
  mutable_registry().push_back(std::move(s));
  std::sort(mutable_registry().begin(), mutable_registry().end(),
            [](const Scenario& a, const Scenario& b) { return a.name < b.name; });
}

const std::vector<Scenario>& scenarios() { return mutable_registry(); }

const Scenario* find_scenario(std::string_view name) {
  for (const auto& s : scenarios())
    if (s.name == name) return &s;
  return nullptr;
}

int ScenarioContext::boost() const {
  return static_cast<int>(cli.get_int("scale-boost")) +
         (smoke ? kSmokeBoost : 0);
}

const intersect::CostModel& ScenarioContext::cost() const {
  if (!calibrate) {
    // Fixed constants keep every virtual-time metric bit-deterministic
    // across hosts — the property bench_compare's gate relies on.
    static const intersect::CostModel fixed{};
    return fixed;
  }
  return calibrated_cost();
}

const graph::CSRGraph& ScenarioContext::graph(ProxySpec spec) const {
  spec.seed += seed;
  return build_proxy(spec, boost());
}

const graph::CSRGraph& ScenarioContext::graph(
    const std::string& proxy_name) const {
  return graph(find_proxy(proxy_name));
}

const graph::CSRGraph& ScenarioContext::graph_or_file(
    const std::string& proxy_name) const {
  const std::string& path = cli.get_string("graph-file");
  if (!path.empty()) {
    // Memoised so repeated calls within one scenario reuse the load.
    static std::map<std::string, graph::CSRGraph> cache;
    auto it = cache.find(path);
    if (it != cache.end()) return it->second;
    auto edges = graph::load_text_edges(path, Directedness::Undirected);
    graph::clean(edges, {.relabel_seed = 1});
    return cache.emplace(path, CSRGraph::from_edges(edges)).first->second;
  }
  return graph(proxy_name);
}

core::RunResult ScenarioContext::run_lcc_trials(
    const std::string& metric, const util::BenchRecorder::MetricOptions& opts,
    const graph::CSRGraph& g, std::uint32_t ranks, core::EngineConfig cfg,
    graph::PartitionKind partition) const {
  rec.declare_metric(metric, opts);
  cfg.cost = cost();
  core::RunResult last;
  for (std::size_t trial = 0; trial < std::max<std::size_t>(1, repeats);
       ++trial) {
    // Fresh collector per trial so each record's breakdown covers exactly
    // one run. Tracing charges no virtual time, so traced and untraced
    // trials report identical makespans.
    obs::TraceCollector trace;
    cfg.trace = phase_breakdown ? &trace : nullptr;
    auto r = core::run_distributed_lcc(g, ranks, cfg, {}, partition);
    util::Json detail = util::Json::object();
    detail["wall_seconds"] = r.run.wall_seconds;
    detail["global_triangles"] = r.global_triangles;
    detail["remote_edge_fraction"] = r.remote_edge_fraction();
    detail["comm"] = util::to_json(r.run.total());
    if (cfg.use_cache) {
      detail["offsets_cache"] = util::to_json(r.offsets_cache_total);
      detail["adj_cache"] = util::to_json(r.adj_cache_total);
    }
    if (phase_breakdown) {
      obs::MetricsRegistry reg;
      reg.ingest(trace);
      detail["phases"] = reg.causes_json();
    }
    rec.add_trial(metric, r.run.makespan, std::move(detail));
    last = std::move(r);
  }
  return last;
}

tric::TricResult ScenarioContext::run_tric_trials(
    const std::string& metric, const util::BenchRecorder::MetricOptions& opts,
    const graph::CSRGraph& g, std::uint32_t ranks, tric::TricConfig cfg) const {
  rec.declare_metric(metric, opts);
  cfg.cost = cost();
  tric::TricResult last;
  for (std::size_t trial = 0; trial < std::max<std::size_t>(1, repeats);
       ++trial) {
    auto r = tric::run_tric(g, ranks, cfg);
    util::Json detail = util::Json::object();
    detail["wall_seconds"] = r.run.wall_seconds;
    detail["comm"] = util::to_json(r.run.total());
    rec.add_trial(metric, r.run.makespan, std::move(detail));
    last = std::move(r);
  }
  return last;
}

}  // namespace atlc::bench
