// Reproduces paper Table II: the graph inventory with |V|, |E| and the CSR
// size after one-degree removal, for every proxy dataset used by the other
// benches (plus structure metrics justifying each proxy).
#include <cstdio>

#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/reference.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace atlc;
  util::Cli cli("bench_table2_graphs",
                "Paper Table II: graphs used in this reproduction");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const int boost = static_cast<int>(cli.get_int("scale-boost"));

  util::Table table({"Name", "Proxy", "|V|", "|E|", "CSR Size", "max deg",
                     "power-law alpha", "gini"});
  for (const auto& spec : bench::proxy_registry()) {
    const auto& g = bench::build_proxy(spec, boost);
    const auto st = graph::degree_stats(g);
    table.add_row({spec.name, spec.proxy_desc,
                   util::Table::fmt_int(g.num_vertices()),
                   util::Table::fmt_int(g.num_edges()),
                   util::Table::fmt_bytes(g.csr_bytes()),
                   util::Table::fmt_int(st.max), util::Table::fmt(st.power_law_alpha, 2),
                   util::Table::fmt(st.gini, 2)});
  }
  table.print("Table II: graphs used in this paper (scaled proxies)");
  std::printf(
      "\nNote: proxies are scaled to container size; --scale-boost=N grows "
      "them toward the paper's sizes (see DESIGN.md section 1).\n");
  return 0;
}
