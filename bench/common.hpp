#pragma once

// Shared helpers for the atlc_bench scenarios (see scenario.hpp for the
// registry).
//
// Every scenario runs WITHOUT arguments using proxy graphs scaled to fit a
// small container (see DESIGN.md section 1 for the proxy rationale), and
// accepts --scale-boost=N to grow every proxy by N R-MAT scale steps toward
// the paper's sizes, plus --graph-file=PATH to run on a real SNAP edge list
// when one is available offline.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "atlc/graph/clean.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/io.hpp"
#include "atlc/intersect/cost_model.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/table.hpp"

namespace atlc::bench {

using graph::CSRGraph;
using graph::Directedness;

/// A named proxy for one of the paper's Table II graphs.
struct ProxySpec {
  std::string name;        ///< paper's dataset name
  std::string proxy_desc;  ///< how the proxy is generated
  unsigned scale;          ///< R-MAT scale at boost 0 (ignored for circles/uniform)
  unsigned edge_factor;
  Directedness dir;
  std::uint64_t seed;
  enum class Kind { Rmat, Uniform, Circles } kind;
};

/// The proxy registry. Scales are chosen so that every bench completes in
/// tens of seconds on two cores; the *structure* (degree skew, clustering)
/// matches the original dataset class. Paper graphs: Table II.
inline const std::vector<ProxySpec>& proxy_registry() {
  static const std::vector<ProxySpec> specs = {
      // Scale-free R-MAT instances the paper generates itself.
      {"R-MAT-S21-EF16", "R-MAT a=.57 b=c=.19 d=.05 (paper S21)", 13, 16,
       Directedness::Undirected, 21, ProxySpec::Kind::Rmat},
      {"R-MAT-S23-EF16", "R-MAT (paper S23)", 14, 16,
       Directedness::Undirected, 23, ProxySpec::Kind::Rmat},
      {"R-MAT-S30-EF16", "R-MAT (paper S30)", 15, 16,
       Directedness::Undirected, 30, ProxySpec::Kind::Rmat},
      // Real-graph proxies: edge factor matched to the dataset's m/n ratio,
      // R-MAT skew stands in for the social/web power law.
      {"Orkut", "R-MAT EF=39 proxy (3M/117M social graph)", 12, 39,
       Directedness::Undirected, 101, ProxySpec::Kind::Rmat},
      {"LiveJournal", "R-MAT EF=9 proxy (4M/34.7M social graph)", 13, 9,
       Directedness::Undirected, 102, ProxySpec::Kind::Rmat},
      {"LiveJournal1", "R-MAT EF=14 proxy (4.8M/69M, paper runs directed)",
       13, 14, Directedness::Undirected, 103, ProxySpec::Kind::Rmat},
      {"Skitter", "R-MAT EF=7 proxy (1.7M/11.1M internet topology)", 13, 7,
       Directedness::Undirected, 104, ProxySpec::Kind::Rmat},
      {"uk-2005", "R-MAT EF=24 proxy (39.5M/936M web crawl)", 13, 24,
       Directedness::Undirected, 105, ProxySpec::Kind::Rmat},
      {"wiki-en", "R-MAT EF=32 proxy (13.6M/437M hyperlink graph)", 13, 32,
       Directedness::Undirected, 106, ProxySpec::Kind::Rmat},
      {"Facebook-circles", "social-circles generator (4k/88k ego nets)", 12,
       0, Directedness::Undirected, 107, ProxySpec::Kind::Circles},
      {"Uniform", "Erdos-Renyi control (flat degrees, paper Fig. 4)", 13, 16,
       Directedness::Undirected, 108, ProxySpec::Kind::Uniform},
  };
  return specs;
}

inline const ProxySpec& find_proxy(const std::string& name) {
  for (const auto& s : proxy_registry())
    if (s.name == name) return s;
  std::fprintf(stderr, "unknown proxy graph: %s\n", name.c_str());
  std::abort();
}

/// Build (and memoise) a proxy graph. `scale_boost` raises the R-MAT scale
/// toward paper sizes.
inline const CSRGraph& build_proxy(const ProxySpec& spec, int scale_boost = 0) {
  static std::map<std::string, CSRGraph> cache;
  // Every generator input participates in the key: ad-hoc specs may reuse a
  // name across scenarios, and the harness's --seed offsets spec seeds.
  const std::string key =
      spec.name + "+" + std::to_string(scale_boost) + "+" +
      std::to_string(spec.seed) + "+" + std::to_string(spec.scale) + "+" +
      std::to_string(spec.edge_factor) + "+" +
      std::to_string(static_cast<int>(spec.kind)) + "+" +
      std::to_string(static_cast<int>(spec.dir));
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  // Clamp so the smoke shrink (negative boost) can never underflow into a
  // degenerate or wrapped-around scale.
  const unsigned scale = static_cast<unsigned>(
      std::max(6, static_cast<int>(spec.scale) + scale_boost));
  graph::EdgeList edges;
  switch (spec.kind) {
    case ProxySpec::Kind::Rmat:
      edges = graph::generate_rmat({.scale = scale,
                                    .edge_factor = spec.edge_factor,
                                    .seed = spec.seed,
                                    .directedness = spec.dir});
      break;
    case ProxySpec::Kind::Uniform:
      edges = graph::generate_uniform(
          {.num_vertices = graph::VertexId{1} << scale,
           .num_edges = (std::uint64_t{1} << scale) * spec.edge_factor,
           .seed = spec.seed,
           .directedness = spec.dir});
      break;
    case ProxySpec::Kind::Circles:
      edges = graph::generate_circles(
          {.num_vertices = graph::VertexId{1} << scale, .seed = spec.seed});
      break;
  }
  // Paper Section II-B pipeline: dedup, drop degree<2, random relabel.
  graph::clean(edges, {.relabel_seed = spec.seed * 7919 + 13});
  auto [ins, ok] = cache.emplace(key, CSRGraph::from_edges(edges));
  return ins->second;
}

/// Register the flags every bench shares.
inline void add_common_flags(util::Cli& cli) {
  cli.add_int("scale-boost",
              "grow every proxy by this many R-MAT scale steps "
              "(each step doubles vertices; paper scale needs +6..+8)",
              0);
  cli.add_string("graph-file",
                 "run on a real whitespace edge list (SNAP format) instead "
                 "of the synthetic proxy",
                 "");
}

/// Calibrated intersection-cost model, measured once per process.
inline const intersect::CostModel& calibrated_cost() {
  static const intersect::CostModel m = intersect::CostModel::calibrate();
  return m;
}

/// One-line graph description for bench headers.
inline std::string describe(const CSRGraph& g) {
  const auto st = graph::degree_stats(g);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|V|=%u |E|=%llu CSR=%s max_deg=%u gini=%.2f",
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                util::Table::fmt_bytes(g.csr_bytes()).c_str(), st.max,
                st.gini);
  return buf;
}

}  // namespace atlc::bench
