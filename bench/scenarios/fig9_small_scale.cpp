// Paper Fig. 9: small-scale strong scaling (4..64 nodes) of LCC non-cached
// vs LCC cached vs TriC vs TriC-Buffered on six graphs, plus the
// Section IV-D2 text metrics (remote-read fraction and communication share
// of total time).
//
// Expected shape (paper):
//  - async LCC scales ~9-14x from 4 to 64 nodes on scale-free graphs;
//  - caching wins in the mid-range (up to 67% on R-MAT S21), loses when
//    over-partitioned (compulsory misses, e.g. LiveJournal at 64 nodes);
//  - TriC is 1-2 orders of magnitude slower on scale-free graphs;
//  - remote-read fraction grows toward ~98% and communication dominates.
#include <cstdio>

#include "scenario.hpp"

namespace {

using namespace atlc;

double comm_share(const rma::Runtime::Result& r) {
  double comm = 0, total = 0;
  for (const auto& s : r.stats) {
    comm += s.comm_seconds;
    total += s.comm_seconds + s.compute_seconds;
  }
  return total > 0 ? comm / total : 0.0;
}

void add_flags(util::Cli& cli) {
  cli.add_flag("skip-tric", "skip the TriC baselines (they dominate runtime "
               "by design — that is the paper's point)", false);
  cli.add_double("cache-budget-frac",
                 "cache budget as a fraction of the graph's CSR size "
                 "(paper: 16 GiB/node at paper-scale graphs)", 0.5);
}

void run(bench::ScenarioContext& ctx) {
  const bool skip_tric = ctx.cli.get_flag("skip-tric");
  const double budget_frac = ctx.cli.get_double("cache-budget-frac");

  std::vector<std::string> graphs = {"R-MAT-S21-EF16", "R-MAT-S23-EF16",
                                     "Orkut",          "LiveJournal",
                                     "Skitter",        "LiveJournal1"};
  std::vector<std::uint32_t> nodes = {4, 8, 16, 32, 64};
  if (ctx.smoke) {
    graphs = {"R-MAT-S21-EF16", "LiveJournal"};
    nodes = {4, 8};
  }

  for (const auto& name : graphs) {
    const auto& g = ctx.graph(name);
    std::printf("\n### %s — %s\n", name.c_str(), bench::describe(g).c_str());

    util::Table table({"Nodes", "LCC non-cached (s)", "LCC cached (s)",
                       "TriC (s)", "TriC-Buffered (s)", "cached vs plain",
                       "remote edges", "comm share"});
    double first_plain = 0;
    double last_plain = 0;
    for (std::uint32_t p : nodes) {
      const bool gate = name == "R-MAT-S21-EF16" && p == nodes.front();
      char metric[96];
      std::snprintf(metric, sizeof(metric), "makespan/plain/%s/p%u",
                    name.c_str(), p);
      const auto plain =
          ctx.run_lcc_trials(metric, {.gate = gate}, g, p, {});

      core::EngineConfig cached_cfg;
      cached_cfg.use_cache = true;
      cached_cfg.victim_policy = clampi::VictimPolicy::UserScore;
      cached_cfg.cache_sizing = core::CacheSizing::paper_default(
          g.num_vertices(),
          static_cast<std::uint64_t>(budget_frac *
                                     static_cast<double>(g.csr_bytes())));
      std::snprintf(metric, sizeof(metric), "makespan/cached/%s/p%u",
                    name.c_str(), p);
      const auto cached =
          ctx.run_lcc_trials(metric, {.gate = gate}, g, p, cached_cfg);

      std::string tric_s = "-", tric_buf_s = "-";
      if (!skip_tric) {
        tric::TricConfig tc;
        std::snprintf(metric, sizeof(metric), "makespan/tric/%s/p%u",
                      name.c_str(), p);
        const auto tr = ctx.run_tric_trials(metric, {}, g, p, tc);
        tric_s = util::Table::fmt(tr.run.makespan, 3);
        tric::TricConfig tb = tc;
        // Paper: 16 MiB per-peer buffers at paper-scale graphs; scaled
        // proportionally to the proxy size so the buffered variant's extra
        // rounds actually trigger.
        tb.buffer_entries = 64u << 10;
        std::snprintf(metric, sizeof(metric), "makespan/tric_buf/%s/p%u",
                      name.c_str(), p);
        tric_buf_s = util::Table::fmt(
            ctx.run_tric_trials(metric, {}, g, p, tb).run.makespan, 3);
      }

      if (p == nodes.front()) first_plain = plain.run.makespan;
      last_plain = plain.run.makespan;
      const double saving = 1.0 - cached.run.makespan / plain.run.makespan;
      table.add_row(
          {util::Table::fmt_int(p), util::Table::fmt(plain.run.makespan, 3),
           util::Table::fmt(cached.run.makespan, 3), tric_s, tric_buf_s,
           util::Table::fmt_percent(saving),
           util::Table::fmt_percent(plain.remote_edge_fraction()),
           util::Table::fmt_percent(comm_share(plain.run))});
    }
    table.print("Fig. 9 strong scaling: " + name);
    ctx.rec.add_table("Fig. 9 strong scaling: " + name, table);
    std::printf("async speedup %u -> %u nodes: %.1fx "
                "(paper: 9.2x-14x depending on graph)\n",
                nodes.front(), nodes.back(), first_plain / last_plain);
    char note[128];
    std::snprintf(note, sizeof(note),
                  "%s: async speedup %u -> %u nodes = %.1fx (paper: "
                  "9.2x-14x at full scale)",
                  name.c_str(), nodes.front(), nodes.back(),
                  first_plain / last_plain);
    ctx.rec.add_note(note);
  }

  std::printf(
      "\npaper shape checks: (1) async scales ~10x from 4 to 64 nodes; "
      "(2) caching helps mid-range, hurts when over-partitioned; (3) TriC "
      "is 1-2 orders of magnitude slower on scale-free graphs; (4) the "
      "remote-edge fraction and comm share climb with the node count "
      "(Section IV-D2: 66%%->98%% and 78.9%%->97.7%%).\n");
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig9, "fig9", "Fig. 9",
                       "strong scaling 4..64 nodes, all systems", add_flags,
                       run)
