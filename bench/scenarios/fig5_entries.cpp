// Paper Fig. 5: on the Facebook-circles graph over two nodes, (left) the
// number of remote accesses per vertex correlates with vertex degree, and
// (right) C_adj cache entry sizes equal the degrees of cached vertices —
// the observations (3.1, 3.2) that justify degree-based scores.
#include <algorithm>
#include <cstdio>

#include "scenario.hpp"

namespace {

using namespace atlc;

void run(bench::ScenarioContext& ctx) {
  const auto& g = ctx.graph_or_file("Facebook-circles");
  std::printf("graph: %s\n", bench::describe(g).c_str());

  core::EngineConfig cfg;
  cfg.use_cache = true;
  cfg.track_remote_reads = true;
  cfg.dump_cache_entries = true;
  cfg.cache_sizing = core::CacheSizing::paper_default(
      g.num_vertices(), g.csr_bytes());  // ample cache: keep everything seen
  const auto result =
      ctx.run_lcc_trials("makespan/cached_ample", {.gate = true}, g, 2, cfg);

  // Left plot: bucket vertices by degree, report mean remote accesses.
  graph::VertexId max_deg = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    max_deg = std::max(max_deg, g.degree(v));
  const graph::VertexId bucket_width =
      std::max<graph::VertexId>(1, max_deg / 8);

  struct Bucket {
    std::uint64_t vertices = 0;
    std::uint64_t reads = 0;
  };
  std::vector<Bucket> buckets(9);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    auto& b = buckets[std::min<std::size_t>(8, g.degree(v) / bucket_width)];
    ++b.vertices;
    b.reads += result.remote_reads[v];
  }
  util::Table left({"Vertex degree range", "vertices",
                    "mean remote accesses"});
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].vertices == 0) continue;
    char range[48];
    std::snprintf(range, sizeof(range), "[%u, %u)",
                  static_cast<unsigned>(i * bucket_width),
                  static_cast<unsigned>((i + 1) * bucket_width));
    left.add_row({range, util::Table::fmt_int(buckets[i].vertices),
                  util::Table::fmt(static_cast<double>(buckets[i].reads) /
                                       static_cast<double>(buckets[i].vertices),
                                   2)});
  }
  left.print("Fig. 5 (left): remote accesses vs vertex degree (C_offsets view)");
  ctx.rec.add_table("Fig. 5 (left): remote accesses vs vertex degree", left);

  // Right plot: C_adj entries — size in bytes (== 4 * degree of the cached
  // vertex) against the degree score recorded at insertion.
  const auto& entries = result.adj_cache_entries;
  util::Table right({"metric", "value"});
  std::uint64_t min_b = ~0ull, max_b = 0, sum_b = 0;
  bool sizes_track_scores = true;
  for (const auto& e : entries) {
    min_b = std::min(min_b, e.key.bytes);
    max_b = std::max(max_b, e.key.bytes);
    sum_b += e.key.bytes;
    // Observation 3.1: entry size == 4 * degree == 4 * insertion score.
    if (e.key.bytes != 4 * static_cast<std::uint64_t>(e.user_score))
      sizes_track_scores = false;
  }
  right.add_row({"C_adj entries cached", util::Table::fmt_int(entries.size())});
  if (!entries.empty()) {
    right.add_row({"min entry size", util::Table::fmt_bytes(min_b)});
    right.add_row({"max entry size", util::Table::fmt_bytes(max_b)});
    right.add_row({"mean entry size",
                   util::Table::fmt_bytes(sum_b / entries.size())});
  }
  right.add_row({"entry size == 4 x degree (Obs. 3.1)",
                 sizes_track_scores ? "HOLDS" : "VIOLATED"});
  right.print("Fig. 5 (right): C_adj cache entry sizes");
  ctx.rec.add_table("Fig. 5 (right): C_adj cache entry sizes", right);
  ctx.rec.add_note(std::string("Obs. 3.1 (entry size == 4 x degree): ") +
                   (sizes_track_scores ? "HOLDS" : "VIOLATED"));

  // Shape check: reads per vertex grow with degree.
  double low = 0, high = 0;
  if (buckets[0].vertices && buckets[8].vertices) {
    low = static_cast<double>(buckets[0].reads) / buckets[0].vertices;
    high = static_cast<double>(buckets[8].reads) / buckets[8].vertices;
  }
  std::printf("\npaper shape check (reuse correlates with degree): "
              "low-degree mean %.2f vs top-degree mean %.2f -> %s\n",
              low, high, high > 2 * low ? "HOLDS" : "check manually");
  ctx.rec.add_note(std::string("reuse correlates with degree: ") +
                   (high > 2 * low ? "HOLDS" : "check manually"));
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig5, "fig5", "Fig. 5",
                       "reuse and cache entry sizes vs degree, 2 nodes",
                       nullptr, run)
