// Grid2D scenario: strong-scaling crossover of the partition strategies
// (DESIGN.md §10, docs/partitioning.md).
//
// Sweeps ranks 8..64 on the skewed R-MAT proxy with the paper's CLaMPI
// cache enabled, comparing block1d (the paper default), degree1d + 1% hub
// replication (the PR-5 skew toolkit), and grid2d (2D edge blocks with
// segment-granular fetching). Expectation: at low rank counts the 1D
// strategies win — grid2d pays two segment fetches per (edge, block) item
// and its per-item payloads are smaller, so fixed get latency dominates.
// As p grows, 1D remote rows are fetched whole by every consumer while
// grid2d moves only the O(row/√p)-sized slices a rank actually intersects,
// and the pc-way column split caps any one rank's share of a hub row — so
// grid2d's imbalance stays flat and its byte volume is a fraction of the 1D
// arms' while their straggler gap widens. The note reports whether the
// makespan curves cross in the swept range (at proxy scales the fixed
// per-get latency usually keeps the 1D arms ahead on makespan; the 2D win
// is the balance/bytes trend, see docs/partitioning.md).
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("max-ranks", "largest simulated rank count in the sweep", 64);
}

struct Arm {
  const char* label;
  graph::PartitionKind kind;
  double hub_fraction;
};

void run(bench::ScenarioContext& ctx) {
  // Smoke keeps the 8/16 pair: one square grid (4x4) and one rectangular
  // (2x4), so both Grid2D shapes stay covered by the gated baseline while
  // the 32/64-rank points remain full-run-only.
  const std::vector<std::uint32_t> rank_counts =
      ctx.smoke ? std::vector<std::uint32_t>{8, 16}
                : [&] {
                    std::vector<std::uint32_t> r;
                    const auto max_ranks = static_cast<std::uint32_t>(
                        ctx.cli.get_int("max-ranks"));
                    for (std::uint32_t p = 8; p <= max_ranks; p *= 2)
                      r.push_back(p);
                    return r;
                  }();

  const Arm arms[] = {
      {"block1d", graph::PartitionKind::Block1D, 0.0},
      {"degree1d+hubs", graph::PartitionKind::DegreeBalanced1D, 0.01},
      {"grid2d", graph::PartitionKind::Grid2D, 0.0},
  };

  const auto& g = ctx.graph("R-MAT-S21-EF16");
  std::printf("graph rmat: %s\n", bench::describe(g).c_str());

  // makespan[arm][rank point], for the crossover scan below.
  std::vector<std::vector<double>> makespans(std::size(arms));

  util::Table t({"Partition", "ranks", "makespan (s)", "imbalance (max/mean)",
                 "remote gets", "segment gets", "remote MiB", "adj hit %"});
  for (std::size_t a = 0; a < std::size(arms); ++a) {
    const Arm& arm = arms[a];
    for (const std::uint32_t ranks : rank_counts) {
      core::EngineConfig cfg;
      cfg.use_cache = true;
      cfg.cache_sizing = core::CacheSizing::paper_default(g.num_vertices(),
                                                          g.csr_bytes() / 2);
      cfg.hub_fraction = arm.hub_fraction;

      const std::string metric = std::string("makespan/rmat/") + arm.label +
                                 "/r" + std::to_string(ranks);
      const auto r =
          ctx.run_lcc_trials(metric, {.gate = true}, g, ranks, cfg, arm.kind);

      const auto total = r.run.total();
      makespans[a].push_back(r.run.makespan);
      t.add_row({arm.label, std::to_string(ranks),
                 util::Table::fmt(r.run.makespan, 4),
                 util::Table::fmt(r.imbalance(), 3),
                 util::Table::fmt(static_cast<double>(total.remote_gets), 0),
                 util::Table::fmt(static_cast<double>(total.segment_gets), 0),
                 util::Table::fmt(static_cast<double>(total.remote_bytes) /
                                      (1024.0 * 1024.0),
                                  2),
                 util::Table::fmt(100.0 * r.adj_cache_total.hit_rate(), 1)});
    }
  }
  t.print("strong scaling: block1d vs degree1d+hubs vs grid2d (skewed R-MAT)");
  ctx.rec.add_table("grid2d strong-scaling crossover", t);

  // Crossover: the first rank count where grid2d beats the stronger 1D arm.
  const auto& grid = makespans[2];
  std::uint32_t crossover = 0;
  for (std::size_t i = 0; i < rank_counts.size(); ++i) {
    const double best_1d = std::min(makespans[0][i], makespans[1][i]);
    if (grid[i] < best_1d) {
      crossover = rank_counts[i];
      break;
    }
  }
  char note[200];
  if (crossover != 0)
    std::snprintf(note, sizeof(note),
                  "crossover: grid2d first beats the best 1D arm at %u ranks",
                  crossover);
  else
    std::snprintf(note, sizeof(note),
                  "crossover: none up to %u ranks — 1D arms hold on makespan "
                  "(fixed per-get latency dominates grid2d's doubled fetch "
                  "count at this proxy scale; grid2d still wins imbalance "
                  "growth and bytes moved)",
                  rank_counts.back());
  std::printf("%s\n", note);
  ctx.rec.add_note(note);
}

}  // namespace

ATLC_REGISTER_SCENARIO(grid2d, "grid2d", "DESIGN.md §10",
                       "2D grid partitioning strong-scaling crossover: "
                       "block1d vs degree1d+hubs vs grid2d on skewed R-MAT",
                       add_flags, run)
