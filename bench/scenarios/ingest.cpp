// Out-of-core ingest pipeline bench (DESIGN.md §11): generate an R-MAT
// text edge list, sweep the chunked-parse/sort stage over thread counts,
// chunk sizes, and the spill path, and verify the partition-sliced v2
// snapshot end to end.
//
// Two metric families:
//  - determinism fields (gated, bit-deterministic): vertex/edge counts,
//    FNV checksums, per-kind extent totals, snapshot byte size, spill-path
//    byte identity, and slice-vs-in-memory equivalence. These must
//    reproduce exactly on any host.
//  - throughput fields (never gated): parse+sort wall seconds, edges/sec,
//    thread-scaling speedups, and peak RSS. Host-dependent by nature; on a
//    single-core CI runner the speedup columns are ~1x and reported as-is.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "atlc/graph/csr.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/io.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/ingest/pipeline.hpp"
#include "atlc/ingest/snapshot.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ingest-scale",
              "R-MAT scale of the generated text input (0 = scenario "
              "default: 9 smoke / 13 full)",
              0);
  cli.add_int("ingest-ranks", "rank count the slice index is built for", 8);
}

std::string work_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("atlc_bench_ingest_" + name))
      .string();
}

/// read_slice for every (kind, rank) against the in-memory slicing of the
/// global CSR — the same reference build_dist_graph computes.
bool slices_match(const ingest::SnapshotReader& reader, std::uint32_t ranks) {
  const auto g = graph::CSRGraph::from_edges(reader.read_all());
  for (const auto kind :
       {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D,
        graph::PartitionKind::DegreeBalanced1D,
        graph::PartitionKind::Grid2D}) {
    const auto part = graph::make_partition(g, kind, ranks);
    for (std::uint32_t rank = 0; rank < ranks; ++rank) {
      const auto [lo, hi] = part.col_block_range(
          part.col_blocks() > 1 ? part.grid_col(rank) : 0);
      std::vector<graph::EdgeIndex> want_off{0};
      std::vector<graph::VertexId> want_adj;
      for (graph::VertexId lv = 0; lv < part.part_size(rank); ++lv) {
        const auto nbrs = g.neighbors(part.global_id(rank, lv));
        const auto s = std::lower_bound(nbrs.begin(), nbrs.end(), lo);
        const auto e = std::lower_bound(s, nbrs.end(), hi);
        want_adj.insert(want_adj.end(), s, e);
        want_off.push_back(want_adj.size());
      }
      std::vector<graph::EdgeIndex> got_off;
      std::vector<graph::VertexId> got_adj;
      reader.read_slice(part, rank, got_off, got_adj);
      if (got_off != want_off || got_adj != want_adj) return false;
    }
  }
  return true;
}

void run(bench::ScenarioContext& ctx) {
  const int flag_scale = static_cast<int>(ctx.cli.get_int("ingest-scale"));
  const unsigned scale = flag_scale > 0 ? static_cast<unsigned>(flag_scale)
                                        : (ctx.smoke ? 9u : 13u);
  const auto ranks =
      static_cast<std::uint32_t>(ctx.cli.get_int("ingest-ranks"));
  ctx.rec.meta()["ingest_scale"] = static_cast<double>(scale);
  ctx.rec.meta()["ingest_ranks"] = static_cast<double>(ranks);

  const auto raw = graph::generate_rmat(
      {.scale = scale, .edge_factor = 8, .seed = 42 + ctx.seed});
  const std::string text = work_path("input.txt");
  graph::save_text_edges(raw, text);
  const auto input_bytes = std::filesystem::file_size(text);

  std::vector<std::string> cleanup{text};
  const auto ingest_to = [&](const std::string& name,
                             ingest::IngestOptions opt) {
    const std::string snap = work_path(name + ".v2");
    opt.ranks = ranks;
    opt.relabel_seed = 1 + ctx.seed;
    const auto rep = ingest::run_ingest(text, snap, opt);
    cleanup.push_back(snap);
    return std::pair<ingest::IngestReport, std::string>{rep, snap};
  };

  // -------------------------------------------------------------------
  // Determinism arm (gated): a fixed single-thread configuration, re-run
  // per --repeats; every field must come out identical every time, on
  // every host.
  const util::BenchRecorder::MetricOptions det{
      .unit = "", .direction = "higher", .gate = true,
      .expect_deterministic = true};
  std::string base_snapshot;
  for (std::size_t r = 0; r < ctx.repeats; ++r) {
    auto [rep, snap] = ingest_to("det", {.num_threads = 1});
    base_snapshot = snap;
    for (const auto& [name, value] :
         {std::pair<const char*, double>
              {"det/num_vertices", static_cast<double>(rep.num_vertices)},
          {"det/num_edges", static_cast<double>(rep.num_edges)},
          {"det/edge_checksum_lo32",
           static_cast<double>(rep.edge_checksum & 0xffffffffu)},
          {"det/edge_checksum_hi32",
           static_cast<double>(rep.edge_checksum >> 32)},
          {"det/degree_checksum_lo32",
           static_cast<double>(rep.degree_checksum & 0xffffffffu)},
          {"det/snapshot_bytes", static_cast<double>(rep.snapshot_bytes)},
          {"det/extents_block",
           static_cast<double>(rep.extents[0])},
          {"det/extents_cyclic",
           static_cast<double>(rep.extents[1])},
          {"det/extents_degree",
           static_cast<double>(rep.extents[2])},
          {"det/extents_grid",
           static_cast<double>(rep.extents[3])}}) {
      ctx.rec.declare_metric(name, det);
      ctx.rec.add_trial(name, value);
    }
  }

  {
    ingest::SnapshotReader reader(base_snapshot);
    ctx.rec.declare_metric("det/slice_equivalence_ok", det);
    ctx.rec.add_trial("det/slice_equivalence_ok",
                      slices_match(reader, ranks) ? 1.0 : 0.0);
  }

  // Spill arm: a budget far below the edge stream must exercise the
  // external sort and still produce byte-identical snapshot output.
  {
    auto [rep, snap] =
        ingest_to("spill", {.num_threads = 1,
                            .mem_budget_bytes = input_bytes / 16});
    std::string a, b;
    {
      std::ifstream fa(base_snapshot, std::ios::binary),
          fb(snap, std::ios::binary);
      a.assign(std::istreambuf_iterator<char>(fa),
               std::istreambuf_iterator<char>());
      b.assign(std::istreambuf_iterator<char>(fb),
               std::istreambuf_iterator<char>());
    }
    ctx.rec.declare_metric("det/spill_bytes_identical", det);
    ctx.rec.add_trial("det/spill_bytes_identical",
                      (!a.empty() && a == b) ? 1.0 : 0.0);
    ctx.rec.declare_metric("ingest/spill_runs",
                           {.unit = "runs", .direction = "lower",
                            .expect_deterministic = false});
    ctx.rec.add_trial("ingest/spill_runs",
                      static_cast<double>(rep.spill_runs));
  }

  // -------------------------------------------------------------------
  // Throughput arms (never gated): thread sweep, then chunk-size sweep.
  const util::BenchRecorder::MetricOptions wall_s{
      .unit = "s", .direction = "lower", .expect_deterministic = false};
  const util::BenchRecorder::MetricOptions wall_rate{
      .unit = "edges/s", .direction = "higher",
      .expect_deterministic = false};

  util::Table threads_table(
      {"threads", "parse+sort (s)", "total (s)", "Medges/s", "speedup"});
  const std::vector<int> thread_sweep =
      ctx.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  double t1_parse_sort = 0.0;
  for (const int threads : thread_sweep) {
    auto [rep, snap] = ingest_to("t" + std::to_string(threads),
                                 {.num_threads = threads});
    if (threads == 1) t1_parse_sort = rep.parse_sort_seconds;
    const double rate = rep.total_seconds > 0.0
                            ? static_cast<double>(rep.raw_edges) /
                                  rep.total_seconds
                            : 0.0;
    const double speedup = rep.parse_sort_seconds > 0.0
                               ? t1_parse_sort / rep.parse_sort_seconds
                               : 0.0;
    const std::string tag = "threads_" + std::to_string(threads);
    ctx.rec.declare_metric("ingest/" + tag + "/parse_sort_s", wall_s);
    ctx.rec.add_trial("ingest/" + tag + "/parse_sort_s",
                      rep.parse_sort_seconds);
    ctx.rec.declare_metric("ingest/" + tag + "/edges_per_s", wall_rate);
    ctx.rec.add_trial("ingest/" + tag + "/edges_per_s", rate);
    ctx.rec.declare_metric("speedup/parse_sort_" + tag,
                           {.unit = "x", .direction = "higher",
                            .expect_deterministic = false});
    ctx.rec.add_trial("speedup/parse_sort_" + tag, speedup);
    threads_table.add_row({std::to_string(threads),
                           util::Table::fmt(rep.parse_sort_seconds, 3),
                           util::Table::fmt(rep.total_seconds, 3),
                           util::Table::fmt(rate / 1e6, 2),
                           util::Table::fmt(speedup, 2)});
  }
  threads_table.print("ingest: parse+sort thread scaling");
  ctx.rec.add_table("ingest: parse+sort thread scaling", threads_table);

  util::Table chunk_table({"chunk", "parse+sort (s)", "Medges/s"});
  const std::vector<std::size_t> chunk_sweep =
      ctx.smoke ? std::vector<std::size_t>{64 << 10, 8 << 20}
                : std::vector<std::size_t>{64 << 10, 1 << 20, 8 << 20};
  for (const std::size_t chunk : chunk_sweep) {
    auto [rep, snap] = ingest_to(
        "c" + std::to_string(chunk >> 10),
        {.chunk_bytes = chunk, .num_threads = thread_sweep.back()});
    const double rate = rep.total_seconds > 0.0
                            ? static_cast<double>(rep.raw_edges) /
                                  rep.total_seconds
                            : 0.0;
    const std::string tag = "chunk_" + std::to_string(chunk >> 10) + "k";
    ctx.rec.declare_metric("ingest/" + tag + "/parse_sort_s", wall_s);
    ctx.rec.add_trial("ingest/" + tag + "/parse_sort_s",
                      rep.parse_sort_seconds);
    chunk_table.add_row({std::to_string(chunk >> 10) + " KiB",
                         util::Table::fmt(rep.parse_sort_seconds, 3),
                         util::Table::fmt(rate / 1e6, 2)});
  }
  chunk_table.print("ingest: chunk-size sweep");
  ctx.rec.add_table("ingest: chunk-size sweep", chunk_table);

  ctx.rec.declare_metric("ingest/peak_rss_mb",
                         {.unit = "MiB", .direction = "lower",
                          .expect_deterministic = false});
  ctx.rec.add_trial("ingest/peak_rss_mb",
                    static_cast<double>(ingest::peak_rss_bytes()) /
                        (1024.0 * 1024.0));
  ctx.rec.meta()["input_bytes"] = static_cast<double>(input_bytes);
  ctx.rec.add_note(
      "speedup/* and ingest/*_s are host wall-clock measurements and are "
      "never gated; det/* fields are bit-deterministic and gated.");

  for (const auto& path : cleanup) std::filesystem::remove(path);
}

}  // namespace

ATLC_REGISTER_SCENARIO(ingest, "ingest", "Section IV-A (datasets)",
                       "out-of-core ingest: chunked parallel parse + "
                       "external sort + v2 snapshot (thread/chunk/spill "
                       "sweeps; determinism fields gated)",
                       add_flags, run)
