// Paper Fig. 6: strong scaling of the hybrid intersection method on shared
// memory, 1..16 threads, reported as edges/us.
//
// Paper result: 2.7x speedup at 16 threads on R-MAT S20 EF32, limited by
// the per-edge OpenMP region entry cost. NOTE: this host has few cores;
// the curve flattens at the physical core count and the output records
// that deviation explicitly. These are wall-clock measurements of the real
// kernels, so the metrics are host-dependent and never gated.
#include <cstdio>

#if !defined(ATLC_NO_OPENMP)
#include <omp.h>
#endif

#include "atlc/intersect/parallel.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

int num_procs() {
#if defined(ATLC_NO_OPENMP)
  return 1;
#else
  return omp_get_num_procs();
#endif
}

double edges_per_us(const graph::CSRGraph& g, int threads, bool smoke) {
  const intersect::ParallelConfig par{.num_threads = threads, .cutoff = 4096};
  util::Recorder rec(smoke
                         ? util::Recorder::Options{.min_reps = 2,
                                                   .max_reps = 3,
                                                   .ci_fraction = 0.25}
                         : util::Recorder::Options{.min_reps = 3,
                                                   .max_reps = 8,
                                                   .ci_fraction = 0.10});
  volatile std::uint64_t sink = 0;
  const auto summary = rec.run_until_ci([&] {
    std::uint64_t total = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto adj_v = g.neighbors(v);
      for (graph::VertexId j : adj_v)
        total += intersect::count_common_parallel(
            adj_v, g.neighbors(j), intersect::Method::Hybrid, par);
    }
    sink += total;
  });
  (void)sink;
  return static_cast<double>(g.num_edges()) / (summary.median * 1e6);
}

void add_flags(util::Cli& cli) {
  cli.add_int("max-threads", "largest thread count in the sweep", 16);
}

void run(bench::ScenarioContext& ctx) {
  const int max_threads =
      ctx.smoke ? 2 : static_cast<int>(ctx.cli.get_int("max-threads"));

  struct Row {
    const char* label;
    bench::ProxySpec spec;
  };
  std::vector<Row> graphs = {
      {"R-MAT S20 EF16",
       {"rmat-ef16", "", 12, 16, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"R-MAT S20 EF32",
       {"rmat-ef32", "", 12, 32, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"Orkut", bench::find_proxy("Orkut")},
  };
  if (ctx.smoke) graphs.resize(1);

  std::printf("physical cores: %d — speedups flatten beyond that "
              "(paper host had 16 cores)\n",
              num_procs());

  std::vector<std::string> header = {"Threads"};
  for (const auto& gr : graphs) header.push_back(gr.label);
  util::Table table(header);

  std::vector<double> base(graphs.size(), 0.0);
  for (int t = 1; t <= max_threads; t *= 2) {
    std::vector<std::string> row = {std::to_string(t)};
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      const auto& g = ctx.graph(graphs[i].spec);
      const double perf = edges_per_us(g, t, ctx.smoke);
      if (t == 1) base[i] = perf;
      const std::string metric =
          std::string("edges_per_us/") + graphs[i].label + "/t" +
          std::to_string(t);
      ctx.rec.declare_metric(metric, {.unit = "edges/us",
                                      .direction = "higher",
                                      .expect_deterministic = false});
      ctx.rec.add_trial(metric, perf);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.3f (%.1fx)", perf,
                    base[i] > 0 ? perf / base[i] : 0.0);
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  table.print(
      "Fig. 6: hybrid-method strong scaling (edges/us, speedup vs 1 thread)");
  ctx.rec.add_table("Fig. 6: hybrid-method strong scaling", table);

  std::printf("\npaper shape check: parallel intersection speeds up until "
              "the physical core count (paper: up to 2.7x at 16 threads on "
              "a 16-core host).\n");
  ctx.rec.add_note(
      "wall-clock metrics (host-dependent, never gated); speedup flattens "
      "at the physical core count");
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig6, "fig6", "Fig. 6",
                       "shared-memory strong scaling, hybrid method",
                       add_flags, run)
