// Ablations for the design decisions called out in DESIGN.md §4:
//   D5: hybrid vs pure SSI vs pure binary inside the distributed engine;
//   D6: double buffering (overlap) on vs off — the paper notes comm
//       dominance limits the benefit (Section IV-D2);
//   D7: Block1D vs Cyclic1D partitioning (paper cites [26] as the
//       balance-improving alternative/future work);
//   plus: CLaMPI adaptive hash resizing on vs off.
#include <cstdio>

#include "scenario.hpp"

namespace {

using namespace atlc;


void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "simulated ranks", 16);
}

void run(bench::ScenarioContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(
      ctx.smoke ? 4 : ctx.cli.get_int("ranks"));

  const auto& g = ctx.graph("R-MAT-S21-EF16");
  std::printf("graph: %s, ranks=%u\n", bench::describe(g).c_str(), ranks);

  // D5: intersection method inside the distributed engine.
  {
    util::Table t({"Method", "makespan (s)"});
    for (auto m : {intersect::Method::Hybrid, intersect::Method::SSI,
                   intersect::Method::Binary}) {
      core::EngineConfig cfg;
      cfg.method = m;
      const auto r = ctx.run_lcc_trials(
          std::string("makespan/method/") + intersect::method_name(m),
          {.gate = m == intersect::Method::Hybrid}, g, ranks, cfg);
      t.add_row({intersect::method_name(m),
                 util::Table::fmt(r.run.makespan, 4)});
    }
    t.print("D5: intersection method (distributed engine)");
    ctx.rec.add_table("D5: intersection method", t);
  }

  // D6: double buffering.
  {
    util::Table t({"Pipeline", "makespan (s)"});
    core::EngineConfig on, off;
    on.double_buffer = true;
    off.double_buffer = false;
    const double t_on =
        ctx.run_lcc_trials("makespan/overlap/on", {}, g, ranks, on)
            .run.makespan;
    const double t_off =
        ctx.run_lcc_trials("makespan/overlap/off", {}, g, ranks, off)
            .run.makespan;
    t.add_row({"double-buffered (overlap)", util::Table::fmt(t_on, 4)});
    t.add_row({"no overlap", util::Table::fmt(t_off, 4)});
    t.print("D6: double buffering");
    ctx.rec.add_table("D6: double buffering", t);
    std::printf("overlap saves %.1f%% — paper Section IV-D2 predicts a "
                "small gain because communication dominates.\n",
                100.0 * (1.0 - t_on / t_off));
    char note[96];
    std::snprintf(note, sizeof(note),
                  "D6: overlap saves %.1f%% (paper predicts a small gain)",
                  100.0 * (1.0 - t_on / t_off));
    ctx.rec.add_note(note);
  }

  // D7: partitioning.
  {
    util::Table t({"Partitioning", "makespan (s)", "imbalance (max/mean)"});
    for (auto kind :
         {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D}) {
      const bool block = kind == graph::PartitionKind::Block1D;
      const auto r = ctx.run_lcc_trials(
          std::string("makespan/partition/") + (block ? "block1d" : "cyclic1d"),
          {}, g, ranks, {}, kind);
      t.add_row({block ? "Block 1D (paper)" : "Cyclic 1D [26]",
                 util::Table::fmt(r.run.makespan, 4),
                 util::Table::fmt(r.imbalance(), 3)});
    }
    t.print("D7: 1D partitioning scheme");
    ctx.rec.add_table("D7: 1D partitioning scheme", t);
  }

  // Adaptive cache resizing.
  {
    util::Table t({"Cache tuning", "makespan (s)"});
    for (bool adaptive : {false, true}) {
      core::EngineConfig cfg;
      cfg.use_cache = true;
      cfg.cache_adaptive = adaptive;
      // Deliberately undersized hash table: adaptivity has something to fix.
      cfg.cache_sizing = core::CacheSizing::paper_default(
          g.num_vertices(), g.csr_bytes() / 4);
      cfg.cache_sizing.adj_slots = 64;
      const auto r = ctx.run_lcc_trials(
          std::string("makespan/adaptive/") + (adaptive ? "on" : "off"), {},
          g, ranks, cfg);
      t.add_row({adaptive ? "adaptive resize (CLaMPI)" : "static hash table",
                 util::Table::fmt(r.run.makespan, 4)});
    }
    t.print("CLaMPI adaptive hash resizing (undersized initial table)");
    ctx.rec.add_table("CLaMPI adaptive hash resizing", t);
  }
}

}  // namespace

ATLC_REGISTER_SCENARIO(ablation, "ablation", "DESIGN.md §4",
                       "design-decision ablations (D5/D6/D7, adaptivity)",
                       add_flags, run)
