// Serve scenario: the resident query layer under a Zipf-skewed point-query
// stream interleaved with update batches (DESIGN.md §13).
//
// A "millions of users" service answers lcc(v) / top-k recommendation
// queries against a graph that keeps changing underneath it. This scenario
// sweeps query traffic skew x HotVertexCache budget x update rate and
// reports the virtual p50/p99 query latency plus the hit/stale/eviction
// accounting of the answer cache — the serving-layer analogue of the
// CLaMPI window sweeps in fig7. All metrics are virtual-time deterministic
// and gated. Expect the cache to pay off only when traffic is skewed
// (uniform traffic thrashes it) and the payoff to shrink as the update
// rate grows (every batch invalidates the touched neighborhoods).
#include <cstdio>
#include <vector>

#include "atlc/serve/query_engine.hpp"
#include "atlc/serve/workload.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "simulated ranks", 8);
  cli.add_int("serve-epochs", "serving epochs per configuration", 6);
  cli.add_int("serve-queries", "point queries per epoch", 1024);
}

void run(bench::ScenarioContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(
      ctx.smoke ? 4 : ctx.cli.get_int("ranks"));
  const auto num_epochs = static_cast<std::size_t>(
      ctx.smoke ? 3 : ctx.cli.get_int("serve-epochs"));
  const auto queries_per_epoch = static_cast<std::size_t>(
      ctx.smoke ? 256 : ctx.cli.get_int("serve-queries"));

  const auto& g = ctx.graph("R-MAT-S21-EF16");
  std::printf("graph: %s, ranks=%u, %zu epochs x %zu queries\n",
              bench::describe(g).c_str(), ranks, num_epochs,
              queries_per_epoch);

  const std::vector<double> skews =
      ctx.smoke ? std::vector<double>{0.0, 1.2}
                : std::vector<double>{0.0, 0.8, 1.2};
  const std::vector<std::size_t> budgets =
      ctx.smoke ? std::vector<std::size_t>{0, 512}
                : std::vector<std::size_t>{0, 1024, 8192};
  const std::vector<std::size_t> batch_sizes =
      ctx.smoke ? std::vector<std::size_t>{0, 32}
                : std::vector<std::size_t>{0, 256};

  for (const double skew : skews) {
    util::Table t({"hot entries", "batch size", "p50 (s)", "p99 (s)",
                   "hit %", "stale", "evict", "update (s)"});
    for (const std::size_t bs : batch_sizes) {
      // One query/update stream per (skew, batch size): every cache budget
      // serves the exact same virtual traffic, so the sweep isolates the
      // HotVertexCache effect.
      serve::QueryWorkloadConfig wc;
      wc.num_epochs = num_epochs;
      wc.queries_per_epoch = queries_per_epoch;
      wc.zipf_skew = skew;
      wc.batch_size = bs;
      wc.seed = 1 + ctx.seed;
      const auto epochs = serve::generate_query_stream(g, wc);

      for (const std::size_t budget : budgets) {
        serve::ServeOptions opts;
        opts.engine.cost = ctx.cost();
        opts.admission_capacity = queries_per_epoch;  // no rejections here
        opts.hot_cache.entries = budget;

        char cell[64];
        std::snprintf(cell, sizeof(cell), "z%.1f/hot%zu/bs%zu", skew, budget,
                      bs);
        char p50m[96], p99m[96], hitm[96];
        std::snprintf(p50m, sizeof(p50m), "latency_p50/%s", cell);
        std::snprintf(p99m, sizeof(p99m), "latency_p99/%s", cell);
        std::snprintf(hitm, sizeof(hitm), "hot_hits/%s", cell);
        ctx.rec.declare_metric(p50m, {.gate = true});
        ctx.rec.declare_metric(p99m, {.gate = true});
        ctx.rec.declare_metric(hitm, {.gate = true});

        serve::ServeResult last;
        for (std::size_t trial = 0;
             trial < std::max<std::size_t>(1, ctx.repeats); ++trial) {
          auto r = serve::run_query_stream(g, epochs, ranks, opts);

          util::Json detail = util::Json::object();
          detail["serve_makespan"] = r.serve_makespan;
          detail["answered"] = r.stats.answered;
          detail["edges_processed"] = r.stats.edges_processed;
          detail["remote_edges"] = r.stats.remote_edges;
          detail["comm"] = util::to_json(r.stats.run.total());
          detail["hot_cache"] = util::to_json(r.hot_cache_total);
          ctx.rec.add_trial(p50m, r.stats.latency_percentile(50),
                            std::move(detail));
          ctx.rec.add_trial(p99m, r.stats.latency_percentile(99));
          ctx.rec.add_trial(
              hitm, static_cast<double>(r.hot_cache_total.hits));
          last = std::move(r);
        }

        double update_makespan = 0.0;
        for (const serve::EpochOutcome& e : last.epochs)
          update_makespan += e.update_makespan;
        t.add_row({util::Table::fmt_int(budget), util::Table::fmt_int(bs),
                   util::Table::fmt(last.stats.latency_percentile(50), 5),
                   util::Table::fmt(last.stats.latency_percentile(99), 5),
                   util::Table::fmt(100.0 * last.hot_cache_total.hit_rate(),
                                    1),
                   util::Table::fmt_int(last.hot_cache_total.stale_misses),
                   util::Table::fmt_int(last.hot_cache_total.evictions),
                   util::Table::fmt(update_makespan, 5)});
      }
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "query serving, Zipf skew %.1f (ranks=%u)", skew, ranks);
    t.print(title);
    ctx.rec.add_table(title, t);
  }
  ctx.rec.add_note(
      "HotVertexCache memoizes finished answers keyed (vertex, kind) with "
      "epoch stamps; every update batch invalidates the touched "
      "neighborhoods (stale misses), so the hit rate tracks traffic skew, "
      "cache budget, and update rate together");
}

}  // namespace

ATLC_REGISTER_SCENARIO(serve, "serve", "DESIGN.md §13",
                       "resident query serving: Zipf traffic x "
                       "HotVertexCache budget x update rate, virtual "
                       "p50/p99 latency + hit rates",
                       add_flags, run)
