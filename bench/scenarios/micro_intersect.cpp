// Micro-kernels behind Table III / Fig. 6: the raw intersection kernels
// across list-length ratios, the Eq. (3) hybrid rule's selection quality,
// and the OpenMP-parallel variants. Complements the whole-graph numbers in
// the table3 scenario with per-kernel timings under the LibLSB recorder
// (this scenario used to require Google Benchmark; it now runs everywhere).
// Wall-clock metrics: host-dependent, never gated.
//
// `--wall` adds the tiered-kernel wall-clock section (DESIGN.md §9): scalar
// SSI/binary vs the Tiered generation (row bitmap, galloping, branch-reduced
// merge) on hub-shaped workloads, emitting both raw timings and
// `speedup/...` ratios in the JSON record. CI's bench-wall-smoke step runs
// it and asserts the speedup fields exist without gating their values.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "atlc/intersect/intersect.hpp"
#include "atlc/intersect/parallel.hpp"
#include "atlc/intersect/tiered.hpp"
#include "atlc/util/rng.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;
using V = std::vector<intersect::VertexId>;

V sorted_unique(std::size_t len, std::uint32_t universe, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  V v;
  v.reserve(len * 2);
  for (std::size_t i = 0; i < len * 2 && v.size() < len * 2; ++i)
    v.push_back(static_cast<intersect::VertexId>(rng.next_below(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  if (v.size() > len) v.resize(len);
  return v;
}

/// Keys per second for one (kernel, |A|, ratio) cell, timed over enough
/// inner iterations that the recorder's samples are not timer-bound.
template <typename Fn>
double throughput(bench::ScenarioContext& ctx, const V& a, const V& b,
                  std::uint64_t elems_per_call, Fn&& fn) {
  util::Recorder rec(ctx.smoke
                         ? util::Recorder::Options{.min_reps = 2,
                                                   .max_reps = 3,
                                                   .ci_fraction = 0.3}
                         : util::Recorder::Options{.min_reps = 3,
                                                   .max_reps = 10,
                                                   .ci_fraction = 0.10});
  const int inner = ctx.smoke ? 8 : 32;
  volatile std::uint64_t sink = 0;
  const auto summary = rec.run_until_ci([&] {
    std::uint64_t total = 0;
    for (int i = 0; i < inner; ++i) total += fn(a, b);
    sink += total;
  });
  (void)sink;
  return static_cast<double>(elems_per_call) * inner /
         (summary.median * 1e6);  // elements per microsecond
}

void add_flags(util::Cli& cli) {
  cli.add_flag("wall",
               "time the scalar vs tiered kernels on host hardware and "
               "report wall-clock speedups (never gated)",
               false);
}

/// Median wall seconds of fn() (scalar work must defeat DCE via the sink).
template <typename Fn>
double median_seconds(bench::ScenarioContext& ctx, Fn&& fn) {
  util::Recorder rec(ctx.smoke
                         ? util::Recorder::Options{.min_reps = 3,
                                                   .max_reps = 5,
                                                   .ci_fraction = 0.3}
                         : util::Recorder::Options{.min_reps = 5,
                                                   .max_reps = 20,
                                                   .ci_fraction = 0.10});
  volatile std::uint64_t sink = 0;
  const auto summary = rec.run_until_ci([&] { sink = sink + fn(); });
  (void)sink;
  return summary.median;
}

/// The --wall section: scalar SSI vs the tiered kernels on the shapes each
/// tier serves. The hub case models one pipeline window of a hub row's
/// edges: the row bitmap is built once and probed by every neighbor list,
/// exactly the reuse the engine gets (DESIGN.md §9).
void run_wall(bench::ScenarioContext& ctx) {
  const std::size_t hub_len = ctx.smoke ? 4096 : 16384;
  const std::size_t probe_len = ctx.smoke ? 256 : 512;
  const std::size_t probes = ctx.smoke ? 16 : 64;
  const std::uint32_t universe = 1u << 22;

  const V hub = sorted_unique(hub_len, universe, 11 + ctx.seed);
  std::vector<V> lists;
  for (std::size_t i = 0; i < probes; ++i)
    lists.push_back(sorted_unique(probe_len, universe, 100 + i + ctx.seed));

  util::Table t({"Workload", "scalar (us)", "tiered (us)", "speedup",
                 "tiered kernel"});
  const auto report = [&](const char* workload, const char* kernel,
                          double scalar_s, double tiered_s) {
    const double speedup = tiered_s > 0.0 ? scalar_s / tiered_s : 0.0;
    for (const auto& [leg, v] :
         {std::pair<const char*, double>{"scalar_us", scalar_s * 1e6},
          {"tiered_us", tiered_s * 1e6}}) {
      const std::string metric =
          std::string("wall/") + workload + "/" + leg;
      ctx.rec.declare_metric(metric, {.unit = "us",
                                      .direction = "lower",
                                      .expect_deterministic = false});
      ctx.rec.add_trial(metric, v);
    }
    const std::string metric = std::string("speedup/") + workload;
    ctx.rec.declare_metric(metric, {.unit = "x",
                                    .direction = "higher",
                                    .expect_deterministic = false});
    ctx.rec.add_trial(metric, speedup);
    t.add_row({workload, util::Table::fmt(scalar_s * 1e6, 1),
               util::Table::fmt(tiered_s * 1e6, 1),
               util::Table::fmt(speedup, 2), kernel});
    return speedup;
  };

  // Hub rows: one bitmap build amortised over the window's probe lists.
  const double hub_scalar = median_seconds(ctx, [&] {
    std::uint64_t total = 0;
    for (const V& b : lists) total += intersect::count_ssi(hub, b);
    return total;
  });
  const double hub_tiered = median_seconds(ctx, [&] {
    intersect::RowBitmap bm;
    bm.build(hub, universe);
    std::uint64_t total = 0;
    for (const V& b : lists) total += bm.count_in(b);
    return total;
  });
  const double hub_speedup =
      report("hub_bitmap_vs_ssi", "bitmap", hub_scalar, hub_tiered);

  // Skewed pairs: galloping vs the scalar binary kernel the hybrid rule
  // would pick at this ratio.
  const V skew_small = sorted_unique(probe_len, universe, 7 + ctx.seed);
  const double skew_scalar = median_seconds(ctx, [&] {
    return intersect::count_binary(skew_small, hub);
  });
  const double skew_tiered = median_seconds(ctx, [&] {
    return intersect::count_gallop(skew_small, hub);
  });
  report("skew_gallop_vs_binary", "gallop", skew_scalar, skew_tiered);

  // Balanced long tail: branch-reduced merge vs scalar SSI.
  const V bal_a = sorted_unique(hub_len, universe, 5 + ctx.seed);
  const double bal_scalar = median_seconds(ctx, [&] {
    return intersect::count_ssi(bal_a, hub);
  });
  const double bal_tiered = median_seconds(ctx, [&] {
    return intersect::count_merge_vec(bal_a, hub);
  });
  report("tail_merge_vs_ssi", "merge_vec", bal_scalar, bal_tiered);

  t.print("wall: scalar vs tiered kernels (host hardware, never gated)");
  ctx.rec.add_table("wall: scalar vs tiered kernels", t);

  char note[160];
  std::snprintf(note, sizeof(note),
                "wall check: bitmap vs scalar SSI on hub-sized rows = "
                "%.2fx (target >= 2x, reported not gated)",
                hub_speedup);
  std::printf("%s\n", note);
  ctx.rec.add_note(note);
}

void run(bench::ScenarioContext& ctx) {
  std::vector<int> lengths = {64, 1024, 16384};
  std::vector<int> ratios = {1, 8, 64};
  if (ctx.smoke) {
    lengths = {64, 1024};
    ratios = {1, 8};
  }

  util::Table table({"|A|", "|B|/|A|", "SSI (Melem/s)", "Binary (Melem/s)",
                     "Hybrid (Melem/s)", "hybrid picks"});
  for (int len : lengths) {
    for (int ratio : ratios) {
      const auto a = sorted_unique(static_cast<std::size_t>(len), 1u << 24,
                                   1 + ctx.seed);
      const auto b =
          sorted_unique(static_cast<std::size_t>(len) * ratio, 1u << 24,
                        2 + ctx.seed);
      const std::uint64_t both = a.size() + b.size();
      const double ssi = throughput(ctx, a, b, both,
                                    [](const V& x, const V& y) {
                                      return intersect::count_ssi(x, y);
                                    });
      const double binary = throughput(ctx, a, b, a.size(),
                                       [](const V& x, const V& y) {
                                         return intersect::count_binary(x, y);
                                       });
      const double hybrid = throughput(ctx, a, b, both,
                                       [](const V& x, const V& y) {
                                         return intersect::count_hybrid(x, y);
                                       });
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%dx%d", len, ratio);
      const std::string key = cell;
      for (const auto& [label, perf] :
           {std::pair<const char*, double>{"ssi", ssi},
            {"binary", binary},
            {"hybrid", hybrid}}) {
        const std::string metric = "elems_per_us/" + key + "/" + label;
        ctx.rec.declare_metric(metric, {.unit = "elems/us",
                                        .direction = "higher",
                                        .expect_deterministic = false});
        ctx.rec.add_trial(metric, perf);
      }
      // Eq. (3) selection quality: hybrid should track the faster kernel.
      // SSI and binary report different element bases, so compare via the
      // wall time each would take: ssi walks |A|+|B|, binary probes |A|.
      const double t_ssi = static_cast<double>(both) / ssi;
      const double t_bin = static_cast<double>(a.size()) / binary;
      const char* picks = t_ssi <= t_bin ? "ssi-side" : "binary-side";
      table.add_row({util::Table::fmt_int(static_cast<std::uint64_t>(len)),
                     util::Table::fmt_int(static_cast<std::uint64_t>(ratio)),
                     util::Table::fmt(ssi, 2), util::Table::fmt(binary, 2),
                     util::Table::fmt(hybrid, 2), picks});
    }
  }
  table.print("micro: raw intersection kernels across |B|/|A| ratios");
  ctx.rec.add_table("micro: raw intersection kernels", table);

  // Parallel variants (balanced for SSI, skewed for binary) + the
  // upper-triangle trimming kernel (paper Section II-C de-duplication).
  {
    util::Table t({"Kernel", "threads", "Melem/s"});
    const auto a = sorted_unique(ctx.smoke ? 1 << 12 : 1 << 16, 1u << 24,
                                 1 + ctx.seed);
    const auto b = sorted_unique(ctx.smoke ? 1 << 14 : 1 << 18, 1u << 24,
                                 2 + ctx.seed);
    for (int threads : {1, 2}) {
      const intersect::ParallelConfig cfg{.num_threads = threads,
                                          .cutoff = 0};
      const double perf = throughput(
          ctx, a, b, a.size() + b.size(), [&cfg](const V& x, const V& y) {
            return intersect::count_ssi_parallel(x, y, cfg);
          });
      const std::string metric =
          "elems_per_us/ssi_parallel/t" + std::to_string(threads);
      ctx.rec.declare_metric(metric, {.unit = "elems/us",
                                      .direction = "higher",
                                      .expect_deterministic = false});
      ctx.rec.add_trial(metric, perf);
      t.add_row({"ssi_parallel", std::to_string(threads),
                 util::Table::fmt(perf, 2)});
    }
    const double above = throughput(
        ctx, a, b, a.size() + b.size(), [](const V& x, const V& y) {
          return intersect::count_common_above(x, y, 1u << 23);
        });
    t.add_row({"count_common_above", "1", util::Table::fmt(above, 2)});
    t.print("micro: parallel + upper-triangle kernels");
    ctx.rec.add_table("micro: parallel + upper-triangle kernels", t);
  }

  if (ctx.cli.get_flag("wall")) run_wall(ctx);
}

}  // namespace

ATLC_REGISTER_SCENARIO(micro_intersect, "micro_intersect", "Table III / Fig. 6",
                       "raw intersection kernel microbenchmarks (--wall adds "
                       "scalar vs tiered host timings)",
                       add_flags, run)
