// Paper Fig. 7: cache behaviour as a function of cache size, for each
// window in isolation (caching enabled only on C_offsets or only on C_adj,
// the other window issuing uncached reads). R-MAT graph on 2 nodes.
//
// Expected shape (paper):
//  - C_adj: miss rate falls steeply (power-law) with size; most of the
//    communication time reduction comes from this cache (51.6% in paper).
//  - C_offsets: miss rate falls ~linearly with size; small time savings.
//  - Both floored by compulsory misses (grey area in the paper's plot).
#include <cstdio>

#include "scenario.hpp"

namespace {

using namespace atlc;

struct SweepPoint {
  double fraction;
  std::uint64_t cache_bytes;
  double miss_rate;
  double compulsory_rate;
  double comm_seconds;  // mean over ranks
};

double mean_comm(const core::RunResult& r) {
  double total = 0;
  for (const auto& s : r.run.stats) total += s.comm_seconds;
  return total / static_cast<double>(r.run.stats.size());
}

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "number of simulated nodes", 2);
  cli.add_int("steps", "sweep points per cache (paper used 100)", 12);
}

void run(bench::ScenarioContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(ctx.cli.get_int("ranks"));
  const int steps =
      ctx.smoke ? 4 : static_cast<int>(ctx.cli.get_int("steps"));

  // Paper: R-MAT with 2^20 vertices, 2^24 edges. Proxy: 2^14 / 2^18.
  const bench::ProxySpec spec{"rmat-fig7", "", 14, 16,
                              graph::Directedness::Undirected, 7,
                              bench::ProxySpec::Kind::Rmat};
  const auto& g = ctx.graph(spec);
  std::printf("graph: %s, ranks=%u\n", bench::describe(g).c_str(), ranks);

  // Remote footprints per rank (what "relative cache size" is relative to).
  const std::uint64_t offsets_total =
      static_cast<std::uint64_t>(g.num_vertices()) * 2 * sizeof(std::uint64_t);
  const std::uint64_t adj_total = g.num_edges() * sizeof(graph::VertexId);

  // Baseline without any cache.
  const auto baseline =
      ctx.run_lcc_trials("makespan/uncached", {.gate = true}, g, ranks, {});
  const double comm_base = mean_comm(baseline);
  std::printf("non-cached communication time (mean/rank): %.3f s\n\n",
              comm_base);

  for (const bool sweep_adj : {false, true}) {
    const char* window = sweep_adj ? "adj" : "offsets";
    const std::uint64_t footprint = sweep_adj ? adj_total : offsets_total;
    std::vector<SweepPoint> points;
    for (int s = 1; s <= steps; ++s) {
      const double fraction = static_cast<double>(s) / steps;
      core::EngineConfig cfg;
      cfg.use_cache = true;
      cfg.cache_offsets = !sweep_adj;
      cfg.cache_adj = sweep_adj;
      const auto bytes = std::max<std::uint64_t>(
          1024, static_cast<std::uint64_t>(fraction *
                                           static_cast<double>(footprint)));
      cfg.cache_sizing.offsets_bytes = bytes;
      cfg.cache_sizing.adj_bytes = bytes;
      char metric[64];
      std::snprintf(metric, sizeof(metric), "makespan/%s/frac=%.2f", window,
                    fraction);
      // Gate the full-size point of each window's sweep.
      const auto r = ctx.run_lcc_trials(metric, {.gate = s == steps}, g,
                                        ranks, cfg);
      const auto& cs = sweep_adj ? r.adj_cache_total : r.offsets_cache_total;
      points.push_back(
          {fraction, bytes, cs.miss_rate(),
           cs.accesses() ? static_cast<double>(cs.compulsory_misses) /
                               static_cast<double>(cs.accesses())
                         : 0.0,
           mean_comm(r)});
    }

    util::Table table({"Relative size", "Cache bytes", "Miss rate",
                       "Compulsory (floor)", "Comm time (s)",
                       "vs non-cached"});
    for (const auto& p : points)
      table.add_row({util::Table::fmt(p.fraction, 2),
                     util::Table::fmt_bytes(p.cache_bytes),
                     util::Table::fmt_percent(p.miss_rate),
                     util::Table::fmt_percent(p.compulsory_rate),
                     util::Table::fmt(p.comm_seconds, 4),
                     util::Table::fmt_percent(p.comm_seconds / comm_base)});
    const std::string title =
        sweep_adj ? "Fig. 7 (right pair): adjacencies cache (C_adj) only"
                  : "Fig. 7 (left pair): offsets cache (C_offsets) only";
    table.print(title);
    ctx.rec.add_table(title, table);

    const double save = 1.0 - points.back().comm_seconds / comm_base;
    std::printf("\nmax communication-time saving with %s only: %.1f%% "
                "(paper: C_adj alone saved 51.6%%)\n\n",
                sweep_adj ? "C_adj" : "C_offsets", 100 * save);
    char note[128];
    std::snprintf(note, sizeof(note),
                  "max comm-time saving with %s only: %.1f%% (paper: C_adj "
                  "alone saved 51.6%%)",
                  sweep_adj ? "C_adj" : "C_offsets", 100 * save);
    ctx.rec.add_note(note);
  }

  std::printf(
      "paper shape check: C_adj miss rate falls steeply and saves most of "
      "the time; C_offsets falls ~linearly and saves little; compulsory "
      "misses floor both curves.\n");
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig7, "fig7", "Fig. 7",
                       "per-window cache-size sweep, 2 nodes", add_flags, run)
