// Paper Table II: the graph inventory with |V|, |E| and the CSR size after
// one-degree removal, for every proxy dataset used by the other scenarios
// (plus structure metrics justifying each proxy).
#include <cstdio>

#include "atlc/graph/degree_stats.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

void run(bench::ScenarioContext& ctx) {
  util::Table table({"Name", "Proxy", "|V|", "|E|", "CSR Size", "max deg",
                     "power-law alpha", "gini"});
  for (const auto& spec : bench::proxy_registry()) {
    const auto& g = ctx.graph(spec);
    const auto st = graph::degree_stats(g);
    table.add_row({spec.name, spec.proxy_desc,
                   util::Table::fmt_int(g.num_vertices()),
                   util::Table::fmt_int(g.num_edges()),
                   util::Table::fmt_bytes(g.csr_bytes()),
                   util::Table::fmt_int(st.max),
                   util::Table::fmt(st.power_law_alpha, 2),
                   util::Table::fmt(st.gini, 2)});
    // Inventory metrics: deterministic per seed, ungated (not performance).
    const std::string prefix = "graph/" + spec.name + "/";
    ctx.rec.declare_metric(prefix + "vertices", {.unit = "count"});
    ctx.rec.add_trial(prefix + "vertices", g.num_vertices());
    ctx.rec.declare_metric(prefix + "edges", {.unit = "count"});
    ctx.rec.add_trial(prefix + "edges", g.num_edges());
    ctx.rec.declare_metric(prefix + "csr_bytes", {.unit = "bytes"});
    ctx.rec.add_trial(prefix + "csr_bytes", g.csr_bytes());
  }
  table.print("Table II: graphs used in this paper (scaled proxies)");
  ctx.rec.add_table("Table II: graphs used in this reproduction", table);
  std::printf(
      "\nNote: proxies are scaled to container size; --scale-boost=N grows "
      "them toward the paper's sizes (see DESIGN.md section 1).\n");
  ctx.rec.add_note(
      "proxies are scaled to container size; --scale-boost grows them "
      "toward the paper's sizes (DESIGN.md §1)");
}

}  // namespace

ATLC_REGISTER_SCENARIO(table2, "table2", "Table II",
                       "graph inventory and structure metrics", nullptr, run)
