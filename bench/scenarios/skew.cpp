// Skew scenario: skew-aware partitioning and hub-adjacency replication
// (DESIGN.md §8, docs/partitioning.md).
//
// Sweeps partition kind (Block1D / Cyclic1D / DegreeBalanced1D) x hub
// fraction δ ∈ {0, 0.1%, 1%} on a power-law R-MAT proxy and the uniform
// control, with the paper's CLaMPI cache enabled. Expectations: on the
// skewed graph, DegreeBalanced1D cuts makespan imbalance vs Block1D
// (whose hub-heavy blocks make one rank the straggler), and replicating
// the top-δ hub rows removes the most-reused remote reads outright —
// fewer remote gets AND less C_adj churn than caching them. On the
// uniform control all three partitions are near-equivalent and hubs
// barely matter — replication is a skew lever, not a general one.
#include <cstdio>
#include <string>

#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "simulated ranks", 16);
}

struct Arm {
  double makespan = 0.0;
  double imbalance = 0.0;
  std::uint64_t remote_gets = 0;
};

void run(bench::ScenarioContext& ctx) {
  // Smoke keeps 8 ranks (not the usual 4): with ~100 vertices per rank the
  // partition-balance signal this scenario exists to measure survives the
  // shrunken proxy, at 4 it drowns in per-rank noise.
  const auto ranks = static_cast<std::uint32_t>(
      ctx.smoke ? 8 : ctx.cli.get_int("ranks"));

  const std::vector<double> hub_fracs =
      ctx.smoke ? std::vector<double>{0.0, 0.01}
                : std::vector<double>{0.0, 0.001, 0.01};
  const graph::PartitionKind partitions[] = {
      graph::PartitionKind::Block1D,
      graph::PartitionKind::Cyclic1D,
      graph::PartitionKind::DegreeBalanced1D,
  };

  // The acceptance comparison (docs/partitioning.md): on the skewed graph,
  // degree1d + 1% hubs must beat plain cyclic1d on both balance and
  // remote-read volume.
  Arm skewed_cyclic_plain, skewed_degree_hubs;

  for (const bool skewed : {true, false}) {
    const auto& g = ctx.graph(skewed ? "R-MAT-S21-EF16" : "Uniform");
    const char* tag = skewed ? "rmat" : "uniform";
    std::printf("graph %s: %s, ranks=%u\n", tag, bench::describe(g).c_str(),
                ranks);

    util::Table t({"Partition", "hub frac", "makespan (s)",
                   "imbalance (max/mean)", "remote gets", "hub hits",
                   "adj hit %"});
    for (const auto kind : partitions) {
      const char* kind_name = graph::partition_kind_name(kind);
      for (const double frac : hub_fracs) {
        core::EngineConfig cfg;
        cfg.use_cache = true;
        cfg.cache_sizing = core::CacheSizing::paper_default(
            g.num_vertices(), g.csr_bytes() / 2);
        cfg.hub_fraction = frac;

        char pct[24];
        if (frac == 0.0)
          std::snprintf(pct, sizeof(pct), "0");
        else
          std::snprintf(pct, sizeof(pct), "%gpct", 100.0 * frac);
        const std::string metric = std::string("makespan/") + tag + "/" +
                                   kind_name + "/hub" + pct;
        const auto r =
            ctx.run_lcc_trials(metric, {.gate = true}, g, ranks, cfg, kind);

        const auto total = r.run.total();
        t.add_row({kind_name, pct, util::Table::fmt(r.run.makespan, 4),
                   util::Table::fmt(r.imbalance(), 3),
                   util::Table::fmt(static_cast<double>(total.remote_gets), 0),
                   util::Table::fmt(static_cast<double>(total.hub_local_hits),
                                    0),
                   util::Table::fmt(100.0 * r.adj_cache_total.hit_rate(), 1)});

        if (skewed && kind == graph::PartitionKind::Cyclic1D && frac == 0.0)
          skewed_cyclic_plain = {r.run.makespan, r.imbalance(),
                                 total.remote_gets};
        if (skewed && kind == graph::PartitionKind::DegreeBalanced1D &&
            frac == hub_fracs.back())
          skewed_degree_hubs = {r.run.makespan, r.imbalance(),
                                total.remote_gets};
      }
    }
    const std::string title = std::string("partition x hub replication (") +
                              (skewed ? "skewed R-MAT" : "uniform control") +
                              ")";
    t.print(title.c_str());
    ctx.rec.add_table(title, t);
  }

  const bool holds =
      skewed_degree_hubs.imbalance <= skewed_cyclic_plain.imbalance &&
      skewed_degree_hubs.remote_gets < skewed_cyclic_plain.remote_gets;
  char note[200];
  std::snprintf(note, sizeof(note),
                "shape check: degree1d + 1%% hubs vs cyclic1d on R-MAT — "
                "imbalance %.3f vs %.3f, remote gets %llu vs %llu: %s",
                skewed_degree_hubs.imbalance, skewed_cyclic_plain.imbalance,
                static_cast<unsigned long long>(skewed_degree_hubs.remote_gets),
                static_cast<unsigned long long>(
                    skewed_cyclic_plain.remote_gets),
                holds ? "HOLDS" : "DOES NOT HOLD");
  std::printf("%s\n", note);
  ctx.rec.add_note(note);
}

}  // namespace

ATLC_REGISTER_SCENARIO(skew, "skew", "DESIGN.md §8",
                       "skew-aware partitioning + hub replication: partition "
                       "kind x hub fraction on skewed vs uniform graphs",
                       add_flags, run)
