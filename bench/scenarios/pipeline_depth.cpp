// Pipeline-depth sweep: where does deeper prefetch overlap saturate?
//
// The core::EdgePipeline engine keeps k-1 adjacency transfers in flight
// under each intersection. Under the NIC-serialisation model (DESIGN.md
// §2), consecutive gets issued by one rank pipeline their latencies but
// serialise their byte times, so added depth hides latency only until the
// injection port is busy end-to-end. The paper's double buffering (Section
// III-A) is the k=2 point of this sweep; k=1 is the no-overlap ablation
// arm. Expect most of the win at k=2 and diminishing returns after —
// communication dominates computation at scale (Section IV-D2), so there
// is little compute left to hide deeper transfers under.
#include <cstdio>

#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "simulated ranks", 16);
}

void run(bench::ScenarioContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(
      ctx.smoke ? 4 : ctx.cli.get_int("ranks"));

  const auto& g = ctx.graph("R-MAT-S21-EF16");
  std::printf("graph: %s, ranks=%u\n", bench::describe(g).c_str(), ranks);

  const std::size_t depths[] = {1, 2, 4, 8};
  for (const bool cached : {false, true}) {
    util::Table t({"Depth k", "makespan (s)", "vs k=1", "comm wait (s)"});
    double t_k1 = 0.0;
    double best = 0.0;
    std::size_t best_k = 1;
    for (const std::size_t k : depths) {
      core::EngineConfig cfg;
      cfg.pipeline_depth = k;
      if (cached) {
        cfg.use_cache = true;
        cfg.cache_sizing = core::CacheSizing::paper_default(
            g.num_vertices(), g.csr_bytes() / 2);
      }
      char metric[64];
      std::snprintf(metric, sizeof(metric), "makespan/depth%s/k%zu",
                    cached ? "_cached" : "", k);
      const auto r = ctx.run_lcc_trials(metric, {.gate = true}, g, ranks, cfg);
      if (k == 1) t_k1 = r.run.makespan;
      if (k == 1 || r.run.makespan < best) {
        best = r.run.makespan;
        best_k = k;
      }
      char kbuf[8];
      std::snprintf(kbuf, sizeof(kbuf), "%zu", k);
      t.add_row({kbuf, util::Table::fmt(r.run.makespan, 4),
                 util::Table::fmt(100.0 * (1.0 - r.run.makespan / t_k1), 1),
                 util::Table::fmt(r.run.total().comm_seconds, 3)});
    }
    const char* title = cached ? "pipeline depth (CLaMPI cache on)"
                               : "pipeline depth (uncached)";
    t.print(title);
    ctx.rec.add_table(title, t);
    char note[112];
    std::snprintf(note, sizeof(note),
                  "%s: overlap saturates at k=%zu (%.1f%% vs k=1; paper's "
                  "double buffering is the k=2 point)",
                  cached ? "cached" : "uncached", best_k,
                  100.0 * (1.0 - best / t_k1));
    ctx.rec.add_note(note);
  }
}

}  // namespace

ATLC_REGISTER_SCENARIO(pipeline_depth, "pipeline_depth", "DESIGN.md §6",
                       "EdgePipeline depth sweep k=1,2,4,8 (double buffering "
                       "is k=2)",
                       add_flags, run)
