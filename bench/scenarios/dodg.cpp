// DODG scenario: degree-ordered orientation + tiered intersection kernels
// for global triangle counting (ROADMAP item 1, DESIGN.md §9).
//
// Three arms on the skewed R-MAT proxy and the uniform control:
//   paper        — undirected stream + upper-triangle floor trick, scalar
//                  hybrid kernels (the engine's default TC path);
//   dodg         — graph::orient_dodg preprocessing, scalar kernels: half
//                  the edge stream, no per-edge suffix trimming, every row
//                  capped at O(sqrt(m));
//   dodg+tiered  — the DODG stream served by the Tiered kernel generation
//                  (row bitmaps on hubs, galloping on skew, branch-reduced
//                  merge on the tail) under the per-tier cost model.
//
// All metrics are deterministic virtual times under the default cost model
// and are gated. Every arm must report the same triangle count (shape
// check); the expected shape is dodg < paper on makespan for skewed inputs
// (smaller stream AND bounded rows), with dodg+tiered cutting compute
// further. Wall-clock proof of the raw kernel speedups lives in
// `micro_intersect --wall` (REPRODUCING.md).
#include <cstdio>
#include <string>

#include "atlc/graph/dodg.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "simulated ranks", 16);
}

struct Arm {
  const char* tag;
  bool orient;
  intersect::Tier tier;
};

void run(bench::ScenarioContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(
      ctx.smoke ? 8 : ctx.cli.get_int("ranks"));

  constexpr Arm arms[] = {
      {"paper", false, intersect::Tier::Paper},
      {"dodg", true, intersect::Tier::Paper},
      {"dodg_tiered", true, intersect::Tier::Tiered},
  };

  bool counts_agree = true;
  double rmat_paper_makespan = 0.0, rmat_dodg_makespan = 0.0;

  for (const bool skewed : {true, false}) {
    const auto& g = ctx.graph(skewed ? "R-MAT-S21-EF16" : "Uniform");
    const char* gtag = skewed ? "rmat" : "uniform";
    std::printf("graph %s: %s, ranks=%u\n", gtag, bench::describe(g).c_str(),
                ranks);
    const auto oriented = graph::orient_dodg(g);
    std::printf("  dodg: |E|=%llu (undirected stream %llu), max out-deg %u\n",
                static_cast<unsigned long long>(oriented.num_edges()),
                static_cast<unsigned long long>(g.num_edges()),
                graph::degree_stats(oriented).max);

    util::Table t({"Arm", "makespan (s)", "edges", "remote frac",
                   "triangles"});
    std::uint64_t first_count = 0;
    for (const auto& arm : arms) {
      core::EngineConfig cfg;
      cfg.orient_dodg = arm.orient;
      cfg.intersect_tier = arm.tier;
      cfg.cost = ctx.cost();

      const std::string metric =
          std::string("makespan/") + gtag + "/" + arm.tag;
      ctx.rec.declare_metric(metric, {.gate = true});
      core::RunResult r;
      for (std::size_t trial = 0; trial < std::max<std::size_t>(1, ctx.repeats);
           ++trial) {
        r = core::run_distributed_tc_result(g, ranks, cfg);
        util::Json detail = util::Json::object();
        detail["global_triangles"] = r.global_triangles;
        detail["edges_processed"] = r.edges_processed;
        detail["remote_edge_fraction"] = r.remote_edge_fraction();
        detail["comm"] = util::to_json(r.run.total());
        ctx.rec.add_trial(metric, r.run.makespan, std::move(detail));
      }

      // The stream-volume claim (DODG halves the enumerated edges) is a
      // deterministic count — gate it alongside the makespan.
      const std::string edges_metric =
          std::string("edges_processed/") + gtag + "/" + arm.tag;
      ctx.rec.declare_metric(edges_metric,
                             {.unit = "edges", .gate = true});
      ctx.rec.add_trial(edges_metric,
                        static_cast<double>(r.edges_processed));

      if (&arm == &arms[0])
        first_count = r.global_triangles;
      else if (r.global_triangles != first_count)
        counts_agree = false;
      if (skewed && !arm.orient) rmat_paper_makespan = r.run.makespan;
      if (skewed && arm.orient && arm.tier == intersect::Tier::Paper)
        rmat_dodg_makespan = r.run.makespan;

      t.add_row({arm.tag, util::Table::fmt(r.run.makespan, 4),
                 util::Table::fmt_int(r.edges_processed),
                 util::Table::fmt(r.remote_edge_fraction(), 3),
                 util::Table::fmt_int(r.global_triangles)});
    }
    const std::string title =
        std::string("TC paths (") + (skewed ? "skewed R-MAT" : "uniform") +
        ")";
    t.print(title.c_str());
    ctx.rec.add_table(title, t);
  }

  char note[200];
  std::snprintf(note, sizeof(note),
                "shape check: counts agree across arms: %s; R-MAT makespan "
                "dodg %.4f vs paper %.4f: %s",
                counts_agree ? "YES" : "NO", rmat_dodg_makespan,
                rmat_paper_makespan,
                rmat_dodg_makespan < rmat_paper_makespan ? "HOLDS"
                                                         : "DOES NOT HOLD");
  std::printf("%s\n", note);
  ctx.rec.add_note(note);
}

}  // namespace

ATLC_REGISTER_SCENARIO(dodg, "dodg", "DESIGN.md §9",
                       "degree-ordered orientation + tiered intersection "
                       "kernels vs the paper TC path",
                       add_flags, run)
