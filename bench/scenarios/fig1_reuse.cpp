// Paper Fig. 1 (right): LCC data reuse on a social-circles graph
// partitioned over two compute nodes — how many remote reads (RMA gets) are
// repeated y times. The heavy tail of repetitions is what makes RMA caching
// profitable (Section III-B).
#include <algorithm>
#include <cstdio>
#include <map>

#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "number of simulated compute nodes", 2);
}

void run(bench::ScenarioContext& ctx) {
  const auto& g = ctx.graph_or_file("Facebook-circles");
  std::printf("graph: %s\n", bench::describe(g).c_str());

  core::EngineConfig cfg;
  cfg.track_remote_reads = true;
  const auto result = ctx.run_lcc_trials(
      "makespan/plain", {.gate = true}, g,
      static_cast<std::uint32_t>(ctx.cli.get_int("ranks")), cfg);

  // Bucket repetition counts like the paper's y-axis: 1, 4, 16, 64, 256.
  std::map<std::uint64_t, std::uint64_t> buckets;  // repetitions -> #targets
  std::uint64_t repeated_reads = 0, total_reads = 0, targets = 0;
  for (auto reps : result.remote_reads) {
    if (reps == 0) continue;
    ++targets;
    total_reads += reps;
    if (reps > 1) repeated_reads += reps - 1;
    std::uint64_t bucket = 1;
    while (bucket * 4 <= reps) bucket *= 4;
    ++buckets[bucket];
  }

  util::Table table({"Repetitions (>=)", "Number of repeated reads (RMA gets)"});
  for (const auto& [reps, count] : buckets)
    table.add_row({util::Table::fmt_int(reps), util::Table::fmt_int(count)});
  table.print("Fig. 1 (right): LCC data reuse");
  ctx.rec.add_table("Fig. 1 (right): LCC data reuse", table);

  const double avoidable =
      static_cast<double>(repeated_reads) /
      static_cast<double>(std::max<std::uint64_t>(1, total_reads));
  ctx.rec.declare_metric("avoidable_read_fraction",
                         {.unit = "fraction", .direction = "higher"});
  ctx.rec.add_trial("avoidable_read_fraction", avoidable);

  std::printf(
      "\nremote reads: %llu, distinct targets: %llu, avoidable (repeat) "
      "reads: %llu (%.1f%% of all remote reads)\n",
      static_cast<unsigned long long>(total_reads),
      static_cast<unsigned long long>(targets),
      static_cast<unsigned long long>(repeated_reads), 100.0 * avoidable);
  ctx.rec.add_note(
      "paper shape check: most targets are read once, a heavy tail of hubs "
      "is read tens-to-hundreds of times");
  std::printf(
      "paper shape check: most targets are read once, a heavy tail of hubs "
      "is read tens-to-hundreds of times.\n");
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig1, "fig1", "Fig. 1",
                       "remote-read reuse distribution, 2 nodes", add_flags,
                       run)
