// Paper Fig. 8: CLaMPI's original (LRU + positional) eviction scores vs
// this paper's application-defined degree-centrality scores, on an R-MAT
// graph with C_adj capped at 25% of each rank's non-local partition so the
// eviction path is constantly exercised.
//
// Expected shape (paper): degree scores cut the C_adj miss rate and the
// average remote-read time by 14.4%-35.6%; compulsory misses (grey floor)
// grow with the node count and are policy-independent.
#include <cstdio>

#include "scenario.hpp"

namespace {

using namespace atlc;

struct Measurement {
  double avg_read_us;  // mean time per remote adjacency fetch
  double miss_rate;
  double compulsory_rate;
};

Measurement run_once(bench::ScenarioContext& ctx, const graph::CSRGraph& g,
                     std::uint32_t ranks, clampi::VictimPolicy policy) {
  core::EngineConfig cfg;
  cfg.use_cache = true;
  cfg.victim_policy = policy;
  // 25% of the non-local partition bytes per rank (paper Section IV-D1):
  // the non-local partition is everything the rank does not own.
  const double non_local_bytes =
      static_cast<double>(g.num_edges()) * sizeof(graph::VertexId) *
      (1.0 - 1.0 / ranks);
  cfg.cache_sizing.adj_bytes = std::max<std::uint64_t>(
      4096, static_cast<std::uint64_t>(0.25 * non_local_bytes));
  cfg.cache_sizing.offsets_bytes =
      std::max<std::uint64_t>(4096, g.num_vertices());

  const char* label =
      policy == clampi::VictimPolicy::UserScore ? "degree" : "orig";
  char metric[64];
  std::snprintf(metric, sizeof(metric), "makespan/%s/p%u", label, ranks);
  const auto r = ctx.run_lcc_trials(
      metric,
      {.gate = policy == clampi::VictimPolicy::UserScore && ranks == 8}, g,
      ranks, cfg);
  double comm = 0;
  for (const auto& s : r.run.stats) comm += s.comm_seconds;
  const auto& cs = r.adj_cache_total;
  return {comm /
              static_cast<double>(std::max<std::uint64_t>(1, r.remote_edges)) *
              1e6,
          cs.miss_rate(),
          cs.accesses() ? static_cast<double>(cs.compulsory_misses) /
                              static_cast<double>(cs.accesses())
                        : 0.0};
}

void run(bench::ScenarioContext& ctx) {
  // Paper: R-MAT 2^20 vertices / 2^24 edges. Proxy: 2^14 / 2^18.
  const bench::ProxySpec spec{"rmat-fig8", "", 14, 16,
                              graph::Directedness::Undirected, 8,
                              bench::ProxySpec::Kind::Rmat};
  const auto& g = ctx.graph(spec);
  std::printf("graph: %s (C_adj capped at 25%% of non-local partition)\n",
              bench::describe(g).c_str());

  std::vector<std::uint32_t> nodes = {4, 8, 16, 32, 64};
  if (ctx.smoke) nodes = {4, 8};

  util::Table table({"Nodes", "avg read us (orig)", "avg read us (degree)",
                     "improvement", "miss rate (orig)", "miss rate (degree)",
                     "compulsory floor"});
  bool improves_somewhere = false;
  for (std::uint32_t p : nodes) {
    const auto orig = run_once(ctx, g, p, clampi::VictimPolicy::LruPositional);
    const auto degree = run_once(ctx, g, p, clampi::VictimPolicy::UserScore);
    const double gain = 1.0 - degree.avg_read_us / orig.avg_read_us;
    improves_somewhere |= gain > 0.02;
    table.add_row({util::Table::fmt_int(p),
                   util::Table::fmt(orig.avg_read_us, 3),
                   util::Table::fmt(degree.avg_read_us, 3),
                   util::Table::fmt_percent(gain),
                   util::Table::fmt_percent(orig.miss_rate),
                   util::Table::fmt_percent(degree.miss_rate),
                   util::Table::fmt_percent(degree.compulsory_rate)});
  }
  table.print("Fig. 8: original scores vs degree-centrality scores");
  ctx.rec.add_table("Fig. 8: original vs degree-centrality scores", table);

  std::printf(
      "\npaper shape check: degree-centrality scores improve average remote "
      "read time (paper: 14.4%%-35.6%%) until compulsory misses dominate at "
      "high node counts -> %s\n",
      improves_somewhere ? "HOLDS" : "check output");
  ctx.rec.add_note(std::string("degree scores improve avg remote-read time "
                               "somewhere in the node sweep: ") +
                   (improves_somewhere ? "HOLDS" : "check output"));
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig8, "fig8", "Fig. 8",
                       "original vs degree-centrality eviction scores",
                       nullptr, run)
