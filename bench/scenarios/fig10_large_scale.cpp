// Paper Fig. 10: large-scale strong scaling (128..512 nodes) of LCC
// non-cached vs cached vs TriC on R-MAT S30, uk-2005 and wiki-en proxies.
//
// Expected shape (paper): flatter speedups than Fig. 9 (1.4x-1.8x per 4x
// nodes, load-imbalance bound); caching still saves up to 73% on R-MAT S30
// with a cache of only ~12% of the graph's CSR size. The paper reports
// missing TriC points where runs exceeded the 9h wall-time — the S30 proxy
// TriC run is skipped here for the same (by-design) reason.
#include <cstdio>

#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_flag("skip-tric", "skip TriC baselines entirely", false);
  cli.add_flag("tric-on-s30",
               "run TriC on the R-MAT S30 proxy too (slow by design — the "
               "paper's own runs exceeded the 9h wall-time)", false);
}

void run(bench::ScenarioContext& ctx) {
  const bool skip_tric = ctx.cli.get_flag("skip-tric");
  const bool tric_on_s30 = ctx.cli.get_flag("tric-on-s30");

  std::vector<std::string> graphs = {"R-MAT-S30-EF16", "uk-2005", "wiki-en"};
  std::vector<std::uint32_t> nodes = {128, 256, 512};
  if (ctx.smoke) {
    graphs = {"R-MAT-S30-EF16"};
    nodes = {32, 64};
  }

  for (const auto& name : graphs) {
    const auto& g = ctx.graph(name);
    std::printf("\n### %s — %s\n", name.c_str(), bench::describe(g).c_str());

    // Paper note: the S30 result used a cache of only 12% of the CSR size;
    // the web graphs get the same generous budget rule as Fig. 9.
    const double budget_frac = (name == "R-MAT-S30-EF16") ? 0.12 : 0.5;

    util::Table table({"Nodes", "LCC non-cached (s)", "LCC cached (s)",
                       "TriC (s)", "cached vs plain", "remote edges",
                       "comm share"});
    double first_plain = 0, last_plain = 0;
    for (std::uint32_t p : nodes) {
      const bool gate = name == "R-MAT-S30-EF16" && p == nodes.front();
      char metric[96];
      std::snprintf(metric, sizeof(metric), "makespan/plain/%s/p%u",
                    name.c_str(), p);
      const auto plain =
          ctx.run_lcc_trials(metric, {.gate = gate}, g, p, {});

      core::EngineConfig cached_cfg;
      cached_cfg.use_cache = true;
      cached_cfg.victim_policy = clampi::VictimPolicy::UserScore;
      cached_cfg.cache_sizing = core::CacheSizing::paper_default(
          g.num_vertices(),
          static_cast<std::uint64_t>(budget_frac *
                                     static_cast<double>(g.csr_bytes())));
      std::snprintf(metric, sizeof(metric), "makespan/cached/%s/p%u",
                    name.c_str(), p);
      const auto cached =
          ctx.run_lcc_trials(metric, {.gate = gate}, g, p, cached_cfg);

      std::string tric_s = "- (exceeds wall-time, as in paper)";
      if (!skip_tric && (name != "R-MAT-S30-EF16" || tric_on_s30)) {
        std::snprintf(metric, sizeof(metric), "makespan/tric/%s/p%u",
                      name.c_str(), p);
        tric_s = util::Table::fmt(
            ctx.run_tric_trials(metric, {}, g, p, {}).run.makespan, 3);
      } else if (skip_tric) {
        tric_s = "-";
      }

      if (p == nodes.front()) first_plain = plain.run.makespan;
      last_plain = plain.run.makespan;
      double comm = 0, total = 0;
      for (const auto& s : plain.run.stats) {
        comm += s.comm_seconds;
        total += s.comm_seconds + s.compute_seconds;
      }
      table.add_row(
          {util::Table::fmt_int(p), util::Table::fmt(plain.run.makespan, 3),
           util::Table::fmt(cached.run.makespan, 3), tric_s,
           util::Table::fmt_percent(1.0 -
                                    cached.run.makespan / plain.run.makespan),
           util::Table::fmt_percent(plain.remote_edge_fraction()),
           util::Table::fmt_percent(total > 0 ? comm / total : 0.0)});
    }
    table.print("Fig. 10 strong scaling: " + name);
    ctx.rec.add_table("Fig. 10 strong scaling: " + name, table);
    std::printf("async speedup %u -> %u nodes: %.1fx (paper: 1.4x-1.8x, "
                "imbalance bound)\n",
                nodes.front(), nodes.back(), first_plain / last_plain);
  }

  ctx.rec.add_note(
      "scale-bound deviation: container proxies (max_deg ~ 6e3) are "
      "compulsory-miss bound at p >= 128 — the paper's own over-partitioned "
      "regime (LiveJournal at 64 nodes); use --scale-boost to approach the "
      "paper's regime");
  std::printf(
      "\npaper shape checks: flatter scaling than Fig. 9 (paper: "
      "1.4x-1.8x); TriC slower where it completes at all; communication "
      "dominates.\n"
      "Scale-bound deviation: per-rank data reuse is governed by "
      "max_degree/p. The paper's graphs keep hub degrees in the millions, "
      "so caching still saves up to 73%% at 512 nodes; the container-scale "
      "proxies (max_deg ~ 6e3) are compulsory-miss bound at p >= 128, which "
      "is the same over-partitioned regime the paper itself reports for "
      "LiveJournal at 64 nodes (and fig9 reproduces, crossover included). "
      "Use --scale-boost to push the proxies toward the paper's regime.\n");
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig10, "fig10", "Fig. 10",
                       "strong scaling 128..512 nodes", add_flags, run)
