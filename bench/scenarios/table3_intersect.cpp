// Paper Table III: edges processed per microsecond for the hybrid, SSI,
// and binary-search intersection methods on R-MAT and social-graph proxies,
// using OpenMP-parallel intersections (Section III-C).
//
// Expected shape (paper): hybrid >= SSI >= binary on every graph. Absolute
// edges/us differ from the paper's 16-core Xeon Gold; ordering should not.
// Wall-clock metrics: host-dependent, never gated.
#include <cstdio>

#if !defined(ATLC_NO_OPENMP)
#include <omp.h>
#endif

#include "atlc/intersect/parallel.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

int num_procs() {
#if defined(ATLC_NO_OPENMP)
  return 1;
#else
  return omp_get_num_procs();
#endif
}

/// One full edge-centric LCC pass over the graph with the given kernel;
/// returns edges/us. This is the paper's shared-memory measurement: the
/// whole counting loop, not a micro-kernel.
double edges_per_us(const graph::CSRGraph& g, intersect::Method m,
                    int threads, bool smoke) {
  const intersect::ParallelConfig par{.num_threads = threads, .cutoff = 4096};
  util::Recorder rec(smoke
                         ? util::Recorder::Options{.min_reps = 1,
                                                   .max_reps = 2,
                                                   .ci_fraction = 0.5}
                         : util::Recorder::Options{.min_reps = 2,
                                                   .max_reps = 5,
                                                   .ci_fraction = 0.15});
  volatile std::uint64_t sink = 0;
  const auto summary = rec.run_until_ci([&] {
    std::uint64_t total = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto adj_v = g.neighbors(v);
      for (graph::VertexId j : adj_v)
        total += intersect::count_common_parallel(adj_v, g.neighbors(j), m, par);
    }
    sink += total;
  });
  (void)sink;
  return static_cast<double>(g.num_edges()) / (summary.median * 1e6);
}

void add_flags(util::Cli& cli) {
  cli.add_int("threads", "OpenMP threads (paper uses 16)", 16);
}

void run(bench::ScenarioContext& ctx) {
  const int threads =
      ctx.smoke ? 2 : static_cast<int>(ctx.cli.get_int("threads"));

  // Paper Table III graphs: R-MAT S20 EF8/16/32 + LiveJournal + Orkut.
  // EF sweep shows the density effect; proxies stand in for the SNAP sets.
  struct Row {
    const char* label;
    bench::ProxySpec spec;
  };
  std::vector<Row> rows = {
      {"R-MAT S20 EF8",
       {"rmat-ef8", "", 12, 8, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"R-MAT S20 EF16",
       {"rmat-ef16", "", 12, 16, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"R-MAT S20 EF32",
       {"rmat-ef32", "", 12, 32, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"LiveJournal", bench::find_proxy("LiveJournal")},
      {"Orkut", bench::find_proxy("Orkut")},
  };
  if (ctx.smoke) rows.resize(2);

  std::printf("threads: %d (host has %d cores — above that the sweep "
              "oversubscribes)\n",
              threads, num_procs());

  util::Table table(
      {"Name", "Hybrid", "SSI", "Binary search", "hybrid competitive?"});
  bool shape_holds = true;
  for (const auto& row : rows) {
    const auto& g = ctx.graph(row.spec);
    const double hybrid =
        edges_per_us(g, intersect::Method::Hybrid, threads, ctx.smoke);
    const double ssi =
        edges_per_us(g, intersect::Method::SSI, threads, ctx.smoke);
    const double binary =
        edges_per_us(g, intersect::Method::Binary, threads, ctx.smoke);
    for (const auto& [label, perf] :
         {std::pair<const char*, double>{"hybrid", hybrid},
          {"ssi", ssi},
          {"binary", binary}}) {
      const std::string metric =
          std::string("edges_per_us/") + row.label + "/" + label;
      ctx.rec.declare_metric(metric, {.unit = "edges/us",
                                      .direction = "higher",
                                      .expect_deterministic = false});
      ctx.rec.add_trial(metric, perf);
    }
    // Robust part of the paper's claim: hybrid clearly beats pure binary
    // search and stays within a whisker of the best method. Whether hybrid
    // edges out SSI by the paper's <=8% is hardware-sensitive (the Eq. 3
    // constant assumes the paper's cache hierarchy). 0.80 threshold:
    // run-to-run wall-clock noise on a small host reaches ~15% for the
    // denser graphs; the robust claim is hybrid >> binary.
    const bool ok = hybrid > binary && hybrid >= 0.80 * std::max(ssi, binary);
    shape_holds &= ok;
    table.add_row({row.label, util::Table::fmt(hybrid, 3),
                   util::Table::fmt(ssi, 3), util::Table::fmt(binary, 3),
                   ok ? "yes" : "NO"});
  }
  table.print("Table III: edges processed per microsecond");
  ctx.rec.add_table("Table III: intersection methods, edges/us", table);
  std::printf(
      "\npaper shape check (hybrid > binary everywhere, and within 20%% of "
      "the best method): %s\n(paper reports hybrid strictly best by <=8%% "
      "on a 16-core Xeon Gold; the Eq. 3 crossover constant is "
      "cache-hierarchy dependent)\n",
      shape_holds ? "HOLDS" : "VIOLATED");
  ctx.rec.add_note(std::string("hybrid > binary everywhere and within 20% "
                               "of the best method: ") +
                   (shape_holds ? "HOLDS" : "VIOLATED"));
}

}  // namespace

ATLC_REGISTER_SCENARIO(table3, "table3", "Table III",
                       "intersection methods, edges/us", add_flags, run)
