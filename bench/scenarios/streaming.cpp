// Streaming scenario: incremental TC/LCC maintenance vs full recount.
//
// A dynamic-graph service sees batches of edge insertions/deletions; the
// strawman reprocesses the whole graph per batch, the atlc::stream engine
// intersects only the update edges through the (epoch-checked) cached
// pipeline. This scenario sweeps batch size x cache on/off and reports
// the virtual-clock makespan of both strategies plus the epoch-
// invalidation traffic (stale evictions) that dynamic graphs introduce —
// the cost of relaxing the paper's always-cache assumption (DESIGN.md §7).
// Expect incremental to win by orders of magnitude at small batches and
// the gap to narrow as the batch approaches the edge count.
#include <cstdio>

#include "atlc/stream/stream_engine.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "simulated ranks", 8);
  cli.add_int("stream-batches", "update batches per configuration", 4);
}

graph::EdgeList edge_list_of(const graph::CSRGraph& g) {
  graph::EdgeList e(g.num_vertices(), {}, graph::Directedness::Undirected);
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
    for (graph::VertexId v : g.neighbors(u)) e.add_edge(u, v);
  return e;
}

void run(bench::ScenarioContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(
      ctx.smoke ? 4 : ctx.cli.get_int("ranks"));
  const auto num_batches = static_cast<std::size_t>(
      ctx.smoke ? 3 : ctx.cli.get_int("stream-batches"));

  const auto& g = ctx.graph("R-MAT-S21-EF16");
  std::printf("graph: %s, ranks=%u, %zu batches per config\n",
              bench::describe(g).c_str(), ranks, num_batches);

  const std::vector<std::size_t> sizes =
      ctx.smoke ? std::vector<std::size_t>{16, 64}
                : std::vector<std::size_t>{64, 512, 4096};

  for (const bool cached : {false, true}) {
    util::Table t({"Batch size", "incremental (s)", "recount (s)", "speedup",
                   "stale evict", "adj hit %"});
    for (const std::size_t bs : sizes) {
      core::EngineConfig cfg;
      cfg.cost = ctx.cost();
      if (cached) {
        cfg.use_cache = true;
        cfg.cache_sizing = core::CacheSizing::paper_default(
            g.num_vertices(), g.csr_bytes() / 2);
      }

      stream::WorkloadConfig wl;
      wl.num_batches = num_batches;
      wl.batch_size = bs;
      wl.seed = 1 + ctx.seed;
      const auto batches = stream::generate_batches(g, wl);

      char metric[64];
      std::snprintf(metric, sizeof(metric), "makespan/stream%s/bs%zu",
                    cached ? "_cached" : "", bs);
      ctx.rec.declare_metric(metric, {.gate = true});
      char rmetric[64];
      std::snprintf(rmetric, sizeof(rmetric), "makespan/recount%s/bs%zu",
                    cached ? "_cached" : "", bs);
      ctx.rec.declare_metric(rmetric, {.gate = true});

      stream::StreamResult last;
      double recount_total = 0.0;
      for (std::size_t trial = 0; trial < std::max<std::size_t>(1, ctx.repeats);
           ++trial) {
        // Incremental arm: one cold count (not part of the per-batch
        // metric; a recount strawman pays it identically), then the
        // batches through the streaming engine.
        stream::StreamOptions sopts;
        sopts.engine = cfg;
        auto r = stream::run_streaming_lcc(g, batches, ranks, sopts);

        util::Json detail = util::Json::object();
        detail["initial_makespan"] = r.initial_makespan;
        detail["global_triangles"] = r.global_triangles;
        detail["comm"] = util::to_json(r.run.total());
        if (cached) {
          detail["offsets_cache"] = util::to_json(r.offsets_cache_total);
          detail["adj_cache"] = util::to_json(r.adj_cache_total);
        }
        ctx.rec.add_trial(metric, r.stream_makespan, std::move(detail));

        // Recount arm: the strawman recomputes LCC from scratch on the
        // evolved graph after every batch.
        recount_total = 0.0;
        graph::EdgeList evolved = edge_list_of(g);
        for (const stream::Batch& batch : batches) {
          stream::apply_to_edge_list(evolved, batch);
          const auto snap = graph::CSRGraph::from_edges(evolved);
          recount_total +=
              core::run_distributed_lcc(snap, ranks, cfg).run.makespan;
        }
        ctx.rec.add_trial(rmetric, recount_total);
        last = std::move(r);
      }

      char bsbuf[16];
      std::snprintf(bsbuf, sizeof(bsbuf), "%zu", bs);
      t.add_row({bsbuf, util::Table::fmt(last.stream_makespan, 5),
                 util::Table::fmt(recount_total, 5),
                 util::Table::fmt(recount_total / last.stream_makespan, 1),
                 util::Table::fmt(static_cast<double>(
                                      last.adj_cache_total.stale_evictions +
                                      last.offsets_cache_total.stale_evictions),
                                  0),
                 util::Table::fmt(100.0 * last.adj_cache_total.hit_rate(), 1)});
    }
    const char* title = cached ? "streaming vs recount (CLaMPI cache on)"
                               : "streaming vs recount (uncached)";
    t.print(title);
    ctx.rec.add_table(title, t);
  }
  ctx.rec.add_note(
      "incremental maintenance intersects only the update edges through the "
      "cached pipeline; every mutating batch bumps the window epochs, so "
      "cached runs show stale_evictions instead of coherence violations");
}

}  // namespace

ATLC_REGISTER_SCENARIO(streaming, "streaming", "DESIGN.md §7",
                       "dynamic-graph batches: incremental TC/LCC vs full "
                       "recount, batch size x cache sweep",
                       add_flags, run)
