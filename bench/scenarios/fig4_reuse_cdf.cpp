// Paper Fig. 4: how the highest-degree vertices concentrate the remote
// reads issued under 1D partitioning with 8 processes. The paper highlights
// the share of remote reads targeting the top 10% of vertices: ~11.7% for a
// uniform graph vs 42-92% for power-law graphs.
#include <cstdio>

#include "atlc/graph/degree_stats.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

void add_flags(util::Cli& cli) {
  cli.add_int("ranks", "number of simulated processes", 8);
}

void run(bench::ScenarioContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(ctx.cli.get_int("ranks"));

  std::vector<std::string> graphs = {"Uniform", "R-MAT-S21-EF16", "Orkut",
                                     "LiveJournal"};
  if (ctx.smoke) graphs = {"Uniform", "R-MAT-S21-EF16"};
  const double fractions[] = {0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0};

  util::Table table({"Graph", "top 0.1%", "top 1%", "top 5%", "top 10%",
                     "top 25%", "top 50%", "top 100%"});
  double uniform_top10 = 0, rmat_top10 = 0;
  for (const auto& name : graphs) {
    const auto& g = ctx.graph(name);
    core::EngineConfig cfg;
    cfg.track_remote_reads = true;
    const auto result = ctx.run_lcc_trials(
        "makespan/" + name, {.gate = name == "R-MAT-S21-EF16"}, g, ranks, cfg);

    std::vector<std::string> row = {name};
    for (double f : fractions) {
      const double share = graph::top_degree_share(g, result.remote_reads, f);
      row.push_back(util::Table::fmt_percent(share));
      if (f == 0.10 && name == "Uniform") uniform_top10 = share;
      if (f == 0.10 && name == "R-MAT-S21-EF16") rmat_top10 = share;
      ctx.rec.declare_metric("top_share/" + name,
                             {.unit = "fraction", .direction = "higher"});
      if (f == 0.10) ctx.rec.add_trial("top_share/" + name, share);
    }
    table.add_row(std::move(row));
  }
  table.print(
      "Fig. 4: share of remote reads targeting the top-k% highest-degree "
      "vertices (1D partitioning)");
  ctx.rec.add_table("Fig. 4: remote-read share on top-k% degree vertices",
                    table);

  const bool holds = rmat_top10 > 3 * uniform_top10;
  std::printf(
      "\npaper shape check: uniform graph top-10%% share (~11.7%% in paper) "
      "= %.1f%%; R-MAT top-10%% share (~91.9%% in paper) = %.1f%% -> %s\n",
      100 * uniform_top10, 100 * rmat_top10, holds ? "HOLDS" : "VIOLATED");
  ctx.rec.add_note(std::string("shape check (R-MAT top-10% share > 3x "
                               "uniform): ") +
                   (holds ? "HOLDS" : "VIOLATED"));
}

}  // namespace

ATLC_REGISTER_SCENARIO(fig4, "fig4", "Fig. 4",
                       "remote-read concentration on hubs, 8 procs",
                       add_flags, run)
