// Reproduces paper Fig. 10: large-scale strong scaling (128..512 nodes) of
// LCC non-cached vs cached vs TriC on R-MAT S30, uk-2005 and wiki-en
// proxies.
//
// Expected shape (paper): flatter speedups than Fig. 9 (1.4x-1.8x per 4x
// nodes, load-imbalance bound); caching still saves up to 73% on R-MAT S30
// with a cache of only ~12% of the graph's CSR size. The paper reports
// missing TriC points where runs exceeded the 9h wall-time — the S30 proxy
// TriC run is skipped here for the same (by-design) reason.
#include <cstdio>

#include "atlc/core/lcc.hpp"
#include "atlc/tric/tric.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace atlc;
  util::Cli cli("bench_fig10_large_scale",
                "Paper Fig. 10: strong scaling 128..512 nodes");
  bench::add_common_flags(cli);
  cli.add_flag("skip-tric", "skip TriC baselines entirely", false);
  cli.add_flag("tric-on-s30",
               "run TriC on the R-MAT S30 proxy too (slow by design — the "
               "paper's own runs exceeded the 9h wall-time)", false);
  if (!cli.parse(argc, argv)) return 1;
  const int boost = static_cast<int>(cli.get_int("scale-boost"));
  const bool skip_tric = cli.get_flag("skip-tric");
  const bool tric_on_s30 = cli.get_flag("tric-on-s30");

  const std::vector<std::string> graphs = {"R-MAT-S30-EF16", "uk-2005",
                                           "wiki-en"};
  const std::vector<std::uint32_t> nodes = {128, 256, 512};

  for (const auto& name : graphs) {
    const auto& g = bench::build_proxy(bench::find_proxy(name), boost);
    std::printf("\n### %s — %s\n", name.c_str(), bench::describe(g).c_str());

    // Paper note: the S30 result used a cache of only 12% of the CSR size;
    // the web graphs get the same generous budget rule as Fig. 9.
    const double budget_frac = (name == "R-MAT-S30-EF16") ? 0.12 : 0.5;

    util::Table table({"Nodes", "LCC non-cached (s)", "LCC cached (s)",
                       "TriC (s)", "cached vs plain", "remote edges",
                       "comm share"});
    double first_plain = 0, last_plain = 0;
    for (std::uint32_t p : nodes) {
      core::EngineConfig plain_cfg;
      plain_cfg.cost = bench::calibrated_cost();
      const auto plain = core::run_distributed_lcc(g, p, plain_cfg);

      core::EngineConfig cached_cfg = plain_cfg;
      cached_cfg.use_cache = true;
      cached_cfg.victim_policy = clampi::VictimPolicy::UserScore;
      cached_cfg.cache_sizing = core::CacheSizing::paper_default(
          g.num_vertices(),
          static_cast<std::uint64_t>(budget_frac *
                                     static_cast<double>(g.csr_bytes())));
      const auto cached = core::run_distributed_lcc(g, p, cached_cfg);

      std::string tric_s = "- (exceeds wall-time, as in paper)";
      if (!skip_tric && (name != "R-MAT-S30-EF16" || tric_on_s30)) {
        tric::TricConfig tc;
        tc.cost = bench::calibrated_cost();
        tric_s = util::Table::fmt(tric::run_tric(g, p, tc).run.makespan, 3);
      } else if (skip_tric) {
        tric_s = "-";
      }

      if (p == nodes.front()) first_plain = plain.run.makespan;
      last_plain = plain.run.makespan;
      double comm = 0, total = 0;
      for (const auto& s : plain.run.stats) {
        comm += s.comm_seconds;
        total += s.comm_seconds + s.compute_seconds;
      }
      table.add_row(
          {util::Table::fmt_int(p), util::Table::fmt(plain.run.makespan, 3),
           util::Table::fmt(cached.run.makespan, 3), tric_s,
           util::Table::fmt_percent(1.0 -
                                    cached.run.makespan / plain.run.makespan),
           util::Table::fmt_percent(plain.remote_edge_fraction()),
           util::Table::fmt_percent(total > 0 ? comm / total : 0.0)});
    }
    table.print("Fig. 10 strong scaling: " + name);
    std::printf("async speedup %u -> %u nodes: %.1fx (paper: 1.4x-1.8x, "
                "imbalance bound)\n",
                nodes.front(), nodes.back(), first_plain / last_plain);
  }

  std::printf(
      "\npaper shape checks: flatter scaling than Fig. 9 (paper: "
      "1.4x-1.8x); TriC slower where it completes at all; communication "
      "dominates.\n"
      "Scale-bound deviation (see EXPERIMENTS.md): per-rank data reuse is "
      "governed by max_degree/p. The paper's graphs keep hub degrees in "
      "the millions, so caching still saves up to 73%% at 512 nodes; the "
      "container-scale proxies (max_deg ~ 6e3) are compulsory-miss bound "
      "at p >= 128, which is the same over-partitioned regime the paper "
      "itself reports for LiveJournal at 64 nodes (and Fig. 9 reproduces, "
      "crossover included). Use --scale-boost to push the proxies toward "
      "the paper's regime.\n");
  return 0;
}
