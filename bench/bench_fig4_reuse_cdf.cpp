// Reproduces paper Fig. 4: how the highest-degree vertices concentrate the
// remote reads issued under 1D partitioning with 8 processes. The paper
// highlights the share of remote reads targeting the top 10% of vertices:
// ~11.7% for a uniform graph vs 42-92% for power-law graphs.
#include <cstdio>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace atlc;
  util::Cli cli("bench_fig4_reuse_cdf",
                "Paper Fig. 4: remote-read concentration on hubs, 8 procs");
  bench::add_common_flags(cli);
  cli.add_int("ranks", "number of simulated processes", 8);
  if (!cli.parse(argc, argv)) return 1;
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks"));
  const int boost = static_cast<int>(cli.get_int("scale-boost"));

  const std::vector<std::string> graphs = {"Uniform", "R-MAT-S21-EF16",
                                           "Orkut", "LiveJournal"};
  const double fractions[] = {0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0};

  util::Table table({"Graph", "top 0.1%", "top 1%", "top 5%", "top 10%",
                     "top 25%", "top 50%", "top 100%"});
  double uniform_top10 = 0, rmat_top10 = 0;
  for (const auto& name : graphs) {
    const auto& g = bench::build_proxy(bench::find_proxy(name), boost);
    core::EngineConfig cfg;
    cfg.track_remote_reads = true;
    cfg.cost = bench::calibrated_cost();
    const auto result = core::run_distributed_lcc(g, ranks, cfg);

    std::vector<std::string> row = {name};
    for (double f : fractions) {
      const double share = graph::top_degree_share(g, result.remote_reads, f);
      row.push_back(util::Table::fmt_percent(share));
      if (f == 0.10 && name == "Uniform") uniform_top10 = share;
      if (f == 0.10 && name == "R-MAT-S21-EF16") rmat_top10 = share;
    }
    table.add_row(std::move(row));
  }
  table.print(
      "Fig. 4: share of remote reads targeting the top-k% highest-degree "
      "vertices (8 processes, 1D partitioning)");

  std::printf(
      "\npaper shape check: uniform graph top-10%% share (~11.7%% in paper) "
      "= %.1f%%; R-MAT top-10%% share (~91.9%% in paper) = %.1f%% -> %s\n",
      100 * uniform_top10, 100 * rmat_top10,
      (rmat_top10 > 3 * uniform_top10) ? "HOLDS" : "VIOLATED");
  return 0;
}
