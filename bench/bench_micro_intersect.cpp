// Google-benchmark micro-kernels behind Table III / Fig. 6: the raw
// intersection kernels across list-length ratios, the Eq. (3) hybrid rule's
// selection quality, and the OpenMP-parallel variants. Complements the
// whole-graph numbers in bench_table3_intersect with statistically
// disciplined per-kernel timings.
#include <benchmark/benchmark.h>

#include <vector>

#include "atlc/intersect/intersect.hpp"
#include "atlc/intersect/parallel.hpp"
#include "atlc/util/rng.hpp"

namespace {

using namespace atlc;
using V = std::vector<intersect::VertexId>;

V sorted_unique(std::size_t len, std::uint32_t universe, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  V v;
  v.reserve(len * 2);
  for (std::size_t i = 0; i < len * 2 && v.size() < len * 2; ++i)
    v.push_back(static_cast<intersect::VertexId>(rng.next_below(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  if (v.size() > len) v.resize(len);
  return v;
}

/// args: {len_a, ratio} -> |B| = len_a * ratio. Covers the balanced regime
/// (SSI's home turf) through the skewed regime (binary search's, Eq. 3).
void args_matrix(benchmark::internal::Benchmark* b) {
  for (int len : {64, 1024, 16384})
    for (int ratio : {1, 8, 64}) b->Args({len, ratio});
}

void BM_SSI(benchmark::State& state) {
  const auto a = sorted_unique(state.range(0), 1u << 24, 1);
  const auto b = sorted_unique(state.range(0) * state.range(1), 1u << 24, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(intersect::count_ssi(a, b));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SSI)->Apply(args_matrix);

void BM_Binary(benchmark::State& state) {
  const auto a = sorted_unique(state.range(0), 1u << 24, 1);
  const auto b = sorted_unique(state.range(0) * state.range(1), 1u << 24, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(intersect::count_binary(a, b));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_Binary)->Apply(args_matrix);

void BM_Hybrid(benchmark::State& state) {
  const auto a = sorted_unique(state.range(0), 1u << 24, 1);
  const auto b = sorted_unique(state.range(0) * state.range(1), 1u << 24, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(intersect::count_hybrid(a, b));
}
BENCHMARK(BM_Hybrid)->Apply(args_matrix);

void BM_SSIParallel(benchmark::State& state) {
  const auto a = sorted_unique(1 << 16, 1u << 24, 1);
  const auto b = sorted_unique(1 << 18, 1u << 24, 2);
  const intersect::ParallelConfig cfg{
      .num_threads = static_cast<int>(state.range(0)), .cutoff = 0};
  for (auto _ : state)
    benchmark::DoNotOptimize(intersect::count_ssi_parallel(a, b, cfg));
}
BENCHMARK(BM_SSIParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_BinaryParallel(benchmark::State& state) {
  const auto a = sorted_unique(1 << 12, 1u << 24, 1);
  const auto b = sorted_unique(1 << 20, 1u << 24, 2);
  const intersect::ParallelConfig cfg{
      .num_threads = static_cast<int>(state.range(0)), .cutoff = 0};
  for (auto _ : state)
    benchmark::DoNotOptimize(intersect::count_binary_parallel(a, b, cfg));
}
BENCHMARK(BM_BinaryParallel)->Arg(1)->Arg(2)->Arg(4);

/// Upper-triangle trimming (paper Section II-C de-duplication).
void BM_CountAbove(benchmark::State& state) {
  const auto a = sorted_unique(4096, 1u << 24, 1);
  const auto b = sorted_unique(4096, 1u << 24, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        intersect::count_common_above(a, b, 1u << 23));
}
BENCHMARK(BM_CountAbove);

}  // namespace

BENCHMARK_MAIN();
