// Reproduces paper Fig. 6: strong scaling of the hybrid intersection method
// on shared memory, 1..16 threads, reported as edges/us.
//
// Paper result: 2.7x speedup at 16 threads on R-MAT S20 EF32, limited by
// the per-edge OpenMP region entry cost. NOTE: this host has few cores;
// the curve flattens at the physical core count and the output records
// that deviation explicitly (EXPERIMENTS.md discusses it).
#include <cstdio>
#include <omp.h>

#include "atlc/intersect/parallel.hpp"
#include "atlc/util/recorder.hpp"
#include "common.hpp"

namespace {

using namespace atlc;

double edges_per_us(const graph::CSRGraph& g, int threads) {
  const intersect::ParallelConfig par{.num_threads = threads, .cutoff = 4096};
  util::Recorder rec({.min_reps = 3, .max_reps = 8, .ci_fraction = 0.10});
  volatile std::uint64_t sink = 0;
  const auto summary = rec.run_until_ci([&] {
    std::uint64_t total = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto adj_v = g.neighbors(v);
      for (graph::VertexId j : adj_v)
        total += intersect::count_common_parallel(
            adj_v, g.neighbors(j), intersect::Method::Hybrid, par);
    }
    sink += total;
  });
  (void)sink;
  return static_cast<double>(g.num_edges()) / (summary.median * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_fig6_shared_scaling",
                "Paper Fig. 6: shared-memory strong scaling, hybrid method");
  bench::add_common_flags(cli);
  cli.add_int("max-threads", "largest thread count in the sweep", 16);
  if (!cli.parse(argc, argv)) return 1;
  const int boost = static_cast<int>(cli.get_int("scale-boost"));
  const int max_threads = static_cast<int>(cli.get_int("max-threads"));

  struct Row {
    const char* label;
    bench::ProxySpec spec;
  };
  const std::vector<Row> graphs = {
      {"R-MAT S20 EF16",
       {"rmat-ef16", "", 12, 16, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"R-MAT S20 EF32",
       {"rmat-ef32", "", 12, 32, graph::Directedness::Undirected, 20,
        bench::ProxySpec::Kind::Rmat}},
      {"Orkut", bench::find_proxy("Orkut")},
  };

  std::printf("physical cores: %d — speedups flatten beyond that "
              "(paper host had 16 cores)\n",
              omp_get_num_procs());

  std::vector<std::string> header = {"Threads"};
  for (const auto& gr : graphs) header.push_back(gr.label);
  util::Table table(header);

  std::vector<double> base(graphs.size(), 0.0), last(graphs.size(), 0.0);
  for (int t = 1; t <= max_threads; t *= 2) {
    std::vector<std::string> row = {std::to_string(t)};
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      const auto& g = bench::build_proxy(graphs[i].spec, boost);
      const double perf = edges_per_us(g, t);
      if (t == 1) base[i] = perf;
      last[i] = perf;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.3f (%.1fx)", perf,
                    base[i] > 0 ? perf / base[i] : 0.0);
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  table.print("Fig. 6: hybrid-method strong scaling (edges/us, speedup vs 1 thread)");

  std::printf("\npaper shape check: parallel intersection speeds up until "
              "the physical core count (paper: up to 2.7x at 16 threads on "
              "a 16-core host).\n");
  return 0;
}
