// Ablation bench for the design decisions called out in DESIGN.md §4:
//   D5: hybrid vs pure SSI vs pure binary inside the distributed engine;
//   D6: double buffering (overlap) on vs off — the paper notes comm
//       dominance limits the benefit (Section IV-D2);
//   D7: Block1D vs Cyclic1D partitioning (paper cites [26] as the
//       balance-improving alternative/future work);
//   plus: CLaMPI adaptive hash resizing on vs off.
#include <cstdio>

#include "atlc/core/lcc.hpp"
#include "common.hpp"

namespace {

using namespace atlc;

double run_makespan(const graph::CSRGraph& g, std::uint32_t ranks,
                    core::EngineConfig cfg,
                    graph::PartitionKind part = graph::PartitionKind::Block1D) {
  cfg.cost = bench::calibrated_cost();
  return core::run_distributed_lcc(g, ranks, cfg, {}, part).run.makespan;
}

double imbalance(const graph::CSRGraph& g, std::uint32_t ranks,
                 graph::PartitionKind part) {
  core::EngineConfig cfg;
  cfg.cost = bench::calibrated_cost();
  const auto r = core::run_distributed_lcc(g, ranks, cfg, {}, part);
  double mx = 0, sum = 0;
  for (double c : r.run.clocks) {
    mx = std::max(mx, c);
    sum += c;
  }
  return mx / (sum / static_cast<double>(r.run.clocks.size()));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_ablation", "Design-decision ablations (DESIGN.md §4)");
  bench::add_common_flags(cli);
  cli.add_int("ranks", "simulated ranks", 16);
  if (!cli.parse(argc, argv)) return 1;
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks"));
  const int boost = static_cast<int>(cli.get_int("scale-boost"));

  const auto& g =
      bench::build_proxy(bench::find_proxy("R-MAT-S21-EF16"), boost);
  std::printf("graph: %s, ranks=%u\n", bench::describe(g).c_str(), ranks);

  // D5: intersection method inside the distributed engine.
  {
    util::Table t({"Method", "makespan (s)"});
    for (auto m : {intersect::Method::Hybrid, intersect::Method::SSI,
                   intersect::Method::Binary}) {
      core::EngineConfig cfg;
      cfg.method = m;
      t.add_row({intersect::method_name(m),
                 util::Table::fmt(run_makespan(g, ranks, cfg), 4)});
    }
    t.print("D5: intersection method (distributed engine)");
  }

  // D6: double buffering.
  {
    util::Table t({"Pipeline", "makespan (s)"});
    core::EngineConfig on, off;
    on.double_buffer = true;
    off.double_buffer = false;
    const double t_on = run_makespan(g, ranks, on);
    const double t_off = run_makespan(g, ranks, off);
    t.add_row({"double-buffered (overlap)", util::Table::fmt(t_on, 4)});
    t.add_row({"no overlap", util::Table::fmt(t_off, 4)});
    t.print("D6: double buffering");
    std::printf("overlap saves %.1f%% — paper Section IV-D2 predicts a "
                "small gain because communication dominates.\n",
                100.0 * (1.0 - t_on / t_off));
  }

  // D7: partitioning.
  {
    util::Table t({"Partitioning", "makespan (s)", "imbalance (max/mean)"});
    for (auto kind :
         {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D}) {
      core::EngineConfig cfg;
      t.add_row({kind == graph::PartitionKind::Block1D ? "Block 1D (paper)"
                                                       : "Cyclic 1D [26]",
                 util::Table::fmt(run_makespan(g, ranks, cfg, kind), 4),
                 util::Table::fmt(imbalance(g, ranks, kind), 3)});
    }
    t.print("D7: 1D partitioning scheme");
  }

  // Adaptive cache resizing.
  {
    util::Table t({"Cache tuning", "makespan (s)"});
    for (bool adaptive : {false, true}) {
      core::EngineConfig cfg;
      cfg.use_cache = true;
      cfg.cache_adaptive = adaptive;
      // Deliberately undersized hash table: adaptivity has something to fix.
      cfg.cache_sizing = core::CacheSizing::paper_default(
          g.num_vertices(), g.csr_bytes() / 4);
      cfg.cache_sizing.adj_slots = 64;
      t.add_row({adaptive ? "adaptive resize (CLaMPI)" : "static hash table",
                 util::Table::fmt(run_makespan(g, ranks, cfg), 4)});
    }
    t.print("CLaMPI adaptive hash resizing (undersized initial table)");
  }
  return 0;
}
