#pragma once

// Scenario registry for the unified `atlc_bench` harness.
//
// Each paper figure/table is one self-registering Scenario: a name
// (`--scenario fig7`), the paper anchor it reproduces, optional extra CLI
// flags, and a run function. The single atlc_bench binary lists, selects,
// and drives scenarios, and every run emits a structured JSON document
// through util::BenchRecorder (schema: DESIGN.md §5) that
// tools/bench_compare gates on. REPRODUCING.md maps every paper
// figure/table to its scenario and invocation.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "atlc/core/lcc.hpp"
#include "atlc/tric/tric.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/recorder.hpp"
#include "common.hpp"

namespace atlc::bench {

/// Per-run state handed to a scenario's run function.
struct ScenarioContext {
  util::Cli& cli;
  util::BenchRecorder& rec;
  /// CI-sized grids: scenarios shrink sweeps/graph lists and the harness
  /// shrinks every proxy by `kSmokeBoost` R-MAT scale steps.
  bool smoke = false;
  /// `--seed`: offsets every proxy generator seed, yielding a different
  /// (but equally structured) graph instance per seed.
  std::uint64_t seed = 0;
  /// `--repeats`: trials per measurement; JSON keeps every trial and the
  /// median. Virtual-time metrics must repeat identically (DESIGN.md §2).
  std::size_t repeats = 1;
  /// `--calibrate`: measure the intersection cost model on this host
  /// instead of using the paper-calibrated constants. Calibrated runs are
  /// more faithful to the host but no longer bit-deterministic.
  bool calibrate = false;
  /// `--phase-breakdown`: trace each engine trial through atlc::obs and
  /// attach the per-cause virtual-time breakdown ({cause: {seconds,
  /// per_rank[]}}) to the trial record. Off by default so baseline
  /// documents are unchanged.
  bool phase_breakdown = false;

  static constexpr int kSmokeBoost = -3;

  /// Effective R-MAT scale adjustment: --scale-boost plus the smoke shrink.
  [[nodiscard]] int boost() const;

  /// Cost model per --calibrate (calibrated once per process).
  [[nodiscard]] const intersect::CostModel& cost() const;

  /// Registry proxy (common.hpp) with boost() and the --seed offset applied.
  [[nodiscard]] const graph::CSRGraph& graph(const std::string& proxy_name) const;
  /// Ad-hoc proxy spec, same adjustments.
  [[nodiscard]] const graph::CSRGraph& graph(ProxySpec spec) const;
  /// --graph-file override, else the named proxy.
  [[nodiscard]] const graph::CSRGraph& graph_or_file(
      const std::string& proxy_name) const;

  /// Run the distributed LCC engine `repeats` times and record one trial
  /// per run under `metric`: makespan as the value, plus aggregated
  /// CommStats, per-window CacheStats (when caching), triangle totals and
  /// the remote-edge fraction as detail. Returns the last run's result for
  /// scenario-specific analysis. `cfg.cost` is overwritten with cost().
  core::RunResult run_lcc_trials(
      const std::string& metric, const util::BenchRecorder::MetricOptions& opts,
      const graph::CSRGraph& g, std::uint32_t ranks, core::EngineConfig cfg,
      graph::PartitionKind partition = graph::PartitionKind::Block1D) const;

  /// Same for the TriC baseline.
  tric::TricResult run_tric_trials(const std::string& metric,
                                   const util::BenchRecorder::MetricOptions& opts,
                                   const graph::CSRGraph& g,
                                   std::uint32_t ranks,
                                   tric::TricConfig cfg) const;
};

struct Scenario {
  std::string name;     ///< CLI handle, e.g. "fig7"
  std::string anchor;   ///< paper anchor, e.g. "Fig. 7"
  std::string summary;  ///< one-liner for --list
  void (*add_flags)(util::Cli&);  ///< scenario-specific flags (may be null)
  void (*run)(ScenarioContext&);
};

void register_scenario(Scenario s);
[[nodiscard]] const std::vector<Scenario>& scenarios();
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario s) { register_scenario(std::move(s)); }
};

/// Place at namespace scope in a scenario translation unit.
#define ATLC_REGISTER_SCENARIO(ident, ...)                       \
  static const ::atlc::bench::ScenarioRegistrar ident##_registrar{ \
      ::atlc::bench::Scenario{__VA_ARGS__}};

}  // namespace atlc::bench
