// atlc_bench — the unified experiment harness.
//
//   atlc_bench --list
//   atlc_bench --scenario fig7 --ranks 2 --steps 12 --json out.json
//   atlc_bench --all --smoke --json-dir bench-json
//
// One self-registering Scenario per paper figure/table (bench/scenarios/).
// Every run can emit a structured JSON document (schema: DESIGN.md §5)
// that tools/bench_compare gates on; REPRODUCING.md maps each paper
// anchor to its copy-pasteable invocation.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "atlc/util/table.hpp"
#include "scenario.hpp"

namespace {

using namespace atlc;

void add_harness_flags(util::Cli& cli) {
  cli.add_string("scenario", "scenario to run (see --list)", "");
  cli.add_flag("list", "list registered scenarios and exit", false);
  cli.add_flag("all", "run every registered scenario", false);
  cli.add_flag("smoke",
               "CI-sized run: shrink proxies by 3 R-MAT scale steps and "
               "clip every sweep to a few points",
               false);
  cli.add_int("seed",
              "offset applied to every proxy generator seed; same seed => "
              "bit-identical virtual-time results",
              0);
  cli.add_int("repeats",
              "trials per measurement; JSON records every trial and the "
              "median",
              1);
  cli.add_flag("calibrate",
               "calibrate the intersection cost model on this host instead "
               "of the paper-calibrated constants (more faithful locally, "
               "but virtual times stop being bit-deterministic)",
               false);
  cli.add_flag("phase-breakdown",
               "trace every engine trial (atlc::obs) and attach a per-phase "
               "virtual-time breakdown block to each trial record",
               false);
  cli.add_string("json", "write the scenario's JSON document to this path",
                 "");
  cli.add_string("json-dir",
                 "write BENCH_<scenario>.json into this directory "
                 "(useful with --all)",
                 "");
  bench::add_common_flags(cli);
}

void list_scenarios() {
  util::Table table({"Scenario", "Paper anchor", "Summary"});
  for (const auto& s : bench::scenarios())
    table.add_row({s.name, s.anchor, s.summary});
  table.print("atlc_bench: registered scenarios");
  std::printf(
      "\nrun one:  atlc_bench --scenario <name> [--smoke] [--json out.json]\n"
      "run all:  atlc_bench --all --smoke --json-dir <dir>\n"
      "details:  atlc_bench --scenario <name> --help   (scenario flags)\n"
      "mapping:  see REPRODUCING.md for the paper figure/table commands\n");
}

/// Run one scenario with a Cli built from harness + scenario flags.
int run_scenario(const bench::Scenario& s, int argc, char** argv) {
  util::Cli cli("atlc_bench", s.anchor + " — " + s.summary);
  add_harness_flags(cli);
  if (s.add_flags) s.add_flags(cli);
  if (!cli.parse(argc, argv)) return 1;

  util::BenchRecorder rec(s.name, s.anchor, s.summary);
  util::Json argv_json = util::Json::array();
  for (int i = 1; i < argc; ++i) argv_json.push_back(std::string(argv[i]));
  rec.meta()["argv"] = std::move(argv_json);
  rec.meta()["seed"] = cli.get_int("seed");
  rec.meta()["repeats"] = cli.get_int("repeats");
  rec.meta()["smoke"] = cli.get_flag("smoke");
  rec.meta()["calibrated_cost"] = cli.get_flag("calibrate");
  rec.meta()["scale_boost"] = cli.get_int("scale-boost");

  bench::ScenarioContext ctx{
      .cli = cli,
      .rec = rec,
      .smoke = cli.get_flag("smoke"),
      .seed = static_cast<std::uint64_t>(cli.get_int("seed")),
      .repeats = static_cast<std::size_t>(
          std::max<std::int64_t>(1, cli.get_int("repeats"))),
      .calibrate = cli.get_flag("calibrate"),
      .phase_breakdown = cli.get_flag("phase-breakdown"),
  };

  std::printf("=== %s (%s): %s%s ===\n", s.name.c_str(), s.anchor.c_str(),
              s.summary.c_str(), ctx.smoke ? " [smoke]" : "");
  s.run(ctx);

  std::string out = cli.get_string("json");
  const std::string& dir = cli.get_string("json-dir");
  if (out.empty() && !dir.empty()) out = dir + "/BENCH_" + s.name + ".json";
  if (!out.empty()) {
    if (!rec.write_file(out)) {
      std::fprintf(stderr, "atlc_bench: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("\nJSON written: %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pre-scan: the full flag surface depends on the selected scenario, so
  // --list/--all/--scenario are resolved before building the real Cli.
  std::string selected;
  bool list = false, all = false, single_json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list") list = true;
    else if (arg == "--all") all = true;
    else if (arg == "--json" || arg.rfind("--json=", 0) == 0)
      single_json = true;
    else if (arg == "--scenario" && i + 1 < argc) selected = argv[i + 1];
    else if (arg.rfind("--scenario=", 0) == 0) selected = arg.substr(11);
  }
  if (all && single_json) {
    std::fprintf(stderr,
                 "atlc_bench: --all would overwrite one --json path per "
                 "scenario; use --json-dir instead\n");
    return 1;
  }

  if (list) {
    list_scenarios();
    return 0;
  }
  if (all) {
    int failures = 0;
    for (const auto& s : bench::scenarios()) {
      if (run_scenario(s, argc, argv) != 0) {
        std::fprintf(stderr, "atlc_bench: scenario %s failed\n",
                     s.name.c_str());
        ++failures;
      }
      std::printf("\n");
    }
    std::printf("atlc_bench --all: %zu scenarios, %d failed\n",
                bench::scenarios().size(), failures);
    return failures == 0 ? 0 : 1;
  }
  if (selected.empty()) {
    list_scenarios();
    return 0;
  }
  const bench::Scenario* s = bench::find_scenario(selected);
  if (!s) {
    std::fprintf(stderr, "atlc_bench: unknown scenario '%s'\n\n",
                 selected.c_str());
    list_scenarios();
    return 1;
  }
  return run_scenario(*s, argc, argv);
}
