// Quickstart: generate a graph, run the asynchronous distributed LCC engine
// on a few simulated ranks, and inspect the results.
//
//   ./quickstart [--graph-file edges.txt]
//
// This is the 60-second tour of the public API:
//   graph::generate_rmat / graph::clean / graph::CSRGraph  (substrate)
//   core::run_distributed_lcc                              (the paper's engine)
//   result.lcc / result.global_triangles / run stats       (what you get)
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/io.hpp"
#include "atlc/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace atlc;

  util::Cli cli("quickstart", "minimal LCC computation walkthrough");
  cli.add_string("graph-file", "optional SNAP-format edge list", "");
  cli.add_int("ranks", "simulated compute nodes", 4);
  if (!cli.parse(argc, argv)) return 1;

  // 1. Get a graph: either a real edge list or a synthetic scale-free one.
  graph::EdgeList edges;
  if (!cli.get_string("graph-file").empty()) {
    edges = graph::load_text_edges(cli.get_string("graph-file"),
                                   graph::Directedness::Undirected);
  } else {
    edges = graph::generate_rmat({.scale = 12, .edge_factor = 8, .seed = 42});
  }

  // 2. Clean it (paper Section II-B): drop multi-edges, self loops and
  //    vertices of degree < 2; randomly relabel so 1D partitioning does not
  //    put all hubs on one rank.
  const auto report = graph::clean(edges, {.relabel_seed = 1});
  std::printf("cleaned: removed %zu multi-edges, %u low-degree vertices\n",
              report.multi_edges_removed, report.vertices_removed);

  const auto g = graph::CSRGraph::from_edges(edges);
  std::printf("graph: %u vertices, %llu directed edge slots (%.1f MiB CSR)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<double>(g.csr_bytes()) / (1 << 20));

  // 3. Run the asynchronous distributed engine (paper Algorithm 3) over
  //    simulated ranks, with RMA caching enabled.
  core::EngineConfig config;
  config.use_cache = true;
  config.victim_policy = clampi::VictimPolicy::UserScore;  // degree scores
  config.cache_sizing =
      core::CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 2);

  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks"));
  const auto result = core::run_distributed_lcc(g, ranks, config);

  // 4. Use the results.
  std::printf("\nglobal triangles: %llu\n",
              static_cast<unsigned long long>(result.global_triangles));

  std::vector<graph::VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](auto a, auto b) {
    return result.lcc[a] > result.lcc[b];
  });
  std::printf("top-5 clustered vertices (LCC, degree):\n");
  for (std::size_t i = 0; i < 5 && i < order.size(); ++i)
    std::printf("  v%-8u lcc=%.3f deg=%u\n", order[i],
                result.lcc[order[i]], g.degree(order[i]));

  // 5. Inspect what the run cost (virtual time under the network model).
  const auto total = result.run.total();
  std::printf("\nrun over %u ranks: makespan %.3f s (virtual), "
              "%llu remote gets, cache hit rate %.1f%%\n",
              ranks, result.run.makespan,
              static_cast<unsigned long long>(total.remote_gets),
              100.0 * result.adj_cache_total.hit_rate());
  return 0;
}
