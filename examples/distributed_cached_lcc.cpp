// Full-system walkthrough: how the pieces of the paper's design compose,
// and how to tune the CLaMPI-style cache for a workload.
//
// Runs the same LCC computation four ways across a rank sweep:
//   1. non-cached                 (baseline asynchronous RMA engine)
//   2. cached, CLaMPI scores      (LRU + positional anti-fragmentation)
//   3. cached, degree scores      (the paper's Section III-B2 extension)
//   4. cached, degree + adaptive  (CLaMPI's hash auto-tuning on top)
// and prints runtime, hit rates and miss classes so the trade-offs are
// visible — including when caching stops paying (over-partitioning).
#include <cstdio>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/table.hpp"

namespace {

using namespace atlc;

struct Variant {
  const char* name;
  core::EngineConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("distributed_cached_lcc", "cache tuning walkthrough");
  cli.add_int("scale", "R-MAT scale", 13);
  cli.add_double("cache-frac", "cache budget as a fraction of CSR size", 0.35);
  if (!cli.parse(argc, argv)) return 1;

  auto edges = graph::generate_rmat(
      {.scale = static_cast<unsigned>(cli.get_int("scale")),
       .edge_factor = 16,
       .seed = 3});
  graph::clean(edges, {.relabel_seed = 5});
  const auto g = graph::CSRGraph::from_edges(edges);
  std::printf("graph: %u vertices, %llu edge slots\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const auto budget = static_cast<std::uint64_t>(
      cli.get_double("cache-frac") * static_cast<double>(g.csr_bytes()));
  const auto sizing = core::CacheSizing::paper_default(g.num_vertices(), budget);
  std::printf("cache budget: %llu B -> C_offsets %llu B + C_adj %llu B "
              "(paper's 0.4|V|-entries split)\n\n",
              static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(sizing.offsets_bytes),
              static_cast<unsigned long long>(sizing.adj_bytes));

  std::vector<Variant> variants(4);
  variants[0].name = "non-cached";
  variants[1].name = "cached (CLaMPI scores)";
  variants[1].config.use_cache = true;
  variants[1].config.cache_sizing = sizing;
  variants[2].name = "cached (degree scores)";
  variants[2].config.use_cache = true;
  variants[2].config.cache_sizing = sizing;
  variants[2].config.victim_policy = clampi::VictimPolicy::UserScore;
  variants[3].name = "cached (degree + adaptive)";
  variants[3].config = variants[2].config;
  variants[3].config.cache_adaptive = true;

  for (std::uint32_t ranks : {4u, 16u, 64u}) {
    util::Table table({"variant", "makespan (s)", "adj hit rate",
                       "compulsory", "capacity", "evictions", "resizes"});
    std::uint64_t reference_triangles = 0;
    for (const auto& v : variants) {
      const auto r = core::run_distributed_lcc(g, ranks, v.config);
      if (reference_triangles == 0) reference_triangles = r.global_triangles;
      // All variants must agree bit-for-bit on the result.
      if (r.global_triangles != reference_triangles) {
        std::fprintf(stderr, "variant %s diverged!\n", v.name);
        return 1;
      }
      const auto& cs = r.adj_cache_total;
      const auto denom = std::max<std::uint64_t>(1, cs.accesses());
      table.add_row(
          {v.name, util::Table::fmt(r.run.makespan, 4),
           util::Table::fmt_percent(cs.hit_rate()),
           util::Table::fmt_percent(
               static_cast<double>(cs.compulsory_misses) / denom),
           util::Table::fmt_percent(
               static_cast<double>(cs.capacity_misses) / denom),
           util::Table::fmt_int(cs.evictions_space + cs.evictions_conflict),
           util::Table::fmt_int(cs.hash_resizes)});
    }
    table.print("LCC on " + std::to_string(ranks) + " ranks (triangles: " +
                std::to_string(reference_triangles) + ")");
  }

  std::printf(
      "\nreading the tables: degree scores should beat CLaMPI scores while "
      "reuse exists; as ranks grow, compulsory misses rise and caching "
      "eventually costs more than it saves (paper Section IV-D2).\n");
  return 0;
}
