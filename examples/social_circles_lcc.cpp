// Community analysis with LCC (the paper's first motivating application,
// Section I: "LCC is used to detect communities, distinguishing between
// vertices that are central to the cluster from others on its frontier").
//
// On a social-circles graph, vertices inside a circle have high LCC (their
// friends know each other); bridge/hub vertices that span circles have low
// LCC. This example computes LCC distributed, then classifies vertices and
// summarises the communities' structure.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/stats.hpp"
#include "atlc/util/table.hpp"

int main(int argc, char** argv) {
  using namespace atlc;

  util::Cli cli("social_circles_lcc", "community core/frontier analysis");
  cli.add_int("vertices", "graph size", 4096);
  cli.add_int("ranks", "simulated compute nodes", 4);
  if (!cli.parse(argc, argv)) return 1;

  auto edges = graph::generate_circles(
      {.num_vertices = static_cast<graph::VertexId>(cli.get_int("vertices")),
       .seed = 2026});
  graph::clean(edges);
  const auto g = graph::CSRGraph::from_edges(edges);
  std::printf("social graph: %u members, %llu friendship slots\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  core::EngineConfig config;
  config.use_cache = true;
  config.cache_sizing =
      core::CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 2);
  const auto result = core::run_distributed_lcc(
      g, static_cast<std::uint32_t>(cli.get_int("ranks")), config);

  // LCC distribution.
  const auto summary = util::summarize(result.lcc);
  std::printf("\nLCC distribution: median %.3f, mean %.3f, max %.3f\n",
              summary.median, summary.mean, summary.max);

  const auto hist = util::histogram(result.lcc, 10);
  util::Table dist({"LCC range", "members"});
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    char range[48];
    const double w = (hist.hi - hist.lo) / 10.0;
    std::snprintf(range, sizeof(range), "[%.2f, %.2f)",
                  hist.lo + w * static_cast<double>(b),
                  hist.lo + w * static_cast<double>(b + 1));
    dist.add_row({range, util::Table::fmt_int(hist.counts[b])});
  }
  dist.print("LCC histogram");

  // Classify: community cores (high LCC, moderate degree), frontiers
  // (low LCC), and hubs (high degree, typically low LCC — they bridge).
  std::uint64_t cores = 0, frontiers = 0, hubs = 0;
  const auto deg_stats = graph::degree_stats(g);
  const double hub_degree = 4.0 * deg_stats.mean;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) >= hub_degree)
      ++hubs;
    else if (result.lcc[v] >= 0.5)
      ++cores;
    else
      ++frontiers;
  }
  util::Table roles({"role", "count", "criterion"});
  roles.add_row({"community core", util::Table::fmt_int(cores),
                 "LCC >= 0.5, non-hub"});
  roles.add_row({"community frontier", util::Table::fmt_int(frontiers),
                 "LCC < 0.5, non-hub"});
  roles.add_row({"bridge hub", util::Table::fmt_int(hubs),
                 "degree >= 4x mean"});
  roles.print("member roles");

  // Hub LCC vs core LCC: hubs should cluster less (they span circles).
  double hub_lcc = 0, core_lcc = 0;
  std::uint64_t nh = 0, nc = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) >= hub_degree) {
      hub_lcc += result.lcc[v];
      ++nh;
    } else {
      core_lcc += result.lcc[v];
      ++nc;
    }
  }
  if (nh && nc)
    std::printf("\nmean LCC: hubs %.3f vs non-hubs %.3f "
                "(bridges cluster less, as expected)\n",
                hub_lcc / static_cast<double>(nh),
                core_lcc / static_cast<double>(nc));
  return 0;
}
