// Link recommendation via triangle closing (the paper's second motivating
// application, Section I: "clustering coefficient is used to locate
// thematic relationships"). Classic friend-of-friend scoring: recommend the
// non-neighbors sharing the most common neighbors — i.e. the links that
// would close the most triangles — using the same intersection kernels the
// LCC engine runs on (paper Algorithms 1-2 + the Eq. 3 hybrid rule).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "atlc/graph/clean.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/intersect/intersect.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/table.hpp"

int main(int argc, char** argv) {
  using namespace atlc;

  util::Cli cli("link_recommendation", "common-neighbor link prediction");
  cli.add_int("vertices", "graph size", 2048);
  cli.add_int("user", "member to recommend for (-1 = busiest)", -1);
  cli.add_int("topk", "number of recommendations", 5);
  if (!cli.parse(argc, argv)) return 1;

  auto edges = graph::generate_circles(
      {.num_vertices = static_cast<graph::VertexId>(cli.get_int("vertices")),
       .seed = 7});
  graph::clean(edges);
  const auto g = graph::CSRGraph::from_edges(edges);

  // Pick the user: either given, or a medium-degree member (interesting
  // recommendations; hubs already know everyone).
  graph::VertexId user;
  if (cli.get_int("user") >= 0) {
    user = static_cast<graph::VertexId>(cli.get_int("user")) %
           g.num_vertices();
  } else {
    const auto order = graph::vertices_by_degree_desc(g);
    user = order[order.size() / 4];
  }
  const auto friends = g.neighbors(user);
  std::printf("user v%u has %zu friends\n", user, friends.size());

  // Score every friend-of-friend candidate by common neighbors. The
  // candidate set is exactly the 2-hop frontier; the score is the number of
  // triangles the new link would close.
  std::vector<std::uint64_t> score(g.num_vertices(), 0);
  std::vector<graph::VertexId> candidates;
  for (graph::VertexId f : friends) {
    for (graph::VertexId fof : g.neighbors(f)) {
      if (fof == user || g.has_edge(user, fof)) continue;
      if (score[fof] == 0) {
        candidates.push_back(fof);
        // Hybrid intersection (Eq. 3) between the user's and candidate's
        // adjacency lists counts the mutual friends.
        score[fof] =
            intersect::count_hybrid(friends, g.neighbors(fof));
      }
    }
  }
  std::printf("evaluated %zu friend-of-friend candidates\n",
              candidates.size());

  std::sort(candidates.begin(), candidates.end(),
            [&](auto a, auto b) { return score[a] > score[b]; });

  // LCC of candidates as a tie-breaker context: a high-LCC candidate sits
  // inside a tight circle the user is entering.
  const auto ref = graph::reference_lcc(g);
  util::Table table({"rank", "member", "mutual friends", "candidate LCC",
                     "candidate degree"});
  const auto topk = static_cast<std::size_t>(cli.get_int("topk"));
  for (std::size_t i = 0; i < topk && i < candidates.size(); ++i) {
    const auto c = candidates[i];
    table.add_row({util::Table::fmt_int(i + 1),
                   "v" + std::to_string(c),
                   util::Table::fmt_int(score[c]),
                   util::Table::fmt(ref.lcc[c], 3),
                   util::Table::fmt_int(g.degree(c))});
  }
  table.print("recommendations for v" + std::to_string(user));
  return 0;
}
