// Link recommendation via triangle closing (the paper's second motivating
// application, Section I) served by the atlc::serve query layer: instead of
// the original one-shot scan that recomputed candidate scores on every call
// with no accounting, the queries run through serve::QueryEngine — priced
// by the engine's cost model, memoized in the HotVertexCache, and reported
// through a core::QueryStats block (DESIGN.md §13).
//
// The mini-serving session below asks for the same user's recommendations
// twice in one epoch (the repeat is a hot-cache hit), applies an update
// batch that rewires part of the user's neighborhood, and asks again — the
// post-batch answers reflect the new graph exactly (epoch consistency).
#include <cstdio>
#include <string>
#include <vector>

#include "atlc/graph/clean.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/serve/query_engine.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/table.hpp"

int main(int argc, char** argv) {
  using namespace atlc;

  util::Cli cli("link_recommendation", "common-neighbor link prediction");
  cli.add_int("vertices", "graph size", 2048);
  cli.add_int("user", "member to recommend for (-1 = busiest)", -1);
  cli.add_int("topk", "number of recommendations", 5);
  cli.add_int("ranks", "simulated ranks", 4);
  if (!cli.parse(argc, argv)) return 1;

  auto edges = graph::generate_circles(
      {.num_vertices = static_cast<graph::VertexId>(cli.get_int("vertices")),
       .seed = 7});
  graph::clean(edges);
  const auto g = graph::CSRGraph::from_edges(edges);

  // Pick the user: either given, or a medium-degree member (interesting
  // recommendations; hubs already know everyone).
  graph::VertexId user;
  if (cli.get_int("user") >= 0) {
    user = static_cast<graph::VertexId>(cli.get_int("user")) %
           g.num_vertices();
  } else {
    const auto order = graph::vertices_by_degree_desc(g);
    user = order[order.size() / 4];
  }
  const auto k = static_cast<std::uint32_t>(cli.get_int("topk"));
  std::printf("user v%u has %zu friends\n", user, g.neighbors(user).size());

  // Epoch 0: common-neighbor and Adamic–Adar recommendations plus the
  // user's LCC, the top-k repeated so the second ask hits the hot cache.
  // The epoch's batch then rewires the user's first friendship, and epoch 1
  // re-asks — served against the updated neighborhoods.
  std::vector<serve::ServeEpoch> epochs(2);
  epochs[0].queries = {{serve::QueryKind::TopKCommon, user, k},
                       {serve::QueryKind::TopKAdamicAdar, user, k},
                       {serve::QueryKind::Lcc, user, 0},
                       {serve::QueryKind::TopKCommon, user, k}};
  if (!g.neighbors(user).empty()) {
    const graph::VertexId ex = g.neighbors(user).front();
    epochs[0].updates.push_back({user, ex, stream::Op::Delete});
  }
  epochs[1].queries = {{serve::QueryKind::TopKCommon, user, k},
                       {serve::QueryKind::Lcc, user, 0}};

  serve::ServeOptions opts;
  opts.hot_cache.entries = 256;
  const serve::ServeResult res = serve::run_query_stream(
      g, epochs, static_cast<std::uint32_t>(cli.get_int("ranks")), opts);

  const auto ref = graph::reference_lcc(g);
  const auto print_topk = [&](const serve::QueryAnswer& a,
                              const std::string& title) {
    util::Table table({"rank", "member", "score", "candidate LCC",
                       "candidate degree"});
    for (std::size_t i = 0; i < a.topk.size(); ++i) {
      const auto c = a.topk[i].v;
      table.add_row({util::Table::fmt_int(i + 1), "v" + std::to_string(c),
                     util::Table::fmt(a.topk[i].score, 3),
                     util::Table::fmt(ref.lcc[c], 3),
                     util::Table::fmt_int(g.degree(c))});
    }
    table.print(title + (a.hot_hit ? " [hot-cache hit]" : ""));
  };

  print_topk(res.answers[0], "common neighbors for v" + std::to_string(user));
  print_topk(res.answers[1], "Adamic-Adar for v" + std::to_string(user));
  std::printf("LCC(v%u) = %.4f\n", user, res.answers[2].lcc);
  print_topk(res.answers[3], "repeat ask (same epoch)");
  print_topk(res.answers[4], "common neighbors after un-friending");
  std::printf("LCC(v%u) after batch = %.4f\n", user, res.answers[5].lcc);

  // The QueryStats block the original example lacked: what each answer
  // actually cost end to end on the virtual clock.
  const core::QueryStats& qs = res.stats;
  std::printf(
      "\nserved %llu/%llu queries | virtual latency p50 %.2e s, p99 %.2e s\n",
      static_cast<unsigned long long>(qs.answered),
      static_cast<unsigned long long>(qs.submitted),
      qs.latency_percentile(50), qs.latency_percentile(99));
  std::printf(
      "pipeline: %llu edges (%.0f%% remote) | hot cache: %llu/%llu hits\n",
      static_cast<unsigned long long>(qs.edges_processed),
      100.0 * qs.remote_edge_fraction(),
      static_cast<unsigned long long>(res.hot_cache_total.hits),
      static_cast<unsigned long long>(res.hot_cache_total.probes));
  return 0;
}
