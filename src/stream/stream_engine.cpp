#include "atlc/stream/stream_engine.hpp"

#include "atlc/core/lcc.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/stream/batch_applier.hpp"
#include "atlc/stream/incremental.hpp"
#include "atlc/util/check.hpp"

namespace atlc::stream {

StreamResult run_streaming_lcc(const graph::CSRGraph& g,
                               std::span<const Batch> batches,
                               std::uint32_t ranks,
                               const StreamOptions& options) {
  ATLC_CHECK(g.directedness() == graph::Directedness::Undirected,
             "stream: undirected graphs only (the incremental edge-centric "
             "formulation counts distinct triangles)");
  ATLC_CHECK(options.partition != graph::PartitionKind::Grid2D,
             "stream: the incremental counter routes per-vertex deltas to "
             "unique vertex owners; Grid2D's segment ownership is not "
             "plumbed through it yet (BatchApplier itself is segment-aware)");
  core::EngineConfig cfg = options.engine;
  cfg.upper_triangle_only = false;  // LCC needs full per-vertex counts

  const graph::Partition partition =
      graph::make_partition(g, options.partition, ranks);
  const graph::HubReplica hub_proto =
      graph::HubReplica::build(g, cfg.hub_fraction);

  StreamResult out;
  out.triangles.assign(g.num_vertices(), 0);
  out.lcc.assign(g.num_vertices(), 0.0);
  out.batches.resize(batches.size());
  if (options.record_snapshots) {
    for (auto& b : out.batches) {
      b.triangles.assign(g.num_vertices(), 0);
      b.lcc.assign(g.num_vertices(), 0.0);
    }
  }

  std::vector<core::PipelineRankStats> rank_stats(ranks);

  rma::Runtime::Options ropts;
  ropts.ranks = ranks;
  ropts.net = options.net;
  ropts.trace = cfg.trace;
  out.run = rma::Runtime::run(ropts, [&](rma::RankCtx& ctx) {
    ctx.tracer().begin("cold_count");
    core::DistGraph dg = core::build_dist_graph(ctx, g, partition, &hub_proto);
    core::EdgePipeline pipeline(ctx, dg, cfg);

    // Cold start: the standard static pass seeds per-vertex t(v)/LCC and
    // warms the CLaMPI caches the batches will (epoch-permitting) reuse.
    core::RankResult rr = core::compute_lcc_rank(ctx, dg, cfg, pipeline);
    std::vector<std::uint64_t> tri = std::move(rr.triangles);
    std::vector<double> lcc = std::move(rr.lcc);

    std::uint64_t local_sum = 0;
    for (const std::uint64_t t : tri) local_sum += t;
    // Σ t(v) counts each distinct triangle 6 times (both orientations of
    // all three corners) on undirected graphs.
    std::uint64_t global_triangles = ctx.allreduce_sum(local_sum) / 6;

    ctx.barrier();  // align clocks: everything before here is the cold cost
    ctx.tracer().end("cold_count");
    double mark = ctx.now();
    if (ctx.rank() == 0) out.initial_makespan = mark;

    BatchApplier applier(ctx, dg, cfg);
    IncrementalCounter counter(ctx, dg, pipeline, cfg);

    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      ctx.tracer().begin("batch");
      ctx.tracer().begin("adjudicate");
      const EffectiveBatch eff = applier.adjudicate(batches[bi]);
      ctx.tracer().end("adjudicate");
      DeltaSet deltas;
      std::uint64_t local_rows = 0;
      if (!eff.empty()) {  // replicated sets: all ranks agree on the skip
        // Destroyed triangles are only observable before the apply ...
        ctx.tracer().begin("count_del");
        counter.count_deletions(eff, deltas);
        // ... and no rank may swap rows while a peer still reads them.
        ctx.barrier();
        ctx.tracer().end("count_del");
        ctx.tracer().begin("apply");
        local_rows = applier.apply_to_rows(eff);  // refreshes both windows
        ctx.tracer().end("apply");
        // Created triangles are only observable after the apply.
        ctx.tracer().begin("count_ins");
        counter.count_insertions(eff, deltas);
        ctx.tracer().end("count_ins");
      }
      ctx.tracer().begin("route");
      const RoutedDeltas routed =
          eff.empty() ? RoutedDeltas{} : counter.route(deltas);
      ctx.tracer().end("route");
      for (const auto& [lv, d] : routed.local) {
        const auto cur = static_cast<std::int64_t>(tri[lv]);
        ATLC_DCHECK(cur + d >= 0, "stream: negative triangle count");
        tri[lv] = static_cast<std::uint64_t>(cur + d);
        lcc[lv] = graph::lcc_score(tri[lv], dg.local_degree(lv));
      }
      // Degrees of touched rows changed even where t(v) did not.
      for (const CanonicalUpdate& op : eff.ops) {
        for (const VertexId v : {op.a, op.b}) {
          if (partition.owner(v) != ctx.rank()) continue;
          const VertexId lv = partition.local_index(v);
          lcc[lv] = graph::lcc_score(tri[lv], dg.local_degree(lv));
        }
      }
      global_triangles = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(global_triangles) + routed.global_delta);
      const std::uint64_t rows_total =
          eff.empty() ? 0 : ctx.allreduce_sum(local_rows);
      ctx.barrier();  // commit point: batch done on every rank

      BatchOutcome& bo = out.batches[bi];
      if (ctx.rank() == 0) {
        bo.raw_updates = batches[bi].size();
        bo.effective_insertions = eff.insertions();
        bo.effective_deletions = eff.deletions();
        bo.rows_rebuilt = rows_total;
        bo.triangles_delta = routed.global_delta;
        bo.global_triangles = global_triangles;
        bo.makespan = ctx.now() - mark;
      }
      mark = ctx.now();  // barrier aligned all ranks to the same value
      if (options.record_snapshots) {
        for (VertexId lv = 0; lv < dg.num_local(); ++lv) {
          const VertexId v = partition.global_id(ctx.rank(), lv);
          bo.triangles[v] = tri[lv];
          bo.lcc[v] = lcc[lv];
        }
      }
      ctx.tracer().end("batch");
    }

    // Final scatter (disjoint slots per rank; no synchronisation needed).
    for (VertexId lv = 0; lv < dg.num_local(); ++lv) {
      const VertexId v = partition.global_id(ctx.rank(), lv);
      out.triangles[v] = tri[lv];
      out.lcc[v] = lcc[lv];
    }
    if (ctx.rank() == 0) {
      out.global_triangles = global_triangles;
      out.stream_makespan = mark - out.initial_makespan;
    }
    rank_stats[ctx.rank()] = pipeline.harvest();
  });

  for (core::PipelineRankStats& rs : rank_stats) {
    out.edges_processed += rs.edges_processed;
    out.remote_edges += rs.remote_edges;
    out.offsets_cache_total += rs.offsets_cache;
    out.adj_cache_total += rs.adj_cache;
  }
  return out;
}

}  // namespace atlc::stream
