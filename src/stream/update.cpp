#include "atlc/stream/update.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "atlc/util/rng.hpp"

namespace atlc::stream {

std::vector<CanonicalUpdate> normalize(const Batch& batch) {
  // Last-op-wins per canonical edge (in-order overwrite), then sort by
  // canonical key — the sorted output is what makes every rank's view of
  // the batch identical regardless of container iteration order.
  std::unordered_map<std::uint64_t, Op> net;
  net.reserve(batch.size());
  for (const EdgeUpdate& u : batch) {
    if (u.u == u.v) continue;  // self loops never participate in triangles
    net[canonical_key(std::min(u.u, u.v), std::max(u.u, u.v))] = u.op;
  }
  std::vector<CanonicalUpdate> out;
  out.reserve(net.size());
  for (const auto& [key, op] : net)
    out.push_back({static_cast<VertexId>(key >> 32),
                   static_cast<VertexId>(key & 0xffffffffULL), op});
  std::sort(out.begin(), out.end(), [](const CanonicalUpdate& x,
                                       const CanonicalUpdate& y) {
    return canonical_key(x.a, x.b) < canonical_key(y.a, y.b);
  });
  return out;
}

void apply_to_edge_list(graph::EdgeList& edges, const Batch& batch) {
  std::set<std::pair<VertexId, VertexId>> present(
      [&] {
        std::set<std::pair<VertexId, VertexId>> s;
        for (const graph::Edge& e : edges.edges()) s.insert({e.u, e.v});
        return s;
      }());
  for (const EdgeUpdate& u : batch) {
    if (u.u == u.v) continue;
    if (u.op == Op::Insert) {
      present.insert({u.u, u.v});
      present.insert({u.v, u.u});
    } else {
      present.erase({u.u, u.v});
      present.erase({u.v, u.u});
    }
  }
  std::vector<graph::Edge> out;
  out.reserve(present.size());
  for (const auto& [a, b] : present) out.push_back({a, b});
  edges = graph::EdgeList(edges.num_vertices(), std::move(out),
                          edges.directedness());
}

std::vector<Batch> generate_batches(const graph::CSRGraph& g,
                                    const WorkloadConfig& cfg) {
  const VertexId n = g.num_vertices();
  // Track the evolving canonical edge set so deletions target live edges
  // and insertions (usually) target absent ones. Vector + position index
  // keeps uniform sampling and removal O(1) per update (deterministic:
  // CSR order seeds the vector, swap-remove evolves it reproducibly) —
  // paper-scale graphs have tens of millions of live edges.
  std::vector<std::uint64_t> live;
  std::unordered_map<std::uint64_t, std::size_t> pos;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) {
        pos.emplace(canonical_key(u, v), live.size());
        live.push_back(canonical_key(u, v));
      }
  auto live_insert = [&](std::uint64_t key) {
    if (pos.emplace(key, live.size()).second) live.push_back(key);
  };
  auto live_remove_at = [&](std::size_t i) {
    const std::uint64_t key = live[i];
    live[i] = live.back();
    pos[live[i]] = i;
    live.pop_back();
    pos.erase(key);
    return key;
  };

  util::Xoshiro256 rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 17);
  std::vector<Batch> batches(cfg.num_batches);
  for (Batch& batch : batches) {
    batch.reserve(cfg.batch_size);
    while (batch.size() < cfg.batch_size) {
      const bool insert = rng.next_bool(cfg.insert_fraction) || live.empty();
      if (insert) {
        VertexId a = static_cast<VertexId>(rng.next_below(n));
        VertexId b = static_cast<VertexId>(rng.next_below(n));
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        batch.push_back({a, b, Op::Insert});
        live_insert(canonical_key(a, b));
      } else {
        const std::uint64_t key = live_remove_at(
            static_cast<std::size_t>(rng.next_below(live.size())));
        batch.push_back({static_cast<VertexId>(key >> 32),
                         static_cast<VertexId>(key & 0xffffffffULL),
                         Op::Delete});
      }
      // Inject an occasional duplicate of the previous update so batches
      // exercise the dedup/no-op paths in production, not only in tests.
      if (!batch.empty() && batch.size() < cfg.batch_size &&
          rng.next_bool(0.03))
        batch.push_back(batch.back());
    }
  }
  return batches;
}

}  // namespace atlc::stream
