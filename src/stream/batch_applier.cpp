#include "atlc/stream/batch_applier.hpp"

#include <algorithm>
#include <map>

#include "atlc/util/check.hpp"

namespace atlc::stream {

namespace {

/// Wire format of one adjudicated op: (a, b, op) as three uint32 words on
/// the all_to_all substrate.
constexpr std::size_t kOpWords = 3;

}  // namespace

std::vector<graph::VertexId> touched_vertices(const EffectiveBatch& eff) {
  std::vector<graph::VertexId> out;
  out.reserve(eff.ops.size() * 2);
  for (const CanonicalUpdate& op : eff.ops) {
    out.push_back(op.a);
    out.push_back(op.b);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

EffectiveBatch BatchApplier::adjudicate(const Batch& batch) {
  const auto& part = dg_->partition;
  const std::uint32_t p = ctx_->num_ranks();
  const std::vector<CanonicalUpdate> ops = normalize(batch);

  // Adjudicate the ops this rank owns: the owner of edge slot (a, b) —
  // under a 2D partition the rank storing the column-block segment of a's
  // row that would contain b (its sorted segment answers presence in one
  // binary search); on 1D partitions edge_owner degrades to owner(a), the
  // original whole-row adjudicator.
  std::vector<CanonicalUpdate> mine;
  double probe_seconds = 0.0;
  for (const CanonicalUpdate& op : ops) {
    if (part.edge_owner(op.a, op.b) != ctx_->rank()) continue;
    const auto row = dg_->local_neighbors(part.local_index(op.a));
    const bool present = std::binary_search(row.begin(), row.end(), op.b);
    probe_seconds += config_->cost.seconds_probes(1, row.size());
    const bool effective = (op.op == Op::Delete) ? present : !present;
    if (effective) mine.push_back(op);
  }
  ctx_->charge_compute(probe_seconds);

  // Replicate the verdicts: every rank needs the full effective sets (for
  // row rebuilds of the second endpoint and for the min-new-edge triangle
  // attribution), so each rank broadcasts its adjudications to all peers.
  std::vector<std::vector<std::uint32_t>> out(p);
  for (std::uint32_t dst = 0; dst < p; ++dst) {
    if (dst == ctx_->rank()) continue;
    out[dst].reserve(mine.size() * kOpWords);
    for (const CanonicalUpdate& op : mine) {
      out[dst].push_back(op.a);
      out[dst].push_back(op.b);
      out[dst].push_back(static_cast<std::uint32_t>(op.op));
    }
  }
  const auto in = ctx_->all_to_all(out);

  EffectiveBatch eff;
  eff.ops = std::move(mine);
  for (std::uint32_t src = 0; src < p; ++src) {
    if (src == ctx_->rank()) continue;
    ATLC_CHECK(in[src].size() % kOpWords == 0, "stream: bad op payload");
    for (std::size_t i = 0; i < in[src].size(); i += kOpWords)
      eff.ops.push_back({in[src][i], in[src][i + 1],
                         static_cast<Op>(in[src][i + 2])});
  }
  // Each canonical edge was adjudicated by exactly one rank, so the merged
  // list has no duplicates; sorting makes every rank's view identical.
  std::sort(eff.ops.begin(), eff.ops.end(),
            [](const CanonicalUpdate& x, const CanonicalUpdate& y) {
              return canonical_key(x.a, x.b) < canonical_key(y.a, y.b);
            });
  for (const CanonicalUpdate& op : eff.ops) {
    auto& set = op.op == Op::Insert ? eff.inserted : eff.deleted;
    set.insert(canonical_key(op.a, op.b));
  }
  return eff;
}

std::uint64_t BatchApplier::apply_to_rows(const EffectiveBatch& eff) {
  const auto& part = dg_->partition;

  // Gather the per-local-row change lists (an undirected edge touches the
  // rows of BOTH endpoints; either or both may be local). Ownership is per
  // edge SLOT, not per row: under a 2D partition only the rank storing the
  // (row, neighbor-column-block) segment rebuilds it — the touched-row
  // refresh is segment-granular, and sibling ranks of the grid row leave
  // their other segments untouched. 1D degrades to the whole-row rule.
  std::map<VertexId, std::vector<std::pair<VertexId, Op>>> touched;
  auto note = [&](VertexId owner_v, VertexId nbr, Op op) {
    if (part.edge_owner(owner_v, nbr) != ctx_->rank()) return;
    touched[part.local_index(owner_v)].push_back({nbr, op});
  };
  for (const CanonicalUpdate& op : eff.ops) {
    note(op.a, op.b, op.op);
    note(op.b, op.a, op.op);
  }
  // Globally empty batches never reach this point (the engine gates on
  // eff.empty(), so all ranks agree — the effective sets are replicated).
  // A rank with nothing local to rebuild still participates in the
  // collective refresh below.
  ATLC_CHECK(!eff.empty(), "apply_to_rows on an empty effective batch");

  // Rebuild: merge each touched row against its sorted change list, then
  // re-lay the flat CSR arrays. Only touched rows are recomputed; untouched
  // rows are block-copied. The virtual clock is charged for the bytes of
  // the rows actually rewritten (a chunked layout could avoid the copy of
  // untouched rows, so their movement is not priced — DESIGN.md §7).
  std::map<VertexId, std::vector<VertexId>> new_rows;
  std::uint64_t rebuilt_bytes = 0;
  for (auto& [lv, changes] : touched) {
    const auto old_row = dg_->local_neighbors(lv);
    std::vector<VertexId> row(old_row.begin(), old_row.end());
    for (const auto& [nbr, op] : changes) {
      auto it = std::lower_bound(row.begin(), row.end(), nbr);
      if (op == Op::Insert) {
        ATLC_DCHECK(it == row.end() || *it != nbr,
                    "stream: effective insert of a present edge");
        row.insert(it, nbr);
      } else {
        ATLC_DCHECK(it != row.end() && *it == nbr,
                    "stream: effective delete of an absent edge");
        row.erase(it);
      }
    }
    rebuilt_bytes += (old_row.size() + row.size()) * sizeof(VertexId);
    new_rows.emplace(lv, std::move(row));
  }

  if (!new_rows.empty()) {
    const VertexId n_local = dg_->num_local();
    std::vector<graph::EdgeIndex> offsets;
    std::vector<VertexId> adjacencies;
    offsets.reserve(n_local + 1);
    adjacencies.reserve(dg_->adjacencies.size());
    offsets.push_back(0);
    for (VertexId lv = 0; lv < n_local; ++lv) {
      if (const auto it = new_rows.find(lv); it != new_rows.end()) {
        adjacencies.insert(adjacencies.end(), it->second.begin(),
                           it->second.end());
      } else {
        const auto row = dg_->local_neighbors(lv);
        adjacencies.insert(adjacencies.end(), row.begin(), row.end());
      }
      offsets.push_back(adjacencies.size());
    }
    ctx_->charge_compute(ctx_->net().time_local(
        rebuilt_bytes + new_rows.size() * sizeof(graph::EdgeIndex)));
    dg_->offsets = std::move(offsets);
    dg_->adjacencies = std::move(adjacencies);
  }

  // Replica maintenance (DESIGN.md §8): every rank holds the full effective
  // sets (they rode the verdict all_to_all above — no extra traffic), so
  // each rank folds the ops touching a hub into its own replica copy here,
  // inside the same collective step that republishes the windows. Reads of
  // the pre-batch state stopped at the caller's barrier and resume only
  // after the epoch-bumping refresh below, so replica and windows advance
  // together: a hub row can never be observed at a different batch state
  // than the owner's row behind the window.
  if (!dg_->hubs.empty()) {
    std::uint64_t replica_bytes = 0;
    for (const CanonicalUpdate& op : eff.ops) {
      const bool insert = op.op == Op::Insert;
      replica_bytes += dg_->hubs.apply(op.a, op.b, insert);
      replica_bytes += dg_->hubs.apply(op.b, op.a, insert);
    }
    if (replica_bytes > 0)
      ctx_->charge_compute(ctx_->net().time_local(replica_bytes));
  }

  // Republish: collective fences inside refresh_window order the swap
  // against every peer's reads and advance both window epochs, which is
  // what invalidates CLaMPI entries fetched from the pre-batch exposure.
  ctx_->refresh_window(dg_->w_offsets, std::span<const graph::EdgeIndex>(
                                           dg_->offsets));
  ctx_->refresh_window(dg_->w_adj,
                       std::span<const VertexId>(dg_->adjacencies));
  return new_rows.size();
}

}  // namespace atlc::stream
