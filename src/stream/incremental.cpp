#include "atlc/stream/incremental.hpp"

#include <algorithm>

#include "atlc/intersect/intersect.hpp"
#include "atlc/util/check.hpp"

namespace atlc::stream {

void IncrementalCounter::count(const EffectiveBatch& eff, Op which,
                               DeltaSet& out) {
  const auto& part = dg_->partition;
  const auto& members = which == Op::Insert ? eff.inserted : eff.deleted;
  const std::int64_t sign = which == Op::Insert ? 1 : -1;

  // This rank enumerates the update edges whose canonical first endpoint
  // it owns: N(a) is the local row, N(b) arrives through the pipeline's
  // prefetched (and cached) two-get protocol, exactly like a static run.
  std::vector<std::pair<VertexId, VertexId>> work;
  for (const CanonicalUpdate& op : eff.ops)
    if (op.op == which && part.owner(op.a) == ctx_->rank())
      work.push_back({part.local_index(op.a), op.b});
  if (work.empty()) return;

  pipeline_->run_over(
      work, [&](VertexId lv, VertexId b, std::span<const VertexId> adj_a,
                std::span<const VertexId> adj_b) {
        const VertexId a = part.global_id(ctx_->rank(), lv);
        const std::uint64_t e_ab = canonical_key(a, b);  // a < b (canonical)
        intersect::for_each_common(adj_a, adj_b, [&](VertexId w) {
          // Triangle {a, b, w}. Intra-batch attribution: among the
          // triangle's edges that are in this batch's effective set, only
          // the lexicographically smallest one counts the triangle —
          // otherwise a triangle closed by two or three in-batch edges
          // would be counted once per such edge. canonical_key preserves
          // (a, b) lexicographic order, so the uint64 compare suffices.
          const std::uint64_t e_aw =
              canonical_key(std::min(a, w), std::max(a, w));
          const std::uint64_t e_bw =
              canonical_key(std::min(b, w), std::max(b, w));
          if (members.contains(e_aw) && e_aw < e_ab) return;
          if (members.contains(e_bw) && e_bw < e_ab) return;
          out.per_vertex[a] += 2 * sign;
          out.per_vertex[b] += 2 * sign;
          out.per_vertex[w] += 2 * sign;
          out.distinct_triangles += sign;
        });
        // The enumerating merge is an SSI walk; charge it as such (the
        // same pricing rule the Adamic–Adar kernel uses).
        ctx_->charge_compute(config_->cost.seconds(
            intersect::Method::SSI, adj_a.size(), adj_b.size()));
      });
}

RoutedDeltas IncrementalCounter::route(const DeltaSet& deltas) {
  const auto& part = dg_->partition;
  const std::uint32_t p = ctx_->num_ranks();

  // Wire format per delta: (v, lo32, hi32) — the int64 in two words.
  std::vector<std::vector<std::uint32_t>> out(p);
  RoutedDeltas routed;
  for (const auto& [v, d] : deltas.per_vertex) {
    const std::uint32_t owner = part.owner(v);
    if (owner == ctx_->rank()) {
      routed.local.push_back({part.local_index(v), d});  // no self traffic
      continue;
    }
    const auto u = static_cast<std::uint64_t>(d);
    out[owner].push_back(v);
    out[owner].push_back(static_cast<std::uint32_t>(u & 0xffffffffULL));
    out[owner].push_back(static_cast<std::uint32_t>(u >> 32));
  }
  const auto in = ctx_->all_to_all(out);
  for (std::uint32_t src = 0; src < p; ++src) {
    if (src == ctx_->rank()) continue;
    ATLC_CHECK(in[src].size() % 3 == 0, "stream: bad delta payload");
    for (std::size_t i = 0; i < in[src].size(); i += 3) {
      const auto u = static_cast<std::uint64_t>(in[src][i + 1]) |
                     (static_cast<std::uint64_t>(in[src][i + 2]) << 32);
      routed.local.push_back({part.local_index(in[src][i]),
                              static_cast<std::int64_t>(u)});
    }
  }

  // ΔT: two's-complement wraparound makes the uint64 allreduce exact for
  // signed sums.
  routed.global_delta = static_cast<std::int64_t>(ctx_->allreduce_sum(
      static_cast<std::uint64_t>(deltas.distinct_triangles)));
  return routed;
}

}  // namespace atlc::stream
