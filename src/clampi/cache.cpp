#include "atlc/clampi/cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "atlc/util/check.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::clampi {

std::uint64_t key_hash(const Key& k) {
  std::uint64_t h = util::mix64(k.target, 0x9E3779B9u);
  h = util::mix64(h ^ k.offset, 0x85EBCA6Bu);
  h = util::mix64(h ^ k.bytes, 0xC2B2AE35u);
  return h;
}

Cache::Cache(CacheConfig config)
    : config_(config),
      free_(config.buffer_bytes),
      buffer_(config.buffer_bytes),
      slots_(std::max<std::size_t>(1, config.hash_slots), kEmpty) {
  ATLC_CHECK(config_.probe_limit > 0, "probe_limit must be positive");
}

std::int32_t Cache::find(const Key& key) const {
  const std::uint64_t base = key_hash(key);
  for (std::size_t i = 0; i < config_.probe_limit; ++i) {
    const std::size_t s = (base + i) % slots_.size();
    const std::int32_t idx = slots_[s];
    if (idx == kEmpty) return -1;
    if (idx == kTombstone) continue;
    if (pool_[idx].key == key) return idx;
  }
  return -1;
}

void Cache::lru_unlink(std::int32_t idx) {
  Entry& e = pool_[idx];
  if (e.lru_prev != -1)
    pool_[e.lru_prev].lru_next = e.lru_next;
  else
    lru_head_ = e.lru_next;
  if (e.lru_next != -1)
    pool_[e.lru_next].lru_prev = e.lru_prev;
  else
    lru_tail_ = e.lru_prev;
  e.lru_prev = e.lru_next = -1;
}

void Cache::lru_push_front(std::int32_t idx) {
  Entry& e = pool_[idx];
  e.lru_prev = -1;
  e.lru_next = lru_head_;
  if (lru_head_ != -1) pool_[lru_head_].lru_prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == -1) lru_tail_ = idx;
}

void Cache::touch(std::int32_t idx) {
  lru_unlink(idx);
  lru_push_front(idx);
  pool_[idx].last_tick = ++tick_;
}

bool Cache::lookup(const Key& key, void* dst) {
  ++window_accesses_;
  maybe_adapt();
  const std::int32_t idx = find(key);
  if (idx >= 0) {
    if (pool_[idx].epoch != current_epoch_) {
      // The window advanced past the epoch this payload was fetched at: the
      // bytes may no longer match the target's exposure. Serving them would
      // violate coherence, so the entry is recycled and the probe reported
      // as a miss (stale-hit-as-miss, DESIGN.md §7).
      evict(idx, GoneReason::Stale);
    } else {
      const Entry& e = pool_[idx];
      std::memcpy(dst, buffer_.data() + e.buf_offset, e.key.bytes);
      touch(idx);
      ++stats_.hits;
      stats_.bytes_hit += e.key.bytes;
      return true;
    }
  }
  ++stats_.misses;
  stats_.bytes_missed += key.bytes;
  if (config_.classify_misses) classify_miss(key);
  return false;
}

void Cache::classify_miss(const Key& key) {
  const auto it = gone_.find(key_hash(key));
  if (it == gone_.end()) {
    ++stats_.compulsory_misses;
    return;
  }
  switch (it->second) {
    case GoneReason::EvictedSpace: ++stats_.capacity_misses; break;
    case GoneReason::EvictedConflict: ++stats_.conflict_misses; break;
    case GoneReason::Flushed: ++stats_.flush_misses; break;
    // Epoch invalidation is a targeted flush of one entry.
    case GoneReason::Stale: ++stats_.flush_misses; break;
    case GoneReason::NeverStored: ++stats_.capacity_misses; break;
  }
}

void Cache::note_gone(const Key& key, GoneReason reason) {
  if (config_.classify_misses) gone_[key_hash(key)] = reason;
}

void Cache::evict(std::int32_t idx, GoneReason reason) {
  Entry& e = pool_[idx];
  ATLC_DCHECK(e.live, "evicting a dead entry");
  note_gone(e.key, reason);
  slots_[e.slot] = kTombstone;
  free_.release(e.buf_offset, e.key.bytes);
  live_by_offset_.erase(e.buf_offset);
  lru_unlink(idx);
  if (config_.policy == VictimPolicy::UserScore) {
    auto [lo, hi] = by_score_.equal_range(e.user_score);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == idx) {
        by_score_.erase(it);
        break;
      }
    }
  }
  e.live = false;
  pool_free_.push_back(idx);
  --live_entries_;
  if (reason == GoneReason::EvictedSpace) ++stats_.evictions_space;
  if (reason == GoneReason::EvictedConflict) ++stats_.evictions_conflict;
  if (reason == GoneReason::Stale) ++stats_.stale_evictions;
}

std::int32_t Cache::lru_positional_pick(
    const std::vector<std::int32_t>& candidates) {
  // Paper / CLaMPI: "LRU weighted on a positional score to limit external
  // fragmentation". Candidate i (0 = least recently used) has base weight i;
  // the merge-benefit ratio of its surroundings subtracts up to half the
  // window, so a perfectly-mergeable entry can be evicted ahead of up to
  // window/2 colder entries.
  std::int32_t best = -1;
  double best_weight = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Entry& e = pool_[candidates[i]];
    const double benefit =
        e.key.bytes > 0
            ? std::min(2.0, static_cast<double>(free_.adjacent_free(
                                e.buf_offset, e.key.bytes)) /
                                static_cast<double>(e.key.bytes))
            : 0.0;
    const double weight = static_cast<double>(i) -
                          benefit * static_cast<double>(candidates.size()) / 4.0;
    if (best == -1 || weight < best_weight) {
      best = candidates[i];
      best_weight = weight;
    }
  }
  return best;
}

std::int32_t Cache::pick_victim_global() {
  if (live_entries_ == 0) return -1;
  if (config_.policy == VictimPolicy::UserScore) {
    ATLC_DCHECK(!by_score_.empty(), "score index out of sync");
    return by_score_.begin()->second;  // lowest application score
  }
  std::vector<std::int32_t> candidates;
  candidates.reserve(config_.lru_window);
  for (std::int32_t it = lru_tail_;
       it != -1 && candidates.size() < config_.lru_window;
       it = pool_[it].lru_prev)
    candidates.push_back(it);
  return lru_positional_pick(candidates);
}

std::int32_t Cache::pick_victim_in_probe_window(std::uint64_t hash_base) {
  std::vector<std::int32_t> candidates;
  for (std::size_t i = 0; i < config_.probe_limit; ++i) {
    const std::int32_t idx = slots_[(hash_base + i) % slots_.size()];
    if (idx >= 0) candidates.push_back(idx);
  }
  if (candidates.empty()) return -1;
  if (config_.policy == VictimPolicy::UserScore) {
    return *std::min_element(candidates.begin(), candidates.end(),
                             [&](std::int32_t a, std::int32_t b) {
                               if (pool_[a].user_score != pool_[b].user_score)
                                 return pool_[a].user_score <
                                        pool_[b].user_score;
                               return pool_[a].last_tick < pool_[b].last_tick;
                             });
  }
  // Order candidates oldest-first so positional weighting applies as in the
  // global case.
  std::sort(candidates.begin(), candidates.end(),
            [&](std::int32_t a, std::int32_t b) {
              return pool_[a].last_tick < pool_[b].last_tick;
            });
  return lru_positional_pick(candidates);
}

bool Cache::make_room(std::uint64_t bytes, double incoming_score) {
  // Phase 1: bounded cheapest-first single evictions (CLaMPI's score-ordered
  // victim selection). Coalescing usually opens a fitting hole when the
  // incoming entry is around the median entry size.
  for (int k = 0; k < 16; ++k) {
    const std::int32_t victim = pick_victim_global();
    if (victim < 0) break;  // cache empty
    if (config_.policy == VictimPolicy::UserScore &&
        pool_[victim].user_score >= incoming_score) {
      // The cheapest resident already outranks the newcomer, so every
      // resident does: admission denied (paper Section III-B2 intent).
      return false;
    }
    evict(victim, GoneReason::EvictedSpace);
    if (free_.largest_free() >= bytes) return true;
  }
  if (live_entries_ == 0) return free_.largest_free() >= bytes;

  // Phase 2: external fragmentation blocks the allocation although cheap
  // entries exist (typical when a hub-sized adjacency list arrives over a
  // buffer full of small entries). Clear the cheapest CONTIGUOUS run —
  // the run-cost is the max entry score inside it, so a run containing a
  // higher-ranked resident is never sacrificed for a lower-ranked newcomer
  // (this is what keeps hub entries from thrashing each other).
  struct Run {
    std::vector<std::int32_t> victims;
    double cost = 0.0;
  };
  std::optional<Run> best;
  std::vector<std::uint64_t> starts;
  starts.reserve(free_.num_regions() + 1);
  starts.push_back(0);
  for (const auto& [off, sz] : free_.regions_by_offset()) starts.push_back(off);

  for (const std::uint64_t start : starts) {
    std::uint64_t pos = start, span = 0;
    Run run;
    bool feasible = true;
    while (span < bytes) {
      if (pos >= free_.capacity()) {
        feasible = false;
        break;
      }
      if (const std::uint64_t fr = free_.region_at(pos)) {
        span += fr;
        pos += fr;
        continue;
      }
      const auto it = live_by_offset_.find(pos);
      ATLC_CHECK(it != live_by_offset_.end(), "cache buffer layout corrupted");
      const Entry& e = pool_[it->second];
      run.victims.push_back(it->second);
      run.cost = std::max(run.cost, config_.policy == VictimPolicy::UserScore
                                        ? e.user_score
                                        : static_cast<double>(e.last_tick));
      span += e.key.bytes;
      pos += e.key.bytes;
    }
    if (feasible && (!best || run.cost < best->cost)) best = std::move(run);
  }
  if (!best) return false;
  if (config_.policy == VictimPolicy::UserScore && best->cost >= incoming_score)
    return false;
  for (const std::int32_t v : best->victims) evict(v, GoneReason::EvictedSpace);
  return free_.largest_free() >= bytes;
}

bool Cache::insert(const Key& key, const void* data, double user_score) {
  if (key.bytes == 0 || key.bytes > config_.buffer_bytes) {
    // Zero-byte payloads carry no data worth caching (and would corrupt
    // the buffer-layout tiling); oversized ones cannot fit.
    ++stats_.insert_failures;
    note_gone(key, GoneReason::NeverStored);
    return false;
  }
  if (const std::int32_t prev = find(key); prev >= 0) {
    // A stale resident from an older epoch still occupies the key (a deep
    // pipeline can complete a pre-refresh miss after the epoch advanced).
    // Recycle it; the incoming payload is the current-epoch replacement.
    ATLC_DCHECK(pool_[prev].epoch != current_epoch_,
                "insert of an already-cached key");
    evict(prev, GoneReason::Stale);
  }

  // 1) Claim a hash slot (may require a conflict eviction).
  const std::uint64_t base = key_hash(key);
  std::int32_t slot = -1;
  for (std::size_t i = 0; i < config_.probe_limit; ++i) {
    const std::size_t s = (base + i) % slots_.size();
    if (slots_[s] == kEmpty || slots_[s] == kTombstone) {
      slot = static_cast<std::int32_t>(s);
      break;
    }
  }
  if (slot == -1) {
    ++window_conflicts_;
    const std::int32_t victim = pick_victim_in_probe_window(base);
    ATLC_DCHECK(victim >= 0, "full probe window with no live entry");
    // Admission gate (paper Section III-B2): under application scores, a
    // lower-scored entry must not displace a higher-scored resident —
    // otherwise every miss cycles the cache and hubs never stay resident.
    if (config_.policy == VictimPolicy::UserScore &&
        pool_[victim].user_score >= user_score) {
      ++stats_.admission_rejects;
      note_gone(key, GoneReason::NeverStored);
      return false;
    }
    slot = static_cast<std::int32_t>(pool_[victim].slot);
    evict(victim, GoneReason::EvictedConflict);
  }

  // 2) Claim buffer space (may require capacity evictions).
  std::optional<std::uint64_t> buf_off = free_.allocate(key.bytes);
  if (!buf_off) {
    // (Any victims evicted below cannot occupy the slot claimed above: we
    // claimed an empty/tombstone slot and evict() only tombstones live
    // slots.)
    if (!make_room(key.bytes, user_score)) {
      ++stats_.admission_rejects;
      note_gone(key, GoneReason::NeverStored);
      return false;
    }
    buf_off = free_.allocate(key.bytes);
    ATLC_CHECK(buf_off.has_value(), "make_room must enable the allocation");
  }

  // 3) Materialise the entry.
  std::memcpy(buffer_.data() + *buf_off, data, key.bytes);
  std::int32_t idx;
  if (!pool_free_.empty()) {
    idx = pool_free_.back();
    pool_free_.pop_back();
  } else {
    idx = static_cast<std::int32_t>(pool_.size());
    pool_.emplace_back();
  }
  Entry& e = pool_[idx];
  e.key = key;
  e.buf_offset = *buf_off;
  e.last_tick = ++tick_;
  e.epoch = current_epoch_;
  e.user_score = user_score;
  e.slot = static_cast<std::uint32_t>(slot);
  e.live = true;
  slots_[slot] = idx;
  live_by_offset_.emplace(*buf_off, idx);
  lru_push_front(idx);
  if (config_.policy == VictimPolicy::UserScore)
    by_score_.emplace(user_score, idx);
  ++live_entries_;
  if (config_.classify_misses) gone_.erase(key_hash(key));
  return true;
}

void Cache::flush() {
  for (std::int32_t it = lru_head_; it != -1; it = pool_[it].lru_next)
    note_gone(pool_[it].key, GoneReason::Flushed);
  pool_.clear();
  pool_free_.clear();
  std::fill(slots_.begin(), slots_.end(), kEmpty);
  by_score_.clear();
  live_by_offset_.clear();
  free_.reset();
  live_entries_ = 0;
  lru_head_ = lru_tail_ = -1;
  ++stats_.flushes;
}

void Cache::epoch_close() {
  if (config_.mode == Mode::Transparent) flush();
}

void Cache::maybe_adapt() {
  if (!config_.adaptive || window_accesses_ < config_.adaptive_interval)
    return;
  const double conflict_rate = static_cast<double>(window_conflicts_) /
                               static_cast<double>(window_accesses_);
  window_accesses_ = 0;
  window_conflicts_ = 0;
  if (conflict_rate > config_.adaptive_conflict_threshold &&
      slots_.size() * 2 <= config_.max_hash_slots) {
    // CLaMPI's adaptive strategy: resize the hash table and FLUSH (paper
    // Section III-B1 — this is why good initial sizes matter).
    flush();
    slots_.assign(slots_.size() * 2, kEmpty);
    ++stats_.hash_resizes;
  }
}

std::vector<EntryInfo> Cache::entries() const {
  std::vector<EntryInfo> out;
  out.reserve(live_entries_);
  for (std::int32_t it = lru_head_; it != -1; it = pool_[it].lru_next)
    out.push_back({pool_[it].key, pool_[it].user_score, pool_[it].last_tick});
  return out;
}

std::size_t Cache::suggest_hash_slots_fixed(std::uint64_t cache_bytes,
                                            std::uint64_t entry_bytes) {
  if (entry_bytes == 0) return 1;
  return std::max<std::size_t>(16, cache_bytes / entry_bytes);
}

std::size_t Cache::suggest_hash_slots_power_law(std::uint64_t num_vertices,
                                                double cache_fraction,
                                                double alpha) {
  const double expected = static_cast<double>(num_vertices) *
                          std::pow(std::clamp(cache_fraction, 0.0, 1.0), alpha);
  return std::max<std::size_t>(16, static_cast<std::size_t>(expected));
}

}  // namespace atlc::clampi
