#include "atlc/clampi/free_space.hpp"

#include "atlc/util/check.hpp"

namespace atlc::clampi {

FreeSpace::FreeSpace(std::uint64_t capacity)
    : capacity_(capacity), total_free_(capacity) {
  if (capacity > 0) insert_region(0, capacity);
}

void FreeSpace::insert_region(std::uint64_t offset, std::uint64_t bytes) {
  by_offset_.emplace(offset, bytes);
  by_size_.emplace(bytes, offset);
}

void FreeSpace::erase_region(
    std::map<std::uint64_t, std::uint64_t>::iterator it) {
  auto [size_lo, size_hi] = by_size_.equal_range(it->second);
  for (auto s = size_lo; s != size_hi; ++s) {
    if (s->second == it->first) {
      by_size_.erase(s);
      break;
    }
  }
  by_offset_.erase(it);
}

std::optional<std::uint64_t> FreeSpace::allocate(std::uint64_t bytes) {
  if (bytes == 0) return 0;
  auto fit = by_size_.lower_bound(bytes);  // best fit: smallest region >= bytes
  if (fit == by_size_.end()) return std::nullopt;
  const std::uint64_t region_size = fit->first;
  const std::uint64_t region_off = fit->second;
  by_size_.erase(fit);
  by_offset_.erase(region_off);
  if (region_size > bytes)
    insert_region(region_off + bytes, region_size - bytes);
  total_free_ -= bytes;
  return region_off;
}

void FreeSpace::release(std::uint64_t offset, std::uint64_t bytes) {
  if (bytes == 0) return;
  ATLC_CHECK(offset + bytes <= capacity_, "release beyond capacity");
  std::uint64_t lo = offset, hi = offset + bytes;

  // Coalesce with the following region.
  auto next = by_offset_.lower_bound(offset);
  if (next != by_offset_.end() && next->first == hi) {
    hi += next->second;
    erase_region(next);
  }
  // Coalesce with the preceding region.
  auto prev = by_offset_.lower_bound(offset);
  if (prev != by_offset_.begin()) {
    --prev;
    ATLC_CHECK(prev->first + prev->second <= offset, "double free detected");
    if (prev->first + prev->second == offset) {
      lo = prev->first;
      erase_region(prev);
    }
  }
  insert_region(lo, hi - lo);
  total_free_ += bytes;
}

std::uint64_t FreeSpace::largest_free() const {
  return by_size_.empty() ? 0 : by_size_.rbegin()->first;
}

std::uint64_t FreeSpace::adjacent_free(std::uint64_t offset,
                                       std::uint64_t bytes) const {
  std::uint64_t adj = 0;
  auto next = by_offset_.lower_bound(offset + bytes);
  if (next != by_offset_.end() && next->first == offset + bytes)
    adj += next->second;
  auto prev = by_offset_.lower_bound(offset);
  if (prev != by_offset_.begin()) {
    --prev;
    if (prev->first + prev->second == offset) adj += prev->second;
  }
  return adj;
}

double FreeSpace::fragmentation() const {
  if (total_free_ == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free()) /
                   static_cast<double>(total_free_);
}

void FreeSpace::reset() {
  by_offset_.clear();
  by_size_.clear();
  total_free_ = capacity_;
  if (capacity_ > 0) insert_region(0, capacity_);
}

}  // namespace atlc::clampi
