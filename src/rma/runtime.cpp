#include "atlc/rma/runtime.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "atlc/util/check.hpp"
#include "atlc/util/timer.hpp"

namespace atlc::rma {

namespace detail {

/// Cyclic-generation barrier that can be "poisoned" when a rank dies with an
/// exception: waiters wake up and rethrow instead of deadlocking the run.
class PoisonBarrier {
 public:
  explicit PoisonBarrier(std::uint32_t parties) : parties_(parties) {}

  void wait() {
    std::unique_lock lk(mu_);
    if (poisoned_)
      throw std::runtime_error("rma::Runtime: barrier poisoned (a rank failed)");
    const std::uint64_t my_gen = gen_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lk, [&] { return gen_ != my_gen || poisoned_; });
    if (poisoned_ && gen_ == my_gen)
      throw std::runtime_error("rma::Runtime: barrier poisoned (a rank failed)");
  }

  void poison() {
    std::lock_guard lk(mu_);
    poisoned_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint32_t parties_;
  std::uint32_t waiting_ = 0;
  std::uint64_t gen_ = 0;
  bool poisoned_ = false;
};

struct WindowState {
  std::vector<std::pair<const std::byte*, std::uint64_t>> parts;
  std::size_t elem_size = 0;
  std::uint64_t id = 0;
  /// Bumped once per completed refresh_window collective. Only mutated
  /// between the collective's barriers, so steady-state readers see a
  /// stable value without locking.
  std::uint64_t epoch = 0;
  std::uint32_t refresh_parties = 0;  ///< ranks arrived at current refresh
};

struct SharedState {
  explicit SharedState(Runtime::Options o)
      : opts(std::move(o)),
        bar(opts.ranks),
        clock_slots(opts.ranks, 0.0),
        u64_slots(opts.ranks, 0),
        dbl_slots(opts.ranks, 0.0),
        a2a(opts.ranks) {}

  Runtime::Options opts;
  PoisonBarrier bar;

  std::mutex window_mu;
  std::map<std::uint64_t, std::unique_ptr<WindowState>> windows;

  std::vector<double> clock_slots;
  std::vector<std::uint64_t> u64_slots;
  std::vector<double> dbl_slots;
  std::vector<std::vector<std::vector<std::uint32_t>>> a2a;  // [src][dst]

  std::mutex error_mu;
  std::exception_ptr first_error;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// WindowBase

GetHandle WindowBase::get_bytes(std::uint32_t target,
                                std::uint64_t byte_offset, std::uint64_t bytes,
                                void* dst) const {
  ATLC_DCHECK(state_ != nullptr && ctx_ != nullptr, "get on invalid window");
  ATLC_CHECK(target < state_->parts.size(), "window get: bad target rank");
  const auto& part = state_->parts[target];
  ATLC_CHECK(byte_offset + bytes <= part.second,
             "window get: out of exposed range");

  // The data transfer happens eagerly (shared address space); only the
  // *virtual* completion time reflects the interconnect.
  std::memcpy(dst, part.first + byte_offset, bytes);

  auto& ctx = *ctx_;
  if (target == ctx.rank()) {
    ++ctx.stats().local_gets;
    ctx.stats().local_bytes += bytes;
    // Local window reads bypass the NIC; they complete after a DRAM access.
    return GetHandle{ctx.now() + ctx.net().time_local(bytes)};
  }
  ++ctx.stats().remote_gets;
  ctx.stats().remote_bytes += bytes;
  // Per-rank NIC serialisation: consecutive gets from one rank share the
  // injection port, so transfer k cannot start before k-1 left the port.
  const double start = std::max(ctx.now_, ctx.nic_free_);
  const double done = start + ctx.net().time_remote(bytes);
  ctx.nic_free_ = done;
  ctx.tracer_.transfer("get", start, done, target, bytes);
  return GetHandle{done};
}

std::uint64_t WindowBase::part_bytes(std::uint32_t rank) const {
  ATLC_DCHECK(state_ != nullptr, "part_bytes on invalid window");
  return state_->parts[rank].second;
}

std::uint64_t WindowBase::id() const {
  ATLC_DCHECK(state_ != nullptr, "id on invalid window");
  return state_->id;
}

std::uint64_t WindowBase::epoch() const {
  ATLC_DCHECK(state_ != nullptr, "epoch on invalid window");
  return state_->epoch;
}

// ---------------------------------------------------------------------------
// RankCtx

std::uint32_t RankCtx::num_ranks() const { return shared_->opts.ranks; }
const NetworkModel& RankCtx::net() const { return shared_->opts.net; }

void RankCtx::charge_compute(double seconds) {
  tracer_.charge("compute", "compute", now_, seconds);
  now_ += seconds;
  stats_.compute_seconds += seconds;
}

void RankCtx::charge_comm(double seconds, const char* why) {
  tracer_.charge("comm", why, now_, seconds);
  now_ += seconds;
  stats_.comm_seconds += seconds;
}

void RankCtx::flush(GetHandle h) {
  ++stats_.flushes;
  if (h.complete_at > now_) charge_comm(h.complete_at - now_, "flush_wait");
}

void RankCtx::flush_all() { flush(GetHandle{nic_free_}); }

WindowBase RankCtx::create_window_bytes(const void* data, std::uint64_t bytes,
                                        std::size_t elem_size) {
  auto& sh = *shared_;
  const std::uint64_t seq = window_seq_++;
  detail::WindowState* state = nullptr;
  {
    std::lock_guard lk(sh.window_mu);
    auto& slot = sh.windows[seq];
    if (!slot) {
      slot = std::make_unique<detail::WindowState>();
      slot->parts.resize(sh.opts.ranks);
      slot->elem_size = elem_size;
      slot->id = seq;
    }
    ATLC_CHECK(slot->elem_size == elem_size,
               "collective window creation order mismatch across ranks");
    slot->parts[rank_] = {static_cast<const std::byte*>(data), bytes};
    state = slot.get();
  }
  barrier();  // all ranks registered; window creation is collective in MPI
  WindowBase w;
  w.state_ = state;
  w.ctx_ = this;
  return w;
}

void RankCtx::refresh_window_bytes(WindowBase& w, const void* data,
                                   std::uint64_t bytes) {
  ATLC_CHECK(w.valid(), "refresh of an invalid window");
  auto& sh = *shared_;
  // Entry fence: the slowest reader finishes its gets on the old exposure
  // before any rank swaps its part out from under it.
  barrier();
  {
    std::lock_guard lk(sh.window_mu);
    auto* st = w.state_;
    st->parts[rank_] = {static_cast<const std::byte*>(data), bytes};
    if (++st->refresh_parties == sh.opts.ranks) {
      st->refresh_parties = 0;
      ++st->epoch;  // one bump per collective, by the last arriver
    }
  }
  // Exit fence: every part republished and the epoch advanced before any
  // rank resumes issuing gets against the window.
  barrier();
}

void RankCtx::barrier() {
  auto& sh = *shared_;
  sh.clock_slots[rank_] = now_;
  sh.bar.wait();
  const double mx =
      *std::max_element(sh.clock_slots.begin(), sh.clock_slots.end());
  sh.bar.wait();
  const double cost = net().time_barrier(num_ranks());
  const double wait = (mx - now_) + cost;
  tracer_.charge("comm", "barrier", now_, wait);
  stats_.comm_seconds += wait;
  now_ = mx + cost;
  ++stats_.barriers;
}

std::uint64_t RankCtx::allreduce_sum(std::uint64_t value) {
  auto& sh = *shared_;
  sh.u64_slots[rank_] = value;
  sh.clock_slots[rank_] = now_;
  sh.bar.wait();
  std::uint64_t sum = 0;
  for (auto v : sh.u64_slots) sum += v;
  const double mx =
      *std::max_element(sh.clock_slots.begin(), sh.clock_slots.end());
  sh.bar.wait();
  const double cost = net().time_barrier(num_ranks());
  const double wait = (mx - now_) + cost;
  tracer_.charge("comm", "allreduce", now_, wait);
  stats_.comm_seconds += wait;
  now_ = mx + cost;
  return sum;
}

double RankCtx::allreduce_max(double value) {
  auto& sh = *shared_;
  sh.dbl_slots[rank_] = value;
  sh.clock_slots[rank_] = now_;
  sh.bar.wait();
  const double result =
      *std::max_element(sh.dbl_slots.begin(), sh.dbl_slots.end());
  const double mx =
      *std::max_element(sh.clock_slots.begin(), sh.clock_slots.end());
  sh.bar.wait();
  const double cost = net().time_barrier(num_ranks());
  const double wait = (mx - now_) + cost;
  tracer_.charge("comm", "allreduce", now_, wait);
  stats_.comm_seconds += wait;
  now_ = mx + cost;
  return result;
}

std::vector<std::vector<std::uint32_t>> RankCtx::all_to_all(
    const std::vector<std::vector<std::uint32_t>>& out) {
  ATLC_CHECK(out.size() == num_ranks(), "all_to_all: need one payload per rank");
  auto& sh = *shared_;
  const std::uint32_t p = num_ranks();

  std::uint64_t bytes_out = 0;
  for (const auto& payload : out) bytes_out += payload.size() * 4;

  sh.a2a[rank_] = out;
  sh.clock_slots[rank_] = now_;
  sh.bar.wait();

  std::vector<std::vector<std::uint32_t>> in(p);
  std::uint64_t bytes_in = 0;
  for (std::uint32_t src = 0; src < p; ++src) {
    in[src] = sh.a2a[src][rank_];
    bytes_in += in[src].size() * 4;
  }
  const double mx =
      *std::max_element(sh.clock_slots.begin(), sh.clock_slots.end());
  sh.bar.wait();

  // Blocking all-to-all cost: synchronise to the slowest rank (this is the
  // synchronisation overhead the paper attributes to TriC), then pay one
  // setup per peer plus the serialised byte volume on the busier direction.
  const double cost = net().remote_alpha_s * static_cast<double>(p - 1) +
                      net().remote_byte_s *
                          static_cast<double>(std::max(bytes_out, bytes_in)) +
                      net().time_barrier(p);
  const double wait = (mx - now_) + cost;
  tracer_.charge("comm", "a2a", now_, wait);
  stats_.comm_seconds += wait;
  now_ = mx + cost;
  stats_.messages_sent += p - 1;
  stats_.bytes_sent += bytes_out;
  ++stats_.barriers;
  return in;
}

// ---------------------------------------------------------------------------
// Runtime

Runtime::Result Runtime::run(const Options& options, const RankFn& fn) {
  ATLC_CHECK(options.ranks > 0, "Runtime: need at least one rank");
  detail::SharedState shared(options);

  Result result;
  result.stats.resize(options.ranks);
  result.clocks.resize(options.ranks, 0.0);

  // Size the per-rank trace buffers before any rank thread can record:
  // after this, appends are rank-disjoint and lock-free.
  if (options.trace != nullptr) options.trace->prepare(options.ranks);

  util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(options.ranks);
  for (std::uint32_t r = 0; r < options.ranks; ++r) {
    threads.emplace_back([&, r] {
      RankCtx ctx(&shared, r);
      if (shared.opts.trace != nullptr)
        ctx.tracer_.bind(
            shared.opts.trace, r,
            [](const void* p) { return static_cast<const RankCtx*>(p)->now(); },
            &ctx);
      try {
        fn(ctx);
      } catch (...) {
        {
          std::lock_guard lk(shared.error_mu);
          if (!shared.first_error) shared.first_error = std::current_exception();
        }
        shared.bar.poison();
      }
      ctx.tracer_.unbind();  // flush the pending coalesced charge run
      result.stats[r] = ctx.stats();
      result.clocks[r] = ctx.now();
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = wall.elapsed_s();

  if (shared.first_error) std::rethrow_exception(shared.first_error);

  result.makespan = *std::max_element(result.clocks.begin(), result.clocks.end());
  return result;
}

}  // namespace atlc::rma
