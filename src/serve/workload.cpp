#include "atlc/serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "atlc/stream/update.hpp"
#include "atlc/util/check.hpp"

namespace atlc::serve {

ZipfSampler::ZipfSampler(VertexId n, double skew, std::uint64_t seed) {
  ATLC_CHECK(n > 0, "ZipfSampler: empty vertex range");
  cdf_.resize(n);
  double acc = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i) + 1.0, skew);
    cdf_[i] = acc;
  }
  const double total = cdf_.back();
  for (double& c : cdf_) c /= total;

  // Seeded Fisher–Yates rank-to-vertex permutation: traffic skew must not
  // accidentally coincide with degree skew (vertex ids correlate with
  // degree in R-MAT output).
  vertex_of_rank_.resize(n);
  for (VertexId i = 0; i < n; ++i) vertex_of_rank_[i] = i;
  util::Xoshiro256 rng(util::mix64(seed, 0x5a1fu));
  for (VertexId i = n; i > 1; --i) {
    const auto j = static_cast<VertexId>(rng.next_below(i));
    std::swap(vertex_of_rank_[i - 1], vertex_of_rank_[j]);
  }
}

VertexId ZipfSampler::sample(util::Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  return vertex_of_rank_[rank];
}

std::vector<ServeEpoch> generate_query_stream(const graph::CSRGraph& g,
                                              const QueryWorkloadConfig& cfg) {
  std::vector<ServeEpoch> epochs(cfg.num_epochs);

  // Update side first: reuse the streaming workload generator so serve
  // traffic exercises the exact same batch shapes as the PR 4 engine.
  if (cfg.batch_size > 0 && cfg.num_epochs > 0) {
    stream::WorkloadConfig wc;
    wc.num_batches = cfg.num_epochs;
    wc.batch_size = cfg.batch_size;
    wc.insert_fraction = cfg.insert_fraction;
    wc.seed = util::mix64(cfg.seed, 0xba7cu);
    std::vector<stream::Batch> batches = stream::generate_batches(g, wc);
    for (std::size_t e = 0; e < cfg.num_epochs; ++e)
      epochs[e].updates = std::move(batches[e]);
  }

  const ZipfSampler zipf(g.num_vertices(), cfg.zipf_skew,
                         util::mix64(cfg.seed, 0x21fu));
  util::Xoshiro256 rng(util::mix64(cfg.seed, 0x9e37u));
  for (std::size_t e = 0; e < cfg.num_epochs; ++e) {
    epochs[e].queries.reserve(cfg.queries_per_epoch);
    for (std::size_t q = 0; q < cfg.queries_per_epoch; ++q) {
      Query query;
      query.v = zipf.sample(rng);
      query.k = cfg.topk;
      const double mix = rng.next_double();
      if (mix < cfg.lcc_fraction) {
        query.kind = QueryKind::Lcc;
      } else if (mix < cfg.lcc_fraction + cfg.common_fraction) {
        query.kind = QueryKind::TopKCommon;
      } else {
        query.kind = QueryKind::TopKAdamicAdar;
      }
      epochs[e].queries.push_back(query);
    }
  }
  return epochs;
}

}  // namespace atlc::serve
