#include "atlc/serve/query_engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "atlc/core/dist_graph.hpp"
#include "atlc/core/edge_pipeline.hpp"
#include "atlc/graph/hub_replica.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/intersect/intersect.hpp"
#include "atlc/stream/batch_applier.hpp"
#include "atlc/util/check.hpp"

namespace atlc::serve {

namespace {

// ---- Scoring helpers shared by the engine kernels and answer_reference.
// Sharing them is what makes the parity contract a bit-for-bit one: both
// paths accumulate a candidate's contributions in ascending friend order
// and run the identical top-k selection, so even the Adamic–Adar double
// sums agree exactly.

/// Adamic–Adar weight of a common neighbor of degree `deg`; degree-0/1
/// vertices contribute nothing (ln 1 = 0 would divide by zero).
double aa_weight(std::size_t deg) {
  return deg >= 2 ? 1.0 / std::log(static_cast<double>(deg)) : 0.0;
}

/// Fold one friend's adjacency into the candidate scores: every c in
/// `adj_f` that is neither v itself nor already a neighbor of v gains `w`.
/// Zero-weight friends contribute no candidates at all (not 0.0-scored
/// entries) — both paths must agree on the candidate *set*, not just the
/// scores, because top-k padding draws from it.
void accumulate_candidates(VertexId v, std::span<const VertexId> adj_v,
                           std::span<const VertexId> adj_f, double w,
                           std::map<VertexId, double>& scores) {
  if (w == 0.0) return;
  for (const VertexId c : adj_f) {
    if (c == v) continue;
    if (std::binary_search(adj_v.begin(), adj_v.end(), c)) continue;
    scores[c] += w;
  }
}

/// Ordering contract of query.hpp: score descending, id ascending on ties.
/// Total order over distinct candidates, so the selection is unique.
std::vector<Recommendation> select_topk(
    const std::map<VertexId, double>& scores, std::uint32_t k) {
  std::vector<Recommendation> all;
  all.reserve(scores.size());
  for (const auto& [c, s] : scores) all.push_back({c, s});
  const auto kk = std::min<std::size_t>(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(kk), all.end(),
                    [](const Recommendation& a, const Recommendation& b) {
                      return a.score > b.score ||
                             (a.score == b.score && a.v < b.v);
                    });
  all.resize(kk);
  return all;
}

/// Does a committed batch potentially change v's memoized answers? True
/// iff v is an endpoint of an effective op, or an op endpoint lies in v's
/// PRE-batch neighborhood (DESIGN.md §13 derives why this covers LCC and
/// both top-k scores, including the Adamic–Adar degree weights). The
/// endpoint test uses the replicated touched-vertex set; the neighbor test
/// binary-searches v's local row, which must still be the pre-batch row —
/// the engine invalidates between adjudicate and apply_to_rows.
bool batch_affects(VertexId v, std::span<const VertexId> touched,
                   const stream::EffectiveBatch& eff,
                   std::span<const VertexId> row) {
  if (std::binary_search(touched.begin(), touched.end(), v)) return true;
  for (const stream::CanonicalUpdate& op : eff.ops) {
    if (std::binary_search(row.begin(), row.end(), op.a)) return true;
    if (std::binary_search(row.begin(), row.end(), op.b)) return true;
  }
  return false;
}

/// Answer one admitted query at its owner rank: probe the hot cache, on a
/// miss drive the (lv, neighbor) work list through the pipeline's prefetch
/// ring, memoize, and diff the pipeline counters into the QueryCost.
void answer_one(rma::RankCtx& ctx, const core::DistGraph& dg,
                core::EdgePipeline& pipeline, const core::EngineConfig& cfg,
                HotVertexCache& hot, const Query& q, double epoch_open,
                QueryAnswer& a, core::QueryCost& qc) {
  obs::Tracer& tr = ctx.tracer();
  a.arrival = epoch_open;
  const double t0 = ctx.now();
  const core::PipelineRankStats before = pipeline.harvest();
  if (tr.enabled()) {
    tr.begin("query");
    tr.instant("query_arrival", {"v", static_cast<std::uint64_t>(q.v)});
  }

  bool served = false;
  if (hot.enabled()) {
    // One set-associative lookup: priced as `ways` probes into the bucket.
    ctx.charge_compute(cfg.cost.seconds_probes(hot.config().ways, 2));
    const HotVertexCache::Probe p = hot.probe(q.v, q.kind, q.k);
    if (p.hit) {
      a.hot_hit = true;
      if (q.kind == QueryKind::Lcc) {
        a.lcc = p.lcc;
      } else {
        a.topk.assign(p.topk.begin(), p.topk.end());
      }
      served = true;
    }
  }

  if (!served) {
    const VertexId lv = dg.partition.local_index(q.v);
    const std::span<const VertexId> adj_v = dg.local_neighbors(lv);
    std::vector<std::pair<VertexId, VertexId>> work;
    work.reserve(adj_v.size());
    for (const VertexId f : adj_v) work.emplace_back(lv, f);

    if (q.kind == QueryKind::Lcc) {
      std::uint64_t tri = 0;
      pipeline.run_over(
          work, [&](VertexId, VertexId, std::span<const VertexId> av,
                    std::span<const VertexId> aj) {
            tri += intersect::count_common(av, aj, cfg.method);
            ctx.charge_compute(
                cfg.cost.seconds(cfg.method, av.size(), aj.size()));
          });
      a.lcc = graph::lcc_score(tri, static_cast<VertexId>(adj_v.size()));
      hot.insert_lcc(q.v, a.lcc);
    } else {
      const bool adamic = q.kind == QueryKind::TopKAdamicAdar;
      std::map<VertexId, double> scores;
      pipeline.run_over(
          work, [&](VertexId, VertexId, std::span<const VertexId> av,
                    std::span<const VertexId> aj) {
            // aj is the friend's full row (1D partitions), so its size IS
            // the friend's degree — the Adamic–Adar weight needs it.
            accumulate_candidates(q.v, av, aj,
                                  adamic ? aa_weight(aj.size()) : 1.0,
                                  scores);
            // The scan is |adj_f| membership probes into the sorted adj_v.
            ctx.charge_compute(
                cfg.cost.seconds_probes(aj.size(), av.size()));
          });
      a.topk = select_topk(scores, q.k);
      // Bounded-heap selection over the candidate set.
      ctx.charge_compute(cfg.cost.seconds_probes(
          scores.size(), std::max<std::size_t>(q.k, 2)));
      hot.insert_topk(q.v, q.kind, q.k, a.topk);
    }
  }

  a.completion = ctx.now();
  if (tr.enabled()) tr.end("query");

  const core::PipelineRankStats after = pipeline.harvest();
  qc.id = a.id;
  qc.epoch = a.epoch;
  qc.edges_processed = after.edges_processed - before.edges_processed;
  qc.remote_edges = after.remote_edges - before.remote_edges;
  qc.seconds = a.completion - t0;
}

}  // namespace

QueryEngine::QueryEngine(const graph::CSRGraph& g, ServeOptions options)
    : g_(&g), options_(std::move(options)) {}

ServeResult QueryEngine::run(std::span<const ServeEpoch> epochs,
                             std::uint32_t ranks) const {
  const graph::CSRGraph& g = *g_;
  ATLC_CHECK(g.directedness() == graph::Directedness::Undirected,
             "serve: undirected graphs only (LCC and the recommendation "
             "scores assume symmetric neighborhoods)");
  ATLC_CHECK(options_.partition != graph::PartitionKind::Grid2D,
             "serve: point queries fetch whole adjacency rows; Grid2D's "
             "segment ownership is not plumbed through the query kernels");
  core::EngineConfig cfg = options_.engine;
  cfg.upper_triangle_only = false;  // per-vertex analytics need full rows

  const graph::Partition partition =
      graph::make_partition(g, options_.partition, ranks);
  const graph::HubReplica hub_proto =
      graph::HubReplica::build(g, cfg.hub_fraction);

  ServeResult out;
  out.epochs.resize(epochs.size());
  if (cfg.track_remote_reads)
    out.stats.remote_reads.assign(g.num_vertices(), 0);

  // Identity fields and admission verdicts are a pure function of the
  // input stream — computed once here, identically for every rank count,
  // which is exactly the determinism the admission test pins down.
  std::uint64_t total = 0;
  for (const ServeEpoch& e : epochs) total += e.queries.size();
  out.answers.resize(total);
  {
    std::uint64_t id = 0;
    for (std::size_t e = 0; e < epochs.size(); ++e) {
      for (std::size_t qi = 0; qi < epochs[e].queries.size(); ++qi, ++id) {
        const Query& q = epochs[e].queries[qi];
        QueryAnswer& a = out.answers[id];
        a.id = id;
        a.kind = q.kind;
        a.v = q.v;
        a.k = q.kind == QueryKind::Lcc ? 0 : q.k;
        a.epoch = static_cast<std::uint32_t>(e);
        a.rejected = qi >= options_.admission_capacity;
      }
    }
  }

  std::vector<core::PipelineRankStats> rank_stats(ranks);
  out.hot_cache_ranks.resize(ranks);
  std::vector<core::QueryCost> costs(total);

  rma::Runtime::Options ropts;
  ropts.ranks = ranks;
  ropts.net = options_.net;
  ropts.trace = cfg.trace;
  out.stats.run = rma::Runtime::run(ropts, [&](rma::RankCtx& ctx) {
    ctx.tracer().begin("build_graph");
    core::DistGraph dg =
        core::build_dist_graph(ctx, g, partition, &hub_proto,
                               cfg.slice_source);
    core::EdgePipeline pipeline(ctx, dg, cfg);
    ctx.barrier();  // align clocks: everything before here is build cost
    ctx.tracer().end("build_graph");
    if (ctx.rank() == 0) out.build_makespan = ctx.now();

    stream::BatchApplier applier(ctx, dg, cfg);
    HotVertexCache hot(options_.hot_cache);

    std::uint64_t id_base = 0;
    std::uint64_t hot_hits_prev = 0;
    for (std::size_t e = 0; e < epochs.size(); ++e) {
      const ServeEpoch& ep = epochs[e];
      ctx.tracer().begin("serve_epoch");
      const double epoch_open = ctx.now();  // barrier-aligned on all ranks

      // ---- Query phase: answers reflect batches 0..e-1 only. Owned
      // queries run sequentially, so completion times include the rank's
      // virtual queueing delay behind earlier queries of the same epoch.
      ctx.tracer().begin("queries");
      const std::size_t accepted =
          std::min<std::size_t>(ep.queries.size(),
                                options_.admission_capacity);
      for (std::size_t qi = 0; qi < ep.queries.size(); ++qi) {
        QueryAnswer& a = out.answers[id_base + qi];
        if (qi >= accepted) {
          // Admission overflow: bounced at epoch open, no service time.
          if (ctx.rank() == 0) {
            a.arrival = epoch_open;
            a.completion = epoch_open;
          }
          continue;
        }
        const Query& q = ep.queries[qi];
        if (partition.owner(q.v) != ctx.rank()) continue;
        answer_one(ctx, dg, pipeline, cfg, hot, q, epoch_open, a,
                   costs[id_base + qi]);
      }
      ctx.tracer().end("queries");
      ctx.barrier();  // read phase closed: rows may change after this
      const double queries_done = ctx.now();

      // ---- Update phase: adjudicate (collective), invalidate the hot
      // cache against PRE-batch neighborhoods, then commit the rows.
      ctx.tracer().begin("update");
      const stream::EffectiveBatch eff = applier.adjudicate(ep.updates);
      std::uint64_t local_rows = 0;
      if (!eff.empty()) {  // replicated verdicts: all ranks agree
        const std::vector<VertexId> touched = stream::touched_vertices(eff);
        std::uint64_t scanned = 0;
        hot.invalidate_if(
            [&](VertexId v) {
              return batch_affects(
                  v, touched, eff,
                  dg.local_neighbors(partition.local_index(v)));
            },
            &scanned);
        // Each scanned entry costs up to 2|ops| membership probes into its
        // row plus one probe of the touched set.
        ctx.charge_compute(cfg.cost.seconds_probes(
            scanned * (2 * eff.ops.size() + 1),
            std::max<std::size_t>(touched.size(), 2)));
        local_rows = applier.apply_to_rows(eff);  // refreshes both windows
      }
      hot.begin_epoch(static_cast<std::uint32_t>(e) + 1);
      const std::uint64_t rows_total =
          eff.empty() ? 0 : ctx.allreduce_sum(local_rows);
      ctx.tracer().end("update");
      ctx.barrier();  // commit: epoch e+1 state visible everywhere

      const std::uint64_t hot_hits_now = hot.stats().hits;
      const std::uint64_t epoch_hits =
          ctx.allreduce_sum(hot_hits_now - hot_hits_prev);
      hot_hits_prev = hot_hits_now;
      if (ctx.rank() == 0) {
        EpochOutcome& eo = out.epochs[e];
        eo.submitted = ep.queries.size();
        eo.accepted = accepted;
        eo.rejected = ep.queries.size() - accepted;
        eo.hot_hits = epoch_hits;
        eo.effective_insertions = eff.insertions();
        eo.effective_deletions = eff.deletions();
        eo.rows_rebuilt = rows_total;
        eo.query_makespan = queries_done - epoch_open;
        eo.update_makespan = ctx.now() - queries_done;
      }
      if (ctx.tracer().enabled()) {
        ctx.tracer().counter("hot_cache", "hits", hot.stats().hits);
        ctx.tracer().counter("hot_cache", "misses", hot.stats().misses);
      }
      ctx.tracer().end("serve_epoch");
      id_base += ep.queries.size();
    }

    rank_stats[ctx.rank()] = pipeline.harvest();
    rank_stats[ctx.rank()].busy_seconds = ctx.now();
    out.hot_cache_ranks[ctx.rank()] = hot.stats();
    if (ctx.rank() == 0)
      out.serve_makespan = ctx.now() - out.build_makespan;
    ctx.barrier();  // teardown synchronisation
  });

  for (core::PipelineRankStats& rs : rank_stats)
    out.stats.absorb(std::move(rs));
  for (const HotCacheStats& h : out.hot_cache_ranks) out.hot_cache_total += h;

  out.stats.submitted = total;
  for (const QueryAnswer& a : out.answers) {
    if (a.rejected) {
      ++out.stats.rejected;
      continue;
    }
    ++out.stats.answered;
    out.stats.latencies.push_back(a.latency());
    out.stats.per_query.push_back(costs[a.id]);
  }
  return out;
}

ServeResult run_query_stream(const graph::CSRGraph& g,
                             std::span<const ServeEpoch> epochs,
                             std::uint32_t ranks,
                             const ServeOptions& options) {
  return QueryEngine(g, options).run(epochs, ranks);
}

QueryAnswer answer_reference(const graph::CSRGraph& g, const Query& q) {
  QueryAnswer a;
  a.kind = q.kind;
  a.v = q.v;
  a.k = q.kind == QueryKind::Lcc ? 0 : q.k;
  const std::span<const VertexId> adj_v = g.neighbors(q.v);
  if (q.kind == QueryKind::Lcc) {
    std::uint64_t tri = 0;
    for (const VertexId f : adj_v)
      tri += intersect::count_common(adj_v, g.neighbors(f),
                                     intersect::Method::Hybrid);
    a.lcc = graph::lcc_score(tri, static_cast<VertexId>(adj_v.size()));
    return a;
  }
  const bool adamic = q.kind == QueryKind::TopKAdamicAdar;
  std::map<VertexId, double> scores;
  for (const VertexId f : adj_v) {
    const std::span<const VertexId> adj_f = g.neighbors(f);
    accumulate_candidates(q.v, adj_v, adj_f,
                          adamic ? aa_weight(adj_f.size()) : 1.0, scores);
  }
  a.topk = select_topk(scores, q.k);
  return a;
}

}  // namespace atlc::serve
