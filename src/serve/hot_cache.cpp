#include "atlc/serve/hot_cache.hpp"

#include <algorithm>
#include <utility>

#include "atlc/util/check.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::serve {

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::Lcc:
      return "lcc";
    case QueryKind::TopKCommon:
      return "topk_common";
    case QueryKind::TopKAdamicAdar:
      return "topk_adamic_adar";
  }
  return "unknown";
}

HotCacheStats& HotCacheStats::operator+=(const HotCacheStats& o) {
  probes += o.probes;
  hits += o.hits;
  misses += o.misses;
  stale_misses += o.stale_misses;
  short_misses += o.short_misses;
  inserts += o.inserts;
  updates += o.updates;
  evictions += o.evictions;
  decrements += o.decrements;
  rejects += o.rejects;
  invalidated += o.invalidated;
  return *this;
}

HotVertexCache::HotVertexCache(const HotCacheConfig& config)
    : config_(config) {
  if (config_.entries == 0) return;
  config_.ways = std::clamp<std::size_t>(config_.ways, 1, config_.entries);
  num_buckets_ = config_.entries / config_.ways;
  if (num_buckets_ == 0) num_buckets_ = 1;
  slots_.resize(num_buckets_ * config_.ways);
}

std::size_t HotVertexCache::bucket_of(VertexId v, QueryKind kind) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(v) << 2) | static_cast<std::uint64_t>(kind);
  return static_cast<std::size_t>(util::mix64(key) % num_buckets_);
}

HotVertexCache::Probe HotVertexCache::probe(VertexId v, QueryKind kind,
                                            std::uint32_t k) {
  if (!enabled()) return {};
  ++stats_.probes;
  const std::size_t base = bucket_of(v, kind) * config_.ways;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Entry& e = slots_[base + w];
    if (!e.used || e.v != v || e.kind != kind) continue;
    if (e.stale) {
      // CLaMPI discipline: a stale hit is a miss, and the entry is gone.
      ++stats_.stale_misses;
      e = Entry{};
      return {};
    }
    if (kind != QueryKind::Lcc && e.k < k) {
      // Memo not deep enough to serve a top-k prefix; the recompute will
      // refresh it at the larger depth.
      ++stats_.short_misses;
      return {};
    }
    ++stats_.hits;
    if (e.freq < config_.max_freq) ++e.freq;
    Probe p;
    p.hit = true;
    p.lcc = e.lcc;
    p.topk = std::span<const Recommendation>(
        e.topk.data(), std::min<std::size_t>(e.topk.size(), k));
    return p;
  }
  ++stats_.misses;
  return {};
}

void HotVertexCache::insert_entry(VertexId v, QueryKind kind, std::uint32_t k,
                                  double lcc,
                                  std::vector<Recommendation> topk) {
  if (!enabled()) return;
  const std::size_t base = bucket_of(v, kind) * config_.ways;

  // Refresh in place if the key is already resident (possibly stale after
  // an invalidation — the fresh answer supersedes it).
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Entry& e = slots_[base + w];
    if (e.used && e.v == v && e.kind == kind) {
      e.k = k;
      e.epoch = epoch_;
      e.stale = false;
      e.lcc = lcc;
      e.topk = std::move(topk);
      if (e.freq < config_.max_freq) ++e.freq;
      ++stats_.updates;
      return;
    }
  }

  // Empty (or stale — reclaim eagerly) slot: lowest index wins.
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Entry& e = slots_[base + w];
    if (e.used && !e.stale) continue;
    e = Entry{};
    e.used = true;
    e.v = v;
    e.kind = kind;
    e.k = k;
    e.epoch = epoch_;
    e.freq = 1;
    e.lcc = lcc;
    e.topk = std::move(topk);
    ++stats_.inserts;
    return;
  }

  // Full bucket: IdxCache frequency-decrement. Deterministic victim = the
  // minimum-frequency entry, lowest slot index on ties.
  std::size_t victim = 0;
  for (std::size_t w = 1; w < config_.ways; ++w) {
    if (slots_[base + w].freq < slots_[base + victim].freq) victim = w;
  }
  Entry& ve = slots_[base + victim];
  if (ve.freq > 0) {
    --ve.freq;
    ++stats_.decrements;
    ++stats_.rejects;  // incoming entry turned away this time
    return;
  }
  ve = Entry{};
  ve.used = true;
  ve.v = v;
  ve.kind = kind;
  ve.k = k;
  ve.epoch = epoch_;
  ve.freq = 1;
  ve.lcc = lcc;
  ve.topk = std::move(topk);
  ++stats_.evictions;
  ++stats_.inserts;
}

void HotVertexCache::insert_lcc(VertexId v, double lcc) {
  insert_entry(v, QueryKind::Lcc, 0, lcc, {});
}

void HotVertexCache::insert_topk(VertexId v, QueryKind kind, std::uint32_t k,
                                 std::vector<Recommendation> topk) {
  ATLC_CHECK(kind != QueryKind::Lcc, "insert_topk: kind must be a TopK kind");
  insert_entry(v, kind, k, 0.0, std::move(topk));
}

void HotVertexCache::invalidate(std::span<const VertexId> sorted_vertices) {
  invalidate_if([&](VertexId v) {
    return std::binary_search(sorted_vertices.begin(), sorted_vertices.end(),
                              v);
  });
}

std::size_t HotVertexCache::live_entries() const {
  std::size_t n = 0;
  for (const Entry& e : slots_) {
    if (e.used && !e.stale) ++n;
  }
  return n;
}

}  // namespace atlc::serve
