#include "atlc/tric/tric.hpp"

#include <algorithm>

#include "atlc/graph/reference.hpp"
#include "atlc/intersect/intersect.hpp"
#include "atlc/util/check.hpp"

namespace atlc::tric {

std::vector<VertexId> balanced_boundaries(const CSRGraph& g,
                                          std::uint32_t ranks) {
  const VertexId n = g.num_vertices();
  const EdgeIndex m = g.num_edges();
  std::vector<VertexId> bounds(ranks + 1, n);
  bounds[0] = 0;
  const auto offsets = g.offsets();
  VertexId v = 0;
  for (std::uint32_t r = 1; r < ranks; ++r) {
    const EdgeIndex target = m * r / ranks;
    while (v < n && offsets[v] < target) ++v;
    bounds[r] = v;
  }
  return bounds;
}

namespace {

/// Vertex ownership under explicit block boundaries.
struct BoundaryPartition {
  std::vector<VertexId> bounds;  // size p+1

  [[nodiscard]] std::uint32_t owner(VertexId v) const {
    const auto it = std::upper_bound(bounds.begin() + 1, bounds.end(), v);
    return static_cast<std::uint32_t>(it - bounds.begin() - 1);
  }
  [[nodiscard]] VertexId begin(std::uint32_t r) const { return bounds[r]; }
  [[nodiscard]] VertexId end(std::uint32_t r) const { return bounds[r + 1]; }
};

struct RankState {
  std::uint64_t triangles = 0;
  std::vector<std::uint64_t> per_vertex;  // local vertices
  std::uint64_t rounds = 0;
  std::uint64_t query_entries = 0;
};

}  // namespace

TricResult run_tric(const CSRGraph& g, std::uint32_t ranks,
                    const TricConfig& config, const rma::NetworkModel& net) {
  ATLC_CHECK(g.directedness() == graph::Directedness::Undirected,
             "TriC counts triangles on undirected graphs");
  const VertexId n = g.num_vertices();

  BoundaryPartition part;
  if (config.balanced_partition) {
    part.bounds = balanced_boundaries(g, ranks);
  } else {
    part.bounds.resize(ranks + 1);
    for (std::uint32_t r = 0; r <= ranks; ++r)
      part.bounds[r] = static_cast<VertexId>(
          static_cast<std::uint64_t>(n) * r / ranks);
  }

  TricResult out;
  out.per_vertex.assign(n, 0);
  out.lcc.assign(n, 0.0);
  std::vector<RankState> states(ranks);

  rma::Runtime::Options opts;
  opts.ranks = ranks;
  opts.net = net;
  out.run = rma::Runtime::run(opts, [&](rma::RankCtx& ctx) {
    const std::uint32_t me = ctx.rank();
    const std::uint32_t p = ctx.num_ranks();
    const VertexId lo = part.begin(me), hi = part.end(me);

    RankState st;
    st.per_vertex.assign(hi - lo, 0);
    auto credit_local = [&](VertexId v) { ++st.per_vertex[v - lo]; };

    std::vector<std::vector<std::uint32_t>> queries(p);
    std::vector<std::vector<std::uint32_t>> credits(p);
    auto credit = [&](VertexId v) {
      const std::uint32_t o = part.owner(v);
      if (o == me)
        credit_local(v);
      else
        credits[o].push_back(v);
    };

    // Resumable enumeration cursor over (apex vertex, neighbor index).
    VertexId i = lo;
    std::size_t j_idx = 0;
    bool enumeration_done = (lo >= hi);
    VertexId batch_left = config.batch_vertices;

    while (true) {
      // --- Phase 1: enumerate apexes until the batch or a buffer fills.
      bool buffer_full = false;
      while (!enumeration_done && !buffer_full && batch_left > 0) {
        const auto adj_i = g.neighbors(i);
        while (j_idx < adj_i.size()) {
          const VertexId j = adj_i[j_idx];
          // Candidate closing edges need i < j < k.
          if (j > i) {
            const auto ks = adj_i.subspan(j_idx + 1);
            if (!ks.empty()) {
              if (part.owner(j) == me) {
                // Local verification: which k in ks close (j,k)?
                const auto adj_j = g.neighbors(j);
                for (VertexId k : ks) {
                  if (std::binary_search(adj_j.begin(), adj_j.end(), k)) {
                    ++st.triangles;
                    credit_local(i);
                    credit_local(j);
                    credit(k);
                  }
                }
                ctx.charge_compute(
                    config.cost.seconds_probes(ks.size(), adj_j.size()));
              } else {
                // Remote j: ship the query [i, j, |ks|, ks...].
                auto& q = queries[part.owner(j)];
                q.push_back(i);
                q.push_back(j);
                q.push_back(static_cast<std::uint32_t>(ks.size()));
                q.insert(q.end(), ks.begin(), ks.end());
                st.query_entries += 3 + ks.size();
                // Sender-side two-sided handling: packing per entry.
                ctx.charge_compute(config.two_sided_entry_ns * 1e-9 *
                                   static_cast<double>(3 + ks.size()));
                if (config.buffer_entries > 0 &&
                    q.size() >= config.buffer_entries)
                  buffer_full = true;  // TriC-Buffered: flush early
              }
            }
          }
          ++j_idx;
          if (buffer_full) break;
        }
        if (j_idx >= adj_i.size()) {
          j_idx = 0;
          ++i;
          --batch_left;
          if (i >= hi) enumeration_done = true;
        }
      }

      // --- Phase 2: blocking query exchange (the synchronisation TriC pays).
      bool sent_any = false;
      for (const auto& q : queries) sent_any |= !q.empty();
      auto in_queries = ctx.all_to_all(queries);
      for (auto& q : queries) q.clear();

      // --- Phase 3: verify received queries against local adjacency.
      for (const auto& payload : in_queries) {
        std::size_t pos = 0;
        while (pos < payload.size()) {
          const VertexId qi = payload[pos];
          const VertexId qj = payload[pos + 1];
          const std::uint32_t cnt = payload[pos + 2];
          pos += 3;
          const auto adj_j = g.neighbors(qj);
          for (std::uint32_t x = 0; x < cnt; ++x) {
            const VertexId k = payload[pos + x];
            if (std::binary_search(adj_j.begin(), adj_j.end(), k)) {
              ++st.triangles;
              credit_local(qj);
              credit(qi);
              credit(k);
            }
          }
          // Receiver-side: per-candidate lookup plus two-sided unpack and
          // response bookkeeping per entry.
          ctx.charge_compute(config.cost.seconds_probes(cnt, adj_j.size()) +
                             config.two_sided_entry_ns * 1e-9 *
                                 static_cast<double>(3 + cnt));
          pos += cnt;
        }
      }

      // --- Phase 4: blocking credit (response) exchange.
      for (const auto& c : credits) sent_any |= !c.empty();
      auto in_credits = ctx.all_to_all(credits);
      for (auto& c : credits) c.clear();
      for (const auto& payload : in_credits)
        for (VertexId v : payload) credit_local(v);

      ++st.rounds;
      batch_left = config.batch_vertices;

      // --- Termination: everyone idle and nothing in flight.
      const std::uint64_t active =
          ctx.allreduce_sum((enumeration_done && !sent_any) ? 0 : 1);
      if (active == 0) break;
    }

    st.triangles = ctx.allreduce_sum(st.triangles);
    states[me] = std::move(st);
  });

  out.global_triangles = states.empty() ? 0 : states[0].triangles;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const VertexId lo = part.begin(r);
    for (VertexId lv = 0; lv < states[r].per_vertex.size(); ++lv) {
      const VertexId v = lo + lv;
      out.per_vertex[v] = states[r].per_vertex[lv];
      // Distinct triangles -> undirected LCC (Eq. 2): 2*tri / d(d-1).
      out.lcc[v] = graph::lcc_score(2 * out.per_vertex[v], g.degree(v));
    }
    out.rounds = std::max(out.rounds, states[r].rounds);
    out.query_entries += states[r].query_entries;
  }
  return out;
}

}  // namespace atlc::tric
