#include "atlc/util/recorder.hpp"

#include "atlc/util/timer.hpp"

namespace atlc::util {

Summary Recorder::run_until_ci(const std::function<void()>& fn) {
  samples_.clear();
  for (std::size_t i = 0; i < opts_.warmup_reps; ++i) fn();
  while (samples_.size() < opts_.max_reps) {
    Timer t;
    fn();
    samples_.push_back(t.elapsed_s());
    if (samples_.size() >= opts_.min_reps && converged()) break;
  }
  return summarize(samples_);
}

bool Recorder::converged() const {
  if (samples_.size() < opts_.min_reps) return false;
  return summarize(samples_).ci_within_fraction_of_median(opts_.ci_fraction);
}

}  // namespace atlc::util
