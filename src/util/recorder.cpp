#include "atlc/util/recorder.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <ctime>

#include "atlc/util/table.hpp"
#include "atlc/util/timer.hpp"

namespace atlc::util {

std::uint64_t peak_rss_bytes() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    unsigned long long kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof(line), f)) {
      if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(f);
    if (found) return std::uint64_t{kb} * 1024;
  }
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0)
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  return 0;
}

Summary Recorder::run_until_ci(const std::function<void()>& fn) {
  samples_.clear();
  for (std::size_t i = 0; i < opts_.warmup_reps; ++i) fn();
  while (samples_.size() < opts_.max_reps) {
    Timer t;
    fn();
    samples_.push_back(t.elapsed_s());
    if (samples_.size() >= opts_.min_reps && converged()) break;
  }
  return summarize(samples_);
}

bool Recorder::converged() const {
  if (samples_.size() < opts_.min_reps) return false;
  return summarize(samples_).ci_within_fraction_of_median(opts_.ci_fraction);
}

// ---------------------------------------------------------------------------
// JSON serializers

Json to_json(const rma::CommStats& s) {
  Json j = Json::object();
  j["remote_gets"] = s.remote_gets;
  j["local_gets"] = s.local_gets;
  j["remote_bytes"] = s.remote_bytes;
  j["local_bytes"] = s.local_bytes;
  j["flushes"] = s.flushes;
  j["barriers"] = s.barriers;
  j["messages_sent"] = s.messages_sent;
  j["bytes_sent"] = s.bytes_sent;
  j["hub_local_hits"] = s.hub_local_hits;
  j["segment_gets"] = s.segment_gets;
  j["comm_seconds"] = s.comm_seconds;
  j["compute_seconds"] = s.compute_seconds;
  return j;
}

Json to_json(const clampi::CacheStats& s) {
  Json j = Json::object();
  j["hits"] = s.hits;
  j["misses"] = s.misses;
  j["compulsory_misses"] = s.compulsory_misses;
  j["capacity_misses"] = s.capacity_misses;
  j["conflict_misses"] = s.conflict_misses;
  j["flush_misses"] = s.flush_misses;
  j["evictions_space"] = s.evictions_space;
  j["evictions_conflict"] = s.evictions_conflict;
  j["stale_evictions"] = s.stale_evictions;
  j["insert_failures"] = s.insert_failures;
  j["admission_rejects"] = s.admission_rejects;
  j["flushes"] = s.flushes;
  j["hash_resizes"] = s.hash_resizes;
  j["bytes_hit"] = s.bytes_hit;
  j["bytes_missed"] = s.bytes_missed;
  j["hit_rate"] = s.hit_rate();
  j["miss_rate"] = s.miss_rate();
  return j;
}

Json to_json(const serve::HotCacheStats& s) {
  Json j = Json::object();
  j["probes"] = s.probes;
  j["hits"] = s.hits;
  j["misses"] = s.misses;
  j["stale_misses"] = s.stale_misses;
  j["short_misses"] = s.short_misses;
  j["inserts"] = s.inserts;
  j["updates"] = s.updates;
  j["evictions"] = s.evictions;
  j["decrements"] = s.decrements;
  j["rejects"] = s.rejects;
  j["invalidated"] = s.invalidated;
  j["hit_rate"] = s.hit_rate();
  return j;
}

Json to_json(const Summary& s) {
  Json j = Json::object();
  j["n"] = static_cast<std::uint64_t>(s.n);
  j["min"] = s.min;
  j["max"] = s.max;
  j["mean"] = s.mean;
  j["stddev"] = s.stddev;
  j["median"] = s.median;
  j["ci95_lo"] = s.ci95_lo;
  j["ci95_hi"] = s.ci95_hi;
  return j;
}

// ---------------------------------------------------------------------------
// BenchRecorder

namespace {

std::string utc_now() {
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string hostname() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

}  // namespace

BenchRecorder::BenchRecorder(std::string scenario, std::string paper_anchor,
                             std::string title) {
  root_ = Json::object();
  root_["schema_version"] = kSchemaVersion;
  root_["scenario"] = std::move(scenario);
  root_["paper_anchor"] = std::move(paper_anchor);
  root_["title"] = std::move(title);
  Json& meta = root_["meta"];
  meta["timestamp_utc"] = utc_now();
  meta["hostname"] = hostname();
#if defined(ATLC_GIT_SHA)
  meta["git_sha"] = ATLC_GIT_SHA;
#else
  meta["git_sha"] = "unknown";
#endif
#if defined(__VERSION__)
  meta["compiler"] = __VERSION__;
#endif
#if defined(NDEBUG)
  meta["assertions"] = false;
#else
  meta["assertions"] = true;
#endif
  root_["metrics"] = Json::object();
  root_["tables"] = Json::array();
  root_["notes"] = Json::array();
}

void BenchRecorder::declare_metric(const std::string& name,
                                   const MetricOptions& opts) {
  Json& metrics = root_["metrics"];
  if (metrics.find(name)) return;
  Json& m = metrics[name];
  m["unit"] = opts.unit;
  m["direction"] = opts.direction;
  m["gate"] = opts.gate;
  m["expect_deterministic"] = opts.expect_deterministic;
  m["trials"] = Json::array();
}

void BenchRecorder::add_trial(const std::string& metric, double value,
                              Json detail) {
  declare_metric(metric, MetricOptions{});
  Json trial = Json::object();
  trial["value"] = value;
  if (detail.is_object())
    for (const auto& [k, v] : detail.items()) trial[k] = v;
  root_["metrics"][metric]["trials"].push_back(std::move(trial));
  finalized_ = false;
}

void BenchRecorder::add_note(std::string note) {
  root_["notes"].push_back(std::move(note));
}

void BenchRecorder::add_table(const std::string& title, const Table& table) {
  Json t = Json::object();
  t["title"] = title;
  Json header = Json::array();
  for (const auto& h : table.header()) header.push_back(h);
  t["header"] = std::move(header);
  Json rows = Json::array();
  for (const auto& row : table.rows()) {
    Json r = Json::array();
    for (const auto& cell : row) r.push_back(cell);
    rows.push_back(std::move(r));
  }
  t["rows"] = std::move(rows);
  root_["tables"].push_back(std::move(t));
}

const Json& BenchRecorder::finalize() {
  if (finalized_) return root_;
  // Captured at finalize (not construction) so the figure covers the whole
  // scenario. Machine-dependent; lives in meta, which bench_compare never
  // gates.
  root_["meta"]["peak_rss_bytes"] = peak_rss_bytes();
  Json& metrics = root_["metrics"];
  for (auto& kv : metrics.items()) {
    Json& m = kv.second;
    const Json* trials = m.find("trials");
    if (!trials || trials->size() == 0) continue;
    std::vector<double> values;
    values.reserve(trials->size());
    for (std::size_t i = 0; i < trials->size(); ++i)
      values.push_back(trials->at(i).find("value")->as_number());
    m["summary"] = to_json(summarize(values));
    m["median"] = median(values);
    // Deterministic virtual-time metrics repeat bit-identically; record the
    // verdict so the harness itself exercises DESIGN.md's determinism claim.
    bool identical = true;
    for (double v : values) identical &= (v == values.front());
    m["deterministic"] = identical;
  }
  finalized_ = true;
  return root_;
}

bool BenchRecorder::write_file(const std::string& path) {
  finalize();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = root_.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace atlc::util
