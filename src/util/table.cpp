#include "atlc/util/table.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace atlc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Table::fmt_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

std::string Table::fmt_percent(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      os << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  auto emit_sep = [&] {
    for (std::size_t w : widths) os << "+" << std::string(w + 2, '-');
    os << "+\n";
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), to_string().c_str());
  std::fflush(stdout);
}

}  // namespace atlc::util
