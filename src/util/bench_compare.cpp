#include "atlc/util/bench_compare.hpp"

#include <algorithm>

namespace atlc::util {

namespace {

std::string str_field(const Json& doc, const char* key,
                      const std::string& fallback = "") {
  const Json* v = doc.find(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

double metric_median(const Json& metric) {
  if (const Json* m = metric.find("median"); m && m->is_number())
    return m->as_number();
  // Fall back to recomputing from trials for hand-written baselines.
  const Json* trials = metric.find("trials");
  if (!trials || trials->size() == 0) return 0.0;
  std::vector<double> values;
  for (std::size_t i = 0; i < trials->size(); ++i)
    if (const Json* v = trials->at(i).find("value"); v && v->is_number())
      values.push_back(v->as_number());
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

CompareReport compare_bench_runs(const Json& baseline, const Json& current,
                                 const CompareOptions& options) {
  CompareReport report;
  report.scenario = str_field(current, "scenario", "<unknown>");

  const std::string base_scenario = str_field(baseline, "scenario");
  if (base_scenario != report.scenario) {
    report.notes.push_back("scenario mismatch: baseline is for '" +
                           base_scenario + "', current is for '" +
                           report.scenario + "'");
    report.ok = false;
    return report;
  }

  const Json* base_metrics = baseline.find("metrics");
  const Json* cur_metrics = current.find("metrics");
  if (!base_metrics || !base_metrics->is_object() || !cur_metrics ||
      !cur_metrics->is_object()) {
    report.notes.push_back("missing metrics object in one of the documents");
    report.ok = false;
    return report;
  }

  for (const auto& [name, cur] : cur_metrics->items()) {
    const bool gated = cur.find("gate") && cur.find("gate")->as_bool();
    if (options.gated_only && !gated) continue;

    const Json* base = base_metrics->find(name);
    if (!base) {
      report.notes.push_back("metric '" + name +
                             "' missing from baseline (skipped)");
      continue;
    }

    MetricComparison c;
    c.name = name;
    c.unit = str_field(cur, "unit", "?");
    c.direction = str_field(cur, "direction", "lower");
    c.gated = gated;
    c.baseline = metric_median(*base);
    c.current = metric_median(cur);
    c.ratio = c.baseline != 0.0 ? c.current / c.baseline : 0.0;

    // Only a sub-floor *baseline* exempts a metric: a current value that
    // collapsed toward zero must still trip the gate on higher-is-better
    // metrics (a lower-is-better collapse is an improvement either way).
    if (c.baseline < options.min_value) {
      report.notes.push_back("metric '" + name +
                             "' baseline below the noise floor (not gated)");
    } else if (c.gated) {
      if (c.direction == "higher")
        c.regressed = c.current < c.baseline * (1.0 - options.tolerance);
      else
        c.regressed = c.current > c.baseline * (1.0 + options.tolerance);
    }
    report.ok &= !c.regressed;
    report.metrics.push_back(std::move(c));
  }

  for (const auto& kv : base_metrics->items()) {
    const Json* gate = kv.second.find("gate");
    const bool gated = gate && gate->as_bool();
    if ((gated || !options.gated_only) && !cur_metrics->find(kv.first))
      report.notes.push_back("metric '" + kv.first +
                             "' disappeared from the current run");
  }

  return report;
}

}  // namespace atlc::util
