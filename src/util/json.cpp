#include "atlc/util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace atlc::util {

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object)
    throw std::logic_error("Json: operator[] on a non-object value");
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(key, Json());
  return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array)
    throw std::logic_error("Json: push_back on a non-array value");
  elems_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return elems_.size();
  if (type_ == Type::Object) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const { return elems_.at(i); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null like most emitters
    out += "null";
    return;
  }
  // Integral values within the exact-double range print without a fraction
  // so counters stay grep-able; everything else round-trips via %.17g.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(indent > 0 ? indent * (depth + 1) : 0, ' ');
  const std::string close_pad(indent > 0 ? indent * depth : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, num_); break;
    case Type::String:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Type::Array: {
      if (elems_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        out += pad;
        elems_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < elems_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(members_[i].first);
        out += indent > 0 ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  bool expect(char c) {
    if (at_end() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool literal(std::string_view word, Json value, Json& out) {
    if (text.substr(pos, word.size()) != word)
      return fail("invalid literal");
    pos += word.size();
    out = std::move(value);
    return true;
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("truncated escape");
      c = text[pos++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (text.substr(pos, 2) != "\\u")
              return fail("unpaired high surrogate");
            pos += 2;
            std::uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-'))
      ++pos;
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty())
      return fail("invalid number");
    out = Json(v);
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > 200) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 't': return literal("true", Json(true), out);
      case 'f': return literal("false", Json(false), out);
      case 'n': return literal("null", Json(nullptr), out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        out = Json::array();
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos;
          return true;
        }
        while (true) {
          Json elem;
          if (!parse_value(elem, depth + 1)) return false;
          out.push_back(std::move(elem));
          skip_ws();
          if (at_end()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          return expect(']');
        }
      }
      case '{': {
        ++pos;
        out = Json::object();
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!expect(':')) return false;
          Json value;
          if (!parse_value(value, depth + 1)) return false;
          out[key] = std::move(value);
          skip_ws();
          if (at_end()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          return expect('}');
        }
      }
      default: return parse_number(out);
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out, 0)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error) *error = "trailing characters at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return out;
}

}  // namespace atlc::util
