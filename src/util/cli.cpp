#include "atlc/util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace atlc::util {

void Cli::add_flag(std::string name, std::string help, bool default_value) {
  entries_[std::move(name)] =
      Entry{Kind::Flag, std::move(help), default_value ? "1" : "0"};
}

void Cli::add_int(std::string name, std::string help,
                  std::int64_t default_value) {
  entries_[std::move(name)] =
      Entry{Kind::Int, std::move(help), std::to_string(default_value)};
}

void Cli::add_double(std::string name, std::string help, double default_value) {
  entries_[std::move(name)] =
      Entry{Kind::Double, std::move(help), std::to_string(default_value)};
}

void Cli::add_string(std::string name, std::string help,
                     std::string default_value) {
  entries_[std::move(name)] =
      Entry{Kind::String, std::move(help), std::move(default_value)};
}

bool Cli::set(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(),
                 name.c_str());
    return false;
  }
  it->second.value = value;
  return true;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                   argv[i]);
      print_usage();
      return false;
    }
    arg.remove_prefix(2);
    std::string name, value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      auto it = entries_.find(name);
      const bool is_flag = it != entries_.end() && it->second.kind == Kind::Flag;
      if (is_flag) {
        value = "1";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: flag --%s expects a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
    }
    if (!set(name, value)) {
      print_usage();
      return false;
    }
  }
  return true;
}

const Cli::Entry& Cli::find(std::string_view name, Kind kind) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::logic_error("Cli: flag not registered: " + std::string(name));
  if (it->second.kind != kind)
    throw std::logic_error("Cli: wrong type for flag: " + std::string(name));
  return it->second;
}

bool Cli::get_flag(std::string_view name) const {
  const auto& v = find(name, Kind::Flag).value;
  return v == "1" || v == "true" || v == "yes";
}

std::int64_t Cli::get_int(std::string_view name) const {
  return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double Cli::get_double(std::string_view name) const {
  return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

const std::string& Cli::get_string(std::string_view name) const {
  return find(name, Kind::String).value;
}

void Cli::print_usage() const {
  std::fprintf(stderr, "%s — %s\n\nflags:\n", program_.c_str(),
               description_.c_str());
  for (const auto& [name, e] : entries_) {
    const char* kind = e.kind == Kind::Flag     ? "flag"
                       : e.kind == Kind::Int    ? "int"
                       : e.kind == Kind::Double ? "float"
                                                : "string";
    std::fprintf(stderr, "  --%-24s %-6s (default: %s)\n      %s\n",
                 name.c_str(), kind, e.value.c_str(), e.help.c_str());
  }
}

}  // namespace atlc::util
