#include "atlc/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace atlc::util {

namespace {

/// Median of an already-sorted sample.
double sorted_median(std::span<const double> s) {
  const std::size_t n = s.size();
  if (n % 2 == 1) return s[n / 2];
  return 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

}  // namespace

bool Summary::ci_within_fraction_of_median(double fraction) const {
  if (median == 0.0) return ci95_hi - ci95_lo == 0.0;
  const double tol = std::abs(median) * fraction;
  return (median - ci95_lo) <= tol && (ci95_hi - median) <= tol;
}

double median(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("median: empty sample");
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  return sorted_median(s);
}

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p out of [0,100]");
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  if (s.size() == 1) return s[0];
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

std::pair<double, double> median_ci95(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("median_ci95: empty sample");
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  const auto n = static_cast<double>(s.size());
  if (s.size() < 6) return {s.front(), s.back()};
  // Binomial order-statistic bounds: ranks n/2 +/- 1.96*sqrt(n)/2.
  const double half_width = 1.96 * std::sqrt(n) / 2.0;
  auto lo_rank = static_cast<std::ptrdiff_t>(std::floor(n / 2.0 - half_width));
  auto hi_rank = static_cast<std::ptrdiff_t>(std::ceil(n / 2.0 + half_width));
  lo_rank = std::clamp<std::ptrdiff_t>(lo_rank, 0,
                                       static_cast<std::ptrdiff_t>(s.size()) - 1);
  hi_rank = std::clamp<std::ptrdiff_t>(hi_rank, 0,
                                       static_cast<std::ptrdiff_t>(s.size()) - 1);
  return {s[static_cast<std::size_t>(lo_rank)],
          s[static_cast<std::size_t>(hi_rank)]};
}

Summary summarize(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("summarize: empty sample");
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());

  Summary out;
  out.n = s.size();
  out.min = s.front();
  out.max = s.back();

  double sum = 0.0;
  for (double v : s) sum += v;
  out.mean = sum / static_cast<double>(s.size());

  if (s.size() > 1) {
    double sq = 0.0;
    for (double v : s) sq += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(sq / static_cast<double>(s.size() - 1));
  }

  out.median = sorted_median(s);
  std::tie(out.ci95_lo, out.ci95_hi) = median_ci95(s);
  return out;
}

Histogram histogram(std::span<const double> sample, std::size_t bins) {
  if (sample.empty() || bins == 0)
    throw std::invalid_argument("histogram: empty sample or zero bins");
  Histogram h;
  h.lo = *std::min_element(sample.begin(), sample.end());
  h.hi = *std::max_element(sample.begin(), sample.end());
  h.counts.assign(bins, 0);
  const double width = (h.hi - h.lo) / static_cast<double>(bins);
  for (double v : sample) {
    std::size_t b =
        width > 0.0 ? static_cast<std::size_t>((v - h.lo) / width) : 0;
    if (b >= bins) b = bins - 1;  // max value lands in the last bucket
    ++h.counts[b];
  }
  return h;
}

LogHistogram LogHistogram::make(double lo, double hi, std::size_t bins) {
  if (!(lo > 0.0) || !(hi > lo) || bins == 0)
    throw std::invalid_argument("LogHistogram: need 0 < lo < hi, bins > 0");
  LogHistogram h;
  h.lo = lo;
  h.hi = hi;
  h.base = std::pow(hi / lo, 1.0 / static_cast<double>(bins));
  h.counts.assign(bins, 0);
  return h;
}

void LogHistogram::add(double v) {
  if (!(v >= lo)) {  // also catches NaN
    ++underflow;
    return;
  }
  if (v >= hi) {
    ++overflow;
    return;
  }
  auto b = static_cast<std::size_t>(std::log(v / lo) / std::log(base));
  // log() rounding can push a value sitting on an edge one bucket over.
  if (b >= counts.size()) b = counts.size() - 1;
  ++counts[b];
}

double LogHistogram::edge(std::size_t i) const {
  return lo * std::pow(base, static_cast<double>(i));
}

std::size_t LogHistogram::total() const {
  std::size_t n = underflow + overflow;
  for (std::size_t c : counts) n += c;
  return n;
}

LogHistogram log_histogram(std::span<const double> sample, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("log_histogram: zero bins");
  double lo = 0.0;
  double hi = 0.0;
  for (double v : sample) {
    if (v <= 0.0) continue;
    if (lo == 0.0 || v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (lo == 0.0) {
    LogHistogram h = LogHistogram::make(1.0, 2.0, bins);
    for (double v : sample) h.add(v);  // all non-positive -> underflow
    return h;
  }
  // Widen a degenerate single-value range so the value lands in-range.
  if (hi == lo) hi = lo * 2.0;
  // Nudge hi so the true maximum falls in the last bucket, not overflow.
  LogHistogram h = LogHistogram::make(lo, std::nextafter(hi, hi * 2.0), bins);
  for (double v : sample) h.add(v);
  return h;
}

}  // namespace atlc::util
