#include "atlc/ingest/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "atlc/util/check.hpp"

namespace atlc::ingest {

namespace {

using snapshot_v2::Extent;
using snapshot_v2::kHeaderBytes;
using snapshot_v2::kKindCount;
using snapshot_v2::kMagic;
using snapshot_v2::kVersion;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("atlc: cannot open file: " + path);
  return f;
}

void write_bytes(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (bytes > 0 && std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("atlc: short write (disk full?): " + path);
}

void write_u32(std::FILE* f, std::uint32_t v, const std::string& path) {
  write_bytes(f, &v, sizeof(v), path);
}

void write_u64(std::FILE* f, std::uint64_t v, const std::string& path) {
  write_bytes(f, &v, sizeof(v), path);
}

void read_bytes(std::FILE* f, void* data, std::size_t bytes,
                const std::string& path) {
  if (bytes > 0 && std::fread(data, 1, bytes, f) != bytes)
    throw std::runtime_error("atlc: truncated snapshot (short read): " + path);
}

std::uint32_t read_u32(std::FILE* f, const std::string& path) {
  std::uint32_t v = 0;
  read_bytes(f, &v, sizeof(v), path);
  return v;
}

std::uint64_t read_u64(std::FILE* f, const std::string& path) {
  std::uint64_t v = 0;
  read_bytes(f, &v, sizeof(v), path);
  return v;
}

void seek_or_throw(std::FILE* f, std::uint64_t offset,
                   const std::string& path) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0)
    throw std::runtime_error("atlc: cannot seek: " + path);
}

std::uint64_t file_size_or_throw(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0)
    throw std::runtime_error("atlc: cannot seek: " + path);
  const long size = std::ftell(f);
  if (size < 0) throw std::runtime_error("atlc: cannot stat: " + path);
  std::rewind(f);
  return static_cast<std::uint64_t>(size);
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter(const std::string& path, VertexId num_vertices,
                               Directedness directedness,
                               std::vector<Partition> partitions)
    : path_(path), n_(num_vertices), dir_(directedness),
      parts_(std::move(partitions)) {
  ATLC_CHECK(parts_.size() == kKindCount,
             "SnapshotWriter: one partition per PartitionKind");
  bool seen[kKindCount] = {};
  for (const Partition& p : parts_) {
    const auto k = static_cast<std::size_t>(p.kind());
    ATLC_CHECK(k < kKindCount && !seen[k],
               "SnapshotWriter: partitions must cover distinct kinds");
    seen[k] = true;
    ATLC_CHECK(p.num_vertices() == n_,
               "SnapshotWriter: partition vertex count mismatch");
    ATLC_CHECK(p.num_ranks() == parts_.front().num_ranks(),
               "SnapshotWriter: partitions must agree on rank count");
  }
  extents_.assign(parts_.size(), {});
  for (std::size_t k = 0; k < parts_.size(); ++k)
    extents_[k].assign(parts_[k].num_ranks(), {});
  write_buf_.reserve(std::size_t{1} << 15);

  File f = open_or_throw(path_, "wb");
  f_ = f.release();
  // Header and degrees are back-patched by finalize() (the edge count and
  // section offsets depend on the stream length); seek straight to the
  // fixed edges_offset and stream the payload.
  seek_or_throw(f_, kHeaderBytes + std::uint64_t{n_} * sizeof(VertexId),
                path_);
}

SnapshotWriter::~SnapshotWriter() {
  if (f_) std::fclose(f_);
  // A writer destroyed before finalize() leaves no plausible-looking file.
  if (!finalized_) std::remove(path_.c_str());
}

void SnapshotWriter::flush() {
  write_bytes(f_, write_buf_.data(), write_buf_.size() * sizeof(Edge), path_);
  write_buf_.clear();
}

void SnapshotWriter::append(Edge e) {
  ATLC_CHECK(!finalized_, "SnapshotWriter: append() after finalize()");
  ATLC_CHECK(e.u < n_ && e.v < n_, "SnapshotWriter: endpoint out of range");
  ATLC_CHECK(e.u != e.v, "SnapshotWriter: self loop in cleaned stream");
  ATLC_CHECK(m_ == 0 || last_ < e,
             "SnapshotWriter: edges must arrive strictly increasing");
  last_ = e;

  for (std::size_t k = 0; k < parts_.size(); ++k) {
    const std::uint32_t rank = parts_[k].edge_owner(e.u, e.v);
    auto& list = extents_[k][rank];
    if (!list.empty() && list.back().begin + list.back().count == m_) {
      ++list.back().count;
    } else {
      list.push_back({m_, 1});
    }
  }
  edge_checksum_ = snapshot_v2::fnv1a64(&e, sizeof(e), edge_checksum_);
  write_buf_.push_back(e);
  if (write_buf_.size() == write_buf_.capacity()) flush();
  ++m_;
}

std::uint64_t SnapshotWriter::extents_total(std::size_t k) const {
  ATLC_CHECK(k < extents_.size(), "kind slot out of range");
  std::uint64_t total = 0;
  for (const auto& per_rank : extents_[k]) total += per_rank.size();
  return total;
}

void SnapshotWriter::finalize(std::span<const VertexId> degrees) {
  ATLC_CHECK(!finalized_, "SnapshotWriter: finalize() called twice");
  ATLC_CHECK(degrees.size() == n_,
             "SnapshotWriter: degree array must have one entry per vertex");
  flush();

  const std::uint64_t degrees_offset = kHeaderBytes;
  const std::uint64_t edges_offset =
      degrees_offset + std::uint64_t{n_} * sizeof(VertexId);
  const std::uint64_t index_offset = edges_offset + m_ * sizeof(Edge);

  // Slice index: one section per kind, in the partition order given.
  seek_or_throw(f_, index_offset, path_);
  for (std::size_t k = 0; k < parts_.size(); ++k) {
    const std::uint32_t ranks = parts_[k].num_ranks();
    write_u32(f_, static_cast<std::uint32_t>(parts_[k].kind()), path_);
    write_u32(f_, 0, path_);
    write_u64(f_, extents_total(k), path_);
    std::uint64_t prefix = 0;
    for (std::uint32_t r = 0; r <= ranks; ++r) {
      write_u64(f_, prefix, path_);
      if (r < ranks) prefix += extents_[k][r].size();
    }
    for (std::uint32_t r = 0; r < ranks; ++r)
      write_bytes(f_, extents_[k][r].data(),
                  extents_[k][r].size() * sizeof(Extent), path_);
  }
  const long end = std::ftell(f_);
  if (end < 0) throw std::runtime_error("atlc: cannot stat: " + path_);
  const auto file_bytes = static_cast<std::uint64_t>(end);

  seek_or_throw(f_, degrees_offset, path_);
  write_bytes(f_, degrees.data(), degrees.size() * sizeof(VertexId), path_);
  degree_checksum_ = snapshot_v2::fnv1a64(
      degrees.data(), degrees.size() * sizeof(VertexId));

  seek_or_throw(f_, 0, path_);
  write_u32(f_, kMagic, path_);
  write_u32(f_, kVersion, path_);
  write_u32(f_, dir_ == Directedness::Directed ? 1u : 0u, path_);
  write_u32(f_, n_, path_);
  write_u64(f_, m_, path_);
  write_u32(f_, parts_.front().num_ranks(), path_);
  write_u32(f_, kKindCount, path_);
  write_u64(f_, degrees_offset, path_);
  write_u64(f_, edges_offset, path_);
  write_u64(f_, index_offset, path_);
  write_u64(f_, file_bytes, path_);
  write_u64(f_, edge_checksum_, path_);
  write_u64(f_, degree_checksum_, path_);

  if (std::fflush(f_) != 0)
    throw std::runtime_error("atlc: short write (disk full?): " + path_);
  std::fclose(f_);
  f_ = nullptr;
  finalized_ = true;
}

// ---------------------------------------------------------------------------
// SnapshotReader

bool SnapshotReader::sniff(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::uint32_t magic = 0, version = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
      std::fread(&version, sizeof(version), 1, f.get()) != 1)
    return false;
  return magic == kMagic && version == kVersion;
}

SnapshotReader::SnapshotReader(const std::string& path) : path_(path) {
  File f = open_or_throw(path_, "rb");
  const std::uint64_t actual_bytes = file_size_or_throw(f.get(), path_);
  if (actual_bytes < kHeaderBytes)
    throw std::runtime_error(
        "atlc: truncated snapshot header (file smaller than the v2 "
        "header): " + path_);

  const std::uint32_t magic = read_u32(f.get(), path_);
  const std::uint32_t version = read_u32(f.get(), path_);
  if (magic != kMagic)
    throw std::runtime_error("atlc: bad magic (not an ATLC file): " + path_);
  if (version != kVersion) {
    if (version == 1)
      throw std::runtime_error(
          "atlc: v1 binary edge list, not a v2 snapshot — load it with "
          "graph::load_binary_edges (or re-ingest with atlc_ingest): " +
          path_);
    throw std::runtime_error("atlc: unsupported snapshot version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + "): " + path_);
  }
  const std::uint32_t dir_flag = read_u32(f.get(), path_);
  if (dir_flag > 1)
    throw std::runtime_error("atlc: corrupt directedness flag: " + path_);
  dir_ = dir_flag ? Directedness::Directed : Directedness::Undirected;
  n_ = read_u32(f.get(), path_);
  m_ = read_u64(f.get(), path_);
  ranks_ = read_u32(f.get(), path_);
  const std::uint32_t kind_count = read_u32(f.get(), path_);
  const std::uint64_t degrees_offset = read_u64(f.get(), path_);
  edges_offset_ = read_u64(f.get(), path_);
  const std::uint64_t index_offset = read_u64(f.get(), path_);
  const std::uint64_t file_bytes = read_u64(f.get(), path_);
  edge_checksum_ = read_u64(f.get(), path_);
  const std::uint64_t degree_checksum = read_u64(f.get(), path_);

  if (ranks_ == 0)
    throw std::runtime_error("atlc: corrupt rank count (0): " + path_);
  if (kind_count != kKindCount)
    throw std::runtime_error(
        "atlc: unsupported slice-index kind count " +
        std::to_string(kind_count) + " (expected " +
        std::to_string(kKindCount) + "): " + path_);
  if (degrees_offset != kHeaderBytes ||
      edges_offset_ != degrees_offset + std::uint64_t{n_} * sizeof(VertexId) ||
      index_offset != edges_offset_ + m_ * sizeof(Edge))
    throw std::runtime_error(
        "atlc: corrupt section offsets (header does not describe a "
        "header/degrees/edges/index layout): " + path_);
  if (file_bytes != actual_bytes)
    throw std::runtime_error(
        "atlc: declared file size " + std::to_string(file_bytes) +
        " does not match actual size " + std::to_string(actual_bytes) +
        " (truncated or corrupt): " + path_);
  if (index_offset > actual_bytes)
    throw std::runtime_error("atlc: truncated snapshot (slice index starts "
                             "past end of file): " + path_);

  degrees_.resize(n_);
  seek_or_throw(f.get(), degrees_offset, path_);
  read_bytes(f.get(), degrees_.data(), degrees_.size() * sizeof(VertexId),
             path_);
  if (snapshot_v2::fnv1a64(degrees_.data(),
                           degrees_.size() * sizeof(VertexId)) !=
      degree_checksum)
    throw std::runtime_error(
        "atlc: degree array checksum mismatch (corrupt payload): " + path_);

  seek_or_throw(f.get(), index_offset, path_);
  for (std::uint32_t section = 0; section < kind_count; ++section) {
    const std::uint32_t tag = read_u32(f.get(), path_);
    (void)read_u32(f.get(), path_);  // reserved
    if (tag >= kKindCount)
      throw std::runtime_error("atlc: corrupt slice index (bad partition "
                               "kind tag): " + path_);
    KindIndex& ki = index_[tag];
    if (ki.present)
      throw std::runtime_error("atlc: corrupt slice index (duplicate "
                               "partition kind section): " + path_);
    ki.present = true;
    const std::uint64_t total = read_u64(f.get(), path_);
    ki.rank_prefix.resize(std::size_t{ranks_} + 1);
    for (auto& p : ki.rank_prefix) p = read_u64(f.get(), path_);
    if (ki.rank_prefix.front() != 0 || ki.rank_prefix.back() != total ||
        !std::is_sorted(ki.rank_prefix.begin(), ki.rank_prefix.end()))
      throw std::runtime_error("atlc: corrupt slice index (rank prefix not "
                               "monotone): " + path_);
    ki.extents.resize(total);
    read_bytes(f.get(), ki.extents.data(), total * sizeof(Extent), path_);
    std::uint64_t covered = 0;
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      std::uint64_t prev_end = 0;
      for (std::uint64_t i = ki.rank_prefix[r]; i < ki.rank_prefix[r + 1];
           ++i) {
        const Extent& e = ki.extents[i];
        if (e.count == 0 || e.begin > m_ || e.count > m_ - e.begin ||
            (i > ki.rank_prefix[r] && e.begin < prev_end))
          throw std::runtime_error(
              "atlc: corrupt slice index (extent out of range or "
              "overlapping): " + path_);
        prev_end = e.begin + e.count;
        covered += e.count;
      }
    }
    if (covered != m_)
      throw std::runtime_error(
          "atlc: corrupt slice index (extents cover " +
          std::to_string(covered) + " of " + std::to_string(m_) +
          " edges): " + path_);
  }
  const long pos = std::ftell(f.get());
  if (pos < 0 || static_cast<std::uint64_t>(pos) != actual_bytes)
    throw std::runtime_error(
        "atlc: trailing bytes after the slice index (corrupt): " + path_);
}

std::uint64_t SnapshotReader::extents_total(PartitionKind kind) const {
  const auto k = static_cast<std::size_t>(kind);
  ATLC_CHECK(k < kKindCount && index_[k].present,
             "partition kind not indexed in snapshot");
  return index_[k].extents.size();
}

EdgeList SnapshotReader::read_all() const {
  File f = open_or_throw(path_, "rb");
  seek_or_throw(f.get(), edges_offset_, path_);
  std::vector<Edge> edges(m_);
  read_bytes(f.get(), edges.data(), edges.size() * sizeof(Edge), path_);
  std::uint64_t checksum = snapshot_v2::kFnvOffsetBasis;
  if (!edges.empty())
    checksum = snapshot_v2::fnv1a64(edges.data(), edges.size() * sizeof(Edge));
  if (checksum != edge_checksum_)
    throw std::runtime_error(
        "atlc: edge payload checksum mismatch (corrupt payload): " + path_);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u >= n_ || e.v >= n_)
      throw std::runtime_error(
          "atlc: edge endpoint out of range (vertex >= " +
          std::to_string(n_) + "; corrupt payload): " + path_);
    if (i > 0 && !(edges[i - 1] < e))
      throw std::runtime_error(
          "atlc: edge payload not sorted-unique (corrupt payload): " + path_);
  }
  return EdgeList(n_, std::move(edges), dir_);
}

void SnapshotReader::read_slice(const Partition& partition, std::uint32_t rank,
                                std::vector<EdgeIndex>& offsets,
                                std::vector<VertexId>& adjacencies) const {
  ATLC_CHECK(partition.num_vertices() == n_,
             "snapshot/partition vertex count mismatch");
  ATLC_CHECK(partition.num_ranks() == ranks_,
             "snapshot/partition rank count mismatch");
  ATLC_CHECK(rank < ranks_, "rank out of range");
  const auto k = static_cast<std::size_t>(partition.kind());
  ATLC_CHECK(k < kKindCount && index_[k].present,
             "partition kind not indexed in snapshot");
  const KindIndex& ki = index_[k];

  // Grid2D slices must stay inside the rank's column block; checking while
  // streaming keeps a corrupt index from silently producing a wrong slice.
  const auto [col_lo, col_hi] =
      partition.col_block_range(partition.col_blocks() > 1
                                    ? partition.grid_col(rank)
                                    : 0);

  const VertexId n_local = partition.part_size(rank);
  std::uint64_t total = 0;
  for (std::uint64_t i = ki.rank_prefix[rank]; i < ki.rank_prefix[rank + 1];
       ++i)
    total += ki.extents[i].count;

  offsets.clear();
  offsets.reserve(static_cast<std::size_t>(n_local) + 1);
  offsets.push_back(0);
  adjacencies.clear();
  adjacencies.reserve(total);

  File f = open_or_throw(path_, "rb");
  VertexId cur = 0;  // local row currently receiving edges
  std::vector<Edge> buf;
  for (std::uint64_t i = ki.rank_prefix[rank]; i < ki.rank_prefix[rank + 1];
       ++i) {
    const Extent& ext = ki.extents[i];
    seek_or_throw(f.get(), edges_offset_ + ext.begin * sizeof(Edge), path_);
    std::uint64_t remaining = ext.count;
    while (remaining > 0) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, 1u << 15));
      buf.resize(want);
      read_bytes(f.get(), buf.data(), want * sizeof(Edge), path_);
      remaining -= want;
      for (const Edge& e : buf) {
        while (cur < n_local && partition.global_id(rank, cur) < e.u) {
          offsets.push_back(adjacencies.size());
          ++cur;
        }
        if (cur >= n_local || partition.global_id(rank, cur) != e.u ||
            e.v < col_lo || e.v >= col_hi)
          throw std::runtime_error(
              "atlc: corrupt slice index (edge not owned by the rank it is "
              "indexed under): " + path_);
        adjacencies.push_back(e.v);
      }
    }
  }
  while (cur < n_local) {
    offsets.push_back(adjacencies.size());
    ++cur;
  }
}

}  // namespace atlc::ingest
