#include "atlc/ingest/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "atlc/graph/partition.hpp"
#include "atlc/graph/relabel.hpp"
#include "atlc/ingest/chunk_reader.hpp"
#include "atlc/ingest/external_sorter.hpp"
#include "atlc/obs/trace.hpp"
#include "atlc/util/check.hpp"
#include "atlc/util/recorder.hpp"
#include "atlc/util/timer.hpp"

#if !defined(ATLC_NO_OPENMP) && defined(_OPENMP)
#include <omp.h>
#define ATLC_INGEST_OMP 1
#endif

namespace atlc::ingest {

namespace {

using graph::Directedness;
using graph::Partition;
using graph::PartitionKind;

constexpr VertexId kRemoved = static_cast<VertexId>(-1);

int resolve_threads(int requested) {
#ifdef ATLC_INGEST_OMP
  return requested > 0 ? requested : omp_get_max_threads();
#else
  return requested > 0 ? requested : 1;
#endif
}

std::string tmp_prefix(const std::string& output, const std::string& tmp_dir) {
  if (tmp_dir.empty()) return output + ".tmp";
  const std::filesystem::path out(output);
  return (std::filesystem::path(tmp_dir) / out.filename()).string() + ".tmp";
}

/// First 8 bytes of a file, to dispatch text vs v1 binary vs v2 snapshot.
struct Sniff {
  bool has_magic = false;
  std::uint32_t version = 0;
};

Sniff sniff_input(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("atlc: cannot open file: " + path);
  std::uint32_t magic = 0, version = 0;
  const bool got = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
                   std::fread(&version, sizeof(version), 1, f) == 1;
  std::fclose(f);
  Sniff s;
  s.has_magic = got && magic == snapshot_v2::kMagic;
  s.version = version;
  return s;
}

/// Stage-1 text ingest: chunked read, parallel parse, sequential intern in
/// chunk order (first-appearance compaction must be order-deterministic),
/// edges pushed into the raw sorter. Undirected input is symmetrized here —
/// both orientations enter the sort, exactly like EdgeList::symmetrize()
/// after load_text_edges().
void ingest_text(const std::string& input, const IngestOptions& opt,
                 int threads, ExternalEdgeSorter& sorter, IngestReport& rep) {
  ChunkReader reader(input, opt.chunk_bytes);
  std::unordered_map<std::uint64_t, VertexId> remap;
  // File-size heuristic: a SNAP line is rarely under ~4 bytes/id and most
  // ids repeat; sizing up front avoids rehash storms on large inputs.
  remap.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(reader.file_bytes() / 24 + 16, 1u << 26)));

  const bool symmetrize = opt.directedness == Directedness::Undirected;
  // VertexId is 32-bit; the compacted id space can never exceed it, whatever
  // the caller passes (max_vertices below that is the testability seam).
  const std::uint64_t id_cap =
      std::min<std::uint64_t>(opt.max_vertices, 0xffffffffull);
  const auto intern = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    if (inserted && remap.size() > id_cap) {
      throw std::runtime_error("atlc: vertex id space overflow: more than " +
                               std::to_string(id_cap) +
                               " distinct vertex ids in " + input);
    }
    return it->second;
  };

  std::vector<TextChunk> chunks(static_cast<std::size_t>(threads));
  std::vector<std::vector<RawPair>> pairs(chunks.size());
  std::vector<std::size_t> chunk_lines(chunks.size());
  std::vector<Edge> batch;
  for (;;) {
    std::size_t live = 0;
    while (live < chunks.size() && reader.next(chunks[live])) ++live;
    if (live == 0) break;
#ifdef ATLC_INGEST_OMP
#pragma omp parallel for num_threads(threads) schedule(dynamic, 1)
#endif
    for (std::size_t c = 0; c < live; ++c) {
      pairs[c].clear();
      chunk_lines[c] = parse_text_chunk(chunks[c].data, pairs[c]);
    }
    batch.clear();
    for (std::size_t c = 0; c < live; ++c) {
      rep.lines += chunk_lines[c];
      rep.pairs_parsed += pairs[c].size();
      for (const RawPair& p : pairs[c]) {
        // Braced init evaluates left to right: intern(a) before intern(b),
        // matching the legacy loader's first-appearance order.
        const Edge e{intern(p.a), intern(p.b)};
        batch.push_back(e);
        if (symmetrize && e.u != e.v) batch.push_back({e.v, e.u});
      }
    }
    sorter.add(batch);
  }
  rep.input_kind = "text";
  rep.bytes_read = reader.bytes_read();
  rep.raw_edges = sorter.total_edges();
  rep.vertices_in = static_cast<VertexId>(remap.size());
}

/// Stage-1 v1-binary ingest: stream the already-compacted edge payload into
/// the sorter in blocks. No interning, no symmetrization (matching
/// load_binary_edges), but the same container validation.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};

Directedness ingest_binary_v1(const std::string& input,
                              ExternalEdgeSorter& sorter, IngestReport& rep) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(input.c_str(), "rb"));
  if (!f) throw std::runtime_error("atlc: cannot open file: " + input);

  std::uint32_t header[4] = {};
  std::uint64_t m = 0;
  if (std::fread(header, sizeof(header), 1, f.get()) != 1 ||
      std::fread(&m, sizeof(m), 1, f.get()) != 1)
    throw std::runtime_error("atlc: truncated binary header: " + input);
  if (header[2] > 1)
    throw std::runtime_error("atlc: corrupt directedness flag: " + input);
  const auto n = static_cast<VertexId>(header[3]);

  if (std::fseek(f.get(), 0, SEEK_END) != 0)
    throw std::runtime_error("atlc: cannot seek: " + input);
  const long size = std::ftell(f.get());
  const std::uint64_t expect =
      sizeof(header) + sizeof(m) + m * sizeof(Edge);
  if (size < 0 || static_cast<std::uint64_t>(size) != expect)
    throw std::runtime_error(
        "atlc: binary edge list size mismatch (declared " +
        std::to_string(m) + " edges; truncated or corrupt): " + input);
  if (std::fseek(f.get(), sizeof(header) + sizeof(m), SEEK_SET) != 0)
    throw std::runtime_error("atlc: cannot seek: " + input);

  std::vector<Edge> buf;
  std::uint64_t remaining = m;
  while (remaining > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, 1u << 16));
    buf.resize(want);
    if (std::fread(buf.data(), sizeof(Edge), want, f.get()) != want)
      throw std::runtime_error("atlc: short read: " + input);
    for (const Edge& e : buf)
      if (e.u >= n || e.v >= n)
        throw std::runtime_error(
            "atlc: edge endpoint out of range (vertex >= " +
            std::to_string(n) + "): " + input);
    sorter.add(buf);
    remaining -= want;
  }
  rep.input_kind = "binary-v1";
  rep.bytes_read = expect;
  rep.pairs_parsed = m;
  rep.raw_edges = m;
  rep.vertices_in = n;
  return header[2] ? Directedness::Directed : Directedness::Undirected;
}

/// Replay `sorter`'s merged stream with the dedup/self-loop filter applied
/// (the fused sort_and_dedup + remove_self_loops), visiting surviving edges
/// in strictly increasing order.
template <typename Visit>
void for_each_clean(const ExternalEdgeSorter& sorter, Visit&& visit) {
  Edge prev{0, 0};
  bool first = true;
  sorter.for_each_sorted([&](const Edge& e) {
    if (e.u == e.v) return;
    if (!first && e == prev) return;
    prev = e;
    first = false;
    visit(e);
  });
}

}  // namespace

std::uint64_t peak_rss_bytes() { return util::peak_rss_bytes(); }

IngestReport run_ingest(const std::string& input, const std::string& output,
                        const IngestOptions& opt) {
  util::Timer total;
  IngestReport rep;
  rep.ranks = opt.ranks;
  ATLC_CHECK(opt.ranks > 0, "ingest needs >= 1 rank");

  const int threads = resolve_threads(opt.num_threads);
  const std::string prefix = tmp_prefix(output, opt.tmp_dir);

  // Stage spans recorded as rank 0 against a WALL clock — ingest has no
  // virtual time, so these traces are machine-dependent by construction
  // (IngestOptions::trace). Unbound when tracing is off: zero overhead.
  obs::Tracer tracer;
  if (opt.trace != nullptr) {
    opt.trace->prepare(1);
    tracer.bind(
        opt.trace, 0,
        [](const void* t) {
          return static_cast<const util::Timer*>(t)->elapsed_s();
        },
        &total);
  }

  // ---- Stage 1: stream the input into the raw external sorter. ----------
  tracer.begin("read_parse");
  util::Timer parse_timer;
  ExternalEdgeSorter raw(prefix + ".raw", opt.mem_budget_bytes, threads);
  Directedness dir = opt.directedness;
  const Sniff sniff = sniff_input(input);
  if (sniff.has_magic && sniff.version == snapshot_v2::kVersion)
    throw std::runtime_error(
        "atlc: input is already a v2 snapshot (nothing to ingest): " + input);
  if (sniff.has_magic && sniff.version != 1)
    throw std::runtime_error("atlc: unsupported binary version " +
                             std::to_string(sniff.version) + ": " + input);
  if (sniff.has_magic)
    dir = ingest_binary_v1(input, raw, rep);
  else
    ingest_text(input, opt, threads, raw, rep);
  raw.finish();
  const double stage1_wall = parse_timer.elapsed_s();
  rep.parse_seconds = stage1_wall - raw.sort_seconds();
  tracer.end("read_parse");

  const VertexId n0 = rep.vertices_in;

  // ---- Pass A: merged replay -> dedup stats + degree counts. ------------
  // deg_filter replicates remove_low_degree_once's count (u always, v only
  // when directed); out_deg is the final CSR out-degree, reusable directly
  // when the remap and relabel below turn out to be identities.
  tracer.begin("merge_degree");
  util::Timer merge_timer;
  std::vector<VertexId> deg_filter(n0, 0);
  std::vector<VertexId> out_deg(n0, 0);
  std::uint64_t m_clean = 0;
  {
    Edge prev{0, 0};
    bool first = true;
    raw.for_each_sorted([&](const Edge& e) {
      if (e.u == e.v) {
        ++rep.self_loops_removed;
        return;
      }
      if (!first && e == prev) {
        ++rep.duplicates_removed;
        return;
      }
      prev = e;
      first = false;
      ++m_clean;
      ++deg_filter[e.u];
      ++out_deg[e.u];
      if (dir == Directedness::Directed) ++deg_filter[e.v];
    });
  }

  // Low-degree removal (one pass, matching CleanOptions defaults):
  // survivors renumbered in id order — remove_low_degree_once's `next++`.
  std::vector<VertexId> remap(n0, kRemoved);
  std::vector<VertexId> orig_of(n0);
  VertexId n1 = 0;
  for (VertexId v = 0; v < n0; ++v) {
    const bool keep = !opt.remove_degree_lt2 || deg_filter[v] >= 2;
    if (keep) {
      orig_of[n1] = v;
      remap[v] = n1++;
    }
  }
  orig_of.resize(n1);
  rep.vertices_removed = n0 - n1;
  rep.num_vertices = n1;
  tracer.end("merge_degree");
  tracer.begin("map_relabel");

  // Relabel permutation over the compacted survivor ids.
  std::vector<VertexId> perm;
  switch (opt.relabel) {
    case RelabelMode::None:
      break;
    case RelabelMode::Random:
      perm = graph::random_permutation(n1, opt.relabel_seed);
      break;
    case RelabelMode::DegreeDescending: {
      // Keyed on pre-filter degrees (the post-filter ones depend on which
      // edges survive, which depends on this very relabel for nothing —
      // ids never change degrees — but pre-filter is the stable choice and
      // is what a DODG orientation wants). Compact ids preserve original
      // id order, so comparing them breaks ties by first appearance.
      std::vector<VertexId> order(n1);
      std::iota(order.begin(), order.end(), VertexId{0});
      std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        const VertexId da = deg_filter[orig_of[a]];
        const VertexId db = deg_filter[orig_of[b]];
        return da != db ? da > db : a < b;
      });
      perm.resize(n1);
      for (VertexId i = 0; i < n1; ++i) perm[order[i]] = i;
      break;
    }
  }

  // ---- Pass B: build the final sorted stream. ---------------------------
  // Identity fast path: nothing removed and no relabel means the clean
  // stream from pass A *is* the final stream — replay it instead of paying
  // a second sort. Otherwise map every surviving edge and re-sort (the
  // relabel scrambles lexicographic order).
  const bool identity = rep.vertices_removed == 0 && perm.empty();
  std::unique_ptr<ExternalEdgeSorter> mapped;
  std::vector<VertexId> deg_final;
  if (identity) {
    deg_final = std::move(out_deg);
  } else {
    mapped = std::make_unique<ExternalEdgeSorter>(
        prefix + ".mapped", opt.mem_budget_bytes, threads);
    deg_final.assign(n1, 0);
    std::vector<Edge> batch;
    batch.reserve(std::size_t{1} << 15);
    for_each_clean(raw, [&](const Edge& e) {
      const VertexId cu = remap[e.u];
      const VertexId cv = remap[e.v];
      if (cu == kRemoved || cv == kRemoved) return;
      const Edge fe = perm.empty() ? Edge{cu, cv} : Edge{perm[cu], perm[cv]};
      ++deg_final[fe.u];
      batch.push_back(fe);
      if (batch.size() == batch.capacity()) {
        mapped->add(batch);
        batch.clear();
      }
    });
    mapped->add(batch);
    // Drop stage-A storage before stage B's spill replays peak; capture the
    // stats first (clear() resets the run list).
    rep.spill_runs = raw.spill_runs();
    rep.sort_seconds = raw.sort_seconds();
    raw.clear();
    mapped->finish();
  }
  const ExternalEdgeSorter& final_stream = identity ? raw : *mapped;
  const auto replay_final = [&](const std::function<void(const Edge&)>& v) {
    if (identity)
      for_each_clean(raw, v);
    else
      final_stream.for_each_sorted(v);
  };

  // DegreeBalanced1D weights, exactly as make_partition derives them from
  // the final CSR: each out-edge (u, v) contributes deg(u) + deg(v) to u.
  std::vector<std::uint64_t> weights(n1, 0);
  replay_final([&](const Edge& e) {
    weights[e.u] += std::uint64_t{deg_final[e.u]} + deg_final[e.v];
  });
  rep.merge_seconds = merge_timer.elapsed_s() -
                      (identity ? 0.0 : mapped->sort_seconds());
  tracer.end("map_relabel");

  // ---- Stage 3: emit the partition-sliced snapshot. ---------------------
  tracer.begin("write_snapshot");
  util::Timer write_timer;
  std::vector<Partition> parts;
  parts.reserve(snapshot_v2::kKindCount);
  parts.emplace_back(PartitionKind::Block1D, n1, opt.ranks);
  parts.emplace_back(PartitionKind::Cyclic1D, n1, opt.ranks);
  parts.push_back(Partition::degree_balanced(
      std::span<const std::uint64_t>(weights), opt.ranks));
  parts.emplace_back(PartitionKind::Grid2D, n1, opt.ranks);

  {
    SnapshotWriter writer(output, n1, dir, std::move(parts));
    replay_final([&](const Edge& e) { writer.append(e); });
    writer.finalize(deg_final);
    rep.num_edges = writer.num_edges();
    rep.edge_checksum = writer.edge_checksum();
    rep.degree_checksum = writer.degree_checksum();
    for (std::size_t k = 0; k < snapshot_v2::kKindCount; ++k)
      rep.extents[k] = writer.extents_total(k);
  }
  rep.write_seconds = write_timer.elapsed_s();
  tracer.end("write_snapshot");
  tracer.unbind();
  ATLC_CHECK(!identity || rep.num_edges == m_clean,
             "identity path must emit every cleaned edge");

  if (identity) {
    rep.spill_runs = raw.spill_runs();
    rep.sort_seconds = raw.sort_seconds();
  } else {
    rep.spill_runs += mapped->spill_runs();
    rep.sort_seconds += mapped->sort_seconds();
  }
  rep.parse_sort_seconds = rep.parse_seconds + rep.sort_seconds;
  rep.snapshot_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(output));
  rep.peak_rss_bytes = peak_rss_bytes();
  rep.total_seconds = total.elapsed_s();
  return rep;
}

}  // namespace atlc::ingest
