#include "atlc/ingest/chunk_reader.hpp"

#include <stdexcept>

#include "atlc/util/check.hpp"

namespace atlc::ingest {

ChunkReader::ChunkReader(const std::string& path, std::size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes > 0 ? chunk_bytes : 1) {
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) throw std::runtime_error("atlc: cannot open file: " + path);
  if (std::fseek(f_, 0, SEEK_END) == 0) {
    const long size = std::ftell(f_);
    if (size > 0) file_bytes_ = static_cast<std::uint64_t>(size);
  }
  std::rewind(f_);
}

ChunkReader::~ChunkReader() {
  if (f_) std::fclose(f_);
}

bool ChunkReader::next(TextChunk& out) {
  out.file_offset = consumed_;
  out.data = std::move(carry_);
  carry_.clear();

  bool eof = false;
  while (!eof) {
    const std::size_t old = out.data.size();
    out.data.resize(old + chunk_bytes_);
    const std::size_t got = std::fread(out.data.data() + old, 1, chunk_bytes_,
                                       f_);
    out.data.resize(old + got);
    bytes_read_ += got;
    eof = got < chunk_bytes_;
    if (out.data.size() >= chunk_bytes_ || eof) {
      if (!eof) {
        // Trim back to the last line boundary; a window with no newline at
        // all is one oversized line — loop to grow it until its newline.
        const std::size_t nl = out.data.rfind('\n');
        if (nl == std::string::npos) continue;
        carry_.assign(out.data, nl + 1, std::string::npos);
        out.data.resize(nl + 1);
      }
      break;
    }
  }
  consumed_ += out.data.size();
  return !out.data.empty();
}

namespace {

/// strtoull-compatible base-10 parse of [p, end): skips leading whitespace,
/// accepts an optional sign (negative values wrap, as strtoull defines),
/// saturates on overflow. Returns false when no digits are found; `p` is
/// advanced past the consumed prefix on success.
bool parse_u64(const char*& p, const char* end, std::uint64_t& out) {
  while (p != end && (*p == ' ' || (*p >= '\t' && *p <= '\r'))) ++p;
  bool negative = false;
  if (p != end && (*p == '+' || *p == '-')) {
    negative = *p == '-';
    ++p;
  }
  if (p == end || *p < '0' || *p > '9') return false;
  std::uint64_t value = 0;
  bool overflow = false;
  for (; p != end && *p >= '0' && *p <= '9'; ++p) {
    const auto digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) overflow = true;
    if (!overflow) value = value * 10 + digit;
  }
  if (overflow) value = ~std::uint64_t{0};
  out = negative ? std::uint64_t{0} - value : value;
  return true;
}

}  // namespace

std::size_t parse_text_chunk(std::string_view text,
                             std::vector<RawPair>& out) {
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lines;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const char* p = line.data();
    const char* const end = line.data() + line.size();
    RawPair pair;
    if (!parse_u64(p, end, pair.a) || !parse_u64(p, end, pair.b)) continue;
    out.push_back(pair);
  }
  return lines;
}

}  // namespace atlc::ingest
