#include "atlc/ingest/external_sorter.hpp"

#if !defined(ATLC_NO_OPENMP) && defined(_OPENMP)
#include <omp.h>
#else
namespace {
inline int omp_get_max_threads() { return 1; }
}  // namespace
#endif

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "atlc/util/check.hpp"
#include "atlc/util/timer.hpp"

namespace atlc::ingest {

namespace {

/// Split [0, n) into `parts` nearly-equal ranges; returns [begin, end) of
/// range `idx` (same arithmetic as intersect/parallel.cpp's chunk()).
std::pair<std::size_t, std::size_t> chunk(std::size_t n, int parts, int idx) {
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  const auto i = static_cast<std::size_t>(idx);
  const std::size_t begin = i * base + std::min(i, extra);
  const std::size_t end = begin + base + (i < extra ? 1 : 0);
  return {begin, end};
}

}  // namespace

void parallel_sort_edges(std::span<Edge> edges, int num_threads) {
#if !defined(ATLC_NO_OPENMP) && defined(_OPENMP)
  const int threads = num_threads > 0 ? num_threads : omp_get_max_threads();
  // A too-small parallel region costs more in fork/merge overhead than the
  // sort; the sequential kernel also keeps tiny spills deterministic-cheap.
  if (threads <= 1 || edges.size() < (std::size_t{1} << 14)) {
    std::sort(edges.begin(), edges.end());
    return;
  }
  // Per-thread sorted runs...
#pragma omp parallel for num_threads(threads) schedule(static)
  for (int t = 0; t < threads; ++t) {
    const auto [begin, end] = chunk(edges.size(), threads, t);
    std::sort(edges.begin() + static_cast<std::ptrdiff_t>(begin),
              edges.begin() + static_cast<std::ptrdiff_t>(end));
  }
  // ...merged pairwise: level `width` merges runs [i, i+width) with
  // [i+width, i+2*width), each pair disjoint, so the level parallelises.
  for (int width = 1; width < threads; width *= 2) {
#pragma omp parallel for num_threads(threads) schedule(dynamic, 1)
    for (int i = 0; i < threads; i += 2 * width) {
      if (i + width >= threads) continue;
      const std::size_t lo = chunk(edges.size(), threads, i).first;
      const std::size_t mid = chunk(edges.size(), threads, i + width).first;
      const std::size_t hi =
          chunk(edges.size(), threads, std::min(i + 2 * width, threads) - 1)
              .second;
      std::inplace_merge(edges.begin() + static_cast<std::ptrdiff_t>(lo),
                         edges.begin() + static_cast<std::ptrdiff_t>(mid),
                         edges.begin() + static_cast<std::ptrdiff_t>(hi));
    }
  }
#else
  (void)num_threads;
  std::sort(edges.begin(), edges.end());
#endif
}

ExternalEdgeSorter::ExternalEdgeSorter(std::string tmp_prefix,
                                       std::uint64_t mem_budget_bytes,
                                       int num_threads)
    : tmp_prefix_(std::move(tmp_prefix)),
      budget_(mem_budget_bytes),
      threads_(num_threads) {}

ExternalEdgeSorter::~ExternalEdgeSorter() { clear(); }

void ExternalEdgeSorter::add(Edge e) {
  ATLC_CHECK(!finished_, "ExternalEdgeSorter: add() after finish()");
  buffer_.push_back(e);
  ++total_;
  maybe_spill();
}

void ExternalEdgeSorter::add(std::span<const Edge> edges) {
  ATLC_CHECK(!finished_, "ExternalEdgeSorter: add() after finish()");
  buffer_.insert(buffer_.end(), edges.begin(), edges.end());
  total_ += edges.size();
  maybe_spill();
}

void ExternalEdgeSorter::maybe_spill() {
  if (budget_ > 0 && buffer_.size() * sizeof(Edge) >= budget_) spill();
}

void ExternalEdgeSorter::spill() {
  if (buffer_.empty()) return;
  util::Timer timer;
  parallel_sort_edges(buffer_, threads_);
  Run run;
  run.path = tmp_prefix_ + ".run" + std::to_string(runs_.size());
  run.count = buffer_.size();
  std::FILE* f = std::fopen(run.path.c_str(), "wb");
  if (!f)
    throw std::runtime_error("atlc: cannot create spill file: " + run.path);
  const std::size_t wrote =
      std::fwrite(buffer_.data(), sizeof(Edge), buffer_.size(), f);
  std::fclose(f);
  if (wrote != buffer_.size())
    throw std::runtime_error("atlc: short write to spill file (disk full?): " +
                             run.path);
  runs_.push_back(std::move(run));
  buffer_.clear();
  buffer_.shrink_to_fit();
  sort_seconds_ += timer.elapsed_s();
}

void ExternalEdgeSorter::finish() {
  ATLC_CHECK(!finished_, "ExternalEdgeSorter: finish() called twice");
  util::Timer timer;
  parallel_sort_edges(buffer_, threads_);
  sort_seconds_ += timer.elapsed_s();
  finished_ = true;
}

void ExternalEdgeSorter::for_each_sorted(
    const std::function<void(const Edge&)>& visit) const {
  ATLC_CHECK(finished_, "ExternalEdgeSorter: for_each_sorted() before "
                        "finish()");
  if (runs_.empty()) {
    for (const Edge& e : buffer_) visit(e);
    return;
  }

  // K-way merge over the run files plus the in-memory tail, via a binary
  // min-heap of cursors keyed by their head edge. Equal heads may pop in
  // any order — the stream is a multiset, so ties are interchangeable.
  struct Cursor {
    std::FILE* f = nullptr;           // null for the in-memory tail
    const Edge* mem = nullptr;        // in-memory tail (served zero-copy)
    std::size_t mem_count = 0;
    std::uint64_t remaining = 0;      // file edges not yet loaded into buf
    std::vector<Edge> buf;
    std::size_t pos = 0;
    Edge head{0, 0};

    bool advance() {
      if (!f) {
        if (pos >= mem_count) return false;
        head = mem[pos++];
        return true;
      }
      if (pos >= buf.size()) {
        if (remaining == 0) return false;
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, 1u << 15));
        buf.resize(want);
        const std::size_t got = std::fread(buf.data(), sizeof(Edge), want, f);
        if (got != want)
          throw std::runtime_error("atlc: short read from spill file");
        remaining -= got;
        pos = 0;
      }
      head = buf[pos++];
      return true;
    }
  };

  std::vector<Cursor> cursors;
  cursors.reserve(runs_.size() + 1);
  struct FileGuard {
    std::vector<std::FILE*> files;
    ~FileGuard() {
      for (std::FILE* f : files)
        if (f) std::fclose(f);
    }
  } guard;

  for (const Run& run : runs_) {
    Cursor c;
    c.f = std::fopen(run.path.c_str(), "rb");
    if (!c.f)
      throw std::runtime_error("atlc: cannot reopen spill file: " + run.path);
    guard.files.push_back(c.f);
    c.remaining = run.count;
    cursors.push_back(std::move(c));
  }
  if (!buffer_.empty()) {
    Cursor c;
    c.mem = buffer_.data();
    c.mem_count = buffer_.size();
    cursors.push_back(std::move(c));
  }

  // Heap of cursor indices; top = smallest head.
  std::vector<std::size_t> heap;
  const auto greater = [&](std::size_t a, std::size_t b) {
    return cursors[b].head < cursors[a].head;
  };
  for (std::size_t i = 0; i < cursors.size(); ++i)
    if (cursors[i].advance()) heap.push_back(i);
  std::make_heap(heap.begin(), heap.end(), greater);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const std::size_t idx = heap.back();
    visit(cursors[idx].head);
    if (cursors[idx].advance()) {
      std::push_heap(heap.begin(), heap.end(), greater);
    } else {
      heap.pop_back();
    }
  }
}

void ExternalEdgeSorter::clear() {
  buffer_.clear();
  buffer_.shrink_to_fit();
  for (const Run& run : runs_) std::remove(run.path.c_str());
  runs_.clear();
  finished_ = true;
}

}  // namespace atlc::ingest
