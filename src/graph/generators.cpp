#include "atlc/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "atlc/util/check.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::graph {

EdgeList generate_rmat(const RmatParams& p) {
  ATLC_CHECK(p.scale > 0 && p.scale < 32, "rmat scale must be in (0,32)");
  const double sum = p.a + p.b + p.c + p.d;
  ATLC_CHECK(std::abs(sum - 1.0) < 1e-9, "rmat probabilities must sum to 1");

  const VertexId n = VertexId{1} << p.scale;
  const std::uint64_t target_edges =
      static_cast<std::uint64_t>(p.edge_factor) << p.scale;

  util::Xoshiro256 rng(p.seed);
  std::vector<Edge> edges;
  edges.reserve(target_edges);

  for (std::uint64_t i = 0; i < target_edges; ++i) {
    VertexId u = 0, v = 0;
    double a = p.a, b = p.b, c = p.c, d = p.d;
    for (unsigned level = 0; level < p.scale; ++level) {
      const double r = rng.next_double();
      // Choose the quadrant: (0,0)=a, (0,1)=b, (1,0)=c, (1,1)=d.
      unsigned du = 0, dv = 0;
      if (r < a) {
        du = 0; dv = 0;
      } else if (r < a + b) {
        du = 0; dv = 1;
      } else if (r < a + b + c) {
        du = 1; dv = 0;
      } else {
        du = 1; dv = 1;
      }
      u = (u << 1) | du;
      v = (v << 1) | dv;
      if (p.noise) {
        // +/-5% multiplicative perturbation, renormalised.
        auto perturb = [&](double x) {
          return x * (0.95 + 0.1 * rng.next_double());
        };
        a = perturb(a); b = perturb(b); c = perturb(c); d = perturb(d);
        const double s = a + b + c + d;
        a /= s; b /= s; c /= s; d /= s;
      }
    }
    edges.push_back({u, v});
  }

  EdgeList out(n, std::move(edges), p.directedness);
  if (p.directedness == Directedness::Undirected) out.symmetrize();
  return out;
}

EdgeList generate_uniform(const UniformParams& p) {
  ATLC_CHECK(p.num_vertices >= 2, "uniform generator needs >= 2 vertices");
  util::Xoshiro256 rng(p.seed);
  std::vector<Edge> edges;
  edges.reserve(p.num_edges);
  for (std::uint64_t i = 0; i < p.num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(p.num_vertices));
    const auto v = static_cast<VertexId>(rng.next_below(p.num_vertices));
    edges.push_back({u, v});
  }
  EdgeList out(p.num_vertices, std::move(edges), p.directedness);
  if (p.directedness == Directedness::Undirected) out.symmetrize();
  return out;
}

EdgeList generate_circles(const CirclesParams& p) {
  ATLC_CHECK(p.num_vertices >= 16, "circles generator needs >= 16 vertices");
  util::Xoshiro256 rng(p.seed);
  std::vector<Edge> edges;

  // Draw power-law circle sizes (discrete Pareto, bounded by n/4) until all
  // vertices are covered; circles overlap slightly by construction since
  // membership is assigned by contiguous blocks with random stride-back.
  const double xmin = 4.0;
  VertexId covered = 0;
  std::vector<std::pair<VertexId, VertexId>> circles;  // [first, last)
  while (covered < p.num_vertices) {
    const double u = rng.next_double();
    auto size = static_cast<VertexId>(
        xmin * std::pow(1.0 - u, -1.0 / (p.circle_size_alpha - 1.0)));
    // Clamp the tail: real ego-network circles rarely exceed a few times
    // the typical size; unclamped Pareto draws would dominate the edge
    // count with a single giant clique.
    const auto max_size = static_cast<VertexId>(
        std::min<double>(4.0 * p.avg_circle_size,
                         static_cast<double>(p.num_vertices) / 4.0));
    size = std::clamp<VertexId>(size, 4, std::max<VertexId>(8, max_size));
    // Overlap: start a little before the previous end so circles share
    // members, like real ego-network circles.
    const VertexId overlap = static_cast<VertexId>(rng.next_below(3));
    const VertexId first = covered >= overlap ? covered - overlap : 0;
    const VertexId last =
        std::min<VertexId>(first + size, p.num_vertices);
    circles.emplace_back(first, last);
    covered = last;
  }

  auto add_undirected = [&](VertexId a, VertexId b) {
    if (a == b) return;
    edges.push_back({a, b});
    edges.push_back({b, a});
  };

  // Dense intra-circle edges.
  for (auto [first, last] : circles) {
    for (VertexId i = first; i < last; ++i)
      for (VertexId j = i + 1; j < last; ++j)
        if (rng.next_bool(p.p_intra)) add_undirected(i, j);
  }

  // Hub vertices join many circles: connect each hub to a sample of members
  // of `circles_per_hub` random circles. Hubs create the heavy tail.
  for (unsigned h = 0; h < p.hubs; ++h) {
    const auto hub = static_cast<VertexId>(rng.next_below(p.num_vertices));
    for (unsigned c = 0; c < p.circles_per_hub; ++c) {
      const auto& circle = circles[rng.next_below(circles.size())];
      const VertexId span = circle.second - circle.first;
      // Connect to roughly half the members of the circle.
      for (VertexId k = 0; k < span; ++k)
        if (rng.next_bool(0.5))
          add_undirected(hub, circle.first + k);
    }
  }

  // Rewire a fraction of endpoints to random vertices (weak ties).
  for (Edge& e : edges)
    if (rng.next_bool(p.p_rewire))
      e.v = static_cast<VertexId>(rng.next_below(p.num_vertices));

  EdgeList out(p.num_vertices, std::move(edges), Directedness::Undirected);
  out.remove_self_loops();
  out.symmetrize();
  return out;
}

}  // namespace atlc::graph
