#include "atlc/graph/hub_replica.hpp"

#include <algorithm>
#include <cmath>

#include "atlc/graph/csr.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/util/check.hpp"

namespace atlc::graph {

HubReplica HubReplica::build(const CSRGraph& g, double fraction) {
  HubReplica h;
  if (fraction <= 0.0 || g.num_vertices() == 0) return h;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  // Ceil so any positive δ replicates at least one hub even on tiny graphs.
  const auto count = std::min(
      n, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(g.num_vertices()))));

  const std::vector<VertexId> order = vertices_by_degree_desc(g);
  h.ids_.assign(order.begin(), order.begin() + static_cast<long>(count));
  std::sort(h.ids_.begin(), h.ids_.end());
  h.rows_.reserve(count);
  for (const VertexId v : h.ids_) {
    const auto nbrs = g.neighbors(v);
    h.rows_.emplace_back(nbrs.begin(), nbrs.end());
  }
  return h;
}

std::size_t HubReplica::find(VertexId v) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), v);
  if (it == ids_.end() || *it != v) return npos;
  return static_cast<std::size_t>(it - ids_.begin());
}

std::uint64_t HubReplica::replica_bytes() const {
  std::uint64_t bytes = ids_.size() * sizeof(VertexId);
  for (const auto& row : rows_) bytes += row.size() * sizeof(VertexId);
  return bytes;
}

std::uint64_t HubReplica::apply(VertexId v, VertexId nbr, bool insert) {
  const std::size_t slot = find(v);
  if (slot == npos) return 0;
  std::vector<VertexId>& row = rows_[slot];
  const auto it = std::lower_bound(row.begin(), row.end(), nbr);
  if (insert) {
    ATLC_DCHECK(it == row.end() || *it != nbr,
                "hub replica: effective insert of a present edge");
    row.insert(it, nbr);
  } else {
    ATLC_DCHECK(it != row.end() && *it == nbr,
                "hub replica: effective delete of an absent edge");
    row.erase(it);
  }
  return row.size() * sizeof(VertexId);
}

}  // namespace atlc::graph
