#include "atlc/graph/reference.hpp"

#include "atlc/intersect/intersect.hpp"

namespace atlc::graph {

double lcc_score(std::uint64_t t, VertexId out_degree) {
  if (out_degree < 2) return 0.0;
  const double pairs = static_cast<double>(out_degree) *
                       (static_cast<double>(out_degree) - 1.0);
  // Undirected Eq. (2): C = 2*tri/ (d(d-1)) with tri = t/2  ==>  t / (d(d-1)).
  // Directed   Eq. (1): C = t / (d+(d+-1)).
  // Both collapse to the same expression in terms of the edge-centric t.
  return static_cast<double>(t) / pairs;
}

LccResult reference_lcc(const CSRGraph& g) {
  const VertexId n = g.num_vertices();
  LccResult r;
  r.triangles.assign(n, 0);
  r.lcc.assign(n, 0.0);

  for (VertexId v = 0; v < n; ++v) {
    const auto adj_v = g.neighbors(v);
    std::uint64_t t = 0;
    for (VertexId j : adj_v) t += intersect::count_common(adj_v, g.neighbors(j));
    r.triangles[v] = t;
    r.lcc[v] = lcc_score(t, g.degree(v));
  }

  std::uint64_t sum = 0;
  for (auto t : r.triangles) sum += t;
  // Undirected: every distinct triangle is counted twice at each of its three
  // vertices (once per incident orientation) => divide by 6. Directed: t(v)
  // counts each transitive triad exactly once at its apex => sum directly.
  r.global_triangles = g.directedness() == Directedness::Undirected ? sum / 6 : sum;
  return r;
}

LccResult naive_lcc(const CSRGraph& g) {
  const VertexId n = g.num_vertices();
  LccResult r;
  r.triangles.assign(n, 0);
  r.lcc.assign(n, 0.0);

  for (VertexId v = 0; v < n; ++v) {
    const auto adj_v = g.neighbors(v);
    std::uint64_t t = 0;
    for (VertexId j : adj_v)
      for (VertexId k : adj_v)
        if (j != k && g.has_edge(j, k)) ++t;
    r.triangles[v] = t;
    r.lcc[v] = lcc_score(t, g.degree(v));
  }

  std::uint64_t sum = 0;
  for (auto t : r.triangles) sum += t;
  r.global_triangles = g.directedness() == Directedness::Undirected ? sum / 6 : sum;
  return r;
}

}  // namespace atlc::graph
