#include "atlc/graph/edge_list.hpp"

#include <algorithm>

namespace atlc::graph {

void EdgeList::sort_and_dedup() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::remove_self_loops() {
  std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
}

void EdgeList::symmetrize() {
  if (dir_ == Directedness::Directed) return;
  const std::size_t original = edges_.size();
  edges_.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i)
    edges_.push_back({edges_[i].v, edges_[i].u});
  sort_and_dedup();
}

bool EdgeList::is_symmetric() const {
  for (const Edge& e : edges_) {
    if (!std::binary_search(edges_.begin(), edges_.end(), Edge{e.v, e.u}))
      return false;
  }
  return true;
}

}  // namespace atlc::graph
