#include "atlc/graph/csr.hpp"

#include <algorithm>
#include <cstdint>

#include "atlc/util/check.hpp"

#if !defined(ATLC_NO_OPENMP) && defined(_OPENMP)
#define ATLC_CSR_OMP 1
#endif

namespace atlc::graph {

CSRGraph CSRGraph::from_edges(const EdgeList& edges) {
  CSRGraph g;
  const VertexId n = edges.num_vertices();
  g.dir_ = edges.directedness();
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  for (const Edge& e : edges.edges()) {
    ATLC_CHECK(e.u < n && e.v < n, "edge endpoint out of range");
    ++g.offsets_[e.u + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];

  g.adjacencies_.resize(g.offsets_.back());
  std::vector<EdgeIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) g.adjacencies_[cursor[e.u]++] = e.v;

  // Rows are independent, so the per-row sort parallelises trivially; the
  // result is identical to the serial loop (each row is sorted in place).
  // Dynamic scheduling in blocks of rows absorbs the skew of hub rows.
#ifdef ATLC_CSR_OMP
#pragma omp parallel for schedule(dynamic, 1024)
#endif
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v)
    std::sort(g.adjacencies_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacencies_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  return g;
}

CSRGraph CSRGraph::from_raw(VertexId num_vertices,
                            std::vector<EdgeIndex> offsets,
                            std::vector<VertexId> adjacencies,
                            Directedness directedness) {
  ATLC_CHECK(offsets.size() == static_cast<std::size_t>(num_vertices) + 1,
             "offsets must have n+1 entries");
  ATLC_CHECK(offsets.back() == adjacencies.size(),
             "last offset must equal adjacency count");
  CSRGraph g;
  g.offsets_ = std::move(offsets);
  g.adjacencies_ = std::move(adjacencies);
  g.dir_ = directedness;
  return g;
}

bool CSRGraph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<VertexId> CSRGraph::in_degrees() const {
  std::vector<VertexId> in(num_vertices(), 0);
  for (VertexId v : adjacencies_) ++in[v];
  return in;
}

bool CSRGraph::adjacency_sorted_unique() const {
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto nbrs = neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i)
      if (nbrs[i - 1] >= nbrs[i]) return false;
  }
  return true;
}

}  // namespace atlc::graph
