#include "atlc/graph/relabel.hpp"

#include <numeric>

#include "atlc/util/check.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::graph {

std::vector<VertexId> random_permutation(VertexId n, std::uint64_t seed) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  util::Xoshiro256 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    const auto j = static_cast<VertexId>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

void relabel(EdgeList& edges, const std::vector<VertexId>& perm) {
  ATLC_CHECK(perm.size() == edges.num_vertices(),
             "permutation size must match vertex count");
  for (Edge& e : edges.edges()) {
    e.u = perm[e.u];
    e.v = perm[e.v];
  }
}

void relabel_random(EdgeList& edges, std::uint64_t seed) {
  relabel(edges, random_permutation(edges.num_vertices(), seed));
}

}  // namespace atlc::graph
