#include "atlc/graph/degree_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atlc::graph {

DegreeStats degree_stats(const CSRGraph& g, VertexId xmin) {
  DegreeStats s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;

  std::vector<VertexId> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);

  s.min = *std::min_element(deg.begin(), deg.end());
  s.max = *std::max_element(deg.begin(), deg.end());
  s.mean = static_cast<double>(g.num_edges()) / static_cast<double>(n);

  // Power-law MLE: alpha = 1 + n' / sum(ln(d_i / (xmin - 0.5))) over d >= xmin.
  double log_sum = 0.0;
  std::uint64_t count = 0;
  for (VertexId d : deg) {
    if (d >= xmin && d > 0) {
      log_sum += std::log(static_cast<double>(d) /
                          (static_cast<double>(xmin) - 0.5));
      ++count;
    }
  }
  s.power_law_alpha =
      count > 0 && log_sum > 0.0 ? 1.0 + static_cast<double>(count) / log_sum
                                 : 0.0;

  // Gini over sorted degrees.
  std::sort(deg.begin(), deg.end());
  double cum = 0.0, weighted = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    cum += deg[i];
    weighted += static_cast<double>(i + 1) * static_cast<double>(deg[i]);
  }
  if (cum > 0.0)
    s.gini = (2.0 * weighted) / (static_cast<double>(n) * cum) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  return s;
}

std::vector<VertexId> vertices_by_degree_desc(const CSRGraph& g) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.degree(a) > g.degree(b);
  });
  return order;
}

double top_degree_share(const CSRGraph& g,
                        const std::vector<std::uint64_t>& weights,
                        double fraction) {
  const auto order = vertices_by_degree_desc(g);
  std::uint64_t total = 0;
  for (auto w : weights) total += w;
  if (total == 0) return 0.0;
  const auto top = static_cast<std::size_t>(
      fraction * static_cast<double>(order.size()));
  std::uint64_t top_sum = 0;
  for (std::size_t i = 0; i < top && i < order.size(); ++i)
    top_sum += weights[order[i]];
  return static_cast<double>(top_sum) / static_cast<double>(total);
}

double reciprocity(const CSRGraph& g) {
  if (g.directedness() == Directedness::Undirected) return 1.0;
  if (g.num_edges() == 0) return 0.0;
  std::uint64_t reciprocated = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (g.has_edge(v, u)) ++reciprocated;
  return static_cast<double>(reciprocated) /
         static_cast<double>(g.num_edges());
}

}  // namespace atlc::graph
