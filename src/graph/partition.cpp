#include "atlc/graph/partition.hpp"

#include <cstdint>

#include "atlc/graph/csr.hpp"

namespace atlc::graph {

Partition Partition::degree_balanced(std::span<const std::uint64_t> weights,
                                     std::uint32_t ranks) {
  const auto n = static_cast<VertexId>(weights.size());
  Partition p(PartitionKind::Block1D, n, ranks);
  p.kind_ = PartitionKind::DegreeBalanced1D;
  p.cuts_.assign(static_cast<std::size_t>(ranks) + 1, n);

  std::uint64_t remaining = 0;
  for (const std::uint64_t w : weights) remaining += w;

  VertexId i = 0;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    p.cuts_[r] = i;
    const std::uint32_t ranks_left = ranks - r;
    if (remaining == 0) {
      // Zero-weight tail (or an all-zero sequence): nothing left to
      // balance, fall back to vertex-count balance over what remains.
      const VertexId take = (n - i + ranks_left - 1) / ranks_left;
      i += take;
      continue;
    }
    // Re-quota against what is left: ceil keeps every prefix of ranks at or
    // above its fair share, which is what front-loads the remainder and
    // makes all-equal weights reproduce the Block1D boundaries.
    const std::uint64_t quota = (remaining + ranks_left - 1) / ranks_left;
    std::uint64_t owned = 0;
    while (i < n && owned < quota) {
      owned += weights[i];
      ++i;
    }
    remaining -= owned;
  }
  p.cuts_[ranks] = n;
  return p;
}

Partition Partition::degree_balanced(std::span<const VertexId> degrees,
                                     std::uint32_t ranks) {
  std::vector<std::uint64_t> weights(degrees.begin(), degrees.end());
  return degree_balanced(std::span<const std::uint64_t>(weights), ranks);
}

Partition make_partition(const CSRGraph& g, PartitionKind kind,
                         std::uint32_t ranks) {
  if (kind != PartitionKind::DegreeBalanced1D)
    return Partition(kind, g.num_vertices(), ranks);
  // Weight vertex v by the modeled cost of its edge stream: each local edge
  // (v, j) contributes deg(v) + deg(j) — the linear-merge intersection
  // bound, which also tracks the fetch volume of adj(j). Balancing this
  // prefix sum balances both stream length and hub-row work; on an
  // all-equal degree sequence it degenerates to 2d^2 per vertex, i.e. the
  // plain |E|/p endpoint cut (== Block1D boundaries). DESIGN.md §8.
  std::vector<std::uint64_t> weights(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto dv = static_cast<std::uint64_t>(g.degree(v));
    std::uint64_t w = 0;
    for (const VertexId j : g.neighbors(v)) w += dv + g.degree(j);
    weights[v] = w;
  }
  return Partition::degree_balanced(weights, ranks);
}

const char* partition_kind_name(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::Block1D:
      return "block1d";
    case PartitionKind::Cyclic1D:
      return "cyclic1d";
    case PartitionKind::DegreeBalanced1D:
      return "degree1d";
    case PartitionKind::Grid2D:
      return "grid2d";
  }
  return "unknown";
}

}  // namespace atlc::graph
