#include "atlc/graph/io.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace atlc::graph {

namespace {

constexpr std::uint32_t kMagic = 0x41544c43;  // "ATLC"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open file: " + path);
  return f;
}

}  // namespace

EdgeList load_text_edges(const std::string& path, Directedness directedness,
                         std::uint64_t max_vertices) {
  File f = open_or_throw(path, "r");

  // Size the containers from the file size up front: a SNAP line is ~12-24
  // bytes and most ids repeat, so these bounds avoid the rehash/realloc
  // storms that dominated load time on multi-GB inputs (capped so a huge
  // file cannot force a huge speculative allocation).
  if (std::fseek(f.get(), 0, SEEK_END) != 0)
    throw std::runtime_error("atlc: cannot seek: " + path);
  const long file_size = std::ftell(f.get());
  if (file_size < 0) throw std::runtime_error("atlc: cannot stat: " + path);
  std::rewind(f.get());
  const auto bytes = static_cast<std::uint64_t>(file_size);

  std::unordered_map<std::uint64_t, VertexId> remap;
  remap.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(bytes / 24 + 16,
                                                       std::uint64_t{1} << 26)));
  std::vector<Edge> edges;
  edges.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(bytes / 12 + 16,
                                                       std::uint64_t{1} << 26)));

  // Compacted ids must fit VertexId (uint32); `max_vertices` tightens the
  // guard further so tests can exercise it without 4G-vertex inputs.
  const std::uint64_t id_cap = std::min<std::uint64_t>(max_vertices,
                                                       0xffffffffull);
  char line[256];
  while (std::fgets(line, sizeof(line), f.get())) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    std::uint64_t a = 0, b = 0;
    if (std::sscanf(line, "%llu %llu", (unsigned long long*)&a,
                    (unsigned long long*)&b) != 2)
      continue;
    auto intern = [&](std::uint64_t raw) {
      auto [it, inserted] =
          remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
      if (inserted && remap.size() > id_cap)
        throw std::runtime_error(
            "atlc: vertex id space overflow: more than " +
            std::to_string(id_cap) + " distinct vertex ids in " + path);
      return it->second;
    };
    edges.push_back({intern(a), intern(b)});
  }
  EdgeList out(static_cast<VertexId>(remap.size()), std::move(edges),
               directedness);
  if (directedness == Directedness::Undirected) out.symmetrize();
  return out;
}

void save_text_edges(const EdgeList& edges, const std::string& path) {
  File f = open_or_throw(path, "w");
  std::fprintf(f.get(), "# atlc edge list: %u vertices, %zu edges\n",
               edges.num_vertices(), edges.num_edges());
  for (const Edge& e : edges.edges())
    std::fprintf(f.get(), "%u %u\n", e.u, e.v);
}

void save_binary_edges(const EdgeList& edges, const std::string& path) {
  File f = open_or_throw(path, "wb");
  const std::uint32_t header[4] = {
      kMagic, kVersion,
      edges.directedness() == Directedness::Directed ? 1u : 0u,
      edges.num_vertices()};
  const auto m = static_cast<std::uint64_t>(edges.num_edges());
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1 ||
      std::fwrite(&m, sizeof(m), 1, f.get()) != 1)
    throw std::runtime_error("short write: " + path);
  if (m > 0 &&
      std::fwrite(edges.edges().data(), sizeof(Edge), m, f.get()) != m)
    throw std::runtime_error("short write: " + path);
}

EdgeList load_binary_edges(const std::string& path) {
  File f = open_or_throw(path, "rb");

  // Measure before parsing: every downstream check compares the header's
  // claims against what is actually on disk.
  if (std::fseek(f.get(), 0, SEEK_END) != 0)
    throw std::runtime_error("atlc: cannot seek: " + path);
  const long file_size = std::ftell(f.get());
  if (file_size < 0) throw std::runtime_error("atlc: cannot stat: " + path);
  std::rewind(f.get());

  constexpr std::uint64_t kHeaderBytes = 4 * sizeof(std::uint32_t) +
                                         sizeof(std::uint64_t);
  std::uint32_t header[4];
  std::uint64_t m = 0;
  if (static_cast<std::uint64_t>(file_size) < kHeaderBytes ||
      std::fread(header, sizeof(header), 1, f.get()) != 1 ||
      std::fread(&m, sizeof(m), 1, f.get()) != 1)
    throw std::runtime_error("atlc: truncated header (file smaller than the "
                             "binary edge-list header): " + path);
  if (header[0] != kMagic)
    throw std::runtime_error("atlc: bad magic (not an ATLC binary edge "
                             "list): " + path);
  if (header[1] != kVersion) {
    if (header[1] == 2)
      throw std::runtime_error(
          "atlc: this is a v2 partition-sliced snapshot, not a v1 binary "
          "edge list — open it with ingest::SnapshotReader (atlc_run "
          "--snapshot): " + path);
    throw std::runtime_error(
        "atlc: unsupported binary edge-list version " +
        std::to_string(header[1]) + " (expected " + std::to_string(kVersion) +
        "): " + path);
  }
  if (header[2] > 1)
    throw std::runtime_error("atlc: corrupt directedness flag: " + path);

  // The declared count must match the payload EXACTLY: a short file means a
  // truncated copy (loading it would silently slice the edge array); extra
  // trailing bytes mean the file is not what the header claims.
  const std::uint64_t expected = kHeaderBytes + m * sizeof(Edge);
  if (static_cast<std::uint64_t>(file_size) != expected)
    throw std::runtime_error(
        "atlc: declared edge count " + std::to_string(m) + " wants " +
        std::to_string(expected) + " bytes but file has " +
        std::to_string(file_size) + " (truncated or corrupt): " + path);

  const VertexId n = header[3];
  std::vector<Edge> edges(m);
  if (m > 0 && std::fread(edges.data(), sizeof(Edge), m, f.get()) != m)
    throw std::runtime_error("atlc: short read: " + path);
  for (const Edge& e : edges)
    if (e.u >= n || e.v >= n)
      throw std::runtime_error(
          "atlc: edge endpoint out of range (vertex >= " + std::to_string(n) +
          "; corrupt payload): " + path);
  return EdgeList(n, std::move(edges),
                  header[2] ? Directedness::Directed
                            : Directedness::Undirected);
}

EdgeList load_edges(const std::string& path, Directedness directedness) {
  {
    File f = open_or_throw(path, "rb");
    std::uint32_t magic = 0;
    const bool is_binary =
        std::fread(&magic, sizeof(magic), 1, f.get()) == 1 && magic == kMagic;
    if (is_binary) {
      // Reopen through the validating loader (it re-reads the header).
      f.reset();
      return load_binary_edges(path);
    }
  }
  return load_text_edges(path, directedness);
}

}  // namespace atlc::graph
