#include "atlc/graph/io.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace atlc::graph {

namespace {

constexpr std::uint32_t kMagic = 0x41544c43;  // "ATLC"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open file: " + path);
  return f;
}

}  // namespace

EdgeList load_text_edges(const std::string& path, Directedness directedness) {
  File f = open_or_throw(path, "r");
  std::unordered_map<std::uint64_t, VertexId> remap;
  std::vector<Edge> edges;
  char line[256];
  while (std::fgets(line, sizeof(line), f.get())) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    std::uint64_t a = 0, b = 0;
    if (std::sscanf(line, "%llu %llu", (unsigned long long*)&a,
                    (unsigned long long*)&b) != 2)
      continue;
    auto intern = [&](std::uint64_t raw) {
      auto [it, inserted] =
          remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
      return it->second;
    };
    edges.push_back({intern(a), intern(b)});
  }
  EdgeList out(static_cast<VertexId>(remap.size()), std::move(edges),
               directedness);
  if (directedness == Directedness::Undirected) out.symmetrize();
  return out;
}

void save_text_edges(const EdgeList& edges, const std::string& path) {
  File f = open_or_throw(path, "w");
  std::fprintf(f.get(), "# atlc edge list: %u vertices, %zu edges\n",
               edges.num_vertices(), edges.num_edges());
  for (const Edge& e : edges.edges())
    std::fprintf(f.get(), "%u %u\n", e.u, e.v);
}

void save_binary_edges(const EdgeList& edges, const std::string& path) {
  File f = open_or_throw(path, "wb");
  const std::uint32_t header[4] = {
      kMagic, kVersion,
      edges.directedness() == Directedness::Directed ? 1u : 0u,
      edges.num_vertices()};
  const auto m = static_cast<std::uint64_t>(edges.num_edges());
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1 ||
      std::fwrite(&m, sizeof(m), 1, f.get()) != 1)
    throw std::runtime_error("short write: " + path);
  if (m > 0 &&
      std::fwrite(edges.edges().data(), sizeof(Edge), m, f.get()) != m)
    throw std::runtime_error("short write: " + path);
}

EdgeList load_binary_edges(const std::string& path) {
  File f = open_or_throw(path, "rb");
  std::uint32_t header[4];
  std::uint64_t m = 0;
  if (std::fread(header, sizeof(header), 1, f.get()) != 1 ||
      std::fread(&m, sizeof(m), 1, f.get()) != 1)
    throw std::runtime_error("short read: " + path);
  if (header[0] != kMagic || header[1] != kVersion)
    throw std::runtime_error("bad magic/version: " + path);
  std::vector<Edge> edges(m);
  if (m > 0 && std::fread(edges.data(), sizeof(Edge), m, f.get()) != m)
    throw std::runtime_error("short read: " + path);
  return EdgeList(header[3], std::move(edges),
                  header[2] ? Directedness::Directed
                            : Directedness::Undirected);
}

}  // namespace atlc::graph
