#include "atlc/graph/dodg.hpp"

#include <vector>

#include "atlc/util/check.hpp"

namespace atlc::graph {

CSRGraph orient_dodg(const CSRGraph& g) {
  ATLC_CHECK(g.directedness() == Directedness::Undirected,
             "orient_dodg expects the undirected both-orientations CSR");
  const VertexId n = g.num_vertices();

  // Count kept edges per row, then fill. Walking each sorted row in order
  // preserves ascending adjacency ids, so no per-row re-sort is needed.
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    const VertexId du = g.degree(u);
    EdgeIndex kept = 0;
    for (const VertexId v : g.neighbors(u))
      kept += dodg_precedes(du, u, g.degree(v), v) ? 1 : 0;
    offsets[u + 1] = kept;
  }
  for (VertexId u = 0; u < n; ++u) offsets[u + 1] += offsets[u];

  std::vector<VertexId> adjacencies(offsets[n]);
  for (VertexId u = 0; u < n; ++u) {
    const VertexId du = g.degree(u);
    EdgeIndex w = offsets[u];
    for (const VertexId v : g.neighbors(u))
      if (dodg_precedes(du, u, g.degree(v), v)) adjacencies[w++] = v;
  }

  return CSRGraph::from_raw(n, std::move(offsets), std::move(adjacencies),
                            Directedness::Directed);
}

}  // namespace atlc::graph
