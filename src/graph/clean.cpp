#include "atlc/graph/clean.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "atlc/graph/relabel.hpp"

namespace atlc::graph {

namespace {

/// One pass of degree<2 removal. Returns the number of removed vertices and
/// compacts ids. Degree counts both orientations so that directed inputs
/// keep vertices involved in any triangle-capable pattern.
VertexId remove_low_degree_once(EdgeList& edges) {
  const VertexId n = edges.num_vertices();
  std::vector<VertexId> degree(n, 0);
  for (const Edge& e : edges.edges()) {
    ++degree[e.u];
    if (edges.directedness() == Directedness::Directed) ++degree[e.v];
  }
  // Undirected edge lists store both orientations, so out-degree alone is
  // already the symmetric degree.

  std::vector<VertexId> remap(n, 0);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v)
    remap[v] = degree[v] >= 2 ? next++ : static_cast<VertexId>(-1);
  const VertexId removed = n - next;
  if (removed == 0) return 0;

  std::erase_if(edges.edges(), [&](const Edge& e) {
    return remap[e.u] == static_cast<VertexId>(-1) ||
           remap[e.v] == static_cast<VertexId>(-1);
  });
  for (Edge& e : edges.edges()) {
    e.u = remap[e.u];
    e.v = remap[e.v];
  }
  edges.set_num_vertices(next);
  return removed;
}

}  // namespace

CleanReport clean(EdgeList& edges, const CleanOptions& options) {
  CleanReport report;

  if (options.remove_self_loops) {
    const std::size_t before = edges.num_edges();
    edges.remove_self_loops();
    report.self_loops_removed = before - edges.num_edges();
  }

  if (options.remove_multi_edges) {
    const std::size_t before = edges.num_edges();
    edges.sort_and_dedup();
    report.multi_edges_removed = before - edges.num_edges();
  }

  if (options.remove_degree_lt2) {
    do {
      const VertexId removed = remove_low_degree_once(edges);
      report.vertices_removed += removed;
      ++report.degree_removal_rounds;
      if (removed == 0) break;
    } while (options.recursive_degree_removal);
  }

  if (options.relabel_seed != 0) {
    relabel_random(edges, options.relabel_seed);
  }

  return report;
}

}  // namespace atlc::graph
