#include "atlc/obs/metrics.hpp"

#include <algorithm>
#include <cstring>

#include "atlc/util/stats.hpp"

namespace atlc::obs {

namespace {

bool starts_with(const char* s, const char* prefix) {
  return std::strncmp(s, prefix, std::strlen(prefix)) == 0;
}

/// Value of the argument named `key`, if either slot carries it.
bool find_arg(TraceArg a0, TraceArg a1, const char* key, std::uint64_t* out) {
  for (const TraceArg a : {a0, a1}) {
    if (a.key != nullptr && std::strcmp(a.key, key) == 0) {
      *out = a.value;
      return true;
    }
  }
  return false;
}

}  // namespace

void MetricsRegistry::count(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::observe(const std::string& name, double sample) {
  samples_[name].push_back(sample);
}

std::vector<double>& MetricsRegistry::per_rank(
    std::map<std::string, std::vector<double>>& m, const std::string& name,
    std::uint32_t rank) {
  std::vector<double>& v = m[name];
  if (v.size() <= rank) v.resize(rank + 1, 0.0);
  return v;
}

void MetricsRegistry::add_event(std::uint32_t rank, std::uint8_t track,
                                const char* name, const char* cat, char phase,
                                double ts, double dur, TraceArg a0,
                                TraceArg a1) {
  std::uint64_t v = 0;
  switch (phase) {
    case 'X':
      if (track == 1) {
        // NIC transfer: count, byte volume, virtual get latency.
        ++counters_["transfers"];
        if (find_arg(a0, a1, "bytes", &v)) counters_["transfer_bytes"] += v;
        samples_["get_latency_s"].push_back(dur);
      } else {
        per_rank(cause_seconds_, name, rank)[rank] += dur;
      }
      per_rank(cat_seconds_, cat, rank)[rank] += dur;
      break;
    case 'B':
      open_[{rank, name}].push_back(ts);
      break;
    case 'E': {
      auto it = open_.find({rank, name});
      if (it == open_.end() || it->second.empty()) break;  // tolerate cut tail
      per_rank(span_seconds_, name, rank)[rank] += ts - it->second.back();
      it->second.pop_back();
      break;
    }
    case 'i':
      ++counters_[name];
      if (starts_with(name, "cache_")) {
        if (find_arg(a0, a1, "epoch", &v)) {
          EpochCacheStats& e = cache_epochs_[v];
          if (std::strcmp(name, "cache_hit") == 0) ++e.hits;
          else if (std::strcmp(name, "cache_stale") == 0) ++e.stale;
          else ++e.misses;
        }
      } else if (std::strcmp(name, "fetch_remote") == 0) {
        if (find_arg(a0, a1, "v", &v)) ++row_fetches_[v];
        if (find_arg(a0, a1, "bytes", &v))
          samples_["fetch_bytes"].push_back(static_cast<double>(v));
      } else if (starts_with(name, "intersect")) {
        if (find_arg(a0, a1, "size", &v))
          samples_[name].push_back(static_cast<double>(v));
      }
      break;
    case 'C':
      // Counter series sample: fold the value into a distribution (e.g.
      // ring occupancy over time).
      if (a0.key != nullptr)
        samples_[name].push_back(static_cast<double>(a0.value));
      break;
    default:
      break;  // metadata / unknown phases carry no metrics
  }
}

void MetricsRegistry::ingest(const TraceCollector& c) {
  for (std::uint32_t r = 0; r < c.ranks(); ++r) {
    for (const TraceEvent& e : c.events(r)) {
      char ph = '?';
      switch (e.phase) {
        case EventPhase::Begin: ph = 'B'; break;
        case EventPhase::End: ph = 'E'; break;
        case EventPhase::Instant: ph = 'i'; break;
        case EventPhase::Complete: ph = 'X'; break;
        case EventPhase::Counter: ph = 'C'; break;
      }
      add_event(r, e.track, e.name, e.cat, ph, e.ts, e.dur, e.arg0, e.arg1);
    }
  }
}

void MetricsRegistry::ingest_chrome(const util::Json& doc) {
  const util::Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) return;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const util::Json& e = events->at(i);
    const util::Json* ph_j = e.find("ph");
    const util::Json* name_j = e.find("name");
    if (ph_j == nullptr || name_j == nullptr) continue;
    const std::string& ph = ph_j->as_string();
    if (ph.size() != 1 || ph[0] == 'M') continue;
    const util::Json* tid_j = e.find("tid");
    const auto tid =
        static_cast<std::uint32_t>(tid_j ? tid_j->as_number() : 0.0);
    const util::Json* cat_j = e.find("cat");
    const util::Json* ts_j = e.find("ts");
    const util::Json* dur_j = e.find("dur");
    // Up to two u64 args, in document order; "wall_s" is wall time, not data.
    TraceArg a0{};
    TraceArg a1{};
    if (const util::Json* args = e.find("args"); args && args->is_object()) {
      for (const auto& [key, value] : args->items()) {
        if (key == "wall_s" || !value.is_number()) continue;
        TraceArg a{key.c_str(), static_cast<std::uint64_t>(value.as_number())};
        if (a0.key == nullptr) a0 = a;
        else if (a1.key == nullptr) a1 = a;
      }
    }
    add_event(tid / 2, static_cast<std::uint8_t>(tid % 2),
              name_j->as_string().c_str(),
              cat_j ? cat_j->as_string().c_str() : "", ph[0],
              (ts_j ? ts_j->as_number() : 0.0) / 1e6,
              (dur_j ? dur_j->as_number() : 0.0) / 1e6, a0, a1);
  }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> MetricsRegistry::top_rows(
    std::size_t k) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(
      row_fetches_.begin(), row_fetches_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

namespace {

util::Json breakdown_json(
    const std::map<std::string, std::vector<double>>& m) {
  util::Json out = util::Json::object();
  for (const auto& [name, per_rank] : m) {
    double total = 0.0;
    util::Json ranks = util::Json::array();
    for (double s : per_rank) {
      total += s;
      ranks.push_back(s);
    }
    util::Json entry = util::Json::object();
    entry["seconds"] = total;
    entry["per_rank"] = std::move(ranks);
    out[name] = std::move(entry);
  }
  return out;
}

}  // namespace

util::Json MetricsRegistry::causes_json() const {
  return breakdown_json(cause_seconds_);
}

util::Json MetricsRegistry::to_json(std::size_t hist_bins,
                                    std::size_t top_k) const {
  util::Json out = util::Json::object();

  util::Json counters = util::Json::object();
  for (const auto& [name, n] : counters_) counters[name] = n;
  out["counters"] = std::move(counters);

  util::Json samples = util::Json::object();
  for (const auto& [name, vals] : samples_) {
    util::Json s = util::Json::object();
    s["n"] = vals.size();
    if (!vals.empty()) {
      s["p50"] = util::percentile(vals, 50.0);
      s["p90"] = util::percentile(vals, 90.0);
      s["p99"] = util::percentile(vals, 99.0);
      s["max"] = *std::max_element(vals.begin(), vals.end());
    }
    const util::LogHistogram h = util::log_histogram(vals, hist_bins);
    util::Json hist = util::Json::object();
    hist["lo"] = h.lo;
    hist["hi"] = h.hi;
    hist["underflow"] = h.underflow;
    hist["overflow"] = h.overflow;
    util::Json counts = util::Json::array();
    for (std::size_t c : h.counts) counts.push_back(c);
    hist["counts"] = std::move(counts);
    s["log_hist"] = std::move(hist);
    samples[name] = std::move(s);
  }
  out["samples"] = std::move(samples);

  out["causes"] = breakdown_json(cause_seconds_);
  out["categories"] = breakdown_json(cat_seconds_);
  out["spans"] = breakdown_json(span_seconds_);

  util::Json epochs = util::Json::array();
  for (const auto& [epoch, e] : cache_epochs_) {
    util::Json row = util::Json::object();
    row["epoch"] = epoch;
    row["hits"] = e.hits;
    row["misses"] = e.misses;
    row["stale"] = e.stale;
    row["hit_rate"] = e.hit_rate();
    epochs.push_back(std::move(row));
  }
  out["cache_epochs"] = std::move(epochs);

  util::Json rows = util::Json::array();
  for (const auto& [vertex, fetches] : top_rows(top_k)) {
    util::Json row = util::Json::object();
    row["v"] = vertex;
    row["fetches"] = fetches;
    rows.push_back(std::move(row));
  }
  out["top_rows"] = std::move(rows);

  return out;
}

}  // namespace atlc::obs
