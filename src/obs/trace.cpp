#include "atlc/obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <numeric>

#include "atlc/util/check.hpp"

namespace atlc::obs {

// ---------------------------------------------------------------------------
// Tracer

void Tracer::bind(TraceSink* sink, std::uint32_t rank, ClockFn clock,
                  const void* clock_obj) {
  ATLC_CHECK(sink != nullptr && clock != nullptr, "Tracer::bind: null sink");
  sink_ = sink;
  rank_ = rank;
  clock_ = clock;
  clock_obj_ = clock_obj;
  run_name_ = nullptr;
  span_stack_.clear();
}

void Tracer::unbind() {
  if (!sink_) return;
  flush_run();
  sink_ = nullptr;
  clock_ = nullptr;
  clock_obj_ = nullptr;
}

void Tracer::emit(const TraceEvent& e) {
  TraceEvent out = e;
  out.wall = sink_->wall_now();
  sink_->on_event(rank_, out);
}

void Tracer::flush_run() {
  if (!run_name_) return;
  TraceEvent e;
  e.name = run_name_;
  e.cat = run_cat_;
  e.phase = EventPhase::Complete;
  e.ts = run_start_;
  e.dur = run_end_ - run_start_;
  run_name_ = nullptr;
  emit(e);
}

void Tracer::begin(const char* name) {
  if (!sink_) return;
  flush_run();
  span_stack_.push_back(name);
  TraceEvent e;
  e.name = name;
  e.cat = "phase";
  e.phase = EventPhase::Begin;
  e.ts = clock_(clock_obj_);
  emit(e);
}

void Tracer::end(const char* name) {
  if (!sink_) return;
  flush_run();
  ATLC_CHECK(!span_stack_.empty(), "Tracer::end without a matching begin");
  ATLC_CHECK(std::strcmp(span_stack_.back(), name) == 0,
             "Tracer::end: span name does not match the innermost begin");
  span_stack_.pop_back();
  TraceEvent e;
  e.name = name;
  e.cat = "phase";
  e.phase = EventPhase::End;
  e.ts = clock_(clock_obj_);
  emit(e);
}

void Tracer::instant(const char* name, TraceArg a0, TraceArg a1) {
  if (!sink_) return;
  TraceEvent e;
  e.name = name;
  e.cat = "event";
  e.phase = EventPhase::Instant;
  e.ts = clock_(clock_obj_);
  e.arg0 = a0;
  e.arg1 = a1;
  emit(e);
}

void Tracer::counter(const char* name, const char* key, std::uint64_t value) {
  if (!sink_) return;
  TraceEvent e;
  e.name = name;
  e.cat = "counter";
  e.phase = EventPhase::Counter;
  e.ts = clock_(clock_obj_);
  e.arg0 = {key, value};
  emit(e);
}

void Tracer::charge(const char* cat, const char* name, double start,
                    double seconds) {
  if (!sink_) return;
  // Coalesce abutting same-cause charges: the engine alternates causes at
  // edge granularity, and the previous charge ended exactly where this one
  // starts whenever nothing else advanced the rank's clock in between.
  if (run_name_ != nullptr && run_end_ == start &&
      std::strcmp(run_name_, name) == 0) {
    run_end_ += seconds;
    return;
  }
  flush_run();
  run_cat_ = cat;
  run_name_ = name;
  run_start_ = start;
  run_end_ = start + seconds;
}

void Tracer::transfer(const char* name, double start, double done,
                      std::uint32_t target, std::uint64_t bytes) {
  if (!sink_) return;
  TraceEvent e;
  e.name = name;
  e.cat = "nic";
  e.phase = EventPhase::Complete;
  e.ts = start;
  e.dur = done - start;
  e.track = 1;
  e.arg0 = {"target", target};
  e.arg1 = {"bytes", bytes};
  emit(e);
}

// ---------------------------------------------------------------------------
// TraceCollector

void TraceCollector::prepare(std::uint32_t ranks) {
  if (buffers_.size() < ranks) buffers_.resize(ranks);
}

void TraceCollector::on_event(std::uint32_t rank, const TraceEvent& e) {
  ATLC_DCHECK(rank < buffers_.size(), "TraceCollector: rank not prepared");
  buffers_[rank].push_back(e);
}

double TraceCollector::wall_now() const {
  return capture_wall ? wall_.elapsed_s() : -1.0;
}

std::uint64_t TraceCollector::total_events() const {
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b.size();
  return n;
}

double TraceCollector::track_total(std::uint32_t rank, const char* cat) const {
  double total = 0.0;
  for (const TraceEvent& e : buffers_[rank])
    if (e.phase == EventPhase::Complete && e.track == 0 &&
        std::strcmp(e.cat, cat) == 0)
      total += e.dur;
  return total;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_kv(std::string& out, const char* key, const char* value) {
  out.push_back('"');
  out += key;
  out += "\":\"";
  append_escaped(out, value);
  out.push_back('"');
}

/// Timestamps are virtual seconds; Chrome wants microseconds. Fixed-point
/// formatting keeps the mapping monotone (equal or increasing input never
/// formats as a decrease), which check_trace.py validates per track.
void append_us(std::string& out, double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds * 1e6);
  out += buf;
}

const char* phase_str(EventPhase ph) {
  switch (ph) {
    case EventPhase::Begin: return "B";
    case EventPhase::End: return "E";
    case EventPhase::Instant: return "i";
    case EventPhase::Complete: return "X";
    case EventPhase::Counter: return "C";
  }
  return "?";
}

void append_event(std::string& out, const TraceEvent& e, std::uint32_t tid) {
  out += "{";
  append_kv(out, "name", e.name);
  out += ",";
  append_kv(out, "cat", e.cat);
  out += ",";
  append_kv(out, "ph", phase_str(e.phase));
  out += ",\"pid\":0,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_us(out, e.ts);
  if (e.phase == EventPhase::Complete) {
    out += ",\"dur\":";
    append_us(out, e.dur);
  }
  if (e.phase == EventPhase::Instant) out += ",\"s\":\"t\"";
  const bool has_args =
      e.arg0.key != nullptr || e.arg1.key != nullptr || e.wall >= 0.0;
  if (has_args) {
    out += ",\"args\":{";
    bool first = true;
    for (const TraceArg* a : {&e.arg0, &e.arg1}) {
      if (!a->key) continue;
      if (!first) out += ",";
      first = false;
      out.push_back('"');
      append_escaped(out, a->key);
      out += "\":";
      out += std::to_string(a->value);
    }
    if (e.wall >= 0.0) {
      if (!first) out += ",";
      char buf[48];
      std::snprintf(buf, sizeof(buf), "\"wall_s\":%.9f", e.wall);
      out += buf;
    }
    out += "}";
  }
  out += "}";
}

void append_thread_name(std::string& out, std::uint32_t tid,
                        const std::string& name) {
  out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{\"name\":\"";
  out += name;  // generated names only; nothing to escape
  out += "\"}}";
}

}  // namespace

std::string TraceCollector::chrome_trace_string() const {
  std::string out;
  out.reserve(256 + total_events() * 96);
  out += "{\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"atlc virtual-time trace\"}}";
  for (std::uint32_t r = 0; r < ranks(); ++r) {
    out += ",\n";
    append_thread_name(out, 2 * r, "rank " + std::to_string(r));
    out += ",\n";
    append_thread_name(out, 2 * r + 1, "rank " + std::to_string(r) + " nic");
  }
  for (std::uint32_t r = 0; r < ranks(); ++r) {
    const auto& buf = buffers_[r];
    for (std::uint8_t track = 0; track < 2; ++track) {
      // Coalesced charge events are emitted when their run CLOSES, i.e.
      // after later-timestamped instants; a per-track stable sort restores
      // timestamp order (stable: emission order breaks ts ties, which keeps
      // B before E at equal timestamps).
      std::vector<std::uint32_t> idx;
      idx.reserve(buf.size());
      for (std::uint32_t i = 0; i < buf.size(); ++i)
        if (buf[i].track == track) idx.push_back(i);
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return buf[a].ts < buf[b].ts;
                       });
      for (const std::uint32_t i : idx) {
        out += ",\n";
        append_event(out, buf[i], 2 * r + track);
      }
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceCollector::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = chrome_trace_string();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace atlc::obs
