#include "atlc/core/lcc.hpp"

#include <span>
#include <vector>

#include "atlc/graph/reference.hpp"
#include "atlc/intersect/intersect.hpp"
#include "atlc/util/check.hpp"

namespace atlc::core {

namespace {

/// The LCC/TC edge kernel (paper Algorithm 3 inner loop): intersect adj(v)
/// with the fetched adj(j), optionally restricted to the upper triangle,
/// charge the intersection's modeled cost, and accumulate t(v).
auto lcc_kernel(rma::RankCtx& ctx, const EngineConfig& config,
                std::vector<std::uint64_t>& triangles) {
  return [&ctx, &config, &triangles](VertexId lv, VertexId j,
                                     std::span<const VertexId> adj_v,
                                     std::span<const VertexId> adj_j) {
    auto lhs = adj_v;
    auto rhs = adj_j;
    if (config.upper_triangle_only) {
      lhs = intersect::suffix_above(lhs, j);
      rhs = intersect::suffix_above(rhs, j);
    }
    const std::uint64_t common =
        config.parallel_intersect
            ? intersect::count_common_parallel(lhs, rhs, config.method,
                                               config.parallel)
            : intersect::count_common(lhs, rhs, config.method);
    ctx.charge_compute(config.cost.seconds(config.method, lhs.size(),
                                           rhs.size()));
    triangles[lv] += common;
  };
}

}  // namespace

RankResult compute_lcc_rank(rma::RankCtx& ctx, const DistGraph& dg,
                            const EngineConfig& config,
                            EdgePipeline& pipeline) {
  const VertexId n_local = dg.num_local();

  RankResult r;
  r.triangles.assign(n_local, 0);
  r.lcc.assign(n_local, 0.0);

  pipeline.run(lcc_kernel(ctx, config, r.triangles));

  for (VertexId v = 0; v < n_local; ++v)
    r.lcc[v] = graph::lcc_score(r.triangles[v], dg.local_degree(v));
  return r;
}

RankResult compute_lcc_rank(rma::RankCtx& ctx, const DistGraph& dg,
                            const EngineConfig& config) {
  EdgePipeline pipeline(ctx, dg, config);
  RankResult r = compute_lcc_rank(ctx, dg, config, pipeline);

  PipelineRankStats ps = pipeline.harvest();
  r.edges_processed = ps.edges_processed;
  r.remote_edges = ps.remote_edges;
  r.offsets_cache = ps.offsets_cache;
  r.adj_cache = ps.adj_cache;
  r.remote_reads = std::move(ps.remote_reads);
  r.adj_cache_entries = std::move(ps.adj_cache_entries);
  return r;
}

namespace {

RunResult run_engine(const CSRGraph& g, std::uint32_t ranks,
                     const EngineConfig& config, const rma::NetworkModel& net,
                     graph::PartitionKind partition_kind) {
  RunResult out;
  out.triangles.assign(g.num_vertices(), 0);
  out.lcc.assign(g.num_vertices(), 0.0);

  static_cast<EdgeAnalyticStats&>(out) = run_edge_analytic(
      g, ranks, config, net, partition_kind,
      [&](rma::RankCtx& ctx, const DistGraph& dg, EdgePipeline& pipeline) {
        const RankResult rr = compute_lcc_rank(ctx, dg, config, pipeline);
        // Scatter per-vertex results into the global arrays. Ranks own
        // disjoint vertex sets, so no synchronisation is needed.
        for (VertexId lv = 0; lv < dg.num_local(); ++lv) {
          const VertexId v = dg.partition.global_id(ctx.rank(), lv);
          out.triangles[v] = rr.triangles[lv];
          out.lcc[v] = rr.lcc[lv];
        }
      });

  std::uint64_t sum = 0;
  for (auto t : out.triangles) sum += t;
  if (config.upper_triangle_only) {
    // Each undirected triangle is counted once per vertex => /3.
    out.global_triangles =
        g.directedness() == Directedness::Undirected ? sum / 3 : sum;
  } else {
    // Each undirected triangle is counted twice per vertex => /6; for
    // directed graphs the edge-centric sum counts transitive triads once.
    out.global_triangles =
        g.directedness() == Directedness::Undirected ? sum / 6 : sum;
  }
  return out;
}

}  // namespace

RunResult run_distributed_lcc(const CSRGraph& g, std::uint32_t ranks,
                              const EngineConfig& config,
                              const rma::NetworkModel& net,
                              graph::PartitionKind partition) {
  ATLC_CHECK(!config.upper_triangle_only,
             "LCC needs full per-vertex counts; use run_distributed_tc for "
             "upper-triangle counting");
  return run_engine(g, ranks, config, net, partition);
}

std::uint64_t run_distributed_tc(const CSRGraph& g, std::uint32_t ranks,
                                 EngineConfig config,
                                 const rma::NetworkModel& net,
                                 graph::PartitionKind partition) {
  // Upper-triangle de-duplication only applies to undirected graphs (the
  // paper's Section II-C optimisation); directed transitive triads need the
  // full scan.
  config.upper_triangle_only = g.directedness() == Directedness::Undirected;
  return run_engine(g, ranks, config, net, partition).global_triangles;
}

}  // namespace atlc::core
