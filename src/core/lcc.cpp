#include "atlc/core/lcc.hpp"

#include <optional>
#include <span>
#include <vector>

#include "atlc/graph/dodg.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/intersect/intersect.hpp"
#include "atlc/intersect/tiered.hpp"
#include "atlc/util/check.hpp"

namespace atlc::core {

namespace {

/// Trace event name of a tiered intersect invocation (per-tier instants let
/// atlc_trace histogram intersection sizes per kernel).
const char* intersect_event_name(intersect::TierKernel k) {
  switch (k) {
    case intersect::TierKernel::Bitmap: return "intersect_bitmap";
    case intersect::TierKernel::Gallop: return "intersect_gallop";
    case intersect::TierKernel::MergeVec: return "intersect_merge";
  }
  return "intersect";
}

/// The LCC/TC edge kernel (paper Algorithm 3 inner loop): intersect adj(v)
/// with the fetched adj(j), optionally restricted to the upper triangle,
/// charge the intersection's modeled cost, and accumulate t(v). When
/// `tiered` is non-null the Tiered kernel generation serves the
/// intersection instead of the paper's scalar family — same counts, tiered
/// pricing. The local adj(v) is always the bitmap (reusable) side: it is
/// stable for the whole run, unlike the ring-slot-backed adj_j.
auto lcc_kernel(rma::RankCtx& ctx, const EngineConfig& config,
                std::vector<std::uint64_t>& triangles,
                intersect::TieredIntersector* tiered) {
  return [&ctx, &config, &triangles, tiered](VertexId lv, VertexId j,
                                             std::span<const VertexId> adj_v,
                                             std::span<const VertexId> adj_j) {
    auto lhs = adj_v;
    auto rhs = adj_j;
    if (config.upper_triangle_only) {
      lhs = intersect::suffix_above(lhs, j);
      rhs = intersect::suffix_above(rhs, j);
    }
    std::uint64_t common;
    if (tiered != nullptr) {
      const auto out = tiered->intersect(lhs, rhs);
      common = out.common;
      if (ctx.tracer().enabled())
        ctx.tracer().instant(intersect_event_name(out.kernel),
                             {"size", lhs.size() + rhs.size()});
      ctx.charge_compute(out.seconds);
    } else {
      common = config.parallel_intersect
                   ? intersect::count_common_parallel(lhs, rhs, config.method,
                                                      config.parallel)
                   : intersect::count_common(lhs, rhs, config.method);
      if (ctx.tracer().enabled())
        ctx.tracer().instant("intersect", {"size", lhs.size() + rhs.size()});
      ctx.charge_compute(config.cost.seconds(config.method, lhs.size(),
                                             rhs.size()));
    }
    triangles[lv] += common;
  };
}

/// The segment-kernel twin of lcc_kernel for Grid2D runs: one invocation
/// per (local edge, column block), accumulating the block-partial
/// |seg(v,b) ∩ seg(j,b)| into t(v). Summed over blocks this reproduces the
/// whole-row count exactly (the blocks partition the neighbor id range, and
/// suffix_above distributes over that partition). Both spans may be
/// ring-slot-backed, so the tiered path must use intersect_transient —
/// span-identity bitmap reuse would serve a stale bitmap once a slot is
/// recycled.
auto lcc_segment_kernel(rma::RankCtx& ctx, const EngineConfig& config,
                        std::vector<std::uint64_t>& triangles,
                        intersect::TieredIntersector* tiered) {
  return [&ctx, &config, &triangles, tiered](
             VertexId lv, VertexId j, std::uint32_t /*block*/,
             std::span<const VertexId> seg_v, std::span<const VertexId> seg_j) {
    auto lhs = seg_v;
    auto rhs = seg_j;
    if (config.upper_triangle_only) {
      lhs = intersect::suffix_above(lhs, j);
      rhs = intersect::suffix_above(rhs, j);
    }
    std::uint64_t common;
    if (tiered != nullptr) {
      const auto out = tiered->intersect_transient(lhs, rhs);
      common = out.common;
      if (ctx.tracer().enabled())
        ctx.tracer().instant(intersect_event_name(out.kernel),
                             {"size", lhs.size() + rhs.size()});
      ctx.charge_compute(out.seconds);
    } else {
      common = config.parallel_intersect
                   ? intersect::count_common_parallel(lhs, rhs, config.method,
                                                      config.parallel)
                   : intersect::count_common(lhs, rhs, config.method);
      if (ctx.tracer().enabled())
        ctx.tracer().instant("intersect", {"size", lhs.size() + rhs.size()});
      ctx.charge_compute(config.cost.seconds(config.method, lhs.size(),
                                             rhs.size()));
    }
    triangles[lv] += common;
  };
}

}  // namespace

RankResult compute_lcc_rank(rma::RankCtx& ctx, const DistGraph& dg,
                            const EngineConfig& config,
                            EdgePipeline& pipeline) {
  ATLC_CHECK(dg.partition.col_blocks() == 1,
             "compute_lcc_rank is the whole-row (1D) path; Grid2D runs go "
             "through run_distributed_lcc/tc, which reduce block partials "
             "across the grid row");
  const VertexId n_local = dg.num_local();

  RankResult r;
  r.triangles.assign(n_local, 0);
  r.lcc.assign(n_local, 0.0);

  std::optional<intersect::TieredIntersector> tiered;
  if (config.intersect_tier == intersect::Tier::Tiered)
    tiered.emplace(config.tier_policy, config.cost,
                   dg.partition.num_vertices());
  pipeline.run(
      lcc_kernel(ctx, config, r.triangles, tiered ? &*tiered : nullptr));

  for (VertexId v = 0; v < n_local; ++v)
    r.lcc[v] = graph::lcc_score(r.triangles[v], dg.local_degree(v));
  return r;
}

RankResult compute_lcc_rank(rma::RankCtx& ctx, const DistGraph& dg,
                            const EngineConfig& config) {
  EdgePipeline pipeline(ctx, dg, config);
  RankResult r = compute_lcc_rank(ctx, dg, config, pipeline);

  PipelineRankStats ps = pipeline.harvest();
  r.edges_processed = ps.edges_processed;
  r.remote_edges = ps.remote_edges;
  r.offsets_cache = ps.offsets_cache;
  r.adj_cache = ps.adj_cache;
  r.remote_reads = std::move(ps.remote_reads);
  r.adj_cache_entries = std::move(ps.adj_cache_entries);
  return r;
}

namespace {

RunResult run_engine(const CSRGraph& g, std::uint32_t ranks,
                     const EngineConfig& config, const rma::NetworkModel& net,
                     graph::PartitionKind partition_kind) {
  RunResult out;
  out.triangles.assign(g.num_vertices(), 0);
  out.lcc.assign(g.num_vertices(), 0.0);

  // Under Grid2D the pc ranks of a grid row produce block partials for the
  // SAME vertices, so they cannot scatter straight into the shared output
  // the way disjoint 1D owners do. Each rank accumulates into its own
  // partial vector; the driver reduces them after the SPMD region.
  const bool grid = partition_kind == graph::PartitionKind::Grid2D;
  std::vector<std::vector<std::uint64_t>> grid_partials(grid ? ranks : 0);

  static_cast<EdgeAnalyticStats&>(out) = run_edge_analytic(
      g, ranks, config, net, partition_kind,
      [&](rma::RankCtx& ctx, const DistGraph& dg, EdgePipeline& pipeline) {
        if (grid) {
          auto& tri = grid_partials[ctx.rank()];
          tri.assign(dg.num_local(), 0);
          std::optional<intersect::TieredIntersector> tiered;
          if (config.intersect_tier == intersect::Tier::Tiered)
            tiered.emplace(config.tier_policy, config.cost,
                           dg.partition.num_vertices());
          pipeline.run_segments(lcc_segment_kernel(
              ctx, config, tri, tiered ? &*tiered : nullptr));
          return;
        }
        const RankResult rr = compute_lcc_rank(ctx, dg, config, pipeline);
        // Scatter per-vertex results into the global arrays. Ranks own
        // disjoint vertex sets, so no synchronisation is needed.
        for (VertexId lv = 0; lv < dg.num_local(); ++lv) {
          const VertexId v = dg.partition.global_id(ctx.rank(), lv);
          out.triangles[v] = rr.triangles[lv];
          out.lcc[v] = rr.lcc[lv];
        }
      });

  if (grid) {
    // Reduce block partials across each grid row: every rank of row r holds
    // a partial t(v) for every vertex of row block r; their sum is the
    // whole-row count. LCC denominators come from the global graph — the
    // full degree, which no single segment store can see.
    const Partition part = graph::make_partition(g, partition_kind, ranks);
    for (std::uint32_t r = 0; r < ranks; ++r)
      for (VertexId lv = 0; lv < static_cast<VertexId>(grid_partials[r].size());
           ++lv)
        out.triangles[part.global_id(r, lv)] += grid_partials[r][lv];
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      out.lcc[v] = graph::lcc_score(out.triangles[v], g.degree(v));
  }

  std::uint64_t sum = 0;
  for (auto t : out.triangles) sum += t;
  if (config.upper_triangle_only) {
    // Each undirected triangle is counted once per vertex => /3.
    out.global_triangles =
        g.directedness() == Directedness::Undirected ? sum / 3 : sum;
  } else {
    // Each undirected triangle is counted twice per vertex => /6; for
    // directed graphs the edge-centric sum counts transitive triads once.
    out.global_triangles =
        g.directedness() == Directedness::Undirected ? sum / 6 : sum;
  }
  return out;
}

}  // namespace

RunResult run_distributed_lcc(const CSRGraph& g, std::uint32_t ranks,
                              const EngineConfig& config,
                              const rma::NetworkModel& net,
                              graph::PartitionKind partition) {
  ATLC_CHECK(!config.upper_triangle_only,
             "LCC needs full per-vertex counts; use run_distributed_tc for "
             "upper-triangle counting");
  ATLC_CHECK(!config.orient_dodg,
             "LCC needs full undirected neighborhoods; orient_dodg is a "
             "run_distributed_tc optimisation");
  return run_engine(g, ranks, config, net, partition);
}

RunResult run_distributed_tc_result(const CSRGraph& g, std::uint32_t ranks,
                                    EngineConfig config,
                                    const rma::NetworkModel& net,
                                    graph::PartitionKind partition) {
  if (config.orient_dodg && g.directedness() == Directedness::Undirected) {
    // DODG path: each triangle appears exactly once as a common
    // out-neighbor of its (deg, id)-least edge, so the engine runs over the
    // oriented graph with NO per-edge suffix trimming and the raw t(v) sum
    // IS the distinct-triangle count (run_engine's directed branch).
    // Orientation is preprocessing, priced like partitioning: outside the
    // ranks' virtual clocks (DESIGN.md §9).
    const CSRGraph oriented = graph::orient_dodg(g);
    config.upper_triangle_only = false;
    return run_engine(oriented, ranks, config, net, partition);
  }
  // Paper path: upper-triangle de-duplication only applies to undirected
  // graphs (Section II-C); directed transitive triads need the full scan.
  config.upper_triangle_only = g.directedness() == Directedness::Undirected;
  return run_engine(g, ranks, config, net, partition);
}

std::uint64_t run_distributed_tc(const CSRGraph& g, std::uint32_t ranks,
                                 EngineConfig config,
                                 const rma::NetworkModel& net,
                                 graph::PartitionKind partition) {
  return run_distributed_tc_result(g, ranks, std::move(config), net, partition)
      .global_triangles;
}

}  // namespace atlc::core
