#include "atlc/core/lcc.hpp"

#include <algorithm>

#include "atlc/core/fetcher.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/util/check.hpp"

namespace atlc::core {

CacheSizing CacheSizing::paper_default(VertexId num_vertices,
                                       std::uint64_t total_budget_bytes) {
  // Paper Section IV-D2: of the total cache budget, C_offsets gets enough
  // space for 0.4*|V| entries (each a (start, end) pair) and C_adj the rest.
  CacheSizing s;
  const std::uint64_t offsets_entries =
      std::max<std::uint64_t>(16, static_cast<std::uint64_t>(
                                      0.4 * static_cast<double>(num_vertices)));
  s.offsets_bytes = offsets_entries * 2 * sizeof(EdgeIndex);
  if (s.offsets_bytes > total_budget_bytes / 2)
    s.offsets_bytes = total_budget_bytes / 2;
  s.adj_bytes = std::max<std::uint64_t>(1024, total_budget_bytes - s.offsets_bytes);
  return s;
}

RankResult compute_lcc_rank(rma::RankCtx& ctx, const DistGraph& dg,
                            const EngineConfig& config) {
  const VertexId n_local = dg.num_local();
  const EdgeIndex m_local = dg.adjacencies.size();

  RankResult r;
  r.triangles.assign(n_local, 0);
  r.lcc.assign(n_local, 0.0);
  r.edges_processed = m_local;

  AdjacencyFetcher fetcher(ctx, dg, config);

  // Paper Algorithm 3 with a one-deep pipeline over the flattened edge
  // stream: finish the fetch for edge e_i, immediately start the fetch for
  // e_{i+1}, then intersect for e_i — the e_{i+1} transfer rides under the
  // intersection in virtual time (Section III-A double buffering).
  AdjacencyFetcher::Token current;
  bool have_current = false;
  if (config.double_buffer && m_local > 0) {
    current = fetcher.begin(dg.adjacencies[0]);
    have_current = true;
  }

  VertexId lv = 0;
  for (EdgeIndex ei = 0; ei < m_local; ++ei) {
    while (dg.offsets[lv + 1] <= ei) ++lv;
    const VertexId j = dg.adjacencies[ei];

    if (!have_current) current = fetcher.begin(j);
    const auto adj_j = fetcher.finish(current);
    have_current = false;
    if (config.double_buffer && ei + 1 < m_local) {
      current = fetcher.begin(dg.adjacencies[ei + 1]);
      have_current = true;
    }

    auto adj_v = dg.local_neighbors(lv);
    auto rhs = adj_j;
    if (config.upper_triangle_only) {
      adj_v = intersect::suffix_above(adj_v, j);
      rhs = intersect::suffix_above(rhs, j);
    }
    const std::uint64_t common =
        config.parallel_intersect
            ? intersect::count_common_parallel(adj_v, rhs, config.method,
                                               config.parallel)
            : intersect::count_common(adj_v, rhs, config.method);
    ctx.charge_compute(config.cost.seconds(config.method, adj_v.size(),
                                           rhs.size()));
    r.triangles[lv] += common;
  }

  for (VertexId v = 0; v < n_local; ++v)
    r.lcc[v] = graph::lcc_score(r.triangles[v], dg.local_degree(v));

  r.remote_edges = fetcher.remote_fetches();
  if (fetcher.has_offsets_cache())
    r.offsets_cache = fetcher.offsets_cache().stats();
  if (fetcher.has_adj_cache()) {
    r.adj_cache = fetcher.adj_cache().stats();
    if (config.dump_cache_entries)
      r.adj_cache_entries = fetcher.adj_cache().entries();
  }
  if (config.track_remote_reads) r.remote_reads = fetcher.remote_reads();
  return r;
}

namespace {

RunResult run_engine(const CSRGraph& g, std::uint32_t ranks,
                     const EngineConfig& config, const rma::NetworkModel& net,
                     graph::PartitionKind partition_kind) {
  const Partition partition(partition_kind, g.num_vertices(), ranks);

  RunResult out;
  out.triangles.assign(g.num_vertices(), 0);
  out.lcc.assign(g.num_vertices(), 0.0);
  if (config.track_remote_reads)
    out.remote_reads.assign(g.num_vertices(), 0);

  std::vector<RankResult> rank_results(ranks);

  rma::Runtime::Options opts;
  opts.ranks = ranks;
  opts.net = net;
  out.run = rma::Runtime::run(opts, [&](rma::RankCtx& ctx) {
    const DistGraph dg = build_dist_graph(ctx, g, partition);
    RankResult rr = compute_lcc_rank(ctx, dg, config);
    // Scatter per-vertex results into the global arrays. Ranks own disjoint
    // vertex sets, so no synchronisation is needed.
    for (VertexId lvx = 0; lvx < dg.num_local(); ++lvx) {
      const VertexId v = partition.global_id(ctx.rank(), lvx);
      out.triangles[v] = rr.triangles[lvx];
      out.lcc[v] = rr.lcc[lvx];
    }
    rank_results[ctx.rank()] = std::move(rr);
    ctx.barrier();  // end-of-epoch synchronisation (teardown only)
  });

  for (const auto& rr : rank_results) {
    out.edges_processed += rr.edges_processed;
    out.remote_edges += rr.remote_edges;
    out.offsets_cache_total += rr.offsets_cache;
    out.adj_cache_total += rr.adj_cache;
    if (!rr.remote_reads.empty())
      for (std::size_t v = 0; v < rr.remote_reads.size(); ++v)
        out.remote_reads[v] += rr.remote_reads[v];
    out.adj_cache_entries.insert(out.adj_cache_entries.end(),
                                 rr.adj_cache_entries.begin(),
                                 rr.adj_cache_entries.end());
  }

  std::uint64_t sum = 0;
  for (auto t : out.triangles) sum += t;
  if (config.upper_triangle_only) {
    // Each undirected triangle is counted once per vertex => /3.
    out.global_triangles =
        g.directedness() == Directedness::Undirected ? sum / 3 : sum;
  } else {
    // Each undirected triangle is counted twice per vertex => /6; for
    // directed graphs the edge-centric sum counts transitive triads once.
    out.global_triangles =
        g.directedness() == Directedness::Undirected ? sum / 6 : sum;
  }
  return out;
}

}  // namespace

RunResult run_distributed_lcc(const CSRGraph& g, std::uint32_t ranks,
                              const EngineConfig& config,
                              const rma::NetworkModel& net,
                              graph::PartitionKind partition) {
  ATLC_CHECK(!config.upper_triangle_only,
             "LCC needs full per-vertex counts; use run_distributed_tc for "
             "upper-triangle counting");
  return run_engine(g, ranks, config, net, partition);
}

std::uint64_t run_distributed_tc(const CSRGraph& g, std::uint32_t ranks,
                                 EngineConfig config,
                                 const rma::NetworkModel& net) {
  // Upper-triangle de-duplication only applies to undirected graphs (the
  // paper's Section II-C optimisation); directed transitive triads need the
  // full scan.
  config.upper_triangle_only = g.directedness() == Directedness::Undirected;
  return run_engine(g, ranks, config, net, graph::PartitionKind::Block1D)
      .global_triangles;
}

}  // namespace atlc::core
