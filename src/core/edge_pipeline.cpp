#include "atlc/core/edge_pipeline.hpp"

#include <algorithm>

namespace atlc::core {

CacheSizing CacheSizing::paper_default(VertexId num_vertices,
                                       std::uint64_t total_budget_bytes) {
  // Paper Section IV-D2: of the total cache budget, C_offsets gets enough
  // space for 0.4*|V| entries (each a (start, end) pair) and C_adj the rest.
  CacheSizing s;
  const std::uint64_t offsets_entries =
      std::max<std::uint64_t>(16, static_cast<std::uint64_t>(
                                      0.4 * static_cast<double>(num_vertices)));
  s.offsets_bytes = offsets_entries * 2 * sizeof(graph::EdgeIndex);
  if (s.offsets_bytes > total_budget_bytes / 2)
    s.offsets_bytes = total_budget_bytes / 2;
  s.adj_bytes = std::max<std::uint64_t>(1024, total_budget_bytes - s.offsets_bytes);
  return s;
}

PipelineRankStats EdgePipeline::harvest() {
  PipelineRankStats ps;
  ps.edges_processed = edges_run_;
  ps.remote_edges = fetcher_.remote_fetches();
  if (fetcher_.has_offsets_cache())
    ps.offsets_cache = fetcher_.offsets_cache().stats();
  if (fetcher_.has_adj_cache()) {
    ps.adj_cache = fetcher_.adj_cache().stats();
    if (config_->dump_cache_entries)
      ps.adj_cache_entries = fetcher_.adj_cache().entries();
  }
  if (config_->track_remote_reads) ps.remote_reads = fetcher_.remote_reads();
  return ps;
}

double EdgeAnalyticStats::imbalance() const {
  if (busy_clocks.empty()) return 1.0;
  double mx = 0.0, sum = 0.0;
  for (const double c : busy_clocks) {
    mx = std::max(mx, c);
    sum += c;
  }
  if (sum <= 0.0) return 1.0;
  return mx / (sum / static_cast<double>(busy_clocks.size()));
}

void EdgeAnalyticStats::absorb(PipelineRankStats&& rank) {
  edges_processed += rank.edges_processed;
  remote_edges += rank.remote_edges;
  busy_clocks.push_back(rank.busy_seconds);
  offsets_cache_total += rank.offsets_cache;
  adj_cache_total += rank.adj_cache;
  offsets_cache_ranks.push_back(rank.offsets_cache);
  adj_cache_ranks.push_back(rank.adj_cache);
  if (!rank.remote_reads.empty()) {
    if (remote_reads.size() < rank.remote_reads.size())
      remote_reads.resize(rank.remote_reads.size(), 0);
    for (std::size_t v = 0; v < rank.remote_reads.size(); ++v)
      remote_reads[v] += rank.remote_reads[v];
  }
  adj_cache_entries.insert(adj_cache_entries.end(),
                           std::make_move_iterator(rank.adj_cache_entries.begin()),
                           std::make_move_iterator(rank.adj_cache_entries.end()));
}

}  // namespace atlc::core
