#include "atlc/core/fetcher.hpp"

#include <algorithm>

#include "atlc/util/check.hpp"

namespace atlc::core {

namespace {

clampi::CacheConfig offsets_cache_config(const EngineConfig& cfg) {
  clampi::CacheConfig c;
  c.buffer_bytes = cfg.cache_sizing.offsets_bytes;
  // C_offsets entries are fixed-size (start,end) pairs (paper Obs. 3.2).
  c.hash_slots =
      cfg.cache_sizing.offsets_slots
          ? cfg.cache_sizing.offsets_slots
          : clampi::Cache::suggest_hash_slots_fixed(c.buffer_bytes,
                                                    2 * sizeof(EdgeIndex));
  c.mode = clampi::Mode::AlwaysCache;  // graph is immutable during compute
  c.policy = clampi::VictimPolicy::LruPositional;
  c.adaptive = cfg.cache_adaptive;
  return c;
}

clampi::CacheConfig adj_cache_config(const EngineConfig& cfg,
                                     const DistGraph& dg) {
  clampi::CacheConfig c;
  c.buffer_bytes = cfg.cache_sizing.adj_bytes;
  if (cfg.cache_sizing.adj_slots) {
    c.hash_slots = cfg.cache_sizing.adj_slots;
  } else {
    // Paper Section III-B1: under a power-law degree distribution, a cache
    // holding fraction f of the graph holds ~ n * f^2 entries. Estimate the
    // total adjacency volume from this rank's slice (1D parts are
    // approximately equal in vertices, roughly so in edges).
    const double total_adj_bytes =
        static_cast<double>(dg.adjacencies.size()) * sizeof(VertexId) *
        static_cast<double>(dg.partition.num_ranks());
    const double fraction =
        total_adj_bytes > 0
            ? static_cast<double>(c.buffer_bytes) / total_adj_bytes
            : 1.0;
    const std::size_t heuristic = clampi::Cache::suggest_hash_slots_power_law(
        dg.partition.num_vertices(), fraction);
    // Floor at 4x the buffer's entry capacity (slots cost 4 bytes each;
    // conflict evictions cost residency). This is what CLaMPI's adaptive
    // resizing converges to — starting there skips its flush-on-resize.
    const double avg_entry_bytes =
        dg.num_local() > 0
            ? std::max(8.0, static_cast<double>(dg.adjacencies.size()) *
                                sizeof(VertexId) /
                                static_cast<double>(dg.num_local()))
            : 64.0;
    const auto capacity_entries = static_cast<std::size_t>(
        static_cast<double>(c.buffer_bytes) / avg_entry_bytes);
    c.hash_slots = std::max(heuristic, 4 * std::max<std::size_t>(
                                               16, capacity_entries));
  }
  c.mode = clampi::Mode::AlwaysCache;
  c.policy = cfg.victim_policy;
  c.adaptive = cfg.cache_adaptive;
  return c;
}

}  // namespace

namespace {

// One in-flight fetch per pipeline item on 1D partitions (the local side
// is a plain span); two on 2D partitions, where both segment sides of an
// (edge, block) item may be remote.
std::size_t ring_slots(const EngineConfig& config, const DistGraph& dg) {
  return config.effective_pipeline_depth() *
         (dg.partition.col_blocks() > 1 ? 2 : 1);
}

}  // namespace

AdjacencyFetcher::AdjacencyFetcher(rma::RankCtx& ctx, const DistGraph& dg,
                                   const EngineConfig& config)
    : ctx_(&ctx),
      dg_(&dg),
      config_(&config),
      buffers_(ring_slots(config, dg)),
      generations_(ring_slots(config, dg), 0) {
  if (config.use_cache && config.cache_offsets)
    c_offsets_.emplace(ctx, dg.w_offsets, offsets_cache_config(config));
  if (config.use_cache && config.cache_adj)
    c_adj_.emplace(ctx, dg.w_adj, adj_cache_config(config, dg));
  if (config.track_remote_reads)
    remote_reads_.assign(dg.partition.num_vertices(), 0);
}

AdjacencyFetcher::Token AdjacencyFetcher::begin(VertexId v) {
  ATLC_DCHECK(dg_->partition.col_blocks() == 1,
              "whole-row begin(v) on a 2D partition: use "
              "begin(v, col_block) (segments are the unit of fetch)");
  return begin(v, 0);
}

AdjacencyFetcher::Token AdjacencyFetcher::begin(VertexId v,
                                                std::uint32_t col_block) {
  const auto& part = dg_->partition;
  const bool segmented = part.col_blocks() > 1;
  const auto owner = part.segment_owner(v, col_block);
  const VertexId lv = part.local_index(v);

  Token t;
  if (owner == ctx_->rank()) {
    t.local = true;
    t.local_span = dg_->local_neighbors(lv);
    t.degree = static_cast<VertexId>(t.local_span.size());
    return t;
  }

  // Hub fast path (DESIGN.md §8): replicated rows resolve like local ones —
  // no window get, no cache probe, no ring slot — and are tallied so
  // benches can report the RMA traffic the replication removed. The replica
  // stores full rows; under a 2D partition the requested segment is served
  // by slicing the (sorted) row to the column block's id range.
  if (!dg_->hubs.empty()) {
    if (const std::size_t slot = dg_->hubs.find(v);
        slot != graph::HubReplica::npos) {
      t.local = true;
      auto row = dg_->hubs.neighbors_at(slot);
      if (segmented) {
        const auto [lo, hi] = part.col_block_range(col_block);
        const auto* seg_lo = std::lower_bound(row.data(),
                                              row.data() + row.size(), lo);
        const auto* seg_hi =
            std::lower_bound(seg_lo, row.data() + row.size(), hi);
        row = {seg_lo, seg_hi};
      }
      t.local_span = row;
      t.degree = static_cast<VertexId>(t.local_span.size());
      ++ctx_->stats().hub_local_hits;
      ctx_->tracer().instant("hub_hit", {"v", v});
      return t;
    }
  }

  ++remote_fetches_;
  if (segmented) ++ctx_->stats().segment_gets;
  if (!remote_reads_.empty()) ++remote_reads_[v];

  // Step 1 (synchronous): (start, end) of the adjacency list. "The first
  // MPI_Get reads the offset of the adjacency list" (paper Fig. 3 step 4).
  EdgeIndex span[2];
  if (c_offsets_) {
    c_offsets_->get(owner, lv, 2, span);
  } else {
    ctx_->flush(dg_->w_offsets.get(owner, lv, 2, span));
  }
  ATLC_CHECK(span[1] >= span[0], "corrupt remote offsets");
  t.count = span[1] - span[0];
  t.degree = static_cast<VertexId>(t.count);
  ctx_->tracer().instant("fetch_remote", {"v", v},
                         {"bytes", t.count * sizeof(VertexId)});
  if (t.count == 0) {
    // Out-degree-0 vertices exist in directed graphs (they survive
    // cleaning via their in-degree); there is no adjacency to transfer.
    t.local = true;
    t.local_span = {};
    return t;
  }

  // Step 2 (overlappable): the adjacency list itself. The out-degree just
  // learned becomes the application-defined eviction score (Section III-B2).
  // Claiming the slot recycles it: any span still aliasing it is dead, and
  // the bumped generation makes a late finish() on it abort in debug builds.
  t.slot = next_slot_;
  next_slot_ = (next_slot_ + 1) % buffers_.size();
  t.generation = ++generations_[t.slot];
  // Ring occupancy series: transfers currently claimed but not finish()ed.
  // Sustained occupancy at ring_size() means the prefetch depth (not the
  // kernel) is the bottleneck.
  if (ctx_->tracer().enabled())
    ctx_->tracer().counter("ring", "in_flight", ++in_flight_);
  auto& buf = buffers_[t.slot];
  buf.resize(t.count);
  if (c_adj_) {
    t.cached = true;
    t.pending = c_adj_->begin_get(owner, span[0], t.count, buf.data(),
                                  static_cast<double>(t.degree));
  } else {
    t.handle = dg_->w_adj.get(owner, span[0], t.count, buf.data());
  }
  return t;
}

std::span<const VertexId> AdjacencyFetcher::finish(const Token& t) {
  if (t.local) return t.local_span;
  ATLC_DCHECK(generations_[t.slot] == t.generation,
              "fetch ring slot recycled before finish(): more than "
              "pipeline_depth fetches in flight (see the span-lifetime "
              "contract in fetcher.hpp)");
  if (t.cached) {
    c_adj_->finish(t.pending);
  } else {
    ctx_->flush(t.handle);
  }
  if (ctx_->tracer().enabled() && in_flight_ > 0)
    ctx_->tracer().counter("ring", "in_flight", --in_flight_);
  return {buffers_[t.slot].data(), t.count};
}

}  // namespace atlc::core
