#pragma once

// Internal scaffolding shared by the per-edge score analytics (Jaccard,
// overlap coefficient, Adamic–Adar): one driver owning the edge-slot
// mapping and the score-vector layout, so the slot arithmetic exists in
// exactly one place. Analytic kernels only compute the score of one edge.
// Not installed — include/atlc/core/{jaccard,similarity}.hpp are the
// public surfaces.

#include <span>
#include <vector>

#include "atlc/core/edge_pipeline.hpp"
#include "atlc/util/check.hpp"

namespace atlc::core::detail {

/// Run a per-edge score analytic through run_edge_analytic: `scores` is
/// laid out per adjacency slot of the *global* CSR (the edge u->v where u
/// owns slot k), `setup(ctx, dg)` runs once per rank before the pipeline
/// and its result is handed to every kernel call, and
/// `score_edge(ctx, state, adj_v, adj_j)` returns the score of one edge.
/// Returns the uniformly aggregated stats block.
template <typename Setup, typename ScoreEdge>
[[nodiscard]] EdgeAnalyticStats run_edge_scores(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config,
    const rma::NetworkModel& net, graph::PartitionKind partition_kind,
    std::vector<double>& scores, Setup&& setup, ScoreEdge&& score_edge) {
  ATLC_CHECK(!config.upper_triangle_only,
             "per-edge scores need full intersections per edge");
  ATLC_CHECK(partition_kind != graph::PartitionKind::Grid2D,
             "per-edge score analytics are 1D-only: their kernels need the "
             "whole adjacency row per edge (denominators use full degrees), "
             "not the per-block segments Grid2D streams");
  scores.assign(g.num_edges(), 0.0);

  return run_edge_analytic(
      g, ranks, config, net, partition_kind,
      [&](rma::RankCtx& ctx, const DistGraph& dg, EdgePipeline& pipeline) {
        auto state = setup(ctx, dg);
        // Global slot of each local edge: adjacency slots are laid out per
        // owning vertex, so local slot ei of local vertex lv maps to
        // offsets(global v) + (ei - local offsets(lv)).
        EdgeIndex ei = 0;
        pipeline.run([&](VertexId lv, VertexId, std::span<const VertexId> adj_v,
                         std::span<const VertexId> adj_j) {
          const VertexId v_global = dg.partition.global_id(ctx.rank(), lv);
          const EdgeIndex global_slot =
              g.offsets()[v_global] + (ei - dg.offsets[lv]);
          scores[global_slot] = score_edge(ctx, state, adj_v, adj_j);
          ++ei;
        });
      });
}

}  // namespace atlc::core::detail
