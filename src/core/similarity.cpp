#include "atlc/core/similarity.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "atlc/intersect/intersect.hpp"
#include "edge_scores.hpp"

namespace atlc::core {

namespace {

double overlap_from_counts(std::uint64_t common, std::size_t deg_u,
                           std::size_t deg_v) {
  const std::size_t mn = std::min(deg_u, deg_v);
  return mn == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(mn);
}

/// 1/ln(deg) weight of a common neighbor; 0 for degree < 2 (see header).
double adamic_adar_weight(VertexId degree) {
  return degree < 2 ? 0.0 : 1.0 / std::log(static_cast<double>(degree));
}

/// Replicate the global out-degree vector on this rank by differencing
/// every peer's offsets window — the one-shot setup transfer Adamic–Adar
/// needs (deg(w) for arbitrary global w in the kernel). Stays within the
/// RMA channels the runtime exposes: local parts are read directly, remote
/// parts with one flushed bulk get per peer, priced by the network model.
std::vector<VertexId> replicate_degrees(rma::RankCtx& ctx,
                                        const DistGraph& dg) {
  const Partition& part = dg.partition;
  std::vector<VertexId> degree(part.num_vertices(), 0);
  std::vector<EdgeIndex> offsets;
  for (std::uint32_t r = 0; r < part.num_ranks(); ++r) {
    const VertexId n_r = part.part_size(r);
    std::span<const EdgeIndex> offs;
    if (r == ctx.rank()) {
      offs = dg.offsets;
    } else {
      offsets.resize(n_r + 1);
      ctx.flush(dg.w_offsets.get(r, 0, n_r + 1, offsets.data()));
      offs = offsets;
    }
    for (VertexId lv = 0; lv < n_r; ++lv)
      degree[part.global_id(r, lv)] =
          static_cast<VertexId>(offs[lv + 1] - offs[lv]);
  }
  return degree;
}

/// detail::run_edge_scores with the SimilarityResult wrapper (setup runs
/// once per rank before the pipeline: Adamic–Adar replicates degrees
/// there; overlap is a no-op).
template <typename Setup, typename ScoreEdge>
SimilarityResult run_similarity(const CSRGraph& g, std::uint32_t ranks,
                                const EngineConfig& config,
                                const rma::NetworkModel& net,
                                graph::PartitionKind partition_kind,
                                Setup&& setup, ScoreEdge&& score_edge) {
  SimilarityResult out;
  static_cast<EdgeAnalyticStats&>(out) = detail::run_edge_scores(
      g, ranks, config, net, partition_kind, out.score,
      std::forward<Setup>(setup), std::forward<ScoreEdge>(score_edge));
  return out;
}

}  // namespace

SimilarityResult run_distributed_overlap(const CSRGraph& g,
                                         std::uint32_t ranks,
                                         const EngineConfig& config,
                                         const rma::NetworkModel& net,
                                         graph::PartitionKind partition) {
  return run_similarity(
      g, ranks, config, net, partition,
      [](rma::RankCtx&, const DistGraph&) { return 0; },
      [&config](rma::RankCtx& ctx, int, std::span<const VertexId> adj_v,
                std::span<const VertexId> adj_j) {
        const std::uint64_t common =
            intersect::count_common(adj_v, adj_j, config.method);
        ctx.charge_compute(
            config.cost.seconds(config.method, adj_v.size(), adj_j.size()));
        return overlap_from_counts(common, adj_v.size(), adj_j.size());
      });
}

SimilarityResult run_distributed_adamic_adar(const CSRGraph& g,
                                             std::uint32_t ranks,
                                             const EngineConfig& config,
                                             const rma::NetworkModel& net,
                                             graph::PartitionKind partition) {
  return run_similarity(
      g, ranks, config, net, partition,
      [](rma::RankCtx& ctx, const DistGraph& dg) {
        return replicate_degrees(ctx, dg);
      },
      [&config](rma::RankCtx& ctx, const std::vector<VertexId>& degree,
                std::span<const VertexId> adj_v,
                std::span<const VertexId> adj_j) {
        double aa = 0.0;
        intersect::for_each_common(adj_v, adj_j, [&](VertexId w) {
          aa += adamic_adar_weight(degree[w]);
        });
        // The enumerating merge is an SSI walk; charge it as one (see
        // for_each_common in intersect.hpp).
        ctx.charge_compute(config.cost.seconds(
            intersect::Method::SSI, adj_v.size(), adj_j.size()));
        return aa;
      });
}

std::vector<double> reference_overlap(const CSRGraph& g) {
  std::vector<double> out(g.num_edges(), 0.0);
  std::size_t k = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto adj_u = g.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = g.neighbors(v);
      out[k++] = overlap_from_counts(intersect::count_hybrid(adj_u, adj_v),
                                     adj_u.size(), adj_v.size());
    }
  }
  return out;
}

std::vector<double> reference_adamic_adar(const CSRGraph& g) {
  std::vector<double> out(g.num_edges(), 0.0);
  std::size_t k = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto adj_u = g.neighbors(u);
    for (VertexId v : adj_u) {
      double aa = 0.0;
      intersect::for_each_common(adj_u, g.neighbors(v), [&](VertexId w) {
        aa += adamic_adar_weight(g.degree(w));
      });
      out[k++] = aa;
    }
  }
  return out;
}

}  // namespace atlc::core
