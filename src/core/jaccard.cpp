#include "atlc/core/jaccard.hpp"

#include "atlc/core/fetcher.hpp"
#include "atlc/util/check.hpp"

namespace atlc::core {

namespace {

double jaccard_from_counts(std::uint64_t common, std::size_t deg_u,
                           std::size_t deg_v) {
  const std::uint64_t uni = deg_u + deg_v - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(uni);
}

}  // namespace

std::vector<double> reference_jaccard(const CSRGraph& g) {
  std::vector<double> out(g.num_edges(), 0.0);
  std::size_t k = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto adj_u = g.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = g.neighbors(v);
      out[k++] = jaccard_from_counts(intersect::count_hybrid(adj_u, adj_v),
                                     adj_u.size(), adj_v.size());
    }
  }
  return out;
}

JaccardResult run_distributed_jaccard(const CSRGraph& g, std::uint32_t ranks,
                                      const EngineConfig& config,
                                      const rma::NetworkModel& net,
                                      graph::PartitionKind partition_kind) {
  ATLC_CHECK(!config.upper_triangle_only,
             "Jaccard needs full intersections per edge");
  const Partition partition(partition_kind, g.num_vertices(), ranks);

  JaccardResult out;
  out.similarity.assign(g.num_edges(), 0.0);
  std::vector<clampi::CacheStats> adj_stats(ranks);
  std::vector<std::uint64_t> remote_counts(ranks, 0);

  rma::Runtime::Options opts;
  opts.ranks = ranks;
  opts.net = net;
  out.run = rma::Runtime::run(opts, [&](rma::RankCtx& ctx) {
    const DistGraph dg = build_dist_graph(ctx, g, partition);
    AdjacencyFetcher fetcher(ctx, dg, config);
    const EdgeIndex m_local = dg.adjacencies.size();

    // Global slot of this rank's first edge: adjacency slots are laid out
    // per owning vertex, so local slot k of local vertex lv maps to
    // offsets(global v) + (k - local offsets(lv)).
    AdjacencyFetcher::Token current;
    bool have_current = false;
    if (config.double_buffer && m_local > 0) {
      current = fetcher.begin(dg.adjacencies[0]);
      have_current = true;
    }
    VertexId lv = 0;
    for (EdgeIndex ei = 0; ei < m_local; ++ei) {
      while (dg.offsets[lv + 1] <= ei) ++lv;
      const VertexId j = dg.adjacencies[ei];
      if (!have_current) current = fetcher.begin(j);
      const auto adj_j = fetcher.finish(current);
      have_current = false;
      if (config.double_buffer && ei + 1 < m_local) {
        current = fetcher.begin(dg.adjacencies[ei + 1]);
        have_current = true;
      }
      const auto adj_v = dg.local_neighbors(lv);
      const std::uint64_t common =
          intersect::count_common(adj_v, adj_j, config.method);
      ctx.charge_compute(
          config.cost.seconds(config.method, adj_v.size(), adj_j.size()));

      const VertexId v_global = partition.global_id(ctx.rank(), lv);
      const EdgeIndex global_slot =
          g.offsets()[v_global] + (ei - dg.offsets[lv]);
      out.similarity[global_slot] =
          jaccard_from_counts(common, adj_v.size(), adj_j.size());
    }

    remote_counts[ctx.rank()] = fetcher.remote_fetches();
    if (fetcher.has_adj_cache())
      adj_stats[ctx.rank()] = fetcher.adj_cache().stats();
    ctx.barrier();
  });

  for (std::uint32_t r = 0; r < ranks; ++r) {
    out.adj_cache_total += adj_stats[r];
    out.remote_edges += remote_counts[r];
  }
  return out;
}

}  // namespace atlc::core
