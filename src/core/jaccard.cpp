#include "atlc/core/jaccard.hpp"

#include "atlc/intersect/intersect.hpp"
#include "edge_scores.hpp"

namespace atlc::core {

namespace {

double jaccard_from_counts(std::uint64_t common, std::size_t deg_u,
                           std::size_t deg_v) {
  const std::uint64_t uni = deg_u + deg_v - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(uni);
}

}  // namespace

std::vector<double> reference_jaccard(const CSRGraph& g) {
  std::vector<double> out(g.num_edges(), 0.0);
  std::size_t k = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto adj_u = g.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = g.neighbors(v);
      out[k++] = jaccard_from_counts(intersect::count_hybrid(adj_u, adj_v),
                                     adj_u.size(), adj_v.size());
    }
  }
  return out;
}

JaccardResult run_distributed_jaccard(const CSRGraph& g, std::uint32_t ranks,
                                      const EngineConfig& config,
                                      const rma::NetworkModel& net,
                                      graph::PartitionKind partition_kind) {
  JaccardResult out;
  static_cast<EdgeAnalyticStats&>(out) = detail::run_edge_scores(
      g, ranks, config, net, partition_kind, out.similarity,
      [](rma::RankCtx&, const DistGraph&) { return 0; },
      [&config](rma::RankCtx& ctx, int, std::span<const VertexId> adj_v,
                std::span<const VertexId> adj_j) {
        const std::uint64_t common =
            intersect::count_common(adj_v, adj_j, config.method);
        ctx.charge_compute(
            config.cost.seconds(config.method, adj_v.size(), adj_j.size()));
        return jaccard_from_counts(common, adj_v.size(), adj_j.size());
      });
  return out;
}

}  // namespace atlc::core
