#include "atlc/core/dist_graph.hpp"

#include "atlc/util/check.hpp"

namespace atlc::core {

DistGraph build_dist_graph(rma::RankCtx& ctx, const CSRGraph& global,
                           const Partition& partition) {
  ATLC_CHECK(partition.num_ranks() == ctx.num_ranks(),
             "partition rank count must match runtime");
  ATLC_CHECK(partition.num_vertices() == global.num_vertices(),
             "partition vertex count must match graph");

  DistGraph dg{partition, global.directedness(), {}, {}, {}, {}};

  const VertexId n_local = partition.part_size(ctx.rank());
  dg.offsets.reserve(static_cast<std::size_t>(n_local) + 1);
  dg.offsets.push_back(0);
  for (VertexId lv = 0; lv < n_local; ++lv) {
    const VertexId v = partition.global_id(ctx.rank(), lv);
    const auto nbrs = global.neighbors(v);
    dg.adjacencies.insert(dg.adjacencies.end(), nbrs.begin(), nbrs.end());
    dg.offsets.push_back(dg.adjacencies.size());
  }

  // Windows must be created after the vectors reached their final size —
  // the runtime captures raw spans (like MPI_Win_create pins a buffer).
  dg.w_offsets = ctx.create_window<EdgeIndex>(dg.offsets);
  dg.w_adj = ctx.create_window<VertexId>(dg.adjacencies);
  return dg;
}

}  // namespace atlc::core
