#include "atlc/core/dist_graph.hpp"

#include <algorithm>

#include "atlc/util/check.hpp"

namespace atlc::core {

DistGraph build_dist_graph(rma::RankCtx& ctx, const CSRGraph& global,
                           const Partition& partition,
                           const graph::HubReplica* hubs,
                           const LocalSliceSource* slice) {
  ATLC_CHECK(partition.num_ranks() == ctx.num_ranks(),
             "partition rank count must match runtime");
  ATLC_CHECK(partition.num_vertices() == global.num_vertices(),
             "partition vertex count must match graph");

  DistGraph dg{partition, global.directedness(), {}, {}, {}, {}, {}};

  const VertexId n_local = partition.part_size(ctx.rank());
  if (slice != nullptr) {
    // Out-of-core path: the slice source seek-reads this rank's rows (e.g.
    // from a snapshot's extent index) instead of slicing the global CSR.
    slice->read_slice(partition, ctx.rank(), dg.offsets, dg.adjacencies);
    ATLC_CHECK(dg.offsets.size() == static_cast<std::size_t>(n_local) + 1,
               "slice source row count must match the partition");
  } else {
    // Under Grid2D the rank's local CSR *is* the segment store: each row
    // slot keeps only the slice of the adjacency row whose neighbor ids
    // fall in the rank's column block. 1D kinds take the whole row (the
    // whole-range slice), so the build below is shared.
    const auto [col_lo, col_hi] =
        partition.col_block_range(partition.col_blocks() > 1
                                      ? partition.grid_col(ctx.rank())
                                      : 0);
    dg.offsets.reserve(static_cast<std::size_t>(n_local) + 1);
    dg.offsets.push_back(0);
    for (VertexId lv = 0; lv < n_local; ++lv) {
      const VertexId v = partition.global_id(ctx.rank(), lv);
      const auto nbrs = global.neighbors(v);
      // Rows are sorted, so the column-block restriction is a subrange.
      const auto seg_lo = std::lower_bound(nbrs.begin(), nbrs.end(), col_lo);
      const auto seg_hi = std::lower_bound(seg_lo, nbrs.end(), col_hi);
      dg.adjacencies.insert(dg.adjacencies.end(), seg_lo, seg_hi);
      dg.offsets.push_back(dg.adjacencies.size());
    }
  }

  if (hubs && !hubs->empty()) {
    dg.hubs = *hubs;
    // Price the replication: one modeled remote get per hub row this rank
    // does not own (offsets pair + row payload — the same bytes the two-get
    // protocol would move once). Owned rows cost nothing: the copy stands
    // in for the rank contributing its own rows to the allgather.
    double seconds = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t gets = 0;
    const auto ids = dg.hubs.hub_ids();
    for (std::size_t slot = 0; slot < ids.size(); ++slot) {
      if (partition.owner(ids[slot]) == ctx.rank()) continue;
      const std::uint64_t row_bytes =
          dg.hubs.neighbors_at(slot).size() * sizeof(VertexId) +
          2 * sizeof(EdgeIndex);
      seconds += ctx.net().time_remote(row_bytes);
      bytes += row_bytes;
      ++gets;
    }
    ctx.stats().remote_gets += gets;
    ctx.stats().remote_bytes += bytes;
    ctx.charge_comm(seconds);
  }

  // Windows must be created after the vectors reached their final size —
  // the runtime captures raw spans (like MPI_Win_create pins a buffer).
  dg.w_offsets = ctx.create_window<EdgeIndex>(dg.offsets);
  dg.w_adj = ctx.create_window<VertexId>(dg.adjacencies);
  return dg;
}

}  // namespace atlc::core
