#include "atlc/intersect/tiered.hpp"

#include <algorithm>
#include <bit>

#include "atlc/util/check.hpp"

namespace atlc::intersect {

std::uint64_t count_merge_vec(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  const std::size_t na = a.size(), nb = b.size();
  std::uint64_t count = 0;
  std::size_t i = 0, k = 0;
  // Quad-skip main loop: when one side's next four elements all sit below
  // the other side's cursor, skip them wholesale (one compare per four
  // elements on disjoint stretches); otherwise take one branch-reduced
  // step — the equality/advance decisions become flag-setting arithmetic
  // instead of an unpredictable three-way branch.
  while (i + 4 <= na && k + 4 <= nb) {
    if (a[i + 3] < b[k]) {
      i += 4;
      continue;
    }
    if (b[k + 3] < a[i]) {
      k += 4;
      continue;
    }
    const VertexId x = a[i], y = b[k];
    count += (x == y);
    i += (x <= y);
    k += (y <= x);
  }
  // Branch-reduced tail for the final < 4 elements of either side (the
  // SIMD-width-straddling lengths the differential harness pins down).
  while (i < na && k < nb) {
    const VertexId x = a[i], y = b[k];
    count += (x == y);
    i += (x <= y);
    k += (y <= x);
  }
  return count;
}

std::uint64_t count_gallop(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  // Keys from the shorter list, galloped cursor over the longer one.
  if (a.size() > b.size()) std::swap(a, b);
  std::uint64_t count = 0;
  std::size_t base = 0;  // b[0, base) is strictly below the current key
  for (const VertexId x : a) {
    if (base >= b.size()) break;
    // Exponential advance: grow the window until b[hi] >= x (or the end).
    std::size_t lo = base, hi = base, step = 1;
    while (hi < b.size() && b[hi] < x) {
      lo = hi + 1;
      hi = lo + step;
      step <<= 1;
    }
    hi = std::min(hi, b.size());
    const auto it = std::lower_bound(b.begin() + static_cast<std::ptrdiff_t>(lo),
                                     b.begin() + static_cast<std::ptrdiff_t>(hi),
                                     x);
    base = static_cast<std::size_t>(it - b.begin());
    if (base < b.size() && b[base] == x) {
      ++count;
      ++base;  // keys are strictly ascending; the match can't repeat
    }
  }
  return count;
}

void RowBitmap::build(std::span<const VertexId> row, VertexId universe) {
  const std::size_t want_words = (static_cast<std::size_t>(universe) + 63) / 64;
  if (words_.size() < want_words) {
    words_.resize(want_words, 0);
  } else {
    // Clear only the bits the previous row set — O(previous row), not
    // O(universe) — so hub-row rebuilds stay proportional to degree.
    for (const VertexId v : set_bits_) words_[v >> 6] = 0;
  }
  set_bits_.assign(row.begin(), row.end());
  for (const VertexId v : row) {
    ATLC_DCHECK(v < universe, "row id outside the bitmap universe");
    words_[v >> 6] |= std::uint64_t{1} << (v & 63);
  }
  row_data_ = row.data();
  row_size_ = row.size();
  built_ = true;
}

std::uint64_t RowBitmap::count_in(std::span<const VertexId> list) const {
  std::uint64_t count = 0;
  std::size_t i = 0;
  while (i < list.size()) {
    const std::size_t w = list[i] >> 6;
    ATLC_DCHECK(w < words_.size(), "probe id outside the bitmap universe");
    // Gather every candidate landing in this 64-bit word into one mask,
    // then resolve them all with a single AND + popcount.
    std::uint64_t mask = 0;
    do {
      mask |= std::uint64_t{1} << (list[i] & 63);
      ++i;
    } while (i < list.size() && (list[i] >> 6) == w);
    count += static_cast<std::uint64_t>(std::popcount(words_[w] & mask));
  }
  return count;
}

TieredIntersector::Outcome TieredIntersector::intersect(
    std::span<const VertexId> row, std::span<const VertexId> other) {
  Outcome out;
  out.kernel = select_tier_kernel(row.size(), other.size(), policy_);
  switch (out.kernel) {
    case TierKernel::Bitmap:
      if (!bitmap_.built_for(row)) {
        bitmap_.build(row, universe_);
        out.seconds += cost_.seconds_bitmap_build(row.size());
        ++stats_.bitmap_builds;
      }
      out.common = bitmap_.count_in(other);
      ++stats_.bitmap_pairs;
      break;
    case TierKernel::Gallop:
      out.common = count_gallop(row, other);
      ++stats_.gallop_pairs;
      break;
    case TierKernel::MergeVec:
      out.common = count_merge_vec(row, other);
      ++stats_.merge_pairs;
      break;
  }
  out.seconds += cost_.seconds_tiered(out.kernel, row.size(), other.size());
  return out;
}

TieredIntersector::Outcome TieredIntersector::intersect_transient(
    std::span<const VertexId> a, std::span<const VertexId> b) {
  Outcome out;
  out.kernel = select_tier_kernel(a.size(), b.size(), policy_);
  if (out.kernel == TierKernel::Bitmap) {
    // No stable row, no amortised build: gallop is the right kernel for
    // the bitmap-shaped (highly skewed) pairs.
    out.kernel = TierKernel::Gallop;
  }
  switch (out.kernel) {
    case TierKernel::Gallop:
      out.common = count_gallop(a, b);
      ++stats_.gallop_pairs;
      break;
    default:
      out.common = count_merge_vec(a, b);
      ++stats_.merge_pairs;
      break;
  }
  out.seconds += cost_.seconds_tiered(out.kernel, a.size(), b.size());
  return out;
}

}  // namespace atlc::intersect
