#include "atlc/intersect/intersect.hpp"

#include <algorithm>
#include <bit>

namespace atlc::intersect {

const char* method_name(Method m) {
  switch (m) {
    case Method::Binary: return "binary";
    case Method::SSI: return "ssi";
    case Method::Hybrid: return "hybrid";
  }
  return "?";
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::Paper: return "paper";
    case Tier::Tiered: return "tiered";
  }
  return "?";
}

const char* tier_kernel_name(TierKernel k) {
  switch (k) {
    case TierKernel::MergeVec: return "merge_vec";
    case TierKernel::Gallop: return "gallop";
    case TierKernel::Bitmap: return "bitmap";
  }
  return "?";
}

TierKernel select_tier_kernel(std::size_t row_len, std::size_t other_len,
                              const TierPolicy& policy) {
  if (row_len >= policy.bitmap_min_row) return TierKernel::Bitmap;
  const auto lo = static_cast<double>(std::min(row_len, other_len));
  const auto hi = static_cast<double>(std::max(row_len, other_len));
  if (lo > 0.0 && hi / lo >= policy.gallop_ratio) return TierKernel::Gallop;
  return TierKernel::MergeVec;
}

std::uint64_t count_binary(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  // Keys from the shorter list, search tree over the longer one.
  if (a.size() > b.size()) std::swap(a, b);
  std::uint64_t counter = 0;
  for (VertexId x : a)
    if (std::binary_search(b.begin(), b.end(), x)) ++counter;
  return counter;
}

std::uint64_t count_ssi(std::span<const VertexId> a,
                        std::span<const VertexId> b) {
  std::uint64_t counter = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++counter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return counter;
}

bool prefer_ssi(std::size_t len_a, std::size_t len_b) {
  if (len_a > len_b) std::swap(len_a, len_b);
  if (len_a == 0 || len_b == 0) return true;  // trivially cheap either way
  // |B|/|A| <= log2(|B|) - 1  (paper Eq. 3). bit_width(x)-1 == floor(log2 x).
  const double log2_b = static_cast<double>(std::bit_width(len_b) - 1);
  return static_cast<double>(len_b) / static_cast<double>(len_a) <=
         log2_b - 1.0;
}

std::uint64_t count_hybrid(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  return prefer_ssi(a.size(), b.size()) ? count_ssi(a, b) : count_binary(a, b);
}

std::uint64_t count_common(std::span<const VertexId> a,
                           std::span<const VertexId> b, Method m) {
  switch (m) {
    case Method::Binary: return count_binary(a, b);
    case Method::SSI: return count_ssi(a, b);
    case Method::Hybrid: return count_hybrid(a, b);
  }
  return 0;
}

std::span<const VertexId> suffix_above(std::span<const VertexId> s,
                                       VertexId floor) {
  const auto it = std::upper_bound(s.begin(), s.end(), floor);
  return s.subspan(static_cast<std::size_t>(it - s.begin()));
}

std::uint64_t count_common_above(std::span<const VertexId> a,
                                 std::span<const VertexId> b, VertexId floor,
                                 Method m) {
  return count_common(suffix_above(a, floor), suffix_above(b, floor), m);
}

}  // namespace atlc::intersect
