#include "atlc/intersect/cost_model.hpp"

#include "atlc/intersect/tiered.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <vector>

#include "atlc/util/timer.hpp"

namespace atlc::intersect {

double CostModel::seconds(Method m, std::size_t len_a,
                          std::size_t len_b) const {
  if (len_a > len_b) std::swap(len_a, len_b);
  const bool use_ssi =
      m == Method::SSI || (m == Method::Hybrid && prefer_ssi(len_a, len_b));
  double work_ns;
  if (use_ssi) {
    work_ns = ssi_ns_per_elem * static_cast<double>(len_a + len_b);
  } else {
    const double log_b =
        len_b > 1 ? static_cast<double>(std::bit_width(len_b)) : 1.0;
    work_ns = binary_ns_per_probe * static_cast<double>(len_a) * log_b;
  }
  return (per_call_ns + work_ns) * 1e-9;
}

double CostModel::seconds_probes(std::size_t keys, std::size_t tree) const {
  const double log_t =
      tree > 1 ? static_cast<double>(std::bit_width(tree)) : 1.0;
  return (per_call_ns +
          binary_ns_per_probe * static_cast<double>(keys) * log_t) *
         1e-9;
}

double CostModel::seconds_tiered(TierKernel k, std::size_t row_len,
                                 std::size_t other_len) const {
  double work_ns = 0.0;
  switch (k) {
    case TierKernel::MergeVec:
      work_ns = merge_ns_per_elem * static_cast<double>(row_len + other_len);
      break;
    case TierKernel::Gallop: {
      // Each of the |short| keys gallops ~log2(|long|/|short|) + O(1) steps.
      const std::size_t keys = std::min(row_len, other_len);
      const std::size_t tree = std::max(row_len, other_len);
      const std::size_t ratio = keys > 0 ? tree / keys : tree;
      const double log_r =
          ratio > 1 ? static_cast<double>(std::bit_width(ratio)) : 1.0;
      work_ns = gallop_ns_per_probe * static_cast<double>(keys) * (log_r + 1.0);
      break;
    }
    case TierKernel::Bitmap:
      work_ns = bitmap_ns_per_probe * static_cast<double>(other_len);
      break;
  }
  return (per_call_ns + work_ns) * 1e-9;
}

double CostModel::seconds_bitmap_build(std::size_t row_len) const {
  return bitmap_build_ns_per_elem * static_cast<double>(row_len) * 1e-9;
}

CostModel CostModel::calibrate() {
  CostModel m;

  // Two disjoint-ish sorted arrays with a realistic hit fraction.
  constexpr std::size_t kA = 2048, kB = 16384, kReps = 200;
  std::vector<VertexId> a(kA), b(kB);
  for (std::size_t i = 0; i < kA; ++i) a[i] = static_cast<VertexId>(3 * i);
  for (std::size_t i = 0; i < kB; ++i) b[i] = static_cast<VertexId>(2 * i);

  volatile std::uint64_t sink = 0;  // defeat dead-code elimination

  util::Timer t;
  for (std::size_t r = 0; r < kReps; ++r) sink = sink + count_ssi(a, b);
  const double ssi_s = t.elapsed_s();
  m.ssi_ns_per_elem =
      std::max(0.05, ssi_s * 1e9 / (kReps * static_cast<double>(kA + kB)));

  t.reset();
  for (std::size_t r = 0; r < kReps; ++r) sink = sink + count_binary(a, b);
  const double bin_s = t.elapsed_s();
  const double log_b = static_cast<double>(std::bit_width(kB));
  m.binary_ns_per_probe =
      std::max(0.05, bin_s * 1e9 / (kReps * static_cast<double>(kA) * log_b));

  // Tiered generation: fit each kernel on the shape it serves.
  t.reset();
  for (std::size_t r = 0; r < kReps; ++r) sink = sink + count_merge_vec(a, b);
  const double merge_s = t.elapsed_s();
  m.merge_ns_per_elem =
      std::max(0.05, merge_s * 1e9 / (kReps * static_cast<double>(kA + kB)));

  t.reset();
  for (std::size_t r = 0; r < kReps; ++r) sink = sink + count_gallop(a, b);
  const double gallop_s = t.elapsed_s();
  const double log_ratio =
      static_cast<double>(std::bit_width(kB / kA)) + 1.0;
  m.gallop_ns_per_probe = std::max(
      0.05, gallop_s * 1e9 / (kReps * static_cast<double>(kA) * log_ratio));

  RowBitmap bm;
  const VertexId universe = 2 * kB + 3;  // covers both generators above
  t.reset();
  for (std::size_t r = 0; r < kReps; ++r) {
    bm.build(b, universe);
    sink = sink + bm.row_size();
  }
  const double build_s = t.elapsed_s();
  m.bitmap_build_ns_per_elem =
      std::max(0.05, build_s * 1e9 / (kReps * static_cast<double>(kB)));

  bm.build(b, universe);
  t.reset();
  for (std::size_t r = 0; r < kReps; ++r) sink = sink + bm.count_in(a);
  const double probe_s = t.elapsed_s();
  m.bitmap_ns_per_probe =
      std::max(0.05, probe_s * 1e9 / (kReps * static_cast<double>(kA)));

  (void)sink;
  return m;
}

}  // namespace atlc::intersect
