#include "atlc/intersect/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <vector>

#include "atlc/util/timer.hpp"

namespace atlc::intersect {

double CostModel::seconds(Method m, std::size_t len_a,
                          std::size_t len_b) const {
  if (len_a > len_b) std::swap(len_a, len_b);
  const bool use_ssi =
      m == Method::SSI || (m == Method::Hybrid && prefer_ssi(len_a, len_b));
  double work_ns;
  if (use_ssi) {
    work_ns = ssi_ns_per_elem * static_cast<double>(len_a + len_b);
  } else {
    const double log_b =
        len_b > 1 ? static_cast<double>(std::bit_width(len_b)) : 1.0;
    work_ns = binary_ns_per_probe * static_cast<double>(len_a) * log_b;
  }
  return (per_call_ns + work_ns) * 1e-9;
}

double CostModel::seconds_probes(std::size_t keys, std::size_t tree) const {
  const double log_t =
      tree > 1 ? static_cast<double>(std::bit_width(tree)) : 1.0;
  return (per_call_ns +
          binary_ns_per_probe * static_cast<double>(keys) * log_t) *
         1e-9;
}

CostModel CostModel::calibrate() {
  CostModel m;

  // Two disjoint-ish sorted arrays with a realistic hit fraction.
  constexpr std::size_t kA = 2048, kB = 16384, kReps = 200;
  std::vector<VertexId> a(kA), b(kB);
  for (std::size_t i = 0; i < kA; ++i) a[i] = static_cast<VertexId>(3 * i);
  for (std::size_t i = 0; i < kB; ++i) b[i] = static_cast<VertexId>(2 * i);

  volatile std::uint64_t sink = 0;  // defeat dead-code elimination

  util::Timer t;
  for (std::size_t r = 0; r < kReps; ++r) sink = sink + count_ssi(a, b);
  const double ssi_s = t.elapsed_s();
  m.ssi_ns_per_elem =
      std::max(0.05, ssi_s * 1e9 / (kReps * static_cast<double>(kA + kB)));

  t.reset();
  for (std::size_t r = 0; r < kReps; ++r) sink = sink + count_binary(a, b);
  const double bin_s = t.elapsed_s();
  const double log_b = static_cast<double>(std::bit_width(kB));
  m.binary_ns_per_probe =
      std::max(0.05, bin_s * 1e9 / (kReps * static_cast<double>(kA) * log_b));

  (void)sink;
  return m;
}

}  // namespace atlc::intersect
