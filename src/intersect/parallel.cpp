#include "atlc/intersect/parallel.hpp"

#if !defined(ATLC_NO_OPENMP) && defined(_OPENMP)
#include <omp.h>
#else
// No OpenMP: the pragmas below are ignored and these shims make the
// chunking collapse to a single full-range chunk (sequential execution).
namespace {
inline int omp_get_max_threads() { return 1; }
inline int omp_get_num_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
}  // namespace
#endif

#include <algorithm>

namespace atlc::intersect {

namespace {

/// Split [0, n) into `parts` nearly-equal chunks; returns [begin, end) of
/// chunk `idx`.
std::pair<std::size_t, std::size_t> chunk(std::size_t n, int parts, int idx) {
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  const auto i = static_cast<std::size_t>(idx);
  const std::size_t begin = i * base + std::min(i, extra);
  const std::size_t end = begin + base + (i < extra ? 1 : 0);
  return {begin, end};
}

}  // namespace

std::uint64_t count_binary_parallel(std::span<const VertexId> a,
                                    std::span<const VertexId> b,
                                    const ParallelConfig& cfg) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.size() + b.size() < cfg.cutoff) return count_binary(a, b);

  std::uint64_t total = 0;
  // Chunk the shorter (keys) array across threads; each thread searches its
  // keys in the full longer list.
#if !defined(ATLC_NO_OPENMP) && defined(_OPENMP)
#pragma omp parallel num_threads(cfg.num_threads > 0 ? cfg.num_threads \
                                                     : omp_get_max_threads()) \
    reduction(+ : total)
#endif
  {
    const auto [begin, end] =
        chunk(a.size(), omp_get_num_threads(), omp_get_thread_num());
    for (std::size_t i = begin; i < end; ++i)
      if (std::binary_search(b.begin(), b.end(), a[i])) ++total;
  }
  return total;
}

std::uint64_t count_ssi_parallel(std::span<const VertexId> a,
                                 std::span<const VertexId> b,
                                 const ParallelConfig& cfg) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.size() + b.size() < cfg.cutoff) return count_ssi(a, b);

  std::uint64_t total = 0;
  // Chunk the longer array; every thread SSI-merges its chunk against the
  // subrange of the shorter list that can overlap it (narrowed by binary
  // search on the chunk's value range).
#if !defined(ATLC_NO_OPENMP) && defined(_OPENMP)
#pragma omp parallel num_threads(cfg.num_threads > 0 ? cfg.num_threads \
                                                     : omp_get_max_threads()) \
    reduction(+ : total)
#endif
  {
    const auto [begin, end] =
        chunk(b.size(), omp_get_num_threads(), omp_get_thread_num());
    if (begin < end) {
      const auto b_chunk = b.subspan(begin, end - begin);
      const auto lo = std::lower_bound(a.begin(), a.end(), b_chunk.front());
      const auto hi = std::upper_bound(lo, a.end(), b_chunk.back());
      total += count_ssi(a.subspan(static_cast<std::size_t>(lo - a.begin()),
                                   static_cast<std::size_t>(hi - lo)),
                         b_chunk);
    }
  }
  return total;
}

std::uint64_t count_hybrid_parallel(std::span<const VertexId> a,
                                    std::span<const VertexId> b,
                                    const ParallelConfig& cfg) {
  return prefer_ssi(a.size(), b.size()) ? count_ssi_parallel(a, b, cfg)
                                        : count_binary_parallel(a, b, cfg);
}

std::uint64_t count_common_parallel(std::span<const VertexId> a,
                                    std::span<const VertexId> b, Method m,
                                    const ParallelConfig& cfg) {
  switch (m) {
    case Method::Binary: return count_binary_parallel(a, b, cfg);
    case Method::SSI: return count_ssi_parallel(a, b, cfg);
    case Method::Hybrid: return count_hybrid_parallel(a, b, cfg);
  }
  return 0;
}

}  // namespace atlc::intersect
