// Determinism guarantees: generators are byte-stable per seed, and both
// engines produce rank-count-invariant triangle counts — the property that
// makes cross-configuration comparisons (paper Figs. 6-10) meaningful.
#include <gtest/gtest.h>

#include <cstring>

#include "atlc/graph/generators.hpp"
#include "atlc/tric/tric.hpp"
#include "test_support.hpp"

namespace atlc {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;

TEST(RmatDeterminism, ByteIdenticalEdgeListsAcrossCalls) {
  const graph::RmatParams opts{.scale = 9, .edge_factor = 8, .seed = 42};
  const EdgeList a = graph::generate_rmat(opts);
  for (int rep = 0; rep < 3; ++rep) {
    const EdgeList b = graph::generate_rmat(opts);
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    ASSERT_EQ(a.edges().size(), b.edges().size());
    // Byte-identical, not merely set-equal: the raw edge arrays must match.
    ASSERT_EQ(0, std::memcmp(a.edges().data(), b.edges().data(),
                             a.edges().size() * sizeof(graph::Edge)))
        << "repeat " << rep;
  }
}

TEST(RmatDeterminism, DirectedVariantAlsoByteIdentical) {
  const graph::RmatParams opts{.scale = 8,
                                .edge_factor = 4,
                                .seed = 7,
                                .directedness = Directedness::Directed};
  const EdgeList a = graph::generate_rmat(opts);
  const EdgeList b = graph::generate_rmat(opts);
  ASSERT_EQ(a.edges().size(), b.edges().size());
  EXPECT_EQ(0, std::memcmp(a.edges().data(), b.edges().data(),
                           a.edges().size() * sizeof(graph::Edge)));
}

TEST(RmatDeterminism, DistinctSeedsDiffer) {
  const EdgeList a =
      graph::generate_rmat({.scale = 8, .edge_factor = 4, .seed = 1});
  const EdgeList b =
      graph::generate_rmat({.scale = 8, .edge_factor = 4, .seed = 2});
  EXPECT_NE(a.edges(), b.edges());
}

TEST(EngineDeterminism, TricCountInvariantAcrossRankCounts) {
  const CSRGraph g = testsupport::rmat_graph(8, 8, 42);
  const auto r1 = tric::run_tric(g, 1);
  for (std::uint32_t p : {2u, 4u, 8u}) {
    const auto rp = tric::run_tric(g, p);
    EXPECT_EQ(rp.global_triangles, r1.global_triangles) << "p=" << p;
    ASSERT_EQ(rp.per_vertex, r1.per_vertex) << "p=" << p;
  }
}

TEST(EngineDeterminism, LccInvariantAcrossRankCounts) {
  const CSRGraph g = testsupport::rmat_graph(8, 8, 42);
  const auto r1 = core::run_distributed_lcc(g, 1);
  for (std::uint32_t p : {2u, 4u, 8u}) {
    const auto rp = core::run_distributed_lcc(g, p);
    EXPECT_EQ(rp.global_triangles, r1.global_triangles) << "p=" << p;
    ASSERT_EQ(rp.triangles, r1.triangles) << "p=" << p;
    for (std::size_t v = 0; v < r1.lcc.size(); ++v)
      ASSERT_DOUBLE_EQ(rp.lcc[v], r1.lcc[v]) << "p=" << p << " vertex " << v;
  }
}

TEST(EngineDeterminism, EnginesAgreeWithEachOtherPerSeed) {
  for (std::uint64_t seed : {3, 4, 5}) {
    const CSRGraph g = testsupport::rmat_graph(7, 8, seed);
    const auto tric_count = tric::run_tric(g, 4).global_triangles;
    const auto async_count = core::run_distributed_lcc(g, 4).global_triangles;
    EXPECT_EQ(tric_count, async_count) << "seed " << seed;
  }
}

}  // namespace
}  // namespace atlc
