// Tests for the simulated MPI-3 RMA runtime: SPMD launch, windows,
// passive-target get/flush semantics, the virtual-clock network model,
// collectives, and the two-sided all-to-all substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "atlc/rma/comm_stats.hpp"
#include "atlc/rma/network_model.hpp"
#include "atlc/rma/runtime.hpp"
#include "atlc/rma/thread_cpu_timer.hpp"

namespace atlc::rma {
namespace {

Runtime::Options opts(std::uint32_t ranks) {
  Runtime::Options o;
  o.ranks = ranks;
  return o;
}

// ---------------------------------------------------------------- launch ---

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  Runtime::run(opts(8), [&](RankCtx& ctx) {
    EXPECT_EQ(ctx.num_ranks(), 8u);
    ++hits[ctx.rank()];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runtime, SingleRankWorks) {
  int count = 0;
  Runtime::run(opts(1), [&](RankCtx& ctx) {
    EXPECT_EQ(ctx.rank(), 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Runtime, ManyRanksOnFewCores) {
  // 128 ranks on a 2-core host must still complete (oversubscription).
  std::atomic<int> total{0};
  Runtime::run(opts(128), [&](RankCtx& ctx) {
    ctx.barrier();
    ++total;
  });
  EXPECT_EQ(total.load(), 128);
}

TEST(Runtime, ExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(Runtime::run(opts(4),
                            [&](RankCtx& ctx) {
                              if (ctx.rank() == 2)
                                throw std::runtime_error("rank 2 died");
                              // Other ranks head into a barrier that rank 2
                              // never reaches — the poison must wake them.
                              ctx.barrier();
                            }),
               std::runtime_error);
}

TEST(Runtime, CollectsPerRankStatsAndClocks) {
  const auto result = Runtime::run(opts(3), [&](RankCtx& ctx) {
    ctx.charge_compute(0.5 * (ctx.rank() + 1));
  });
  ASSERT_EQ(result.clocks.size(), 3u);
  EXPECT_DOUBLE_EQ(result.clocks[0], 0.5);
  EXPECT_DOUBLE_EQ(result.clocks[2], 1.5);
  EXPECT_DOUBLE_EQ(result.makespan, 1.5);
  EXPECT_DOUBLE_EQ(result.total().compute_seconds, 3.0);
  EXPECT_GT(result.wall_seconds, 0.0);
}

// --------------------------------------------------------------- windows ---

TEST(Window, RemoteGetReadsTargetData) {
  Runtime::run(opts(4), [&](RankCtx& ctx) {
    // Each rank exposes 8 values rank*100 + i.
    std::vector<std::uint32_t> local(8);
    for (std::size_t i = 0; i < 8; ++i)
      local[i] = ctx.rank() * 100 + static_cast<std::uint32_t>(i);
    auto win = ctx.create_window<std::uint32_t>(local);

    const std::uint32_t peer = (ctx.rank() + 1) % ctx.num_ranks();
    std::uint32_t buf[3];
    auto h = win.get(peer, 2, 3, buf);
    ctx.flush(h);
    EXPECT_EQ(buf[0], peer * 100 + 2);
    EXPECT_EQ(buf[2], peer * 100 + 4);
    ctx.barrier();  // keep exposed memory alive until all peers finished
  });
}

TEST(Window, PartSizesPerRank) {
  Runtime::run(opts(3), [&](RankCtx& ctx) {
    std::vector<double> local(ctx.rank() + 1, 1.0);
    auto win = ctx.create_window<double>(local);
    for (std::uint32_t r = 0; r < 3; ++r) EXPECT_EQ(win.part_size(r), r + 1);
  });
}

TEST(Window, MultipleWindowsKeepDistinctIds) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    std::vector<int> a(4, 1), b(4, 2);
    auto wa = ctx.create_window<int>(a);
    auto wb = ctx.create_window<int>(b);
    EXPECT_NE(wa.id(), wb.id());
    int buf;
    auto h = wb.get(1 - ctx.rank(), 0, 1, &buf);
    ctx.flush(h);
    EXPECT_EQ(buf, 2);
    ctx.barrier();
  });
}

TEST(Window, LocalGetCountsAsLocal) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    std::vector<int> local(4, 7);
    auto win = ctx.create_window<int>(local);
    int buf;
    ctx.flush(win.get(ctx.rank(), 1, 1, &buf));
    EXPECT_EQ(buf, 7);
    EXPECT_EQ(ctx.stats().local_gets, 1u);
    EXPECT_EQ(ctx.stats().remote_gets, 0u);
  });
}

TEST(Window, EpochStartsAtZeroAndRefreshBumpsOnce) {
  Runtime::run(opts(4), [&](RankCtx& ctx) {
    std::vector<std::uint32_t> local(8, ctx.rank());
    auto win = ctx.create_window<std::uint32_t>(local);
    EXPECT_EQ(win.epoch(), 0u);

    // One collective refresh = exactly one bump, regardless of rank count.
    for (auto& x : local) x += 10;
    ctx.refresh_window(win, std::span<const std::uint32_t>(local));
    EXPECT_EQ(win.epoch(), 1u);
    ctx.refresh_window(win, std::span<const std::uint32_t>(local));
    EXPECT_EQ(win.epoch(), 2u);
    ctx.barrier();
  });
}

TEST(Window, RefreshRepublishesMutatedAndReallocatedBuffers) {
  Runtime::run(opts(3), [&](RankCtx& ctx) {
    std::vector<std::uint32_t> local(4, ctx.rank());
    auto win = ctx.create_window<std::uint32_t>(local);

    const std::uint32_t peer = (ctx.rank() + 1) % ctx.num_ranks();
    std::uint32_t buf[2];
    ctx.flush(win.get(peer, 0, 2, buf));
    EXPECT_EQ(buf[0], peer);

    // Grow the buffer (reallocation: new pointer AND new part size) before
    // republishing — the refresh must re-register both.
    ctx.barrier();  // quiesce reads of the old exposure before mutating
    std::vector<std::uint32_t> bigger(6, ctx.rank() + 50);
    local.clear();
    local.shrink_to_fit();
    ctx.refresh_window(win, std::span<const std::uint32_t>(bigger));
    EXPECT_EQ(win.part_size(peer), 6u);
    ctx.flush(win.get(peer, 4, 2, buf));
    EXPECT_EQ(buf[0], peer + 50);
    ctx.barrier();  // keep `bigger` exposed until all peers finished
  });
}

TEST(Window, RefreshIsFenceSynchronising) {
  // The entry fence must order the slowest reader's gets before any
  // republication: every rank reads a peer part, then refreshes, and the
  // read must always observe pre-refresh data (the eager memcpy would be a
  // use-after-free of the cleared buffer without the fence).
  Runtime::run(opts(4), [&](RankCtx& ctx) {
    std::vector<std::uint32_t> local(64, ctx.rank() + 1);
    auto win = ctx.create_window<std::uint32_t>(local);
    const std::uint32_t peer = (ctx.rank() + 3) % ctx.num_ranks();
    std::vector<std::uint32_t> buf(64);
    ctx.flush(win.get(peer, 0, 64, buf.data()));
    EXPECT_EQ(buf[0], peer + 1);

    std::vector<std::uint32_t> next(64, ctx.rank() + 1000);
    ctx.refresh_window(win, std::span<const std::uint32_t>(next));
    ctx.flush(win.get(peer, 0, 64, buf.data()));
    EXPECT_EQ(buf[0], peer + 1000);
    ctx.barrier();
  });
}

// ---------------------------------------------------------- virtual time ---

TEST(VirtualTime, RemoteCostsMoreThanLocal) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    std::vector<std::uint64_t> local(1024, 1);
    auto win = ctx.create_window<std::uint64_t>(local);
    const double t0 = ctx.now();
    std::uint64_t buf[16];
    ctx.flush(win.get(ctx.rank(), 0, 16, buf));
    const double local_cost = ctx.now() - t0;
    const double t1 = ctx.now();
    ctx.flush(win.get(1 - ctx.rank(), 0, 16, buf));
    const double remote_cost = ctx.now() - t1;
    // Aries-like model: remote ~2 us, local ~0.1 us.
    EXPECT_GT(remote_cost, 5.0 * local_cost);
    ctx.barrier();
  });
}

TEST(VirtualTime, ComputeOverlapsPendingGet) {
  // Issue a get, do "compute" longer than the transfer, then flush: the
  // flush must be free (completion already passed).
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    std::vector<std::uint32_t> local(1 << 16, 3);
    auto win = ctx.create_window<std::uint32_t>(local);
    std::vector<std::uint32_t> buf(1 << 10);
    auto h = win.get(1 - ctx.rank(), 0, buf.size(), buf.data());
    ctx.charge_compute(1.0);  // one full second >> any transfer
    const double before_flush = ctx.now();
    ctx.flush(h);
    EXPECT_DOUBLE_EQ(ctx.now(), before_flush);  // overlapped entirely
    ctx.barrier();
  });
}

TEST(VirtualTime, FlushWithoutComputeWaits) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    std::vector<std::uint32_t> local(1 << 16, 3);
    auto win = ctx.create_window<std::uint32_t>(local);
    std::vector<std::uint32_t> buf(1 << 10);
    const double t0 = ctx.now();
    auto h = win.get(1 - ctx.rank(), 0, buf.size(), buf.data());
    ctx.flush(h);
    const double waited = ctx.now() - t0;
    EXPECT_NEAR(waited, ctx.net().time_remote(buf.size() * 4), 1e-12);
    EXPECT_GT(ctx.stats().comm_seconds, 0.0);
    ctx.barrier();
  });
}

TEST(VirtualTime, NicSerialisesConsecutiveGets) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    std::vector<std::uint32_t> local(1 << 16, 3);
    auto win = ctx.create_window<std::uint32_t>(local);
    std::vector<std::uint32_t> a(256), b(256);
    const double t0 = ctx.now();
    auto ha = win.get(1 - ctx.rank(), 0, 256, a.data());
    auto hb = win.get(1 - ctx.rank(), 256, 256, b.data());
    ctx.flush(ha);
    ctx.flush(hb);
    // Both transfers share the injection port: total >= 2 transfer times.
    EXPECT_GE(ctx.now() - t0, 2.0 * ctx.net().time_remote(256 * 4) - 1e-12);
    ctx.barrier();
  });
}

TEST(VirtualTime, FlushAllCompletesEverything) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    std::vector<std::uint32_t> local(4096, 1);
    auto win = ctx.create_window<std::uint32_t>(local);
    std::vector<std::uint32_t> buf(64);
    for (int i = 0; i < 10; ++i)
      (void)win.get(1 - ctx.rank(), i * 64, 64, buf.data());
    ctx.flush_all();
    const double after = ctx.now();
    ctx.flush_all();  // idempotent: nothing pending
    EXPECT_DOUBLE_EQ(ctx.now(), after);
    EXPECT_EQ(ctx.stats().remote_gets, 10u);
    ctx.barrier();
  });
}

TEST(VirtualTime, DeterministicAcrossRuns) {
  auto run_once = [] {
    return Runtime::run(opts(4), [&](RankCtx& ctx) {
      std::vector<std::uint32_t> local(1024, ctx.rank());
      auto win = ctx.create_window<std::uint32_t>(local);
      std::vector<std::uint32_t> buf(128);
      for (std::uint32_t peer = 0; peer < 4; ++peer)
        if (peer != ctx.rank())
          ctx.flush(win.get(peer, 0, 128, buf.data()));
      ctx.charge_compute(1e-3 * ctx.rank());
      ctx.barrier();
    }).makespan;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

// ------------------------------------------------------------ collectives ---

TEST(Collectives, BarrierAlignsClocksToMax) {
  Runtime::run(opts(4), [&](RankCtx& ctx) {
    ctx.charge_compute(static_cast<double>(ctx.rank()));  // skewed clocks
    ctx.barrier();
    const double expected = 3.0 + ctx.net().time_barrier(4);
    EXPECT_DOUBLE_EQ(ctx.now(), expected);
    EXPECT_EQ(ctx.stats().barriers, 1u);
  });
}

TEST(Collectives, AllreduceSum) {
  Runtime::run(opts(5), [&](RankCtx& ctx) {
    const std::uint64_t sum = ctx.allreduce_sum(ctx.rank() + 1);
    EXPECT_EQ(sum, 15u);  // 1+2+3+4+5
  });
}

TEST(Collectives, AllreduceMax) {
  Runtime::run(opts(4), [&](RankCtx& ctx) {
    const double mx = ctx.allreduce_max(0.25 * ctx.rank());
    EXPECT_DOUBLE_EQ(mx, 0.75);
  });
}

TEST(Collectives, RepeatedBarriersStaySynchronised) {
  Runtime::run(opts(3), [&](RankCtx& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.charge_compute(ctx.rank() == 0 ? 1e-3 : 0.0);
      ctx.barrier();
    }
    // All ranks end with identical clocks (max-sync each round).
    const double before = ctx.now();
    const double mx = ctx.allreduce_max(before);
    EXPECT_DOUBLE_EQ(mx, before);
  });
}

// -------------------------------------------------------------- all_to_all ---

TEST(AllToAll, RoutesPayloads) {
  Runtime::run(opts(4), [&](RankCtx& ctx) {
    std::vector<std::vector<std::uint32_t>> out(4);
    for (std::uint32_t dst = 0; dst < 4; ++dst)
      out[dst] = {ctx.rank() * 10 + dst};
    const auto in = ctx.all_to_all(out);
    ASSERT_EQ(in.size(), 4u);
    for (std::uint32_t src = 0; src < 4; ++src) {
      ASSERT_EQ(in[src].size(), 1u);
      EXPECT_EQ(in[src][0], src * 10 + ctx.rank());
    }
  });
}

TEST(AllToAll, EmptyPayloadsAreFine) {
  Runtime::run(opts(3), [&](RankCtx& ctx) {
    std::vector<std::vector<std::uint32_t>> out(3);
    const auto in = ctx.all_to_all(out);
    for (const auto& v : in) EXPECT_TRUE(v.empty());
  });
}

TEST(AllToAll, SynchronisesAndCharges) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    ctx.charge_compute(ctx.rank() == 0 ? 1.0 : 0.0);  // rank 0 is the straggler
    std::vector<std::vector<std::uint32_t>> out(2);
    out[1 - ctx.rank()].assign(1024, 7);
    (void)ctx.all_to_all(out);
    // Rank 1 must have waited for rank 0 (blocking exchange).
    EXPECT_GE(ctx.now(), 1.0);
    EXPECT_GT(ctx.stats().bytes_sent, 0u);
  });
}

TEST(AllToAll, BackToBackExchangesDoNotCrossTalk) {
  Runtime::run(opts(2), [&](RankCtx& ctx) {
    for (std::uint32_t round = 0; round < 5; ++round) {
      std::vector<std::vector<std::uint32_t>> out(2);
      out[1 - ctx.rank()] = {round * 100 + ctx.rank()};
      const auto in = ctx.all_to_all(out);
      ASSERT_EQ(in[1 - ctx.rank()].size(), 1u);
      EXPECT_EQ(in[1 - ctx.rank()][0], round * 100 + (1 - ctx.rank()));
    }
  });
}

// ----------------------------------------------------------------- model ---

TEST(NetworkModel, AlphaBetaArithmetic) {
  NetworkModel m;
  EXPECT_DOUBLE_EQ(m.time_remote(0), m.remote_alpha_s);
  EXPECT_DOUBLE_EQ(m.time_remote(1000),
                   m.remote_alpha_s + 1000 * m.remote_byte_s);
  EXPECT_LT(m.time_local(64), m.time_remote(64));
  EXPECT_LT(m.time_cache_hit(64), m.time_remote(64));
}

TEST(NetworkModel, BarrierGrowsWithRanks) {
  NetworkModel m;
  EXPECT_LT(m.time_barrier(2), m.time_barrier(64));
}

TEST(CommStats, Accumulate) {
  CommStats a, b;
  a.remote_gets = 3;
  a.comm_seconds = 1.0;
  b.remote_gets = 4;
  b.comm_seconds = 0.5;
  a += b;
  EXPECT_EQ(a.remote_gets, 7u);
  EXPECT_DOUBLE_EQ(a.comm_seconds, 1.5);
}

TEST(ThreadCpuTimer, MeasuresCpuWork) {
  ThreadCpuTimer t;
  volatile double x = 0;
  for (int i = 0; i < 20000000; ++i) x = x + i;
  EXPECT_GT(t.elapsed_s(), 0.0);
  const double lap = t.lap_s();
  EXPECT_GT(lap, 0.0);
  // After the lap reset, only the two clock reads themselves have burned
  // CPU — far less than the 20M-iteration loop.
  EXPECT_LT(t.elapsed_s(), lap / 2.0);
}

}  // namespace
}  // namespace atlc::rma
