// Cross-module integration property sweeps: every engine (async cached /
// uncached, TriC plain / buffered) must agree with the single-node
// reference on every graph family, rank count, and partitioning — and the
// accounting invariants (edges, remote reads, cache stats, virtual time)
// must hold structurally.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "atlc/core/jaccard.hpp"
#include "atlc/core/lcc.hpp"
#include "atlc/core/similarity.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/stream/stream_engine.hpp"
#include "atlc/tric/tric.hpp"

namespace atlc {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;
using graph::VertexId;

enum class Family { Rmat, RmatDense, Uniform, Circles, RmatDirected };

struct Case {
  Family family;
  std::uint32_t ranks;
  bool cache;
  graph::PartitionKind partition;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string s;
  switch (c.family) {
    case Family::Rmat: s = "Rmat"; break;
    case Family::RmatDense: s = "RmatDense"; break;
    case Family::Uniform: s = "Uniform"; break;
    case Family::Circles: s = "Circles"; break;
    case Family::RmatDirected: s = "RmatDirected"; break;
  }
  s += "_p" + std::to_string(c.ranks);
  s += c.cache ? "_cached" : "_plain";
  s += c.partition == graph::PartitionKind::Block1D ? "_block" : "_cyclic";
  return s;
}

const CSRGraph& graph_for(Family family) {
  static std::map<Family, CSRGraph> cache;
  auto it = cache.find(family);
  if (it != cache.end()) return it->second;
  EdgeList e;
  switch (family) {
    case Family::Rmat:
      e = graph::generate_rmat({.scale = 9, .edge_factor = 8, .seed = 71});
      break;
    case Family::RmatDense:
      e = graph::generate_rmat({.scale = 8, .edge_factor = 24, .seed = 72});
      break;
    case Family::Uniform:
      e = graph::generate_uniform(
          {.num_vertices = 512, .num_edges = 4096, .seed = 73});
      break;
    case Family::Circles:
      e = graph::generate_circles({.num_vertices = 512, .seed = 74});
      break;
    case Family::RmatDirected:
      e = graph::generate_rmat({.scale = 8, .edge_factor = 8, .seed = 75,
                                .directedness = Directedness::Directed});
      break;
  }
  graph::clean(e);
  return cache.emplace(family, CSRGraph::from_edges(e)).first->second;
}

class EngineMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(EngineMatrix, MatchesReference) {
  const auto& c = GetParam();
  const CSRGraph& g = graph_for(c.family);
  core::EngineConfig cfg;
  cfg.use_cache = c.cache;
  if (c.cache) {
    cfg.victim_policy = clampi::VictimPolicy::UserScore;
    cfg.cache_sizing =
        core::CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 3);
  }
  const auto result =
      core::run_distributed_lcc(g, c.ranks, cfg, {}, c.partition);
  const auto ref = graph::reference_lcc(g);
  ASSERT_EQ(result.triangles, ref.triangles);
  EXPECT_EQ(result.global_triangles, ref.global_triangles);
  for (std::size_t v = 0; v < ref.lcc.size(); ++v)
    ASSERT_DOUBLE_EQ(result.lcc[v], ref.lcc[v]) << "vertex " << v;
}

TEST_P(EngineMatrix, AccountingInvariants) {
  const auto& c = GetParam();
  const CSRGraph& g = graph_for(c.family);
  core::EngineConfig cfg;
  cfg.use_cache = c.cache;
  cfg.track_remote_reads = true;
  if (c.cache)
    cfg.cache_sizing =
        core::CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 3);
  const auto r = core::run_distributed_lcc(g, c.ranks, cfg, {}, c.partition);

  // Every edge is processed exactly once across ranks.
  EXPECT_EQ(r.edges_processed, g.num_edges());
  // Remote + local fetches partition the edge set.
  EXPECT_LE(r.remote_edges, r.edges_processed);
  // Tracked remote reads sum to the remote edge count.
  std::uint64_t reads = 0;
  for (auto x : r.remote_reads) reads += x;
  EXPECT_EQ(reads, r.remote_edges);
  // A vertex is never remotely read by its own partition: every read
  // target must have nonzero in-degree from other partitions.
  const graph::Partition part(c.partition, g.num_vertices(), c.ranks);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (r.remote_reads[v] > 0 && c.ranks == 1)
      ADD_FAILURE() << "remote read with a single rank";
  // Virtual clocks: makespan is the max, and nonnegative components.
  double mx = 0;
  for (double clk : r.run.clocks) mx = std::max(mx, clk);
  EXPECT_DOUBLE_EQ(r.run.makespan, mx);
  for (const auto& s : r.run.stats) {
    EXPECT_GE(s.comm_seconds, 0.0);
    EXPECT_GE(s.compute_seconds, 0.0);
  }
  if (c.cache) {
    const auto& cs = r.adj_cache_total;
    EXPECT_EQ(cs.hits + cs.misses, cs.accesses());
    EXPECT_LE(cs.compulsory_misses + cs.capacity_misses + cs.conflict_misses +
                  cs.flush_misses,
              cs.misses);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineMatrix,
    ::testing::Values(
        Case{Family::Rmat, 1, false, graph::PartitionKind::Block1D},
        Case{Family::Rmat, 2, false, graph::PartitionKind::Block1D},
        Case{Family::Rmat, 5, false, graph::PartitionKind::Block1D},
        Case{Family::Rmat, 16, false, graph::PartitionKind::Block1D},
        Case{Family::Rmat, 16, true, graph::PartitionKind::Block1D},
        Case{Family::Rmat, 4, true, graph::PartitionKind::Cyclic1D},
        Case{Family::RmatDense, 4, false, graph::PartitionKind::Block1D},
        Case{Family::RmatDense, 4, true, graph::PartitionKind::Block1D},
        Case{Family::RmatDense, 7, true, graph::PartitionKind::Cyclic1D},
        Case{Family::Uniform, 4, false, graph::PartitionKind::Block1D},
        Case{Family::Uniform, 8, true, graph::PartitionKind::Block1D},
        Case{Family::Circles, 3, false, graph::PartitionKind::Cyclic1D},
        Case{Family::Circles, 8, true, graph::PartitionKind::Block1D},
        Case{Family::RmatDirected, 4, false, graph::PartitionKind::Block1D},
        Case{Family::RmatDirected, 6, true, graph::PartitionKind::Block1D}),
    case_name);

// ------------------------------------------------- TriC vs async engines ---

class TricMatrix : public ::testing::TestWithParam<std::tuple<Family, int>> {};

TEST_P(TricMatrix, TricAgreesWithAsyncEngine) {
  const auto [family, ranks] = GetParam();
  if (family == Family::RmatDirected) GTEST_SKIP() << "TriC is undirected";
  const CSRGraph& g = graph_for(family);
  const auto async = core::run_distributed_lcc(
      g, static_cast<std::uint32_t>(ranks));
  const auto tric =
      tric::run_tric(g, static_cast<std::uint32_t>(ranks));
  EXPECT_EQ(tric.global_triangles, async.global_triangles);
  for (std::size_t v = 0; v < async.triangles.size(); ++v) {
    ASSERT_EQ(2 * tric.per_vertex[v], async.triangles[v]) << "vertex " << v;
    ASSERT_DOUBLE_EQ(tric.lcc[v], async.lcc[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TricMatrix,
    ::testing::Combine(::testing::Values(Family::Rmat, Family::Uniform,
                                         Family::Circles),
                       ::testing::Values(1, 3, 8)));

// ------------------------------------------------------ determinism sweep ---

TEST(Determinism, VirtualTimeStableAcrossRepeatsAndModes) {
  const CSRGraph& g = graph_for(Family::Rmat);
  for (const bool cache : {false, true}) {
    core::EngineConfig cfg;
    cfg.use_cache = cache;
    const auto a = core::run_distributed_lcc(g, 6, cfg);
    const auto b = core::run_distributed_lcc(g, 6, cfg);
    EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan) << "cache=" << cache;
    EXPECT_EQ(a.run.total().remote_gets, b.run.total().remote_gets);
    EXPECT_EQ(a.adj_cache_total.hits, b.adj_cache_total.hits);
  }
}

TEST(Determinism, ResultsIndependentOfRankCount) {
  const CSRGraph& g = graph_for(Family::Circles);
  const auto r1 = core::run_distributed_lcc(g, 1);
  for (std::uint32_t p : {2u, 3u, 7u, 12u}) {
    const auto rp = core::run_distributed_lcc(g, p);
    ASSERT_EQ(rp.triangles, r1.triangles) << "p=" << p;
  }
}

TEST(Determinism, LccIndependentOfRankCountCyclic) {
  // The Block1D sweep above has a Cyclic1D twin: per-vertex results must
  // be invariant to BOTH the rank count and the partitioning scheme.
  const CSRGraph& g = graph_for(Family::Circles);
  const auto ref = core::run_distributed_lcc(g, 1);
  for (std::uint32_t p : {1u, 2u, 4u, 8u}) {
    const auto rp = core::run_distributed_lcc(g, p, {}, {},
                                              graph::PartitionKind::Cyclic1D);
    ASSERT_EQ(rp.triangles, ref.triangles) << "p=" << p;
    EXPECT_EQ(rp.global_triangles, ref.global_triangles) << "p=" << p;
    for (std::size_t v = 0; v < ref.lcc.size(); ++v)
      ASSERT_DOUBLE_EQ(rp.lcc[v], ref.lcc[v]) << "p=" << p << " v=" << v;
  }
}

TEST(Determinism, TcIndependentOfPartitionKind) {
  const CSRGraph& g = graph_for(Family::Rmat);
  const auto expected = graph::reference_lcc(g).global_triangles;
  for (std::uint32_t p : {1u, 2u, 4u, 8u}) {
    for (const auto kind :
         {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D}) {
      EXPECT_EQ(core::run_distributed_tc(g, p, {}, {}, kind), expected)
          << "p=" << p
          << (kind == graph::PartitionKind::Cyclic1D ? " cyclic" : " block");
    }
  }
}

TEST(Determinism, SimilarityAnalyticsIndependentOfPartitionKind) {
  // Jaccard / overlap / Adamic–Adar report per-adjacency-slot scores whose
  // layout is partition-independent; the Cyclic1D runs must reproduce the
  // single-rank scores bit-for-bit like the Block1D runs do.
  const CSRGraph& g = graph_for(Family::RmatDense);
  const auto jac1 = core::run_distributed_jaccard(g, 1);
  const auto ovl1 = core::run_distributed_overlap(g, 1);
  const auto aa1 = core::run_distributed_adamic_adar(g, 1);
  for (std::uint32_t p : {2u, 4u, 8u}) {
    const auto kind = graph::PartitionKind::Cyclic1D;
    const auto jac = core::run_distributed_jaccard(g, p, {}, {}, kind);
    const auto ovl = core::run_distributed_overlap(g, p, {}, {}, kind);
    const auto aa = core::run_distributed_adamic_adar(g, p, {}, {}, kind);
    ASSERT_EQ(jac.similarity.size(), jac1.similarity.size());
    for (std::size_t k = 0; k < jac1.similarity.size(); ++k) {
      ASSERT_DOUBLE_EQ(jac.similarity[k], jac1.similarity[k])
          << "jaccard p=" << p << " slot=" << k;
      ASSERT_DOUBLE_EQ(ovl.score[k], ovl1.score[k])
          << "overlap p=" << p << " slot=" << k;
      ASSERT_DOUBLE_EQ(aa.score[k], aa1.score[k])
          << "adamic-adar p=" << p << " slot=" << k;
    }
  }
}

TEST(Determinism, StreamingIndependentOfPartitionKind) {
  // The dynamic engine joins the same invariant: identical final state for
  // every (ranks, partition) combination.
  const CSRGraph& g = graph_for(Family::Rmat);
  stream::WorkloadConfig wl;
  wl.num_batches = 2;
  wl.batch_size = 64;
  wl.seed = 5;
  const auto batches = stream::generate_batches(g, wl);
  const auto base = stream::run_streaming_lcc(g, batches, 1, {});
  for (std::uint32_t p : {2u, 4u, 8u}) {
    for (const auto kind :
         {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D}) {
      stream::StreamOptions opts;
      opts.partition = kind;
      const auto r = stream::run_streaming_lcc(g, batches, p, opts);
      ASSERT_EQ(r.triangles, base.triangles) << "p=" << p;
      EXPECT_EQ(r.global_triangles, base.global_triangles) << "p=" << p;
    }
  }
}

// --------------------------------------------------- behaviour vs metrics ---

TEST(Scaling, MakespanDecreasesWithRanksOnLargeGraph) {
  // Strong scaling must hold in the simulator for a comm-bound run.
  auto e = graph::generate_rmat({.scale = 11, .edge_factor = 16, .seed = 99});
  graph::clean(e);
  const auto g = CSRGraph::from_edges(e);
  const double t4 = core::run_distributed_lcc(g, 4).run.makespan;
  const double t16 = core::run_distributed_lcc(g, 16).run.makespan;
  const double t64 = core::run_distributed_lcc(g, 64).run.makespan;
  EXPECT_LT(t16, t4);
  EXPECT_LT(t64, t16);
}

TEST(Scaling, UniformGraphBalancesBetterThanSkewed) {
  // 1D block partitioning imbalance (paper Sec. IV-D2 blames it for
  // Orkut's weaker scaling): max/mean rank time is higher for R-MAT.
  auto imbalance = [](const CSRGraph& g) {
    const auto r = core::run_distributed_lcc(g, 8);
    double mx = 0, sum = 0;
    for (double c : r.run.clocks) {
      mx = std::max(mx, c);
      sum += c;
    }
    return mx / (sum / static_cast<double>(r.run.clocks.size()));
  };
  EXPECT_GT(imbalance(graph_for(Family::Rmat)),
            imbalance(graph_for(Family::Uniform)) - 0.05);
}

TEST(CacheBehaviour, HitRateGrowsWithBudget) {
  const CSRGraph& g = graph_for(Family::RmatDense);
  double prev_hit = -1.0;
  for (const double frac : {0.05, 0.25, 1.0}) {
    core::EngineConfig cfg;
    cfg.use_cache = true;
    cfg.cache_sizing = core::CacheSizing::paper_default(
        g.num_vertices(),
        static_cast<std::uint64_t>(frac * static_cast<double>(g.csr_bytes())));
    const auto r = core::run_distributed_lcc(g, 4, cfg);
    const double hit = r.adj_cache_total.hit_rate();
    EXPECT_GE(hit, prev_hit - 1e-9) << "frac=" << frac;
    prev_hit = hit;
  }
  EXPECT_GT(prev_hit, 0.5);  // ample cache serves most re-accesses
}

TEST(CacheBehaviour, CompulsoryMissesInvariantToPolicy) {
  // Compulsory misses are a property of the access stream, not the policy.
  const CSRGraph& g = graph_for(Family::Rmat);
  std::uint64_t compulsory[2];
  int i = 0;
  for (auto policy : {clampi::VictimPolicy::LruPositional,
                      clampi::VictimPolicy::UserScore}) {
    core::EngineConfig cfg;
    cfg.use_cache = true;
    cfg.victim_policy = policy;
    cfg.cache_sizing =
        core::CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 8);
    compulsory[i++] =
        core::run_distributed_lcc(g, 4, cfg).adj_cache_total.compulsory_misses;
  }
  EXPECT_EQ(compulsory[0], compulsory[1]);
}

TEST(CacheBehaviour, UpperBoundIsOneMinusCompulsory) {
  const CSRGraph& g = graph_for(Family::RmatDense);
  core::EngineConfig cfg;
  cfg.use_cache = true;
  cfg.cache_sizing = core::CacheSizing::paper_default(
      g.num_vertices(), 4 * g.csr_bytes());  // effectively infinite
  const auto r = core::run_distributed_lcc(g, 4, cfg);
  const auto& cs = r.adj_cache_total;
  // With an infinite cache, every non-compulsory access hits.
  EXPECT_EQ(cs.hits, cs.accesses() - cs.compulsory_misses);
  EXPECT_EQ(cs.evictions_space + cs.evictions_conflict, 0u);
}

}  // namespace
}  // namespace atlc
