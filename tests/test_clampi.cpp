// Tests for the CLaMPI-style cache: free-space management, hash index,
// victim selection (LRU+positional and user scores), miss classification,
// consistency modes, adaptive resizing, and the CachedWindow integration.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "atlc/clampi/cache.hpp"
#include "atlc/clampi/cached_window.hpp"
#include "atlc/clampi/free_space.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::clampi {
namespace {

std::vector<std::byte> payload(std::size_t n, std::uint8_t fill) {
  return std::vector<std::byte>(n, std::byte{fill});
}

Key key_of(std::uint32_t target, std::uint64_t off, std::uint64_t bytes) {
  return Key{target, off, bytes};
}

// -------------------------------------------------------------- FreeSpace ---

TEST(FreeSpace, AllocateAndReleaseRoundTrip) {
  FreeSpace fs(1024);
  EXPECT_EQ(fs.total_free(), 1024u);
  const auto a = fs.allocate(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(fs.total_free(), 924u);
  fs.release(*a, 100);
  EXPECT_EQ(fs.total_free(), 1024u);
  EXPECT_EQ(fs.num_regions(), 1u);  // coalesced back to one region
}

TEST(FreeSpace, BestFitPrefersSmallestFittingRegion) {
  FreeSpace fs(1000);
  const auto a = fs.allocate(100);  // [0,100)
  const auto b = fs.allocate(50);   // [100,150)
  const auto c = fs.allocate(200);  // [150,350)
  ASSERT_TRUE(a && b && c);
  fs.release(*a, 100);  // free: [0,100)
  fs.release(*c, 200);  // free: [150,350) and tail [350,1000)
  // A 90-byte request best-fits the 100-byte hole, not the 200-byte one.
  const auto d = fs.allocate(90);
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, 0u);
}

TEST(FreeSpace, CoalescesBothSides) {
  FreeSpace fs(300);
  const auto a = fs.allocate(100);
  const auto b = fs.allocate(100);
  const auto c = fs.allocate(100);
  ASSERT_TRUE(a && b && c);
  fs.release(*a, 100);
  fs.release(*c, 100);
  EXPECT_EQ(fs.num_regions(), 2u);
  fs.release(*b, 100);  // merges with both neighbors
  EXPECT_EQ(fs.num_regions(), 1u);
  EXPECT_EQ(fs.largest_free(), 300u);
}

TEST(FreeSpace, ExternalFragmentationBlocksLargeAlloc) {
  FreeSpace fs(300);
  const auto a = fs.allocate(100);
  const auto b = fs.allocate(100);
  const auto c = fs.allocate(100);
  ASSERT_TRUE(a && b && c);
  fs.release(*a, 100);
  fs.release(*c, 100);
  // 200 bytes free in total, but no single 150-byte region.
  EXPECT_EQ(fs.total_free(), 200u);
  EXPECT_FALSE(fs.allocate(150).has_value());
  EXPECT_GT(fs.fragmentation(), 0.0);
}

TEST(FreeSpace, AdjacentFreeMeasuresMergeBenefit) {
  FreeSpace fs(300);
  const auto a = fs.allocate(100);
  const auto b = fs.allocate(100);
  ASSERT_TRUE(a && b);
  fs.release(*a, 100);
  // Entry b ([100,200)) has 100 free bytes before it and 100 after.
  EXPECT_EQ(fs.adjacent_free(*b, 100), 200u);
}

TEST(FreeSpace, ZeroByteAllocSucceeds) {
  FreeSpace fs(16);
  EXPECT_TRUE(fs.allocate(0).has_value());
  EXPECT_EQ(fs.total_free(), 16u);
}

TEST(FreeSpace, ResetRestoresSingleRegion) {
  FreeSpace fs(128);
  (void)fs.allocate(64);
  fs.reset();
  EXPECT_EQ(fs.total_free(), 128u);
  EXPECT_EQ(fs.num_regions(), 1u);
}

// ------------------------------------------------------------- Cache core ---

CacheConfig small_config() {
  CacheConfig c;
  c.buffer_bytes = 1024;
  c.hash_slots = 64;
  c.mode = Mode::AlwaysCache;
  return c;
}

TEST(Cache, InsertThenHit) {
  Cache cache(small_config());
  const auto data = payload(32, 0xAB);
  const Key k = key_of(1, 0, 32);
  EXPECT_TRUE(cache.insert(k, data.data()));
  std::vector<std::byte> out(32);
  EXPECT_TRUE(cache.lookup(k, out.data()));
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, MissOnUnknownKey) {
  Cache cache(small_config());
  std::vector<std::byte> out(8);
  EXPECT_FALSE(cache.lookup(key_of(0, 0, 8), out.data()));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().compulsory_misses, 1u);
}

TEST(Cache, DistinguishesKeysByAllFields) {
  Cache cache(small_config());
  const auto a = payload(16, 1), b = payload(16, 2);
  EXPECT_TRUE(cache.insert(key_of(0, 0, 16), a.data()));
  EXPECT_TRUE(cache.insert(key_of(1, 0, 16), b.data()));  // same offset, other target
  std::vector<std::byte> out(16);
  EXPECT_TRUE(cache.lookup(key_of(1, 0, 16), out.data()));
  EXPECT_EQ(out, b);
  EXPECT_FALSE(cache.lookup(key_of(2, 0, 16), out.data()));
}

TEST(Cache, OversizedEntryRejected) {
  Cache cache(small_config());
  const auto data = payload(2048, 3);  // buffer is 1024
  EXPECT_FALSE(cache.insert(key_of(0, 0, 2048), data.data()));
  EXPECT_EQ(cache.stats().insert_failures, 1u);
}

TEST(Cache, CapacityEvictionMakesRoom) {
  Cache cache(small_config());  // 1024 B buffer
  const auto data = payload(256, 9);
  for (std::uint32_t i = 0; i < 6; ++i)
    EXPECT_TRUE(cache.insert(key_of(0, i * 256, 256), data.data()));
  EXPECT_LE(cache.num_entries(), 4u);
  EXPECT_GE(cache.stats().evictions_space, 2u);
}

TEST(Cache, LruEvictsColdestEntry) {
  CacheConfig cfg = small_config();
  cfg.lru_window = 1;  // pure LRU (no positional rescue)
  Cache cache(cfg);
  const auto data = payload(256, 1);
  for (std::uint32_t i = 0; i < 4; ++i)
    ASSERT_TRUE(cache.insert(key_of(0, i * 256, 256), data.data()));
  // Touch entry 0 so entry 1 becomes the coldest.
  std::vector<std::byte> out(256);
  ASSERT_TRUE(cache.lookup(key_of(0, 0, 256), out.data()));
  ASSERT_TRUE(cache.insert(key_of(0, 4 * 256, 256), data.data()));  // evicts #1
  EXPECT_TRUE(cache.lookup(key_of(0, 0, 256), out.data()));
  EXPECT_FALSE(cache.lookup(key_of(0, 1 * 256, 256), out.data()));
}

TEST(Cache, CapacityMissClassification) {
  CacheConfig cfg = small_config();
  cfg.lru_window = 1;
  Cache cache(cfg);
  const auto data = payload(512, 1);
  ASSERT_TRUE(cache.insert(key_of(0, 0, 512), data.data()));
  ASSERT_TRUE(cache.insert(key_of(0, 512, 512), data.data()));
  ASSERT_TRUE(cache.insert(key_of(0, 1024, 512), data.data()));  // evicts first
  std::vector<std::byte> out(512);
  EXPECT_FALSE(cache.lookup(key_of(0, 0, 512), out.data()));
  EXPECT_EQ(cache.stats().capacity_misses, 1u);
  EXPECT_EQ(cache.stats().compulsory_misses, 0u);
}

TEST(Cache, UserScoreEvictsLowestScore) {
  CacheConfig cfg = small_config();
  cfg.policy = VictimPolicy::UserScore;
  Cache cache(cfg);
  const auto data = payload(256, 1);
  // Insert four entries with scores 10, 1, 7, 5 — capacity full.
  ASSERT_TRUE(cache.insert(key_of(0, 0, 256), data.data(), 10));
  ASSERT_TRUE(cache.insert(key_of(0, 256, 256), data.data(), 1));
  ASSERT_TRUE(cache.insert(key_of(0, 512, 256), data.data(), 7));
  ASSERT_TRUE(cache.insert(key_of(0, 768, 256), data.data(), 5));
  // Next insert evicts the score-1 entry regardless of recency.
  std::vector<std::byte> out(256);
  ASSERT_TRUE(cache.lookup(key_of(0, 256, 256), out.data()));  // make it MRU
  ASSERT_TRUE(cache.insert(key_of(0, 1024, 256), data.data(), 8));
  EXPECT_FALSE(cache.lookup(key_of(0, 256, 256), out.data()));
  EXPECT_TRUE(cache.lookup(key_of(0, 0, 256), out.data()));
}

TEST(Cache, UserScoreProtectsHighDegreeEntries) {
  // The paper's motivation: high-degree adjacency lists should survive
  // floods of low-degree entries.
  CacheConfig cfg;
  cfg.buffer_bytes = 4096;
  cfg.hash_slots = 256;
  cfg.policy = VictimPolicy::UserScore;
  Cache cache(cfg);
  const auto hub_data = payload(1024, 0x77);
  ASSERT_TRUE(cache.insert(key_of(9, 0, 1024), hub_data.data(), 1000.0));
  const auto small = payload(64, 1);
  for (std::uint32_t i = 0; i < 200; ++i)
    (void)cache.insert(key_of(0, i * 64, 64), small.data(), 2.0);
  std::vector<std::byte> out(1024);
  EXPECT_TRUE(cache.lookup(key_of(9, 0, 1024), out.data()));
  EXPECT_EQ(out, hub_data);
}

TEST(Cache, ConflictEvictionWhenProbeWindowFull) {
  CacheConfig cfg;
  cfg.buffer_bytes = 1 << 20;  // space is NOT the constraint
  cfg.hash_slots = 4;          // tiny table
  cfg.probe_limit = 2;
  Cache cache(cfg);
  const auto data = payload(16, 1);
  for (std::uint32_t i = 0; i < 64; ++i)
    ASSERT_TRUE(cache.insert(key_of(0, i * 16, 16), data.data()));
  EXPECT_GT(cache.stats().evictions_conflict, 0u);
  EXPECT_LE(cache.num_entries(), 4u);
}

TEST(Cache, FlushDropsEverythingAndCountsFlushMisses) {
  Cache cache(small_config());
  const auto data = payload(64, 1);
  ASSERT_TRUE(cache.insert(key_of(0, 0, 64), data.data()));
  cache.flush();
  EXPECT_EQ(cache.num_entries(), 0u);
  std::vector<std::byte> out(64);
  EXPECT_FALSE(cache.lookup(key_of(0, 0, 64), out.data()));
  EXPECT_EQ(cache.stats().flush_misses, 1u);
}

TEST(Cache, TransparentModeFlushesOnEpochClose) {
  CacheConfig cfg = small_config();
  cfg.mode = Mode::Transparent;
  Cache cache(cfg);
  const auto data = payload(64, 1);
  ASSERT_TRUE(cache.insert(key_of(0, 0, 64), data.data()));
  cache.epoch_close();
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(Cache, AlwaysCacheModeSurvivesEpochClose) {
  Cache cache(small_config());  // AlwaysCache
  const auto data = payload(64, 1);
  ASSERT_TRUE(cache.insert(key_of(0, 0, 64), data.data()));
  cache.epoch_close();
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(Cache, AdaptiveResizeFlushesAndGrows) {
  CacheConfig cfg;
  cfg.buffer_bytes = 1 << 20;
  cfg.hash_slots = 4;
  cfg.probe_limit = 2;
  cfg.adaptive = true;
  cfg.adaptive_interval = 64;
  Cache cache(cfg);
  const auto data = payload(16, 1);
  std::vector<std::byte> out(16);
  // Hammer with distinct keys: conflicts mount, adaptivity must kick in.
  for (std::uint32_t i = 0; i < 1000; ++i) {
    if (!cache.lookup(key_of(0, i * 16, 16), out.data()))
      (void)cache.insert(key_of(0, i * 16, 16), data.data());
  }
  EXPECT_GT(cache.stats().hash_resizes, 0u);
  EXPECT_GT(cache.stats().flushes, 0u);
}

TEST(Cache, EntriesSnapshotMatchesContents) {
  Cache cache(small_config());
  const auto data = payload(32, 1);
  ASSERT_TRUE(cache.insert(key_of(0, 0, 32), data.data(), 3.5));
  ASSERT_TRUE(cache.insert(key_of(1, 64, 32), data.data(), 7.0));
  const auto entries = cache.entries();
  ASSERT_EQ(entries.size(), 2u);
  double score_sum = 0;
  for (const auto& e : entries) score_sum += e.user_score;
  EXPECT_DOUBLE_EQ(score_sum, 10.5);
}

TEST(Cache, SizingHeuristics) {
  // Fixed-size entries: one slot per entry that fits.
  EXPECT_EQ(Cache::suggest_hash_slots_fixed(1024, 16), 64u);
  // Power law (paper: n * f^alpha, alpha=2): half-the-graph cache on 1e6
  // vertices expects 1e6 * 0.25 entries.
  EXPECT_EQ(Cache::suggest_hash_slots_power_law(1000000, 0.5), 250000u);
  // Degenerate inputs stay sane.
  EXPECT_GE(Cache::suggest_hash_slots_fixed(0, 16), 16u);
  EXPECT_GE(Cache::suggest_hash_slots_power_law(100, 0.0), 16u);
}

// Shadow-model property test: with ample space and slots, the cache must
// behave exactly like a map (every inserted key hits with correct data).
TEST(Cache, ShadowModelNoEvictionRegime) {
  CacheConfig cfg;
  cfg.buffer_bytes = 1 << 20;
  cfg.hash_slots = 1 << 14;
  Cache cache(cfg);
  util::Xoshiro256 rng(42);
  std::map<std::uint64_t, std::vector<std::byte>> shadow;
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t off = rng.next_below(256) * 8;
    const std::uint64_t bytes = 8 + rng.next_below(4) * 8;
    const Key k = key_of(0, off, bytes);
    const std::uint64_t id = key_hash(k);
    std::vector<std::byte> out(bytes);
    const bool hit = cache.lookup(k, out.data());
    const auto it = shadow.find(id);
    EXPECT_EQ(hit, it != shadow.end()) << "step " << step;
    if (hit) {
      EXPECT_EQ(out, it->second);
    } else {
      const auto data = payload(bytes, static_cast<std::uint8_t>(off ^ bytes));
      ASSERT_TRUE(cache.insert(k, data.data()));
      shadow[id] = data;
    }
  }
  EXPECT_EQ(cache.num_entries(), shadow.size());
  EXPECT_EQ(cache.stats().evictions_space, 0u);
  EXPECT_EQ(cache.stats().evictions_conflict, 0u);
}

// Under heavy eviction pressure, hits must still return the right bytes.
TEST(Cache, EvictionRegimeNeverServesWrongData) {
  CacheConfig cfg;
  cfg.buffer_bytes = 4096;
  cfg.hash_slots = 32;
  cfg.probe_limit = 4;
  Cache cache(cfg);
  util::Xoshiro256 rng(7);
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t idx = rng.next_below(64);
    const std::uint64_t bytes = 64 + (idx % 7) * 32;
    const Key k = key_of(0, idx * 1024, bytes);
    std::vector<std::byte> out(bytes);
    const auto expected = payload(bytes, static_cast<std::uint8_t>(idx));
    if (cache.lookup(k, out.data())) {
      EXPECT_EQ(out, expected) << "corrupted hit at step " << step;
    } else {
      (void)cache.insert(k, expected.data());
    }
  }
  EXPECT_GT(cache.stats().evictions_space + cache.stats().evictions_conflict,
            0u);
}

// ---------------------------------------------- admission & run eviction ---

TEST(CacheAdmission, LowScoreNewcomerRejected) {
  CacheConfig cfg = small_config();
  cfg.policy = VictimPolicy::UserScore;
  Cache cache(cfg);
  const auto data = payload(256, 1);
  for (std::uint32_t i = 0; i < 4; ++i)
    ASSERT_TRUE(cache.insert(key_of(0, i * 256, 256), data.data(), 50.0));
  // Cache is full of score-50 residents; a score-10 newcomer must bounce.
  EXPECT_FALSE(cache.insert(key_of(0, 9999, 256), data.data(), 10.0));
  EXPECT_GT(cache.stats().admission_rejects, 0u);
  EXPECT_EQ(cache.num_entries(), 4u);
  // All residents still served.
  std::vector<std::byte> out(256);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_TRUE(cache.lookup(key_of(0, i * 256, 256), out.data()));
}

TEST(CacheAdmission, EqualScoreDoesNotChurn) {
  CacheConfig cfg = small_config();
  cfg.policy = VictimPolicy::UserScore;
  Cache cache(cfg);
  const auto data = payload(256, 1);
  for (std::uint32_t i = 0; i < 4; ++i)
    ASSERT_TRUE(cache.insert(key_of(0, i * 256, 256), data.data(), 5.0));
  // Same-score newcomers must not displace residents (no cycling).
  EXPECT_FALSE(cache.insert(key_of(1, 0, 256), data.data(), 5.0));
  EXPECT_EQ(cache.num_entries(), 4u);
}

TEST(CacheRunEviction, AssemblesContiguousSpaceForLargeEntry) {
  // Buffer packed with 32 small low-score entries; a high-score entry of
  // half the buffer must be admitted by clearing a contiguous run.
  CacheConfig cfg;
  cfg.buffer_bytes = 1024;
  cfg.hash_slots = 128;
  cfg.policy = VictimPolicy::UserScore;
  Cache cache(cfg);
  const auto small = payload(32, 1);
  for (std::uint32_t i = 0; i < 32; ++i)
    ASSERT_TRUE(cache.insert(key_of(0, i * 32, 32), small.data(), 1.0));
  const auto big = payload(512, 9);
  EXPECT_TRUE(cache.insert(key_of(7, 0, 512), big.data(), 100.0));
  std::vector<std::byte> out(512);
  EXPECT_TRUE(cache.lookup(key_of(7, 0, 512), out.data()));
  EXPECT_EQ(out, big);
}

TEST(CacheRunEviction, HubsDoNotThrashEachOther) {
  // A hub-sized resident with the top score must not be sacrificed to
  // admit a slightly lower-scored hub (strictly-descending displacement
  // only — this is what keeps the paper's degree scores stable).
  CacheConfig cfg;
  cfg.buffer_bytes = 1024;
  cfg.hash_slots = 128;
  cfg.policy = VictimPolicy::UserScore;
  Cache cache(cfg);
  const auto hub_a = payload(768, 0xA);
  ASSERT_TRUE(cache.insert(key_of(0, 0, 768), hub_a.data(), 1000.0));
  const auto filler = payload(64, 1);
  for (std::uint32_t i = 0; i < 4; ++i)
    (void)cache.insert(key_of(1, i * 64, 64), filler.data(), 2.0);
  // Hub B (score 900) cannot fit without clearing hub A (score 1000).
  const auto hub_b = payload(768, 0xB);
  EXPECT_FALSE(cache.insert(key_of(2, 0, 768), hub_b.data(), 900.0));
  std::vector<std::byte> out(768);
  EXPECT_TRUE(cache.lookup(key_of(0, 0, 768), out.data()));
  EXPECT_EQ(out, hub_a);
}

TEST(CacheRunEviction, LruPolicyStillAdmitsLargeEntries) {
  CacheConfig cfg;
  cfg.buffer_bytes = 1024;
  cfg.hash_slots = 128;  // LruPositional default policy
  Cache cache(cfg);
  const auto small = payload(32, 1);
  for (std::uint32_t i = 0; i < 32; ++i)
    ASSERT_TRUE(cache.insert(key_of(0, i * 32, 32), small.data()));
  const auto big = payload(900, 5);
  EXPECT_TRUE(cache.insert(key_of(3, 0, 900), big.data()));
  std::vector<std::byte> out(900);
  EXPECT_TRUE(cache.lookup(key_of(3, 0, 900), out.data()));
  EXPECT_EQ(out, big);
}

// --------------------------------------------------------- CachedWindow ---

TEST(CachedWindow, HitsAvoidRemoteGets) {
  rma::Runtime::Options o;
  o.ranks = 2;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    std::vector<std::uint32_t> local(256);
    for (std::size_t i = 0; i < local.size(); ++i)
      local[i] = ctx.rank() * 1000 + static_cast<std::uint32_t>(i);
    auto raw = ctx.create_window<std::uint32_t>(local);
    CacheConfig cfg;
    cfg.buffer_bytes = 1 << 16;
    cfg.hash_slots = 256;
    CachedWindow<std::uint32_t> win(ctx, raw, cfg);

    const std::uint32_t peer = 1 - ctx.rank();
    std::uint32_t buf[8];
    win.get(peer, 16, 8, buf);  // miss -> remote
    EXPECT_EQ(ctx.stats().remote_gets, 1u);
    EXPECT_EQ(buf[0], peer * 1000 + 16);

    win.get(peer, 16, 8, buf);  // hit -> served locally
    EXPECT_EQ(ctx.stats().remote_gets, 1u);  // unchanged
    EXPECT_EQ(buf[7], peer * 1000 + 23);
    EXPECT_EQ(win.cache().stats().hits, 1u);
    ctx.barrier();
  });
}

TEST(CachedWindow, LocalGetsBypassCache) {
  rma::Runtime::Options o;
  o.ranks = 2;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    std::vector<std::uint32_t> local(64, ctx.rank());
    auto raw = ctx.create_window<std::uint32_t>(local);
    CachedWindow<std::uint32_t> win(ctx, raw, small_config());
    std::uint32_t buf[4];
    win.get(ctx.rank(), 0, 4, buf);
    EXPECT_EQ(win.cache().stats().accesses(), 0u);
    EXPECT_EQ(ctx.stats().local_gets, 1u);
    ctx.barrier();
  });
}

TEST(CachedWindow, HitChargesLessThanMiss) {
  rma::Runtime::Options o;
  o.ranks = 2;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    std::vector<std::uint32_t> local(1 << 12, 5);
    auto raw = ctx.create_window<std::uint32_t>(local);
    CacheConfig cfg;
    cfg.buffer_bytes = 1 << 16;
    cfg.hash_slots = 64;
    CachedWindow<std::uint32_t> win(ctx, raw, cfg);
    std::vector<std::uint32_t> buf(1024);

    const double t0 = ctx.now();
    win.get(1 - ctx.rank(), 0, 1024, buf.data());
    const double miss_cost = ctx.now() - t0;
    const double t1 = ctx.now();
    win.get(1 - ctx.rank(), 0, 1024, buf.data());
    const double hit_cost = ctx.now() - t1;
    EXPECT_LT(hit_cost, miss_cost / 5.0);
    ctx.barrier();
  });
}

// ----------------------------------------------------- epoch invalidation ---

TEST(CacheEpochs, StaleEntryServedAsMissAndRecycled) {
  Cache cache(small_config());
  const auto v1 = payload(32, 0x11);
  const Key k = key_of(1, 0, 32);
  EXPECT_TRUE(cache.insert(k, v1.data()));

  cache.set_epoch(1);  // the window the payload came from was refreshed
  std::vector<std::byte> out(32, std::byte{0});
  EXPECT_FALSE(cache.lookup(k, out.data()));  // never served stale
  EXPECT_EQ(out, payload(32, 0x00));          // dst untouched on miss
  EXPECT_EQ(cache.stats().stale_evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.num_entries(), 0u);  // recycled, not resident

  // Re-insert at the new epoch: served again.
  const auto v2 = payload(32, 0x22);
  EXPECT_TRUE(cache.insert(k, v2.data()));
  EXPECT_TRUE(cache.lookup(k, out.data()));
  EXPECT_EQ(out, v2);
}

TEST(CacheEpochs, ContainsTreatsStaleAsAbsentAndInsertReplaces) {
  Cache cache(small_config());
  const auto v1 = payload(16, 0x01);
  const Key k = key_of(2, 8, 16);
  EXPECT_TRUE(cache.insert(k, v1.data()));
  EXPECT_TRUE(cache.contains(k));

  cache.set_epoch(3);
  EXPECT_FALSE(cache.contains(k));  // stale reads as absent...
  const auto v2 = payload(16, 0x02);
  EXPECT_TRUE(cache.insert(k, v2.data()));  // ...and insert replaces it
  EXPECT_EQ(cache.stats().stale_evictions, 1u);
  std::vector<std::byte> out(16);
  EXPECT_TRUE(cache.lookup(k, out.data()));
  EXPECT_EQ(out, v2);
}

TEST(CacheEpochs, SameEpochKeepsAlwaysCacheBehaviour) {
  Cache cache(small_config());
  const auto data = payload(16, 0x0A);
  const Key k = key_of(0, 0, 16);
  EXPECT_TRUE(cache.insert(k, data.data()));
  cache.set_epoch(0);  // unchanged epoch: nothing invalidated
  std::vector<std::byte> out(16);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(cache.lookup(k, out.data()));
  EXPECT_EQ(cache.stats().stale_evictions, 0u);
}

TEST(CachedWindow, RefreshWindowInvalidatesCachedEntries) {
  // The full stack: a cached get, a collective refresh_window republishing
  // mutated data, then the same get again — the new bytes must be served
  // and the stale entry recycled, with the invalidation observable in the
  // stats.
  rma::Runtime::Options o;
  o.ranks = 2;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    std::vector<std::uint32_t> local(128, ctx.rank() + 1);
    auto raw = ctx.create_window<std::uint32_t>(local);
    CacheConfig cfg;
    cfg.buffer_bytes = 1 << 14;
    cfg.hash_slots = 64;
    CachedWindow<std::uint32_t> win(ctx, raw, cfg);

    const std::uint32_t peer = 1 - ctx.rank();
    std::uint32_t buf[4] = {};
    win.get(peer, 0, 4, buf);  // miss -> cached
    EXPECT_EQ(buf[0], peer + 1);
    win.get(peer, 0, 4, buf);  // hit from cache
    EXPECT_EQ(win.cache().stats().hits, 1u);
    EXPECT_EQ(raw.epoch(), 0u);

    // Mutate the exposed buffer and republish (collective). In-place
    // mutation needs its own quiesce barrier BEFORE touching the bytes —
    // refresh_window's entry fence only orders the republication, not a
    // mutation the caller performed ahead of the call.
    ctx.barrier();
    for (auto& x : local) x += 100;
    ctx.refresh_window(raw, std::span<const std::uint32_t>(local));
    EXPECT_EQ(raw.epoch(), 1u);

    win.get(peer, 0, 4, buf);  // stale probe -> recycled -> fresh fetch
    EXPECT_EQ(buf[0], peer + 101) << "stale payload must never be served";
    EXPECT_EQ(win.cache().stats().stale_evictions, 1u);
    EXPECT_EQ(win.cache().stats().hits, 1u);  // no new hit from the probe

    win.get(peer, 0, 4, buf);  // re-cached at the new epoch: hits again
    EXPECT_EQ(buf[0], peer + 101);
    EXPECT_EQ(win.cache().stats().hits, 2u);
    ctx.barrier();
  });
}

TEST(CachedWindow, PendingMissAcrossRefreshIsNotCached) {
  // A miss transfer issued before a refresh_window and finished after it
  // carries pre-refresh bytes (the simulated get copies eagerly). finish()
  // must DISCARD that payload instead of inserting it stamped with the new
  // epoch — otherwise a later lookup would serve stale bytes as a fresh
  // hit.
  rma::Runtime::Options o;
  o.ranks = 2;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    std::vector<std::uint32_t> local(64, ctx.rank() + 1);
    auto raw = ctx.create_window<std::uint32_t>(local);
    CacheConfig cfg;
    cfg.buffer_bytes = 1 << 14;
    cfg.hash_slots = 64;
    CachedWindow<std::uint32_t> win(ctx, raw, cfg);

    const std::uint32_t peer = 1 - ctx.rank();
    std::uint32_t buf[4] = {};
    auto pending = win.begin_get(peer, 0, 4, buf, 1.0);  // miss in flight
    std::vector<std::uint32_t> next(64, ctx.rank() + 77);
    ctx.refresh_window(raw, std::span<const std::uint32_t>(next));
    win.finish(pending);
    EXPECT_EQ(buf[0], peer + 1);  // caller sees the pre-refresh transfer
    EXPECT_EQ(win.cache().num_entries(), 0u) << "stale payload cached";

    win.get(peer, 0, 4, buf);  // must refetch from the live exposure
    EXPECT_EQ(buf[0], peer + 77);
    EXPECT_EQ(win.cache().stats().hits, 0u);
    ctx.barrier();  // keep `next` exposed until all peers finished
  });
}

TEST(CachedWindow, OverlappedMissInsertsOnFinish) {
  rma::Runtime::Options o;
  o.ranks = 2;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    std::vector<std::uint32_t> local(4096, 9);
    auto raw = ctx.create_window<std::uint32_t>(local);
    CacheConfig cfg;
    cfg.buffer_bytes = 1 << 16;
    cfg.hash_slots = 64;
    CachedWindow<std::uint32_t> win(ctx, raw, cfg);
    std::vector<std::uint32_t> buf(512);
    auto pending = win.begin_get(1 - ctx.rank(), 0, 512, buf.data(), 3.0);
    EXPECT_EQ(win.cache().num_entries(), 0u);  // not yet inserted
    ctx.charge_compute(1e-3);                  // overlapping work
    win.finish(pending);
    EXPECT_EQ(win.cache().num_entries(), 1u);
    EXPECT_EQ(buf[0], 9u);
    ctx.barrier();
  });
}

}  // namespace
}  // namespace atlc::clampi
