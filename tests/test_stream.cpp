// atlc::stream validation: after every batch the incrementally maintained
// triangle counts and LCC must match a from-scratch reference recount of
// the evolved graph BIT-IDENTICALLY — across rank counts, both partition
// kinds, caching on and off, for insertions, deletions, mixed batches,
// intra-batch duplicates and partition-straddling edges. Plus the epoch
// contract: a cached entry from before a refresh_window bump is never
// served (stale_evictions observed instead).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atlc/graph/clean.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/stream/stream_engine.hpp"
#include "atlc/stream/update.hpp"
#include "test_support.hpp"

namespace atlc {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;
using graph::VertexId;
using stream::Batch;
using stream::EdgeUpdate;
using stream::Op;

EdgeList edge_list_of(const CSRGraph& g) {
  EdgeList e(g.num_vertices(), {}, Directedness::Undirected);
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u)) e.add_edge(u, v);
  return e;
}

/// Drive the streaming engine over `batches` and assert every per-batch
/// snapshot equals the single-node reference recount of the equivalently
/// evolved edge list. (gtest ASSERTs require a void function; the result
/// lands in `*out` for callers inspecting stats.)
void expect_stream_matches_reference(const CSRGraph& g,
                                     const std::vector<Batch>& batches,
                                     std::uint32_t ranks,
                                     stream::StreamOptions opts,
                                     stream::StreamResult* out = nullptr) {
  opts.record_snapshots = true;
  const auto result = stream::run_streaming_lcc(g, batches, ranks, opts);

  EdgeList evolved = edge_list_of(g);
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    stream::apply_to_edge_list(evolved, batches[bi]);
    const auto ref = graph::reference_lcc(CSRGraph::from_edges(evolved));
    const auto& snap = result.batches[bi];
    EXPECT_EQ(snap.global_triangles, ref.global_triangles)
        << "batch " << bi;
    ASSERT_EQ(snap.triangles.size(), ref.triangles.size());
    for (std::size_t v = 0; v < ref.triangles.size(); ++v) {
      ASSERT_EQ(snap.triangles[v], ref.triangles[v])
          << "batch " << bi << " vertex " << v;
      ASSERT_DOUBLE_EQ(snap.lcc[v], ref.lcc[v])
          << "batch " << bi << " vertex " << v;
    }
  }
  // Final state mirrors the last snapshot.
  if (!batches.empty()) {
    EXPECT_EQ(result.triangles, result.batches.back().triangles);
    EXPECT_EQ(result.global_triangles,
              result.batches.back().global_triangles);
  }
  if (out) *out = result;
}

stream::StreamOptions make_opts(const CSRGraph& g, bool cache,
                                graph::PartitionKind partition) {
  stream::StreamOptions opts;
  opts.partition = partition;
  if (cache) {
    opts.engine.use_cache = true;
    opts.engine.cache_sizing =
        core::CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 3);
  }
  return opts;
}

// ------------------------------------------------------- targeted batches ---

TEST(Stream, InsertionsCreateTriangles) {
  // Paper example (Fig. 1): 3 triangles. Insert edge (1,3): adds triangles
  // {1,2,3} and {1,3,4}? 1-2 yes, 2-3 yes -> {1,2,3}; 1-4? no edge.
  const CSRGraph g = testsupport::paper_example();
  const std::vector<Batch> batches = {{{1, 3, Op::Insert}},
                                      {{0, 4, Op::Insert}}};
  for (const std::uint32_t p : {1u, 2u, 3u}) {
    expect_stream_matches_reference(g, batches, p,
                                    make_opts(g, false,
                                              graph::PartitionKind::Block1D));
  }
}

TEST(Stream, DeletionsDestroyTriangles) {
  const CSRGraph g = testsupport::paper_example();
  // Drop the bridge edges, then a triangle edge.
  const std::vector<Batch> batches = {{{2, 4, Op::Delete}},
                                      {{3, 4, Op::Delete}, {0, 1, Op::Delete}}};
  for (const std::uint32_t p : {1u, 2u, 3u}) {
    expect_stream_matches_reference(g, batches, p,
                                    make_opts(g, false,
                                              graph::PartitionKind::Block1D));
  }
}

TEST(Stream, IntraBatchSharedTriangleEdgesNotDoubleCounted) {
  // A fully-new triangle (all three edges in one batch) and a wedge closed
  // by two new edges must each count exactly once.
  EdgeList e(8, {}, Directedness::Undirected);
  e.add_edge(4, 5);  // existing wedge base for {4,5,6} needs (4,6),(5,6)
  e.symmetrize();
  const CSRGraph g = CSRGraph::from_edges(e);
  const std::vector<Batch> batches = {
      // triangle {0,1,2} entirely new + wedge closure {4,5,6} via 2 edges
      {{0, 1, Op::Insert},
       {1, 2, Op::Insert},
       {0, 2, Op::Insert},
       {4, 6, Op::Insert},
       {5, 6, Op::Insert}},
      // and destroy both, again with shared in-batch edges
      {{0, 1, Op::Delete}, {0, 2, Op::Delete}, {4, 6, Op::Delete}}};
  for (const std::uint32_t p : {1u, 2u, 4u}) {
    expect_stream_matches_reference(g, batches, p,
                                    make_opts(g, false,
                                              graph::PartitionKind::Cyclic1D));
  }
}

TEST(Stream, IntraBatchDuplicatesAndNoOps) {
  const CSRGraph g = testsupport::paper_example();
  const std::vector<Batch> batches = {
      // duplicate insert, insert of a present edge, delete of an absent
      // edge, and insert-then-delete (nets to a no-op on an absent edge)
      {{1, 3, Op::Insert},
       {1, 3, Op::Insert},
       {0, 1, Op::Insert},
       {0, 5, Op::Delete},
       {2, 5, Op::Insert},
       {2, 5, Op::Delete}},
      // delete-then-insert of a present edge nets to a (no-op) insert
      {{0, 1, Op::Delete}, {0, 1, Op::Insert}, {1, 3, Op::Delete}}};
  for (const std::uint32_t p : {1u, 2u, 4u}) {
    stream::StreamResult r;
    expect_stream_matches_reference(
        g, batches, p, make_opts(g, false, graph::PartitionKind::Block1D),
        &r);
    // The second batch nets to exactly one effective op (the 1-3 delete).
    EXPECT_EQ(r.batches[1].effective_insertions, 0u);
    EXPECT_EQ(r.batches[1].effective_deletions, 1u);
  }
}

TEST(Stream, EntirelyNoOpBatchSkipsRepublication) {
  const CSRGraph g = testsupport::paper_example();
  const std::vector<Batch> batches = {
      {{0, 1, Op::Insert}, {3, 5, Op::Insert}, {0, 4, Op::Delete}}};
  stream::StreamResult r;
  expect_stream_matches_reference(
      g, batches, 2, make_opts(g, true, graph::PartitionKind::Block1D), &r);
  EXPECT_EQ(r.batches[0].effective_insertions, 0u);
  EXPECT_EQ(r.batches[0].effective_deletions, 0u);
  EXPECT_EQ(r.batches[0].rows_rebuilt, 0u);
  // No epoch bump -> nothing went stale.
  EXPECT_EQ(r.adj_cache_total.stale_evictions, 0u);
  EXPECT_EQ(r.offsets_cache_total.stale_evictions, 0u);
}

TEST(Stream, PartitionStraddlingEdges) {
  // Block1D over 2 ranks of the paper example splits {0,1,2} | {3,4,5};
  // every update below crosses the boundary.
  const CSRGraph g = testsupport::paper_example();
  const std::vector<Batch> batches = {
      {{1, 3, Op::Insert}, {0, 4, Op::Insert}},
      {{2, 3, Op::Delete}, {1, 3, Op::Delete}, {2, 5, Op::Insert}}};
  for (const bool cache : {false, true}) {
    expect_stream_matches_reference(
        g, batches, 2, make_opts(g, cache, graph::PartitionKind::Block1D));
  }
}

// --------------------------------------------------------- matrix sweeps ---

struct SweepCase {
  std::uint32_t ranks;
  graph::PartitionKind partition;
  bool cache;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  return "p" + std::to_string(c.ranks) +
         (c.partition == graph::PartitionKind::Block1D ? "_block"
                                                       : "_cyclic") +
         (c.cache ? "_cached" : "_plain");
}

class StreamMatrix : public ::testing::TestWithParam<SweepCase> {};

TEST_P(StreamMatrix, GeneratedWorkloadMatchesReferencePerBatch) {
  const auto& c = GetParam();
  const CSRGraph g = testsupport::rmat_graph(7, 6, 51);
  stream::WorkloadConfig wl;
  wl.num_batches = 3;
  wl.batch_size = 48;
  wl.insert_fraction = 0.6;
  wl.seed = 7;
  const auto batches = stream::generate_batches(g, wl);
  expect_stream_matches_reference(g, batches, c.ranks,
                                  make_opts(g, c.cache, c.partition));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamMatrix,
    ::testing::Values(
        SweepCase{1, graph::PartitionKind::Block1D, false},
        SweepCase{1, graph::PartitionKind::Cyclic1D, true},
        SweepCase{2, graph::PartitionKind::Block1D, false},
        SweepCase{2, graph::PartitionKind::Cyclic1D, false},
        SweepCase{2, graph::PartitionKind::Block1D, true},
        SweepCase{4, graph::PartitionKind::Block1D, false},
        SweepCase{4, graph::PartitionKind::Cyclic1D, true},
        SweepCase{4, graph::PartitionKind::Block1D, true},
        SweepCase{8, graph::PartitionKind::Block1D, true},
        SweepCase{8, graph::PartitionKind::Cyclic1D, false}),
    sweep_name);

// --------------------------------------------------------- hub replication ---

TEST(StreamHubs, ParityWithHubReplicationAcrossRanks) {
  // With hub rows replicated AND mutated by batches, every per-batch
  // snapshot must still match the reference recount bit-identically: the
  // replica is maintained inside the same collective apply step that
  // republishes the windows (DESIGN.md §8).
  const CSRGraph g = testsupport::rmat_graph(7, 6, 58);
  stream::WorkloadConfig wl;
  wl.num_batches = 3;
  wl.batch_size = 48;
  wl.insert_fraction = 0.55;
  wl.seed = 21;
  const auto batches = stream::generate_batches(g, wl);
  for (const std::uint32_t p : {1u, 2u, 4u}) {
    for (const auto kind : {graph::PartitionKind::Block1D,
                            graph::PartitionKind::DegreeBalanced1D}) {
      for (const bool cache : {false, true}) {
        auto opts = make_opts(g, cache, kind);
        opts.engine.hub_fraction = 0.03;
        stream::StreamResult r;
        expect_stream_matches_reference(g, batches, p, opts, &r);
        if (p > 1) {
          // Hubs actually served fetches; a broken fast path that never
          // triggers would vacuously pass the parity check.
          EXPECT_GT(r.run.total().hub_local_hits, 0u)
              << "p=" << p << " cache=" << cache;
        }
      }
    }
  }
}

TEST(StreamHubs, HubHeavyBatchesKeepReplicaConsistent) {
  // Target the highest-degree vertex directly: delete and re-insert edges
  // incident to it so the replica rows themselves are rewritten each batch.
  const CSRGraph g = testsupport::rmat_graph(7, 8, 59);
  const auto order = graph::vertices_by_degree_desc(g);
  const VertexId hub = order[0];
  const auto nbrs = g.neighbors(hub);
  ASSERT_GE(nbrs.size(), 4u);
  const std::vector<Batch> batches = {
      {{hub, nbrs[0], Op::Delete}, {hub, nbrs[1], Op::Delete}},
      {{hub, nbrs[0], Op::Insert}, {hub, nbrs[2], Op::Delete}},
      {{hub, nbrs[1], Op::Insert}, {hub, nbrs[2], Op::Insert}}};
  for (const std::uint32_t p : {2u, 4u}) {
    auto opts = make_opts(g, true, graph::PartitionKind::DegreeBalanced1D);
    opts.engine.hub_fraction = 0.02;
    stream::StreamResult r;
    expect_stream_matches_reference(g, batches, p, opts, &r);
    EXPECT_GT(r.run.total().hub_local_hits, 0u);
  }
}

// ----------------------------------------------------------- epoch safety ---

TEST(StreamEpochs, StaleEntriesRecycledNeverServed) {
  // Cached run over several mutating batches: the cold count populates the
  // caches, every mutating batch bumps both window epochs, and the next
  // batch's fetches probe pre-bump entries. Correctness of every per-batch
  // snapshot (checked against the reference) proves no stale payload was
  // ever served; the stats prove stale entries were actually encountered
  // and recycled rather than silently missing.
  const CSRGraph g = testsupport::rmat_graph(7, 8, 52);
  stream::WorkloadConfig wl;
  wl.num_batches = 4;
  wl.batch_size = 64;
  wl.insert_fraction = 0.5;
  wl.seed = 11;
  const auto batches = stream::generate_batches(g, wl);
  auto opts = make_opts(g, true, graph::PartitionKind::Block1D);
  // Ample budget: without epoch checks everything would hit after warmup.
  opts.engine.cache_sizing =
      core::CacheSizing::paper_default(g.num_vertices(), 4 * g.csr_bytes());
  stream::StreamResult r;
  expect_stream_matches_reference(g, batches, 4, opts, &r);
  EXPECT_GT(r.offsets_cache_total.stale_evictions +
                r.adj_cache_total.stale_evictions,
            0u);
  // Epoch recycling reports through the miss machinery, never as hits of
  // old payloads: every stale eviction implies a re-fetch, so misses must
  // at least cover the stale count.
  EXPECT_GE(r.adj_cache_total.misses + r.offsets_cache_total.misses,
            r.adj_cache_total.stale_evictions +
                r.offsets_cache_total.stale_evictions);
}

TEST(StreamEpochs, CacheSurvivesNonMutatingTraffic) {
  // Two identical no-op batches after a cached cold start: epochs never
  // advance, so nothing is recycled.
  const CSRGraph g = testsupport::rmat_graph(6, 6, 53);
  // Inserting an edge that already exists is a no-op; pick a present one.
  const VertexId u = 0;
  const VertexId v = g.neighbors(0).empty() ? 1 : g.neighbors(0)[0];
  const std::vector<Batch> noop = {{{u, v, Op::Insert}},
                                   {{u, v, Op::Insert}}};
  auto opts = make_opts(g, true, graph::PartitionKind::Block1D);
  stream::StreamResult r;
  expect_stream_matches_reference(g, noop, 2, opts, &r);
  EXPECT_EQ(r.adj_cache_total.stale_evictions, 0u);
  EXPECT_EQ(r.offsets_cache_total.stale_evictions, 0u);
}

// ----------------------------------------------------------- determinism ---

TEST(Stream, VirtualTimeDeterministicAcrossRepeats) {
  const CSRGraph g = testsupport::rmat_graph(7, 6, 54);
  stream::WorkloadConfig wl;
  wl.num_batches = 2;
  wl.batch_size = 32;
  wl.seed = 3;
  const auto batches = stream::generate_batches(g, wl);
  const auto opts = make_opts(g, true, graph::PartitionKind::Block1D);
  const auto a = stream::run_streaming_lcc(g, batches, 4, opts);
  const auto b = stream::run_streaming_lcc(g, batches, 4, opts);
  EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan);
  EXPECT_DOUBLE_EQ(a.stream_makespan, b.stream_makespan);
  EXPECT_EQ(a.adj_cache_total.hits, b.adj_cache_total.hits);
  EXPECT_EQ(a.adj_cache_total.stale_evictions,
            b.adj_cache_total.stale_evictions);
}

TEST(Stream, ResultsIndependentOfRankCountAndPartition) {
  const CSRGraph g = testsupport::rmat_graph(7, 6, 55);
  stream::WorkloadConfig wl;
  wl.num_batches = 2;
  wl.batch_size = 40;
  wl.seed = 9;
  const auto batches = stream::generate_batches(g, wl);
  const auto base = stream::run_streaming_lcc(g, batches, 1, {});
  for (const std::uint32_t p : {2u, 4u, 8u}) {
    for (const auto kind :
         {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D}) {
      stream::StreamOptions opts;
      opts.partition = kind;
      const auto r = stream::run_streaming_lcc(g, batches, p, opts);
      ASSERT_EQ(r.triangles, base.triangles) << "p=" << p;
      EXPECT_EQ(r.global_triangles, base.global_triangles);
    }
  }
}

// ------------------------------------------------------- update utilities ---

TEST(StreamUpdates, NormalizeCollapsesToNetOps) {
  const Batch batch = {{5, 3, Op::Insert}, {3, 5, Op::Delete},
                       {1, 2, Op::Insert}, {2, 2, Op::Insert},
                       {1, 2, Op::Insert}};
  const auto net = stream::normalize(batch);
  ASSERT_EQ(net.size(), 2u);  // self loop dropped, (3,5) collapsed
  EXPECT_EQ(net[0], (stream::CanonicalUpdate{1, 2, Op::Insert}));
  EXPECT_EQ(net[1], (stream::CanonicalUpdate{3, 5, Op::Delete}));
}

TEST(StreamUpdates, GeneratorIsDeterministicAndInRange) {
  const CSRGraph g = testsupport::rmat_graph(6, 4, 56);
  stream::WorkloadConfig wl;
  wl.num_batches = 3;
  wl.batch_size = 20;
  wl.seed = 42;
  const auto a = stream::generate_batches(g, wl);
  const auto b = stream::generate_batches(g, wl);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);
  for (const Batch& batch : a) {
    EXPECT_GE(batch.size(), wl.batch_size);
    for (const EdgeUpdate& u : batch) {
      EXPECT_LT(u.u, g.num_vertices());
      EXPECT_LT(u.v, g.num_vertices());
    }
  }
}

TEST(StreamUpdates, DirectedInputRejected) {
  testsupport::use_threadsafe_death_tests();
  const CSRGraph g =
      testsupport::rmat_graph(6, 4, 57, Directedness::Directed);
  EXPECT_DEATH((void)stream::run_streaming_lcc(g, {}, 2, {}),
               "undirected");
}

}  // namespace
}  // namespace atlc
