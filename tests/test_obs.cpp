// Tests for atlc::obs — the virtual-time tracing and metrics layer
// (DESIGN.md §12). Pins the subsystem's three contracts:
//   1. determinism: for a fixed seed and the fixed cost model, the exported
//      Chrome trace is byte-identical across repeated runs (and therefore
//      across thread schedules);
//   2. reconciliation: per-rank compute/comm Complete-event durations sum to
//      exactly the CommStats second totals, and traced runs report the same
//      makespan/stats as untraced ones;
//   3. zero overhead off: an unbound Tracer emits no event and performs no
//      allocation, so engine hooks are a pointer test when tracing is off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "atlc/core/lcc.hpp"
#include "atlc/obs/metrics.hpp"
#include "atlc/obs/trace.hpp"
#include "atlc/util/json.hpp"
#include "test_support.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every path through the replaceable operator new
// bumps g_allocations, so a test can assert a code region allocates nothing.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace atlc {
namespace {

using obs::CountingSink;
using obs::EventPhase;
using obs::MetricsRegistry;
using obs::TraceCollector;
using obs::TraceEvent;
using obs::Tracer;

/// Manually-advanced clock for driving a Tracer without an engine.
struct FakeClock {
  double t = 0.0;
};

double fake_clock(const void* p) { return static_cast<const FakeClock*>(p)->t; }

core::EngineConfig traced_config(TraceCollector* trace, bool cache,
                                 const graph::CSRGraph& g) {
  core::EngineConfig cfg;  // default = fixed cost model = deterministic
  cfg.trace = trace;
  if (cache) {
    cfg.use_cache = true;
    cfg.cache_sizing =
        core::CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 2);
  }
  return cfg;
}

// ------------------------------------------------------------- tracer off --

TEST(TracerOff, UnboundEmitsNothingAndAllocatesNothing) {
  CountingSink sink;  // never bound: stays at zero
  Tracer t;
  ASSERT_FALSE(t.enabled());

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    t.begin("phase");
    t.instant("hit", {"v", 7});
    t.counter("ring", "in_flight", 3);
    t.charge("compute", "compute", 1.0, 0.5);
    t.transfer("get", 1.0, 2.0, 3, 64);
    t.end("phase");
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "unbound Tracer hooks must not allocate";
  EXPECT_EQ(sink.events(), 0u);
}

TEST(TracerOff, UnbindStopsRecording) {
  CountingSink sink;
  FakeClock clk;
  Tracer t;
  t.bind(&sink, 0, fake_clock, &clk);
  t.instant("a");
  t.unbind();
  const std::uint64_t after_unbind = sink.events();
  t.instant("b");
  t.charge("comm", "comm", 0.0, 1.0);
  EXPECT_EQ(sink.events(), after_unbind);
}

// ---------------------------------------------------------- span balance --

TEST(TracerDeath, EndWithoutBeginAborts) {
  testsupport::use_threadsafe_death_tests();
  CountingSink sink;
  FakeClock clk;
  Tracer t;
  t.bind(&sink, 0, fake_clock, &clk);
  EXPECT_DEATH(t.end("never_opened"), "without a matching begin");
}

TEST(TracerDeath, MismatchedEndNameAborts) {
  testsupport::use_threadsafe_death_tests();
  CountingSink sink;
  FakeClock clk;
  Tracer t;
  t.bind(&sink, 0, fake_clock, &clk);
  t.begin("outer");
  EXPECT_DEATH(t.end("inner"), "does not match the innermost begin");
}

// ----------------------------------------------------- charge coalescing --

TEST(Tracer, CoalescesAbuttingSameCauseCharges) {
  TraceCollector c;
  c.prepare(1);
  FakeClock clk;
  Tracer t;
  t.bind(&c, 0, fake_clock, &clk);
  t.charge("compute", "compute", 0.0, 1.0);
  t.charge("compute", "compute", 1.0, 0.5);   // abuts: extends the run
  t.charge("compute", "compute", 2.0, 0.25);  // gap: new run
  t.charge("comm", "flush_wait", 2.25, 0.5);  // cause change: new run
  t.unbind();

  const auto& events = c.events(0);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "compute");
  EXPECT_DOUBLE_EQ(events[0].ts, 0.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 1.5);
  EXPECT_STREQ(events[1].name, "compute");
  EXPECT_DOUBLE_EQ(events[1].ts, 2.0);
  EXPECT_DOUBLE_EQ(events[1].dur, 0.25);
  EXPECT_STREQ(events[2].name, "flush_wait");
  EXPECT_STREQ(events[2].cat, "comm");
  EXPECT_DOUBLE_EQ(events[2].dur, 0.5);
  EXPECT_DOUBLE_EQ(c.track_total(0, "compute"), 1.75);
  EXPECT_DOUBLE_EQ(c.track_total(0, "comm"), 0.5);
}

// ------------------------------------------------------------ determinism --

TEST(TraceDeterminism, RepeatedRunsExportIdenticalBytes) {
  const auto g = testsupport::rmat_graph(8, 8, 42);
  std::string first;
  for (int run = 0; run < 3; ++run) {
    TraceCollector trace;
    const auto cfg = traced_config(&trace, /*cache=*/true, g);
    (void)core::run_distributed_lcc(g, 4, cfg);
    const std::string text = trace.chrome_trace_string();
    if (run == 0) {
      first = text;
      EXPECT_GT(trace.total_events(), 0u);
    } else {
      // Byte equality across runs — and therefore across the thread
      // schedules the rank threads happened to get.
      EXPECT_EQ(text, first) << "trace bytes differ on run " << run;
    }
  }
}

TEST(TraceDeterminism, TracedRunMatchesUntracedRun) {
  const auto g = testsupport::rmat_graph(8, 6, 7);
  const auto plain = core::run_distributed_lcc(
      g, 4, traced_config(nullptr, /*cache=*/true, g));
  TraceCollector trace;
  const auto traced = core::run_distributed_lcc(
      g, 4, traced_config(&trace, /*cache=*/true, g));

  // Tracing must not perturb the simulation: bit-equal virtual results.
  EXPECT_EQ(traced.run.makespan, plain.run.makespan);
  EXPECT_EQ(traced.global_triangles, plain.global_triangles);
  const auto a = traced.run.total(), b = plain.run.total();
  EXPECT_EQ(a.remote_gets, b.remote_gets);
  EXPECT_EQ(a.remote_bytes, b.remote_bytes);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.compute_seconds, b.compute_seconds);
}

// --------------------------------------------------------- reconciliation --

TEST(TraceReconciliation, SpanTotalsMatchCommStatsPerRank) {
  const auto g = testsupport::rmat_graph(8, 8, 11);
  TraceCollector trace;
  const auto r = core::run_distributed_lcc(
      g, 4, traced_config(&trace, /*cache=*/true, g));
  ASSERT_EQ(trace.ranks(), 4u);
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    // The coalesced Complete events tile the rank's charged time exactly;
    // only floating-point re-association separates the two sums.
    EXPECT_NEAR(trace.track_total(rank, "compute"),
                r.run.stats[rank].compute_seconds, 1e-12)
        << "rank " << rank;
    EXPECT_NEAR(trace.track_total(rank, "comm"),
                r.run.stats[rank].comm_seconds, 1e-12)
        << "rank " << rank;
  }
}

TEST(TraceReconciliation, CacheInstantsMatchCacheStats) {
  const auto g = testsupport::rmat_graph(8, 8, 5);
  TraceCollector trace;
  const auto r = core::run_distributed_lcc(
      g, 4, traced_config(&trace, /*cache=*/true, g));
  MetricsRegistry reg;
  reg.ingest(trace);
  const auto& counters = reg.counters();
  const auto count = [&](const char* name) {
    const auto it = counters.find(name);
    return it == counters.end() ? std::uint64_t{0} : it->second;
  };
  const auto hits =
      r.offsets_cache_total.hits + r.adj_cache_total.hits;
  const auto misses =
      r.offsets_cache_total.misses + r.adj_cache_total.misses;
  EXPECT_EQ(count("cache_hit"), hits);
  EXPECT_EQ(count("cache_miss") + count("cache_stale"), misses);
}

// ---------------------------------------------------------- export format --

TEST(ChromeExport, EmptyCollectorIsValidJson) {
  TraceCollector trace;
  std::string error;
  const auto doc = util::Json::parse(trace.chrome_trace_string(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->find("traceEvents"), nullptr);
  EXPECT_EQ(doc->find("traceEvents")->size(), 1u);  // process_name metadata
}

TEST(ChromeExport, EventsWellFormedAndMonotonePerTrack) {
  const auto g = testsupport::rmat_graph(7, 6, 3);
  TraceCollector trace;
  (void)core::run_distributed_lcc(g, 2,
                                  traced_config(&trace, /*cache=*/true, g));
  std::string error;
  const auto doc = util::Json::parse(trace.chrome_trace_string(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const util::Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);

  const std::string valid_ph = "BEiXCM";
  std::map<std::uint64_t, double> last_ts;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const util::Json& e = events->at(i);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    const std::string ph = e.find("ph")->as_string();
    ASSERT_EQ(ph.size(), 1u);
    EXPECT_NE(valid_ph.find(ph), std::string::npos) << "ph " << ph;
    if (ph == "M") continue;  // metadata events carry no timestamp
    ASSERT_NE(e.find("ts"), nullptr);
    const auto tid =
        static_cast<std::uint64_t>(e.find("tid")->as_number());
    const double ts = e.find("ts")->as_number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end())
      EXPECT_GE(ts, it->second) << "track " << tid << " event " << i;
    last_ts[tid] = ts;
    if (ph == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->as_number(), 0.0);
    }
  }
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, ChromeRoundTripMatchesDirectIngest) {
  const auto g = testsupport::rmat_graph(7, 6, 9);
  TraceCollector trace;
  (void)core::run_distributed_lcc(g, 2,
                                  traced_config(&trace, /*cache=*/true, g));

  MetricsRegistry direct;
  direct.ingest(trace);
  MetricsRegistry round;
  std::string error;
  const auto doc = util::Json::parse(trace.chrome_trace_string(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  round.ingest_chrome(*doc);

  // Counters are integer-exact across the JSON round trip; second totals
  // only pass through the exporter's fixed-point microseconds.
  EXPECT_EQ(direct.counters(), round.counters());
  ASSERT_EQ(direct.cause_seconds().size(), round.cause_seconds().size());
  for (const auto& [name, per_rank] : direct.cause_seconds()) {
    const auto it = round.cause_seconds().find(name);
    ASSERT_NE(it, round.cause_seconds().end()) << name;
    ASSERT_EQ(it->second.size(), per_rank.size());
    for (std::size_t i = 0; i < per_rank.size(); ++i)
      EXPECT_NEAR(it->second[i], per_rank[i], 1e-9) << name << " rank " << i;
  }
  EXPECT_EQ(direct.top_rows(5), round.top_rows(5));
}

TEST(Metrics, ToJsonSerializesWithoutSamples) {
  // An empty registry must still produce a complete document (the empty
  // LogHistogram contract in util::stats backs this).
  MetricsRegistry reg;
  const util::Json j = reg.to_json();
  EXPECT_NE(j.find("counters"), nullptr);
  EXPECT_NE(j.find("causes"), nullptr);
}

}  // namespace
}  // namespace atlc
