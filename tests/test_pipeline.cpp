// Tests for the generic depth-k edge-pipeline engine (core::EdgePipeline):
// correctness at every depth, equivalence with the pre-refactor
// double-buffer loop in virtual time, the fetcher ring's span-lifetime
// contract, and the similarity analytics built as kernels on the engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "atlc/core/edge_pipeline.hpp"
#include "atlc/core/fetcher.hpp"
#include "atlc/core/jaccard.hpp"
#include "atlc/core/lcc.hpp"
#include "atlc/core/similarity.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/serve/query_engine.hpp"
#include "atlc/serve/workload.hpp"
#include "atlc/util/recorder.hpp"
#include "test_support.hpp"

namespace atlc::core {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;
using testsupport::expect_matches_reference;
using testsupport::paper_example;
using testsupport::rmat_graph;

EngineConfig depth_config(std::size_t k) {
  EngineConfig cfg;
  cfg.pipeline_depth = k;
  return cfg;
}

/// Directed graph with zero-OUT-degree vertices that other ranks must
/// fetch remotely: the two-get protocol's empty-adjacency path (the fetch
/// resolves after step 1 without consuming a ring slot).
CSRGraph directed_with_sinks() {
  EdgeList e(8, {}, Directedness::Directed);
  // 3 and 7 are sinks (out-degree 0, in-degree > 0); triangles 0->1->2->0
  // transitive triads plus fan-in edges onto the sinks.
  for (auto [u, v] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {1, 2}, {0, 2}, {2, 3}, {0, 3}, {1, 3}, {4, 5}, {5, 6},
           {4, 6}, {6, 7}, {4, 7}, {2, 4}, {1, 7}})
    e.add_edge(u, v);
  return CSRGraph::from_edges(e);
}

// ------------------------------------------------------- depth sweep, LCC ---

class PipelineDepth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineDepth, LccMatchesReferenceOnPaperExample) {
  const CSRGraph g = paper_example();
  expect_matches_reference(
      g, run_distributed_lcc(g, 3, depth_config(GetParam())));
}

TEST_P(PipelineDepth, LccMatchesReferenceOnRmat) {
  const CSRGraph g = rmat_graph(9, 8, 31);
  expect_matches_reference(
      g, run_distributed_lcc(g, 4, depth_config(GetParam())));
}

TEST_P(PipelineDepth, LccMatchesReferenceOnDirectedRmat) {
  const CSRGraph g = rmat_graph(8, 8, 32, Directedness::Directed);
  expect_matches_reference(
      g, run_distributed_lcc(g, 4, depth_config(GetParam())));
}

TEST_P(PipelineDepth, LccMatchesReferenceSingleRank) {
  const CSRGraph g = rmat_graph(8, 8, 33);
  expect_matches_reference(
      g, run_distributed_lcc(g, 1, depth_config(GetParam())));
}

TEST_P(PipelineDepth, LccMatchesReferenceWithCaching) {
  const CSRGraph g = rmat_graph(9, 8, 34);
  EngineConfig cfg = depth_config(GetParam());
  cfg.use_cache = true;
  cfg.cache_sizing = CacheSizing::paper_default(g.num_vertices(), 1 << 19);
  expect_matches_reference(g, run_distributed_lcc(g, 4, cfg));
}

TEST_P(PipelineDepth, ZeroOutDegreeVerticesFetchedRemotely) {
  const CSRGraph g = directed_with_sinks();
  // 4 ranks over 8 vertices: the sinks (3, 7) are remote to most ranks.
  expect_matches_reference(
      g, run_distributed_lcc(g, 4, depth_config(GetParam())));
}

TEST_P(PipelineDepth, TcGlobalCountMatches) {
  const CSRGraph g = rmat_graph(8, 8, 35);
  const auto ref = graph::reference_lcc(g);
  EXPECT_EQ(run_distributed_tc(g, 4, depth_config(GetParam())),
            ref.global_triangles);
}

TEST_P(PipelineDepth, JaccardMatchesReference) {
  const CSRGraph g = rmat_graph(8, 8, 36);
  const auto ref = reference_jaccard(g);
  const auto r = run_distributed_jaccard(g, 4, depth_config(GetParam()));
  ASSERT_EQ(r.similarity.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.similarity[k], ref[k]) << "slot " << k;
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDepth,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}));

// --------------------------------------- virtual-time depth-2 equivalence ---

/// The pre-refactor Algorithm 3 loop, verbatim: a two-slot double buffer
/// driven directly against the fetcher (finish e_i; begin e_{i+1};
/// intersect e_i). The EdgePipeline at depth 2 must issue the identical
/// begin/finish/charge sequence, hence bit-identical virtual makespans.
double legacy_double_buffer_makespan(const CSRGraph& g, std::uint32_t ranks,
                                     const EngineConfig& config) {
  const graph::Partition partition(graph::PartitionKind::Block1D,
                                   g.num_vertices(), ranks);
  rma::Runtime::Options opts;
  opts.ranks = ranks;
  const auto run = rma::Runtime::run(opts, [&](rma::RankCtx& ctx) {
    const DistGraph dg = build_dist_graph(ctx, g, partition);
    AdjacencyFetcher fetcher(ctx, dg, config);
    const EdgeIndex m_local = dg.adjacencies.size();

    AdjacencyFetcher::Token current;
    bool have_current = false;
    if (m_local > 0) {
      current = fetcher.begin(dg.adjacencies[0]);
      have_current = true;
    }
    VertexId lv = 0;
    std::uint64_t sink = 0;
    for (EdgeIndex ei = 0; ei < m_local; ++ei) {
      while (dg.offsets[lv + 1] <= ei) ++lv;
      if (!have_current) current = fetcher.begin(dg.adjacencies[ei]);
      const auto adj_j = fetcher.finish(current);
      have_current = false;
      if (ei + 1 < m_local) {
        current = fetcher.begin(dg.adjacencies[ei + 1]);
        have_current = true;
      }
      const auto adj_v = dg.local_neighbors(lv);
      sink += intersect::count_common(adj_v, adj_j, config.method);
      ctx.charge_compute(
          config.cost.seconds(config.method, adj_v.size(), adj_j.size()));
    }
    EXPECT_GT(sink + 1, 0u);  // keep the loop observable
    ctx.barrier();
  });
  return run.makespan;
}

TEST(PipelineEquivalence, Depth2MakespanBitIdenticalToLegacyDoubleBuffer) {
  const CSRGraph g = rmat_graph(8, 8, 37);
  for (std::uint32_t ranks : {2u, 4u}) {
    EngineConfig cfg;  // double_buffer=true, pipeline_depth=2: paper engine
    const double engine = run_distributed_lcc(g, ranks, cfg).run.makespan;
    const double legacy = legacy_double_buffer_makespan(g, ranks, cfg);
    EXPECT_EQ(engine, legacy) << "ranks=" << ranks;
  }
}

TEST(PipelineEquivalence, Depth2MakespanBitIdenticalToLegacyCached) {
  const CSRGraph g = rmat_graph(8, 8, 38);
  EngineConfig cfg;
  cfg.use_cache = true;
  cfg.cache_sizing = CacheSizing::paper_default(g.num_vertices(), 1 << 18);
  const double engine = run_distributed_lcc(g, 4, cfg).run.makespan;
  const double legacy = legacy_double_buffer_makespan(g, 4, cfg);
  EXPECT_EQ(engine, legacy);
}

TEST(PipelineEquivalence, Depth1EqualsNoOverlapSwitch) {
  // Both spellings of "no overlap" — double_buffer=false and
  // pipeline_depth=1 — must price identically.
  const CSRGraph g = rmat_graph(8, 8, 39);
  EngineConfig off;
  off.double_buffer = false;
  const double t_off = run_distributed_lcc(g, 4, off).run.makespan;
  const double t_k1 = run_distributed_lcc(g, 4, depth_config(1)).run.makespan;
  EXPECT_EQ(t_off, t_k1);
}

TEST(PipelineBehaviour, DeeperPipelineNeverSlower) {
  const CSRGraph g = rmat_graph(9, 16, 40);
  double prev = run_distributed_lcc(g, 4, depth_config(1)).run.makespan;
  for (std::size_t k : {2u, 4u, 8u}) {
    const double t = run_distributed_lcc(g, 4, depth_config(k)).run.makespan;
    EXPECT_LE(t, prev + 1e-12) << "depth " << k;
    prev = t;
  }
}

TEST(PipelineBehaviour, ResultsInvariantAcrossDepths) {
  const CSRGraph g = rmat_graph(9, 8, 41);
  const auto base = run_distributed_lcc(g, 4, depth_config(1));
  for (std::size_t k : {2u, 4u, 8u}) {
    const auto r = run_distributed_lcc(g, 4, depth_config(k));
    ASSERT_EQ(r.triangles, base.triangles) << "depth " << k;
    EXPECT_EQ(r.remote_edges, base.remote_edges) << "depth " << k;
  }
}

// ------------------------------------------------- fetcher ring contract ---

TEST(FetcherRing, RingSizeFollowsEffectiveDepth) {
  const CSRGraph g = rmat_graph(7, 8, 42);
  const graph::Partition part(graph::PartitionKind::Block1D, g.num_vertices(),
                              2);
  rma::Runtime::Options o;
  o.ranks = 2;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    const DistGraph dg = build_dist_graph(ctx, g, part);
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      const EngineConfig cfg = depth_config(k);
      AdjacencyFetcher fetcher(ctx, dg, cfg);
      EXPECT_EQ(fetcher.ring_size(), k);
    }
    EngineConfig off;
    off.double_buffer = false;
    off.pipeline_depth = 8;
    AdjacencyFetcher fetcher(ctx, dg, off);
    EXPECT_EQ(fetcher.ring_size(), 1u);  // double_buffer=false maps to 1
    ctx.barrier();
  });
}

#ifndef NDEBUG
TEST(FetcherRing, FinishAfterSlotRecycleAbortsInDebug) {
  testsupport::use_threadsafe_death_tests();
  const CSRGraph g = rmat_graph(7, 8, 43);
  const graph::Partition part(graph::PartitionKind::Block1D, g.num_vertices(),
                              2);
  EXPECT_DEATH(
      {
        rma::Runtime::Options o;
        o.ranks = 2;
        rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
          const DistGraph dg = build_dist_graph(ctx, g, part);
          const EngineConfig cfg = depth_config(2);  // ring of 2 slots
          AdjacencyFetcher fetcher(ctx, dg, cfg);
          // Find three remote, non-empty vertices and overfill the ring.
          std::vector<VertexId> remote;
          for (VertexId v = 0;
               v < g.num_vertices() && remote.size() < 3; ++v)
            if (part.owner(v) != ctx.rank() && g.degree(v) > 0)
              remote.push_back(v);
          ASSERT_EQ(remote.size(), 3u);
          const auto t0 = fetcher.begin(remote[0]);
          (void)fetcher.begin(remote[1]);
          (void)fetcher.begin(remote[2]);  // recycles t0's slot
          (void)fetcher.finish(t0);        // must trip the generation check
          ctx.barrier();
        });
      },
      "recycled");
}
#endif

// ------------------------------------------------- similarity analytics ---

TEST(Overlap, CompleteGraphClosedForm) {
  // K_6: |adj(u) ∩ adj(v)| = 4, min degree = 5 => O = 0.8 on every edge.
  const auto g = CSRGraph::from_edges(testsupport::complete_edges(6));
  const auto r = run_distributed_overlap(g, 3);
  ASSERT_EQ(r.score.size(), g.num_edges());
  for (double s : r.score) EXPECT_DOUBLE_EQ(s, 0.8);
}

TEST(AdamicAdar, CompleteGraphClosedForm) {
  // K_6: 4 common neighbors, each of degree 5 => AA = 4 / ln(5).
  const auto g = CSRGraph::from_edges(testsupport::complete_edges(6));
  const auto r = run_distributed_adamic_adar(g, 3);
  for (double s : r.score) EXPECT_DOUBLE_EQ(s, 4.0 / std::log(5.0));
}

class SimilarityRanks : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimilarityRanks, OverlapMatchesReference) {
  const CSRGraph g = rmat_graph(8, 8, 44);
  const auto ref = reference_overlap(g);
  const auto r = run_distributed_overlap(g, GetParam());
  ASSERT_EQ(r.score.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.score[k], ref[k]) << "slot " << k;
}

TEST_P(SimilarityRanks, AdamicAdarMatchesReference) {
  const CSRGraph g = rmat_graph(8, 8, 45);
  const auto ref = reference_adamic_adar(g);
  const auto r = run_distributed_adamic_adar(g, GetParam());
  ASSERT_EQ(r.score.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.score[k], ref[k]) << "slot " << k;
}

TEST_P(SimilarityRanks, AdamicAdarMatchesReferenceCachedAndDeep) {
  const CSRGraph g = rmat_graph(8, 8, 46);
  const auto ref = reference_adamic_adar(g);
  EngineConfig cfg = depth_config(4);
  cfg.use_cache = true;
  cfg.victim_policy = clampi::VictimPolicy::UserScore;
  cfg.cache_sizing =
      CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 4);
  const auto r = run_distributed_adamic_adar(g, GetParam(), cfg);
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.score[k], ref[k]) << "slot " << k;
}

INSTANTIATE_TEST_SUITE_P(Ranks, SimilarityRanks,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(AdamicAdar, DirectedSinkContributesZero) {
  // Sinks have out-degree 0; common neighbors of out-degree < 2 weigh 0.
  const CSRGraph g = directed_with_sinks();
  const auto ref = reference_adamic_adar(g);
  const auto r = run_distributed_adamic_adar(g, 4);
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.score[k], ref[k]) << "slot " << k;
}

TEST(Similarity, OverlapDominatesJaccard) {
  // min(|A|,|B|) <= |A ∪ B| always, so O(u,v) >= J(u,v) edge-wise.
  const CSRGraph g = rmat_graph(9, 8, 47);
  const auto jac = run_distributed_jaccard(g, 2).similarity;
  const auto ovl = run_distributed_overlap(g, 2).score;
  ASSERT_EQ(jac.size(), ovl.size());
  for (std::size_t k = 0; k < jac.size(); ++k)
    EXPECT_GE(ovl[k] + 1e-15, jac[k]) << "slot " << k;
}

// ----------------------------------------- unified stats (satellite fix) ---

TEST(AnalyticStats, JaccardAggregatesSameCountersAsLcc) {
  // The unified driver must fill the full EdgeAnalyticStats block for every
  // analytic: historically Jaccard dropped offsets-cache stats and ignored
  // track_remote_reads.
  const CSRGraph g = rmat_graph(9, 8, 48);
  EngineConfig cfg;
  cfg.use_cache = true;
  cfg.cache_sizing = CacheSizing::paper_default(g.num_vertices(), 1 << 19);
  cfg.track_remote_reads = true;

  const auto lcc = run_distributed_lcc(g, 4, cfg);
  const auto jac = run_distributed_jaccard(g, 4, cfg);

  // Identical access pattern => identical comm/cache/remote-read counters.
  EXPECT_EQ(jac.remote_edges, lcc.remote_edges);
  EXPECT_EQ(jac.edges_processed, lcc.edges_processed);
  EXPECT_EQ(jac.offsets_cache_total.hits, lcc.offsets_cache_total.hits);
  EXPECT_GT(jac.offsets_cache_total.accesses(), 0u);
  EXPECT_EQ(jac.adj_cache_total.hits, lcc.adj_cache_total.hits);
  ASSERT_EQ(jac.remote_reads.size(), lcc.remote_reads.size());
  std::uint64_t sum = 0;
  for (std::size_t v = 0; v < jac.remote_reads.size(); ++v) {
    EXPECT_EQ(jac.remote_reads[v], lcc.remote_reads[v]) << "vertex " << v;
    sum += jac.remote_reads[v];
  }
  EXPECT_EQ(sum, jac.remote_edges);
}

TEST(AnalyticStats, SimilarityReportsRemoteEdgeFraction) {
  const CSRGraph g = rmat_graph(8, 8, 49);
  const auto r = run_distributed_overlap(g, 4);
  EXPECT_GT(r.remote_edge_fraction(), 0.0);
  EXPECT_LE(r.remote_edge_fraction(), 1.0);
}

// ------------------------------- aggregation audit (ISSUE 7 satellite) ---

/// Field-wise JSON sum of records (what the audit compares totals against:
/// going through to_json means a counter missing from operator+= but
/// present in the emitted record CANNOT cancel out).
template <typename T>
std::vector<std::pair<std::string, double>> summed_fields(
    const std::vector<T>& per_rank) {
  std::vector<std::pair<std::string, double>> sum;
  for (const T& r : per_rank) {
    const util::Json j = util::to_json(r);
    for (const auto& [key, val] : j.items()) {
      auto it = std::find_if(sum.begin(), sum.end(),
                             [&](const auto& kv) { return kv.first == key; });
      if (it == sum.end())
        sum.emplace_back(key, val.as_number());
      else
        it->second += val.as_number();
    }
  }
  return sum;
}

/// Assert the scenario-level totals equal the field-wise sums of the
/// per-rank records, for EVERY field the JSON emitters produce. This closes
/// the drop-a-counter bug class for segment fetches and anything added
/// later: a field emitted by to_json but skipped by operator+= (or by
/// absorb()) fails here for all analytics at once.
void expect_aggregation_consistent(const EdgeAnalyticStats& s,
                                   const char* analytic) {
  SCOPED_TRACE(analytic);
  const util::Json total = util::to_json(s.run.total());
  const auto sums = summed_fields(s.run.stats);
  ASSERT_EQ(total.items().size(), sums.size());
  for (const auto& [key, val] : total.items()) {
    const auto it = std::find_if(sums.begin(), sums.end(),
                                 [&](const auto& kv) { return kv.first == key; });
    ASSERT_NE(it, sums.end()) << "field " << key << " missing per rank";
    EXPECT_DOUBLE_EQ(val.as_number(), it->second) << "CommStats field " << key;
  }

  // Cache totals against the retained per-rank cache records.
  ASSERT_EQ(s.offsets_cache_ranks.size(), s.run.stats.size());
  ASSERT_EQ(s.adj_cache_ranks.size(), s.run.stats.size());
  const auto audit_cache = [&](const clampi::CacheStats& total_stats,
                               const std::vector<clampi::CacheStats>& ranks,
                               const char* which) {
    const util::Json jt = util::to_json(total_stats);
    const auto cs = summed_fields(ranks);
    ASSERT_EQ(jt.items().size(), cs.size()) << which;
    for (const auto& [key, val] : jt.items()) {
      // Derived ratios (hit_rate/miss_rate) are quotients of the additive
      // counters, not sums — the counters they derive from are audited.
      if (key.ends_with("_rate")) continue;
      const auto it = std::find_if(cs.begin(), cs.end(), [&](const auto& kv) {
        return kv.first == key;
      });
      ASSERT_NE(it, cs.end()) << which << " field " << key;
      EXPECT_DOUBLE_EQ(val.as_number(), it->second)
          << which << " field " << key;
    }
  };
  audit_cache(s.offsets_cache_total, s.offsets_cache_ranks, "offsets_cache");
  audit_cache(s.adj_cache_total, s.adj_cache_ranks, "adj_cache");
}

TEST(AnalyticStats, PerRankCountersSumToTotalsForEveryAnalytic) {
  const CSRGraph g = rmat_graph(8, 8, 50);
  EngineConfig cfg;
  cfg.use_cache = true;
  cfg.cache_sizing = CacheSizing::paper_default(g.num_vertices(), 1 << 18);
  cfg.hub_fraction = 0.1;  // hub_local_hits must survive aggregation too

  expect_aggregation_consistent(run_distributed_lcc(g, 4, cfg), "lcc");
  expect_aggregation_consistent(run_distributed_tc_result(g, 4, cfg, {}),
                                "tc");
  EngineConfig flat = cfg;
  flat.hub_fraction = 0.0;  // per-edge scores reject nothing else here
  expect_aggregation_consistent(run_distributed_jaccard(g, 4, flat),
                                "jaccard");
  expect_aggregation_consistent(run_distributed_overlap(g, 4, flat),
                                "overlap");
  expect_aggregation_consistent(run_distributed_adamic_adar(g, 4, flat),
                                "adamic_adar");

  // The segment-fetch path: Grid2D runs count segment_gets, which must
  // aggregate like every other counter (this is the exact drop-a-counter
  // scenario the audit exists for).
  const auto grid = run_distributed_lcc(g, 4, cfg, {},
                                        graph::PartitionKind::Grid2D);
  expect_aggregation_consistent(grid, "lcc_grid2d");
  EXPECT_GT(grid.run.total().segment_gets, 0u);
  const util::Json jt = util::to_json(grid.run.total());
  ASSERT_NE(jt.find("segment_gets"), nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(jt.find("segment_gets")->as_number()),
            grid.run.total().segment_gets);
}

TEST(AnalyticStats, ServeQueryStatsAggregateLikeEdgeAnalytics) {
  // QueryStats derives from EdgeAnalyticStats precisely so the audit above
  // runs on the serving layer unchanged: a counter added to CommStats or
  // CacheStats cannot silently drop out of QueryEngine's aggregation.
  const CSRGraph g = rmat_graph(8, 8, 61);
  serve::QueryWorkloadConfig wc;
  wc.num_epochs = 3;
  wc.queries_per_epoch = 32;
  wc.batch_size = 16;
  wc.seed = 5;
  const auto epochs = serve::generate_query_stream(g, wc);

  serve::ServeOptions opts;
  opts.engine.use_cache = true;
  opts.engine.cache_sizing = CacheSizing::paper_default(g.num_vertices(),
                                                        1 << 18);
  const serve::ServeResult res = serve::run_query_stream(g, epochs, 4, opts);
  expect_aggregation_consistent(res.stats, "serve");

  // The query-level dimension on top of the base block: identity and
  // latency accounting close over the stream...
  EXPECT_EQ(res.stats.submitted, 3u * 32u);
  EXPECT_EQ(res.stats.submitted, res.stats.answered + res.stats.rejected);
  EXPECT_EQ(res.stats.latencies.size(), res.stats.answered);
  EXPECT_EQ(res.stats.per_query.size(), res.stats.answered);
  for (const double l : res.stats.latencies) EXPECT_GE(l, 0.0);
  EXPECT_GE(res.stats.latency_percentile(99),
            res.stats.latency_percentile(50));

  // ...and with the hot cache off, every pipeline item belongs to exactly
  // one query, so the per-query cost records sum to the pipeline totals.
  std::uint64_t edges = 0;
  std::uint64_t remote = 0;
  for (const QueryCost& qc : res.stats.per_query) {
    edges += qc.edges_processed;
    remote += qc.remote_edges;
  }
  EXPECT_EQ(edges, res.stats.edges_processed);
  EXPECT_EQ(remote, res.stats.remote_edges);

  // Hot-cache totals are audited the same field-wise way as CLaMPI's
  // (to_json-based: a field added to HotCacheStats but missed by += fails).
  serve::ServeOptions hot = opts;
  hot.hot_cache.entries = 64;
  const serve::ServeResult hres =
      serve::run_query_stream(g, epochs, 4, hot);
  const util::Json jt = util::to_json(hres.hot_cache_total);
  const auto sums = summed_fields(hres.hot_cache_ranks);
  ASSERT_EQ(jt.items().size(), sums.size());
  for (const auto& [key, val] : jt.items()) {
    if (key.ends_with("_rate")) continue;
    const auto it = std::find_if(sums.begin(), sums.end(), [&](const auto& kv) {
      return kv.first == key;
    });
    ASSERT_NE(it, sums.end()) << "hot_cache field " << key;
    EXPECT_DOUBLE_EQ(val.as_number(), it->second)
        << "hot_cache field " << key;
  }
}

}  // namespace
}  // namespace atlc::core
