// Cross-partition equivalence matrix (ISSUE 7 tentpole safety net): sweep
// seeded graphs × every PartitionKind × rank counts × {cached, uncached} ×
// {Paper, Tiered} and assert TC counts and FULL LCC vectors are identical
// to the single-node reference. The fetcher contract was rewritten under
// every analytic for segment-granular (Grid2D) fetching, so this is the
// differential harness that proves the 1D paths unchanged and the 2D path
// exact — the same pattern that caught a real OOB in the intersect-kernel
// differential sweep (PR 6), promoted to the distribution layer.
//
// Seeds: fixed by default (deterministic tier-1 gate); the nightly CI job
// rotates ATLC_MATRIX_SEED and the chosen seed is printed below so any
// failure is replayable with `ATLC_MATRIX_SEED=<n> ./test_partition_matrix`.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/relabel.hpp"
#include "test_support.hpp"

namespace atlc {
namespace {

using core::EngineConfig;
using graph::PartitionKind;
using testsupport::expect_matches_reference;
using testsupport::paper_example;
using testsupport::rmat_graph;

constexpr PartitionKind kKinds[] = {
    PartitionKind::Block1D, PartitionKind::Cyclic1D,
    PartitionKind::DegreeBalanced1D, PartitionKind::Grid2D};
constexpr std::uint32_t kRankCounts[] = {1, 2, 4, 8};

std::uint64_t matrix_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 20250807;  // fixed default: deterministic tier-1 gate
    if (const char* env = std::getenv("ATLC_MATRIX_SEED"); env && *env)
      s = std::strtoull(env, nullptr, 10);
    // Printed (not logged at -q levels gtest hides) so nightly rotating-seed
    // failures are replayable: ATLC_MATRIX_SEED=<seed> ./test_partition_matrix
    std::printf("[matrix] seed = %llu (set ATLC_MATRIX_SEED to replay)\n",
                static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

EngineConfig matrix_config(const graph::CSRGraph& g, bool cached,
                           bool tiered) {
  EngineConfig cfg;
  if (tiered) cfg.intersect_tier = intersect::Tier::Tiered;
  if (cached) {
    cfg.use_cache = true;
    cfg.cache_sizing =
        core::CacheSizing::paper_default(g.num_vertices(), 1 << 18);
  }
  return cfg;
}

/// The full sweep for one graph: every kind × rank count × cache mode ×
/// kernel generation, LCC vectors and TC counts against the reference.
void sweep_graph(const graph::CSRGraph& g, const char* name) {
  const auto ref = graph::reference_lcc(g);
  for (const PartitionKind kind : kKinds) {
    for (const std::uint32_t ranks : kRankCounts) {
      for (const bool cached : {false, true}) {
        for (const bool tiered : {false, true}) {
          SCOPED_TRACE(::testing::Message()
                       << name << " kind=" << graph::partition_kind_name(kind)
                       << " ranks=" << ranks << " cached=" << cached
                       << " tiered=" << tiered);
          const EngineConfig cfg = matrix_config(g, cached, tiered);
          const auto lcc = core::run_distributed_lcc(g, ranks, cfg, {}, kind);
          expect_matches_reference(g, lcc);
          // TC exercises the upper-triangle trimming (1D) / per-segment
          // suffix trimming (Grid2D) paths the LCC run does not.
          EXPECT_EQ(core::run_distributed_tc(g, ranks, cfg, {}, kind),
                    ref.global_triangles);
        }
      }
    }
  }
}

TEST(PartitionMatrix, PaperExampleAllConfigs) {
  sweep_graph(paper_example(), "paper_example");
}

TEST(PartitionMatrix, RmatSkewedAllConfigs) {
  sweep_graph(rmat_graph(7, 8, matrix_seed()), "rmat_s7_ef8");
}

TEST(PartitionMatrix, RmatDenserAllConfigs) {
  sweep_graph(rmat_graph(6, 16, matrix_seed() + 1), "rmat_s6_ef16");
}

// The DODG orientation path (directed rows, no suffix trimming, raw t(v)
// sums) composes with every partition kind — under Grid2D the oriented rows
// are segmented like any others.
TEST(PartitionMatrix, DodgTcAcrossKinds) {
  const auto g = rmat_graph(7, 8, matrix_seed() + 2);
  const auto ref = graph::reference_lcc(g);
  for (const PartitionKind kind : kKinds) {
    for (const std::uint32_t ranks : kRankCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "kind=" << graph::partition_kind_name(kind)
                   << " ranks=" << ranks);
      EngineConfig cfg = matrix_config(g, /*cached=*/true, /*tiered=*/true);
      cfg.orient_dodg = true;
      EXPECT_EQ(core::run_distributed_tc(g, ranks, cfg, {}, kind),
                ref.global_triangles);
    }
  }
}

// Hub replication composes with every kind: under Grid2D a replicated row
// serves segment requests by slicing to the column block's id range.
TEST(PartitionMatrix, HubReplicationAcrossKinds) {
  const auto g = rmat_graph(7, 8, matrix_seed() + 3);
  for (const PartitionKind kind : kKinds) {
    SCOPED_TRACE(graph::partition_kind_name(kind));
    EngineConfig cfg = matrix_config(g, /*cached=*/true, /*tiered=*/false);
    cfg.hub_fraction = 0.25;
    const auto lcc = core::run_distributed_lcc(g, 4, cfg, {}, kind);
    expect_matches_reference(g, lcc);
    if (kind == PartitionKind::Grid2D)
      EXPECT_GT(lcc.run.total().hub_local_hits, 0u);
  }
}

// Satellite: vertex-relabel invariance. A random permutation of vertex ids
// must leave the TC count unchanged and map the LCC/triangle vectors
// through the permutation, for every PartitionKind (this is exactly the
// relabel step Grid2D assumes balances its row/column blocks).
TEST(PartitionMatrix, RelabelInvarianceAcrossKinds) {
  const std::uint64_t seed = matrix_seed() + 4;
  auto edges = graph::generate_rmat({.scale = 7,
                                     .edge_factor = 8,
                                     .seed = seed,
                                     .directedness =
                                         graph::Directedness::Undirected});
  graph::clean(edges);
  const auto g = graph::CSRGraph::from_edges(edges);
  const auto perm =
      graph::random_permutation(g.num_vertices(), seed ^ 0x9e3779b9ULL);
  graph::relabel(edges, perm);
  graph::clean(edges);  // re-sort rows under the new ids
  const auto g2 = graph::CSRGraph::from_edges(edges);

  for (const PartitionKind kind : kKinds) {
    SCOPED_TRACE(graph::partition_kind_name(kind));
    const EngineConfig cfg = matrix_config(g, /*cached=*/true, /*tiered=*/true);
    const auto base = core::run_distributed_lcc(g, 4, cfg, {}, kind);
    const auto rel = core::run_distributed_lcc(g2, 4, cfg, {}, kind);
    EXPECT_EQ(rel.global_triangles, base.global_triangles);
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(rel.triangles[perm[v]], base.triangles[v]) << "vertex " << v;
      ASSERT_DOUBLE_EQ(rel.lcc[perm[v]], base.lcc[v]) << "vertex " << v;
    }
  }
}

}  // namespace
}  // namespace atlc
