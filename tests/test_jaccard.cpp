// Tests for the distributed Jaccard similarity extension (paper Section VI
// future-work (ii) built on the same RMA+cache substrate as LCC).
#include <gtest/gtest.h>

#include "atlc/core/jaccard.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/generators.hpp"

namespace atlc::core {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;

CSRGraph rmat_graph(unsigned scale, unsigned ef, std::uint64_t seed) {
  auto e = graph::generate_rmat({.scale = scale, .edge_factor = ef,
                                 .seed = seed});
  graph::clean(e);
  return CSRGraph::from_edges(e);
}

TEST(Jaccard, CompleteGraphClosedForm) {
  // K_n: adj(u) ∩ adj(v) = n-2, |adj| = n-1 each, union = n.
  EdgeList e(6, {}, Directedness::Undirected);
  for (graph::VertexId u = 0; u < 6; ++u)
    for (graph::VertexId v = u + 1; v < 6; ++v) e.add_edge(u, v);
  e.symmetrize();
  const auto g = CSRGraph::from_edges(e);
  const auto r = run_distributed_jaccard(g, 3);
  for (double j : r.similarity) EXPECT_DOUBLE_EQ(j, 4.0 / 6.0);
}

TEST(Jaccard, StarGraphEndpointsShareNothing) {
  // Star: center c adjacent to leaves; J(c, leaf) = 0 (adj(leaf) = {c},
  // adj(c) excludes c). Degree-1 leaves survive cleaning is not needed —
  // build CSR directly.
  EdgeList e(5, {}, Directedness::Undirected);
  for (graph::VertexId v = 1; v < 5; ++v) e.add_edge(0, v);
  e.symmetrize();
  const auto g = CSRGraph::from_edges(e);
  const auto r = run_distributed_jaccard(g, 2);
  for (double j : r.similarity) EXPECT_DOUBLE_EQ(j, 0.0);
}

class JaccardRanks : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(JaccardRanks, MatchesReference) {
  const auto g = rmat_graph(8, 8, 21);
  const auto ref = reference_jaccard(g);
  const auto r = run_distributed_jaccard(g, GetParam());
  ASSERT_EQ(r.similarity.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.similarity[k], ref[k]) << "slot " << k;
}

TEST_P(JaccardRanks, MatchesReferenceCached) {
  const auto g = rmat_graph(8, 8, 22);
  const auto ref = reference_jaccard(g);
  EngineConfig cfg;
  cfg.use_cache = true;
  cfg.victim_policy = clampi::VictimPolicy::UserScore;
  cfg.cache_sizing =
      CacheSizing::paper_default(g.num_vertices(), g.csr_bytes() / 4);
  const auto r = run_distributed_jaccard(g, GetParam(), cfg);
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.similarity[k], ref[k]) << "slot " << k;
  if (GetParam() > 1) EXPECT_GT(r.adj_cache_total.accesses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, JaccardRanks, ::testing::Values(1u, 2u, 4u, 8u));

TEST(Jaccard, ValuesAreProbabilities) {
  const auto g = rmat_graph(9, 8, 23);
  const auto r = run_distributed_jaccard(g, 4);
  for (double j : r.similarity) {
    EXPECT_GE(j, 0.0);
    EXPECT_LT(j, 1.0);  // open neighborhoods: u ∉ adj(u), so never 1 here
  }
}

TEST(Jaccard, SimilarityCorrelatesWithLcc) {
  // High-LCC regions (tight circles) should show higher edge similarity
  // than a uniform graph of comparable density.
  auto circles = graph::generate_circles({.num_vertices = 512, .seed = 9});
  graph::clean(circles);
  const auto gc = CSRGraph::from_edges(circles);
  auto uni = graph::generate_uniform(
      {.num_vertices = 512, .num_edges = gc.num_edges() / 2, .seed = 9});
  graph::clean(uni);
  const auto gu = CSRGraph::from_edges(uni);

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  EXPECT_GT(mean(run_distributed_jaccard(gc, 2).similarity),
            2.0 * mean(run_distributed_jaccard(gu, 2).similarity));
}

TEST(Jaccard, CyclicPartitionAgrees) {
  const auto g = rmat_graph(8, 8, 24);
  const auto ref = reference_jaccard(g);
  const auto r = run_distributed_jaccard(g, 4, {}, {},
                                         graph::PartitionKind::Cyclic1D);
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_DOUBLE_EQ(r.similarity[k], ref[k]) << "slot " << k;
}

}  // namespace
}  // namespace atlc::core
