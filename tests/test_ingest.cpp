// The out-of-core ingest pipeline (DESIGN.md §11): chunked reading, the
// parallel/external sort, snapshot v2 round-trips against the in-memory
// load+clean path, partition-slice equivalence, spill-path byte identity,
// and the corruption/back-compat matrix of the v2 container.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/io.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/ingest/chunk_reader.hpp"
#include "atlc/ingest/external_sorter.hpp"
#include "atlc/ingest/pipeline.hpp"
#include "atlc/ingest/snapshot.hpp"

namespace {

using namespace atlc;
using graph::Directedness;
using graph::Edge;
using graph::VertexId;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "atlc_ingest_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

/// Raw (uncleaned) R-MAT instance: duplicates and self loops included.
graph::EdgeList raw_rmat(unsigned scale, unsigned ef, std::uint64_t seed,
                         Directedness dir = Directedness::Undirected) {
  return graph::generate_rmat(
      {.scale = scale, .edge_factor = ef, .seed = seed, .directedness = dir});
}

/// The reference the snapshot payload must match bit-for-bit: the legacy
/// loader's EdgeList pushed through graph::clean() with the given seed,
/// edges sorted (the snapshot stores sorted edges; clean() leaves them in
/// removal order, and CSR construction is order-independent).
std::vector<Edge> cleaned_sorted(graph::EdgeList edges, std::uint64_t seed) {
  graph::clean(edges, {.relabel_seed = seed});
  auto sorted = edges.edges();
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void expect_snapshot_equals(const std::string& snap_path,
                            const graph::EdgeList& reference_raw,
                            std::uint64_t seed) {
  graph::EdgeList ref = reference_raw;
  const auto ref_n = [&] {
    graph::EdgeList probe = reference_raw;
    graph::clean(probe, {.relabel_seed = seed});
    return probe.num_vertices();
  }();
  const auto ref_edges = cleaned_sorted(std::move(ref), seed);

  ingest::SnapshotReader reader(snap_path);
  const auto loaded = reader.read_all();
  EXPECT_EQ(loaded.num_vertices(), ref_n);
  EXPECT_EQ(loaded.directedness(), reference_raw.directedness());
  ASSERT_EQ(loaded.edges().size(), ref_edges.size());
  EXPECT_TRUE(loaded.edges() == ref_edges) << "edge payload differs";

  std::vector<VertexId> deg(ref_n, 0);
  for (const Edge& e : ref_edges) ++deg[e.u];
  EXPECT_TRUE(reader.degrees() == deg) << "stored degrees differ";
}

// ---------------------------------------------------------------------------
// ChunkReader

TEST(ChunkReader, StitchesChunksToLineBoundaries) {
  const std::string content =
      "# header\n0 1\n12 345\nlonger line with words\n6 7\n";
  const std::string path = tmp_path("stitch.txt");
  write_file(path, content);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{4096}}) {
    ingest::ChunkReader reader(path, chunk);
    EXPECT_EQ(reader.file_bytes(), content.size());
    std::string concat;
    ingest::TextChunk c;
    while (reader.next(c)) {
      ASSERT_FALSE(c.data.empty());
      EXPECT_EQ(c.file_offset, concat.size());
      EXPECT_EQ(c.data.back(), '\n') << "chunk size " << chunk;
      concat += c.data;
    }
    EXPECT_EQ(concat, content) << "chunk size " << chunk;
    EXPECT_EQ(reader.bytes_read(), content.size());
  }
}

TEST(ChunkReader, GrowsWindowForOversizedLines) {
  std::string content = "1 2\n";
  content += std::string(300, 'x');  // one 300-byte junk line
  content += "\n3 4\n";
  const std::string path = tmp_path("oversize.txt");
  write_file(path, content);

  ingest::ChunkReader reader(path, 8);
  std::string concat;
  ingest::TextChunk c;
  while (reader.next(c)) concat += c.data;
  EXPECT_EQ(concat, content);
}

TEST(ChunkReader, FinalLineWithoutNewline) {
  const std::string content = "0 1\n2 3";  // no trailing newline
  const std::string path = tmp_path("nonl.txt");
  write_file(path, content);

  ingest::ChunkReader reader(path, 4);
  std::string concat;
  ingest::TextChunk c;
  while (reader.next(c)) concat += c.data;
  EXPECT_EQ(concat, content);
}

// ---------------------------------------------------------------------------
// parse_text_chunk

TEST(ParseTextChunk, MirrorsLegacyScanfSemantics) {
  const std::string text =
      "# comment\n"
      "% comment\n"
      "\n"
      "1 2\n"
      "  3\t 4 trailing junk\n"
      "+5 6\n"
      "-1 7\n"           // strtoull wraps negatives
      "no numbers\n"
      "8\n"              // only one integer: skipped
      "9 10";            // final line without newline
  std::vector<ingest::RawPair> pairs;
  const std::size_t lines = ingest::parse_text_chunk(text, pairs);
  EXPECT_EQ(lines, 10u);
  ASSERT_EQ(pairs.size(), 5u);
  EXPECT_EQ(pairs[0].a, 1u);
  EXPECT_EQ(pairs[0].b, 2u);
  EXPECT_EQ(pairs[1].a, 3u);
  EXPECT_EQ(pairs[1].b, 4u);
  EXPECT_EQ(pairs[2].a, 5u);
  EXPECT_EQ(pairs[2].b, 6u);
  EXPECT_EQ(pairs[3].a, ~std::uint64_t{0});
  EXPECT_EQ(pairs[3].b, 7u);
  EXPECT_EQ(pairs[4].a, 9u);
  EXPECT_EQ(pairs[4].b, 10u);
}

// ---------------------------------------------------------------------------
// parallel sort + external sorter

TEST(ParallelSortEdges, MatchesStdSort) {
  std::mt19937 rng(99);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{255},
                        std::size_t{100000}}) {
    std::vector<Edge> edges(n);
    for (Edge& e : edges)
      e = {static_cast<VertexId>(rng() % 512),
           static_cast<VertexId>(rng() % 512)};
    auto expect = edges;
    std::sort(expect.begin(), expect.end());
    for (int threads : {1, 2, 4, 8}) {
      auto got = edges;
      ingest::parallel_sort_edges(got, threads);
      EXPECT_TRUE(got == expect) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ExternalEdgeSorter, SpillPathMatchesInMemoryAndIsRerunnable) {
  std::mt19937 rng(5);
  std::vector<Edge> edges(50000);
  for (Edge& e : edges)
    e = {static_cast<VertexId>(rng() % 1024),
         static_cast<VertexId>(rng() % 1024)};
  auto expect = edges;
  std::sort(expect.begin(), expect.end());

  const std::string prefix = tmp_path("sorter");
  ingest::ExternalEdgeSorter sorter(prefix, 32 * 1024, 2);  // ~4K edge budget
  // Feed in parse-batch-sized chunks so the watermark trips repeatedly (a
  // single giant add() would spill exactly once).
  for (std::size_t i = 0; i < edges.size(); i += 5000)
    sorter.add(std::span<const Edge>(edges).subspan(
        i, std::min<std::size_t>(5000, edges.size() - i)));
  sorter.finish();
  EXPECT_GE(sorter.spill_runs(), 2u);
  EXPECT_EQ(sorter.total_edges(), edges.size());

  for (int replay = 0; replay < 2; ++replay) {
    std::vector<Edge> got;
    got.reserve(edges.size());
    sorter.for_each_sorted([&](const Edge& e) { got.push_back(e); });
    EXPECT_TRUE(got == expect) << "replay " << replay;
  }

  sorter.clear();
  EXPECT_FALSE(std::filesystem::exists(prefix + ".run0"));
}

// ---------------------------------------------------------------------------
// Full pipeline vs the in-memory load+clean path

TEST(Ingest, TextInputMatchesInMemoryCleanAcrossConfigs) {
  const auto raw = raw_rmat(9, 8, 7);
  const std::string text = tmp_path("text_rt.txt");
  graph::save_text_edges(raw, text);
  const auto reference = graph::load_text_edges(text, Directedness::Undirected);

  // Sweep threads x chunk size x budget: every configuration must produce a
  // byte-identical snapshot, equal to the in-memory clean.
  std::string first_bytes;
  int variant = 0;
  struct Cfg {
    int threads;
    std::size_t chunk;
    std::uint64_t budget;
  };
  for (const Cfg& c : {Cfg{1, 1u << 20, 0}, Cfg{4, 333, 0},
                       Cfg{2, 4096, 16 * 1024}, Cfg{4, 57, 8 * 1024}}) {
    const std::string snap =
        tmp_path("text_rt_" + std::to_string(variant++) + ".v2");
    ingest::IngestOptions opt;
    opt.num_threads = c.threads;
    opt.chunk_bytes = c.chunk;
    opt.mem_budget_bytes = c.budget;
    opt.ranks = 4;
    opt.relabel_seed = 11;
    const auto rep = ingest::run_ingest(text, snap, opt);
    EXPECT_GT(rep.bytes_read, 0u);
    EXPECT_GT(rep.lines, 0u);
    expect_snapshot_equals(snap, reference, 11);
    const std::string bytes = read_file(snap);
    if (first_bytes.empty())
      first_bytes = bytes;
    else
      EXPECT_TRUE(bytes == first_bytes)
          << "snapshot bytes differ for threads=" << c.threads
          << " chunk=" << c.chunk << " budget=" << c.budget;
  }
}

TEST(Ingest, BinaryInputMatchesInMemoryClean) {
  const auto raw = raw_rmat(9, 6, 3);
  const std::string bin = tmp_path("bin_rt.bin");
  graph::save_binary_edges(raw, bin);
  const auto reference = graph::load_binary_edges(bin);

  const std::string snap = tmp_path("bin_rt.v2");
  ingest::IngestOptions opt;
  opt.ranks = 8;
  opt.relabel_seed = 5;
  const auto rep = ingest::run_ingest(bin, snap, opt);
  EXPECT_EQ(rep.input_kind, "binary-v1");
  EXPECT_EQ(rep.pairs_parsed, raw.num_edges());
  expect_snapshot_equals(snap, reference, 5);
}

TEST(Ingest, DirectedTextInput) {
  const auto raw = raw_rmat(8, 6, 13, Directedness::Directed);
  const std::string text = tmp_path("directed.txt");
  graph::save_text_edges(raw, text);
  const auto reference = graph::load_text_edges(text, Directedness::Directed);

  const std::string snap = tmp_path("directed.v2");
  ingest::IngestOptions opt;
  opt.directedness = Directedness::Directed;
  opt.relabel_seed = 2;
  const auto rep = ingest::run_ingest(text, snap, opt);
  EXPECT_EQ(rep.input_kind, "text");
  expect_snapshot_equals(snap, reference, 2);
  ingest::SnapshotReader reader(snap);
  EXPECT_EQ(reader.directedness(), Directedness::Directed);
}

TEST(Ingest, RelabelNoneMatchesSeedZeroClean) {
  const auto raw = raw_rmat(8, 8, 21);
  const std::string bin = tmp_path("none.bin");
  graph::save_binary_edges(raw, bin);

  const std::string snap = tmp_path("none.v2");
  ingest::IngestOptions opt;
  opt.relabel = ingest::RelabelMode::None;
  const auto rep = ingest::run_ingest(bin, snap, opt);
  (void)rep;
  expect_snapshot_equals(snap, graph::load_binary_edges(bin), /*seed=*/0);
}

TEST(Ingest, DegreeDescendingRelabelIsAnIsomorphism) {
  const auto raw = raw_rmat(8, 8, 31);
  const std::string bin = tmp_path("degdesc.bin");
  graph::save_binary_edges(raw, bin);

  const std::string snap = tmp_path("degdesc.v2");
  ingest::IngestOptions opt;
  opt.relabel = ingest::RelabelMode::DegreeDescending;
  opt.remove_degree_lt2 = false;  // keep degrees == the relabel key
  (void)ingest::run_ingest(bin, snap, opt);

  ingest::SnapshotReader reader(snap);
  const auto g = graph::CSRGraph::from_edges(reader.read_all());
  // New ids are assigned by descending degree, so the degree sequence in id
  // order is non-increasing...
  for (VertexId v = 1; v < g.num_vertices(); ++v)
    EXPECT_LE(g.degree(v), g.degree(v - 1)) << "vertex " << v;
  // ...and a relabel is an isomorphism: the triangle count is unchanged
  // against the un-relabeled clean of the same input.
  graph::EdgeList ref = graph::load_binary_edges(bin);
  graph::clean(ref, {.remove_degree_lt2 = false, .relabel_seed = 0});
  const auto ref_g = graph::CSRGraph::from_edges(ref);
  EXPECT_EQ(graph::reference_lcc(g).global_triangles,
            graph::reference_lcc(ref_g).global_triangles);
}

// ---------------------------------------------------------------------------
// Partition-sliced reads

TEST(Ingest, SliceEqualsInMemoryBuildForAllKindsAndRanks) {
  const auto raw = raw_rmat(9, 8, 17);
  const std::string bin = tmp_path("slices.bin");
  graph::save_binary_edges(raw, bin);

  for (std::uint32_t ranks : {1u, 2u, 4u, 8u}) {
    const std::string snap =
        tmp_path("slices_r" + std::to_string(ranks) + ".v2");
    ingest::IngestOptions opt;
    opt.ranks = ranks;
    opt.relabel_seed = 9;
    (void)ingest::run_ingest(bin, snap, opt);

    ingest::SnapshotReader reader(snap);
    ASSERT_EQ(reader.ranks(), ranks);
    const auto g = graph::CSRGraph::from_edges(reader.read_all());
    for (const auto kind :
         {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D,
          graph::PartitionKind::DegreeBalanced1D,
          graph::PartitionKind::Grid2D}) {
      const auto part = graph::make_partition(g, kind, ranks);
      for (std::uint32_t rank = 0; rank < ranks; ++rank) {
        // The in-memory reference: the column-restricted row slices
        // build_dist_graph derives from the global CSR.
        const auto [lo, hi] = part.col_block_range(
            part.col_blocks() > 1 ? part.grid_col(rank) : 0);
        std::vector<graph::EdgeIndex> want_off{0};
        std::vector<VertexId> want_adj;
        for (VertexId lv = 0; lv < part.part_size(rank); ++lv) {
          const auto nbrs = g.neighbors(part.global_id(rank, lv));
          const auto s = std::lower_bound(nbrs.begin(), nbrs.end(), lo);
          const auto e = std::lower_bound(s, nbrs.end(), hi);
          want_adj.insert(want_adj.end(), s, e);
          want_off.push_back(want_adj.size());
        }

        std::vector<graph::EdgeIndex> got_off;
        std::vector<VertexId> got_adj;
        reader.read_slice(part, rank, got_off, got_adj);
        EXPECT_TRUE(got_off == want_off)
            << graph::partition_kind_name(kind) << " rank " << rank << "/"
            << ranks << ": offsets differ";
        EXPECT_TRUE(got_adj == want_adj)
            << graph::partition_kind_name(kind) << " rank " << rank << "/"
            << ranks << ": adjacencies differ";
      }
    }
  }
}

TEST(Ingest, EngineResultsBitIdenticalViaSliceSource) {
  const auto raw = raw_rmat(8, 8, 23);
  const std::string bin = tmp_path("engine.bin");
  graph::save_binary_edges(raw, bin);
  const std::string snap = tmp_path("engine.v2");
  ingest::IngestOptions opt;
  opt.ranks = 8;
  opt.relabel_seed = 4;
  (void)ingest::run_ingest(bin, snap, opt);

  ingest::SnapshotReader reader(snap);
  const auto g = graph::CSRGraph::from_edges(reader.read_all());
  for (const auto kind :
       {graph::PartitionKind::Block1D, graph::PartitionKind::Cyclic1D,
        graph::PartitionKind::DegreeBalanced1D,
        graph::PartitionKind::Grid2D}) {
    core::EngineConfig mem_cfg;
    const auto mem = core::run_distributed_lcc(g, 8, mem_cfg, {}, kind);

    core::EngineConfig ooc_cfg;
    ooc_cfg.slice_source = &reader;
    const auto ooc = core::run_distributed_lcc(g, 8, ooc_cfg, {}, kind);

    EXPECT_EQ(ooc.global_triangles, mem.global_triangles)
        << graph::partition_kind_name(kind);
    EXPECT_TRUE(ooc.triangles == mem.triangles)
        << graph::partition_kind_name(kind);
    EXPECT_TRUE(ooc.lcc == mem.lcc) << graph::partition_kind_name(kind);

    EXPECT_EQ(core::run_distributed_tc(g, 8, ooc_cfg, {}, kind),
              core::run_distributed_tc(g, 8, mem_cfg, {}, kind))
        << graph::partition_kind_name(kind);
  }
}

// ---------------------------------------------------------------------------
// Spill path

TEST(Ingest, SpillPathProducesByteIdenticalSnapshot) {
  const auto raw = raw_rmat(10, 8, 41);
  const std::string text = tmp_path("spill.txt");
  graph::save_text_edges(raw, text);
  const auto input_bytes = std::filesystem::file_size(text);

  ingest::IngestOptions mem_opt;
  mem_opt.ranks = 4;
  const std::string snap_mem = tmp_path("spill_mem.v2");
  const auto mem_rep = ingest::run_ingest(text, snap_mem, mem_opt);
  EXPECT_EQ(mem_rep.spill_runs, 0u);

  ingest::IngestOptions spill_opt = mem_opt;
  spill_opt.mem_budget_bytes = 64 * 1024;  // far below the edge stream
  const std::string snap_spill = tmp_path("spill_disk.v2");
  const auto spill_rep = ingest::run_ingest(text, snap_spill, spill_opt);
  // The input (and the edge stream) genuinely exceed the memory budget,
  // and the spill path really ran.
  EXPECT_GT(input_bytes, spill_opt.mem_budget_bytes);
  EXPECT_GE(spill_rep.spill_runs, 2u);

  EXPECT_TRUE(read_file(snap_mem) == read_file(snap_spill))
      << "spill path changed the snapshot bytes";
}

// ---------------------------------------------------------------------------
// Corruption, truncation, and version back-compat

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto raw = raw_rmat(7, 6, 2);
    bin_ = tmp_path("corrupt_src.bin");
    graph::save_binary_edges(raw, bin_);
    snap_ = tmp_path("corrupt.v2");
    ingest::IngestOptions opt;
    opt.ranks = 4;
    (void)ingest::run_ingest(bin_, snap_, opt);
    bytes_ = read_file(snap_);
    ASSERT_GT(bytes_.size(), ingest::snapshot_v2::kHeaderBytes);
  }

  /// Write `bytes` patched at `offset` and return the temp path.
  std::string patched(std::size_t offset, unsigned char value) {
    std::string copy = bytes_;
    copy[offset] = static_cast<char>(value);
    const std::string path =
        tmp_path("patched_" + std::to_string(offset) + "_" +
                 std::to_string(value) + ".v2");
    write_file(path, copy);
    return path;
  }

  std::string bin_;
  std::string snap_;
  std::string bytes_;
};

TEST_F(SnapshotCorruption, HeaderFieldPatchesAreRejected) {
  namespace v2 = ingest::snapshot_v2;
  // Each patch flips one header field; the reader must refuse them all.
  const std::pair<std::size_t, unsigned char> patches[] = {
      {v2::kMagicOffset, 0x00},        // bad magic
      {v2::kVersionOffset, 3},         // unknown version
      {v2::kDirectednessOffset, 7},    // corrupt flag
      {v2::kNumVerticesOffset, 0xee},  // section offsets no longer line up
      {v2::kNumEdgesOffset, 0xee},     // ditto
      {v2::kRanksOffset, 0},           // zero ranks
      {v2::kKindCountOffset, 5},       // wrong kind count
      {v2::kEdgesOffsetOffset, 0xee},  // inconsistent layout
      {v2::kIndexOffsetOffset, 0xee},
      {v2::kFileBytesOffset, 0xee},    // declared size != actual
      {v2::kDegreeChecksumOffset,
       static_cast<unsigned char>(
           bytes_[v2::kDegreeChecksumOffset] ^ 0x1)},  // degree corruption
  };
  for (const auto& [offset, value] : patches) {
    EXPECT_THROW(ingest::SnapshotReader reader(patched(offset, value)),
                 std::runtime_error)
        << "header offset " << offset << " accepted";
  }
}

TEST_F(SnapshotCorruption, EdgePayloadCorruptionCaughtByReadAll) {
  namespace v2 = ingest::snapshot_v2;
  // A flipped edge byte passes the container checks (the edge checksum is
  // only verified against the payload on read)...
  ingest::SnapshotReader clean_reader(snap_);
  const std::size_t edge_byte =
      v2::kHeaderBytes +
      clean_reader.num_vertices() * sizeof(VertexId) /*degrees*/ + 1;
  const std::string path = patched(
      edge_byte, static_cast<unsigned char>(bytes_[edge_byte] ^ 0x4));
  ingest::SnapshotReader reader(path);
  EXPECT_THROW((void)reader.read_all(), std::runtime_error);

  // ...and a patched stored checksum is caught the same way.
  const std::string path2 = patched(
      v2::kEdgeChecksumOffset,
      static_cast<unsigned char>(bytes_[v2::kEdgeChecksumOffset] ^ 0x1));
  ingest::SnapshotReader reader2(path2);
  EXPECT_THROW((void)reader2.read_all(), std::runtime_error);
}

TEST_F(SnapshotCorruption, TruncationIsRejected) {
  for (const std::size_t keep :
       {std::size_t{10}, ingest::snapshot_v2::kHeaderBytes,
        bytes_.size() / 2, bytes_.size() - 1}) {
    const std::string path =
        tmp_path("trunc_" + std::to_string(keep) + ".v2");
    write_file(path, bytes_.substr(0, keep));
    EXPECT_THROW(ingest::SnapshotReader reader(path), std::runtime_error)
        << "kept " << keep << " of " << bytes_.size() << " bytes";
  }
}

TEST_F(SnapshotCorruption, SliceIndexCorruptionIsRejected) {
  // The slice index sits at the end of the file; stomp a byte in its
  // extent region (past the section tag) and the structural validation
  // must catch it (coverage, monotonicity, or range).
  bool threw = false;
  for (std::size_t back = 1; back <= 16 && !threw; ++back) {
    const std::size_t offset = bytes_.size() - back;
    const std::string path = patched(
        offset, static_cast<unsigned char>(bytes_[offset] ^ 0xff));
    try {
      ingest::SnapshotReader reader(path);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw) << "no tail patch was caught";
}

TEST_F(SnapshotCorruption, VersionSniffingAndBackCompat) {
  // sniff: v2 yes; v1 binary and text no.
  EXPECT_TRUE(ingest::SnapshotReader::sniff(snap_));
  EXPECT_FALSE(ingest::SnapshotReader::sniff(bin_));
  const std::string text = tmp_path("sniff.txt");
  write_file(text, "0 1\n1 2\n");
  EXPECT_FALSE(ingest::SnapshotReader::sniff(text));

  // A v1 file handed to the v2 reader gets a pointed message.
  try {
    ingest::SnapshotReader reader(bin_);
    FAIL() << "v1 file accepted as v2 snapshot";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("v1"), std::string::npos);
  }

  // A v2 file handed to the v1 loader points at --snapshot.
  try {
    (void)graph::load_binary_edges(snap_);
    FAIL() << "v2 snapshot accepted as v1 edge list";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("--snapshot"), std::string::npos);
  }

  // v1 loading still works, with and without format sniffing.
  EXPECT_GT(graph::load_binary_edges(bin_).num_edges(), 0u);
  EXPECT_GT(
      graph::load_edges(bin_, Directedness::Undirected).num_edges(), 0u);

  // Re-ingesting a snapshot is refused.
  EXPECT_THROW(
      (void)ingest::run_ingest(snap_, tmp_path("twice.v2"), {}),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Overflow guard

TEST(LoadTextEdges, RejectsIdSpaceOverflow) {
  const std::string path = tmp_path("overflow.txt");
  write_file(path, "10 20\n30 40\n50 10\n");  // 5 distinct ids

  EXPECT_THROW(
      (void)graph::load_text_edges(path, Directedness::Undirected, 4),
      std::runtime_error);
  EXPECT_EQ(
      graph::load_text_edges(path, Directedness::Undirected, 5).num_vertices(),
      5u);

  ingest::IngestOptions opt;
  opt.max_vertices = 4;
  EXPECT_THROW(
      (void)ingest::run_ingest(path, tmp_path("overflow.v2"), opt),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Report plumbing

TEST(Ingest, ReportCarriesThroughputAndFormatFields) {
  const auto raw = raw_rmat(8, 8, 55);
  const std::string bin = tmp_path("report.bin");
  graph::save_binary_edges(raw, bin);
  const std::string snap = tmp_path("report.v2");
  ingest::IngestOptions opt;
  opt.ranks = 4;
  const auto rep = ingest::run_ingest(bin, snap, opt);

  EXPECT_GT(rep.num_edges, 0u);
  EXPECT_GT(rep.num_vertices, 0u);
  EXPECT_GT(rep.peak_rss_bytes, 0u);
  EXPECT_EQ(rep.snapshot_bytes, std::filesystem::file_size(snap));
  EXPECT_GE(rep.total_seconds, 0.0);

  ingest::SnapshotReader reader(snap);
  EXPECT_EQ(rep.edge_checksum, reader.edge_checksum());
  EXPECT_EQ(rep.num_edges, reader.num_edges());
  namespace v2 = ingest::snapshot_v2;
  using graph::PartitionKind;
  // Extent totals surface per kind, and sorted-by-(u,v) edges give the
  // contiguous 1D kinds at most one extent per (rank, vertex-run).
  EXPECT_EQ(rep.extents[static_cast<int>(PartitionKind::Block1D)],
            reader.extents_total(PartitionKind::Block1D));
  EXPECT_LE(rep.extents[static_cast<int>(PartitionKind::Block1D)], 4u);
  EXPECT_GE(rep.extents[static_cast<int>(PartitionKind::Grid2D)],
            rep.extents[static_cast<int>(PartitionKind::Block1D)]);
  (void)v2::kKindCount;
}

}  // namespace
