// Shared test fixtures: the paper's running-example graph, R-MAT builders
// and reference-LCC comparison helpers previously duplicated across suites.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <utility>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/edge_list.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/reference.hpp"

namespace atlc::testsupport {

/// The paper's running example (Fig. 1 left): 6 vertices, two "communities"
/// bridged by edges 2-4, triangles {0,1,2}, {2,3,4}, {3,4,5}. Undirected.
inline graph::EdgeList paper_example_edges() {
  graph::EdgeList e(6, {}, graph::Directedness::Undirected);
  for (auto [u, v] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}, {4, 5}, {3, 5}})
    e.add_edge(u, v);
  e.symmetrize();
  return e;
}

inline graph::CSRGraph paper_example() {
  return graph::CSRGraph::from_edges(paper_example_edges());
}

/// Cleaned CSR from an R-MAT instance with the given shape and seed.
inline graph::CSRGraph rmat_graph(
    unsigned scale, unsigned ef, std::uint64_t seed,
    graph::Directedness dir = graph::Directedness::Undirected) {
  auto e = graph::generate_rmat(
      {.scale = scale, .edge_factor = ef, .seed = seed, .directedness = dir});
  graph::clean(e);
  return graph::CSRGraph::from_edges(e);
}

/// Complete graph K_n (both edge directions stored).
inline graph::EdgeList complete_edges(graph::VertexId n) {
  graph::EdgeList e(n, {}, graph::Directedness::Undirected);
  for (graph::VertexId u = 0; u < n; ++u)
    for (graph::VertexId v = 0; v < n; ++v)
      if (u != v) e.add_edge(u, v);
  return e;
}

/// Death tests fork the process; with the multi-threaded rma::Runtime in
/// play the default "fast" style is unsafe (only the forking thread survives
/// in the child). Call at the top of any test that uses EXPECT_DEATH.
inline void use_threadsafe_death_tests() {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
}

/// Assert that a distributed run reproduces the single-node reference LCC
/// exactly: per-vertex triangle counts, per-vertex LCC, and the global count.
inline void expect_matches_reference(const graph::CSRGraph& g,
                                     const core::RunResult& result) {
  const auto ref = graph::reference_lcc(g);
  ASSERT_EQ(result.triangles.size(), ref.triangles.size());
  for (std::size_t v = 0; v < ref.triangles.size(); ++v) {
    ASSERT_EQ(result.triangles[v], ref.triangles[v]) << "vertex " << v;
    ASSERT_DOUBLE_EQ(result.lcc[v], ref.lcc[v]) << "vertex " << v;
  }
  EXPECT_EQ(result.global_triangles, ref.global_triangles);
}

}  // namespace atlc::testsupport
