// Tests for the TriC baseline reimplementation: correctness vs the
// reference, buffered-variant round behaviour, balanced partitioning, and
// the synchronisation cost structure the paper compares against.
#include <gtest/gtest.h>

#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/tric/tric.hpp"
#include "test_support.hpp"

namespace atlc::tric {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;
using testsupport::paper_example;
using testsupport::rmat_graph;

// ----------------------------------------------------------- correctness ---

class TricAcrossRanks : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TricAcrossRanks, GlobalCountMatchesReference) {
  const CSRGraph g = rmat_graph(8, 8, 1);
  const auto ref = graph::reference_lcc(g);
  const auto result = run_tric(g, GetParam());
  EXPECT_EQ(result.global_triangles, ref.global_triangles);
}

TEST_P(TricAcrossRanks, PerVertexCountsMatchReference) {
  const CSRGraph g = rmat_graph(7, 8, 2);
  const auto ref = graph::reference_lcc(g);
  const auto result = run_tric(g, GetParam());
  ASSERT_EQ(result.per_vertex.size(), ref.triangles.size());
  for (std::size_t v = 0; v < ref.triangles.size(); ++v) {
    // TriC counts distinct triangles; the reference's edge-centric t(v) is
    // twice that for undirected graphs.
    ASSERT_EQ(2 * result.per_vertex[v], ref.triangles[v]) << "vertex " << v;
    ASSERT_DOUBLE_EQ(result.lcc[v], ref.lcc[v]) << "vertex " << v;
  }
}

TEST_P(TricAcrossRanks, PaperExample) {
  const CSRGraph g = paper_example();
  const auto result = run_tric(g, GetParam());
  EXPECT_EQ(result.global_triangles, 3u);
  EXPECT_EQ(result.per_vertex[2], 2u);  // vertex 2 is in two triangles
  EXPECT_DOUBLE_EQ(result.lcc[2], 1.0 / 3.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, TricAcrossRanks,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Tric, UnbalancedPartitionSameCount) {
  const CSRGraph g = rmat_graph(8, 8, 3);
  const auto ref = graph::reference_lcc(g);
  TricConfig cfg;
  cfg.balanced_partition = false;
  EXPECT_EQ(run_tric(g, 4, cfg).global_triangles, ref.global_triangles);
}

TEST(Tric, SmallBatchesSameCount) {
  const CSRGraph g = rmat_graph(7, 8, 4);
  const auto ref = graph::reference_lcc(g);
  TricConfig cfg;
  cfg.batch_vertices = 8;  // many rounds
  const auto result = run_tric(g, 4, cfg);
  EXPECT_EQ(result.global_triangles, ref.global_triangles);
  EXPECT_GT(result.rounds, 4u);
}

// --------------------------------------------------------------- buffered ---

TEST(TricBuffered, MatchesUnbuffered) {
  const CSRGraph g = rmat_graph(8, 8, 5);
  const auto ref = graph::reference_lcc(g);
  TricConfig buffered;
  buffered.buffer_entries = 512;  // tiny buffers -> many forced rounds
  const auto rb = run_tric(g, 4, buffered);
  EXPECT_EQ(rb.global_triangles, ref.global_triangles);
  for (std::size_t v = 0; v < ref.triangles.size(); ++v)
    ASSERT_EQ(2 * rb.per_vertex[v], ref.triangles[v]);
}

TEST(TricBuffered, SmallerBuffersMoreRounds) {
  const CSRGraph g = rmat_graph(9, 8, 6);
  TricConfig big, small;
  big.buffer_entries = 1u << 20;
  small.buffer_entries = 256;
  const auto r_big = run_tric(g, 4, big);
  const auto r_small = run_tric(g, 4, small);
  EXPECT_EQ(r_big.global_triangles, r_small.global_triangles);
  EXPECT_GT(r_small.rounds, r_big.rounds);
}

// ------------------------------------------------------------- partition ---

TEST(BalancedBoundaries, CoverAndOrder) {
  const CSRGraph g = rmat_graph(9, 8, 7);
  const auto bounds = balanced_boundaries(g, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), g.num_vertices());
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LE(bounds[i - 1], bounds[i]);
}

TEST(BalancedBoundaries, EqualiseEdges) {
  const CSRGraph g = rmat_graph(10, 8, 8);
  const auto bounds = balanced_boundaries(g, 4);
  const auto offsets = g.offsets();
  std::uint64_t max_part = 0;
  for (std::size_t r = 0; r < 4; ++r)
    max_part = std::max<std::uint64_t>(
        max_part, offsets[bounds[r + 1]] - offsets[bounds[r]]);
  // No rank should own more than ~1.5x the average edge volume.
  EXPECT_LT(max_part, 1.5 * static_cast<double>(g.num_edges()) / 4.0);
}

// --------------------------------------------- paper comparison behaviour ---

TEST(Comparison, TricPaysMoreSynchronisationThanAsync) {
  // The paper's core claim (Section IV-D2): TriC's blocking all-to-all
  // rounds cost synchronisation the asynchronous RMA engine does not pay,
  // and its per-apex pair enumeration does Sum(deg^2) work vs the async
  // engine's Sum(deg) intersections — the gap that explodes on scale-free
  // graphs. Needs hubs big enough for deg^2 to dominate the per-get alphas.
  const CSRGraph g = rmat_graph(12, 32, 9);
  TricConfig tcfg;
  tcfg.batch_vertices = 64;  // realistic multi-round execution
  const auto tric_run = run_tric(g, 8, tcfg);
  const auto async_run = core::run_distributed_lcc(g, 8);
  EXPECT_GT(tric_run.run.makespan, async_run.run.makespan);
  // TriC executed multiple synchronising rounds; the async engine's only
  // barriers are setup/teardown.
  EXPECT_GT(tric_run.rounds, 1u);
}

TEST(Comparison, QueryVolumeGrowsWithRanks) {
  const CSRGraph g = rmat_graph(9, 8, 10);
  const auto r2 = run_tric(g, 2);
  const auto r8 = run_tric(g, 8);
  EXPECT_GT(r8.query_entries, r2.query_entries);
  EXPECT_EQ(r2.global_triangles, r8.global_triangles);
}

TEST(Tric, RejectsDirectedInput) {
  testsupport::use_threadsafe_death_tests();
  auto e = graph::generate_rmat({.scale = 6, .edge_factor = 4, .seed = 11,
                                 .directedness = Directedness::Directed});
  graph::clean(e);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_DEATH((void)run_tric(g, 2), "undirected");
}

}  // namespace
}  // namespace atlc::tric
