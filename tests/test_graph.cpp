// Unit tests for the graph substrate: edge lists, CSR, cleaning, relabeling,
// generators, IO, partitioning, degree statistics and reference LCC/TC.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <set>
#include <span>
#include <vector>

#include "atlc/core/engine_config.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/dodg.hpp"
#include "atlc/graph/edge_list.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/hub_replica.hpp"
#include "atlc/graph/io.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/graph/relabel.hpp"
#include "test_support.hpp"

namespace atlc::graph {
namespace {

using testsupport::complete_edges;
using testsupport::paper_example_edges;

EdgeList paper_example() { return paper_example_edges(); }
EdgeList complete(VertexId n) { return complete_edges(n); }

// ------------------------------------------------------------- EdgeList ---

TEST(EdgeList, SortAndDedupRemovesMultiEdges) {
  EdgeList e(3, {{0, 1}, {0, 1}, {1, 2}, {0, 1}}, Directedness::Directed);
  e.sort_and_dedup();
  EXPECT_EQ(e.num_edges(), 2u);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList e(3, {{0, 0}, {0, 1}, {2, 2}}, Directedness::Directed);
  e.remove_self_loops();
  EXPECT_EQ(e.num_edges(), 1u);
}

TEST(EdgeList, SymmetrizeAddsReverses) {
  EdgeList e(3, {{0, 1}, {1, 2}}, Directedness::Undirected);
  e.symmetrize();
  EXPECT_EQ(e.num_edges(), 4u);
  EXPECT_TRUE(e.is_symmetric());
}

TEST(EdgeList, SymmetrizeIdempotent) {
  EdgeList e(3, {{0, 1}, {1, 0}}, Directedness::Undirected);
  e.symmetrize();
  EXPECT_EQ(e.num_edges(), 2u);
}

TEST(EdgeList, SymmetrizeNoOpForDirected) {
  EdgeList e(3, {{0, 1}}, Directedness::Directed);
  e.symmetrize();
  EXPECT_EQ(e.num_edges(), 1u);
}

// ------------------------------------------------------------------ CSR ---

TEST(Csr, PaperFigure2Example) {
  // Fig. 2: node A of the Fig. 1 graph stores vertices 0..2 with
  // offsets [0,2,6] and adjacencies [1,2, 0,2,3,4, 0,1,4] (offset array in
  // the paper omits the trailing total; we store n+1 entries).
  EdgeList e(5, {}, Directedness::Directed);
  for (auto [u, v] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {1, 4}, {2, 0}, {2, 1},
           {2, 4}})
    e.add_edge(u, v);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_EQ(g.offsets()[0], 0u);
  EXPECT_EQ(g.offsets()[1], 2u);
  EXPECT_EQ(g.offsets()[2], 6u);
  EXPECT_EQ(g.offsets()[3], 9u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 4u);
  ASSERT_EQ(g.neighbors(1).size(), 4u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
  EXPECT_EQ(g.neighbors(1)[3], 4u);
}

TEST(Csr, AdjacencySortedAfterBuild) {
  EdgeList e(4, {{0, 3}, {0, 1}, {0, 2}, {2, 1}}, Directedness::Directed);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_TRUE(g.adjacency_sorted_unique());
}

TEST(Csr, HasEdge) {
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 5));
}

TEST(Csr, InDegreesMatchOutForUndirected) {
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  const auto in = g.in_degrees();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(in[v], g.degree(v)) << "vertex " << v;
}

TEST(Csr, CsrBytesAccountsBothArrays) {
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  EXPECT_EQ(g.csr_bytes(), (g.num_vertices() + 1) * sizeof(EdgeIndex) +
                               g.num_edges() * sizeof(VertexId));
}

TEST(Csr, FromRawValidates) {
  testsupport::use_threadsafe_death_tests();
  EXPECT_DEATH(
      (void)CSRGraph::from_raw(2, {0, 1}, {1, 0}, Directedness::Directed),
      "offsets");
}

TEST(Csr, EmptyGraph) {
  EdgeList e(0, {}, Directedness::Undirected);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

// ---------------------------------------------------------------- clean ---

TEST(Clean, RemovesIsolatedAndDegreeOneVertices) {
  // Vertex 3 is isolated; vertex 2 has degree 1 (cannot close a triangle).
  EdgeList e(4, {{0, 1}, {1, 0}, {0, 2}, {2, 0}, {1, 2}, {2, 1}},
             Directedness::Undirected);
  EdgeList pendant(5, {}, Directedness::Undirected);
  pendant.add_edge(0, 1);
  pendant.add_edge(1, 0);
  pendant.add_edge(0, 2);
  pendant.add_edge(2, 0);
  pendant.add_edge(1, 2);
  pendant.add_edge(2, 1);
  pendant.add_edge(3, 0);
  pendant.add_edge(0, 3);  // vertex 3: degree 1; vertex 4: isolated
  const CleanReport rep = clean(pendant);
  EXPECT_EQ(rep.vertices_removed, 2u);
  EXPECT_EQ(pendant.num_vertices(), 3u);
  // Surviving ids must be compact and the triangle intact.
  const CSRGraph g = CSRGraph::from_edges(pendant);
  EXPECT_EQ(reference_lcc(g).global_triangles, 1u);
}

TEST(Clean, RecursiveRemovalReachesFixedPoint) {
  // Chain 0-1-2-3 plus triangle 3-4-5: single-pass removal drops 0
  // (degree 1), recursive must also drop 1 and 2.
  EdgeList e(6, {}, Directedness::Undirected);
  for (auto [u, v] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}})
    e.add_edge(u, v);
  e.symmetrize();
  CleanOptions opts;
  opts.recursive_degree_removal = true;
  const CleanReport rep = clean(e, opts);
  EXPECT_EQ(e.num_vertices(), 3u);
  EXPECT_GE(rep.degree_removal_rounds, 2u);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_EQ(reference_lcc(g).global_triangles, 1u);
}

TEST(Clean, CountsSelfLoopsAndMultiEdges) {
  EdgeList e(3, {{0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2},
                 {2, 0}},
             Directedness::Undirected);
  const CleanReport rep = clean(e);
  EXPECT_EQ(rep.self_loops_removed, 1u);
  EXPECT_EQ(rep.multi_edges_removed, 1u);
}

TEST(Clean, PreservesTriangleCount) {
  auto e = generate_rmat({.scale = 8, .edge_factor = 8, .seed = 3});
  EdgeList copy = e;
  clean(copy);
  const auto before = reference_lcc(CSRGraph::from_edges([&] {
                        EdgeList x = e;
                        x.remove_self_loops();
                        x.sort_and_dedup();
                        return x;
                      }()))
                          .global_triangles;
  const auto after = reference_lcc(CSRGraph::from_edges(copy)).global_triangles;
  EXPECT_EQ(before, after);  // degree<2 vertices are in no triangle
}

// -------------------------------------------------------------- relabel ---

TEST(Relabel, PermutationIsBijective) {
  const auto perm = random_permutation(100, 42);
  std::set<VertexId> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Relabel, DeterministicPerSeed) {
  EXPECT_EQ(random_permutation(50, 7), random_permutation(50, 7));
  EXPECT_NE(random_permutation(50, 7), random_permutation(50, 8));
}

TEST(Relabel, PreservesTriangles) {
  auto e = generate_rmat({.scale = 7, .edge_factor = 8, .seed = 5});
  clean(e);
  const auto before = reference_lcc(CSRGraph::from_edges(e)).global_triangles;
  relabel_random(e, 99);
  const auto after = reference_lcc(CSRGraph::from_edges(e)).global_triangles;
  EXPECT_EQ(before, after);
}

// ----------------------------------------------------------- generators ---

TEST(Rmat, SizesFollowScaleAndEdgeFactor) {
  const auto e = generate_rmat(
      {.scale = 10, .edge_factor = 4, .seed = 1,
       .directedness = Directedness::Directed});
  EXPECT_EQ(e.num_vertices(), 1u << 10);
  EXPECT_EQ(e.num_edges(), (1u << 10) * 4u);
}

TEST(Rmat, DeterministicPerSeed) {
  const auto a = generate_rmat({.scale = 8, .edge_factor = 4, .seed = 9});
  const auto b = generate_rmat({.scale = 8, .edge_factor = 4, .seed = 9});
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Rmat, UndirectedOutputIsSymmetric) {
  const auto e = generate_rmat({.scale = 7, .edge_factor = 4, .seed = 2});
  EXPECT_TRUE(e.is_symmetric());
}

TEST(Rmat, SkewedDegreesVsUniform) {
  auto rmat = generate_rmat({.scale = 10, .edge_factor = 8, .seed = 3});
  clean(rmat);
  auto uni = generate_uniform({.num_vertices = 1u << 10,
                               .num_edges = 8u << 10,
                               .seed = 3});
  clean(uni);
  const auto s_rmat = degree_stats(CSRGraph::from_edges(rmat));
  const auto s_uni = degree_stats(CSRGraph::from_edges(uni));
  // The R-MAT parameters of the paper produce a heavy-tailed distribution;
  // the uniform control does not (paper Fig. 4 upper-left).
  EXPECT_GT(s_rmat.gini, s_uni.gini + 0.1);
  EXPECT_GT(s_rmat.max, s_uni.max);
}

TEST(Rmat, LargeCsrAdjacencySortedUnique) {
  // Large enough that from_edges' per-row sort runs its OpenMP path; the
  // parallelization must preserve the sorted-unique adjacency invariant
  // every intersection kernel relies on.
  auto e = generate_rmat({.scale = 12, .edge_factor = 8, .seed = 6});
  clean(e, {.relabel_seed = 17});
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_TRUE(g.adjacency_sorted_unique());
  EXPECT_EQ(g.num_vertices(), e.num_vertices());
  EXPECT_EQ(g.num_edges(), e.num_edges());
}

TEST(Uniform, EdgeCountAndRange) {
  const auto e = generate_uniform({.num_vertices = 100,
                                   .num_edges = 500,
                                   .seed = 1,
                                   .directedness = Directedness::Directed});
  EXPECT_EQ(e.num_edges(), 500u);
  for (const Edge& ed : e.edges()) {
    EXPECT_LT(ed.u, 100u);
    EXPECT_LT(ed.v, 100u);
  }
}

TEST(Circles, ProducesClusteredSkewedGraph) {
  auto e = generate_circles({.num_vertices = 1024, .seed = 11});
  clean(e);
  const CSRGraph g = CSRGraph::from_edges(e);
  ASSERT_GT(g.num_vertices(), 500u);
  const auto ref = reference_lcc(g);
  // High clustering: mean LCC well above an ER graph of equal density.
  double mean_lcc = 0;
  for (double c : ref.lcc) mean_lcc += c;
  mean_lcc /= static_cast<double>(g.num_vertices());
  EXPECT_GT(mean_lcc, 0.15);
  // Skewed degrees (hub members exist).
  const auto stats = degree_stats(g);
  EXPECT_GT(static_cast<double>(stats.max), 4.0 * stats.mean);
}

// ------------------------------------------------------------------- IO ---

TEST(Io, TextRoundTrip) {
  auto e = generate_rmat({.scale = 6, .edge_factor = 4, .seed = 7});
  clean(e);
  const std::string path = ::testing::TempDir() + "atlc_text_edges.txt";
  save_text_edges(e, path);
  const EdgeList loaded = load_text_edges(path, Directedness::Undirected);
  // Vertex ids are compacted on load; triangle counts are invariant.
  EXPECT_EQ(reference_lcc(CSRGraph::from_edges(e)).global_triangles,
            reference_lcc(CSRGraph::from_edges(loaded)).global_triangles);
  std::remove(path.c_str());
}

TEST(Io, TextSkipsComments) {
  const std::string path = ::testing::TempDir() + "atlc_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "# comment\n%% another\n0 1\n1 2\n2 0\n");
  std::fclose(f);
  const EdgeList e = load_text_edges(path, Directedness::Undirected);
  EXPECT_EQ(e.num_vertices(), 3u);
  EXPECT_EQ(reference_lcc(CSRGraph::from_edges(e)).global_triangles, 1u);
  std::remove(path.c_str());
}

TEST(Io, BinaryRoundTripExact) {
  auto e = generate_rmat({.scale = 6, .edge_factor = 4, .seed = 8,
                          .directedness = Directedness::Directed});
  const std::string path = ::testing::TempDir() + "atlc_bin_edges.bin";
  save_binary_edges(e, path);
  const EdgeList loaded = load_binary_edges(path);
  EXPECT_EQ(loaded.num_vertices(), e.num_vertices());
  EXPECT_EQ(loaded.edges(), e.edges());
  EXPECT_EQ(loaded.directedness(), Directedness::Directed);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)load_text_edges("/nonexistent/path.txt",
                                     Directedness::Undirected),
               std::runtime_error);
  EXPECT_THROW((void)load_binary_edges("/nonexistent/path.bin"),
               std::runtime_error);
}

TEST(Io, TextToBinaryRoundTripPreservesTriangles) {
  // The --convert workflow: text load -> binary snapshot -> binary load
  // must agree with the text path on everything that matters downstream.
  auto e = generate_rmat({.scale = 6, .edge_factor = 6, .seed = 9});
  clean(e);
  const std::string text_path = ::testing::TempDir() + "atlc_rt.txt";
  const std::string bin_path = ::testing::TempDir() + "atlc_rt.bin";
  save_text_edges(e, text_path);
  const EdgeList from_text = load_edges(text_path, Directedness::Undirected);
  save_binary_edges(from_text, bin_path);
  const EdgeList from_bin = load_edges(bin_path, Directedness::Undirected);
  EXPECT_EQ(from_bin.num_vertices(), from_text.num_vertices());
  EXPECT_EQ(from_bin.edges(), from_text.edges());
  EXPECT_EQ(reference_lcc(CSRGraph::from_edges(from_bin)).global_triangles,
            reference_lcc(CSRGraph::from_edges(e)).global_triangles);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

/// Expect load_binary_edges(path) to throw with `needle` in the message.
void expect_binary_load_error(const std::string& path,
                              const std::string& needle) {
  try {
    (void)load_binary_edges(path);
    ADD_FAILURE() << "no exception for " << path << " (wanted '" << needle
                  << "')";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << "message was: " << err.what();
  }
}

class IoCorruption : public ::testing::Test {
 protected:
  /// A small valid binary edge list to corrupt.
  void SetUp() override {
    auto e = generate_rmat({.scale = 5, .edge_factor = 4, .seed = 10});
    clean(e);
    path_ = ::testing::TempDir() + "atlc_corrupt.bin";
    save_binary_edges(e, path_);
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    blob_.resize(static_cast<std::size_t>(std::ftell(f)));
    std::rewind(f);
    ASSERT_EQ(std::fread(blob_.data(), 1, blob_.size(), f), blob_.size());
    std::fclose(f);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_blob(const std::vector<unsigned char>& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty())
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::string path_;
  std::vector<unsigned char> blob_;
};

TEST_F(IoCorruption, TruncatedHeaderThrows) {
  write_blob({blob_.begin(), blob_.begin() + 10});
  expect_binary_load_error(path_, "truncated header");
}

TEST_F(IoCorruption, TruncatedPayloadThrows) {
  // Drop the last 6 bytes: the declared count no longer matches the size.
  write_blob({blob_.begin(), blob_.end() - 6});
  expect_binary_load_error(path_, "truncated or corrupt");
}

TEST_F(IoCorruption, TrailingGarbageThrows) {
  auto bytes = blob_;
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});
  write_blob(bytes);
  expect_binary_load_error(path_, "truncated or corrupt");
}

TEST_F(IoCorruption, BadMagicThrows) {
  auto bytes = blob_;
  bytes[0] ^= 0xff;
  write_blob(bytes);
  expect_binary_load_error(path_, "bad magic");
}

TEST_F(IoCorruption, UnsupportedVersionThrows) {
  auto bytes = blob_;
  bytes[4] = 0x7f;  // version word (little-endian low byte)
  write_blob(bytes);
  expect_binary_load_error(path_, "unsupported binary edge-list version");
}

TEST_F(IoCorruption, OutOfRangeEndpointThrows) {
  auto bytes = blob_;
  // First payload word (u of edge 0) -> a vertex far beyond n.
  const std::size_t payload = 4 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
  bytes[payload + 0] = 0xff;
  bytes[payload + 1] = 0xff;
  bytes[payload + 2] = 0xff;
  bytes[payload + 3] = 0xff;
  write_blob(bytes);
  expect_binary_load_error(path_, "endpoint out of range");
}

TEST(Io, LoadEdgesSniffsFormat) {
  // A text file whose first bytes are digits must go down the text path;
  // a binary file must go down the validating binary path.
  const std::string text_path = ::testing::TempDir() + "atlc_sniff.txt";
  std::FILE* f = std::fopen(text_path.c_str(), "w");
  std::fprintf(f, "0 1\n1 2\n2 0\n");
  std::fclose(f);
  const EdgeList t = load_edges(text_path, Directedness::Undirected);
  EXPECT_EQ(reference_lcc(CSRGraph::from_edges(t)).global_triangles, 1u);
  std::remove(text_path.c_str());
}

// ------------------------------------------------------------ partition ---

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, PartitionKind>> {};

TEST_P(PartitionProperty, CoversAllVerticesDisjointly) {
  const auto [n, p, kind] = GetParam();
  const Partition part(kind, static_cast<VertexId>(n),
                       static_cast<std::uint32_t>(p));
  std::vector<int> owner_count(n, 0);
  VertexId total = 0;
  for (std::uint32_t r = 0; r < part.num_ranks(); ++r) {
    total += part.part_size(r);
    for (VertexId l = 0; l < part.part_size(r); ++l) {
      const VertexId v = part.global_id(r, l);
      ASSERT_LT(v, static_cast<VertexId>(n));
      ++owner_count[v];
      EXPECT_EQ(part.owner(v), r);
      EXPECT_EQ(part.local_index(v), l);
    }
  }
  EXPECT_EQ(total, static_cast<VertexId>(n));
  for (int c : owner_count) EXPECT_EQ(c, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionProperty,
    ::testing::Combine(::testing::Values(1, 7, 64, 100, 1023),
                       ::testing::Values(1, 2, 5, 8, 16),
                       ::testing::Values(PartitionKind::Block1D,
                                         PartitionKind::Cyclic1D)));

TEST(Partition, BlockSizesDifferByAtMostOne) {
  const Partition part(PartitionKind::Block1D, 10, 4);
  VertexId mn = 10, mx = 0;
  for (std::uint32_t r = 0; r < 4; ++r) {
    mn = std::min(mn, part.part_size(r));
    mx = std::max(mx, part.part_size(r));
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(Partition, CyclicSpreadsConsecutiveVertices) {
  const Partition part(PartitionKind::Cyclic1D, 100, 4);
  EXPECT_EQ(part.owner(0), 0u);
  EXPECT_EQ(part.owner(1), 1u);
  EXPECT_EQ(part.owner(4), 0u);
}

// ------------------------------------------------- degree-balanced cuts ---

/// Owner/local/global round trip + disjoint coverage, the same property
/// PartitionProperty asserts for the closed-form kinds.
void expect_partition_consistent(const Partition& part) {
  const VertexId n = part.num_vertices();
  std::vector<int> owner_count(n, 0);
  VertexId total = 0;
  for (std::uint32_t r = 0; r < part.num_ranks(); ++r) {
    total += part.part_size(r);
    for (VertexId l = 0; l < part.part_size(r); ++l) {
      const VertexId v = part.global_id(r, l);
      ASSERT_LT(v, n);
      ++owner_count[v];
      ASSERT_EQ(part.owner(v), r) << "vertex " << v;
      ASSERT_EQ(part.local_index(v), l) << "vertex " << v;
    }
  }
  EXPECT_EQ(total, n);
  for (int c : owner_count) EXPECT_EQ(c, 1);
}

TEST(DegreeBalanced, RoundTripOnSkewedSequence) {
  // One huge hub, a mid tier, and a long light tail.
  std::vector<std::uint64_t> w = {5000, 3, 40, 1, 900, 2, 2, 60, 1, 1,
                                  700,  4, 4,  4, 4,   8, 8, 1,  1, 1};
  for (const std::uint32_t p : {1u, 2u, 3u, 5u, 8u}) {
    const Partition part = Partition::degree_balanced(w, p);
    EXPECT_EQ(part.kind(), PartitionKind::DegreeBalanced1D);
    expect_partition_consistent(part);
  }
}

TEST(DegreeBalanced, PrefixCutBoundsPerRankWeight) {
  // Greedy ceil re-quota guarantee: every rank's owned weight stays below
  // ceil(total/p) + max single weight (a rank overshoots its quota by at
  // most one vertex).
  std::vector<std::uint64_t> w;
  std::uint64_t total = 0, wmax = 0;
  for (int i = 0; i < 257; ++i) {
    const std::uint64_t d = (i % 61 == 0) ? 1000 + i : 1 + (i % 7);
    w.push_back(d);
    total += d;
    wmax = std::max(wmax, d);
  }
  for (const std::uint32_t p : {2u, 4u, 16u}) {
    const Partition part = Partition::degree_balanced(w, p);
    const std::uint64_t bound = (total + p - 1) / p + wmax;
    for (std::uint32_t r = 0; r < p; ++r) {
      std::uint64_t owned = 0;
      for (VertexId l = 0; l < part.part_size(r); ++l)
        owned += w[part.global_id(r, l)];
      EXPECT_LT(owned, bound) << "rank " << r << " of " << p;
    }
  }
}

TEST(DegreeBalanced, HeavyHubGetsItsOwnRank) {
  // The hub alone exceeds the fair share, so the greedy cut isolates it.
  std::vector<std::uint64_t> w(101, 1);
  w[0] = 1000;
  const Partition part = Partition::degree_balanced(w, 4);
  EXPECT_EQ(part.part_size(0), 1u);
  EXPECT_EQ(part.owner(0), 0u);
  expect_partition_consistent(part);
}

TEST(DegreeBalanced, MorePartsThanVertices) {
  const std::vector<std::uint64_t> w = {7, 3, 9};
  const Partition part = Partition::degree_balanced(w, 8);
  expect_partition_consistent(part);
  VertexId nonempty = 0;
  for (std::uint32_t r = 0; r < 8; ++r) nonempty += part.part_size(r) > 0;
  EXPECT_LE(nonempty, 3u);
}

TEST(DegreeBalanced, AllEqualDegreesMatchBlock1D) {
  for (const VertexId n : {1u, 7u, 10u, 64u, 100u, 1023u}) {
    for (const std::uint32_t p : {1u, 2u, 4u, 5u, 16u}) {
      for (const std::uint64_t d : {0u, 1u, 3u}) {
        const std::vector<std::uint64_t> w(n, d);
        const Partition deg = Partition::degree_balanced(w, p);
        const Partition block(PartitionKind::Block1D, n, p);
        for (std::uint32_t r = 0; r < p; ++r)
          ASSERT_EQ(deg.part_size(r), block.part_size(r))
              << "n=" << n << " p=" << p << " d=" << d << " rank " << r;
        for (VertexId v = 0; v < n; ++v) {
          ASSERT_EQ(deg.owner(v), block.owner(v)) << "vertex " << v;
          ASSERT_EQ(deg.local_index(v), block.local_index(v));
        }
      }
    }
  }
}

TEST(DegreeBalanced, VertexIdOverloadMatchesWeights) {
  const std::vector<VertexId> deg = {4, 4, 1, 9, 2, 2, 8};
  const std::vector<std::uint64_t> wide(deg.begin(), deg.end());
  const Partition a = Partition::degree_balanced(
      std::span<const VertexId>(deg), 3);
  const Partition b = Partition::degree_balanced(
      std::span<const std::uint64_t>(wide), 3);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(a.owner(v), b.owner(v));
}

TEST(DegreeBalanced, MakePartitionBalancesEdgeWork) {
  // make_partition weights each local edge by its endpoint degrees; on a
  // skewed graph the resulting per-rank work spread must beat Block1D's.
  auto e = generate_rmat({.scale = 10, .edge_factor = 8, .seed = 12});
  clean(e);
  const CSRGraph g = CSRGraph::from_edges(e);
  const Partition part = make_partition(g, PartitionKind::DegreeBalanced1D, 8);
  EXPECT_EQ(part.kind(), PartitionKind::DegreeBalanced1D);
  expect_partition_consistent(part);

  const auto work_spread = [&](const Partition& p) {
    std::uint64_t mx = 0, total = 0;
    for (std::uint32_t r = 0; r < p.num_ranks(); ++r) {
      std::uint64_t owned = 0;
      for (VertexId l = 0; l < p.part_size(r); ++l) {
        const VertexId v = p.global_id(r, l);
        for (const VertexId j : g.neighbors(v)) owned += g.degree(v) + g.degree(j);
      }
      mx = std::max(mx, owned);
      total += owned;
    }
    return static_cast<double>(mx) * static_cast<double>(p.num_ranks()) /
           static_cast<double>(total);
  };
  const Partition block(PartitionKind::Block1D, g.num_vertices(), 8);
  EXPECT_LT(work_spread(part), work_spread(block));
  EXPECT_LT(work_spread(part), 1.2);  // near-balanced in the cut's own metric
}

TEST(Partition, DegreeBalancedKindRejectedByPlainConstructor) {
  testsupport::use_threadsafe_death_tests();
  EXPECT_DEATH(Partition(PartitionKind::DegreeBalanced1D, 10, 2),
               "degree_balanced");
}

TEST(Partition, KindNames) {
  EXPECT_STREQ(partition_kind_name(PartitionKind::Block1D), "block1d");
  EXPECT_STREQ(partition_kind_name(PartitionKind::Cyclic1D), "cyclic1d");
  EXPECT_STREQ(partition_kind_name(PartitionKind::DegreeBalanced1D),
               "degree1d");
  EXPECT_STREQ(partition_kind_name(PartitionKind::Grid2D), "grid2d");
}

TEST(Partition, DegreeBalancedOwnerAtPrefixSumTies) {
  // The O(log p) upper_bound lookup must resolve vertices sitting EXACTLY
  // on a cut to the right-hand rank, including through runs of empty ranks
  // (cuts_[r] == cuts_[r+1]) that a naive lower_bound would land inside.
  {
    // All-equal weights: every cut lands exactly on a prefix-sum tie.
    const std::vector<std::uint64_t> w(8, 2);
    const Partition part = Partition::degree_balanced(w, 4);
    for (std::uint32_t r = 0; r < 4; ++r) {
      EXPECT_EQ(part.owner(2 * r), r) << "first vertex of rank " << r;
      EXPECT_EQ(part.owner(2 * r + 1), r) << "last vertex of rank " << r;
    }
  }
  {
    // A hub exceeding the total fair share empties the tail ranks; the
    // boundary vertex after the hub must skip over none of its own rank
    // and the last vertices must not land in the empty ranks.
    const std::vector<std::uint64_t> w = {100, 1, 1};
    const Partition part = Partition::degree_balanced(w, 4);
    expect_partition_consistent(part);
    EXPECT_EQ(part.owner(0), 0u);
    EXPECT_EQ(part.owner(1), part.owner(1));  // resolves without aborting
    for (std::uint32_t r = 0; r < 4; ++r)
      for (VertexId l = 0; l < part.part_size(r); ++l)
        EXPECT_EQ(part.owner(part.global_id(r, l)), r);
  }
  {
    // Zero-weight run straddling a cut: the tie vertex belongs to the rank
    // whose range STARTS there (upper_bound semantics).
    const std::vector<std::uint64_t> w = {1, 0, 0, 1};
    const Partition part = Partition::degree_balanced(w, 2);
    expect_partition_consistent(part);
    EXPECT_EQ(part.owner(0), 0u);
    EXPECT_EQ(part.owner(3), 1u);
  }
}

// ---------------------------------------------------------------- grid2d ---

TEST(Grid2D, ShapeIsLargestDivisorBelowSqrt) {
  const std::pair<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
      expected[] = {{1, {1, 1}}, {2, {1, 2}},  {4, {2, 2}},  {6, {2, 3}},
                    {7, {1, 7}}, {8, {2, 4}},  {12, {3, 4}}, {16, {4, 4}},
                    {18, {3, 6}}, {64, {8, 8}}};
  for (const auto& [p, shape] : expected) {
    const Partition part(PartitionKind::Grid2D, 100, p);
    EXPECT_EQ(part.grid_rows(), shape.first) << "p=" << p;
    EXPECT_EQ(part.grid_cols(), shape.second) << "p=" << p;
    EXPECT_EQ(part.grid_rows() * part.grid_cols(), p);
    EXPECT_EQ(part.col_blocks(), part.grid_cols());
  }
}

/// Grid2D invariants (the 2D analogue of expect_partition_consistent, which
/// cannot apply: every rank of a grid row reports the row block's size, so
/// Σ part_size = pc * n by design).
void expect_grid_consistent(const Partition& part) {
  const VertexId n = part.num_vertices();
  const std::uint32_t pr = part.grid_rows();
  const std::uint32_t pc = part.grid_cols();
  ASSERT_EQ(pr * pc, part.num_ranks());

  // Column blocks tile [0, n) contiguously and col_block_of inverts them.
  VertexId covered = 0;
  for (std::uint32_t b = 0; b < part.col_blocks(); ++b) {
    const auto [lo, hi] = part.col_block_range(b);
    ASSERT_EQ(lo, covered);
    ASSERT_LE(hi, n);
    for (VertexId v = lo; v < hi; ++v)
      ASSERT_EQ(part.col_block_of(v), b) << "vertex " << v;
    covered = hi;
  }
  ASSERT_EQ(covered, n);

  for (VertexId v = 0; v < n; ++v) {
    // The home rank is the (row block, column block) diagonal cell, and the
    // owner/local/global round trip holds through it.
    const std::uint32_t home = part.owner(v);
    ASSERT_EQ(part.grid_col(home), part.col_block_of(v));
    ASSERT_EQ(part.global_id(home, part.local_index(v)), v);
    // Every segment of v's row lives in v's grid row, one rank per column.
    for (std::uint32_t b = 0; b < part.col_blocks(); ++b) {
      const std::uint32_t so = part.segment_owner(v, b);
      ASSERT_EQ(part.grid_row(so), part.grid_row(home));
      ASSERT_EQ(part.grid_col(so), b);
      // All ranks of the grid row agree on v's slot.
      ASSERT_EQ(part.global_id(so, part.local_index(v)), v);
    }
  }

  // Ranks of one grid row report identical sizes; rows tile [0, n).
  VertexId row_total = 0;
  for (std::uint32_t r = 0; r < pr; ++r) {
    const VertexId sz = part.part_size(r * pc);
    for (std::uint32_t c = 1; c < pc; ++c)
      ASSERT_EQ(part.part_size(r * pc + c), sz);
    ASSERT_EQ(part.block_begin(r * pc), row_total);
    row_total += sz;
  }
  ASSERT_EQ(row_total, n);
}

TEST(Grid2D, PartitionConsistentAcrossShapes) {
  for (const VertexId n : {1u, 6u, 7u, 64u, 100u, 1023u})
    for (const std::uint32_t p : {1u, 2u, 4u, 6u, 7u, 8u, 12u, 16u}) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " p=" << p);
      expect_grid_consistent(Partition(PartitionKind::Grid2D, n, p));
    }
}

TEST(Grid2D, EdgeOwnersTileTheAdjacencyMatrix) {
  // Every (u, v) pair belongs to exactly one rank: the (row block of u,
  // column block of v) grid cell — the edge-block ownership that lets each
  // rank store only its segment of every local row.
  const Partition part(PartitionKind::Grid2D, 20, 6);  // 2x3 grid
  for (VertexId u = 0; u < 20; ++u)
    for (VertexId v = 0; v < 20; ++v) {
      const std::uint32_t r = part.edge_owner(u, v);
      EXPECT_EQ(part.grid_row(r), part.grid_row(part.owner(u)));
      EXPECT_EQ(part.grid_col(r), part.col_block_of(v));
    }
}

// ------------------------------------------------ degenerate shapes (all) ---

TEST(Partition, DegenerateShapesAllKinds) {
  const auto check = [](const CSRGraph& g, std::uint32_t p) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << g.num_vertices() << " p=" << p);
    for (const PartitionKind kind :
         {PartitionKind::Block1D, PartitionKind::Cyclic1D,
          PartitionKind::DegreeBalanced1D, PartitionKind::Grid2D}) {
      SCOPED_TRACE(partition_kind_name(kind));
      const Partition part = make_partition(g, kind, p);
      EXPECT_EQ(part.kind(), kind);
      EXPECT_EQ(part.num_vertices(), g.num_vertices());
      if (kind == PartitionKind::Grid2D)
        expect_grid_consistent(part);
      else
        expect_partition_consistent(part);
    }
  };

  // Empty graph: no vertices at all; every rank must come out empty.
  check(CSRGraph::from_edges(EdgeList(0, {}, Directedness::Undirected)), 4);
  // Fewer vertices than ranks (and than grid columns).
  check(CSRGraph::from_edges(EdgeList(3, {}, Directedness::Undirected)), 8);
  // Rank counts that are not perfect squares (rectangular + prime grids).
  {
    auto e = generate_rmat({.scale = 6, .edge_factor = 4, .seed = 5});
    clean(e);
    const CSRGraph g = CSRGraph::from_edges(e);
    for (const std::uint32_t p : {2u, 6u, 7u, 12u}) check(g, p);
  }
  // Single-vertex star: one hub owns every edge endpoint.
  {
    EdgeList e(9, {}, Directedness::Undirected);
    for (VertexId leaf = 1; leaf < 9; ++leaf) e.add_edge(0, leaf);
    e.symmetrize();
    check(CSRGraph::from_edges(e), 4);
  }
  // Full clique: perfectly uniform degrees.
  check(CSRGraph::from_edges(testsupport::complete_edges(8)), 4);
}

// ------------------------------------------------------------ hub replica ---

TEST(HubReplica, SelectsTopDegreeDeterministically) {
  auto e = generate_rmat({.scale = 9, .edge_factor = 8, .seed = 13});
  clean(e);
  const CSRGraph g = CSRGraph::from_edges(e);
  const HubReplica h = HubReplica::build(g, 0.02);
  const auto expected = static_cast<std::size_t>(
      std::ceil(0.02 * static_cast<double>(g.num_vertices())));
  ASSERT_EQ(h.num_hubs(), expected);
  // The pick is exactly the top-k of the (degree desc, id asc) order, and
  // every replicated row mirrors the CSR verbatim.
  const auto order = vertices_by_degree_desc(g);
  std::set<VertexId> want(order.begin(),
                          order.begin() + static_cast<long>(expected));
  for (const VertexId v : h.hub_ids()) {
    EXPECT_TRUE(want.contains(v)) << "vertex " << v;
    const auto row = h.neighbors_at(h.find(v));
    const auto ref = g.neighbors(v);
    ASSERT_EQ(row.size(), ref.size());
    for (std::size_t i = 0; i < row.size(); ++i) ASSERT_EQ(row[i], ref[i]);
  }
  EXPECT_EQ(h.find(order.back()), HubReplica::npos);  // lightest vertex
}

TEST(HubReplica, ZeroFractionIsEmptyAndFree) {
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  const HubReplica h = HubReplica::build(g, 0.0);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.replica_bytes(), 0u);
  EXPECT_FALSE(h.contains(0));
}

TEST(HubReplica, TinyGraphPositiveFractionReplicatesAtLeastOne) {
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  const HubReplica h = HubReplica::build(g, 0.001);  // ceil(0.001 * 6) = 1
  EXPECT_EQ(h.num_hubs(), 1u);
}

TEST(HubReplica, ApplyMaintainsSortedRows) {
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  HubReplica h = HubReplica::build(g, 1.0);  // replicate everything
  ASSERT_TRUE(h.contains(2));
  const auto before = h.neighbors_at(h.find(2)).size();
  EXPECT_GT(h.apply(2, 5, true), 0u);   // insert edge (2,5)
  EXPECT_GT(h.apply(5, 2, true), 0u);
  const std::uint64_t bytes = h.apply(2, 0, false);  // delete (2,0)
  EXPECT_EQ(bytes, h.neighbors_at(h.find(2)).size() * sizeof(VertexId));
  const auto row = h.neighbors_at(h.find(2));
  EXPECT_EQ(row.size(), before);  // +1 insert, -1 delete
  EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  EXPECT_TRUE(std::binary_search(row.begin(), row.end(), 5u));
  EXPECT_FALSE(std::binary_search(row.begin(), row.end(), 0u));
  // Non-hub endpoints are a priced-at-zero no-op.
  HubReplica none = HubReplica::build(g, 0.0);
  EXPECT_EQ(none.apply(2, 5, true), 0u);
}

// ----------------------------------------------------------- references ---

TEST(Reference, PaperExampleTriangles) {
  // Fig. 1 graph: triangles {0,1,2}, {2,3,4}, {3,4,5}.
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  const LccResult r = reference_lcc(g);
  EXPECT_EQ(r.global_triangles, 3u);
  // Vertex 2 (degree 4) participates in 2 triangles:
  // t = 2*tri = 4; LCC = 4 / (4*3) = 1/3.
  EXPECT_DOUBLE_EQ(r.lcc[2], 1.0 / 3.0);
  // Vertex 0 (degree 2) in 1 triangle: LCC = 2/(2*1) = 1.
  EXPECT_DOUBLE_EQ(r.lcc[0], 1.0);
}

TEST(Reference, CompleteGraphLccIsOne) {
  const CSRGraph g = CSRGraph::from_edges(complete(6));
  const LccResult r = reference_lcc(g);
  EXPECT_EQ(r.global_triangles, 20u);  // C(6,3)
  for (double c : r.lcc) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Reference, TriangleFreeGraphScoresZero) {
  // Star graph: no triangles.
  EdgeList e(5, {}, Directedness::Undirected);
  for (VertexId v = 1; v < 5; ++v) {
    e.add_edge(0, v);
    e.add_edge(v, 0);
  }
  const LccResult r = reference_lcc(CSRGraph::from_edges(e));
  EXPECT_EQ(r.global_triangles, 0u);
  for (double c : r.lcc) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Reference, NaiveAgreesOnRandomGraphs) {
  for (std::uint64_t seed : {1, 2, 3}) {
    auto e = generate_rmat({.scale = 7, .edge_factor = 6, .seed = seed});
    clean(e);
    const CSRGraph g = CSRGraph::from_edges(e);
    const LccResult fast = reference_lcc(g);
    const LccResult naive = naive_lcc(g);
    EXPECT_EQ(fast.global_triangles, naive.global_triangles);
    EXPECT_EQ(fast.triangles, naive.triangles);
  }
}

TEST(Reference, DirectedTransitiveTriad) {
  // 0->1, 0->2, 1->2: one transitive triad with apex 0.
  EdgeList e(3, {{0, 1}, {0, 2}, {1, 2}}, Directedness::Directed);
  const CSRGraph g = CSRGraph::from_edges(e);
  const LccResult r = reference_lcc(g);
  EXPECT_EQ(r.global_triangles, 1u);
  // Apex 0: deg+ = 2, t = 1, LCC = 1/(2*1) = 0.5 (paper Eq. 1).
  EXPECT_DOUBLE_EQ(r.lcc[0], 0.5);
  EXPECT_DOUBLE_EQ(r.lcc[1], 0.0);
}

TEST(Reference, DirectedCycleHasNoTransitiveTriad) {
  EdgeList e(3, {{0, 1}, {1, 2}, {2, 0}}, Directedness::Directed);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_EQ(reference_lcc(g).global_triangles, 0u);
}

TEST(LccScore, DegreeBelowTwoIsZero) {
  EXPECT_DOUBLE_EQ(lcc_score(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(lcc_score(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(lcc_score(2, 2), 1.0);
}

// ---------------------------------------------------------- degree stats ---

TEST(DegreeStats, UniformVsPowerLawGini) {
  const CSRGraph k = CSRGraph::from_edges(complete(8));
  const auto s = degree_stats(k);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);  // all degrees equal
  EXPECT_EQ(s.min, 7u);
  EXPECT_EQ(s.max, 7u);
}

TEST(DegreeStats, TopDegreeShareConcentratesOnHubs) {
  auto e = generate_rmat({.scale = 10, .edge_factor = 8, .seed = 4});
  clean(e);
  const CSRGraph g = CSRGraph::from_edges(e);
  // Weight each vertex by its degree: the top-10% must hold well over 10%.
  std::vector<std::uint64_t> w(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) w[v] = g.degree(v);
  EXPECT_GT(top_degree_share(g, w, 0.10), 0.3);
}

TEST(DegreeStats, ReciprocityOfUndirectedIsOne) {
  const CSRGraph g = CSRGraph::from_edges(paper_example());
  EXPECT_DOUBLE_EQ(reciprocity(g), 1.0);
}

TEST(DegreeStats, ReciprocityDirected) {
  EdgeList e(3, {{0, 1}, {1, 0}, {1, 2}}, Directedness::Directed);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_NEAR(reciprocity(g), 2.0 / 3.0, 1e-12);
}

TEST(DegreeStats, VerticesByDegreeDescSorted) {
  auto e = generate_rmat({.scale = 8, .edge_factor = 4, .seed = 6});
  clean(e);
  const CSRGraph g = CSRGraph::from_edges(e);
  const auto order = vertices_by_degree_desc(g);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(g.degree(order[i - 1]), g.degree(order[i]));
}

// ----------------------------------------------------------------- DODG ---

/// Star hub 0 with leaves 1..8 plus the triangle {1,2,3}: the hub has the
/// highest degree, so every one of its edges orients toward it and its
/// DODG out-degree is zero (a sink row the engine must stream past).
CSRGraph sink_fixture() {
  EdgeList e(9, {}, Directedness::Undirected);
  for (VertexId v = 1; v < 9; ++v) e.add_edge(0, v);
  e.add_edge(1, 2);
  e.add_edge(2, 3);
  e.add_edge(1, 3);
  e.symmetrize();
  return CSRGraph::from_edges(e);
}

TEST(Dodg, PrecedesOrdersByDegreeThenId) {
  EXPECT_TRUE(dodg_precedes(2, 5, 3, 1));   // lower degree wins
  EXPECT_FALSE(dodg_precedes(3, 1, 2, 5));
  EXPECT_TRUE(dodg_precedes(3, 1, 3, 2));   // tie broken by id
  EXPECT_FALSE(dodg_precedes(3, 2, 3, 1));
  EXPECT_FALSE(dodg_precedes(3, 1, 3, 1));  // irreflexive
}

TEST(Dodg, OrientationHalvesEdgesAndKeepsRowsSorted) {
  for (const CSRGraph& g :
       {CSRGraph::from_edges(paper_example()), testsupport::rmat_graph(8, 8, 17),
        sink_fixture()}) {
    const CSRGraph d = orient_dodg(g);
    EXPECT_EQ(d.directedness(), Directedness::Directed);
    EXPECT_EQ(d.num_vertices(), g.num_vertices());
    EXPECT_EQ(d.num_edges(), g.num_edges() / 2);  // one arc per edge
    EXPECT_TRUE(d.adjacency_sorted_unique());
  }
}

TEST(Dodg, OrientationIsAcyclic) {
  // Every arc strictly ascends the total (degree, id) order of the source
  // graph, so no directed cycle can exist.
  for (const CSRGraph& g :
       {CSRGraph::from_edges(paper_example()), testsupport::rmat_graph(8, 8, 18),
        sink_fixture()}) {
    const CSRGraph d = orient_dodg(g);
    for (VertexId u = 0; u < d.num_vertices(); ++u)
      for (const VertexId v : d.neighbors(u))
        ASSERT_TRUE(dodg_precedes(g.degree(u), u, g.degree(v), v))
            << "arc " << u << "->" << v;
  }
}

TEST(Dodg, OutDegreesBoundedBySqrtM) {
  // outdeg(v) <= min(deg(v), 2m/deg(v)) <= sqrt(2m); with m counted in
  // stored arcs (both directions) the bound reads sqrt(num_edges()).
  const CSRGraph g = testsupport::rmat_graph(10, 16, 19);
  const CSRGraph d = orient_dodg(g);
  const auto bound = static_cast<VertexId>(
      std::ceil(std::sqrt(static_cast<double>(g.num_edges()))));
  EXPECT_LE(degree_stats(d).max, bound);
  // The bound actually bites on a skewed graph: the undirected hub rows
  // are far above it.
  EXPECT_GT(degree_stats(g).max, bound);
}

TEST(Dodg, SinkFixtureHubHasZeroOutDegree) {
  const CSRGraph g = sink_fixture();
  const CSRGraph d = orient_dodg(g);
  EXPECT_EQ(d.degree(0), 0u);
  // {1,2,3} plus the three triangles each triangle edge closes via the hub.
  EXPECT_EQ(reference_lcc(g).global_triangles, 4u);
}

TEST(Dodg, TcMatchesUndirectedReferenceAcrossRanks) {
  const CSRGraph fixtures[] = {CSRGraph::from_edges(paper_example()),
                               testsupport::rmat_graph(7, 8, 20),
                               sink_fixture()};
  for (const CSRGraph& g : fixtures) {
    const auto expected = reference_lcc(g).global_triangles;
    for (const std::uint32_t ranks : {1u, 2u, 4u, 8u}) {
      core::EngineConfig dodg_cfg;
      dodg_cfg.orient_dodg = true;
      EXPECT_EQ(core::run_distributed_tc(g, ranks, dodg_cfg), expected)
          << "ranks " << ranks;
      // The tiered kernels must agree on the same oriented stream.
      core::EngineConfig tiered_cfg = dodg_cfg;
      tiered_cfg.intersect_tier = intersect::Tier::Tiered;
      EXPECT_EQ(core::run_distributed_tc(g, ranks, tiered_cfg), expected)
          << "ranks " << ranks << " (tiered)";
    }
  }
}

TEST(Dodg, RequiresUndirectedInput) {
  testsupport::use_threadsafe_death_tests();
  EdgeList e(3, {{0, 1}, {1, 2}}, Directedness::Directed);
  const CSRGraph g = CSRGraph::from_edges(e);
  EXPECT_DEATH((void)orient_dodg(g), "undirected");
}

}  // namespace
}  // namespace atlc::graph
