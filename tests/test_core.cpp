// Integration tests for the asynchronous distributed LCC/TC engine
// (paper Algorithm 3): correctness against the single-node reference across
// rank counts, caching modes, partitionings, and pipelines.
#include <gtest/gtest.h>

#include <vector>

#include "atlc/core/dist_graph.hpp"
#include "atlc/core/fetcher.hpp"
#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/reference.hpp"
#include "test_support.hpp"

namespace atlc::core {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;
using testsupport::expect_matches_reference;
using testsupport::paper_example;
using testsupport::rmat_graph;

// ------------------------------------------------------------ dist graph ---

TEST(DistGraph, PartitionsCoverGlobalCsr) {
  const CSRGraph g = rmat_graph(8, 8, 1);
  const graph::Partition part(graph::PartitionKind::Block1D, g.num_vertices(),
                              4);
  rma::Runtime::Options o;
  o.ranks = 4;
  std::atomic<std::uint64_t> total_edges{0};
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    const DistGraph dg = build_dist_graph(ctx, g, part);
    EXPECT_EQ(dg.num_local(), part.part_size(ctx.rank()));
    total_edges += dg.adjacencies.size();
    // Local slices replicate the global adjacency lists verbatim.
    for (VertexId lv = 0; lv < dg.num_local(); ++lv) {
      const VertexId v = part.global_id(ctx.rank(), lv);
      const auto local = dg.local_neighbors(lv);
      const auto global = g.neighbors(v);
      ASSERT_EQ(local.size(), global.size());
      for (std::size_t i = 0; i < local.size(); ++i)
        ASSERT_EQ(local[i], global[i]);
    }
  });
  EXPECT_EQ(total_edges.load(), g.num_edges());
}

TEST(DistGraph, RemoteOffsetProtocolReadsCorrectAdjacency) {
  const CSRGraph g = rmat_graph(7, 8, 2);
  const graph::Partition part(graph::PartitionKind::Block1D, g.num_vertices(),
                              3);
  rma::Runtime::Options o;
  o.ranks = 3;
  rma::Runtime::run(o, [&](rma::RankCtx& ctx) {
    const DistGraph dg = build_dist_graph(ctx, g, part);
    // Every rank reads ALL vertices via the two-get protocol and compares
    // with the shared global CSR.
    EngineConfig cfg;
    AdjacencyFetcher fetcher(ctx, dg, cfg);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto got = fetcher.finish(fetcher.begin(v));
      const auto want = g.neighbors(v);
      ASSERT_EQ(got.size(), want.size()) << "vertex " << v;
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << "vertex " << v << " slot " << i;
    }
    ctx.barrier();  // windows expose dg's vectors; free collectively
  });
}

// ----------------------------------------------------------- correctness ---

class LccAcrossRanks : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LccAcrossRanks, MatchesReferenceOnPaperExample) {
  const CSRGraph g = paper_example();
  expect_matches_reference(g, run_distributed_lcc(g, GetParam()));
}

TEST_P(LccAcrossRanks, MatchesReferenceOnRmat) {
  const CSRGraph g = rmat_graph(9, 8, 3);
  expect_matches_reference(g, run_distributed_lcc(g, GetParam()));
}

TEST_P(LccAcrossRanks, MatchesReferenceOnDirectedRmat) {
  const CSRGraph g = rmat_graph(8, 8, 4, Directedness::Directed);
  expect_matches_reference(g, run_distributed_lcc(g, GetParam()));
}

TEST_P(LccAcrossRanks, MatchesReferenceWithCaching) {
  const CSRGraph g = rmat_graph(9, 8, 5);
  EngineConfig cfg;
  cfg.use_cache = true;
  cfg.cache_sizing = CacheSizing::paper_default(g.num_vertices(), 1 << 20);
  expect_matches_reference(g, run_distributed_lcc(g, GetParam(), cfg));
}

TEST_P(LccAcrossRanks, MatchesReferenceWithUserScores) {
  const CSRGraph g = rmat_graph(9, 8, 6);
  EngineConfig cfg;
  cfg.use_cache = true;
  cfg.victim_policy = clampi::VictimPolicy::UserScore;
  cfg.cache_sizing = CacheSizing::paper_default(g.num_vertices(), 1 << 18);
  expect_matches_reference(g, run_distributed_lcc(g, GetParam(), cfg));
}

TEST_P(LccAcrossRanks, MatchesReferenceWithCyclicPartition) {
  const CSRGraph g = rmat_graph(8, 8, 7);
  expect_matches_reference(
      g, run_distributed_lcc(g, GetParam(), {}, {},
                             graph::PartitionKind::Cyclic1D));
}

TEST_P(LccAcrossRanks, MatchesReferenceWithDegreeBalancedPartition) {
  const CSRGraph g = rmat_graph(8, 8, 7);
  expect_matches_reference(
      g, run_distributed_lcc(g, GetParam(), {}, {},
                             graph::PartitionKind::DegreeBalanced1D));
}

TEST_P(LccAcrossRanks, MatchesReferenceWithHubReplication) {
  const CSRGraph g = rmat_graph(9, 8, 9);
  EngineConfig cfg;
  cfg.hub_fraction = 0.02;
  expect_matches_reference(g, run_distributed_lcc(g, GetParam(), cfg));
}

TEST_P(LccAcrossRanks, MatchesReferenceWithHubsCacheAndDegreePartition) {
  // The full skew-aware stack at once: degree-balanced cuts, replicated
  // hubs, CLaMPI caches, degree victim scores.
  const CSRGraph g = rmat_graph(9, 8, 11);
  EngineConfig cfg;
  cfg.hub_fraction = 0.05;
  cfg.use_cache = true;
  cfg.victim_policy = clampi::VictimPolicy::UserScore;
  cfg.cache_sizing = CacheSizing::paper_default(g.num_vertices(), 1 << 18);
  expect_matches_reference(
      g, run_distributed_lcc(g, GetParam(), cfg, {},
                             graph::PartitionKind::DegreeBalanced1D));
}

INSTANTIATE_TEST_SUITE_P(Ranks, LccAcrossRanks,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Lcc, HubReplicationTradesRemoteGetsForLocalHits) {
  const CSRGraph g = rmat_graph(9, 8, 10);
  EngineConfig plain, hubbed;
  hubbed.hub_fraction = 0.01;
  const auto a = run_distributed_lcc(g, 4, plain);
  const auto b = run_distributed_lcc(g, 4, hubbed);
  // Same answers; replication is a pure traffic optimisation.
  EXPECT_EQ(a.triangles, b.triangles);
  EXPECT_EQ(a.global_triangles, b.global_triangles);
  // δ=0 runs never touch the hub path; δ>0 serves hub rows locally and
  // nets fewer remote gets even counting the build-time replication.
  EXPECT_EQ(a.run.total().hub_local_hits, 0u);
  EXPECT_GT(b.run.total().hub_local_hits, 0u);
  EXPECT_LT(b.run.total().remote_gets, a.run.total().remote_gets);
  // Virtual time stays deterministic with hubs enabled.
  const auto b2 = run_distributed_lcc(g, 4, hubbed);
  EXPECT_DOUBLE_EQ(b.run.makespan, b2.run.makespan);
  EXPECT_EQ(b.run.total().hub_local_hits, b2.run.total().hub_local_hits);
}

TEST(Lcc, TinyCacheStillCorrect) {
  // A cache under severe eviction pressure must never corrupt results.
  const CSRGraph g = rmat_graph(9, 8, 8);
  EngineConfig cfg;
  cfg.use_cache = true;
  cfg.cache_sizing.offsets_bytes = 256;
  cfg.cache_sizing.adj_bytes = 512;
  expect_matches_reference(g, run_distributed_lcc(g, 4, cfg));
}

TEST(Lcc, NoDoubleBufferSameResult) {
  const CSRGraph g = rmat_graph(8, 8, 9);
  EngineConfig cfg;
  cfg.double_buffer = false;
  expect_matches_reference(g, run_distributed_lcc(g, 4, cfg));
}

TEST(Lcc, AllIntersectionMethodsAgree) {
  const CSRGraph g = rmat_graph(8, 8, 10);
  for (auto m : {intersect::Method::Binary, intersect::Method::SSI,
                 intersect::Method::Hybrid}) {
    EngineConfig cfg;
    cfg.method = m;
    expect_matches_reference(g, run_distributed_lcc(g, 2, cfg));
  }
}

TEST(Lcc, CirclesGraphAllModes) {
  auto e = graph::generate_circles({.num_vertices = 512, .seed = 3});
  graph::clean(e);
  const CSRGraph g = CSRGraph::from_edges(e);
  for (bool cache : {false, true}) {
    EngineConfig cfg;
    cfg.use_cache = cache;
    expect_matches_reference(g, run_distributed_lcc(g, 4, cfg));
  }
}

TEST(Lcc, RejectsUpperTriangleConfig) {
  testsupport::use_threadsafe_death_tests();
  const CSRGraph g = paper_example();
  EngineConfig cfg;
  cfg.upper_triangle_only = true;
  EXPECT_DEATH((void)run_distributed_lcc(g, 2, cfg), "upper");
}

// ------------------------------------------------------------- global TC ---

TEST(Tc, UpperTriangleGlobalCountMatches) {
  for (std::uint64_t seed : {11, 12, 13}) {
    const CSRGraph g = rmat_graph(8, 8, seed);
    const auto ref = graph::reference_lcc(g);
    EXPECT_EQ(run_distributed_tc(g, 4), ref.global_triangles) << seed;
  }
}

TEST(Tc, DirectedTransitiveTriads) {
  const CSRGraph g = rmat_graph(7, 8, 14, Directedness::Directed);
  const auto ref = graph::reference_lcc(g);
  EXPECT_EQ(run_distributed_tc(g, 3), ref.global_triangles);
}

// -------------------------------------------------------- paper behaviour ---

TEST(Behaviour, RemoteEdgeFractionGrowsWithRanks) {
  const CSRGraph g = rmat_graph(10, 8, 15);
  const auto r2 = run_distributed_lcc(g, 2);
  const auto r8 = run_distributed_lcc(g, 8);
  // Section IV-D2: more partitions => more cross-partition edges.
  EXPECT_GT(r8.remote_edge_fraction(), r2.remote_edge_fraction());
  EXPECT_GT(r2.remote_edge_fraction(), 0.0);
}

TEST(Behaviour, CachingReducesCommTimeOnSkewedGraph) {
  const CSRGraph g = rmat_graph(10, 16, 16);
  EngineConfig cached;
  cached.use_cache = true;
  cached.cache_sizing = CacheSizing::paper_default(
      g.num_vertices(), g.csr_bytes());  // generous cache
  const auto plain = run_distributed_lcc(g, 4);
  const auto with_cache = run_distributed_lcc(g, 4, cached);
  const auto comm = [](const RunResult& r) {
    double total = 0;
    for (const auto& s : r.run.stats) total += s.comm_seconds;
    return total;
  };
  EXPECT_LT(comm(with_cache), comm(plain));
  EXPECT_GT(with_cache.adj_cache_total.hits, 0u);
}

TEST(Behaviour, CacheHitsReduceRemoteGets) {
  const CSRGraph g = rmat_graph(9, 16, 17);
  EngineConfig cached;
  cached.use_cache = true;
  cached.cache_sizing = CacheSizing::paper_default(g.num_vertices(),
                                                   g.csr_bytes());
  const auto plain = run_distributed_lcc(g, 4);
  const auto with_cache = run_distributed_lcc(g, 4, cached);
  EXPECT_LT(with_cache.run.total().remote_gets,
            plain.run.total().remote_gets);
}

TEST(Behaviour, TrackedRemoteReadsSumToRemoteEdges) {
  const CSRGraph g = rmat_graph(8, 8, 18);
  EngineConfig cfg;
  cfg.track_remote_reads = true;
  const auto r = run_distributed_lcc(g, 4, cfg);
  std::uint64_t sum = 0;
  for (auto c : r.remote_reads) sum += c;
  EXPECT_EQ(sum, r.remote_edges);
  EXPECT_GT(sum, 0u);
}

TEST(Behaviour, DoubleBufferNeverSlower) {
  const CSRGraph g = rmat_graph(9, 16, 19);
  EngineConfig over, none;
  over.double_buffer = true;
  none.double_buffer = false;
  const double t_over = run_distributed_lcc(g, 4, over).run.makespan;
  const double t_none = run_distributed_lcc(g, 4, none).run.makespan;
  EXPECT_LE(t_over, t_none + 1e-12);
}

TEST(Behaviour, DeterministicVirtualTime) {
  const CSRGraph g = rmat_graph(8, 8, 20);
  const double a = run_distributed_lcc(g, 4).run.makespan;
  const double b = run_distributed_lcc(g, 4).run.makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Behaviour, CacheSizingPaperRule) {
  const auto s = CacheSizing::paper_default(1000, 1 << 20);
  // 0.4*|V| (start,end) entries of 16 B each.
  EXPECT_EQ(s.offsets_bytes, 400u * 16u);
  EXPECT_EQ(s.adj_bytes, (1u << 20) - 400u * 16u);
  // Budget smaller than the offsets demand: split the budget instead.
  const auto tight = CacheSizing::paper_default(1u << 20, 1 << 10);
  EXPECT_LE(tight.offsets_bytes + tight.adj_bytes, (1u << 10) + 1024u);
}

}  // namespace
}  // namespace atlc::core
