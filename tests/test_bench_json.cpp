// The bench-harness JSON stack: Json dump/parse round trips, escaping,
// BenchRecorder document structure (per-trial records, summaries,
// determinism verdicts), and the bench_compare regression gate.
#include <gtest/gtest.h>

#include "atlc/util/bench_compare.hpp"
#include "atlc/util/json.hpp"
#include "atlc/util/recorder.hpp"
#include "atlc/util/table.hpp"

namespace {

using atlc::util::BenchRecorder;
using atlc::util::CompareOptions;
using atlc::util::Json;
using atlc::util::compare_bench_runs;

TEST(Json, ScalarRoundTrip) {
  for (const char* text :
       {"null", "true", "false", "0", "-3", "12.5", "\"hi\"", "[]", "{}"}) {
    std::string error;
    auto parsed = Json::parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << text << ": " << error;
    EXPECT_EQ(parsed->dump(0), text);
  }
}

TEST(Json, NestedRoundTripPreservesStructureAndOrder) {
  Json doc = Json::object();
  doc["zeta"] = 1;            // insertion order, not alphabetical
  doc["alpha"] = Json::array();
  doc["alpha"].push_back(Json(1.5));
  doc["alpha"].push_back(Json("two"));
  Json inner = Json::object();
  inner["deep"] = true;
  doc["alpha"].push_back(std::move(inner));
  doc["empty_arr"] = Json::array();
  doc["empty_obj"] = Json::object();

  for (int indent : {0, 2}) {
    auto parsed = Json::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->dump(0), doc.dump(0));
  }
  // First key stays first: emitted files diff cleanly.
  EXPECT_EQ(doc.items().front().first, "zeta");
}

TEST(Json, StringEscaping) {
  const std::string nasty = "quote\" slash\\ tab\t nl\n cr\r ctrl\x01 end";
  Json doc = Json::object();
  doc[nasty] = nasty;
  auto parsed = Json::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->find(nasty), nullptr);
  EXPECT_EQ(parsed->find(nasty)->as_string(), nasty);
  // The wire form never carries a raw control character.
  for (char c : doc.dump(0))
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\0') << int(c);
}

TEST(Json, UnicodeEscapes) {
  auto parsed = Json::parse("\"a\\u00e9b\\ud83d\\ude00c\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\xc3\xa9"
                                 "b\xf0\x9f\x98\x80"
                                 "c");
  EXPECT_FALSE(Json::parse("\"\\ud83d\"").has_value());  // lone surrogate
}

TEST(Json, ParseErrors) {
  std::string error;
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "01x", "\"unterminated",
                          "nul", "[1] trailing"}) {
    error.clear();
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, LargeIntegersStayIntegral) {
  Json j = Json(std::uint64_t{123456789012});
  EXPECT_EQ(j.dump(0), "123456789012");
}

BenchRecorder make_recorder(double trial1, double trial2, bool gate = true) {
  BenchRecorder rec("fig_test", "Fig. T", "unit-test scenario");
  rec.meta()["seed"] = 0;
  rec.declare_metric("makespan/x", {.unit = "s", .gate = gate});
  Json detail = Json::object();
  detail["comm"] = atlc::util::to_json(atlc::rma::CommStats{});
  detail["adj_cache"] = atlc::util::to_json(atlc::clampi::CacheStats{});
  rec.add_trial("makespan/x", trial1, std::move(detail));
  rec.add_trial("makespan/x", trial2);
  return rec;
}

TEST(BenchRecorder, EmitsSchemaWithTrialsSummariesAndDeterminism) {
  auto rec = make_recorder(2.0, 2.0);
  atlc::util::Table t({"a", "b"});
  t.add_row({"1", "2"});
  rec.add_table("demo", t);
  rec.add_note("a note");

  std::string error;
  auto doc = Json::parse(rec.finalize().dump(2), &error);
  ASSERT_TRUE(doc.has_value()) << error;

  EXPECT_EQ(doc->find("schema_version")->as_number(),
            BenchRecorder::kSchemaVersion);
  EXPECT_EQ(doc->find("scenario")->as_string(), "fig_test");
  const Json* metric = doc->find("metrics")->find("makespan/x");
  ASSERT_NE(metric, nullptr);
  EXPECT_TRUE(metric->find("gate")->as_bool());
  ASSERT_EQ(metric->find("trials")->size(), 2u);
  const Json& trial = metric->find("trials")->at(0);
  EXPECT_EQ(trial.find("value")->as_number(), 2.0);
  // Per-trial CommStats and CacheStats payloads survive the round trip.
  ASSERT_NE(trial.find("comm"), nullptr);
  EXPECT_EQ(trial.find("comm")->find("remote_gets")->as_number(), 0.0);
  ASSERT_NE(trial.find("adj_cache"), nullptr);
  EXPECT_EQ(trial.find("adj_cache")->find("hits")->as_number(), 0.0);
  EXPECT_EQ(metric->find("median")->as_number(), 2.0);
  EXPECT_EQ(metric->find("summary")->find("n")->as_number(), 2.0);
  EXPECT_TRUE(metric->find("deterministic")->as_bool());
  EXPECT_EQ(doc->find("tables")->at(0).find("title")->as_string(), "demo");
  EXPECT_EQ(doc->find("notes")->at(0).as_string(), "a note");
}

TEST(BenchRecorder, FlagsNonDeterministicTrials) {
  auto rec = make_recorder(1.0, 1.5);
  const Json& doc = rec.finalize();
  const Json* metric = doc.find("metrics")->find("makespan/x");
  EXPECT_FALSE(metric->find("deterministic")->as_bool());
  EXPECT_EQ(metric->find("median")->as_number(), 1.25);
}

TEST(BenchCompare, PassesWithinToleranceAndDetectsRegression) {
  auto base = make_recorder(1.0, 1.0);
  auto same = make_recorder(1.1, 1.1);
  auto worse = make_recorder(1.5, 1.5);

  const auto ok = compare_bench_runs(base.finalize(), same.finalize(),
                                     {.tolerance = 0.25});
  EXPECT_TRUE(ok.ok);
  ASSERT_EQ(ok.metrics.size(), 1u);
  EXPECT_FALSE(ok.metrics[0].regressed);
  EXPECT_NEAR(ok.metrics[0].ratio, 1.1, 1e-9);

  const auto bad = compare_bench_runs(base.finalize(), worse.finalize(),
                                      {.tolerance = 0.25});
  EXPECT_FALSE(bad.ok);
  ASSERT_EQ(bad.metrics.size(), 1u);
  EXPECT_TRUE(bad.metrics[0].regressed);
}

TEST(Json, RejectsMutationOfScalars) {
  Json s = Json("a string");
  EXPECT_THROW(s["key"] = 1, std::logic_error);
  EXPECT_THROW(s.push_back(Json(1)), std::logic_error);
}

TEST(BenchCompare, CollapsedHigherIsBetterMetricStillGates) {
  BenchRecorder base("s", "a", "t"), cur("s", "a", "t");
  const BenchRecorder::MetricOptions opts{
      .unit = "edges/us", .direction = "higher", .gate = true};
  base.declare_metric("throughput", opts);
  cur.declare_metric("throughput", opts);
  base.add_trial("throughput", 100.0);
  cur.add_trial("throughput", 0.0);  // total collapse must not pass the gate
  const auto report = compare_bench_runs(base.finalize(), cur.finalize(), {});
  EXPECT_FALSE(report.ok);
}

TEST(BenchCompare, HigherIsBetterDirection) {
  BenchRecorder base("s", "a", "t"), cur("s", "a", "t");
  base.declare_metric("throughput",
                      {.unit = "edges/us", .direction = "higher", .gate = true});
  cur.declare_metric("throughput",
                     {.unit = "edges/us", .direction = "higher", .gate = true});
  base.add_trial("throughput", 100.0);
  cur.add_trial("throughput", 60.0);  // 40% drop on a higher-is-better metric
  const auto report = compare_bench_runs(base.finalize(), cur.finalize(),
                                         {.tolerance = 0.25});
  EXPECT_FALSE(report.ok);
}

TEST(BenchCompare, UngatedMetricsNeverFail) {
  auto base = make_recorder(1.0, 1.0, /*gate=*/false);
  auto worse = make_recorder(9.0, 9.0, /*gate=*/false);
  const auto gated_only =
      compare_bench_runs(base.finalize(), worse.finalize(), {});
  EXPECT_TRUE(gated_only.ok);
  EXPECT_TRUE(gated_only.metrics.empty());

  const auto all = compare_bench_runs(base.finalize(), worse.finalize(),
                                      {.gated_only = false});
  EXPECT_TRUE(all.ok);  // reported but not failing
  ASSERT_EQ(all.metrics.size(), 1u);
  EXPECT_FALSE(all.metrics[0].regressed);
}

TEST(BenchCompare, ScenarioMismatchAndMissingMetrics) {
  BenchRecorder a("fig1", "x", "t"), b("fig2", "x", "t");
  const auto mismatch = compare_bench_runs(a.finalize(), b.finalize(), {});
  EXPECT_FALSE(mismatch.ok);
  EXPECT_FALSE(mismatch.notes.empty());

  // A brand-new gated metric must not fail against an old baseline.
  BenchRecorder old_doc("s", "x", "t"), new_doc("s", "x", "t");
  new_doc.declare_metric("makespan/new", {.gate = true});
  new_doc.add_trial("makespan/new", 1.0);
  const auto added =
      compare_bench_runs(old_doc.finalize(), new_doc.finalize(), {});
  EXPECT_TRUE(added.ok);
  EXPECT_FALSE(added.notes.empty());

  // But a gated metric disappearing is noted too.
  const auto removed =
      compare_bench_runs(new_doc.finalize(), old_doc.finalize(), {});
  EXPECT_TRUE(removed.ok);
  EXPECT_FALSE(removed.notes.empty());
}

}  // namespace
