// Failure injection and pathological-input robustness: rank crashes at
// every phase of the SPMD lifecycle, degenerate graphs through every
// engine, and hostile cache configurations.
#include <gtest/gtest.h>

#include <stdexcept>

#include "atlc/clampi/cache.hpp"
#include "atlc/core/lcc.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/reference.hpp"
#include "atlc/rma/runtime.hpp"
#include "atlc/tric/tric.hpp"

namespace atlc {
namespace {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeList;

// ------------------------------------------------------- rank crash paths ---

rma::Runtime::Options opts(std::uint32_t ranks) {
  rma::Runtime::Options o;
  o.ranks = ranks;
  return o;
}

TEST(FailureInjection, CrashBeforeWindowCreation) {
  EXPECT_THROW(
      rma::Runtime::run(opts(4),
                        [&](rma::RankCtx& ctx) {
                          if (ctx.rank() == 0)
                            throw std::runtime_error("early death");
                          std::vector<int> local(8, 1);
                          (void)ctx.create_window<int>(local);  // collective
                        }),
      std::runtime_error);
}

TEST(FailureInjection, CrashAfterWindowCreation) {
  // Exposed buffers must outlive every remote access (DESIGN.md §3) even
  // when the owner dies mid-epoch: rank 3 unwinds while its peers still
  // get from its window, so the storage lives outside the rank bodies.
  std::vector<std::vector<int>> local(4, std::vector<int>(8, 1));
  EXPECT_THROW(
      rma::Runtime::run(opts(4),
                        [&](rma::RankCtx& ctx) {
                          auto win = ctx.create_window<int>(
                              std::span<const int>(local[ctx.rank()]));
                          if (ctx.rank() == 3)
                            throw std::runtime_error("post-window death");
                          int buf;
                          ctx.flush(win.get((ctx.rank() + 1) % 4, 0, 1, &buf));
                          ctx.barrier();
                        }),
      std::runtime_error);
}

TEST(FailureInjection, CrashInsideAllToAll) {
  EXPECT_THROW(
      rma::Runtime::run(opts(3),
                        [&](rma::RankCtx& ctx) {
                          if (ctx.rank() == 1)
                            throw std::runtime_error("a2a death");
                          std::vector<std::vector<std::uint32_t>> out(3);
                          (void)ctx.all_to_all(out);
                        }),
      std::runtime_error);
}

TEST(FailureInjection, AllRanksCrashFirstErrorWins) {
  EXPECT_THROW(rma::Runtime::run(opts(8),
                                 [&](rma::RankCtx&) {
                                   throw std::logic_error("boom");
                                 }),
               std::logic_error);
}

TEST(FailureInjection, RuntimeReusableAfterFailure) {
  try {
    rma::Runtime::run(opts(4), [&](rma::RankCtx& ctx) {
      if (ctx.rank() == 2) throw std::runtime_error("x");
      ctx.barrier();
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  // A fresh run right after a poisoned one must work normally.
  std::atomic<int> count{0};
  rma::Runtime::run(opts(4), [&](rma::RankCtx& ctx) {
    ctx.barrier();
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
}

// ------------------------------------------------------ degenerate graphs ---

CSRGraph tiny(std::initializer_list<std::pair<int, int>> edges, int n) {
  EdgeList e(static_cast<graph::VertexId>(n), {}, Directedness::Undirected);
  for (auto [u, v] : edges) {
    e.add_edge(static_cast<graph::VertexId>(u),
               static_cast<graph::VertexId>(v));
  }
  e.symmetrize();
  return CSRGraph::from_edges(e);
}

TEST(DegenerateGraphs, SingleTriangleManyRanks) {
  const auto g = tiny({{0, 1}, {1, 2}, {2, 0}}, 3);
  // More ranks than vertices: some ranks own nothing.
  const auto r = core::run_distributed_lcc(g, 8);
  EXPECT_EQ(r.global_triangles, 1u);
  for (double c : r.lcc) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_EQ(tric::run_tric(g, 8).global_triangles, 1u);
}

TEST(DegenerateGraphs, PathGraphHasNoTriangles) {
  const auto g = tiny({{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 5);
  EXPECT_EQ(core::run_distributed_lcc(g, 3).global_triangles, 0u);
  EXPECT_EQ(tric::run_tric(g, 3).global_triangles, 0u);
}

TEST(DegenerateGraphs, BipartiteIsTriangleFree) {
  // K_{3,3}: plenty of edges, zero triangles (odd cycles only).
  EdgeList e(6, {}, Directedness::Undirected);
  for (int a = 0; a < 3; ++a)
    for (int b = 3; b < 6; ++b)
      e.add_edge(static_cast<graph::VertexId>(a),
                 static_cast<graph::VertexId>(b));
  e.symmetrize();
  const auto g = CSRGraph::from_edges(e);
  const auto r = core::run_distributed_lcc(g, 4);
  EXPECT_EQ(r.global_triangles, 0u);
  for (double c : r.lcc) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(DegenerateGraphs, CompleteGraphEveryEngine) {
  EdgeList e(8, {}, Directedness::Undirected);
  for (graph::VertexId u = 0; u < 8; ++u)
    for (graph::VertexId v = u + 1; v < 8; ++v) e.add_edge(u, v);
  e.symmetrize();
  const auto g = CSRGraph::from_edges(e);
  const std::uint64_t expect = 8 * 7 * 6 / 6;  // C(8,3)
  EXPECT_EQ(core::run_distributed_lcc(g, 3).global_triangles, expect);
  EXPECT_EQ(core::run_distributed_tc(g, 5), expect);
  EXPECT_EQ(tric::run_tric(g, 3).global_triangles, expect);
}

TEST(DegenerateGraphs, SingleRankOwnsEverything) {
  auto e = graph::generate_rmat({.scale = 7, .edge_factor = 8, .seed = 5});
  graph::clean(e);
  const auto g = CSRGraph::from_edges(e);
  const auto r = core::run_distributed_lcc(g, 1);
  EXPECT_EQ(r.remote_edges, 0u);  // no remote partition exists
  EXPECT_EQ(r.run.total().remote_gets, 0u);
  EXPECT_EQ(r.global_triangles, graph::reference_lcc(g).global_triangles);
}

TEST(DegenerateGraphs, CachedRunOnTriangleFreeGraph) {
  const auto g = tiny({{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 4);  // 4-cycle
  core::EngineConfig cfg;
  cfg.use_cache = true;
  cfg.cache_sizing.offsets_bytes = 64;  // pathologically tiny caches
  cfg.cache_sizing.adj_bytes = 64;
  const auto r = core::run_distributed_lcc(g, 2, cfg);
  EXPECT_EQ(r.global_triangles, 0u);
}

// --------------------------------------------------- hostile cache configs ---

TEST(HostileCache, SingleSlotTable) {
  clampi::CacheConfig cfg;
  cfg.buffer_bytes = 4096;
  cfg.hash_slots = 1;
  cfg.probe_limit = 1;
  clampi::Cache cache(cfg);
  const std::vector<std::byte> data(64, std::byte{1});
  std::vector<std::byte> out(64);
  // Everything maps to the one slot; behaviour must stay correct.
  for (std::uint32_t i = 0; i < 100; ++i) {
    const clampi::Key k{0, i * 64, 64};
    if (!cache.lookup(k, out.data())) (void)cache.insert(k, data.data());
  }
  EXPECT_LE(cache.num_entries(), 1u);
}

TEST(HostileCache, EntryExactlyBufferSize) {
  clampi::CacheConfig cfg;
  cfg.buffer_bytes = 256;
  cfg.hash_slots = 8;
  clampi::Cache cache(cfg);
  const std::vector<std::byte> data(256, std::byte{7});
  EXPECT_TRUE(cache.insert({0, 0, 256}, data.data()));
  std::vector<std::byte> out(256);
  EXPECT_TRUE(cache.lookup({0, 0, 256}, out.data()));
  // A second full-buffer entry displaces the first entirely.
  EXPECT_TRUE(cache.insert({0, 999, 256}, data.data()));
  EXPECT_FALSE(cache.lookup({0, 0, 256}, out.data()));
}

TEST(HostileCache, ZeroByteEntriesRejected) {
  // Contract: empty payloads are never cached (nothing to save, and a
  // zero-byte allocation would break the buffer-layout tiling).
  clampi::Cache cache({.buffer_bytes = 128, .hash_slots = 8});
  EXPECT_FALSE(cache.insert({0, 0, 0}, nullptr));
  std::byte dummy;
  EXPECT_FALSE(cache.lookup({0, 0, 0}, &dummy));
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(HostileCache, ManyFlushCycles) {
  clampi::Cache cache({.buffer_bytes = 1024, .hash_slots = 32});
  const std::vector<std::byte> data(64, std::byte{3});
  std::vector<std::byte> out(64);
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t i = 0; i < 8; ++i)
      ASSERT_TRUE(cache.insert({0, i * 64, 64}, data.data()));
    for (std::uint32_t i = 0; i < 8; ++i)
      ASSERT_TRUE(cache.lookup({0, i * 64, 64}, out.data()));
    cache.flush();
    ASSERT_EQ(cache.num_entries(), 0u);
  }
  EXPECT_EQ(cache.stats().flushes, 50u);
}

TEST(HostileCache, TricWithOneEntryBuffers) {
  // Buffered TriC with absurdly small buffers must still be correct,
  // just with many rounds.
  auto e = graph::generate_rmat({.scale = 6, .edge_factor = 6, .seed = 8});
  graph::clean(e);
  const auto g = CSRGraph::from_edges(e);
  tric::TricConfig cfg;
  cfg.buffer_entries = 8;
  const auto r = tric::run_tric(g, 4, cfg);
  EXPECT_EQ(r.global_triangles, graph::reference_lcc(g).global_triangles);
  EXPECT_GT(r.rounds, 2u);
}

}  // namespace
}  // namespace atlc
