// Unit + property tests for the intersection kernels (paper Algorithms 1-2,
// Eq. 3 hybrid rule, Section III-C parallel variants).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "atlc/intersect/cost_model.hpp"
#include "atlc/intersect/intersect.hpp"
#include "atlc/intersect/parallel.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::intersect {
namespace {

using V = std::vector<VertexId>;

std::uint64_t std_count(const V& a, const V& b) {
  V out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

V random_sorted_unique(std::size_t len, VertexId universe, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  V v;
  v.reserve(len);
  for (std::size_t i = 0; i < len * 2 && v.size() < len; ++i)
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// ------------------------------------------------------- basic behaviour ---

TEST(Intersect, EmptyInputs) {
  const V a{}, b{1, 2, 3};
  EXPECT_EQ(count_binary(a, b), 0u);
  EXPECT_EQ(count_ssi(a, b), 0u);
  EXPECT_EQ(count_hybrid(a, b), 0u);
  EXPECT_EQ(count_binary(b, a), 0u);
  EXPECT_EQ(count_ssi(b, a), 0u);
}

TEST(Intersect, IdenticalLists) {
  const V a{1, 5, 9, 12};
  EXPECT_EQ(count_binary(a, a), 4u);
  EXPECT_EQ(count_ssi(a, a), 4u);
  EXPECT_EQ(count_hybrid(a, a), 4u);
}

TEST(Intersect, DisjointLists) {
  const V a{1, 3, 5}, b{2, 4, 6};
  EXPECT_EQ(count_binary(a, b), 0u);
  EXPECT_EQ(count_ssi(a, b), 0u);
}

TEST(Intersect, PartialOverlap) {
  const V a{1, 2, 3, 7, 9}, b{2, 3, 4, 9, 11};
  EXPECT_EQ(count_binary(a, b), 3u);
  EXPECT_EQ(count_ssi(a, b), 3u);
  EXPECT_EQ(count_hybrid(a, b), 3u);
}

TEST(Intersect, SingleElement) {
  const V a{5}, b{1, 5, 10};
  EXPECT_EQ(count_binary(a, b), 1u);
  EXPECT_EQ(count_ssi(a, b), 1u);
}

TEST(Intersect, SymmetricArguments) {
  const V a{1, 2, 3, 4, 50, 60, 70}, b{2, 4, 60};
  EXPECT_EQ(count_binary(a, b), count_binary(b, a));
  EXPECT_EQ(count_ssi(a, b), count_ssi(b, a));
  EXPECT_EQ(count_hybrid(a, b), count_hybrid(b, a));
}

// ----------------------------------------------------------- Eq. 3 rule ---

TEST(HybridRule, PrefersSsiForBalancedLists) {
  // |B|/|A| = 1 <= log2(1024) - 1 = 9.
  EXPECT_TRUE(prefer_ssi(1024, 1024));
}

TEST(HybridRule, PrefersBinaryForSkewedLists) {
  // |B|/|A| = 1024 > log2(65536) - 1 = 15.
  EXPECT_FALSE(prefer_ssi(64, 65536));
}

TEST(HybridRule, OrderInsensitive) {
  EXPECT_EQ(prefer_ssi(10, 10000), prefer_ssi(10000, 10));
}

TEST(HybridRule, EmptyIsCheapEitherWay) { EXPECT_TRUE(prefer_ssi(0, 100)); }

// ----------------------------------------------------- upper-triangle op ---

TEST(SuffixAbove, TrimsInclusive) {
  const V a{1, 3, 5, 7};
  const auto s = suffix_above(a, 3);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 5u);
  EXPECT_EQ(s[1], 7u);
}

TEST(SuffixAbove, FloorBelowAll) {
  const V a{4, 5};
  EXPECT_EQ(suffix_above(a, 0).size(), 2u);
}

TEST(SuffixAbove, FloorAboveAll) {
  const V a{4, 5};
  EXPECT_TRUE(suffix_above(a, 9).empty());
}

TEST(SuffixAbove, FloorEqualToFirstElement) {
  // `suffix_above` is strict: the floor element itself is excluded.
  const V a{4, 5, 9};
  const auto s = suffix_above(a, 4);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 5u);
}

TEST(SuffixAbove, FloorEqualToLastElement) {
  const V a{4, 5, 9};
  EXPECT_TRUE(suffix_above(a, 9).empty());
}

TEST(SuffixAbove, FloorStrictlyAboveEntireRange) {
  const V a{4, 5, 9};
  EXPECT_TRUE(suffix_above(a, 100).empty());
  EXPECT_TRUE(suffix_above(V{}, 0).empty());
}

TEST(CountCommonAbove, FloorEqualToBoundaryCommonElements) {
  const V a{2, 5, 8, 12}, b{2, 5, 9, 12};  // common: 2, 5, 12
  for (auto m : {Method::Binary, Method::SSI, Method::Hybrid}) {
    EXPECT_EQ(count_common_above(a, b, 2, m), 2u) << method_name(m);
    EXPECT_EQ(count_common_above(a, b, 12, m), 0u) << method_name(m);
  }
}

TEST(CountCommonAbove, FloorAboveEntireRange) {
  const V a{2, 5, 8, 12}, b{2, 5, 9, 12};
  for (auto m : {Method::Binary, Method::SSI, Method::Hybrid})
    EXPECT_EQ(count_common_above(a, b, 1000, m), 0u) << method_name(m);
}

TEST(CountCommonAbove, MatchesManualFilter) {
  const V a{1, 2, 5, 8, 12}, b{2, 5, 9, 12};
  // Common elements: 2, 5, 12. Above floor 4: 5 and 12.
  EXPECT_EQ(count_common_above(a, b, 4), 2u);
  EXPECT_EQ(count_common_above(a, b, 12), 0u);
  EXPECT_EQ(count_common_above(a, b, 0), 3u);
}

// ------------------------------------------------------- property sweeps ---

struct PropertyCase {
  std::size_t len_a, len_b;
  VertexId universe;
};

class IntersectProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(IntersectProperty, AllKernelsMatchStdSetIntersection) {
  const auto p = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const V a = random_sorted_unique(p.len_a, p.universe, seed);
    const V b = random_sorted_unique(p.len_b, p.universe, seed * 131);
    const std::uint64_t expected = std_count(a, b);
    EXPECT_EQ(count_binary(a, b), expected) << "seed " << seed;
    EXPECT_EQ(count_ssi(a, b), expected) << "seed " << seed;
    EXPECT_EQ(count_hybrid(a, b), expected) << "seed " << seed;
    EXPECT_EQ(count_binary_parallel(a, b), expected) << "seed " << seed;
    EXPECT_EQ(count_ssi_parallel(a, b), expected) << "seed " << seed;
    EXPECT_EQ(count_hybrid_parallel(a, b), expected) << "seed " << seed;
  }
}

TEST_P(IntersectProperty, UpperTriangleMatchesFilteredStd) {
  const auto p = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const V a = random_sorted_unique(p.len_a, p.universe, seed);
    const V b = random_sorted_unique(p.len_b, p.universe, seed * 977);
    V common;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(common));
    const VertexId floor = p.universe / 2;
    const auto expected = static_cast<std::uint64_t>(std::count_if(
        common.begin(), common.end(), [&](VertexId v) { return v > floor; }));
    EXPECT_EQ(count_common_above(a, b, floor), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, IntersectProperty,
    ::testing::Values(PropertyCase{0, 10, 100}, PropertyCase{1, 1, 4},
                      PropertyCase{10, 10, 30}, PropertyCase{100, 100, 150},
                      PropertyCase{5, 1000, 2000},
                      PropertyCase{1000, 5, 2000},
                      PropertyCase{500, 500, 600},
                      PropertyCase{2048, 8192, 20000},
                      PropertyCase{10000, 100, 50000}));

// -------------------------------------------------------------- parallel ---

TEST(Parallel, CutoffFallsBackToSequentialResult) {
  const V a = random_sorted_unique(100, 500, 3);
  const V b = random_sorted_unique(100, 500, 4);
  ParallelConfig big_cutoff{.num_threads = 4, .cutoff = 1u << 20};
  EXPECT_EQ(count_ssi_parallel(a, b, big_cutoff), std_count(a, b));
  EXPECT_EQ(count_binary_parallel(a, b, big_cutoff), std_count(a, b));
}

TEST(Parallel, ThreadCountsAgree) {
  const V a = random_sorted_unique(5000, 20000, 5);
  const V b = random_sorted_unique(8000, 20000, 6);
  const std::uint64_t expected = std_count(a, b);
  for (int threads : {1, 2, 3, 4}) {
    ParallelConfig cfg{.num_threads = threads, .cutoff = 0};
    EXPECT_EQ(count_ssi_parallel(a, b, cfg), expected) << threads;
    EXPECT_EQ(count_binary_parallel(a, b, cfg), expected) << threads;
  }
}

TEST(Parallel, DispatchMatchesMethods) {
  const V a = random_sorted_unique(3000, 9000, 7);
  const V b = random_sorted_unique(3000, 9000, 8);
  const std::uint64_t expected = std_count(a, b);
  for (auto m : {Method::Binary, Method::SSI, Method::Hybrid}) {
    EXPECT_EQ(count_common(a, b, m), expected);
    EXPECT_EQ(count_common_parallel(a, b, m, {}), expected);
  }
}

// ------------------------------------------------------------ cost model ---

TEST(CostModel, MonotoneInWork) {
  const CostModel m;
  EXPECT_LT(m.seconds(Method::SSI, 10, 10), m.seconds(Method::SSI, 1000, 1000));
  EXPECT_LT(m.seconds(Method::Binary, 10, 1000),
            m.seconds(Method::Binary, 100, 1000));
}

TEST(CostModel, HybridPricesChosenKernel) {
  const CostModel m;
  // Balanced lists: hybrid == SSI price. Skewed: hybrid == binary price.
  EXPECT_DOUBLE_EQ(m.seconds(Method::Hybrid, 1000, 1000),
                   m.seconds(Method::SSI, 1000, 1000));
  EXPECT_DOUBLE_EQ(m.seconds(Method::Hybrid, 4, 1 << 20),
                   m.seconds(Method::Binary, 4, 1 << 20));
}

TEST(CostModel, CalibrationProducesPositiveConstants) {
  const CostModel m = CostModel::calibrate();
  EXPECT_GT(m.ssi_ns_per_elem, 0.0);
  EXPECT_GT(m.binary_ns_per_probe, 0.0);
}

TEST(MethodName, AllNamed) {
  EXPECT_STREQ(method_name(Method::Binary), "binary");
  EXPECT_STREQ(method_name(Method::SSI), "ssi");
  EXPECT_STREQ(method_name(Method::Hybrid), "hybrid");
}

}  // namespace
}  // namespace atlc::intersect
