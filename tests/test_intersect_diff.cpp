// Randomized differential harness for every intersection kernel tier
// (ISSUE 6): binary, SSI, hybrid, branch-reduced merge, galloping search,
// RowBitmap, for_each_common, count_common_above, and the TieredIntersector
// dispatch are all cross-checked against a trivial std::set_intersection
// oracle over >10k seeded pairs. Vectorized/block-skipping kernels break
// silently on boundary lengths, so the sweep deliberately pins lengths
// straddling SIMD-width boundaries (7,8,9, 15,16,17, 31,32,33) and the
// degenerate structures (empty, one-element, disjoint, subset, identical)
// alongside the random bulk. Runs under ASan/UBSan in the tier-1 CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "atlc/intersect/cost_model.hpp"
#include "atlc/intersect/intersect.hpp"
#include "atlc/intersect/tiered.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::intersect {
namespace {

using V = std::vector<VertexId>;

V oracle(const V& a, const V& b) {
  V out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

V random_sorted_unique(std::size_t len, VertexId universe, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  V v;
  v.reserve(len);
  for (std::size_t i = 0; i < len * 2 && v.size() < len; ++i)
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Policies that pin the TieredIntersector to one kernel each, so the
/// dispatcher's bookkeeping (bitmap builds/reuse, cost charging) is
/// exercised on every pair regardless of shape.
TierPolicy force_bitmap() { return {.bitmap_min_row = 0, .gallop_ratio = 1.0}; }
TierPolicy force_gallop() {
  return {.bitmap_min_row = static_cast<std::size_t>(-1), .gallop_ratio = 0.0};
}
TierPolicy force_merge() {
  return {.bitmap_min_row = static_cast<std::size_t>(-1),
          .gallop_ratio = 1e300};
}

/// Cross-check every kernel tier on one (a, b) pair. All ids must be
/// < `universe` (RowBitmap precondition). Returns the number of
/// kernel-vs-oracle comparisons performed, so the suite can assert the
/// sweep actually reached the promised scale.
std::uint64_t check_pair(const V& a, const V& b, VertexId universe) {
  const V common = oracle(a, b);
  const auto expected = static_cast<std::uint64_t>(common.size());
  std::uint64_t checks = 0;
  const auto expect = [&](std::uint64_t got, const char* kernel) {
    ++checks;
    EXPECT_EQ(got, expected) << kernel << " |a|=" << a.size()
                             << " |b|=" << b.size() << " universe=" << universe;
  };

  // Paper tier, both argument orders (all are symmetric in value).
  expect(count_binary(a, b), "binary");
  expect(count_binary(b, a), "binary/swapped");
  expect(count_ssi(a, b), "ssi");
  expect(count_hybrid(a, b), "hybrid");

  // Tiered kernels, both orders.
  expect(count_merge_vec(a, b), "merge_vec");
  expect(count_merge_vec(b, a), "merge_vec/swapped");
  expect(count_gallop(a, b), "gallop");
  expect(count_gallop(b, a), "gallop/swapped");

  // RowBitmap: membership and the word-batched popcount probe.
  RowBitmap bm;
  bm.build(a, universe);
  expect(bm.count_in(b), "bitmap.count_in");
  ++checks;
  EXPECT_TRUE(bm.built_for(a));
  for (VertexId x : common) {
    ++checks;
    EXPECT_TRUE(bm.test(x)) << "bitmap.test " << x;
  }

  // for_each_common must visit exactly the oracle sequence, in order.
  V visited;
  for_each_common(a, b, [&](VertexId x) { visited.push_back(x); });
  ++checks;
  EXPECT_EQ(visited, common) << "for_each_common |a|=" << a.size()
                             << " |b|=" << b.size();

  // count_common_above at the boundary floors: below everything, equal to
  // the first/last common element, and above the entire universe.
  V floors = {0, universe};
  if (!common.empty()) {
    floors.push_back(common.front());
    floors.push_back(common.back());
    floors.push_back(common[common.size() / 2]);
  }
  for (VertexId floor : floors) {
    const auto above = static_cast<std::uint64_t>(std::count_if(
        common.begin(), common.end(), [&](VertexId v) { return v > floor; }));
    for (auto m : {Method::Binary, Method::SSI, Method::Hybrid}) {
      ++checks;
      EXPECT_EQ(count_common_above(a, b, floor, m), above)
          << "count_common_above floor=" << floor << " method "
          << method_name(m);
    }
  }

  // TieredIntersector pinned to each kernel in turn.
  const CostModel cost;
  const struct {
    TierPolicy policy;
    TierKernel want;
  } forced[] = {{force_bitmap(), TierKernel::Bitmap},
                {force_gallop(), TierKernel::Gallop},
                {force_merge(), TierKernel::MergeVec}};
  for (const auto& f : forced) {
    TieredIntersector ti(f.policy, cost, universe);
    const auto out = ti.intersect(a, b);
    expect(out.common, tier_kernel_name(f.want));
    ++checks;
    // An empty short side legitimately falls through Gallop to MergeVec.
    if (f.want != TierKernel::Gallop || (!a.empty() && !b.empty()))
      EXPECT_EQ(out.kernel, f.want)
          << "dispatch picked " << tier_kernel_name(out.kernel);
    ++checks;
    EXPECT_GE(out.seconds, 0.0);
  }
  return checks;
}

// --------------------------------------------------- boundary-length grid ---

// Lengths straddling 8/16/32-lane SIMD boundaries plus the degenerate ends.
constexpr std::size_t kBoundaryLens[] = {0,  1,  2,  7,  8,  9, 15,
                                         16, 17, 31, 32, 33, 64};

TEST(IntersectDiff, BoundaryLengthGrid) {
  std::uint64_t pairs = 0;
  for (std::size_t la : kBoundaryLens) {
    for (std::size_t lb : kBoundaryLens) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const auto universe =
            static_cast<VertexId>(3 * (la + lb) + 5 + seed % 3);
        const V a = random_sorted_unique(la, universe, seed * 7919 + la);
        const V b = random_sorted_unique(lb, universe, seed * 104729 + lb);
        check_pair(a, b, universe);
        ++pairs;
      }
    }
  }
  EXPECT_GE(pairs, 600u);
}

// ----------------------------------------------------- structured shapes ---

TEST(IntersectDiff, StructuredShapes) {
  for (std::size_t len : kBoundaryLens) {
    const auto universe = static_cast<VertexId>(4 * len + 8);
    // Identical lists.
    V evens, odds, subset;
    for (std::size_t i = 0; i < len; ++i) {
      evens.push_back(static_cast<VertexId>(2 * i));
      odds.push_back(static_cast<VertexId>(2 * i + 1));
      if (i % 2 == 0) subset.push_back(static_cast<VertexId>(2 * i));
    }
    check_pair(evens, evens, universe);   // identical
    check_pair(evens, odds, universe);    // fully disjoint, interleaved
    check_pair(evens, subset, universe);  // proper subset
    check_pair(evens, V{}, universe);     // vs empty
    if (!evens.empty()) {
      check_pair(evens, V{evens.front()}, universe);  // one-element, hit
      check_pair(evens, V{evens.back()}, universe);
      check_pair(evens, V{static_cast<VertexId>(universe - 1)},
                 universe);  // one-element, miss above all
    }
  }
}

// --------------------------------------------------------- random sweeps ---

// The bulk of the 10k-pair budget: random lengths and densities, including
// hub-vs-leaf skew so Gallop and Bitmap see realistic shapes.
TEST(IntersectDiff, RandomSweep10k) {
  std::uint64_t pairs = 0, checks = 0;
  util::Xoshiro256 shape_rng(2026);
  while (pairs < 9000) {
    const std::size_t la = shape_rng.next_below(96);
    const std::size_t lb = shape_rng.next_below(96);
    // Universe from tight (dense overlap) to loose (sparse overlap).
    const auto universe = static_cast<VertexId>(
        (la + lb + 2) * (1 + shape_rng.next_below(4)));
    const std::uint64_t seed = shape_rng();
    const V a = random_sorted_unique(la, universe, seed);
    const V b = random_sorted_unique(lb, universe, seed ^ 0xabcdef);
    checks += check_pair(a, b, universe);
    ++pairs;
  }
  // A smaller number of large skewed pairs: hub rows worth a bitmap and
  // gallop-friendly 100:1 ratios.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const VertexId universe = 1 << 14;
    const V hub = random_sorted_unique(2048, universe, seed);
    const V leaf = random_sorted_unique(16 + seed % 17, universe, seed * 31);
    checks += check_pair(hub, leaf, universe);
    const V mid = random_sorted_unique(512, universe, seed * 17);
    checks += check_pair(hub, mid, universe);
    pairs += 2;
  }
  EXPECT_GE(pairs, 9100u);
  EXPECT_GE(checks, 100000u);
}

// -------------------------------------------- dispatcher state machinery ---

TEST(IntersectDiff, BitmapReusedAcrossSameRow) {
  const VertexId universe = 4096;
  const V row = random_sorted_unique(1024, universe, 11);
  TieredIntersector ti(force_bitmap(), CostModel{}, universe);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const V other = random_sorted_unique(64, universe, seed * 131);
    const auto out = ti.intersect(row, other);
    EXPECT_EQ(out.common, oracle(row, other).size());
  }
  // One build serves the whole run of edges on the same row span.
  EXPECT_EQ(ti.stats().bitmap_builds, 1u);
  EXPECT_EQ(ti.stats().bitmap_pairs, 8u);
}

TEST(IntersectDiff, BitmapRebuildClearsStaleBits) {
  const VertexId universe = 1024;
  const V first = random_sorted_unique(300, universe, 21);
  const V second = random_sorted_unique(40, universe, 22);
  RowBitmap bm;
  bm.build(first, universe);
  bm.build(second, universe);  // must clear all of `first`'s bits
  for (VertexId v = 0; v < universe; ++v) {
    const bool in_second = std::binary_search(second.begin(), second.end(), v);
    EXPECT_EQ(bm.test(v), in_second) << "vertex " << v;
  }
  EXPECT_EQ(bm.count_in(first), oracle(first, second).size());
}

TEST(IntersectDiff, SelectTierKernelRule) {
  const TierPolicy p;  // defaults: bitmap_min_row=256, gallop_ratio=32
  EXPECT_EQ(select_tier_kernel(256, 8, p), TierKernel::Bitmap);
  EXPECT_EQ(select_tier_kernel(4096, 4096, p), TierKernel::Bitmap);
  EXPECT_EQ(select_tier_kernel(255, 8, p), TierKernel::MergeVec);  // 31.9x
  EXPECT_EQ(select_tier_kernel(4, 128, p), TierKernel::Gallop);    // 32x
  EXPECT_EQ(select_tier_kernel(128, 4, p), TierKernel::Gallop);    // symmetric
  EXPECT_EQ(select_tier_kernel(100, 100, p), TierKernel::MergeVec);
  EXPECT_EQ(select_tier_kernel(0, 100, p), TierKernel::MergeVec);
  EXPECT_EQ(select_tier_kernel(5, 100, p), TierKernel::MergeVec);  // 20x < 32x
}

TEST(IntersectDiff, TierNamesNamed) {
  EXPECT_STREQ(tier_name(Tier::Paper), "paper");
  EXPECT_STREQ(tier_name(Tier::Tiered), "tiered");
  EXPECT_STREQ(tier_kernel_name(TierKernel::MergeVec), "merge_vec");
  EXPECT_STREQ(tier_kernel_name(TierKernel::Gallop), "gallop");
  EXPECT_STREQ(tier_kernel_name(TierKernel::Bitmap), "bitmap");
}

}  // namespace
}  // namespace atlc::intersect
