// Serving-layer lockdown (ISSUE 10, the archetype headliner). Three suites:
//
// 1. Query/update interleaving parity matrix: seeded Zipf query streams ×
//    ranks {1,2,4,8} × {cached, uncached} × {hot-cache on, off} × batch
//    sizes, every answer bit-identical to answer_reference() run from
//    scratch on the graph state AS OF that query's epoch (batches 0..e-1
//    applied, never partial state). This is the epoch-consistency contract
//    of DESIGN.md §13 made executable.
// 2. Randomized HotVertexCache fuzz: >10k seeded op sequences against a
//    naive map-based reference model, covering frequency-decrement
//    eviction ties, short top-k memos and stale-entry invalidation.
// 3. Admission-control determinism: same seed ⇒ byte-identical
//    accept/reject sequence, answer payloads and rejection counters at
//    every rank count, plus the queue-overflow and zero-capacity shapes.
//
// Seeds: fixed by default (deterministic tier-1 gate); the nightly CI job
// rotates ATLC_SERVE_SEED and the chosen seed is printed below so any
// failure is replayable with `ATLC_SERVE_SEED=<n> ./test_serve`.

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "atlc/serve/hot_cache.hpp"
#include "atlc/serve/query_engine.hpp"
#include "atlc/serve/workload.hpp"
#include "atlc/stream/update.hpp"
#include "test_support.hpp"

namespace atlc::serve {
namespace {

using graph::CSRGraph;
using graph::EdgeList;
using testsupport::paper_example;
using testsupport::rmat_graph;

constexpr std::uint32_t kRankCounts[] = {1, 2, 4, 8};

std::uint64_t serve_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 20260808;  // fixed default: deterministic tier-1 gate
    if (const char* env = std::getenv("ATLC_SERVE_SEED"); env && *env)
      s = std::strtoull(env, nullptr, 10);
    std::printf("[serve] seed = %llu (set ATLC_SERVE_SEED to replay)\n",
                static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

EdgeList edge_list_of(const CSRGraph& g) {
  EdgeList e(g.num_vertices(), {}, graph::Directedness::Undirected);
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
    for (graph::VertexId v : g.neighbors(u)) e.add_edge(u, v);
  return e;
}

/// Bit-identity for doubles: the parity contract is "same bits", not "same
/// value up to rounding" — any accumulation-order drift must fail.
void expect_bits_eq(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expect_answer_matches(const QueryAnswer& got, const QueryAnswer& ref) {
  ASSERT_EQ(got.kind, ref.kind);
  ASSERT_EQ(got.v, ref.v);
  if (got.kind == QueryKind::Lcc) {
    expect_bits_eq(got.lcc, ref.lcc, "lcc");
    EXPECT_TRUE(got.topk.empty());
    return;
  }
  ASSERT_EQ(got.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(got.topk[i].v, ref.topk[i].v) << "rank " << i;
    expect_bits_eq(got.topk[i].score, ref.topk[i].score, "score");
  }
}

/// The parity check for one configuration: run the engine, then walk the
/// epochs evolving a single-node reference edge list in lockstep. Epoch e's
/// snapshot is taken BEFORE applying epoch e's own batch — queries observe
/// batches 0..e-1 only.
void expect_parity(const CSRGraph& g, const std::vector<ServeEpoch>& epochs,
                   std::uint32_t ranks, const ServeOptions& opts,
                   ServeResult* out = nullptr) {
  const ServeResult res = run_query_stream(g, epochs, ranks, opts);

  std::size_t total = 0;
  for (const ServeEpoch& e : epochs) total += e.queries.size();
  ASSERT_EQ(res.answers.size(), total);

  EdgeList evolved = edge_list_of(g);
  std::size_t id = 0;
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    const CSRGraph snap = CSRGraph::from_edges(evolved);
    for (std::size_t qi = 0; qi < epochs[e].queries.size(); ++qi, ++id) {
      const Query& q = epochs[e].queries[qi];
      const QueryAnswer& a = res.answers[id];
      SCOPED_TRACE(::testing::Message()
                   << "epoch " << e << " query " << qi << " ("
                   << query_kind_name(q.kind) << " v" << q.v << ")");
      EXPECT_EQ(a.id, id);
      EXPECT_EQ(a.epoch, e);
      EXPECT_EQ(a.rejected, qi >= opts.admission_capacity);
      if (a.rejected) {
        EXPECT_EQ(a.topk.size(), 0u);  // no partial payloads
        continue;
      }
      expect_answer_matches(a, answer_reference(snap, q));
      EXPECT_GE(a.completion, a.arrival);
    }
    stream::apply_to_edge_list(evolved, epochs[e].updates);
  }
  if (out != nullptr) *out = res;
}

// ------------------------------------------------ 1. parity matrix ------

/// Full sweep for one graph: rank counts × CLaMPI cache on/off × hot cache
/// on/off × batch sizes (0 = pure-query epochs).
void sweep_graph(const CSRGraph& g, const char* name, std::uint64_t seed) {
  for (const std::size_t batch_size : {std::size_t{0}, std::size_t{24}}) {
    QueryWorkloadConfig wc;
    wc.num_epochs = 3;
    wc.queries_per_epoch = 40;
    wc.zipf_skew = 1.1;  // hot head: the hot cache must see repeats
    wc.batch_size = batch_size;
    wc.seed = seed;
    const std::vector<ServeEpoch> epochs = generate_query_stream(g, wc);

    for (const std::uint32_t ranks : kRankCounts) {
      for (const bool cached : {false, true}) {
        for (const bool hot : {false, true}) {
          SCOPED_TRACE(::testing::Message()
                       << name << " bs=" << batch_size << " ranks=" << ranks
                       << " cached=" << cached << " hot=" << hot);
          ServeOptions opts;
          if (cached) {
            opts.engine.use_cache = true;
            opts.engine.cache_sizing = core::CacheSizing::paper_default(
                g.num_vertices(), 1 << 18);
          }
          if (hot) opts.hot_cache.entries = 64;
          ServeResult res;
          expect_parity(g, epochs, ranks, opts, &res);
          if (hot && batch_size == 0) {
            // Zipf-head repeats with no invalidation pressure must hit.
            EXPECT_GT(res.hot_cache_total.hits, 0u);
          }
        }
      }
    }
  }
}

TEST(ServeParityMatrix, PaperExample) {
  sweep_graph(paper_example(), "paper_example", serve_seed());
}

TEST(ServeParityMatrix, RmatZipfStream) {
  sweep_graph(rmat_graph(8, 8, 7 + serve_seed()), "rmat_s8", serve_seed());
}

TEST(ServeParityMatrix, DegreeBalancedPartition) {
  // The serving layer rides the make_partition seam: DegreeBalanced1D with
  // hub replication must preserve the same bit-identical answers.
  const CSRGraph g = rmat_graph(8, 8, 11 + serve_seed());
  QueryWorkloadConfig wc;
  wc.num_epochs = 3;
  wc.queries_per_epoch = 32;
  wc.batch_size = 16;
  wc.seed = serve_seed() + 3;
  const auto epochs = generate_query_stream(g, wc);
  for (const std::uint32_t ranks : kRankCounts) {
    SCOPED_TRACE(::testing::Message() << "ranks=" << ranks);
    ServeOptions opts;
    opts.partition = graph::PartitionKind::DegreeBalanced1D;
    opts.engine.hub_fraction = 0.05;
    opts.hot_cache.entries = 32;
    expect_parity(g, epochs, ranks, opts);
  }
}

TEST(ServeParityMatrix, HotCacheInvalidatedByNeighborhoodEdit) {
  // Targeted regression for the stale-memo hazard the matrix can only hit
  // probabilistically: epoch 0 memoizes LCC(2) and top-k(2); epoch 0's
  // batch inserts {0,3} — both endpoints inside N(2), vertex 2 untouched —
  // so every epoch-1 answer for v2 must be freshly recomputed, not served
  // from the (now wrong) memo.
  const CSRGraph g = paper_example();
  std::vector<ServeEpoch> epochs(2);
  for (int rep = 0; rep < 3; ++rep) {  // repeats so the memo is genuinely hot
    epochs[0].queries.push_back({QueryKind::Lcc, 2, 0});
    epochs[0].queries.push_back({QueryKind::TopKCommon, 2, 4});
    epochs[1].queries.push_back({QueryKind::Lcc, 2, 0});
    epochs[1].queries.push_back({QueryKind::TopKAdamicAdar, 2, 4});
  }
  epochs[0].updates.push_back({0, 3, stream::Op::Insert});

  for (const std::uint32_t ranks : {1u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "ranks=" << ranks);
    ServeOptions opts;
    opts.hot_cache.entries = 16;
    ServeResult res;
    expect_parity(g, epochs, ranks, opts, &res);
    EXPECT_GT(res.hot_cache_total.hits, 0u);        // epoch-0 repeats hit
    EXPECT_GT(res.hot_cache_total.invalidated, 0u);  // the batch marked them
  }
  // Sanity outside the harness: the edit really changes the answer.
  EdgeList after = edge_list_of(g);
  stream::apply_to_edge_list(after, epochs[0].updates);
  const Query lcc2{QueryKind::Lcc, 2, 0};
  EXPECT_NE(answer_reference(g, lcc2).lcc,
            answer_reference(CSRGraph::from_edges(after), lcc2).lcc);
}

TEST(ServeParityMatrix, DeletionsAndVanishingNeighborhoods) {
  // Deletion-heavy stream: rows shrink to degree 0/1, which exercises the
  // lcc_score degenerate branches and candidate sets that empty out.
  const CSRGraph g = rmat_graph(7, 4, 23 + serve_seed());
  QueryWorkloadConfig wc;
  wc.num_epochs = 4;
  wc.queries_per_epoch = 24;
  wc.batch_size = 48;
  wc.insert_fraction = 0.1;  // mostly deletions
  wc.seed = serve_seed() + 5;
  const auto epochs = generate_query_stream(g, wc);
  for (const std::uint32_t ranks : {1u, 4u}) {
    ServeOptions opts;
    opts.hot_cache.entries = 32;
    SCOPED_TRACE(::testing::Message() << "ranks=" << ranks);
    expect_parity(g, epochs, ranks, opts);
  }
}

// ------------------------------------------------ 2. hot-cache fuzz -----

/// Naive reference model: the cache's contract re-stated as the simplest
/// possible slot-array interpreter (same bucket hash, same tie rules),
/// driven op-for-op against the real class.
struct ModelEntry {
  bool used = false;
  bool stale = false;
  graph::VertexId v = 0;
  QueryKind kind = QueryKind::Lcc;
  std::uint32_t k = 0;
  std::int32_t freq = 0;
  double lcc = 0.0;
  std::vector<Recommendation> topk;
};

class ModelCache {
 public:
  explicit ModelCache(const HotCacheConfig& cfg) : cfg_(cfg) {
    if (cfg_.entries == 0) return;
    cfg_.ways = std::clamp<std::size_t>(cfg_.ways, 1, cfg_.entries);
    buckets_ = cfg_.entries / cfg_.ways;
    if (buckets_ == 0) buckets_ = 1;
    slots_.resize(buckets_ * cfg_.ways);
  }

  std::size_t bucket(graph::VertexId v, QueryKind kind) const {
    const std::uint64_t key = (static_cast<std::uint64_t>(v) << 2) |
                              static_cast<std::uint64_t>(kind);
    return static_cast<std::size_t>(util::mix64(key) % buckets_);
  }

  /// Probe: returns the served payload, or nullopt on any kind of miss.
  std::optional<ModelEntry> probe(graph::VertexId v, QueryKind kind,
                                  std::uint32_t k) {
    if (slots_.empty()) return std::nullopt;
    ++stats.probes;
    const std::size_t base = bucket(v, kind) * cfg_.ways;
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      ModelEntry& e = slots_[base + w];
      if (!e.used || e.v != v || e.kind != kind) continue;
      if (e.stale) {
        ++stats.stale_misses;
        e = ModelEntry{};
        return std::nullopt;
      }
      if (kind != QueryKind::Lcc && e.k < k) {
        ++stats.short_misses;
        return std::nullopt;
      }
      ++stats.hits;
      if (e.freq < cfg_.max_freq) ++e.freq;
      return e;
    }
    ++stats.misses;
    return std::nullopt;
  }

  void insert(graph::VertexId v, QueryKind kind, std::uint32_t k, double lcc,
              std::vector<Recommendation> topk) {
    if (slots_.empty()) return;
    const std::size_t base = bucket(v, kind) * cfg_.ways;
    for (std::size_t w = 0; w < cfg_.ways; ++w) {  // refresh in place
      ModelEntry& e = slots_[base + w];
      if (e.used && e.v == v && e.kind == kind) {
        e.k = k;
        e.stale = false;
        e.lcc = lcc;
        e.topk = std::move(topk);
        if (e.freq < cfg_.max_freq) ++e.freq;
        ++stats.updates;
        return;
      }
    }
    for (std::size_t w = 0; w < cfg_.ways; ++w) {  // empty-or-stale slot
      ModelEntry& e = slots_[base + w];
      if (e.used && !e.stale) continue;
      e = ModelEntry{true, false, v, kind, k, 1, lcc, std::move(topk)};
      ++stats.inserts;
      return;
    }
    std::size_t victim = 0;  // full bucket: min freq, lowest index on ties
    for (std::size_t w = 1; w < cfg_.ways; ++w)
      if (slots_[base + w].freq < slots_[base + victim].freq) victim = w;
    ModelEntry& ve = slots_[base + victim];
    if (ve.freq > 0) {
      --ve.freq;
      ++stats.decrements;
      ++stats.rejects;
      return;
    }
    ve = ModelEntry{true, false, v, kind, k, 1, lcc, std::move(topk)};
    ++stats.evictions;
    ++stats.inserts;
  }

  void invalidate(std::span<const graph::VertexId> vs) {
    for (ModelEntry& e : slots_) {
      if (!e.used || e.stale) continue;
      if (std::binary_search(vs.begin(), vs.end(), e.v)) {
        e.stale = true;
        ++stats.invalidated;
      }
    }
  }

  std::size_t live() const {
    std::size_t n = 0;
    for (const ModelEntry& e : slots_)
      if (e.used && !e.stale) ++n;
    return n;
  }

  HotCacheStats stats;

 private:
  HotCacheConfig cfg_;
  std::size_t buckets_ = 0;
  std::vector<ModelEntry> slots_;
};

void expect_stats_eq(const HotCacheStats& a, const HotCacheStats& b) {
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.stale_misses, b.stale_misses);
  EXPECT_EQ(a.short_misses, b.short_misses);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.decrements, b.decrements);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.invalidated, b.invalidated);
}

TEST(HotCacheFuzz, MatchesModelOver10kSeededSequences) {
  const std::uint64_t base = serve_seed();
  constexpr std::size_t kSequences = 10'500;
  constexpr std::size_t kOpsPerSeq = 28;
  constexpr graph::VertexId kVertexSpace = 24;  // small: forced collisions

  for (std::size_t s = 0; s < kSequences; ++s) {
    util::Xoshiro256 rng(util::mix64(base, 0xf002 + s));
    HotCacheConfig cfg;
    cfg.entries = rng.next_below(17);  // 0 (disabled) .. 16
    cfg.ways = 1 + rng.next_below(5);
    cfg.max_freq = 1 + static_cast<std::int32_t>(rng.next_below(6));
    HotVertexCache cache(cfg);
    ModelCache model(cfg);
    std::uint32_t epoch = 0;

    for (std::size_t op = 0; op < kOpsPerSeq; ++op) {
      const auto v = static_cast<graph::VertexId>(rng.next_below(kVertexSpace));
      const auto kind = static_cast<QueryKind>(rng.next_below(3));
      const auto k = static_cast<std::uint32_t>(1 + rng.next_below(4));
      const std::uint64_t dice = rng.next_below(100);
      if (dice < 55) {  // probe
        const auto got = cache.probe(v, kind, k);
        const auto want = model.probe(v, kind, k);
        ASSERT_EQ(got.hit, want.has_value()) << "seq " << s << " op " << op;
        if (got.hit) {
          if (kind == QueryKind::Lcc) {
            expect_bits_eq(got.lcc, want->lcc, "memoized lcc");
          } else {
            const std::size_t depth =
                std::min<std::size_t>(want->topk.size(), k);
            ASSERT_EQ(got.topk.size(), depth);
            for (std::size_t i = 0; i < depth; ++i)
              EXPECT_EQ(got.topk[i], want->topk[i]);
          }
        }
      } else if (dice < 85) {  // insert
        if (kind == QueryKind::Lcc) {
          const double lcc = static_cast<double>(rng.next_below(1000)) / 999.0;
          cache.insert_lcc(v, lcc);
          model.insert(v, QueryKind::Lcc, 0, lcc, {});
        } else {
          std::vector<Recommendation> topk;
          for (std::uint32_t i = 0; i < k; ++i)
            topk.push_back({static_cast<graph::VertexId>(rng.next_below(64)),
                            static_cast<double>(k - i)});
          cache.insert_topk(v, kind, k, topk);
          model.insert(v, kind, k, 0.0, std::move(topk));
        }
      } else if (dice < 95) {  // batch invalidation over a sorted set
        std::vector<graph::VertexId> vs;
        const std::size_t n = 1 + rng.next_below(4);
        for (std::size_t i = 0; i < n; ++i)
          vs.push_back(static_cast<graph::VertexId>(
              rng.next_below(kVertexSpace)));
        std::sort(vs.begin(), vs.end());
        vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
        cache.invalidate(vs);
        model.invalidate(vs);
      } else {  // epoch bump
        cache.begin_epoch(++epoch);
      }
    }
    ASSERT_EQ(cache.live_entries(), model.live());
    expect_stats_eq(cache.stats(), model.stats);
    if (HasFailure()) {
      std::printf("[serve] fuzz failure in sequence %zu\n", s);
      return;
    }
  }
}

TEST(HotCacheFuzz, FrequencyDecrementProtectsHotEntry) {
  // The IdxCache property in isolation: a bucket-filling hot entry takes
  // freq+1 cold inserts to displace, and the displacement is deterministic.
  HotCacheConfig cfg;
  cfg.entries = 1;  // one bucket, one way: every key collides
  cfg.ways = 1;
  HotVertexCache cache(cfg);
  cache.insert_lcc(1, 0.5);
  for (int i = 0; i < 3; ++i) (void)cache.probe(1, QueryKind::Lcc, 0);
  // freq(v1) = 1 insert + 3 hits = 4: four cold inserts only decrement
  // (each probe-free, so nothing re-heats the victim)...
  for (graph::VertexId v = 10; v < 14; ++v) cache.insert_lcc(v, 0.1);
  EXPECT_EQ(cache.stats().decrements, 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // ...and the fifth finally displaces the zero-frequency victim.
  cache.insert_lcc(14, 0.1);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.probe(1, QueryKind::Lcc, 0).hit);
  EXPECT_TRUE(cache.probe(14, QueryKind::Lcc, 0).hit);
}

// ------------------------------------- 3. admission determinism ---------

/// Byte-serialize everything that must be rank-count-invariant: identity,
/// admission verdict and the full answer payload (doubles as raw bits).
/// Virtual times are NOT included — queueing differs across rank counts.
std::string answer_fingerprint(const ServeResult& res) {
  std::string out;
  auto put = [&out](const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  for (const QueryAnswer& a : res.answers) {
    put(&a.id, sizeof a.id);
    put(&a.kind, sizeof a.kind);
    put(&a.v, sizeof a.v);
    put(&a.k, sizeof a.k);
    put(&a.epoch, sizeof a.epoch);
    put(&a.rejected, sizeof a.rejected);
    put(&a.lcc, sizeof a.lcc);
    const std::uint64_t nk = a.topk.size();
    put(&nk, sizeof nk);
    for (const Recommendation& r : a.topk) {
      put(&r.v, sizeof r.v);
      put(&r.score, sizeof r.score);
    }
  }
  for (const EpochOutcome& e : res.epochs) {
    put(&e.submitted, sizeof e.submitted);
    put(&e.accepted, sizeof e.accepted);
    put(&e.rejected, sizeof e.rejected);
    put(&e.effective_insertions, sizeof e.effective_insertions);
    put(&e.effective_deletions, sizeof e.effective_deletions);
  }
  return out;
}

TEST(ServeAdmission, ByteIdenticalVerdictsAtEveryRankCount) {
  const CSRGraph g = rmat_graph(8, 8, 31 + serve_seed());
  QueryWorkloadConfig wc;
  wc.num_epochs = 3;
  wc.queries_per_epoch = 48;
  wc.batch_size = 24;
  wc.seed = serve_seed() + 7;
  const auto epochs = generate_query_stream(g, wc);

  ServeOptions opts;
  opts.admission_capacity = 20;  // overflow: 28 rejections per epoch
  opts.hot_cache.entries = 32;

  std::string first;
  for (const std::uint32_t ranks : kRankCounts) {
    SCOPED_TRACE(::testing::Message() << "ranks=" << ranks);
    const ServeResult res = run_query_stream(g, epochs, ranks, opts);
    EXPECT_EQ(res.stats.submitted, 3u * 48u);
    EXPECT_EQ(res.stats.rejected, 3u * 28u);
    EXPECT_EQ(res.stats.answered, 3u * 20u);
    for (const EpochOutcome& e : res.epochs) {
      EXPECT_EQ(e.accepted, 20u);
      EXPECT_EQ(e.rejected, 28u);
    }
    const std::string fp = answer_fingerprint(res);
    if (first.empty())
      first = fp;
    else
      EXPECT_EQ(fp, first) << "accept/reject or payload drifted with ranks";
  }

  // Same seed, same rank count, run twice: the whole result (virtual
  // latencies included) must reproduce exactly.
  const ServeResult a = run_query_stream(g, epochs, 4, opts);
  const ServeResult b = run_query_stream(g, epochs, 4, opts);
  ASSERT_EQ(a.stats.latencies.size(), b.stats.latencies.size());
  for (std::size_t i = 0; i < a.stats.latencies.size(); ++i)
    expect_bits_eq(a.stats.latencies[i], b.stats.latencies[i], "latency");
  EXPECT_EQ(answer_fingerprint(a), answer_fingerprint(b));
}

TEST(ServeAdmission, ZeroCapacityRejectsQueriesButAppliesUpdates) {
  const CSRGraph g = paper_example();
  QueryWorkloadConfig wc;
  wc.num_epochs = 2;
  wc.queries_per_epoch = 8;
  wc.batch_size = 6;
  wc.seed = serve_seed() + 9;
  const auto epochs = generate_query_stream(g, wc);

  ServeOptions open;
  ServeOptions closed;
  closed.admission_capacity = 0;
  const ServeResult ref = run_query_stream(g, epochs, 2, open);
  const ServeResult res = run_query_stream(g, epochs, 2, closed);

  EXPECT_EQ(res.stats.answered, 0u);
  EXPECT_EQ(res.stats.rejected, res.stats.submitted);
  EXPECT_TRUE(res.stats.latencies.empty());
  for (const QueryAnswer& a : res.answers) {
    EXPECT_TRUE(a.rejected);
    EXPECT_TRUE(a.topk.empty());
  }
  // The update side is unaffected by the closed queue: every epoch applies
  // the same effective batch as the open-door run.
  ASSERT_EQ(res.epochs.size(), ref.epochs.size());
  for (std::size_t e = 0; e < res.epochs.size(); ++e) {
    EXPECT_EQ(res.epochs[e].effective_insertions,
              ref.epochs[e].effective_insertions);
    EXPECT_EQ(res.epochs[e].effective_deletions,
              ref.epochs[e].effective_deletions);
    EXPECT_EQ(res.epochs[e].rows_rebuilt, ref.epochs[e].rows_rebuilt);
  }
}

TEST(ServeAdmission, CapacityAtLeastStreamNeverRejects) {
  const CSRGraph g = paper_example();
  QueryWorkloadConfig wc;
  wc.num_epochs = 2;
  wc.queries_per_epoch = 16;
  wc.seed = serve_seed() + 11;
  const auto epochs = generate_query_stream(g, wc);
  ServeOptions opts;
  opts.admission_capacity = 16;  // exactly the epoch arrival count
  const ServeResult res = run_query_stream(g, epochs, 2, opts);
  EXPECT_EQ(res.stats.rejected, 0u);
  EXPECT_EQ(res.stats.answered, res.stats.submitted);
}

// -------------------------------------------- workload generator --------

TEST(ServeWorkload, ZipfSkewConcentratesTraffic) {
  const CSRGraph g = rmat_graph(8, 8, 41);
  QueryWorkloadConfig wc;
  wc.num_epochs = 1;
  wc.queries_per_epoch = 4000;
  wc.zipf_skew = 1.2;
  wc.batch_size = 0;
  wc.seed = serve_seed();
  const auto epochs = generate_query_stream(g, wc);
  std::map<graph::VertexId, std::size_t> freq;
  for (const Query& q : epochs[0].queries) ++freq[q.v];
  std::size_t max_freq = 0;
  for (const auto& [v, n] : freq) max_freq = std::max(max_freq, n);
  // Zipf s=1.2 over 256 vertices: the head takes a large multiple of the
  // uniform share (4000/256 ≈ 16).
  EXPECT_GT(max_freq, 200u);

  // Uniform (s=0) traffic does not.
  wc.zipf_skew = 0.0;
  const auto uni = generate_query_stream(g, wc);
  freq.clear();
  for (const Query& q : uni[0].queries) ++freq[q.v];
  max_freq = 0;
  for (const auto& [v, n] : freq) max_freq = std::max(max_freq, n);
  EXPECT_LT(max_freq, 60u);
}

TEST(ServeWorkload, DeterministicFunctionOfSeed) {
  const CSRGraph g = paper_example();
  QueryWorkloadConfig wc;
  wc.num_epochs = 2;
  wc.queries_per_epoch = 32;
  wc.seed = serve_seed();
  const auto a = generate_query_stream(g, wc);
  const auto b = generate_query_stream(g, wc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a[e].queries.size(), b[e].queries.size());
    for (std::size_t i = 0; i < a[e].queries.size(); ++i) {
      EXPECT_EQ(a[e].queries[i].kind, b[e].queries[i].kind);
      EXPECT_EQ(a[e].queries[i].v, b[e].queries[i].v);
    }
    EXPECT_EQ(a[e].updates, b[e].updates);
  }
  wc.seed = serve_seed() + 1;
  const auto c = generate_query_stream(g, wc);
  bool differs = false;
  for (std::size_t i = 0; i < c[0].queries.size() && !differs; ++i)
    differs = c[0].queries[i].v != a[0].queries[i].v;
  EXPECT_TRUE(differs) << "seed does not rotate the stream";
}

}  // namespace
}  // namespace atlc::serve
