// Unit tests for atlc::util — statistics, RNG, recorder, CLI, table.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "atlc/util/cli.hpp"
#include "atlc/util/recorder.hpp"
#include "atlc/util/rng.hpp"
#include "atlc/util/stats.hpp"
#include "atlc/util/table.hpp"
#include "atlc/util/timer.hpp"

namespace atlc::util {
namespace {

// ---------------------------------------------------------------- stats ---

TEST(Stats, MedianOdd) {
  const std::vector<double> s{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(s), 2.0);
}

TEST(Stats, MedianEven) {
  const std::vector<double> s{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(s), 2.5);
}

TEST(Stats, MedianSingle) {
  const std::vector<double> s{42.0};
  EXPECT_DOUBLE_EQ(median(s), 42.0);
}

TEST(Stats, MedianThrowsOnEmpty) {
  EXPECT_THROW((void)median({}), std::invalid_argument);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary sum = summarize(s);
  EXPECT_EQ(sum.n, 5u);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 5.0);
  EXPECT_DOUBLE_EQ(sum.mean, 3.0);
  EXPECT_DOUBLE_EQ(sum.median, 3.0);
  EXPECT_NEAR(sum.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> s{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 25.0);
}

TEST(Stats, PercentileRejectsBadP) {
  const std::vector<double> s{1.0};
  EXPECT_THROW((void)percentile(s, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(s, 101.0), std::invalid_argument);
}

TEST(Stats, CiCoversMedianForStableSample) {
  std::vector<double> s(100, 5.0);
  const Summary sum = summarize(s);
  EXPECT_LE(sum.ci95_lo, sum.median);
  EXPECT_GE(sum.ci95_hi, sum.median);
  EXPECT_TRUE(sum.ci_within_fraction_of_median(0.05));
}

TEST(Stats, CiWideForNoisySample) {
  // Alternate tiny/huge values: the median CI cannot be tight.
  std::vector<double> s;
  for (int i = 0; i < 20; ++i) s.push_back(i % 2 ? 1.0 : 100.0);
  const Summary sum = summarize(s);
  EXPECT_FALSE(sum.ci_within_fraction_of_median(0.05));
}

TEST(Stats, HistogramCountsAllSamples) {
  const std::vector<double> s{0.0, 0.1, 0.5, 0.9, 1.0};
  const Histogram h = histogram(s, 2);
  std::size_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, s.size());
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 1.0);
}

TEST(Stats, HistogramMaxValueInLastBucket) {
  const std::vector<double> s{0.0, 1.0};
  const Histogram h = histogram(s, 4);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(1);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.next_below(8)];
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Xoshiro256 rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1), mix64(2));
}

// ------------------------------------------------------------- recorder ---

TEST(Recorder, StopsAfterConvergence) {
  Recorder rec({.min_reps = 5, .max_reps = 50, .ci_fraction = 0.5});
  const Summary s = rec.run_until_ci([] {});
  EXPECT_GE(s.n, 5u);
  EXPECT_LE(s.n, 50u);
}

TEST(Recorder, HonorsMaxReps) {
  // A deliberately noisy target can never converge; the cap must bite.
  Recorder rec({.min_reps = 3, .max_reps = 7, .ci_fraction = 1e-9});
  int calls = 0;
  (void)rec.run_until_ci([&] {
    volatile double x = 0;
    for (int i = 0; i < (calls % 2 ? 100000 : 10); ++i) x += i;
    ++calls;
  });
  EXPECT_EQ(rec.samples().size(), 7u);
}

TEST(Recorder, ExternalSamples) {
  Recorder rec({.min_reps = 3, .max_reps = 10, .ci_fraction = 0.05});
  for (int i = 0; i < 8; ++i) rec.add_sample(1.0);
  EXPECT_TRUE(rec.converged());
  EXPECT_DOUBLE_EQ(rec.summary().median, 1.0);
}

// ------------------------------------------------------------------ cli ---

TEST(Cli, DefaultsSurviveEmptyArgv) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 42);
  cli.add_flag("verbose", "chatty", false);
  cli.add_double("x", "factor", 1.5);
  cli.add_string("name", "label", "abc");
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 1.5);
  EXPECT_EQ(cli.get_string("name"), "abc");
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 0);
  cli.add_string("s", "str", "");
  char a0[] = "prog", a1[] = "--n=7", a2[] = "--s", a3[] = "hello";
  char* argv[] = {a0, a1, a2, a3};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("n"), 7);
  EXPECT_EQ(cli.get_string("s"), "hello");
}

TEST(Cli, BareFlagSetsTrue) {
  Cli cli("prog", "test");
  cli.add_flag("fast", "speedy", false);
  char a0[] = "prog", a1[] = "--fast";
  char* argv[] = {a0, a1};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_flag("fast"));
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli("prog", "test");
  char a0[] = "prog", a1[] = "--bogus=1";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("prog", "test");
  char a0[] = "prog", a1[] = "--help";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ThrowsOnUnregisteredLookup) {
  Cli cli("prog", "test");
  EXPECT_THROW((void)cli.get_int("nope"), std::logic_error);
}

// ---------------------------------------------------------------- table ---

TEST(Table, RendersHeaderAndRows) {
  Table t({"graph", "time"});
  t.add_row({"orkut", "1.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("graph"), std::string::npos);
  EXPECT_NE(s.find("orkut"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(12345), "12345");
  EXPECT_EQ(Table::fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(Table::fmt_percent(0.5, 0), "50%");
}

// ---------------------------------------------------------------- timer ---

TEST(Timer, MeasuresSomethingPositive) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 10000; ++i) x += i;
  EXPECT_GT(t.elapsed_ns(), 0u);
  EXPECT_GE(t.elapsed_us(), 0.0);
}

}  // namespace
}  // namespace atlc::util
