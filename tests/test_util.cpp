// Unit tests for atlc::util — statistics, RNG, recorder, CLI, table.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "atlc/util/cli.hpp"
#include "atlc/util/recorder.hpp"
#include "atlc/util/rng.hpp"
#include "atlc/util/stats.hpp"
#include "atlc/util/table.hpp"
#include "atlc/util/timer.hpp"

namespace atlc::util {
namespace {

// ---------------------------------------------------------------- stats ---

TEST(Stats, MedianOdd) {
  const std::vector<double> s{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(s), 2.0);
}

TEST(Stats, MedianEven) {
  const std::vector<double> s{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(s), 2.5);
}

TEST(Stats, MedianSingle) {
  const std::vector<double> s{42.0};
  EXPECT_DOUBLE_EQ(median(s), 42.0);
}

TEST(Stats, MedianThrowsOnEmpty) {
  EXPECT_THROW((void)median({}), std::invalid_argument);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary sum = summarize(s);
  EXPECT_EQ(sum.n, 5u);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 5.0);
  EXPECT_DOUBLE_EQ(sum.mean, 3.0);
  EXPECT_DOUBLE_EQ(sum.median, 3.0);
  EXPECT_NEAR(sum.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> s{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 25.0);
}

TEST(Stats, PercentileRejectsBadP) {
  const std::vector<double> s{1.0};
  EXPECT_THROW((void)percentile(s, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(s, 101.0), std::invalid_argument);
}

TEST(Stats, QuantileFunctionsRejectEmptySample) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)median_ci95({}), std::invalid_argument);
  EXPECT_THROW((void)summarize({}), std::invalid_argument);
}

TEST(Stats, PercentileSingleElementIsConstant) {
  const std::vector<double> s{7.5};
  for (double p : {0.0, 25.0, 50.0, 99.9, 100.0})
    EXPECT_DOUBLE_EQ(percentile(s, p), 7.5) << "p=" << p;
}

TEST(Stats, MedianCiSmallSampleSpansRange) {
  // Fewer than 6 samples: the order-statistic bounds degrade to [min, max].
  const std::vector<double> s{3.0, 1.0, 2.0};
  const auto [lo, hi] = median_ci95(s);
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 3.0);
}

TEST(Stats, SummarySingleElement) {
  const Summary sum = summarize(std::vector<double>{4.0});
  EXPECT_EQ(sum.n, 1u);
  EXPECT_DOUBLE_EQ(sum.median, 4.0);
  EXPECT_DOUBLE_EQ(sum.stddev, 0.0);
  EXPECT_DOUBLE_EQ(sum.ci95_lo, 4.0);
  EXPECT_DOUBLE_EQ(sum.ci95_hi, 4.0);
}

TEST(Stats, HistogramRejectsEmptyOrZeroBins) {
  EXPECT_THROW((void)histogram({}, 4), std::invalid_argument);
  EXPECT_THROW((void)histogram(std::vector<double>{1.0}, 0),
               std::invalid_argument);
}

TEST(Stats, HistogramConstantSampleFillsFirstBucket) {
  const std::vector<double> s{2.0, 2.0, 2.0};
  const Histogram h = histogram(s, 4);
  EXPECT_EQ(h.counts[0], 3u);
  for (std::size_t b = 1; b < h.counts.size(); ++b) EXPECT_EQ(h.counts[b], 0u);
}

TEST(Stats, CiCoversMedianForStableSample) {
  std::vector<double> s(100, 5.0);
  const Summary sum = summarize(s);
  EXPECT_LE(sum.ci95_lo, sum.median);
  EXPECT_GE(sum.ci95_hi, sum.median);
  EXPECT_TRUE(sum.ci_within_fraction_of_median(0.05));
}

TEST(Stats, CiWideForNoisySample) {
  // Alternate tiny/huge values: the median CI cannot be tight.
  std::vector<double> s;
  for (int i = 0; i < 20; ++i) s.push_back(i % 2 ? 1.0 : 100.0);
  const Summary sum = summarize(s);
  EXPECT_FALSE(sum.ci_within_fraction_of_median(0.05));
}

TEST(Stats, HistogramCountsAllSamples) {
  const std::vector<double> s{0.0, 0.1, 0.5, 0.9, 1.0};
  const Histogram h = histogram(s, 2);
  std::size_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, s.size());
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 1.0);
}

TEST(Stats, HistogramMaxValueInLastBucket) {
  const std::vector<double> s{0.0, 1.0};
  const Histogram h = histogram(s, 4);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
}

TEST(Stats, LogHistogramRejectsBadRangeOrZeroBins) {
  EXPECT_THROW((void)LogHistogram::make(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)LogHistogram::make(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)LogHistogram::make(1.0, 2.0, 0), std::invalid_argument);
}

TEST(Stats, LogHistogramEmptySampleSerializable) {
  // Empty sample: zero-count buckets over [1, 2) so callers can serialize
  // unconditionally.
  const LogHistogram h = log_histogram({}, 4);
  EXPECT_DOUBLE_EQ(h.lo, 1.0);
  EXPECT_DOUBLE_EQ(h.hi, 2.0);
  EXPECT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.underflow, 0u);
  EXPECT_EQ(h.overflow, 0u);
}

TEST(Stats, LogHistogramSingleElement) {
  // A single positive value must land in a bucket, not over/underflow,
  // even though min == max degenerates the range.
  const std::vector<double> s{3.5};
  const LogHistogram h = log_histogram(s, 8);
  EXPECT_EQ(h.underflow, 0u);
  EXPECT_EQ(h.overflow, 0u);
  std::size_t in_buckets = 0;
  for (auto c : h.counts) in_buckets += c;
  EXPECT_EQ(in_buckets, 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Stats, LogHistogramOverflowUnderflowBuckets) {
  LogHistogram h = LogHistogram::make(1e-6, 1.0, 6);
  h.add(1e-9);   // below lo
  h.add(-3.0);   // non-positive
  h.add(5.0);    // >= hi
  h.add(1e-3);   // mid-range
  EXPECT_EQ(h.underflow, 2u);
  EXPECT_EQ(h.overflow, 1u);
  std::size_t in_buckets = 0;
  for (auto c : h.counts) in_buckets += c;
  EXPECT_EQ(in_buckets, 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, LogHistogramEdgesAreLogSpaced) {
  const LogHistogram h = LogHistogram::make(1.0, 1024.0, 10);
  // base = (1024/1)^(1/10) = 2: edges double every bucket.
  EXPECT_NEAR(h.base, 2.0, 1e-12);
  for (std::size_t i = 0; i + 1 <= 10; ++i)
    EXPECT_NEAR(h.edge(i), std::pow(2.0, static_cast<double>(i)), 1e-9);
  // Values route to the bucket whose [edge(i), edge(i+1)) contains them.
  LogHistogram g = h;
  g.add(1.0);
  g.add(3.0);
  g.add(1000.0);
  EXPECT_EQ(g.counts[0], 1u);
  EXPECT_EQ(g.counts[1], 1u);
  EXPECT_EQ(g.counts[9], 1u);
}

TEST(Stats, LogHistogramSpansSampleRange) {
  // The convenience builder keeps every positive sample inside the
  // buckets: max is nudged into the last bucket, not overflow.
  const std::vector<double> s{1e-6, 1e-4, 1e-2, 1.0};
  const LogHistogram h = log_histogram(s, 12);
  EXPECT_EQ(h.underflow, 0u);
  EXPECT_EQ(h.overflow, 0u);
  std::size_t in_buckets = 0;
  for (auto c : h.counts) in_buckets += c;
  EXPECT_EQ(in_buckets, s.size());
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(1);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.next_below(8)];
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Xoshiro256 rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1), mix64(2));
}

// ------------------------------------------------------------- recorder ---

TEST(Recorder, StopsAfterConvergence) {
  Recorder rec({.min_reps = 5, .max_reps = 50, .ci_fraction = 0.5});
  const Summary s = rec.run_until_ci([] {});
  EXPECT_GE(s.n, 5u);
  EXPECT_LE(s.n, 50u);
}

TEST(Recorder, HonorsMaxReps) {
  // A deliberately noisy target can never converge; the cap must bite.
  Recorder rec({.min_reps = 3, .max_reps = 7, .ci_fraction = 1e-9});
  int calls = 0;
  (void)rec.run_until_ci([&] {
    volatile double x = 0;
    for (int i = 0; i < (calls % 2 ? 100000 : 10); ++i) x += i;
    ++calls;
  });
  EXPECT_EQ(rec.samples().size(), 7u);
}

TEST(Recorder, NotConvergedBeforeMinReps) {
  Recorder rec({.min_reps = 5, .max_reps = 10, .ci_fraction = 0.5});
  rec.add_sample(1.0);
  rec.add_sample(1.0);
  EXPECT_FALSE(rec.converged());
}

TEST(Recorder, ClearResetsSamples) {
  Recorder rec;
  rec.add_sample(1.0);
  rec.clear();
  EXPECT_TRUE(rec.samples().empty());
  EXPECT_THROW((void)rec.summary(), std::invalid_argument);
}

TEST(Recorder, ExternalSamples) {
  Recorder rec({.min_reps = 3, .max_reps = 10, .ci_fraction = 0.05});
  for (int i = 0; i < 8; ++i) rec.add_sample(1.0);
  EXPECT_TRUE(rec.converged());
  EXPECT_DOUBLE_EQ(rec.summary().median, 1.0);
}

// ------------------------------------------------------------------ cli ---

TEST(Cli, DefaultsSurviveEmptyArgv) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 42);
  cli.add_flag("verbose", "chatty", false);
  cli.add_double("x", "factor", 1.5);
  cli.add_string("name", "label", "abc");
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 1.5);
  EXPECT_EQ(cli.get_string("name"), "abc");
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 0);
  cli.add_string("s", "str", "");
  char a0[] = "prog", a1[] = "--n=7", a2[] = "--s", a3[] = "hello";
  char* argv[] = {a0, a1, a2, a3};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("n"), 7);
  EXPECT_EQ(cli.get_string("s"), "hello");
}

TEST(Cli, BareFlagSetsTrue) {
  Cli cli("prog", "test");
  cli.add_flag("fast", "speedy", false);
  char a0[] = "prog", a1[] = "--fast";
  char* argv[] = {a0, a1};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_flag("fast"));
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli("prog", "test");
  char a0[] = "prog", a1[] = "--bogus=1";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("prog", "test");
  char a0[] = "prog", a1[] = "--help";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ThrowsOnUnregisteredLookup) {
  Cli cli("prog", "test");
  EXPECT_THROW((void)cli.get_int("nope"), std::logic_error);
}

TEST(Cli, RejectsMissingValueAtEndOfArgv) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 0);
  char a0[] = "prog", a1[] = "--n";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RejectsPositionalArgument) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 0);
  char a0[] = "prog", a1[] = "stray";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ShortHelpAlsoReturnsFalse) {
  Cli cli("prog", "test");
  char a0[] = "prog", a1[] = "-h";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ThrowsOnWrongTypeLookup) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 1);
  EXPECT_THROW((void)cli.get_flag("n"), std::logic_error);
  EXPECT_THROW((void)cli.get_string("n"), std::logic_error);
}

TEST(Cli, FlagAcceptsExplicitFalse) {
  Cli cli("prog", "test");
  cli.add_flag("fast", "speedy", true);
  char a0[] = "prog", a1[] = "--fast=0";
  char* argv[] = {a0, a1};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_flag("fast"));
}

TEST(Cli, LaterFlagWins) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 0);
  char a0[] = "prog", a1[] = "--n=1", a2[] = "--n=2";
  char* argv[] = {a0, a1, a2};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("n"), 2);
}

TEST(Cli, NegativeIntAndDoubleValues) {
  Cli cli("prog", "test");
  cli.add_int("n", "count", 0);
  cli.add_double("x", "factor", 0.0);
  char a0[] = "prog", a1[] = "--n=-12", a2[] = "--x=-0.25";
  char* argv[] = {a0, a1, a2};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("n"), -12);
  EXPECT_DOUBLE_EQ(cli.get_double("x"), -0.25);
}

// ---------------------------------------------------------------- table ---

TEST(Table, RendersHeaderAndRows) {
  Table t({"graph", "time"});
  t.add_row({"orkut", "1.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("graph"), std::string::npos);
  EXPECT_NE(s.find("orkut"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(12345), "12345");
  EXPECT_EQ(Table::fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(Table::fmt_percent(0.5, 0), "50%");
}

TEST(Table, FmtBytesUnitBoundaries) {
  EXPECT_EQ(Table::fmt_bytes(0), "0.0 B");
  EXPECT_EQ(Table::fmt_bytes(1023), "1023.0 B");
  EXPECT_EQ(Table::fmt_bytes(1024), "1.0 KiB");
  EXPECT_EQ(Table::fmt_bytes(1ull << 20), "1.0 MiB");
  EXPECT_EQ(Table::fmt_bytes(1ull << 30), "1.0 GiB");
  EXPECT_EQ(Table::fmt_bytes(1ull << 40), "1.0 TiB");
  // No PiB unit: huge values stay in TiB rather than indexing off the end.
  EXPECT_EQ(Table::fmt_bytes(1ull << 50), "1024.0 TiB");
}

/// Split a rendered table line "| a  | b |" back into trimmed cells.
std::vector<std::string> parse_table_row(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t pos = line.find('|');
  while (pos != std::string::npos) {
    const std::size_t next = line.find('|', pos + 1);
    if (next == std::string::npos) break;
    std::string cell = line.substr(pos + 1, next - pos - 1);
    const auto first = cell.find_first_not_of(' ');
    if (first == std::string::npos) {
      cells.emplace_back();
    } else {
      cells.push_back(cell.substr(first, cell.find_last_not_of(' ') - first + 1));
    }
    pos = next;
  }
  return cells;
}

TEST(Table, RenderedCellsRoundTrip) {
  // Formatted values survive the render: parsing the aligned text back
  // yields exactly the strings that were added.
  const std::vector<std::string> header{"graph", "bytes", "hit"};
  const std::vector<std::vector<std::string>> rows{
      {"orkut", Table::fmt_bytes(3ull << 20), Table::fmt_percent(0.875, 1)},
      {"rmat-22", Table::fmt_int(1u << 22), Table::fmt(0.333333, 3)},
  };
  Table t(header);
  for (const auto& r : rows) t.add_row(r);

  std::vector<std::vector<std::string>> parsed;
  std::istringstream in(t.to_string());
  for (std::string line; std::getline(in, line);)
    if (!line.empty() && line.front() == '|') parsed.push_back(parse_table_row(line));

  ASSERT_EQ(parsed.size(), 1 + rows.size());
  EXPECT_EQ(parsed[0], header);
  for (std::size_t r = 0; r < rows.size(); ++r) EXPECT_EQ(parsed[r + 1], rows[r]);
}

// ---------------------------------------------------------------- timer ---

TEST(Timer, MeasuresSomethingPositive) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 10000; ++i) x += i;
  EXPECT_GT(t.elapsed_ns(), 0u);
  EXPECT_GE(t.elapsed_us(), 0.0);
}

}  // namespace
}  // namespace atlc::util
