#pragma once

#include <cstdint>
#include <span>

#include "atlc/intersect/intersect.hpp"

namespace atlc::intersect {

/// OpenMP-parallel intersection (paper Section III-C).
///
/// Work split follows the paper: for the binary-search kernel the *shorter*
/// (keys) list is chunked across threads; for SSI the *longer* list is
/// chunked and every thread intersects its chunk against the full shorter
/// list. Because both lists are strictly sorted, each common element lies in
/// exactly one chunk of the partitioned list, so chunk counts sum exactly.
///
/// `cutoff`: below this combined length the sequential kernel runs instead —
/// "a too-small parallel region would limit performance" (Section III-C).
struct ParallelConfig {
  int num_threads = 0;        ///< 0 = OpenMP default
  std::size_t cutoff = 4096;  ///< sequential below |A|+|B| < cutoff
};

[[nodiscard]] std::uint64_t count_binary_parallel(std::span<const VertexId> a,
                                                  std::span<const VertexId> b,
                                                  const ParallelConfig& cfg = {});

[[nodiscard]] std::uint64_t count_ssi_parallel(std::span<const VertexId> a,
                                               std::span<const VertexId> b,
                                               const ParallelConfig& cfg = {});

/// Hybrid rule (Eq. 3) on top of the parallel kernels.
[[nodiscard]] std::uint64_t count_hybrid_parallel(std::span<const VertexId> a,
                                                  std::span<const VertexId> b,
                                                  const ParallelConfig& cfg = {});

[[nodiscard]] std::uint64_t count_common_parallel(std::span<const VertexId> a,
                                                  std::span<const VertexId> b,
                                                  Method m,
                                                  const ParallelConfig& cfg = {});

}  // namespace atlc::intersect
