#pragma once

#include <cstddef>

#include "atlc/intersect/intersect.hpp"

namespace atlc::intersect {

/// Analytic cost model of the intersection kernels, used by the distributed
/// engine to charge *compute* time to a rank's virtual clock.
///
/// Rationale: the simulation oversubscribes CPU cores when running many
/// ranks (e.g. 512 ranks on 2 cores), so measuring kernel wall time per edge
/// would be polluted by descheduling, and CLOCK_THREAD_CPUTIME_ID costs a
/// syscall per edge. Charging `c0 + c1 * work` with constants calibrated
/// once against the real kernels keeps per-rank virtual time deterministic,
/// oversubscription-proof, and faithful in shape (the paper's key ratio —
/// communication dominating computation at scale — is preserved, and
/// Section IV-D2 notes computation details have "minor effects on overall
/// performance" in the distributed regime).
struct CostModel {
  double per_call_ns = 12.0;          ///< loop/setup overhead per edge
  double ssi_ns_per_elem = 0.9;       ///< per element of |A| + |B|
  double binary_ns_per_probe = 3.5;   ///< per key * log2(|B|) probe step

  /// Per-tier terms of the Tiered kernel generation (tiered.hpp). These
  /// enter a rank's virtual clock ONLY when EngineConfig::intersect_tier is
  /// Tier::Tiered — the Paper tier never reads them, which is what keeps
  /// every pre-existing virtual-time smoke baseline bit-identical under the
  /// default configuration (DESIGN.md §9).
  double merge_ns_per_elem = 0.45;      ///< MergeVec, per element of |A|+|B|
  double gallop_ns_per_probe = 2.2;     ///< per key * log2(|long|/|short|)
  double bitmap_ns_per_probe = 0.35;    ///< per probed element (word-batched)
  double bitmap_build_ns_per_elem = 1.1;  ///< per row element, once per build

  /// Predicted seconds for one |a ∩ b| with the given method. `Hybrid`
  /// prices whichever kernel the Eq. (3) rule would pick.
  [[nodiscard]] double seconds(Method m, std::size_t len_a,
                               std::size_t len_b) const;

  /// Predicted seconds for `keys` independent binary probes into a sorted
  /// list of `tree` elements. Unlike seconds(), no argument swap happens:
  /// this prices exactly that loop (TriC verifies each candidate closing
  /// edge with its own search, even when candidates outnumber the list).
  [[nodiscard]] double seconds_probes(std::size_t keys,
                                      std::size_t tree) const;

  /// Predicted seconds for one tiered intersection of a `row_len` row with
  /// an `other_len` list using kernel `k` (excludes the bitmap build, which
  /// amortises across a row's edges — price it via seconds_bitmap_build
  /// once per rebuild).
  [[nodiscard]] double seconds_tiered(TierKernel k, std::size_t row_len,
                                      std::size_t other_len) const;

  /// Predicted seconds to (re)build a RowBitmap from a `row_len` row.
  [[nodiscard]] double seconds_bitmap_build(std::size_t row_len) const;

  /// Measure the real kernels on this host (one-time, ~10 ms) and return a
  /// fitted model — the paper pair and the tiered generation. Benches call
  /// this once; tests/defaults use the static constants above.
  [[nodiscard]] static CostModel calibrate();
};

}  // namespace atlc::intersect
