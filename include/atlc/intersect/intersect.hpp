#pragma once

#include <concepts>
#include <cstdint>
#include <span>

#include "atlc/graph/types.hpp"

namespace atlc::intersect {

using graph::VertexId;

/// Intersection kernel selector (paper Section II-C / III-C).
enum class Method : std::uint8_t {
  Binary,  ///< Algorithm 1: binary-search each key of the shorter list
  SSI,     ///< Algorithm 2: sorted set intersection (two-pointer merge)
  Hybrid,  ///< per-pair choice via the Eq. (3) frontier rule
};

[[nodiscard]] const char* method_name(Method m);

/// Kernel generation serving local intersections. `Paper` is the scalar
/// binary/SSI/hybrid family above (the default: every virtual-time smoke
/// baseline is calibrated against it and stays bit-identical); `Tiered`
/// dispatches per list shape to the bitmap/galloping/branch-reduced-merge
/// kernels in tiered.hpp (DESIGN.md §9).
enum class Tier : std::uint8_t { Paper, Tiered };

[[nodiscard]] const char* tier_name(Tier t);

/// The concrete kernel the Tiered dispatch picked for one pair — also the
/// key the cost model prices tiered intersections under.
enum class TierKernel : std::uint8_t {
  MergeVec,  ///< branch-reduced quad-skip merge (the long-tail default)
  Gallop,    ///< galloping binary search (highly skewed pairs)
  Bitmap,    ///< dense row bitmap + word-AND popcount (hub rows)
};

[[nodiscard]] const char* tier_kernel_name(TierKernel k);

/// Shape thresholds of the Tiered dispatch (EngineConfig::tier_policy).
struct TierPolicy {
  /// Rows at least this long get a reusable dense bitmap ("hub rows"); the
  /// build cost amortises over the row's contiguous run of edges in the
  /// pipeline's edge stream (DESIGN.md §9).
  std::size_t bitmap_min_row = 256;
  /// Below the bitmap threshold, pairs with |long|/|short| at or above this
  /// ratio gallop; the rest take the branch-reduced merge.
  double gallop_ratio = 32.0;
};

/// The Tiered selection rule: Bitmap if `row_len` (the reusable side)
/// reaches `policy.bitmap_min_row`, else Gallop above the skew ratio, else
/// MergeVec.
[[nodiscard]] TierKernel select_tier_kernel(std::size_t row_len,
                                            std::size_t other_len,
                                            const TierPolicy& policy);

/// |a ∩ b| via binary search (paper Algorithm 1). Internally searches the
/// shorter list's elements in the longer list — "one should always assign
/// the longer list as the search tree and the shorter one as the array of
/// keys". Preconditions: both spans sorted ascending, no duplicates.
[[nodiscard]] std::uint64_t count_binary(std::span<const VertexId> a,
                                         std::span<const VertexId> b);

/// |a ∩ b| via sorted set intersection (paper Algorithm 2).
[[nodiscard]] std::uint64_t count_ssi(std::span<const VertexId> a,
                                      std::span<const VertexId> b);

/// Eq. (3): SSI is predicted faster than binary search iff
/// |B|/|A| <= log2(|B|) - 1, with |A| <= |B|.
[[nodiscard]] bool prefer_ssi(std::size_t len_a, std::size_t len_b);

/// |a ∩ b| choosing the kernel per Eq. (3) (paper hybrid method).
[[nodiscard]] std::uint64_t count_hybrid(std::span<const VertexId> a,
                                         std::span<const VertexId> b);

/// Dispatch on a runtime-selected method.
[[nodiscard]] std::uint64_t count_common(std::span<const VertexId> a,
                                         std::span<const VertexId> b,
                                         Method m = Method::Hybrid);

/// |{x in a ∩ b : x > floor}| — the upper-triangle restriction of paper
/// Section II-C that de-duplicates triangle enumeration: when processing
/// edge (i,j), only common neighbors k with k > j are counted.
[[nodiscard]] std::uint64_t count_common_above(std::span<const VertexId> a,
                                               std::span<const VertexId> b,
                                               VertexId floor,
                                               Method m = Method::Hybrid);

/// Trim `s` to the suffix with elements strictly greater than `floor`.
[[nodiscard]] std::span<const VertexId> suffix_above(
    std::span<const VertexId> s, VertexId floor);

/// Visit every element of a ∩ b in ascending order (two-pointer merge, the
/// SSI walk of paper Algorithm 2 with a visitor instead of a counter).
/// Kernels that need the common neighbors themselves — Adamic–Adar weights
/// each by its degree — use this; its virtual-time cost is charged as an
/// SSI intersection (CostModel::seconds(Method::SSI, |a|, |b|)) since it
/// performs exactly that merge. Preconditions: sorted, no duplicates.
template <typename F>
  requires std::invocable<F&, VertexId>
void for_each_common(std::span<const VertexId> a, std::span<const VertexId> b,
                     F&& visit) {
  std::size_t i = 0, k = 0;
  while (i < a.size() && k < b.size()) {
    if (a[i] < b[k]) {
      ++i;
    } else if (b[k] < a[i]) {
      ++k;
    } else {
      visit(a[i]);
      ++i;
      ++k;
    }
  }
}

}  // namespace atlc::intersect
