#pragma once

// The tiered intersection kernels (ROADMAP item 1, DESIGN.md §9): the
// production-grade alternatives to the paper's scalar binary/SSI family.
// Three kernels cover the list-shape spectrum the way engineered triangle
// counters do (Sanders & Uhl; RapidsAtHKUST, PAPERS.md):
//
//   - count_merge_vec: branch-reduced quad-skip merge for the long tail of
//     similar-length pairs (conditional-move stepping, 4-wide block skips);
//   - count_gallop: galloping (exponential + binary) search for highly
//     skewed pairs, O(|short| log(|long|/|short|));
//   - RowBitmap: a dense bitmap over the vertex universe built once per hub
//     row and probed word-at-a-time with popcount for every edge of that
//     row.
//
// TieredIntersector packages the per-pair dispatch (select_tier_kernel),
// the bitmap-reuse lifetime, and the virtual-time pricing behind one call.
// All kernels are exact — tests/test_intersect_diff.cpp cross-checks every
// tier against std::set_intersection over ~10k randomized pairs.

#include <cstdint>
#include <span>
#include <vector>

#include "atlc/intersect/cost_model.hpp"
#include "atlc/intersect/intersect.hpp"

namespace atlc::intersect {

/// |a ∩ b| via a branch-reduced merge: the two-pointer SSI walk with
/// conditional-increment stepping (compiles to setcc/cmov, no mispredicted
/// compare branch) plus a 4-wide block skip when one side's next quad lies
/// entirely below the other side's cursor. Preconditions: sorted ascending,
/// no duplicates.
[[nodiscard]] std::uint64_t count_merge_vec(std::span<const VertexId> a,
                                            std::span<const VertexId> b);

/// |a ∩ b| via galloping search: each key of the shorter list exponentially
/// advances a shared cursor in the longer list, then binary-searches the
/// bracketed window. Wins when one list dwarfs the other (hub vs leaf).
[[nodiscard]] std::uint64_t count_gallop(std::span<const VertexId> a,
                                         std::span<const VertexId> b);

/// Dense bitmap over the vertex universe [0, universe). Built from one
/// sorted adjacency row, then probed by sorted candidate lists: probes are
/// batched per 64-bit word (all candidates falling in one word OR into a
/// mask, resolved with a single AND + popcount), which exploits the
/// clustering sorted adjacencies exhibit. Rebuilding clears only the
/// previously set bits (O(previous row length), not O(universe)).
class RowBitmap {
 public:
  /// (Re)build for `row`. All ids in `row` — and every later probe — must
  /// be < `universe`. Keeps its own copy of the set positions, so `row`
  /// need not outlive the call.
  void build(std::span<const VertexId> row, VertexId universe);

  /// True iff the current contents were built from exactly this span
  /// (pointer + length identity). The engine's local adjacency rows are
  /// stable for a whole run, so span identity keys the per-row reuse. The
  /// `built_` flag guards the fresh-bitmap case: an empty span's data() is
  /// nullptr, which would otherwise match the default member state and let
  /// a caller probe a never-sized word array.
  [[nodiscard]] bool built_for(std::span<const VertexId> row) const {
    return built_ && row.data() == row_data_ && row.size() == row_size_;
  }

  [[nodiscard]] bool test(VertexId v) const {
    return (words_[v >> 6] >> (v & 63)) & 1u;
  }

  /// |row ∩ list| for a sorted, duplicate-free `list` (word-batched
  /// popcount probes; see class comment).
  [[nodiscard]] std::uint64_t count_in(std::span<const VertexId> list) const;

  [[nodiscard]] std::size_t row_size() const { return row_size_; }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<VertexId> set_bits_;  ///< copy of the row, for O(row) clears
  const VertexId* row_data_ = nullptr;
  std::size_t row_size_ = 0;
  bool built_ = false;
};

/// Per-rank stateful dispatcher for the Tiered kernel generation: picks a
/// kernel per (row, other) pair via select_tier_kernel, owns the RowBitmap
/// whose lifetime spans all consecutive edges of the current row, and
/// reports the modeled virtual-time cost of the work performed (including
/// any bitmap build it triggered). The `row` side must be the stable one —
/// in the engine that is the rank's local adjacency, which outlives the
/// run; the transient fetched side is only ever probed, never cached, so
/// the fetcher's ring-slot lifetime rules are not implicated (DESIGN.md §9).
class TieredIntersector {
 public:
  /// `universe` bounds every vertex id that will appear in rows or probe
  /// lists (the engine passes the global vertex count).
  TieredIntersector(const TierPolicy& policy, const CostModel& cost,
                    VertexId universe)
      : policy_(policy), cost_(cost), universe_(universe) {}

  struct Outcome {
    std::uint64_t common = 0;
    double seconds = 0.0;  ///< modeled cost, including any bitmap build
    TierKernel kernel = TierKernel::MergeVec;
  };

  /// |row ∩ other| with per-pair kernel selection. `row` is the reusable
  /// side (bitmap candidate); `other` the transient side.
  [[nodiscard]] Outcome intersect(std::span<const VertexId> row,
                                  std::span<const VertexId> other);

  /// |a ∩ b| when NEITHER side is stable — both may alias fetch-ring slots
  /// (the 2D segment engine, where even "this rank's" row segments arrive
  /// through the ring from sibling ranks). Span identity is meaningless for
  /// recycled slots — the same pointer holds different contents a few
  /// fetches later — so the bitmap tier (whose amortisation *is* that
  /// span-identity reuse) is never selected; skewed pairs gallop, the rest
  /// merge. Never touches the per-row bitmap state, so transient and
  /// row-reuse calls can interleave safely.
  [[nodiscard]] Outcome intersect_transient(std::span<const VertexId> a,
                                            std::span<const VertexId> b);

  /// Dispatch counters for bench reporting.
  struct Stats {
    std::uint64_t bitmap_builds = 0;
    std::uint64_t bitmap_pairs = 0;
    std::uint64_t gallop_pairs = 0;
    std::uint64_t merge_pairs = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  TierPolicy policy_;
  CostModel cost_;
  VertexId universe_;
  RowBitmap bitmap_;
  Stats stats_;
};

}  // namespace atlc::intersect
