#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace atlc::ingest {

/// One window of whole text lines cut from the input file. `data` always
/// ends on a line boundary (trailing '\n'), except possibly for the final
/// chunk of a file whose last line has no newline.
struct TextChunk {
  std::uint64_t file_offset = 0;  ///< byte offset of data[0] in the file
  std::string data;
};

/// Streams a text file as fixed-size byte windows stitched to line
/// boundaries: each window is read with one bulk fread of ~chunk_bytes,
/// then trimmed back to the last newline; the partial tail line is carried
/// into the next window. Concatenating all chunks reproduces the file
/// byte-for-byte, so a parser that is per-line deterministic produces the
/// same edge stream for every chunk size — the property the ingest
/// pipeline's thread/chunk-size sweeps rely on (DESIGN.md §11).
///
/// A single line longer than `chunk_bytes` is handled by growing that one
/// window until its newline (or EOF) is found; `chunk_bytes` is a target,
/// not a hard cap.
class ChunkReader {
 public:
  ChunkReader(const std::string& path, std::size_t chunk_bytes);
  ~ChunkReader();
  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  /// Fill `out` with the next window of whole lines. Returns false at EOF
  /// (out is left empty).
  bool next(TextChunk& out);

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return file_bytes_; }

 private:
  std::FILE* f_ = nullptr;
  std::size_t chunk_bytes_;
  std::string carry_;            ///< partial last line of the previous window
  std::uint64_t consumed_ = 0;   ///< file offset of the first byte of carry_
  std::uint64_t bytes_read_ = 0;
  std::uint64_t file_bytes_ = 0;
};

/// One raw id pair as it appears in the file, before compaction.
struct RawPair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Parse one chunk of SNAP-format text into raw id pairs, mirroring
/// load_text_edges line semantics exactly: lines starting with '#' or '%'
/// and empty lines are skipped, and a line contributes a pair iff two
/// base-10 integers parse from its front (strtoull rules: leading
/// whitespace and an optional sign are accepted, trailing junk is
/// ignored). Malformed lines are skipped. Thread-safe on disjoint chunks —
/// this is the function the pipeline fans out under OpenMP. Returns the
/// number of lines seen (parsed or skipped).
std::size_t parse_text_chunk(std::string_view text, std::vector<RawPair>& out);

}  // namespace atlc::ingest
