#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "atlc/graph/types.hpp"
#include "atlc/ingest/snapshot.hpp"

namespace atlc::obs {
class TraceCollector;
}  // namespace atlc::obs

namespace atlc::ingest {

/// Vertex-id relabeling applied after low-degree removal, mirroring
/// graph::clean(): `Random` is relabel_random(seed) (paper Section II-B,
/// what atlc_run applies by default), `DegreeDescending` assigns ids by
/// descending degree (useful as a DODG-friendly ordering), `None` keeps the
/// compacted first-appearance ids.
enum class RelabelMode : std::uint8_t { None, Random, DegreeDescending };

struct IngestOptions {
  /// Target bytes per text read window (see ChunkReader; a target, not a
  /// cap). The thread/chunk-size sweep in the ingest bench varies this.
  std::size_t chunk_bytes = std::size_t{8} << 20;
  /// OpenMP threads for parse and sort stages; 0 = the OpenMP default
  /// (mirrors intersect::ParallelConfig).
  int num_threads = 0;
  /// Watermark for each external-sort stage; 0 = fully in memory. The
  /// pipeline runs two sorter stages (raw and relabeled), so transient peak
  /// memory is ~2x this during the re-sort (DESIGN.md §11).
  std::uint64_t mem_budget_bytes = 0;
  /// Rank count the snapshot's slice index is built for. A snapshot serves
  /// exactly this many ranks; other counts fall back to the in-memory path.
  std::uint32_t ranks = 8;
  /// Directedness for *text* input (binary v1 input records its own).
  /// Undirected text input is symmetrized, exactly like load_text_edges.
  graph::Directedness directedness = graph::Directedness::Undirected;
  RelabelMode relabel = RelabelMode::Random;
  std::uint64_t relabel_seed = 1;
  /// Apply clean()'s single low-degree pass (vertices with degree < 2
  /// cannot close a triangle; CleanOptions::remove_degree_lt2).
  bool remove_degree_lt2 = true;
  /// Reject inputs with more distinct vertex ids than this (testability
  /// seam for the uint32 id-space overflow guard; ids are compacted, so
  /// only the *distinct* count matters).
  std::uint64_t max_vertices = 0xffffffffull;
  /// Directory for spill files; empty = alongside the output snapshot.
  std::string tmp_dir;
  /// Optional trace sink (atlc::obs): records the pipeline's stage spans
  /// (read_parse / merge_degree / map_relabel / write_snapshot) as rank 0.
  /// Ingest has no virtual clock, so these spans carry WALL timestamps and
  /// are excluded from every determinism claim. Not owned.
  obs::TraceCollector* trace = nullptr;
};

/// Everything the CLI prints and the ingest bench records. Wall-clock
/// fields are machine-dependent; the determinism fields (counts, checksums,
/// extent totals) are bit-stable across threads, chunk sizes, and memory
/// budgets — the property the equivalence tests pin down.
struct IngestReport {
  std::string input_kind;               ///< "text" or "binary-v1"
  std::uint64_t bytes_read = 0;         ///< input bytes consumed
  std::uint64_t lines = 0;              ///< text lines seen (0 for binary)
  std::uint64_t pairs_parsed = 0;       ///< id pairs parsed from the input
  std::uint64_t raw_edges = 0;          ///< edges entering the sort (incl.
                                        ///< symmetrized copies)
  std::uint64_t duplicates_removed = 0;
  std::uint64_t self_loops_removed = 0;
  graph::VertexId vertices_in = 0;      ///< distinct ids after compaction
  graph::VertexId vertices_removed = 0; ///< dropped by the low-degree pass
  graph::VertexId num_vertices = 0;     ///< final |V|
  std::uint64_t num_edges = 0;          ///< final |E| (directed slots)
  std::size_t spill_runs = 0;           ///< run files across both stages
  std::uint32_t ranks = 0;
  double parse_seconds = 0.0;  ///< read + parse + intern (minus spill sorts)
  double sort_seconds = 0.0;   ///< in-add spills, finish() sorts, both stages
  double merge_seconds = 0.0;  ///< merge replays: degree count + remap
  double write_seconds = 0.0;  ///< snapshot emit + finalize
  double total_seconds = 0.0;
  /// parse_seconds + sort_seconds: the OpenMP-parallel portion, the basis
  /// of the bench's 1->T speedup metric.
  double parse_sort_seconds = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t edge_checksum = 0;
  std::uint64_t degree_checksum = 0;
  /// Slice-index extent totals, indexed by PartitionKind value.
  std::uint64_t extents[snapshot_v2::kKindCount] = {};
};

/// The out-of-core ingest pipeline (DESIGN.md §11): stream `input` (SNAP
/// text or v1 binary) in chunks, parse in parallel, fused
/// clean/sort/dedup/relabel via external merge sort, and write a v2
/// partition-sliced snapshot to `output`. The cleaned graph is bit-identical
/// to load_edges() + graph::clean() with the matching options, for any
/// thread count, chunk size, or memory budget. Throws std::runtime_error
/// ("atlc: ..." messages) on malformed input.
IngestReport run_ingest(const std::string& input, const std::string& output,
                        const IngestOptions& options = {});

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status, getrusage fallback); 0 if unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace atlc::ingest
