#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "atlc/graph/types.hpp"

namespace atlc::ingest {

using graph::Edge;

/// Sort `edges` lexicographically by (u, v) with OpenMP: per-thread sorted
/// runs merged pairwise by std::inplace_merge (a merge tree of log2(T)
/// levels, each level merging disjoint pairs in parallel). Falls back to
/// std::sort without OpenMP or for small inputs. `num_threads` 0 uses the
/// OpenMP default, mirroring intersect::ParallelConfig.
void parallel_sort_edges(std::span<Edge> edges, int num_threads = 0);

/// Out-of-core edge sorter: buffers added edges in memory, spills the
/// buffer as a sorted run file whenever `mem_budget_bytes` is exceeded, and
/// replays the k-way merge of all runs + the in-memory tail on demand.
///
/// The budget is a watermark, not a hard cap: add() appends its whole batch
/// before checking, so peak memory is the budget plus one parse batch.
/// A budget of 0 disables spilling (fully in-memory sort).
///
/// The merged stream is identical regardless of how the input was split
/// into runs (duplicates included, in nondecreasing order), which is what
/// makes the spill path byte-identical to the in-memory path downstream.
/// for_each_sorted() is re-runnable: run files stay on disk until clear()
/// or destruction — the ingest pipeline replays the stream once to count
/// degrees and once to emit (DESIGN.md §11).
class ExternalEdgeSorter {
 public:
  /// Spill files are created as <tmp_prefix>.runN; removed on destruction.
  ExternalEdgeSorter(std::string tmp_prefix, std::uint64_t mem_budget_bytes,
                     int num_threads = 0);
  ~ExternalEdgeSorter();
  ExternalEdgeSorter(const ExternalEdgeSorter&) = delete;
  ExternalEdgeSorter& operator=(const ExternalEdgeSorter&) = delete;

  void add(Edge e);
  void add(std::span<const Edge> edges);

  /// Sort the in-memory tail. Call once, after the last add().
  void finish();

  /// Visit every edge in nondecreasing (u, v) order, duplicates included.
  /// Requires finish(); may be called any number of times.
  void for_each_sorted(const std::function<void(const Edge&)>& visit) const;

  [[nodiscard]] std::size_t spill_runs() const { return runs_.size(); }
  [[nodiscard]] std::uint64_t total_edges() const { return total_; }
  /// Wall seconds spent sorting and spilling (inside add()/finish()).
  [[nodiscard]] double sort_seconds() const { return sort_seconds_; }

  /// Release the buffer and delete the run files early (the sorter becomes
  /// unusable). Lets the pipeline drop stage-A storage before stage B peaks.
  void clear();

 private:
  void maybe_spill();
  void spill();

  std::string tmp_prefix_;
  std::uint64_t budget_;
  int threads_;
  std::vector<Edge> buffer_;
  struct Run {
    std::string path;
    std::uint64_t count = 0;
  };
  std::vector<Run> runs_;
  std::uint64_t total_ = 0;
  bool finished_ = false;
  double sort_seconds_ = 0.0;
};

}  // namespace atlc::ingest
