#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "atlc/core/dist_graph.hpp"
#include "atlc/graph/edge_list.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/graph/types.hpp"

namespace atlc::ingest {

using graph::Directedness;
using graph::Edge;
using graph::EdgeIndex;
using graph::EdgeList;
using graph::Partition;
using graph::PartitionKind;
using graph::VertexId;

/// Binary snapshot format v2: the out-of-core successor of the v1 binary
/// edge list (graph/io.hpp). Same magic, version 2; the payload is the
/// CLEANED graph — deduped, self-loop-free, optionally relabeled, edges
/// sorted lexicographically by (u, v) — plus a per-PartitionKind slice
/// index that lets each rank seek-read only its slice (DESIGN.md §11).
///
/// Layout (host-endian, fixed-width fields, no struct padding):
///   header            (kHeaderBytes, field offsets below)
///   degrees           n x u32 out-degrees, at degrees_offset
///   edges             m x {u32 u, u32 v},  at edges_offset
///   slice index       kKindCount kind sections, at index_offset
///
/// Each kind section:
///   u32 kind_tag (PartitionKind value), u32 reserved(0),
///   u64 total_extents,
///   u64 rank_prefix[ranks+1]   (extent-array index per rank, monotone),
///   {u64 begin, u64 count} x total_extents
///
/// An *extent* is a maximal run of consecutive edge slots owned by one
/// rank under that kind's owner function (edge_owner(u, v), which for 1D
/// kinds is owner(u)). Because edges are sorted by (u, v): Block1D and
/// DegreeBalanced1D collapse to one extent per rank (contiguous vertex
/// ranges); Cyclic1D gets one extent per owned vertex run; Grid2D one per
/// (row, column-block) segment run — O(n) to O(n*pc) entries, an index
/// size trade-off documented in DESIGN.md §11.
namespace snapshot_v2 {

constexpr std::uint32_t kMagic = 0x41544c43;  // "ATLC", shared with v1
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kKindCount = 4;

// Header field byte offsets (also the corruption-test patch points).
constexpr std::size_t kMagicOffset = 0;           // u32
constexpr std::size_t kVersionOffset = 4;         // u32
constexpr std::size_t kDirectednessOffset = 8;    // u32 (0/1)
constexpr std::size_t kNumVerticesOffset = 12;    // u32
constexpr std::size_t kNumEdgesOffset = 16;       // u64
constexpr std::size_t kRanksOffset = 24;          // u32
constexpr std::size_t kKindCountOffset = 28;      // u32
constexpr std::size_t kDegreesOffsetOffset = 32;  // u64
constexpr std::size_t kEdgesOffsetOffset = 40;    // u64
constexpr std::size_t kIndexOffsetOffset = 48;    // u64
constexpr std::size_t kFileBytesOffset = 56;      // u64
constexpr std::size_t kEdgeChecksumOffset = 64;   // u64 FNV-1a over edges
constexpr std::size_t kDegreeChecksumOffset = 72; // u64 FNV-1a over degrees
constexpr std::size_t kHeaderBytes = 80;

struct Extent {
  std::uint64_t begin = 0;
  std::uint64_t count = 0;
};

/// FNV-1a 64-bit over a byte range, chainable via `state`.
constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                             std::uint64_t state = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ull;
  }
  return state;
}

}  // namespace snapshot_v2

/// Streaming writer for snapshot v2. Usage:
///   SnapshotWriter w(path, n, dir, partitions);   // one per kind
///   for each edge in sorted order: w.append(e);
///   w.finalize(degrees);
///
/// append() builds the per-kind extent lists incrementally and checksums
/// the payload; finalize() writes degrees + index and patches the header
/// (edge count and section offsets depend on m, which is only known once
/// the stream ends). Edges must arrive strictly increasing by (u, v) —
/// deduped, self-loop-free; violations throw.
class SnapshotWriter {
 public:
  SnapshotWriter(const std::string& path, VertexId num_vertices,
                 Directedness directedness, std::vector<Partition> partitions);
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void append(Edge e);
  void finalize(std::span<const VertexId> degrees);

  [[nodiscard]] std::uint64_t num_edges() const { return m_; }
  [[nodiscard]] std::uint64_t edge_checksum() const { return edge_checksum_; }
  [[nodiscard]] std::uint64_t degree_checksum() const {
    return degree_checksum_;
  }
  /// Total extents recorded for partition-kind slot k (0..kKindCount-1).
  [[nodiscard]] std::uint64_t extents_total(std::size_t k) const;

 private:
  void flush();

  std::string path_;
  std::FILE* f_ = nullptr;
  VertexId n_;
  Directedness dir_;
  std::vector<Partition> parts_;
  std::uint64_t m_ = 0;
  Edge last_{0, 0};
  std::uint64_t edge_checksum_ = snapshot_v2::kFnvOffsetBasis;
  std::uint64_t degree_checksum_ = snapshot_v2::kFnvOffsetBasis;
  std::vector<Edge> write_buf_;
  /// extents_[kind][rank] = this rank's extent list under that kind.
  std::vector<std::vector<std::vector<snapshot_v2::Extent>>> extents_;
  bool finalized_ = false;
};

/// Validating reader for snapshot v2; implements core::LocalSliceSource so
/// build_dist_graph can seek-read per-rank slices straight off the file.
///
/// The constructor validates the container (magic, version, section
/// offsets vs actual file size, index structure: monotone rank prefixes,
/// in-range non-overlapping extents covering all m edges per kind) and
/// the degree-array checksum; read_all() additionally verifies the edge
/// payload checksum and per-edge invariants. Violations throw
/// std::runtime_error with an "atlc:"-prefixed message naming the failure.
///
/// read_slice() opens its own file handle per call, so concurrent calls
/// from all rank threads are safe (the runtime's threads-as-ranks model).
class SnapshotReader final : public core::LocalSliceSource {
 public:
  explicit SnapshotReader(const std::string& path);

  /// True when the file starts with the v2 magic+version (cheap sniff; the
  /// full validation happens in the constructor).
  [[nodiscard]] static bool sniff(const std::string& path);

  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const { return m_; }
  [[nodiscard]] Directedness directedness() const { return dir_; }
  [[nodiscard]] std::uint32_t ranks() const { return ranks_; }
  [[nodiscard]] std::uint64_t edge_checksum() const { return edge_checksum_; }
  [[nodiscard]] const std::vector<VertexId>& degrees() const {
    return degrees_;
  }
  [[nodiscard]] std::uint64_t extents_total(PartitionKind kind) const;

  /// Load the full cleaned edge list (every rank's slices concatenated);
  /// verifies the payload checksum, the sorted-unique order, and endpoint
  /// ranges.
  [[nodiscard]] EdgeList read_all() const;

  /// Seek-read rank `rank`'s local CSR slice under `partition`. The
  /// partition must match the snapshot (vertex/rank counts) and use one of
  /// the four indexed kinds; row/owner mismatches surface as "atlc:"
  /// corruption errors (the stored edge ids must line up with the
  /// partition's global_id walk).
  void read_slice(const Partition& partition, std::uint32_t rank,
                  std::vector<EdgeIndex>& offsets,
                  std::vector<VertexId>& adjacencies) const override;

 private:
  struct KindIndex {
    bool present = false;
    std::vector<std::uint64_t> rank_prefix;        // ranks+1
    std::vector<snapshot_v2::Extent> extents;
  };

  std::string path_;
  VertexId n_ = 0;
  std::uint64_t m_ = 0;
  Directedness dir_ = Directedness::Undirected;
  std::uint32_t ranks_ = 0;
  std::uint64_t edges_offset_ = 0;
  std::uint64_t edge_checksum_ = 0;
  std::vector<VertexId> degrees_;
  KindIndex index_[snapshot_v2::kKindCount];
};

}  // namespace atlc::ingest
