#pragma once

// Aggregation over atlc::obs traces (DESIGN.md §12): MetricsRegistry folds
// a TraceCollector's event stream — or a parsed Chrome trace-event document
// (tools/atlc_trace) — into counters, virtual-latency histograms
// (util::stats percentiles + log-scale buckets), per-cause time breakdowns,
// an epoch-bucketed cache hit-rate series, and per-row remote-fetch tallies.
// Everything derives from virtual-time event fields, so aggregates inherit
// the trace's bit-determinism.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "atlc/obs/trace.hpp"
#include "atlc/util/json.hpp"

namespace atlc::obs {

/// Per-epoch cache probe tallies (from cache_hit/cache_miss/cache_stale
/// instants, whose arg carries the CLaMPI window epoch the probe hit).
struct EpochCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale = 0;
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class MetricsRegistry {
 public:
  /// Manual feeds (tests and ad-hoc aggregation).
  void count(const std::string& name, std::uint64_t delta = 1);
  void observe(const std::string& name, double sample);

  /// Fold in every rank buffer of `c`.
  void ingest(const TraceCollector& c);

  /// Fold in a parsed Chrome trace-event document (the exporter's own
  /// format: pid 0, tid = 2*rank + track). Unknown events are skipped, so
  /// hand-edited traces still aggregate.
  void ingest_chrome(const util::Json& doc);

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::vector<double>>& samples()
      const {
    return samples_;
  }
  /// Per-cause Complete-event seconds (event names: "compute",
  /// "flush_wait", "barrier", ...), indexed by rank; per-category seconds
  /// ("compute"/"comm"/"nic"); and phase-span (B/E) seconds likewise.
  [[nodiscard]] const std::map<std::string, std::vector<double>>&
  cause_seconds() const {
    return cause_seconds_;
  }
  [[nodiscard]] const std::map<std::string, std::vector<double>>&
  cat_seconds() const {
    return cat_seconds_;
  }
  [[nodiscard]] const std::map<std::string, std::vector<double>>&
  span_seconds() const {
    return span_seconds_;
  }
  [[nodiscard]] const std::map<std::uint64_t, EpochCacheStats>& cache_epochs()
      const {
    return cache_epochs_;
  }

  /// Top-k remote-fetched rows (vertex id, fetch count), hottest first;
  /// ties broken by vertex id for determinism.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> top_rows(
      std::size_t k) const;

  /// Everything as one JSON document: counters, per-sample-set percentile
  /// summaries + log-scale histogram buckets, cause/span breakdowns, the
  /// epoch cache series, and the top rows.
  [[nodiscard]] util::Json to_json(std::size_t hist_bins = 12,
                                   std::size_t top_k = 10) const;

  /// Just the per-cause time breakdown — the bench JSON's optional
  /// per-phase block ({cause: {seconds, per_rank[]}}).
  [[nodiscard]] util::Json causes_json() const;

 private:
  void add_event(std::uint32_t rank, std::uint8_t track, const char* name,
                 const char* cat, char phase, double ts, double dur,
                 TraceArg a0, TraceArg a1);
  std::vector<double>& per_rank(
      std::map<std::string, std::vector<double>>& m, const std::string& name,
      std::uint32_t rank);

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::vector<double>> samples_;
  std::map<std::string, std::vector<double>> cause_seconds_;
  std::map<std::string, std::vector<double>> cat_seconds_;
  std::map<std::string, std::vector<double>> span_seconds_;
  std::map<std::uint64_t, EpochCacheStats> cache_epochs_;
  std::map<std::uint64_t, std::uint64_t> row_fetches_;
  /// Open phase spans per (rank, name): begin timestamps, LIFO.
  std::map<std::pair<std::uint32_t, std::string>, std::vector<double>> open_;
};

}  // namespace atlc::obs
