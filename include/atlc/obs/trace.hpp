#pragma once

// atlc::obs — deterministic virtual-time tracing (DESIGN.md §12).
//
// A per-rank Tracer records spans, instants, counters and NIC transfer
// events stamped with the rank's VIRTUAL clock, and coalesces the engine's
// fine-grained charge_compute/charge_comm stream into per-cause Complete
// events whose per-rank durations sum to exactly the CommStats totals. A
// TraceCollector gathers every rank's buffer and exports Chrome trace-event
// JSON (Perfetto-loadable; one process, two tracks per rank: the rank's
// phase/compute timeline and its NIC injection port).
//
// Determinism contract: every recorded field derives from virtual-time
// state, ranks write to disjoint pre-sized buffers, and the exporter orders
// events by (track, timestamp) — so for a fixed seed the exported bytes are
// identical across runs and thread schedules. Wall-clock capture is opt-in
// (TraceCollector::capture_wall) and adds a clearly separated "wall_s" arg;
// wall fields are never gated and never asserted deterministic.
//
// Disabled-tracer contract: an unbound Tracer (sink == nullptr) performs no
// allocation and emits no event on any record call — the hooks threaded
// through rma/core/clampi/stream compile down to one pointer test, which is
// how the checked-in virtual-time baselines stay bit-identical with tracing
// compiled in but off (tests/test_obs.cpp pins both properties).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "atlc/util/timer.hpp"

namespace atlc::obs {

/// Chrome trace-event phases the exporter emits ("ph" values).
enum class EventPhase : std::uint8_t {
  Begin,     ///< "B" — span open (paired with End, same track)
  End,       ///< "E" — span close
  Instant,   ///< "i" — point event
  Complete,  ///< "X" — span with ts + dur known at emission
  Counter,   ///< "C" — sampled counter series
};

/// One optional key/value argument. Keys must be string literals (or other
/// program-lifetime strings); values are unsigned integers — every traced
/// quantity (rank, bytes, vertex id, epoch, occupancy) is one.
struct TraceArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

/// One recorded event. `name`/`cat` must outlive the collector (string
/// literals). Timestamps and durations are virtual seconds; `wall` is a
/// wall-clock second reading or negative when wall capture is off.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  double ts = 0.0;
  double dur = 0.0;  ///< Complete events only
  double wall = -1.0;
  TraceArg arg0{};
  TraceArg arg1{};
  EventPhase phase = EventPhase::Instant;
  std::uint8_t track = 0;  ///< 0 = rank timeline, 1 = NIC injection port
};

/// Destination for a rank's events. on_event may be called concurrently for
/// DIFFERENT ranks (never for the same rank), so implementations must keep
/// per-rank state disjoint.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(std::uint32_t rank, const TraceEvent& e) = 0;
  /// Wall timestamp stamped into events, or negative = no wall capture
  /// (the default; wall fields would break trace byte-determinism).
  [[nodiscard]] virtual double wall_now() const { return -1.0; }
};

/// Test sink: counts events without storing them (the tracing-off overhead
/// assertion binds one, unbinds, and checks the count stays zero).
class CountingSink final : public TraceSink {
 public:
  void on_event(std::uint32_t, const TraceEvent&) override { ++events_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  std::uint64_t events_ = 0;
};

/// Per-rank event recorder. Bound by the runtime (or an ingest driver) to a
/// sink + a clock; every record call is a no-op while unbound. NOT
/// thread-safe — each rank thread owns exactly one Tracer.
class Tracer {
 public:
  /// Reads the bound clock object's current time (virtual seconds for a
  /// RankCtx, wall seconds for ingest's Timer-backed tracer).
  using ClockFn = double (*)(const void*);

  /// Start recording into `sink` as `rank`. `clock(clock_obj)` supplies
  /// timestamps for begin/end/instant/counter; charge() and transfer()
  /// carry explicit virtual times.
  void bind(TraceSink* sink, std::uint32_t rank, ClockFn clock,
            const void* clock_obj);
  /// Flush the pending coalesced charge run and stop recording.
  void unbind();

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] std::uint32_t rank() const { return rank_; }

  /// Open/close a named phase span on the rank timeline. Spans must nest
  /// and balance: end() aborts (ATLC_CHECK) on an empty stack or a name
  /// mismatch with the innermost begin().
  void begin(const char* name);
  void end(const char* name);

  /// Point event, with up to two arguments.
  void instant(const char* name, TraceArg a0 = {}, TraceArg a1 = {});

  /// Counter series sample ("C" event): series `name`, one keyed value.
  void counter(const char* name, const char* key, std::uint64_t value);

  /// Record a virtual-time charge of `seconds` starting at `start`, under
  /// cause `name` and category `cat` ("compute" or "comm"). Consecutive
  /// charges with the same name whose intervals abut are coalesced into one
  /// Complete event, so the per-rank sum of emitted durations per category
  /// equals the CommStats second totals without a per-kernel-call event.
  void charge(const char* cat, const char* name, double start, double seconds);

  /// One NIC transfer ("X" on the NIC track): occupies the injection port
  /// over virtual [start, done), fetching `bytes` from `target`.
  void transfer(const char* name, double start, double done,
                std::uint32_t target, std::uint64_t bytes);

 private:
  void emit(const TraceEvent& e);
  void flush_run();

  TraceSink* sink_ = nullptr;
  std::uint32_t rank_ = 0;
  ClockFn clock_ = nullptr;
  const void* clock_obj_ = nullptr;

  // Pending coalesced charge run.
  const char* run_cat_ = nullptr;
  const char* run_name_ = nullptr;
  double run_start_ = 0.0;
  double run_end_ = 0.0;

  std::vector<const char*> span_stack_;
};

/// Collects every rank's events into disjoint buffers and exports them as
/// Chrome trace-event JSON. prepare() must be called with the rank count
/// before rank threads start recording; after that, on_event is lock-free
/// (rank-disjoint vector appends).
class TraceCollector final : public TraceSink {
 public:
  /// Opt-in wall-clock capture: stamps a "wall_s" arg (seconds since this
  /// collector's construction) into every event. Off by default because
  /// wall fields destroy trace byte-determinism; never gated either way.
  bool capture_wall = false;

  /// Size the per-rank buffers (idempotent; grows only).
  void prepare(std::uint32_t ranks);

  void on_event(std::uint32_t rank, const TraceEvent& e) override;
  [[nodiscard]] double wall_now() const override;

  [[nodiscard]] std::uint32_t ranks() const {
    return static_cast<std::uint32_t>(buffers_.size());
  }
  [[nodiscard]] const std::vector<TraceEvent>& events(
      std::uint32_t rank) const {
    return buffers_[rank];
  }
  [[nodiscard]] std::uint64_t total_events() const;

  /// Sum of Complete-event durations on rank `rank`'s timeline track for
  /// category `cat` ("compute" / "comm") — the reconciliation quantity
  /// tests compare against CommStats::{compute,comm}_seconds.
  [[nodiscard]] double track_total(std::uint32_t rank, const char* cat) const;

  /// The Chrome trace-event document (object form: {"traceEvents": [...]}),
  /// events ordered by (pid, tid, ts) so per-track timestamps are monotone.
  /// Serialized with a streaming writer — traces scale with |E| and a Json
  /// tree of a million nodes is the wrong tool.
  [[nodiscard]] std::string chrome_trace_string() const;

  /// chrome_trace_string() to a file. False on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  std::vector<std::vector<TraceEvent>> buffers_;
  util::Timer wall_;
};

}  // namespace atlc::obs
