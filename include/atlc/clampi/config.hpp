#pragma once

#include <cstddef>
#include <cstdint>

namespace atlc::clampi {

/// Consistency mode (CLaMPI, Di Girolamo et al. IPDPS'17, Section II-F of
/// the paper).
enum class Mode : std::uint8_t {
  /// No assumption about data: flush at every epoch closure. Saves repeated
  /// accesses within one epoch only.
  Transparent,
  /// Data accessed via RMA is read-only: never flush automatically. This is
  /// the mode the paper uses for both LCC windows ("the graph is never
  /// modified during the computation").
  AlwaysCache,
  /// The application decides when to flush.
  UserDefined,
};

/// Victim-selection policy.
enum class VictimPolicy : std::uint8_t {
  /// CLaMPI default: least-recently-used weighted by a positional score
  /// that prefers evicting entries whose removal merges free regions
  /// (reduces external fragmentation).
  LruPositional,
  /// This paper's extension (Section III-B2): the application supplies a
  /// score per entry (degree centrality for C_adj); the lowest-scored entry
  /// is evicted. The spatial anti-fragmentation effect is deliberately
  /// lost, as the paper notes.
  UserScore,
};

struct CacheConfig {
  /// Capacity of the memory buffer holding cached payloads.
  std::uint64_t buffer_bytes = 1ull << 20;
  /// Number of hash-table slots. CLaMPI sizing heuristics (paper
  /// Section III-B1): ~ one slot per expected entry; see
  /// `suggest_hash_slots_*` helpers in cache.hpp.
  std::size_t hash_slots = 4096;
  /// Linear-probing window; a full window is a hash *conflict*.
  std::size_t probe_limit = 8;
  Mode mode = Mode::AlwaysCache;
  VictimPolicy policy = VictimPolicy::LruPositional;
  /// LruPositional: how many LRU-tail candidates compete on positional score.
  std::size_t lru_window = 16;
  /// Track first-seen keys to classify compulsory misses (costs one hash-set
  /// entry per distinct key; disable for very large key spaces).
  bool classify_misses = true;
  /// Adaptive tuning (CLaMPI): grow the hash table when conflicts are
  /// frequent. Each adjustment FLUSHES the cache (paper Section III-B1).
  bool adaptive = false;
  std::size_t adaptive_interval = 4096;  ///< accesses between checks
  double adaptive_conflict_threshold = 0.05;
  std::size_t max_hash_slots = 1u << 22;
};

/// Cache observability counters (drive paper Figs. 7 and 8).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t compulsory_misses = 0;  ///< key never seen before
  std::uint64_t capacity_misses = 0;    ///< key evicted earlier for space
  std::uint64_t conflict_misses = 0;    ///< key evicted earlier by hash conflict
  std::uint64_t flush_misses = 0;  ///< key dropped by a flush or epoch bump
  std::uint64_t evictions_space = 0;
  std::uint64_t evictions_conflict = 0;
  /// Entries recycled because the window epoch advanced past the epoch they
  /// were fetched at (dynamic graphs: a refresh_window invalidated them).
  /// A stale probe is served as a miss, never as a hit.
  std::uint64_t stale_evictions = 0;
  std::uint64_t insert_failures = 0;  ///< entry larger than the whole buffer
  /// UserScore policy: inserts skipped because the incoming entry scored
  /// lower than every eviction candidate (paper Section III-B2: "avoid
  /// storing a high number of low-degree vertices").
  std::uint64_t admission_rejects = 0;
  std::uint64_t flushes = 0;
  std::uint64_t hash_resizes = 0;
  std::uint64_t bytes_hit = 0;
  std::uint64_t bytes_missed = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    compulsory_misses += o.compulsory_misses;
    capacity_misses += o.capacity_misses;
    conflict_misses += o.conflict_misses;
    flush_misses += o.flush_misses;
    evictions_space += o.evictions_space;
    evictions_conflict += o.evictions_conflict;
    stale_evictions += o.stale_evictions;
    insert_failures += o.insert_failures;
    admission_rejects += o.admission_rejects;
    flushes += o.flushes;
    hash_resizes += o.hash_resizes;
    bytes_hit += o.bytes_hit;
    bytes_missed += o.bytes_missed;
    return *this;
  }

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return accesses() ? static_cast<double>(hits) /
                            static_cast<double>(accesses())
                      : 0.0;
  }
  [[nodiscard]] double miss_rate() const {
    return accesses() ? 1.0 - hit_rate() : 0.0;
  }
};

}  // namespace atlc::clampi
