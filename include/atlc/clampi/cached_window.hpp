#pragma once

#include "atlc/clampi/cache.hpp"
#include "atlc/rma/runtime.hpp"

namespace atlc::clampi {

/// RMA window wrapper that transparently caches gets, the way CLaMPI
/// interposes on MPI_Get (paper Fig. 3, steps 5-6):
///   - on hit, the payload is served from the local cache buffer and only
///     the cache-probe + local-copy time is charged;
///   - on miss, the get goes to the network and the payload is inserted
///     into the cache when the get completes (at finish()), paying the
///     cache-management overhead on top of the transfer.
///
/// `begin_get`/`finish` split lets the caller overlap the transfer with
/// computation (the engine's double buffering); `get` is the synchronous
/// convenience wrapper.
///
/// Gets targeting the local rank bypass the cache entirely: the
/// application reads its own partition directly, matching the paper's
/// usage where only remote reads are intercepted.
template <typename T>
class CachedWindow {
 public:
  struct Pending {
    bool completed = true;        ///< hit or local: nothing left to do
    bool insert_on_finish = false;
    rma::GetHandle handle{};
    Key key{};
    T* dst = nullptr;
    double score = 0.0;
    std::uint64_t epoch = 0;  ///< window epoch the transfer was issued at
  };

  CachedWindow(rma::RankCtx& ctx, rma::Window<T> window, CacheConfig config)
      : ctx_(&ctx), window_(window), cache_(config) {}

  /// Start a (possibly cached) get of `count` elements at element `offset`
  /// of `target`'s exposed region. `score` is the application-defined
  /// eviction score (paper Section III-B2); ignored unless the cache policy
  /// is UserScore.
  Pending begin_get(std::uint32_t target, std::uint64_t offset,
                    std::uint64_t count, T* dst, double score = 0.0) {
    if (target == ctx_->rank()) {
      // Local part: plain window get, never cached.
      auto h = window_.get(target, offset, count, dst);
      ctx_->flush(h);
      return Pending{};
    }
    const Key key{target, offset * sizeof(T), count * sizeof(T)};
    // Pin the cache to the window's current data epoch: entries fetched
    // before the last refresh_window are recycled on probe instead of
    // served (stale-hit-as-miss; the always-cache assumption holds only
    // within one epoch on dynamic graphs — DESIGN.md §7).
    cache_.set_epoch(window_.epoch());
    // Stale probes show up as a stale_evictions bump inside lookup(); the
    // delta distinguishes cache_stale from a plain cache_miss in traces.
    const std::uint64_t stale_before =
        ctx_->tracer().enabled() ? cache_.stats().stale_evictions : 0;
    if (cache_.lookup(key, dst)) {
      ctx_->charge_comm(ctx_->net().time_cache_hit(key.bytes), "cache_hit");
      ctx_->tracer().instant("cache_hit", {"epoch", window_.epoch()},
                             {"bytes", key.bytes});
      return Pending{};
    }
    if (ctx_->tracer().enabled())
      ctx_->tracer().instant(
          cache_.stats().stale_evictions > stale_before ? "cache_stale"
                                                        : "cache_miss",
          {"epoch", window_.epoch()}, {"bytes", key.bytes});
    Pending p;
    p.completed = false;
    p.insert_on_finish = true;
    p.handle = window_.get(target, offset, count, dst);
    p.key = key;
    p.dst = dst;
    p.score = score;
    p.epoch = window_.epoch();
    return p;
  }

  /// Complete a pending get: wait for the transfer (virtual time) and
  /// insert the payload into the cache.
  void finish(const Pending& p) {
    if (p.completed) return;
    ctx_->flush(p.handle);
    if (p.insert_on_finish) {
      if (p.epoch != window_.epoch()) {
        // The window was refreshed while this transfer was pending: the
        // payload (eagerly copied from the old exposure) predates the
        // current epoch. Inserting it — stamped current — would let a
        // later lookup serve pre-refresh bytes as a fresh hit, breaking
        // the stale-never-served guarantee. Discard instead; the caller's
        // own dst holding old bytes is its overlap-across-fence problem
        // (erroneous under MPI_Win_fence semantics too).
        return;
      }
      // Pipelines deeper than the paper's double buffering can have two
      // misses of the same key in flight at once (depth 2 cannot: a new
      // get only starts after the previous finish). The first completion
      // inserts; later ones find the key resident and skip the duplicate
      // insert — their transfer happened and its miss bookkeeping is still
      // charged.
      cache_.set_epoch(window_.epoch());
      if (!cache_.contains(p.key)) cache_.insert(p.key, p.dst, p.score);
      ctx_->charge_comm(ctx_->net().cache_miss_overhead_s, "cache_insert");
    }
  }

  /// Synchronous cached get.
  void get(std::uint32_t target, std::uint64_t offset, std::uint64_t count,
           T* dst, double score = 0.0) {
    finish(begin_get(target, offset, count, dst, score));
  }

  /// Epoch closure notification (flushes in Transparent mode only).
  void epoch_close() { cache_.epoch_close(); }

  [[nodiscard]] Cache& cache() { return cache_; }
  [[nodiscard]] const Cache& cache() const { return cache_; }
  [[nodiscard]] rma::Window<T>& window() { return window_; }

 private:
  rma::RankCtx* ctx_;
  rma::Window<T> window_;
  Cache cache_;
};

}  // namespace atlc::clampi
