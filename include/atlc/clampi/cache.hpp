#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "atlc/clampi/config.hpp"
#include "atlc/clampi/free_space.hpp"

namespace atlc::clampi {

/// Cache key: CLaMPI indexes cached entries by (window, node, offset, size)
/// — see paper Fig. 3. The window is implicit (one Cache per window).
struct Key {
  std::uint32_t target = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const Key&, const Key&) = default;
};

[[nodiscard]] std::uint64_t key_hash(const Key& k);

/// Introspection record (drives paper Fig. 5 right: entry sizes vs reuse).
struct EntryInfo {
  Key key;
  double user_score = 0.0;
  std::uint64_t last_tick = 0;
};

/// CLaMPI-style software cache for RMA gets: variable-size entries in a
/// bounded memory buffer, hash-table index with bounded linear probing,
/// score-driven victim selection, and optional adaptive hash resizing
/// (which flushes, as in CLaMPI). The cache itself is transport-agnostic;
/// `CachedWindow` (cached_window.hpp) wires it to the RMA runtime.
class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Set the data epoch subsequent lookups/inserts run under (the window
  /// version the payloads belong to — see rma::WindowBase::epoch()). An
  /// entry inserted at epoch e is served only while the epoch is still e:
  /// probing it at a later epoch recycles it and reports a miss
  /// (stats().stale_evictions). Static workloads never call this and keep
  /// the always-cache behaviour (everything stays at epoch 0).
  void set_epoch(std::uint64_t epoch) { current_epoch_ = epoch; }
  [[nodiscard]] std::uint64_t epoch() const { return current_epoch_; }

  /// Look up `key`; on hit copy the payload to `dst` (must hold key.bytes)
  /// and refresh recency. Returns true on hit. A resident entry from an
  /// older epoch is evicted and reported as a miss.
  bool lookup(const Key& key, void* dst);

  /// Store a payload after a miss fetch. `user_score` is consulted only
  /// under VictimPolicy::UserScore (paper Section III-B2: degree centrality
  /// for C_adj). May evict (possibly several) entries; returns false iff
  /// the payload exceeds the whole buffer. Inserting a key that is resident
  /// at the current epoch is a caller error (see contains()); a stale
  /// resident from an older epoch is recycled and replaced.
  bool insert(const Key& key, const void* data, double user_score = 0.0);

  /// True iff `key` is resident at the current epoch. Unlike lookup(),
  /// copies no payload and does not refresh recency — the probe callers use
  /// to decide whether a completed miss fetch still needs its insert (an
  /// overlapping fetch of the same key may have inserted first; see
  /// CachedWindow::finish). Stale residents read as absent.
  [[nodiscard]] bool contains(const Key& key) const {
    const std::int32_t idx = find(key);
    return idx >= 0 && pool_[idx].epoch == current_epoch_;
  }

  /// Drop every entry (stats retained). UserDefined-mode applications call
  /// this; it also implements the transparent-mode epoch flush.
  void flush();

  /// Notify an epoch closure: flushes only in Transparent mode.
  void epoch_close();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  [[nodiscard]] std::size_t num_entries() const { return live_entries_; }
  [[nodiscard]] std::uint64_t used_bytes() const {
    return free_.capacity() - free_.total_free();
  }
  [[nodiscard]] double fragmentation() const { return free_.fragmentation(); }
  [[nodiscard]] std::vector<EntryInfo> entries() const;

  /// Paper Section III-B1 sizing heuristics for the two LCC caches.
  /// C_offsets holds fixed-size entries: one slot per entry that fits.
  [[nodiscard]] static std::size_t suggest_hash_slots_fixed(
      std::uint64_t cache_bytes, std::uint64_t entry_bytes);
  /// C_adj under a power-law degree distribution: n * fraction^alpha
  /// entries expected (paper: alpha = 2 approximates well).
  [[nodiscard]] static std::size_t suggest_hash_slots_power_law(
      std::uint64_t num_vertices, double cache_fraction, double alpha = 2.0);

 private:
  struct Entry {
    Key key;
    std::uint64_t buf_offset = 0;
    std::uint64_t last_tick = 0;
    std::uint64_t epoch = 0;  ///< window epoch the payload was fetched at
    double user_score = 0.0;
    std::uint32_t slot = 0;
    std::int32_t lru_prev = -1;
    std::int32_t lru_next = -1;
    bool live = false;
  };

  enum class GoneReason : std::uint8_t {
    EvictedSpace,
    EvictedConflict,
    Flushed,
    Stale,  ///< epoch invalidation (refresh_window advanced the window)
    NeverStored,
  };

  static constexpr std::int32_t kEmpty = -1;
  static constexpr std::int32_t kTombstone = -2;

  /// Returns pool index of the entry holding `key`, or -1.
  std::int32_t find(const Key& key) const;
  void touch(std::int32_t idx);
  void lru_unlink(std::int32_t idx);
  void lru_push_front(std::int32_t idx);
  void evict(std::int32_t idx, GoneReason reason);
  /// Global victim per policy; -1 if cache empty.
  std::int32_t pick_victim_global();
  /// Make a contiguous region of `bytes` allocatable: a bounded number of
  /// cheapest-first single evictions, then (if fragmentation still blocks
  /// the allocation) clearing the cheapest contiguous run of entries.
  /// Returns false iff the UserScore admission gate rejects the newcomer.
  bool make_room(std::uint64_t bytes, double incoming_score);
  /// Victim restricted to live entries in the probe window of `hash_base`.
  std::int32_t pick_victim_in_probe_window(std::uint64_t hash_base);
  std::int32_t lru_positional_pick(const std::vector<std::int32_t>& candidates);
  void classify_miss(const Key& key);
  void note_gone(const Key& key, GoneReason reason);
  void maybe_adapt();

  CacheConfig config_;
  CacheStats stats_;
  FreeSpace free_;
  std::vector<std::byte> buffer_;
  std::vector<Entry> pool_;
  std::vector<std::int32_t> pool_free_;
  std::vector<std::int32_t> slots_;
  std::size_t live_entries_ = 0;
  std::int32_t lru_head_ = -1;
  std::int32_t lru_tail_ = -1;
  std::uint64_t tick_ = 0;
  std::uint64_t current_epoch_ = 0;
  std::multimap<double, std::int32_t> by_score_;  // UserScore policy index
  std::map<std::uint64_t, std::int32_t> live_by_offset_;  // buffer layout
  std::unordered_map<std::uint64_t, GoneReason> gone_;  // miss classification
  std::uint64_t window_accesses_ = 0;
  std::uint64_t window_conflicts_ = 0;
};

}  // namespace atlc::clampi
