#pragma once

#include <cstdint>
#include <map>
#include <optional>

namespace atlc::clampi {

/// Free-region manager for the cache's memory buffer.
///
/// CLaMPI stores free regions in an AVL tree to support variable-size
/// entries; this implementation keeps two balanced-tree indexes (std::map is
/// a red-black tree — same O(log n) class): by offset for O(log n)
/// coalescing on free, and by size for best-fit allocation. External
/// fragmentation (free space split into unusably small pieces) is exactly
/// the failure mode the positional eviction score mitigates.
class FreeSpace {
 public:
  explicit FreeSpace(std::uint64_t capacity);

  /// Best-fit allocation. Returns the offset, or nullopt if no single free
  /// region can hold `bytes` (even if total_free() >= bytes — that is
  /// external fragmentation).
  std::optional<std::uint64_t> allocate(std::uint64_t bytes);

  /// Return a region to the free pool, coalescing with adjacent regions.
  void release(std::uint64_t offset, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t total_free() const { return total_free_; }
  [[nodiscard]] std::uint64_t largest_free() const;

  /// Bytes of free space adjacent to [offset, offset+bytes) — the "merge
  /// benefit" of evicting the entry living there (positional score input).
  [[nodiscard]] std::uint64_t adjacent_free(std::uint64_t offset,
                                            std::uint64_t bytes) const;

  /// 0 = one contiguous free region; ->1 = heavily fragmented.
  [[nodiscard]] double fragmentation() const;

  /// Number of disjoint free regions.
  [[nodiscard]] std::size_t num_regions() const { return by_offset_.size(); }

  /// Free regions keyed by offset (read-only view). The cache's run-based
  /// victim selection walks the buffer layout through this.
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>&
  regions_by_offset() const {
    return by_offset_;
  }

  /// Size of the free region starting exactly at `offset`, or 0.
  [[nodiscard]] std::uint64_t region_at(std::uint64_t offset) const {
    const auto it = by_offset_.find(offset);
    return it == by_offset_.end() ? 0 : it->second;
  }

  /// Drop everything and return to a single free region.
  void reset();

 private:
  void insert_region(std::uint64_t offset, std::uint64_t bytes);
  void erase_region(std::map<std::uint64_t, std::uint64_t>::iterator it);

  std::uint64_t capacity_;
  std::uint64_t total_free_;
  std::map<std::uint64_t, std::uint64_t> by_offset_;       // offset -> size
  std::multimap<std::uint64_t, std::uint64_t> by_size_;    // size -> offset
};

}  // namespace atlc::clampi
