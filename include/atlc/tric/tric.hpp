#pragma once

#include <cstdint>
#include <vector>

#include "atlc/graph/csr.hpp"
#include "atlc/intersect/cost_model.hpp"
#include "atlc/rma/runtime.hpp"

namespace atlc::tric {

using graph::CSRGraph;
using graph::EdgeIndex;
using graph::VertexId;

/// Reimplementation of TriC (Ghosh & Halappanavar, HPEC'20 Graph Challenge
/// champion), the paper's comparison baseline (Section IV-B).
///
/// TriC counts triangles per-vertex with a query-response scheme: the owner
/// of apex vertex i enumerates candidate closing edges (j,k) with
/// i < j < k, verifies them locally when it owns j, and otherwise sends a
/// query to owner(j). Queries and credit responses travel in BLOCKING
/// all-to-all rounds — every rank waits for the slowest each round, which
/// is the synchronisation cost the paper's asynchronous design removes.
struct TricConfig {
  /// The paper runs TriC with `-b` (edge-balanced vertex partitioning).
  bool balanced_partition = true;
  /// TriC-Buffered: cap on queued query entries (uint32 words) per
  /// destination rank; a full buffer forces an early exchange round.
  /// 0 = unbuffered (the original TriC). The paper caps buffers at 16 MiB.
  std::uint64_t buffer_entries = 0;
  /// Apex vertices enumerated per communication round.
  VertexId batch_vertices = 1024;
  /// Compute-cost model (same as the async engine, for a fair comparison).
  intersect::CostModel cost{};
  /// Per-query-entry two-sided handling cost (nanoseconds), charged once at
  /// the sender (packing into per-destination buffers) and once at the
  /// receiver (unpack + candidate lookup bookkeeping + response packing).
  /// Real TriC touches cold memory per candidate; 120 ns/entry per side is
  /// a conservative calibration (a single cold DRAM-resident binary search
  /// alone costs 100-300 ns). The async engine has no analogous per-entry
  /// message handling — its transfers land directly in the user buffer via
  /// RMA, which is precisely the paper's Section II-E argument for RMA.
  double two_sided_entry_ns = 120.0;
};

struct TricResult {
  std::uint64_t global_triangles = 0;
  /// Distinct triangles per vertex (note: half the edge-centric t(v) the
  /// async engine reports for undirected graphs).
  std::vector<std::uint64_t> per_vertex;
  std::vector<double> lcc;
  rma::Runtime::Result run;
  std::uint64_t rounds = 0;          ///< communication rounds executed
  std::uint64_t query_entries = 0;   ///< total uint32 words sent as queries
};

/// Run distributed TriC on `ranks` simulated ranks. Undirected input only
/// (TriC is an undirected triangle counter).
[[nodiscard]] TricResult run_tric(const CSRGraph& g, std::uint32_t ranks,
                                  const TricConfig& config = {},
                                  const rma::NetworkModel& net = {});

/// Edge-balanced 1D partition boundaries (TriC's -b flag): vertex blocks
/// chosen so each rank owns ~m/p adjacency entries. Returns p+1 boundaries.
[[nodiscard]] std::vector<VertexId> balanced_boundaries(const CSRGraph& g,
                                                        std::uint32_t ranks);

}  // namespace atlc::tric
