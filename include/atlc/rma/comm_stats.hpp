#pragma once

#include <cstdint>

namespace atlc::rma {

/// Per-rank communication counters. Benches aggregate these across ranks to
/// produce the paper's reported quantities (remote-read fraction, comm-time
/// share, average remote-read time, bytes moved).
struct CommStats {
  std::uint64_t remote_gets = 0;   ///< one-sided gets targeting other ranks
  std::uint64_t local_gets = 0;    ///< window gets that resolved locally
  std::uint64_t remote_bytes = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t barriers = 0;
  std::uint64_t messages_sent = 0;  ///< two-sided (TriC substrate)
  std::uint64_t bytes_sent = 0;
  /// Adjacency fetches that would have been remote but were served from the
  /// rank's hub replica instead (zero RMA; DESIGN.md §8). Not counted in
  /// remote_gets or local_gets — a hub hit issues no window get at all.
  std::uint64_t hub_local_hits = 0;
  /// Remote row-*segment* fetches issued under a 2D partition (a subset of
  /// the two-get protocols counted above; always 0 on 1D partitions, where
  /// the unit of fetch is the whole row). DESIGN.md §10.
  std::uint64_t segment_gets = 0;

  /// Virtual seconds this rank spent blocked on communication (waiting for
  /// get completion, synchronising collectives, two-sided exchanges).
  double comm_seconds = 0.0;
  /// Virtual seconds charged as local computation (thread-CPU measured).
  double compute_seconds = 0.0;

  CommStats& operator+=(const CommStats& o) {
    remote_gets += o.remote_gets;
    local_gets += o.local_gets;
    remote_bytes += o.remote_bytes;
    local_bytes += o.local_bytes;
    flushes += o.flushes;
    barriers += o.barriers;
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    hub_local_hits += o.hub_local_hits;
    segment_gets += o.segment_gets;
    comm_seconds += o.comm_seconds;
    compute_seconds += o.compute_seconds;
    return *this;
  }
};

}  // namespace atlc::rma
