#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "atlc/obs/trace.hpp"
#include "atlc/rma/comm_stats.hpp"
#include "atlc/rma/network_model.hpp"

namespace atlc::rma {

class RankCtx;
namespace detail {
struct SharedState;
struct WindowState;
}  // namespace detail

/// Completion token of a non-blocking one-sided get (MPI-RMA semantics: the
/// destination buffer may only be read after a flush). `complete_at` is the
/// virtual time at which the transfer finishes under the network model.
struct GetHandle {
  double complete_at = 0.0;
};

/// Type-erased window core. A window is the simulated equivalent of an MPI
/// window created over passive-target epochs: each rank exposes a read-only
/// memory region; any rank may `get` from any part without involving the
/// target. Between collective `refresh_window` calls the exposed data is
/// immutable (the paper's always-cache assumption); each refresh bumps the
/// window's epoch counter, making "the data behind this window changed" an
/// observable event consumers (clampi's epoch invalidation) can key on.
class WindowBase {
 public:
  WindowBase() = default;

  /// Non-blocking byte-granularity get. Data lands in `dst` immediately in
  /// this simulation, but the *virtual* completion respects alpha + s*beta
  /// and per-rank NIC serialisation; callers must flush before relying on
  /// virtual-time ordering.
  GetHandle get_bytes(std::uint32_t target, std::uint64_t byte_offset,
                      std::uint64_t bytes, void* dst) const;

  [[nodiscard]] std::uint64_t part_bytes(std::uint32_t rank) const;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Stable identifier of this window within the runtime (creation order).
  [[nodiscard]] std::uint64_t id() const;

  /// Version counter: 0 at creation, +1 per completed refresh_window
  /// collective. Stable between collectives (only refresh_window mutates
  /// it, under its barriers), so readers need no synchronisation beyond
  /// participating in the collectives themselves.
  [[nodiscard]] std::uint64_t epoch() const;

 protected:
  friend class RankCtx;
  detail::WindowState* state_ = nullptr;
  RankCtx* ctx_ = nullptr;
};

/// Typed view over a WindowBase, analogous to an MPI window of `T` elements.
template <typename T>
class Window : public WindowBase {
 public:
  Window() = default;
  explicit Window(WindowBase base) : WindowBase(base) {}

  GetHandle get(std::uint32_t target, std::uint64_t offset,
                std::uint64_t count, T* dst) const {
    return get_bytes(target, offset * sizeof(T), count * sizeof(T), dst);
  }

  [[nodiscard]] std::uint64_t part_size(std::uint32_t rank) const {
    return part_bytes(rank) / sizeof(T);
  }
};

/// Per-rank execution context handed to the SPMD body. Mirrors the MPI-RMA
/// toolbox the paper's implementation uses: window creation (collective),
/// one-sided gets + flush (passive target), plus the small set of
/// collectives needed around the asynchronous compute region.
class RankCtx {
 public:
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] std::uint32_t num_ranks() const;
  [[nodiscard]] const NetworkModel& net() const;

  [[nodiscard]] CommStats& stats() { return stats_; }
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Virtual clock (seconds since run start on this rank).
  [[nodiscard]] double now() const { return now_; }
  /// Charge locally-measured computation to the virtual clock.
  void charge_compute(double seconds);
  /// Charge communication wait time to the virtual clock. `why` labels the
  /// charge in traces ("flush_wait", "cache_hit", ...) — string literal.
  void charge_comm(double seconds, const char* why = "comm");

  /// This rank's trace recorder. Unbound (every record call a no-op) unless
  /// the run was launched with Options::trace; layers above hook in through
  /// it without further plumbing.
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }

  /// Collective window creation: every rank contributes its local part.
  /// Must be called by all ranks in the same order (like MPI_Win_create).
  ///
  /// LIFETIME: the exposed memory must stay valid until no peer can still
  /// get from it. As with MPI_Win_free, synchronise (e.g. ctx.barrier())
  /// before destroying an exposed buffer.
  template <typename T>
  Window<T> create_window(std::span<const T> local) {
    return Window<T>(create_window_bytes(local.data(),
                                         local.size() * sizeof(T), sizeof(T)));
  }

  /// Collective republication of a window's local part after the backing
  /// buffer was mutated (or reallocated: pointer and size may both change).
  /// Semantics follow an MPI_Win_fence pair around the mutation:
  ///   - entry barrier: orders the slowest reader's gets before any
  ///     republication;
  ///   - every rank re-registers its part (unchanged ranks pass the same
  ///     span) and the window's epoch() advances by exactly one;
  ///   - exit barrier: the new exposure and epoch are visible everywhere
  ///     before any rank resumes gets.
  /// The entry fence covers replacing the registration with a DIFFERENT
  /// buffer (keep the old one alive until the call returns). Mutating or
  /// freeing the OLD bytes before the call needs the caller's own barrier
  /// first — a peer may still be reading them.
  /// Must be called by all ranks, like create_window. See DESIGN.md §7.
  template <typename T>
  void refresh_window(Window<T>& w, std::span<const T> local) {
    refresh_window_bytes(w, local.data(), local.size() * sizeof(T));
  }

  /// Complete one pending get: advance the clock to its completion.
  void flush(GetHandle h);
  /// Complete all pending gets issued by this rank (MPI_Win_flush_all).
  void flush_all();

  /// Synchronising barrier: aligns all virtual clocks to the max + barrier
  /// cost. Used at setup/teardown only — the compute loop is barrier-free.
  void barrier();

  std::uint64_t allreduce_sum(std::uint64_t value);
  double allreduce_max(double value);

  /// Blocking all-to-all of uint32 payloads (the TriC substrate). Entry i of
  /// the argument is sent to rank i; entry i of the result was sent by rank
  /// i. Synchronising: models TriC's round structure where every rank waits
  /// for the slowest before proceeding.
  std::vector<std::vector<std::uint32_t>> all_to_all(
      const std::vector<std::vector<std::uint32_t>>& out);

 private:
  friend class Runtime;
  friend class WindowBase;

  RankCtx(detail::SharedState* shared, std::uint32_t rank)
      : shared_(shared), rank_(rank) {}

  WindowBase create_window_bytes(const void* data, std::uint64_t bytes,
                                 std::size_t elem_size);
  void refresh_window_bytes(WindowBase& w, const void* data,
                            std::uint64_t bytes);

  detail::SharedState* shared_;
  std::uint32_t rank_;
  CommStats stats_;
  obs::Tracer tracer_;
  double now_ = 0.0;
  double nic_free_ = 0.0;       ///< virtual time the injection port frees up
  std::uint64_t window_seq_ = 0;
};

/// SPMD runtime: runs the rank body on `ranks` OS threads sharing one
/// address space. This is the project's stand-in for `mpirun -n <p>` — see
/// DESIGN.md section 1 for why the substitution preserves the paper's
/// observable behaviour.
class Runtime {
 public:
  struct Options {
    std::uint32_t ranks = 2;
    NetworkModel net{};
    /// Optional trace sink: when set, every RankCtx's tracer is bound to it
    /// for the duration of the run (prepare()d for `ranks` before the rank
    /// threads start). Null = tracing off, hooks compile to a pointer test.
    obs::TraceCollector* trace = nullptr;
  };

  struct Result {
    std::vector<CommStats> stats;   ///< per-rank counters
    std::vector<double> clocks;     ///< per-rank final virtual time
    double makespan = 0.0;          ///< max over clocks ("longest rank")
    double wall_seconds = 0.0;      ///< real elapsed wall time of the run

    [[nodiscard]] CommStats total() const {
      CommStats t;
      for (const auto& s : stats) t += s;
      return t;
    }
  };

  using RankFn = std::function<void(RankCtx&)>;

  /// Launch the SPMD region and join. Exceptions thrown by any rank are
  /// rethrown (first one wins) after all threads have been joined.
  static Result run(const Options& options, const RankFn& fn);
};

}  // namespace atlc::rma
