#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace atlc::rma {

/// Alpha-beta cost model for the simulated interconnect.
///
/// The paper (Section IV-D1) models a remote read of s bytes as
/// t(s) = alpha + s*beta. Defaults are calibrated to the paper's platform
/// (Cray Aries, Piz Daint XC50): RMA gets "take up to 2-3 microseconds on a
/// Cray Aries network [21]" while "a DRAM access takes hundreds of
/// nanoseconds that become tens of nanoseconds if the data is in cache".
/// Remote bandwidth ~10 GB/s per NIC (Aries per-direction injection),
/// local DRAM stream ~25 GB/s.
///
/// Every figure in the paper depends on the *ratio* remote:local (~1-2
/// orders of magnitude), which these defaults preserve; absolute values are
/// only meaningful relative to each other.
struct NetworkModel {
  double remote_alpha_s = 2.0e-6;        ///< per-get setup latency
  double remote_byte_s = 3.0e-10;        ///< ~3.3 GB/s effective get bandwidth
  double local_alpha_s = 9.0e-8;         ///< DRAM access latency
  double local_byte_s = 4.0e-11;         ///< 25 GB/s local stream
  double cache_hit_alpha_s = 2.5e-8;     ///< CLaMPI hit: hash probe + copy
  /// CLaMPI miss-path bookkeeping: hash insert, free-region (AVL) search,
  /// possible eviction chain, and the copy into the cache buffer. The
  /// CLaMPI paper's overhead plots put this in the same range as the get
  /// latency itself for small transfers; 1 us makes caching break even at
  /// ~33% hit rate — which reproduces the paper's observation that
  /// over-partitioned runs (compulsory-miss dominated, e.g. LiveJournal at
  /// 64 nodes) are SLOWER cached than non-cached.
  double cache_miss_overhead_s = 1.0e-6;
  double sync_alpha_s = 1.0e-6;          ///< per tree-hop barrier latency

  [[nodiscard]] double time_remote(std::uint64_t bytes) const {
    return remote_alpha_s + static_cast<double>(bytes) * remote_byte_s;
  }
  [[nodiscard]] double time_local(std::uint64_t bytes) const {
    return local_alpha_s + static_cast<double>(bytes) * local_byte_s;
  }
  [[nodiscard]] double time_cache_hit(std::uint64_t bytes) const {
    return cache_hit_alpha_s + static_cast<double>(bytes) * local_byte_s;
  }
  /// Dissemination-barrier estimate: one alpha per tree level.
  [[nodiscard]] double time_barrier(std::uint32_t ranks) const {
    const double levels =
        std::ceil(std::log2(static_cast<double>(std::max(2u, ranks))));
    return sync_alpha_s * levels;
  }
};

}  // namespace atlc::rma
