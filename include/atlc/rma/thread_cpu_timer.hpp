#pragma once

#include <ctime>

namespace atlc::rma {

/// Per-thread CPU-time timer (CLOCK_THREAD_CPUTIME_ID).
///
/// The runtime oversubscribes cores when simulating many ranks on few CPUs,
/// so wall-clock time would count descheduled periods as "compute". Thread
/// CPU time measures only the cycles this rank actually consumed, which is
/// what gets charged to the rank's virtual clock.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start_); }

  void reset() { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start_); }

  [[nodiscard]] double elapsed_s() const {
    timespec now{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    return static_cast<double>(now.tv_sec - start_.tv_sec) +
           static_cast<double>(now.tv_nsec - start_.tv_nsec) * 1e-9;
  }

  /// Elapsed time and reset in one call (for incremental charging).
  double lap_s() {
    const double e = elapsed_s();
    reset();
    return e;
  }

 private:
  timespec start_{};
};

}  // namespace atlc::rma
