#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace atlc::util {

/// Aligned plain-text table printer. Every bench binary emits its results
/// through this so `bench_output.txt` is stable, grep-able, and diffs
/// cleanly against EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(std::uint64_t v);
  static std::string fmt_bytes(std::uint64_t bytes);
  static std::string fmt_percent(double fraction, int precision = 1);

  /// Render to stdout with a title banner.
  void print(const std::string& title) const;

  /// Render as a string (used by tests).
  [[nodiscard]] std::string to_string() const;

  /// Raw cells, for mirroring tables into JSON (BenchRecorder::add_table).
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atlc::util
