#pragma once

#include <string>
#include <vector>

#include "atlc/util/json.hpp"

namespace atlc::util {

/// Regression gate over two BenchRecorder documents (same scenario, two
/// builds). Used by `tools/bench_compare` and the CI bench-smoke job.
struct CompareOptions {
  /// Allowed fractional slowdown on gated metrics: a "lower is better"
  /// metric regresses when current > baseline * (1 + tolerance).
  double tolerance = 0.25;
  /// Metrics whose baseline median is below this (in the metric's unit) are
  /// reported but never gate — they sit in the noise floor.
  double min_value = 1e-6;
  /// When false, un-gated metrics are compared (and reported) too, but
  /// still never fail the gate.
  bool gated_only = true;
};

struct MetricComparison {
  std::string name;
  std::string unit;
  std::string direction;  ///< "lower" or "higher"
  bool gated = false;
  double baseline = 0.0;  ///< baseline median
  double current = 0.0;   ///< current median
  double ratio = 0.0;     ///< current / baseline
  bool regressed = false;
};

struct CompareReport {
  std::string scenario;
  std::vector<MetricComparison> metrics;
  std::vector<std::string> notes;  ///< mismatches, skipped metrics, errors
  bool ok = true;                  ///< false iff any gated metric regressed
                                   ///< or the documents are incomparable
};

/// Compare `current` against `baseline`. Both must be BenchRecorder
/// documents for the same scenario; a scenario or schema mismatch makes the
/// report not-ok. Metrics present in only one document are noted and
/// skipped (new metrics must not fail old baselines).
[[nodiscard]] CompareReport compare_bench_runs(const Json& baseline,
                                               const Json& current,
                                               const CompareOptions& options = {});

}  // namespace atlc::util
