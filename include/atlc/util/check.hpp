#pragma once

#include <cstdio>
#include <cstdlib>

/// ATLC_CHECK: precondition/invariant check that stays on in release builds.
/// The HPC kernels in this project are bounds-sensitive (CSR offsets, cache
/// buffer arithmetic); silent out-of-range arithmetic would corrupt results
/// rather than crash, so violations abort with a source location.
#define ATLC_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      std::fprintf(stderr, "ATLC_CHECK failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only check for hot loops (compiled out under NDEBUG).
#ifdef NDEBUG
#define ATLC_DCHECK(cond, msg) ((void)0)
#else
#define ATLC_DCHECK(cond, msg) ATLC_CHECK(cond, msg)
#endif
