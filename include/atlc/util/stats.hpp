#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace atlc::util {

/// Summary statistics over a sample of measurements.
///
/// The paper reports medians with 95% confidence intervals (LibLSB
/// methodology). The CI on the median is computed with the distribution-free
/// order-statistic method (binomial bounds); `Summary::ci_contains_within`
/// implements the paper's stopping rule "repeat until 5% of the median is
/// within the 95% CI".
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double median = 0.0;
  double ci95_lo = 0.0;  ///< lower bound of the 95% CI of the median
  double ci95_hi = 0.0;  ///< upper bound of the 95% CI of the median

  /// True if the 95% CI of the median lies within +/- `fraction*median`.
  [[nodiscard]] bool ci_within_fraction_of_median(double fraction) const;
};

/// Compute all summary statistics of `sample`. Does not modify the input.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Median of `sample` (copies internally; input unmodified).
[[nodiscard]] double median(std::span<const double> sample);

/// p-th percentile (0 <= p <= 100) using linear interpolation between ranks.
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Distribution-free 95% CI of the median via binomial order statistics
/// (Hahn & Meeker). Returns {lo, hi} ranks clamped to the sample range.
[[nodiscard]] std::pair<double, double> median_ci95(
    std::span<const double> sample);

/// Histogram with `bins` equal-width buckets over [min, max] of the data.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
};

[[nodiscard]] Histogram histogram(std::span<const double> sample,
                                  std::size_t bins);

/// Histogram with logarithmically spaced bucket edges over [lo, hi):
/// bucket i covers [lo*base^i, lo*base^(i+1)) with base = (hi/lo)^(1/bins).
/// Values below `lo` land in the underflow bucket, values >= `hi` in the
/// overflow bucket — latency distributions are heavy-tailed and a fixed
/// linear range either clips the tail or starves the bulk.
struct LogHistogram {
  double lo = 0.0;
  double hi = 0.0;
  double base = 0.0;  ///< per-bucket edge ratio
  std::size_t underflow = 0;
  std::size_t overflow = 0;
  std::vector<std::size_t> counts;

  /// `bins` log-spaced buckets over [lo, hi). Requires 0 < lo < hi, bins > 0.
  [[nodiscard]] static LogHistogram make(double lo, double hi,
                                         std::size_t bins);

  void add(double v);

  /// Lower edge of bucket `i` (edge(bins) == hi up to rounding).
  [[nodiscard]] double edge(std::size_t i) const;
  [[nodiscard]] std::size_t total() const;
};

/// LogHistogram spanning [min, max] of the positive values in `sample`
/// (non-positive values count as underflow). An empty sample — or one with
/// no positive values — yields a histogram with zero-count buckets over
/// [1, 2), so callers can serialize unconditionally.
[[nodiscard]] LogHistogram log_histogram(std::span<const double> sample,
                                         std::size_t bins);

}  // namespace atlc::util
