#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "atlc/util/stats.hpp"

namespace atlc::util {

/// LibLSB-style benchmark recorder (Hoefler & Belli, "Scientific Benchmarking
/// of Parallel Computing Systems", SC'15).
///
/// The paper's methodology (Section IV-A): "we report the median and repeated
/// every experiment until the 5% of the median was within the 95% CI".
/// `run_until_ci` implements exactly that stopping rule with configurable
/// bounds so the argless bench binaries stay fast.
class Recorder {
 public:
  struct Options {
    std::size_t min_reps = 5;      ///< always take at least this many samples
    std::size_t max_reps = 100;    ///< hard cap to bound bench runtime
    double ci_fraction = 0.05;     ///< stop when CI within +/- 5% of median
    std::size_t warmup_reps = 1;   ///< discarded leading runs
  };

  Recorder() : Recorder(Options{}) {}
  explicit Recorder(Options opts) : opts_(opts) {}

  /// Run `fn` repeatedly, timing each invocation, until the 95% CI of the
  /// median is within `ci_fraction` of the median (or `max_reps` is hit).
  /// Returns summary statistics of the retained samples in seconds.
  Summary run_until_ci(const std::function<void()>& fn);

  /// Record an externally-measured sample (seconds). Useful when the
  /// measured quantity is produced by a simulation rather than wall clock.
  void add_sample(double seconds) { samples_.push_back(seconds); }

  /// Stopping rule applied to the externally-recorded samples.
  [[nodiscard]] bool converged() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] Summary summary() const { return summarize(samples_); }
  void clear() { samples_.clear(); }

 private:
  Options opts_;
  std::vector<double> samples_;
};

}  // namespace atlc::util
