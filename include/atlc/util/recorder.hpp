#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "atlc/clampi/config.hpp"
#include "atlc/rma/comm_stats.hpp"
#include "atlc/serve/hot_cache.hpp"
#include "atlc/util/json.hpp"
#include "atlc/util/stats.hpp"

namespace atlc::util {

class Table;

/// LibLSB-style benchmark recorder (Hoefler & Belli, "Scientific Benchmarking
/// of Parallel Computing Systems", SC'15).
///
/// The paper's methodology (Section IV-A): "we report the median and repeated
/// every experiment until the 5% of the median was within the 95% CI".
/// `run_until_ci` implements exactly that stopping rule with configurable
/// bounds so the argless bench binaries stay fast.
class Recorder {
 public:
  struct Options {
    std::size_t min_reps = 5;      ///< always take at least this many samples
    std::size_t max_reps = 100;    ///< hard cap to bound bench runtime
    double ci_fraction = 0.05;     ///< stop when CI within +/- 5% of median
    std::size_t warmup_reps = 1;   ///< discarded leading runs
  };

  Recorder() : Recorder(Options{}) {}
  explicit Recorder(Options opts) : opts_(opts) {}

  /// Run `fn` repeatedly, timing each invocation, until the 95% CI of the
  /// median is within `ci_fraction` of the median (or `max_reps` is hit).
  /// Returns summary statistics of the retained samples in seconds.
  Summary run_until_ci(const std::function<void()>& fn);

  /// Record an externally-measured sample (seconds). Useful when the
  /// measured quantity is produced by a simulation rather than wall clock.
  void add_sample(double seconds) { samples_.push_back(seconds); }

  /// Stopping rule applied to the externally-recorded samples.
  [[nodiscard]] bool converged() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] Summary summary() const { return summarize(samples_); }
  void clear() { samples_.clear(); }

 private:
  Options opts_;
  std::vector<double> samples_;
};

/// JSON serializers for the counters every bench report carries.
[[nodiscard]] Json to_json(const rma::CommStats& s);
[[nodiscard]] Json to_json(const clampi::CacheStats& s);
[[nodiscard]] Json to_json(const serve::HotCacheStats& s);
[[nodiscard]] Json to_json(const Summary& s);

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status, getrusage fallback); 0 if unavailable. Recorded in
/// every bench document's env block — machine-dependent, never gated.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Structured JSON emitter behind `atlc_bench --json` (see DESIGN.md §5 for
/// the schema). One BenchRecorder per scenario run: environment/git metadata
/// is captured at construction, scenarios then declare named metrics and
/// append per-trial records (value + CommStats/CacheStats detail), mirror
/// their human-readable tables, and `finalize()` folds summary statistics
/// (median, CI) plus a determinism verdict into the document.
///
/// `tools/bench_compare` consumes these files: metrics declared with
/// `gate = true` participate in the regression gate.
class BenchRecorder {
 public:
  struct MetricOptions {
    std::string unit = "s";
    /// "lower" (times) or "higher" (throughputs) is better; bench_compare
    /// flips its regression test accordingly.
    std::string direction = "lower";
    /// Gated metrics fail bench_compare when they regress beyond tolerance.
    bool gate = false;
    /// Virtual-time metrics are bit-deterministic under the default cost
    /// model; wall-clock metrics are not and must not assert determinism.
    bool expect_deterministic = true;
  };

  BenchRecorder(std::string scenario, std::string paper_anchor,
                std::string title);

  /// Mutable metadata object (`seed`, `repeats`, `smoke`, `argv`, ...).
  Json& meta() { return root_["meta"]; }

  /// Declare `name` before adding trials; re-declaring is a no-op so sweep
  /// loops can declare inside the loop body.
  void declare_metric(const std::string& name, const MetricOptions& opts);

  /// Append one trial. `detail` (optional object) is merged into the trial
  /// record next to "value" — callers attach to_json(CommStats) etc. here.
  void add_trial(const std::string& metric, double value,
                 Json detail = Json());

  /// Free-form commentary ("paper shape check HOLDS", deviations, ...).
  void add_note(std::string note);

  /// Mirror a human-readable results table into the document.
  void add_table(const std::string& title, const Table& table);

  /// Compute per-metric summaries and the determinism verdicts, then return
  /// the completed document. Idempotent.
  const Json& finalize();

  /// finalize() + write to `path` (pretty-printed). False on I/O failure.
  bool write_file(const std::string& path);

  [[nodiscard]] const Json& doc() const { return root_; }

  /// Current JSON schema version emitted in every document.
  static constexpr int kSchemaVersion = 1;

 private:
  Json root_;
  bool finalized_ = false;
};

}  // namespace atlc::util
