#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace atlc::util {

/// Minimal declarative CLI flag parser for the bench/example binaries.
///
/// Accepted syntax: `--name=value`, `--name value`, and bare `--flag`
/// (boolean true). Unknown flags are an error so typos in sweep scripts
/// fail loudly. All bench binaries must run with zero arguments, so every
/// flag carries a default.
class Cli {
 public:
  Cli(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register flags before calling parse(). `help` is shown by --help.
  void add_flag(std::string name, std::string help, bool default_value);
  void add_int(std::string name, std::string help, std::int64_t default_value);
  void add_double(std::string name, std::string help, double default_value);
  void add_string(std::string name, std::string help,
                  std::string default_value);

  /// Parse argv. Returns false (after printing usage) on --help or error.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] bool get_flag(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] const std::string& get_string(std::string_view name) const;

  void print_usage() const;

 private:
  enum class Kind { Flag, Int, Double, String };
  struct Entry {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Entry& find(std::string_view name, Kind kind) const;
  bool set(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace atlc::util
