#pragma once

#include <chrono>
#include <cstdint>

namespace atlc::util {

/// Monotonic wall-clock timer with nanosecond resolution.
///
/// Used by the measurement recorder (LibLSB-style harness, Hoefler & Belli,
/// SC'15) and by the benches. All durations are reported in seconds as
/// `double` to keep arithmetic simple at the call sites.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  /// Restart the timer; subsequent `elapsed_*` calls measure from here.
  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last `reset()`.
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds since construction or the last `reset()`.
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

  /// Nanoseconds since construction or the last `reset()`.
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  Clock::time_point start_;
};

}  // namespace atlc::util
