#pragma once

#include <cstdint>
#include <limits>

namespace atlc::util {

/// SplitMix64: tiny, fast generator used to seed Xoshiro and for cheap
/// per-element hashing (e.g. vertex relabeling). Reference: Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA'14.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix of a value with a seed. Useful for deterministic
/// pseudo-random permutations (random relabeling) without storing state.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x,
                                         std::uint64_t seed = 0) {
  x += 0x9e3779b97f4a7c15ULL + seed * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256**: the project-wide PRNG. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions,
/// but the common paths (uniform ints/doubles, bernoulli) are provided
/// directly to keep generators allocation- and distribution-free.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the modulo bias is negligible for the bounds used in this project
  /// (graph sizes << 2^64).
  std::uint64_t next_below(std::uint64_t bound) {
    return mulhi64(operator()(), bound);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// High 64 bits of a 64x64 multiply. The portable 32-bit-halves fallback
  /// computes the exact same value as __int128, so the random stream is
  /// byte-identical across compilers (seed reproducibility is a project
  /// guarantee).
  static std::uint64_t mulhi64(std::uint64_t a, std::uint64_t b) {
#if defined(__SIZEOF_INT128__)
    __extension__ using uint128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<uint128>(a) * b) >> 64);
#else
    const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
    const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
    const std::uint64_t mid = a_hi * b_lo + ((a_lo * b_lo) >> 32);
    const std::uint64_t mid2 = a_lo * b_hi + (mid & 0xffffffffULL);
    return a_hi * b_hi + (mid >> 32) + (mid2 >> 32);
#endif
  }

  std::uint64_t state_[4];
};

}  // namespace atlc::util
