#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace atlc::util {

/// Minimal owned JSON document tree for the benchmark harness.
///
/// Objects preserve insertion order so emitted files diff cleanly across
/// runs; lookups are linear, which is fine at bench-report sizes. `dump`
/// escapes control characters and non-ASCII-safe sequences; `parse` is a
/// strict recursive-descent reader (the round trip is covered by
/// tests/test_bench_json.cpp). No external dependency: the container image
/// fixes the available packages, so the harness carries its own reader.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v) : type_(Type::Number), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}

  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Object access; creates the key (and coerces a Null to Object) like a
  /// map. Keys keep first-insertion order. Throws std::logic_error on a
  /// non-object scalar — silent member loss on dump() would be worse.
  Json& operator[](const std::string& key);
  /// Lookup without creation; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array append; coerces a Null to Array.
  void push_back(Json v);

  /// Element count of an array/object; 0 for scalars.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items()
      const {
    return members_;
  }
  [[nodiscard]] std::vector<std::pair<std::string, Json>>& items() {
    return members_;
  }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level;
  /// 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Returns nullopt and fills `*error` (if given) on failure.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> elems_;                            // Array
  std::vector<std::pair<std::string, Json>> members_;  // Object
};

/// Escape `s` as the *contents* of a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace atlc::util
