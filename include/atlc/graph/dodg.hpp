#pragma once

#include "atlc/graph/csr.hpp"

namespace atlc::graph {

/// The total order DODG orientation uses: u precedes v iff
/// (deg(u), u) < (deg(v), v). Ties in degree break by vertex id, so the
/// order — and therefore the orientation — is deterministic.
[[nodiscard]] inline bool dodg_precedes(VertexId deg_u, VertexId u,
                                        VertexId deg_v, VertexId v) {
  return deg_u != deg_v ? deg_u < deg_v : u < v;
}

/// Degree-ordered directed graph (DODG) preprocessing (ROADMAP item 1;
/// Sanders & Uhl, PAPERS.md): orient each undirected edge {u, v} from the
/// endpoint with the lower (degree, id) to the higher, producing a directed
/// CSR whose rows are out-neighborhoods (sorted by id, as all CSR rows are).
///
/// Properties the tests in tests/test_graph.cpp pin down:
///   - the result is acyclic (edges strictly increase in the (deg, id)
///     total order);
///   - every out-degree is bounded by sqrt(num_edges()): out-neighbors of v
///     all have degree >= deg(v), so out-deg(v) <= min(deg(v), 2m/deg(v));
///   - sum over oriented edges (u, v) of |N+(u) ∩ N+(v)| counts each
///     triangle of the undirected input EXACTLY once — the triangle
///     {a, b, c} with a < b < c in the order is found only at edge (a, b),
///     as c is an out-neighbor of both — with no per-edge floor trick
///     (intersect::count_common_above) needed.
///
/// Input must be an undirected CSR storing both orientations of every edge
/// (the repo's standard form); the result has half the edges and
/// Directedness::Directed.
[[nodiscard]] CSRGraph orient_dodg(const CSRGraph& g);

}  // namespace atlc::graph
