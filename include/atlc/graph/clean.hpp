#pragma once

#include "atlc/graph/edge_list.hpp"

namespace atlc::graph {

/// Options for the cleaning pipeline of paper Section II-B.
struct CleanOptions {
  bool remove_self_loops = true;
  bool remove_multi_edges = true;
  /// Remove vertices of degree < 2 (they cannot participate in a triangle).
  bool remove_degree_lt2 = true;
  /// If true, repeat degree<2 removal to a fixed point (removing a vertex
  /// can drop a neighbor below degree 2). The paper applies a single pass;
  /// the recursive variant is provided for the pruning ablation.
  bool recursive_degree_removal = false;
  /// Randomly relabel vertices (paper: applied when the input is
  /// degree-ordered, to avoid assigning all high-degree vertices to the
  /// same 1D partition). 0 disables; any other value seeds the permutation.
  std::uint64_t relabel_seed = 0;
};

/// Statistics of a cleaning run, reported by examples and benches.
struct CleanReport {
  std::size_t self_loops_removed = 0;
  std::size_t multi_edges_removed = 0;
  VertexId vertices_removed = 0;
  std::size_t degree_removal_rounds = 0;
};

/// Run the Section II-B pipeline on `edges` in place. Degree<2 removal
/// compacts the vertex id space (survivors are renumbered 0..n'-1).
/// For undirected inputs, "degree" is the symmetric degree; for directed
/// inputs a vertex is kept if deg+(v) + deg-(v) >= 2.
CleanReport clean(EdgeList& edges, const CleanOptions& options = {});

}  // namespace atlc::graph
