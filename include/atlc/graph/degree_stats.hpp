#pragma once

#include <cstdint>
#include <vector>

#include "atlc/graph/csr.hpp"

namespace atlc::graph {

/// Degree-distribution statistics used by Table II, Figure 4 and the cache
/// sizing heuristic of Section III-B1.
struct DegreeStats {
  VertexId min = 0;
  VertexId max = 0;
  double mean = 0.0;
  /// Maximum-likelihood power-law exponent alpha (Clauset-style MLE over
  /// degrees >= xmin). Meaningful only for heavy-tailed graphs.
  double power_law_alpha = 0.0;
  /// Gini coefficient of the degree distribution; ~0 for uniform graphs,
  /// high (>0.5) for scale-free ones. Used by benches to label graphs.
  double gini = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const CSRGraph& g, VertexId xmin = 2);

/// Vertex ids sorted by descending out-degree (ties by id).
[[nodiscard]] std::vector<VertexId> vertices_by_degree_desc(const CSRGraph& g);

/// Fraction of `weights` mass attributable to the top `fraction` of vertices
/// when vertices are ranked by descending degree. This is exactly the
/// quantity highlighted in paper Fig. 4 ("fraction of remote reads that
/// target the top 10% of the highest degree vertices").
[[nodiscard]] double top_degree_share(const CSRGraph& g,
                                      const std::vector<std::uint64_t>& weights,
                                      double fraction);

/// Reciprocity of a directed graph: fraction of edges whose reverse exists.
/// (Paper Section III-B1 cites high reciprocity to argue Observation 3.2
/// carries over to directed graphs.) Returns 1.0 for undirected graphs.
[[nodiscard]] double reciprocity(const CSRGraph& g);

}  // namespace atlc::graph
