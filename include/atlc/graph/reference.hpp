#pragma once

#include <cstdint>
#include <vector>

#include "atlc/graph/csr.hpp"

namespace atlc::graph {

/// Single-node reference results used to validate the distributed engines.
struct LccResult {
  /// Per-vertex edge-centric triangle count t(v) = sum over out-neighbors j
  /// of |adj(v) ∩ adj(j)| (paper Section II-C). For undirected graphs this
  /// equals 2x the number of distinct triangles at v.
  std::vector<std::uint64_t> triangles;
  /// Per-vertex LCC score, paper Eq. (1) for directed / Eq. (2) for
  /// undirected inputs. Vertices with deg < 2 score 0.
  std::vector<double> lcc;
  /// Global count of distinct triangles (undirected: each {i,j,k} once;
  /// directed: number of directed 3-cycles of the "transitive" form counted
  /// by the edge-centric method divided per-edge — see reference.cpp).
  std::uint64_t global_triangles = 0;
};

/// Edge-centric reference via sorted adjacency intersection (the same math
/// the distributed engine computes, minus distribution). O(sum_e min-degree).
[[nodiscard]] LccResult reference_lcc(const CSRGraph& g);

/// Independent naive check: for each vertex enumerate neighbor pairs and
/// probe edges with binary search — O(sum_v deg(v)^2 log). Used only on
/// small test graphs to validate reference_lcc itself.
[[nodiscard]] LccResult naive_lcc(const CSRGraph& g);

/// LCC normalisation shared by every engine in the project:
/// undirected (Eq. 2): C = t / (d(d-1)); directed (Eq. 1): C = t / (d+(d+-1)),
/// where t is the edge-centric triangle count above.
[[nodiscard]] double lcc_score(std::uint64_t t, VertexId out_degree);

}  // namespace atlc::graph
