#pragma once

#include <cstddef>
#include <vector>

#include "atlc/graph/types.hpp"

namespace atlc::graph {

/// Mutable edge-list representation used during graph construction and
/// cleaning. The CSR build (csr.hpp) consumes a cleaned EdgeList.
class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges,
           Directedness directedness)
      : n_(num_vertices), edges_(std::move(edges)), dir_(directedness) {}

  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] Directedness directedness() const { return dir_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() { return edges_; }

  void set_num_vertices(VertexId n) { n_ = n; }
  void set_directedness(Directedness d) { dir_ = d; }
  void add_edge(VertexId u, VertexId v) { edges_.push_back({u, v}); }

  /// Sort edges lexicographically and drop exact duplicates (multi-edges).
  void sort_and_dedup();

  /// Remove self loops (u == u).
  void remove_self_loops();

  /// For an undirected graph, ensure both orientations of every edge are
  /// present (idempotent; dedups afterwards). No-op for directed graphs.
  void symmetrize();

  /// True if for every (u,v) the reverse (v,u) is also present.
  /// Precondition: sorted.
  [[nodiscard]] bool is_symmetric() const;

 private:
  VertexId n_ = 0;
  std::vector<Edge> edges_;
  Directedness dir_ = Directedness::Undirected;
};

}  // namespace atlc::graph
