#pragma once

#include <cstdint>

#include "atlc/graph/edge_list.hpp"

namespace atlc::graph {

/// R-MAT recursive generator parameters (Chakrabarti, Zhan & Faloutsos,
/// SDM'04). The paper (Section IV-A) generates graphs with
/// a=0.57, b=c=0.19, d=0.05, scale x and edge factor y: 2^x vertices and
/// 2^(x+y)... NOTE: the paper says "2^x vertices and 2^x * y edges" — an
/// R-MAT with scale S and edge factor EF has 2^S vertices and EF*2^S edges
/// (Graph500 convention), which we follow.
struct RmatParams {
  unsigned scale = 16;       ///< 2^scale vertices
  unsigned edge_factor = 16; ///< edge_factor * 2^scale directed edge samples
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  std::uint64_t seed = 1;
  Directedness directedness = Directedness::Undirected;
  /// Perturb quadrant probabilities at each recursion level (+/-5%), the
  /// standard "noise" that avoids exact self-similarity artifacts.
  bool noise = true;
};

/// Generate an R-MAT edge list. Self-loops and duplicates are NOT removed
/// here; run graph::clean afterwards (matches the paper's pipeline, which
/// dedups and drops degree<2 vertices before building the CSR).
[[nodiscard]] EdgeList generate_rmat(const RmatParams& params);

/// Uniform (Erdos–Renyi G(n,m)-style) generator: `num_edges` edges sampled
/// uniformly at random. Used as the flat-degree control in paper Fig. 4.
struct UniformParams {
  VertexId num_vertices = 1u << 16;
  std::uint64_t num_edges = 1u << 20;
  std::uint64_t seed = 1;
  Directedness directedness = Directedness::Undirected;
};

[[nodiscard]] EdgeList generate_uniform(const UniformParams& params);

/// "Social circles" generator: a synthetic stand-in for the Facebook-circles
/// dataset [McAuley & Leskovec, NIPS'12] used in paper Figs. 1 and 5
/// (4,039 vertices / 88,234 edges, high clustering, skewed degrees).
///
/// Construction: vertices are grouped into power-law-sized communities
/// ("circles"); within a circle edges appear with high probability
/// `p_intra`; a small number of hub vertices join many circles; `p_rewire`
/// of edge endpoints are rewired uniformly to create weak ties. This yields
/// the two properties the paper's figures rely on: heavy-tailed degree
/// distribution (hub reuse) and high local clustering (many triangles).
struct CirclesParams {
  VertexId num_vertices = 4096;
  double avg_circle_size = 24.0;
  double circle_size_alpha = 2.0;  ///< power-law exponent of circle sizes
  double p_intra = 0.60;
  double p_rewire = 0.03;
  unsigned hubs = 28;              ///< vertices joining many circles
  unsigned circles_per_hub = 52;
  std::uint64_t seed = 7;
};
// Defaults are tuned so the 4096-vertex instance matches the Facebook
// circles dataset the paper uses in Figs. 1 and 5 (4,039 vertices, 88,234
// undirected edges, mean degree ~44, heavy-tailed, mean LCC ~0.5-0.6).

[[nodiscard]] EdgeList generate_circles(const CirclesParams& params);

}  // namespace atlc::graph
