#pragma once

// Hub-adjacency replication (DESIGN.md §8, docs/partitioning.md).
//
// On power-law graphs a handful of hub rows dominate remote-fetch traffic:
// every rank re-reads the same top-degree adjacency lists once per incident
// edge (paper Figs. 1/4/5 — the reuse that makes CLaMPI caching pay).
// Replicating just those rows on every rank removes the traffic entirely
// instead of caching it: the fetcher serves hub rows from local memory
// (zero RMA, counted as CommStats::hub_local_hits) and the CLaMPI cache
// stops churning on entries that are both the largest and the most reused.
//
// A HubReplica is built once from the global CSR (deterministic top-⌈δn⌉
// selection by descending degree, ties by id) and copied into every rank's
// DistGraph at build time — the copy is the simulation's stand-in for the
// replication broadcast, which build_dist_graph prices on the virtual
// clock. Rows are stored per-hub so the streaming engine can maintain them
// in place when a batch touches a hub (BatchApplier applies the already
// replicated effective ops to the rank's own copy).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "atlc/graph/types.hpp"

namespace atlc::graph {

class CSRGraph;

/// The replicated adjacency rows of the top-δ highest-degree vertices.
/// Value type: the engine builds one prototype and copies it per rank.
class HubReplica {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  HubReplica() = default;

  /// Select the ⌈fraction * |V|⌉ highest-degree vertices of `g` (ties
  /// broken by ascending id, so the pick is deterministic) and copy their
  /// adjacency rows. fraction <= 0 (or an empty graph) yields an empty
  /// replica with zero overhead anywhere.
  [[nodiscard]] static HubReplica build(const CSRGraph& g, double fraction);

  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t num_hubs() const { return ids_.size(); }

  /// Hub vertex ids, sorted ascending.
  [[nodiscard]] std::span<const VertexId> hub_ids() const { return ids_; }

  /// Index of `v` among the hubs, or npos. O(log num_hubs).
  [[nodiscard]] std::size_t find(VertexId v) const;
  [[nodiscard]] bool contains(VertexId v) const { return find(v) != npos; }

  /// Replicated adjacency row by hub slot (from find()). The span stays
  /// valid until the row is next mutated by apply().
  [[nodiscard]] std::span<const VertexId> neighbors_at(std::size_t slot) const {
    return rows_[slot];
  }

  /// Payload size of the replica (the bytes a replication broadcast moves;
  /// ids + rows).
  [[nodiscard]] std::uint64_t replica_bytes() const;

  /// Streaming maintenance: merge one effective op into v's replica row.
  /// No-op (returns 0) when v is not a hub; otherwise returns the row
  /// bytes rewritten so the caller can price the merge. The op must be
  /// effective against the replica's current state (same contract as
  /// BatchApplier's row rebuild).
  std::uint64_t apply(VertexId v, VertexId nbr, bool insert);

 private:
  std::vector<VertexId> ids_;                 ///< sorted ascending
  std::vector<std::vector<VertexId>> rows_;   ///< rows_[i] = adj(ids_[i])
};

}  // namespace atlc::graph
