#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "atlc/graph/types.hpp"
#include "atlc/util/check.hpp"

namespace atlc::graph {

class CSRGraph;

/// Partitioning scheme for distributing vertices over ranks.
enum class PartitionKind : std::uint8_t {
  /// Paper Section III-A: contiguous blocks of n/p vertices per rank
  /// (V_k = (k-1)n/p .. kn/p]). Can be imbalanced on skewed graphs.
  Block1D,
  /// Cyclic distribution [Lumsdaine et al., HPEC'20]: owner = v mod p.
  /// Listed by the paper as the balance-improving alternative; implemented
  /// for the partitioning ablation.
  Cyclic1D,
  /// Skew-aware contiguous ranges cut by a degree prefix sum, so each rank
  /// owns an ~equal share of degree-weighted edge endpoints instead of
  /// ~|V|/p vertices. make_partition() weights every local edge (v, j) by
  /// deg(v) + deg(j) — the linear-merge intersection cost the engine
  /// charges — which balances both the rank's edge-stream length and the
  /// hub-row work that Block1D piles onto whichever rank owns the hubs.
  /// Requires the degree sequence at construction: use
  /// Partition::degree_balanced() or make_partition(). With an all-equal
  /// degree sequence the cuts coincide with Block1D exactly. DESIGN.md §8,
  /// docs/partitioning.md.
  DegreeBalanced1D,
};

/// Maps global vertex ids to (rank, local index) and back. All methods are
/// branch-cheap inline functions: the distributed inner loop calls owner()
/// per edge endpoint. (DegreeBalanced1D pays one O(log p) binary search
/// over the p+1 cut points instead of closed-form arithmetic.)
class Partition {
 public:
  /// Closed-form kinds only; DegreeBalanced1D needs the degree sequence —
  /// construct it with degree_balanced() or make_partition().
  Partition(PartitionKind kind, VertexId num_vertices, std::uint32_t ranks)
      : kind_(kind), n_(num_vertices), p_(ranks) {
    ATLC_CHECK(ranks > 0, "partition needs >= 1 rank");
    ATLC_CHECK(kind != PartitionKind::DegreeBalanced1D,
               "DegreeBalanced1D needs degrees: use Partition::"
               "degree_balanced() or graph::make_partition()");
    base_ = n_ / p_;
    extra_ = n_ % p_;  // first `extra_` ranks own base_+1 vertices
  }

  /// DegreeBalanced1D factory: cut [0, n) into `ranks` contiguous ranges by
  /// greedy prefix sum over per-vertex weights — rank k takes vertices
  /// until its weight reaches ceil(remaining_weight / remaining_ranks).
  /// The greedy re-quota front-loads the remainder the same way Block1D
  /// does, so an all-equal weight sequence reproduces the Block1D
  /// boundaries exactly (and an all-zero tail degrades to vertex-count
  /// balance). Pass raw degrees for plain |E|/p endpoint balance, or the
  /// deg(v)+deg(j) edge weights make_partition() uses for work balance.
  [[nodiscard]] static Partition degree_balanced(
      std::span<const std::uint64_t> weights, std::uint32_t ranks);
  /// Convenience overload for a plain degree sequence.
  [[nodiscard]] static Partition degree_balanced(
      std::span<const VertexId> degrees, std::uint32_t ranks);

  [[nodiscard]] PartitionKind kind() const { return kind_; }
  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] std::uint32_t num_ranks() const { return p_; }

  /// Owning rank of a global vertex.
  [[nodiscard]] std::uint32_t owner(VertexId v) const {
    ATLC_DCHECK(v < n_, "vertex out of range");
    if (kind_ == PartitionKind::Cyclic1D) return v % p_;
    if (kind_ == PartitionKind::DegreeBalanced1D) {
      // First rank whose end cut exceeds v; empty ranges (cuts_[r] ==
      // cuts_[r+1]) are skipped by upper_bound automatically.
      const auto it = std::upper_bound(cuts_.begin() + 1, cuts_.end(), v);
      return static_cast<std::uint32_t>(it - (cuts_.begin() + 1));
    }
    // Block: the first `extra_` ranks own (base_+1) vertices each.
    const VertexId cutoff = (base_ + 1) * extra_;
    if (v < cutoff) return v / (base_ + 1);
    return extra_ + (v - cutoff) / base_;
  }

  /// Number of vertices owned by `rank`. For both closed-form kinds the
  /// counts coincide: the first n%p ranks own one extra vertex (Block1D
  /// front-loads them as blocks, Cyclic1D interleaves them).
  [[nodiscard]] VertexId part_size(std::uint32_t rank) const {
    ATLC_DCHECK(rank < p_, "rank out of range");
    if (kind_ == PartitionKind::DegreeBalanced1D)
      return cuts_[rank + 1] - cuts_[rank];
    return base_ + (rank < extra_ ? 1 : 0);
  }

  /// First global vertex owned by `rank` (contiguous kinds only).
  [[nodiscard]] VertexId block_begin(std::uint32_t rank) const {
    ATLC_DCHECK(kind_ != PartitionKind::Cyclic1D,
                "block_begin: contiguous kinds only");
    if (kind_ == PartitionKind::DegreeBalanced1D) return cuts_[rank];
    return rank < extra_ ? (base_ + 1) * rank
                         : (base_ + 1) * extra_ + base_ * (rank - extra_);
  }

  /// Local index of global vertex v on its owner rank.
  [[nodiscard]] VertexId local_index(VertexId v) const {
    if (kind_ == PartitionKind::Cyclic1D) return v / p_;
    return v - block_begin(owner(v));
  }

  /// Global id of local index `l` on `rank`.
  [[nodiscard]] VertexId global_id(std::uint32_t rank, VertexId l) const {
    if (kind_ == PartitionKind::Cyclic1D) return l * p_ + rank;
    return block_begin(rank) + l;
  }

 private:
  PartitionKind kind_;
  VertexId n_;
  std::uint32_t p_;
  VertexId base_;
  VertexId extra_;
  std::vector<VertexId> cuts_;  ///< p+1 range boundaries (DegreeBalanced1D)
};

/// Build a partition of `g` for `ranks`: closed-form for Block1D/Cyclic1D,
/// degree-prefix-sum cuts (fed from g's degree sequence) for
/// DegreeBalanced1D. The one entry point drivers should use when the kind
/// is runtime-selected.
[[nodiscard]] Partition make_partition(const CSRGraph& g, PartitionKind kind,
                                       std::uint32_t ranks);

/// Human-readable kind name ("block1d" / "cyclic1d" / "degree1d"), the
/// spelling the CLI and the bench JSON use.
[[nodiscard]] const char* partition_kind_name(PartitionKind kind);

}  // namespace atlc::graph
