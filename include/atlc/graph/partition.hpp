#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "atlc/graph/types.hpp"
#include "atlc/util/check.hpp"

namespace atlc::graph {

class CSRGraph;

/// Partitioning scheme for distributing vertices over ranks.
enum class PartitionKind : std::uint8_t {
  /// Paper Section III-A: contiguous blocks of n/p vertices per rank
  /// (V_k = (k-1)n/p .. kn/p]). Can be imbalanced on skewed graphs.
  Block1D,
  /// Cyclic distribution [Lumsdaine et al., HPEC'20]: owner = v mod p.
  /// Listed by the paper as the balance-improving alternative; implemented
  /// for the partitioning ablation.
  Cyclic1D,
  /// Skew-aware contiguous ranges cut by a degree prefix sum, so each rank
  /// owns an ~equal share of degree-weighted edge endpoints instead of
  /// ~|V|/p vertices. make_partition() weights every local edge (v, j) by
  /// deg(v) + deg(j) — the linear-merge intersection cost the engine
  /// charges — which balances both the rank's edge-stream length and the
  /// hub-row work that Block1D piles onto whichever rank owns the hubs.
  /// Requires the degree sequence at construction: use
  /// Partition::degree_balanced() or make_partition(). With an all-equal
  /// degree sequence the cuts coincide with Block1D exactly. DESIGN.md §8,
  /// docs/partitioning.md.
  DegreeBalanced1D,
  /// ROADMAP item 2 (Tom & Karypis, "A 2D Parallel Triangle Counting
  /// Algorithm"): ranks own *edge blocks* of a pr×pc grid over the vertex
  /// range instead of whole adjacency rows. Rank (r, c) — linearised as
  /// r*pc + c — stores, for every vertex in row block r, only the segment
  /// of its adjacency row whose neighbor ids fall in column block c. Both
  /// axes are cut with the Block1D closed form (front-loaded remainder).
  /// pr is the largest divisor of p with pr <= floor(sqrt(p)), pc = p/pr,
  /// so p = 8 -> 2x4, p = 12 -> 3x4, and prime p degrades to 1xp. The
  /// *home* rank of a vertex (owner()) is the diagonal-ish rank
  /// (row_block(v), col_block(v)) — the unique rank used for per-vertex
  /// bookkeeping; segment fetches resolve owners per (vertex, column
  /// block) via segment_owner(). DESIGN.md §10, docs/partitioning.md.
  Grid2D,
};

/// Maps global vertex ids to (rank, local index) and back. All methods are
/// branch-cheap inline functions: the distributed inner loop calls owner()
/// per edge endpoint. (DegreeBalanced1D pays one O(log p) binary search
/// over the p+1 cut points instead of closed-form arithmetic.)
class Partition {
 public:
  /// Closed-form kinds only; DegreeBalanced1D needs the degree sequence —
  /// construct it with degree_balanced() or make_partition().
  Partition(PartitionKind kind, VertexId num_vertices, std::uint32_t ranks)
      : kind_(kind), n_(num_vertices), p_(ranks) {
    ATLC_CHECK(ranks > 0, "partition needs >= 1 rank");
    ATLC_CHECK(kind != PartitionKind::DegreeBalanced1D,
               "DegreeBalanced1D needs degrees: use Partition::"
               "degree_balanced() or graph::make_partition()");
    base_ = n_ / p_;
    extra_ = n_ % p_;  // first `extra_` ranks own base_+1 vertices
    if (kind == PartitionKind::Grid2D) {
      // Largest divisor of p not exceeding floor(sqrt(p)) keeps the grid as
      // square as p allows while using every rank (prime p -> 1 x p).
      grid_rows_ = 1;
      for (std::uint32_t d = 1; d * d <= p_; ++d)
        if (p_ % d == 0) grid_rows_ = d;
      grid_cols_ = p_ / grid_rows_;
    }
  }

  /// DegreeBalanced1D factory: cut [0, n) into `ranks` contiguous ranges by
  /// greedy prefix sum over per-vertex weights — rank k takes vertices
  /// until its weight reaches ceil(remaining_weight / remaining_ranks).
  /// The greedy re-quota front-loads the remainder the same way Block1D
  /// does, so an all-equal weight sequence reproduces the Block1D
  /// boundaries exactly (and an all-zero tail degrades to vertex-count
  /// balance). Pass raw degrees for plain |E|/p endpoint balance, or the
  /// deg(v)+deg(j) edge weights make_partition() uses for work balance.
  [[nodiscard]] static Partition degree_balanced(
      std::span<const std::uint64_t> weights, std::uint32_t ranks);
  /// Convenience overload for a plain degree sequence.
  [[nodiscard]] static Partition degree_balanced(
      std::span<const VertexId> degrees, std::uint32_t ranks);

  [[nodiscard]] PartitionKind kind() const { return kind_; }
  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] std::uint32_t num_ranks() const { return p_; }

  /// Grid shape (1x1 for every 1D kind, pr x pc for Grid2D).
  [[nodiscard]] std::uint32_t grid_rows() const { return grid_rows_; }
  [[nodiscard]] std::uint32_t grid_cols() const { return grid_cols_; }
  /// Grid coordinates of a linearised rank id (rank = row * pc + col).
  [[nodiscard]] std::uint32_t grid_row(std::uint32_t rank) const {
    return rank / grid_cols_;
  }
  [[nodiscard]] std::uint32_t grid_col(std::uint32_t rank) const {
    return rank % grid_cols_;
  }

  /// Number of column blocks each adjacency row is split into. 1 for every
  /// 1D kind — the seam callers use to treat a whole row as the single
  /// segment and keep the 1D fast paths bit-identical.
  [[nodiscard]] std::uint32_t col_blocks() const {
    return kind_ == PartitionKind::Grid2D ? grid_cols_ : 1;
  }

  /// Column block containing global vertex id v (always 0 for 1D kinds).
  [[nodiscard]] std::uint32_t col_block_of(VertexId v) const {
    ATLC_DCHECK(v < n_, "vertex out of range");
    if (kind_ != PartitionKind::Grid2D) return 0;
    return axis_block(n_, grid_cols_, v);
  }

  /// Half-open global-id range [first, last) of column block b. For 1D
  /// kinds block 0 covers the whole vertex range.
  [[nodiscard]] std::pair<VertexId, VertexId> col_block_range(
      std::uint32_t b) const {
    if (kind_ != PartitionKind::Grid2D) {
      ATLC_DCHECK(b == 0, "1D partitions have a single column block");
      return {0, n_};
    }
    ATLC_DCHECK(b < grid_cols_, "column block out of range");
    return {axis_begin(n_, grid_cols_, b), axis_begin(n_, grid_cols_, b + 1)};
  }

  /// Rank storing the column-block-b segment of v's adjacency row. For 1D
  /// kinds (b == 0) this is owner(v): whole rows live on the vertex owner.
  [[nodiscard]] std::uint32_t segment_owner(VertexId v,
                                            std::uint32_t b) const {
    if (kind_ != PartitionKind::Grid2D) {
      ATLC_DCHECK(b == 0, "1D partitions have a single column block");
      return owner(v);
    }
    ATLC_DCHECK(v < n_ && b < grid_cols_, "segment out of range");
    return axis_block(n_, grid_rows_, v) * grid_cols_ + b;
  }

  /// Rank storing the segment of u's row that would contain neighbor v,
  /// i.e. the owner of edge slot (u, v) under the 2D grid. Degrades to
  /// owner(u) for 1D kinds.
  [[nodiscard]] std::uint32_t edge_owner(VertexId u, VertexId v) const {
    return segment_owner(u, col_block_of(v));
  }

  /// Owning rank of a global vertex. Under Grid2D this is the vertex's
  /// *home* rank (row_block(v), col_block(v)) — the unique rank charged
  /// with per-vertex bookkeeping (adjudication, hub skip pricing); note
  /// the home rank's stored segment is just one slice of v's row.
  [[nodiscard]] std::uint32_t owner(VertexId v) const {
    ATLC_DCHECK(v < n_, "vertex out of range");
    if (kind_ == PartitionKind::Cyclic1D) return v % p_;
    if (kind_ == PartitionKind::DegreeBalanced1D) {
      // First rank whose end cut exceeds v; empty ranges (cuts_[r] ==
      // cuts_[r+1]) are skipped by upper_bound automatically.
      const auto it = std::upper_bound(cuts_.begin() + 1, cuts_.end(), v);
      return static_cast<std::uint32_t>(it - (cuts_.begin() + 1));
    }
    if (kind_ == PartitionKind::Grid2D)
      return axis_block(n_, grid_rows_, v) * grid_cols_ +
             axis_block(n_, grid_cols_, v);
    // Block: the first `extra_` ranks own (base_+1) vertices each.
    const VertexId cutoff = (base_ + 1) * extra_;
    if (v < cutoff) return v / (base_ + 1);
    return extra_ + (v - cutoff) / base_;
  }

  /// Number of local row slots on `rank`. For both 1D closed-form kinds the
  /// counts coincide: the first n%p ranks own one extra vertex (Block1D
  /// front-loads them as blocks, Cyclic1D interleaves them). Under Grid2D
  /// every rank of grid row r holds a (segment) slot for each vertex of row
  /// block r, so the pc ranks of a grid row report the same size.
  [[nodiscard]] VertexId part_size(std::uint32_t rank) const {
    ATLC_DCHECK(rank < p_, "rank out of range");
    if (kind_ == PartitionKind::DegreeBalanced1D)
      return cuts_[rank + 1] - cuts_[rank];
    if (kind_ == PartitionKind::Grid2D) {
      const std::uint32_t r = grid_row(rank);
      return axis_begin(n_, grid_rows_, r + 1) - axis_begin(n_, grid_rows_, r);
    }
    return base_ + (rank < extra_ ? 1 : 0);
  }

  /// First global vertex owned by `rank` (contiguous kinds only; under
  /// Grid2D: first vertex of the rank's row block).
  [[nodiscard]] VertexId block_begin(std::uint32_t rank) const {
    ATLC_DCHECK(kind_ != PartitionKind::Cyclic1D,
                "block_begin: contiguous kinds only");
    if (kind_ == PartitionKind::DegreeBalanced1D) return cuts_[rank];
    if (kind_ == PartitionKind::Grid2D)
      return axis_begin(n_, grid_rows_, grid_row(rank));
    return rank < extra_ ? (base_ + 1) * rank
                         : (base_ + 1) * extra_ + base_ * (rank - extra_);
  }

  /// Local index of global vertex v on its owner rank.
  [[nodiscard]] VertexId local_index(VertexId v) const {
    if (kind_ == PartitionKind::Cyclic1D) return v / p_;
    return v - block_begin(owner(v));
  }

  /// Global id of local index `l` on `rank`.
  [[nodiscard]] VertexId global_id(std::uint32_t rank, VertexId l) const {
    if (kind_ == PartitionKind::Cyclic1D) return l * p_ + rank;
    return block_begin(rank) + l;
  }

 private:
  /// Closed-form Block1D arithmetic over one grid axis: split [0, n) into
  /// `parts` contiguous ranges, the first n % parts ranges one longer
  /// (exactly the Block1D remainder rule, reused for both grid axes).
  [[nodiscard]] static VertexId axis_begin(VertexId n, std::uint32_t parts,
                                           std::uint32_t r) {
    const VertexId base = n / parts;
    const VertexId extra = n % parts;
    return r < extra ? (base + 1) * r : (base + 1) * extra + base * (r - extra);
  }
  [[nodiscard]] static std::uint32_t axis_block(VertexId n,
                                                std::uint32_t parts,
                                                VertexId v) {
    const VertexId base = n / parts;
    const VertexId extra = n % parts;
    const VertexId cutoff = (base + 1) * extra;
    // base == 0 (n < parts) falls into the first branch: every v < cutoff.
    if (v < cutoff) return static_cast<std::uint32_t>(v / (base + 1));
    return static_cast<std::uint32_t>(extra + (v - cutoff) / base);
  }

  PartitionKind kind_;
  VertexId n_;
  std::uint32_t p_;
  VertexId base_;
  VertexId extra_;
  std::uint32_t grid_rows_ = 1;  ///< pr (Grid2D; 1 for 1D kinds)
  std::uint32_t grid_cols_ = 1;  ///< pc (Grid2D; 1 for 1D kinds)
  std::vector<VertexId> cuts_;  ///< p+1 range boundaries (DegreeBalanced1D)
};

/// Build a partition of `g` for `ranks`: closed-form for Block1D/Cyclic1D,
/// degree-prefix-sum cuts (fed from g's degree sequence) for
/// DegreeBalanced1D. The one entry point drivers should use when the kind
/// is runtime-selected.
[[nodiscard]] Partition make_partition(const CSRGraph& g, PartitionKind kind,
                                       std::uint32_t ranks);

/// Human-readable kind name ("block1d" / "cyclic1d" / "degree1d" /
/// "grid2d"), the spelling the CLI and the bench JSON use.
[[nodiscard]] const char* partition_kind_name(PartitionKind kind);

}  // namespace atlc::graph
