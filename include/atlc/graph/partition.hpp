#pragma once

#include <cstdint>

#include "atlc/graph/types.hpp"
#include "atlc/util/check.hpp"

namespace atlc::graph {

/// Partitioning scheme for distributing vertices over ranks.
enum class PartitionKind : std::uint8_t {
  /// Paper Section III-A: contiguous blocks of n/p vertices per rank
  /// (V_k = (k-1)n/p .. kn/p]). Can be imbalanced on skewed graphs.
  Block1D,
  /// Cyclic distribution [Lumsdaine et al., HPEC'20]: owner = v mod p.
  /// Listed by the paper as the balance-improving alternative; implemented
  /// for the partitioning ablation.
  Cyclic1D,
};

/// Maps global vertex ids to (rank, local index) and back. All methods are
/// branch-cheap inline functions: the distributed inner loop calls owner()
/// per edge endpoint.
class Partition {
 public:
  Partition(PartitionKind kind, VertexId num_vertices, std::uint32_t ranks)
      : kind_(kind), n_(num_vertices), p_(ranks) {
    ATLC_CHECK(ranks > 0, "partition needs >= 1 rank");
    base_ = n_ / p_;
    extra_ = n_ % p_;  // first `extra_` ranks own base_+1 vertices
  }

  [[nodiscard]] PartitionKind kind() const { return kind_; }
  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] std::uint32_t num_ranks() const { return p_; }

  /// Owning rank of a global vertex.
  [[nodiscard]] std::uint32_t owner(VertexId v) const {
    ATLC_DCHECK(v < n_, "vertex out of range");
    if (kind_ == PartitionKind::Cyclic1D) return v % p_;
    // Block: the first `extra_` ranks own (base_+1) vertices each.
    const VertexId cutoff = (base_ + 1) * extra_;
    if (v < cutoff) return v / (base_ + 1);
    return extra_ + (v - cutoff) / base_;
  }

  /// Number of vertices owned by `rank`.
  [[nodiscard]] VertexId part_size(std::uint32_t rank) const {
    ATLC_DCHECK(rank < p_, "rank out of range");
    if (kind_ == PartitionKind::Cyclic1D)
      return base_ + (rank < extra_ ? 1 : 0);
    return base_ + (rank < extra_ ? 1 : 0);
  }

  /// First global vertex owned by `rank` (Block1D only).
  [[nodiscard]] VertexId block_begin(std::uint32_t rank) const {
    ATLC_DCHECK(kind_ == PartitionKind::Block1D, "block_begin: block only");
    return rank < extra_ ? (base_ + 1) * rank
                         : (base_ + 1) * extra_ + base_ * (rank - extra_);
  }

  /// Local index of global vertex v on its owner rank.
  [[nodiscard]] VertexId local_index(VertexId v) const {
    if (kind_ == PartitionKind::Cyclic1D) return v / p_;
    return v - block_begin(owner(v));
  }

  /// Global id of local index `l` on `rank`.
  [[nodiscard]] VertexId global_id(std::uint32_t rank, VertexId l) const {
    if (kind_ == PartitionKind::Cyclic1D) return l * p_ + rank;
    return block_begin(rank) + l;
  }

 private:
  PartitionKind kind_;
  VertexId n_;
  std::uint32_t p_;
  VertexId base_;
  VertexId extra_;
};

}  // namespace atlc::graph
