#pragma once

#include <cstdint>
#include <string>

#include "atlc/graph/edge_list.hpp"

namespace atlc::graph {

/// Load a whitespace-separated text edge list (SNAP format): one `u v` pair
/// per line; lines starting with '#' or '%' are comments. Vertex ids are
/// compacted to 0..n-1 in first-appearance order. This is the loader that
/// reads the paper's real datasets (Orkut, LiveJournal, ...) when the SNAP
/// files are available; the benches fall back to synthetic proxies offline.
///
/// The containers are pre-sized from the file size (ids repeat, lines are
/// short), and inputs whose *distinct* id count exceeds `max_vertices` —
/// always clamped to the uint32 VertexId space — are rejected with an
/// "atlc:" error instead of silently wrapping the compacted ids.
[[nodiscard]] EdgeList load_text_edges(
    const std::string& path, Directedness directedness,
    std::uint64_t max_vertices = 0xffffffffull);

/// Write the text edge-list format.
void save_text_edges(const EdgeList& edges, const std::string& path);

/// Binary format: magic, version, directedness, n, m, then m (u,v) pairs of
/// uint32. Roughly 6x faster to load than text; used to snapshot generated
/// proxies between bench runs (see `atlc_run --convert`).
///
/// The loader validates the container before trusting it: magic and
/// version must match, the declared edge count must agree exactly with the
/// file size (a truncated copy used to slice the edge array silently), and
/// every endpoint must be < n. Violations throw std::runtime_error with an
/// "atlc:"-prefixed message naming the failure and the path.
[[nodiscard]] EdgeList load_binary_edges(const std::string& path);
void save_binary_edges(const EdgeList& edges, const std::string& path);

/// Format-sniffing loader: reads the first bytes and dispatches to the
/// binary loader when the ATLC magic matches, to the text loader otherwise.
/// `directedness` applies to text input only (the binary header records
/// its own).
[[nodiscard]] EdgeList load_edges(const std::string& path,
                                  Directedness directedness);

}  // namespace atlc::graph
