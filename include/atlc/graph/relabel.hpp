#pragma once

#include <cstdint>
#include <vector>

#include "atlc/graph/edge_list.hpp"

namespace atlc::graph {

/// Deterministic pseudo-random permutation of 0..n-1 (Fisher–Yates driven by
/// Xoshiro). Shared by `relabel_random` and the tests that must invert it.
[[nodiscard]] std::vector<VertexId> random_permutation(VertexId n,
                                                       std::uint64_t seed);

/// Randomly relabel all vertex ids in `edges` (paper Section II-B: applied
/// to degree-ordered inputs so 1D partitioning does not assign all the
/// highest-degree vertices to one process).
void relabel_random(EdgeList& edges, std::uint64_t seed);

/// Apply an explicit permutation: new id of v is `perm[v]`.
void relabel(EdgeList& edges, const std::vector<VertexId>& perm);

}  // namespace atlc::graph
