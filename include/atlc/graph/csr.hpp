#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "atlc/graph/edge_list.hpp"
#include "atlc/graph/types.hpp"

namespace atlc::graph {

/// Compressed Sparse Row graph (paper Fig. 2): `offsets[i]` is the index in
/// `adjacencies` where the adjacency list of vertex i starts; the list ends
/// at `offsets[i+1]`. Adjacency lists are kept sorted ascending — both
/// intersection kernels (paper Algorithms 1 and 2) require it.
class CSRGraph {
 public:
  CSRGraph() = default;

  /// Build from an edge list. The input does not have to be sorted; the
  /// builder counts, prefix-sums, fills, and sorts each adjacency list.
  static CSRGraph from_edges(const EdgeList& edges);

  /// Assemble from raw arrays (used by the distributed partitioner, which
  /// constructs per-rank local CSRs directly).
  static CSRGraph from_raw(VertexId num_vertices,
                           std::vector<EdgeIndex> offsets,
                           std::vector<VertexId> adjacencies,
                           Directedness directedness);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] Directedness directedness() const { return dir_; }

  /// Out-degree of v (paper: deg+). For undirected graphs this equals the
  /// degree since both orientations are stored.
  [[nodiscard]] VertexId degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted out-neighbors of v.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacencies_.data() + offsets_[v],
            adjacencies_.data() + offsets_[v + 1]};
  }

  /// True iff the edge u->v exists (binary search over sorted adjacency).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// In-degrees of all vertices (paper: deg-). O(n + m) scan; directed only
  /// differs from out-degree for directed graphs.
  [[nodiscard]] std::vector<VertexId> in_degrees() const;

  [[nodiscard]] std::span<const EdgeIndex> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const VertexId> adjacencies() const {
    return adjacencies_;
  }

  /// Size of the CSR representation in bytes (paper Table II column).
  [[nodiscard]] std::size_t csr_bytes() const {
    return offsets_.size() * sizeof(EdgeIndex) +
           adjacencies_.size() * sizeof(VertexId);
  }

  /// Every adjacency list sorted strictly ascending (no duplicate edges)?
  [[nodiscard]] bool adjacency_sorted_unique() const;

 private:
  std::vector<EdgeIndex> offsets_;      // size n+1
  std::vector<VertexId> adjacencies_;   // size m
  Directedness dir_ = Directedness::Undirected;
};

}  // namespace atlc::graph
