#pragma once

#include <cstdint>

namespace atlc::graph {

/// Vertex identifier. 32 bits covers every graph in the paper's Table II
/// (largest: R-MAT S30 with 2^30 vertices) while halving adjacency memory
/// and network traffic vs 64-bit ids — the same choice production graph
/// frameworks make.
using VertexId = std::uint32_t;

/// Index into a CSR adjacencies array. 64 bits: edge counts exceed 2^32
/// for the paper's large graphs (R-MAT S30: 1.7e10 directed edges).
using EdgeIndex = std::uint64_t;

/// A directed edge (u -> v). Undirected graphs store both orientations.
struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Graph directedness. Affects LCC normalisation (paper Eqs. 1 vs 2) and
/// generator symmetrisation.
enum class Directedness : std::uint8_t { Undirected, Directed };

}  // namespace atlc::graph
