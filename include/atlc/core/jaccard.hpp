#pragma once

#include <vector>

#include "atlc/core/lcc.hpp"

namespace atlc::core {

/// Distributed per-edge Jaccard similarity — the paper's future-work
/// direction (Section VI (ii): "investigating other graph problems that may
/// benefit from the proposed approach", citing the communication-efficient
/// Jaccard work [12]). The access pattern is identical to LCC — for each
/// local edge (u, v), read adj(v) (possibly remote) and intersect with
/// adj(u) — so it is a ~20-line kernel over core::EdgePipeline:
///
///   J(u, v) = |adj(u) ∩ adj(v)| / |adj(u) ∪ adj(v)|
///
/// Results are reported per adjacency slot: `similarity[k]` is J(u, v) for
/// the k-th entry of the graph's adjacencies array (the edge u->v where u
/// owns slot k). Link-prediction applications rank candidate edges by it.
/// The inherited EdgeAnalyticStats block (comm/cache/remote-read counters)
/// is aggregated by run_edge_analytic exactly as for every other analytic.
struct JaccardResult : EdgeAnalyticStats {
  std::vector<double> similarity;  ///< one per adjacency slot
};

/// Runs on the same EngineConfig as LCC (method, caching, pipeline depth,
/// partitioning all apply; `upper_triangle_only` must stay false).
[[nodiscard]] JaccardResult run_distributed_jaccard(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config = {},
    const rma::NetworkModel& net = {},
    graph::PartitionKind partition = graph::PartitionKind::Block1D);

/// Single-node reference for validation.
[[nodiscard]] std::vector<double> reference_jaccard(const CSRGraph& g);

}  // namespace atlc::core
