#pragma once

// The generic depth-k asynchronous edge-pipeline engine.
//
// The paper's core contribution is an edge-centric compute loop that fetches
// the remote adjacency of edge e_{i+1} while intersecting e_i (Section III-A
// double buffering). EdgePipeline factors that loop out of the individual
// analytics: it walks the rank's flattened edge stream, keeps up to k-1
// adjacency transfers in flight over a ring of k fetch buffers
// (EngineConfig::pipeline_depth), and hands each edge to an arbitrary
// kernel. LCC, global TC, Jaccard and the similarity measures are thin
// kernels over this engine; `run_edge_analytic` deduplicates the
// partition/SPMD-launch/stats-aggregation boilerplate around it.
// DESIGN.md §6 documents the kernel concept, the ring lifetime rules, and
// how depth interacts with the NIC-serialisation model.

#include <concepts>
#include <span>
#include <utility>
#include <vector>

#include "atlc/core/dist_graph.hpp"
#include "atlc/core/engine_config.hpp"
#include "atlc/core/fetcher.hpp"
#include "atlc/graph/hub_replica.hpp"
#include "atlc/util/check.hpp"

namespace atlc::core {

/// An edge kernel: invoked once per local edge, in edge-stream order, as
/// kernel(lv, j, adj_v, adj_j) where `lv` is the local index of the owning
/// vertex v, `j` the (global) neighbor, `adj_v` v's local adjacency and
/// `adj_j` the (possibly remotely fetched) adjacency of j. `adj_j` is only
/// valid during the call — the engine reuses its ring slot k fetches later.
/// Kernels charge their own compute time (ctx.charge_compute) so the
/// engine stays analytic-agnostic about cost.
template <typename K>
concept EdgeKernel =
    std::invocable<K&, VertexId, VertexId, std::span<const VertexId>,
                   std::span<const VertexId>>;

/// A segment kernel (2D partitions): invoked once per (local edge, column
/// block) as kernel(lv, j, block, seg_v, seg_j), where `seg_v` / `seg_j`
/// are the column-block-`block` restrictions of adj(v) / adj(j). Summing a
/// pair intersection over all blocks reproduces the whole-row count:
/// |adj(v) ∩ adj(j)| = Σ_b |seg(v,b) ∩ seg(j,b)|, because the blocks
/// partition the neighbor id range. BOTH spans may alias fetch-ring slots
/// (v's segments for other column blocks live on sibling ranks), so
/// neither is valid beyond the call.
template <typename K>
concept SegmentKernel =
    std::invocable<K&, VertexId, VertexId, std::uint32_t,
                   std::span<const VertexId>, std::span<const VertexId>>;

/// Per-rank counters harvested from a pipeline after run().
struct PipelineRankStats {
  std::uint64_t edges_processed = 0;
  std::uint64_t remote_edges = 0;  ///< edges whose neighbor list was remote
  /// Rank virtual clock when its compute phase ended, BEFORE the teardown
  /// barrier equalised the clocks (run_edge_analytic fills it). This is the
  /// number load-imbalance metrics must use: Runtime::Result::clocks are
  /// post-barrier and therefore identical across ranks.
  double busy_seconds = 0.0;
  clampi::CacheStats offsets_cache;  ///< zeroed when caching is off
  clampi::CacheStats adj_cache;
  std::vector<std::uint64_t> remote_reads;  ///< per global vertex, optional
  std::vector<clampi::EntryInfo> adj_cache_entries;  ///< optional snapshot
};

/// Statistics every edge analytic reports identically: the SPMD run record
/// plus pipeline/cache counters aggregated over all ranks. Analytic results
/// (RunResult, JaccardResult, SimilarityResult) derive from this, so a
/// stats field present for one analytic is present — and filled — for all.
struct EdgeAnalyticStats {
  rma::Runtime::Result run;  ///< per-rank comm stats + virtual clocks
  clampi::CacheStats offsets_cache_total;
  clampi::CacheStats adj_cache_total;
  /// Per-rank cache counters, in rank order (the *_total fields above are
  /// their field-wise sums — tests audit this invariant so a counter added
  /// to CacheStats cannot silently drop out of the aggregation).
  std::vector<clampi::CacheStats> offsets_cache_ranks;
  std::vector<clampi::CacheStats> adj_cache_ranks;
  std::uint64_t edges_processed = 0;
  std::uint64_t remote_edges = 0;  ///< edges whose neighbor list was remote
  std::vector<double> busy_clocks;  ///< per-rank pre-barrier virtual clocks
  std::vector<std::uint64_t> remote_reads;  ///< per global vertex, optional
  std::vector<clampi::EntryInfo> adj_cache_entries;  ///< all ranks, optional

  /// Fraction of processed edges requiring a remote adjacency fetch
  /// (paper Section IV-D2: 66% -> 98% for R-MAT S21 EF16, p=4 -> 64).
  /// Under Grid2D, remote_edges counts remote *segment* fetches (up to 2
  /// per (edge, block) item) while edges_processed still counts each local
  /// edge once, so the "fraction" can exceed 1 — it is then the average
  /// number of remote segment fetches per edge.
  [[nodiscard]] double remote_edge_fraction() const {
    return edges_processed
               ? static_cast<double>(remote_edges) /
                     static_cast<double>(edges_processed)
               : 0.0;
  }

  /// Load imbalance of the compute phase: max over mean of the per-rank
  /// pre-barrier clocks (1.0 = perfectly balanced; the D7 and `skew`
  /// scenarios report it). 1.0 when clocks were not recorded.
  [[nodiscard]] double imbalance() const;

  /// Fold one rank's counters in (driver aggregation; ranks in order).
  void absorb(PipelineRankStats&& rank);
};

/// Depth-k prefetch ring over one rank's flattened edge stream.
///
/// run() visits every local edge e_0..e_{m-1} in order. With effective
/// depth k (EngineConfig::effective_pipeline_depth), the adjacency fetch
/// for edge e_{i+k-1} is issued before the kernel runs on e_i, so up to
/// k-1 transfers ride under each intersection in virtual time. k=2
/// reproduces the paper's double buffering exactly (same begin/finish/
/// compute order, hence bit-identical virtual makespans); k=1 is the
/// fully synchronous loop.
class EdgePipeline {
 public:
  EdgePipeline(rma::RankCtx& ctx, const DistGraph& dg,
               const EngineConfig& config)
      : dg_(&dg),
        config_(&config),
        rank_(ctx.rank()),
        depth_(config.effective_pipeline_depth()),
        fetcher_(ctx, dg, config) {}

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] AdjacencyFetcher& fetcher() { return fetcher_; }

  /// Drive `kernel` over every local edge with depth-k prefetching.
  template <EdgeKernel K>
  void run(K&& kernel) {
    run_stream(
        static_cast<EdgeIndex>(dg_->adjacencies.size()),
        [this](EdgeIndex i) { return dg_->adjacencies[i]; },
        [this, lv = VertexId{0}](EdgeIndex ei) mutable {
          // Called once per ei in ascending order, so the owning-vertex
          // walk stays the original O(m + n) incremental scan.
          while (dg_->offsets[lv + 1] <= ei) ++lv;
          return lv;
        },
        kernel);
  }

  /// Drive `kernel` over an explicit edge list instead of the full local
  /// stream, with the same depth-k prefetch ring. Each entry is (lv, j):
  /// the LOCAL index of the owning vertex and the GLOBAL neighbor whose
  /// adjacency is fetched. The stream engine uses this to enumerate
  /// N(u) ∩ N(v) for a batch's update edges only, instead of recounting
  /// every local edge.
  template <EdgeKernel K>
  void run_over(std::span<const std::pair<VertexId, VertexId>> edges,
                K&& kernel) {
    run_stream(
        static_cast<EdgeIndex>(edges.size()),
        [edges](EdgeIndex i) { return edges[i].second; },
        [edges](EdgeIndex i) { return edges[i].first; }, kernel);
  }

  /// Drive a SegmentKernel over every (local edge, column block) item with
  /// the same depth-k prefetch ring as run(). The rank's local CSR is its
  /// segment store (each row slot holds only the rank's column-block slice),
  /// so the item space is the local segment-edge stream × col_blocks():
  /// item t = (edge t / B, block t % B). Each item issues up to TWO segment
  /// fetches — seg(v, b) lives on a sibling rank of this grid row unless
  /// b is this rank's own column block — which is why the fetcher doubles
  /// its ring under 2D partitions (2·depth live tokens at lookahead).
  /// edges_processed still counts each local edge once (at its block-0
  /// item); remote segment fetches land in remote_edges via the fetcher.
  template <SegmentKernel K>
  void run_segments(K&& kernel) {
    const auto& part = dg_->partition;
    const auto nb = static_cast<std::uint64_t>(part.col_blocks());
    const auto m = static_cast<std::uint64_t>(dg_->adjacencies.size());
    const std::uint64_t total = m * nb;

    // ei -> owning local vertex, precomputed: the prefetch lookahead
    // random-accesses the stream, so the O(m + n) incremental walk run()
    // uses cannot serve it.
    std::vector<VertexId> lv_of(m);
    {
      VertexId lv = 0;
      for (std::uint64_t ei = 0; ei < m; ++ei) {
        while (dg_->offsets[lv + 1] <= ei) ++lv;
        lv_of[ei] = static_cast<VertexId>(lv);
      }
    }

    struct SegPair {
      AdjacencyFetcher::Token v, j;
    };
    auto issue = [&](std::uint64_t t) {
      const auto ei = static_cast<std::size_t>(t / nb);
      const auto b = static_cast<std::uint32_t>(t % nb);
      const VertexId v = part.global_id(rank_, lv_of[ei]);
      SegPair p;
      p.v = fetcher_.begin(v, b);
      p.j = fetcher_.begin(dg_->adjacencies[ei], b);
      return p;
    };

    const auto lookahead = static_cast<std::uint64_t>(depth_) - 1;
    std::vector<SegPair> ring(std::max<std::uint64_t>(lookahead, 1));
    for (std::uint64_t p = 0; p < std::min(lookahead, total); ++p)
      ring[p % lookahead] = issue(p);

    for (std::uint64_t t = 0; t < total; ++t) {
      const auto ei = static_cast<std::size_t>(t / nb);
      const auto b = static_cast<std::uint32_t>(t % nb);
      const SegPair cur = lookahead > 0 ? ring[t % lookahead] : issue(t);
      const std::span<const VertexId> seg_v = fetcher_.finish(cur.v);
      const std::span<const VertexId> seg_j = fetcher_.finish(cur.j);
      if (lookahead > 0 && t + lookahead < total)
        ring[t % lookahead] = issue(t + lookahead);
      kernel(lv_of[ei], dg_->adjacencies[ei], b, seg_v, seg_j);
      if (b == 0) ++edges_run_;
    }
  }

  /// Snapshot this rank's pipeline counters (callable any time; counters
  /// are monotonic).
  [[nodiscard]] PipelineRankStats harvest();

 private:
  /// The one prefetch loop both entry points share. `target(i)` is the
  /// global vertex whose adjacency edge i fetches (pure; called for
  /// prefetch lookahead too); `lv_of(i)` is the local owner index (called
  /// exactly once per i, in ascending order, at kernel time).
  template <typename TargetFn, typename LvFn, EdgeKernel K>
  void run_stream(EdgeIndex m, TargetFn&& target, LvFn&& lv_of, K&& kernel) {
    const auto lookahead = static_cast<EdgeIndex>(depth_) - 1;

    // Tokens are issued and retired strictly FIFO, so the in-flight window
    // [e_i, e_{i+lookahead}) lives in a ring indexed by edge number: the
    // prologue issues e_0..e_{lookahead-1}, then iteration i retires e_i
    // and issues e_{i+lookahead} into the slot just vacated.
    std::vector<AdjacencyFetcher::Token> ring(
        std::max<EdgeIndex>(lookahead, 1));
    for (EdgeIndex p = 0; p < std::min(lookahead, m); ++p)
      ring[p % lookahead] = fetcher_.begin(target(p));

    for (EdgeIndex ei = 0; ei < m; ++ei) {
      const VertexId lv = lv_of(ei);
      const VertexId j = target(ei);
      const AdjacencyFetcher::Token t =
          lookahead > 0 ? ring[ei % lookahead] : fetcher_.begin(j);
      const std::span<const VertexId> adj_j = fetcher_.finish(t);
      if (lookahead > 0 && ei + lookahead < m)
        ring[ei % lookahead] = fetcher_.begin(target(ei + lookahead));
      kernel(lv, j, dg_->local_neighbors(lv), adj_j);
      ++edges_run_;
    }
  }

  const DistGraph* dg_;
  const EngineConfig* config_;
  std::uint32_t rank_;  ///< this rank's id (global_id needs it)
  std::size_t depth_;
  std::uint64_t edges_run_ = 0;  ///< kernel invocations across run() calls
  AdjacencyFetcher fetcher_;
};

/// A rank body for run_edge_analytic: runs the analytic's kernel(s) through
/// the pipeline and scatters this rank's outputs (ranks own disjoint output
/// slots, so direct writes into shared result arrays need no locks).
template <typename B>
concept EdgeAnalyticBody =
    std::invocable<B&, rma::RankCtx&, const DistGraph&, EdgePipeline&>;

/// The one driver every edge analytic shares: partition `g` over `ranks`
/// simulated ranks, launch the SPMD region, build the rank-local graph and
/// its pipeline, run `body`, and aggregate the per-rank pipeline counters
/// identically for every analytic (this symmetry is load-bearing: Jaccard
/// historically dropped offsets-cache stats and remote-read tracking).
template <EdgeAnalyticBody Body>
[[nodiscard]] EdgeAnalyticStats run_edge_analytic(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config,
    const rma::NetworkModel& net, graph::PartitionKind partition_kind,
    Body&& body) {
  const Partition partition = graph::make_partition(g, partition_kind, ranks);
  // One prototype, copied per rank by build_dist_graph (which also prices
  // the replication). Empty — and free — at the default hub_fraction = 0.
  const graph::HubReplica hub_replica =
      graph::HubReplica::build(g, config.hub_fraction);

  EdgeAnalyticStats out;
  if (config.track_remote_reads)
    out.remote_reads.assign(g.num_vertices(), 0);

  std::vector<PipelineRankStats> rank_stats(ranks);

  rma::Runtime::Options opts;
  opts.ranks = ranks;
  opts.net = net;
  opts.trace = config.trace;
  out.run = rma::Runtime::run(opts, [&](rma::RankCtx& ctx) {
    ctx.tracer().begin("build_graph");
    const DistGraph dg =
        build_dist_graph(ctx, g, partition, &hub_replica, config.slice_source);
    EdgePipeline pipeline(ctx, dg, config);
    ctx.tracer().end("build_graph");
    ctx.tracer().begin("pipeline");
    body(ctx, dg, pipeline);
    ctx.tracer().end("pipeline");
    rank_stats[ctx.rank()] = pipeline.harvest();
    rank_stats[ctx.rank()].busy_seconds = ctx.now();
    ctx.barrier();  // end-of-epoch synchronisation (teardown only)
  });

  for (auto& rs : rank_stats) out.absorb(std::move(rs));
  return out;
}

}  // namespace atlc::core
