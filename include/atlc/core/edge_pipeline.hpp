#pragma once

// The generic depth-k asynchronous edge-pipeline engine.
//
// The paper's core contribution is an edge-centric compute loop that fetches
// the remote adjacency of edge e_{i+1} while intersecting e_i (Section III-A
// double buffering). EdgePipeline factors that loop out of the individual
// analytics: it walks the rank's flattened edge stream, keeps up to k-1
// adjacency transfers in flight over a ring of k fetch buffers
// (EngineConfig::pipeline_depth), and hands each edge to an arbitrary
// kernel. LCC, global TC, Jaccard and the similarity measures are thin
// kernels over this engine; `run_edge_analytic` deduplicates the
// partition/SPMD-launch/stats-aggregation boilerplate around it.
// DESIGN.md §6 documents the kernel concept, the ring lifetime rules, and
// how depth interacts with the NIC-serialisation model.

#include <concepts>
#include <span>
#include <utility>
#include <vector>

#include "atlc/core/dist_graph.hpp"
#include "atlc/core/engine_config.hpp"
#include "atlc/core/fetcher.hpp"
#include "atlc/graph/hub_replica.hpp"
#include "atlc/util/check.hpp"

namespace atlc::core {

/// An edge kernel: invoked once per local edge, in edge-stream order, as
/// kernel(lv, j, adj_v, adj_j) where `lv` is the local index of the owning
/// vertex v, `j` the (global) neighbor, `adj_v` v's local adjacency and
/// `adj_j` the (possibly remotely fetched) adjacency of j. `adj_j` is only
/// valid during the call — the engine reuses its ring slot k fetches later.
/// Kernels charge their own compute time (ctx.charge_compute) so the
/// engine stays analytic-agnostic about cost.
template <typename K>
concept EdgeKernel =
    std::invocable<K&, VertexId, VertexId, std::span<const VertexId>,
                   std::span<const VertexId>>;

/// Per-rank counters harvested from a pipeline after run().
struct PipelineRankStats {
  std::uint64_t edges_processed = 0;
  std::uint64_t remote_edges = 0;  ///< edges whose neighbor list was remote
  /// Rank virtual clock when its compute phase ended, BEFORE the teardown
  /// barrier equalised the clocks (run_edge_analytic fills it). This is the
  /// number load-imbalance metrics must use: Runtime::Result::clocks are
  /// post-barrier and therefore identical across ranks.
  double busy_seconds = 0.0;
  clampi::CacheStats offsets_cache;  ///< zeroed when caching is off
  clampi::CacheStats adj_cache;
  std::vector<std::uint64_t> remote_reads;  ///< per global vertex, optional
  std::vector<clampi::EntryInfo> adj_cache_entries;  ///< optional snapshot
};

/// Statistics every edge analytic reports identically: the SPMD run record
/// plus pipeline/cache counters aggregated over all ranks. Analytic results
/// (RunResult, JaccardResult, SimilarityResult) derive from this, so a
/// stats field present for one analytic is present — and filled — for all.
struct EdgeAnalyticStats {
  rma::Runtime::Result run;  ///< per-rank comm stats + virtual clocks
  clampi::CacheStats offsets_cache_total;
  clampi::CacheStats adj_cache_total;
  std::uint64_t edges_processed = 0;
  std::uint64_t remote_edges = 0;  ///< edges whose neighbor list was remote
  std::vector<double> busy_clocks;  ///< per-rank pre-barrier virtual clocks
  std::vector<std::uint64_t> remote_reads;  ///< per global vertex, optional
  std::vector<clampi::EntryInfo> adj_cache_entries;  ///< all ranks, optional

  /// Fraction of processed edges requiring a remote adjacency fetch
  /// (paper Section IV-D2: 66% -> 98% for R-MAT S21 EF16, p=4 -> 64).
  [[nodiscard]] double remote_edge_fraction() const {
    return edges_processed
               ? static_cast<double>(remote_edges) /
                     static_cast<double>(edges_processed)
               : 0.0;
  }

  /// Load imbalance of the compute phase: max over mean of the per-rank
  /// pre-barrier clocks (1.0 = perfectly balanced; the D7 and `skew`
  /// scenarios report it). 1.0 when clocks were not recorded.
  [[nodiscard]] double imbalance() const;

  /// Fold one rank's counters in (driver aggregation; ranks in order).
  void absorb(PipelineRankStats&& rank);
};

/// Depth-k prefetch ring over one rank's flattened edge stream.
///
/// run() visits every local edge e_0..e_{m-1} in order. With effective
/// depth k (EngineConfig::effective_pipeline_depth), the adjacency fetch
/// for edge e_{i+k-1} is issued before the kernel runs on e_i, so up to
/// k-1 transfers ride under each intersection in virtual time. k=2
/// reproduces the paper's double buffering exactly (same begin/finish/
/// compute order, hence bit-identical virtual makespans); k=1 is the
/// fully synchronous loop.
class EdgePipeline {
 public:
  EdgePipeline(rma::RankCtx& ctx, const DistGraph& dg,
               const EngineConfig& config)
      : dg_(&dg),
        config_(&config),
        depth_(config.effective_pipeline_depth()),
        fetcher_(ctx, dg, config) {}

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] AdjacencyFetcher& fetcher() { return fetcher_; }

  /// Drive `kernel` over every local edge with depth-k prefetching.
  template <EdgeKernel K>
  void run(K&& kernel) {
    run_stream(
        static_cast<EdgeIndex>(dg_->adjacencies.size()),
        [this](EdgeIndex i) { return dg_->adjacencies[i]; },
        [this, lv = VertexId{0}](EdgeIndex ei) mutable {
          // Called once per ei in ascending order, so the owning-vertex
          // walk stays the original O(m + n) incremental scan.
          while (dg_->offsets[lv + 1] <= ei) ++lv;
          return lv;
        },
        kernel);
  }

  /// Drive `kernel` over an explicit edge list instead of the full local
  /// stream, with the same depth-k prefetch ring. Each entry is (lv, j):
  /// the LOCAL index of the owning vertex and the GLOBAL neighbor whose
  /// adjacency is fetched. The stream engine uses this to enumerate
  /// N(u) ∩ N(v) for a batch's update edges only, instead of recounting
  /// every local edge.
  template <EdgeKernel K>
  void run_over(std::span<const std::pair<VertexId, VertexId>> edges,
                K&& kernel) {
    run_stream(
        static_cast<EdgeIndex>(edges.size()),
        [edges](EdgeIndex i) { return edges[i].second; },
        [edges](EdgeIndex i) { return edges[i].first; }, kernel);
  }

  /// Snapshot this rank's pipeline counters (callable any time; counters
  /// are monotonic).
  [[nodiscard]] PipelineRankStats harvest();

 private:
  /// The one prefetch loop both entry points share. `target(i)` is the
  /// global vertex whose adjacency edge i fetches (pure; called for
  /// prefetch lookahead too); `lv_of(i)` is the local owner index (called
  /// exactly once per i, in ascending order, at kernel time).
  template <typename TargetFn, typename LvFn, EdgeKernel K>
  void run_stream(EdgeIndex m, TargetFn&& target, LvFn&& lv_of, K&& kernel) {
    const auto lookahead = static_cast<EdgeIndex>(depth_) - 1;

    // Tokens are issued and retired strictly FIFO, so the in-flight window
    // [e_i, e_{i+lookahead}) lives in a ring indexed by edge number: the
    // prologue issues e_0..e_{lookahead-1}, then iteration i retires e_i
    // and issues e_{i+lookahead} into the slot just vacated.
    std::vector<AdjacencyFetcher::Token> ring(
        std::max<EdgeIndex>(lookahead, 1));
    for (EdgeIndex p = 0; p < std::min(lookahead, m); ++p)
      ring[p % lookahead] = fetcher_.begin(target(p));

    for (EdgeIndex ei = 0; ei < m; ++ei) {
      const VertexId lv = lv_of(ei);
      const VertexId j = target(ei);
      const AdjacencyFetcher::Token t =
          lookahead > 0 ? ring[ei % lookahead] : fetcher_.begin(j);
      const std::span<const VertexId> adj_j = fetcher_.finish(t);
      if (lookahead > 0 && ei + lookahead < m)
        ring[ei % lookahead] = fetcher_.begin(target(ei + lookahead));
      kernel(lv, j, dg_->local_neighbors(lv), adj_j);
      ++edges_run_;
    }
  }

  const DistGraph* dg_;
  const EngineConfig* config_;
  std::size_t depth_;
  std::uint64_t edges_run_ = 0;  ///< kernel invocations across run() calls
  AdjacencyFetcher fetcher_;
};

/// A rank body for run_edge_analytic: runs the analytic's kernel(s) through
/// the pipeline and scatters this rank's outputs (ranks own disjoint output
/// slots, so direct writes into shared result arrays need no locks).
template <typename B>
concept EdgeAnalyticBody =
    std::invocable<B&, rma::RankCtx&, const DistGraph&, EdgePipeline&>;

/// The one driver every edge analytic shares: partition `g` over `ranks`
/// simulated ranks, launch the SPMD region, build the rank-local graph and
/// its pipeline, run `body`, and aggregate the per-rank pipeline counters
/// identically for every analytic (this symmetry is load-bearing: Jaccard
/// historically dropped offsets-cache stats and remote-read tracking).
template <EdgeAnalyticBody Body>
[[nodiscard]] EdgeAnalyticStats run_edge_analytic(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config,
    const rma::NetworkModel& net, graph::PartitionKind partition_kind,
    Body&& body) {
  const Partition partition = graph::make_partition(g, partition_kind, ranks);
  // One prototype, copied per rank by build_dist_graph (which also prices
  // the replication). Empty — and free — at the default hub_fraction = 0.
  const graph::HubReplica hub_replica =
      graph::HubReplica::build(g, config.hub_fraction);

  EdgeAnalyticStats out;
  if (config.track_remote_reads)
    out.remote_reads.assign(g.num_vertices(), 0);

  std::vector<PipelineRankStats> rank_stats(ranks);

  rma::Runtime::Options opts;
  opts.ranks = ranks;
  opts.net = net;
  out.run = rma::Runtime::run(opts, [&](rma::RankCtx& ctx) {
    const DistGraph dg = build_dist_graph(ctx, g, partition, &hub_replica);
    EdgePipeline pipeline(ctx, dg, config);
    body(ctx, dg, pipeline);
    rank_stats[ctx.rank()] = pipeline.harvest();
    rank_stats[ctx.rank()].busy_seconds = ctx.now();
    ctx.barrier();  // end-of-epoch synchronisation (teardown only)
  });

  for (auto& rs : rank_stats) out.absorb(std::move(rs));
  return out;
}

}  // namespace atlc::core
