#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "atlc/clampi/config.hpp"
#include "atlc/graph/types.hpp"
#include "atlc/intersect/cost_model.hpp"
#include "atlc/intersect/parallel.hpp"

namespace atlc::obs {
class TraceCollector;
}  // namespace atlc::obs

namespace atlc::core {

class LocalSliceSource;  // core/dist_graph.hpp

using graph::VertexId;

/// Sizing of the two CLaMPI caches (paper Section IV-D2): from a total
/// memory budget, C_offsets gets room for 0.4*|V| (start,end) pairs —
/// 6.4*|V| bytes with this engine's 64-bit offsets, capped at half the
/// budget — and C_adj takes the remainder (see paper_default in
/// src/core/edge_pipeline.cpp).
struct CacheSizing {
  std::uint64_t offsets_bytes = 1u << 20;
  std::uint64_t adj_bytes = 8u << 20;
  std::size_t offsets_slots = 0;  ///< 0 = derive via paper heuristics
  std::size_t adj_slots = 0;

  /// The paper's allocation rule for a given graph size and budget.
  static CacheSizing paper_default(VertexId num_vertices,
                                   std::uint64_t total_budget_bytes);
};

/// Configuration of the distributed edge-analytic engine (paper Algorithm 3
/// generalised by core::EdgePipeline): every analytic — LCC, TC, Jaccard,
/// the similarity measures — runs on the same configuration surface.
struct EngineConfig {
  intersect::Method method = intersect::Method::Hybrid;

  /// Kernel generation serving local intersections (intersect/tiered.hpp,
  /// DESIGN.md §9). `Paper` — the default — is the scalar binary/SSI/hybrid
  /// family selected by `method`, and is what every checked-in virtual-time
  /// smoke baseline was recorded against; it must stay the default so those
  /// baselines reproduce bit-identically. `Tiered` dispatches per list
  /// shape: a dense reusable bitmap for hub rows, galloping search for
  /// highly skewed pairs, branch-reduced merge for the long tail. Results
  /// are identical under either tier (all kernels are exact); only the
  /// charged virtual compute time differs.
  intersect::Tier intersect_tier = intersect::Tier::Paper;

  /// Shape thresholds of the Tiered dispatch (ignored under Paper).
  intersect::TierPolicy tier_policy{};

  /// Orient the input degree-ordered (graph::orient_dodg) before counting,
  /// so each triangle is enumerated exactly once with no per-edge
  /// upper-triangle floor trick. Honored by run_distributed_tc only: LCC
  /// and the similarity analytics need full undirected neighborhoods, so
  /// their drivers reject it. DESIGN.md §9.
  bool orient_dodg = false;

  /// Compute-cost model for virtual-time charging (see
  /// intersect/cost_model.hpp). Benches calibrate this once on startup.
  intersect::CostModel cost{};

  /// Enable CLaMPI caching (paper Section III-B). `cache_offsets` /
  /// `cache_adj` select which of the two windows is cached — paper Fig. 7
  /// studies each window's cache in isolation.
  bool use_cache = false;
  bool cache_offsets = true;
  bool cache_adj = true;
  CacheSizing cache_sizing{};
  /// Victim selection: LruPositional = CLaMPI default scores;
  /// UserScore = this paper's degree-centrality extension (Fig. 8).
  clampi::VictimPolicy victim_policy = clampi::VictimPolicy::LruPositional;
  bool cache_adaptive = false;

  /// Overlap adjacency transfers with intersections (paper Section III-A).
  /// `false` forces a depth-1 (fully synchronous) pipeline regardless of
  /// `pipeline_depth`; kept as a switch so ablations and `--no-overlap`
  /// toggle overlap without remembering the configured depth.
  bool double_buffer = true;

  /// Prefetch-pipeline depth k of the edge stream: the engine keeps up to
  /// k-1 adjacency transfers in flight under the current intersection, over
  /// a ring of k fetch buffers. k=2 is the paper's double buffering; k=1
  /// is no overlap; larger k hides more latency until the initiator's NIC
  /// serialisation saturates (DESIGN.md §2, `pipeline_depth` scenario).
  ///
  /// Interaction with the cache (`use_cache`): each begin() probes the
  /// CLaMPI windows, so a depth-k run holds up to k-1 *cache-resolved*
  /// transfers in flight too. Hits complete at hash-probe cost, freeing the
  /// NIC injection port for the remaining misses — which is why the cached
  /// columns of the `pipeline_depth` scenario keep improving past the depth
  /// where the uncached run saturates (DESIGN.md §6). Note the in-flight
  /// window also bounds span lifetime: a finish()ed span dies after the
  /// next k-1 remote begins, cached or not (see fetcher.hpp).
  std::size_t pipeline_depth = 2;

  /// Depth actually used by the engine: `double_buffer=false` maps to 1.
  [[nodiscard]] std::size_t effective_pipeline_depth() const {
    return double_buffer ? std::max<std::size_t>(1, pipeline_depth) : 1;
  }

  /// Fraction δ of the highest-degree vertices whose adjacency rows are
  /// replicated on every rank at graph-build time (graph::HubReplica,
  /// DESIGN.md §8). The fetcher then serves those rows from local memory —
  /// zero RMA, counted in CommStats::hub_local_hits — which removes the
  /// hub-row churn from the CLaMPI caches. 0 disables replication with
  /// zero overhead (bit-identical to builds without the feature); the
  /// `skew` scenario sweeps δ ∈ {0, 0.1%, 1%}. Per-vertex results are
  /// unchanged for any δ; virtual times change (fewer remote gets) but
  /// stay deterministic.
  double hub_fraction = 0.0;

  /// Count only common neighbors k > j (upper-triangle de-duplication,
  /// paper Section II-C). Halves work for global TC; per-vertex LCC needs
  /// the full count, so LCC runs keep this false.
  bool upper_triangle_only = false;

  /// OpenMP-parallel intersection (paper Section III-C). Off by default in
  /// distributed runs: ranks are already threads in this simulation.
  bool parallel_intersect = false;
  intersect::ParallelConfig parallel{};

  /// Out-of-core graph build: when non-null, run_edge_analytic passes this
  /// to build_dist_graph and each rank's local CSR slice is seek-read from
  /// it (ingest::SnapshotReader over a v2 partition-sliced snapshot,
  /// DESIGN.md §11) instead of sliced out of the in-memory global CSR.
  /// Results are bit-identical either way — the snapshot stores exactly
  /// the rows the in-memory build derives. Not owned; must outlive the
  /// run, and must be safe to call from all rank threads.
  const LocalSliceSource* slice_source = nullptr;

  /// Record, per target global vertex, how many remote reads it received
  /// (drives paper Figs. 1, 4, 5). Costs one counter array per rank.
  bool track_remote_reads = false;

  /// Snapshot the C_adj cache contents at the end of the compute phase
  /// (drives paper Fig. 5 right: entry sizes vs reuse).
  bool dump_cache_entries = false;

  /// Virtual-time trace sink (atlc::obs, DESIGN.md §12): when non-null,
  /// the drivers pass it to rma::Runtime::Options and every layer's hooks
  /// record into it. Null (the default) keeps every hook a single pointer
  /// test and the virtual-time results bit-identical to pre-tracing builds.
  /// Not owned; must outlive the run.
  obs::TraceCollector* trace = nullptr;
};

}  // namespace atlc::core
