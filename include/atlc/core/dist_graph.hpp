#pragma once

#include <vector>

#include "atlc/graph/csr.hpp"
#include "atlc/graph/hub_replica.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/rma/runtime.hpp"

namespace atlc::core {

using graph::CSRGraph;
using graph::Directedness;
using graph::EdgeIndex;
using graph::Partition;
using graph::VertexId;

/// Per-rank view of the distributed graph (paper Section III-A, Fig. 3):
/// the rank's CSR partition plus the two RMA windows every rank exposes —
/// `w_offsets` over its offsets array and `w_adj` over its adjacencies
/// array. Reading a remote adjacency list takes two gets: offsets[lv, lv+2)
/// from the owner's w_offsets, then adjacencies[start, end) from its w_adj.
///
/// Under PartitionKind::Grid2D the local CSR is the rank's *segment store*:
/// row slot lv holds only the slice of vertex global_id(rank, lv)'s
/// adjacency row whose neighbor ids fall in the rank's column block, and
/// the two-get protocol against segment_owner(v, b) naturally returns the
/// b-th segment — the owner's offsets delimit exactly its stored slice.
/// For 1D kinds col_blocks() == 1 and the "segment" is the whole row.
struct DistGraph {
  Partition partition;
  Directedness directedness = Directedness::Undirected;

  /// Local partition as a compact CSR over local vertex indices
  /// (global id = partition.global_id(rank, local_index)). Adjacency
  /// entries remain GLOBAL vertex ids.
  std::vector<EdgeIndex> offsets;       // n_local + 1
  std::vector<VertexId> adjacencies;    // local edge count

  /// This rank's copy of the replicated hub rows (empty unless the engine
  /// ran with EngineConfig::hub_fraction > 0). AdjacencyFetcher serves hub
  /// adjacencies from here instead of issuing the two-get protocol;
  /// stream::BatchApplier keeps the rows current per batch. DESIGN.md §8.
  graph::HubReplica hubs;

  rma::Window<EdgeIndex> w_offsets;
  rma::Window<VertexId> w_adj;

  [[nodiscard]] VertexId num_local() const {
    return static_cast<VertexId>(offsets.size() - 1);
  }
  [[nodiscard]] std::span<const VertexId> local_neighbors(VertexId lv) const {
    return {adjacencies.data() + offsets[lv],
            adjacencies.data() + offsets[lv + 1]};
  }
  [[nodiscard]] VertexId local_degree(VertexId lv) const {
    return static_cast<VertexId>(offsets[lv + 1] - offsets[lv]);
  }
};

/// Out-of-core seam: an object that can materialise a rank's local CSR
/// slice directly — offsets over local row slots plus global-id adjacency
/// entries, exactly the layout build_dist_graph derives from the global
/// CSR. ingest::SnapshotReader implements it by seek-reading the rank's
/// extent list out of a partition-sliced snapshot (DESIGN.md §11), which
/// is the paper's Fig. 3 step 1 done literally: each rank reads only its
/// chunk from disk. Implementations must be safe to call concurrently
/// from all rank threads.
class LocalSliceSource {
 public:
  virtual ~LocalSliceSource() = default;
  virtual void read_slice(const Partition& partition, std::uint32_t rank,
                          std::vector<EdgeIndex>& offsets,
                          std::vector<VertexId>& adjacencies) const = 0;
};

/// Build the rank-local partition from the (process-shared) global CSR and
/// expose it over RMA windows. Collective: every rank must call it.
///
/// In a real MPI deployment each rank would read only its chunk from disk
/// (paper Fig. 3, step 1); in this shared-address-space simulation the
/// "read" is a slice-copy out of the shared CSR, preserving the property
/// that a rank's accessible state is its own partition + the windows.
/// When `slice` is non-null the rank's slice comes from it instead —
/// seek-reads against a snapshot's per-rank extent index — and the global
/// CSR is only consulted for hub rows. Either path must produce identical
/// vectors; build_dist_graph cross-checks the row count.
///
/// When `hubs` is non-null and non-empty, the prototype replica is copied
/// into the rank's DistGraph and the replication traffic is priced on the
/// virtual clock: each rank is charged one modeled remote get per hub row
/// it does not own (the allgather a real deployment would run at load
/// time). With a null/empty replica nothing is charged — δ=0 runs are
/// bit-identical to pre-replication builds.
[[nodiscard]] DistGraph build_dist_graph(
    rma::RankCtx& ctx, const CSRGraph& global, const Partition& partition,
    const graph::HubReplica* hubs = nullptr,
    const LocalSliceSource* slice = nullptr);

}  // namespace atlc::core
