#pragma once

#include <vector>

#include "atlc/core/edge_pipeline.hpp"

namespace atlc::core {

/// Per-edge neighborhood-similarity analytics beyond Jaccard, added as
/// proof that core::EdgePipeline makes a new distributed analytic a small
/// kernel instead of a copied fetch/intersect loop. Both follow the
/// Jaccard reporting convention: `score[k]` belongs to the k-th entry of
/// the graph's adjacencies array (the edge u->v where u owns slot k), and
/// the inherited EdgeAnalyticStats block is aggregated by run_edge_analytic
/// identically to every other analytic.
struct SimilarityResult : EdgeAnalyticStats {
  std::vector<double> score;  ///< one per adjacency slot
};

/// Overlap (Szymkiewicz–Simpson) coefficient per edge:
///
///   O(u, v) = |adj(u) ∩ adj(v)| / min(|adj(u)|, |adj(v)|)
///
/// The normalisation by the smaller neighborhood makes hub-leaf edges
/// comparable to hub-hub edges, which plain Jaccard suppresses. Runs on the
/// unchanged LCC access pattern (fetch adj(v), count the intersection).
[[nodiscard]] SimilarityResult run_distributed_overlap(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config = {},
    const rma::NetworkModel& net = {},
    graph::PartitionKind partition = graph::PartitionKind::Block1D);

/// Adamic–Adar index per edge:
///
///   AA(u, v) = sum over w in adj(u) ∩ adj(v) of 1 / ln(deg(w))
///
/// weighting each common neighbor by the inverse log of its (global)
/// out-degree — rare shared neighbors count more. Common neighbors of
/// out-degree < 2 contribute 0 (ln(1) = 0 has no meaningful inverse; they
/// only occur on directed graphs, since cleaning removes them otherwise).
/// Needs deg(w) for arbitrary global w, so each rank replicates the degree
/// vector once at setup by reading every peer's offsets window — a one-shot
/// O(|V|) transfer charged to the virtual clock, after which the per-edge
/// loop is the standard pipeline with an enumerating (for_each_common)
/// kernel charged at SSI cost.
[[nodiscard]] SimilarityResult run_distributed_adamic_adar(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config = {},
    const rma::NetworkModel& net = {},
    graph::PartitionKind partition = graph::PartitionKind::Block1D);

/// Single-node references for validation (same slot layout and, for
/// Adamic–Adar, the same ascending summation order, so distributed results
/// match bit-for-bit).
[[nodiscard]] std::vector<double> reference_overlap(const CSRGraph& g);
[[nodiscard]] std::vector<double> reference_adamic_adar(const CSRGraph& g);

}  // namespace atlc::core
