#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atlc/clampi/cached_window.hpp"
#include "atlc/core/dist_graph.hpp"
#include "atlc/core/engine_config.hpp"

namespace atlc::core {

/// Fetches the adjacency list of an arbitrary global vertex, implementing
/// the paper's two-get protocol (Fig. 3 steps 4-5):
///   1. get offsets[lv, lv+2) from the owner's w_offsets -> (start, end);
///   2. get adjacencies[start, end) from the owner's w_adj.
/// Step 1 is synchronous (step 2 depends on its result); step 2 can stay in
/// flight while the caller computes — that is the engine's pipelining.
///
/// With caching enabled, both gets go through CLaMPI-style CachedWindows.
/// Per the paper, C_offsets always uses CLaMPI's default eviction scores
/// (there is no useful application score before the degree is known), while
/// C_adj uses the configured policy, scoring entries by the out-degree
/// learned from step 1 (Section III-B2).
///
/// When the DistGraph carries a hub replica (EngineConfig::hub_fraction),
/// begin() resolves replicated hub rows like local ones — straight from
/// rank memory, no get, no cache probe, no ring slot — and counts each such
/// save in CommStats::hub_local_hits (DESIGN.md §8). The returned span
/// aliases the replica row and stays valid until the row is next mutated
/// (static runs never mutate it; the stream engine mutates only inside the
/// collective apply step, which no fetch overlaps).
///
/// ## Buffer-ring lifetime contract
///
/// Remote fetches land in a ring of `EngineConfig::effective_pipeline_depth`
/// buffers (doubled under a 2D partition, where each pipeline item issues
/// up to two segment fetches), so at most `ring_size()` fetches may be live
/// — in flight or with their finish()ed span still being read — at once. The span returned by
/// finish(t) aliases t's ring slot and stays valid **until the slot is
/// reused**, i.e. for the next `depth - 1` begin()s of remote non-empty
/// adjacencies; after that the span reads the next fetch's data. Each slot
/// carries a generation counter stamped into the Token by begin() and
/// checked by finish() (debug builds, ATLC_DCHECK), so completing a fetch
/// whose slot was already recycled aborts instead of silently returning
/// another vertex's adjacency. Local and empty adjacencies resolve without
/// consuming a slot and are exempt from the contract.
class AdjacencyFetcher {
 public:
  AdjacencyFetcher(rma::RankCtx& ctx, const DistGraph& dg,
                   const EngineConfig& config);

  /// In-flight adjacency fetch. At most ring_size() may exist concurrently
  /// (the engine's current + prefetched next k-1); each remote non-empty
  /// fetch occupies one ring slot until the slot is recycled.
  struct Token {
    bool local = false;
    std::span<const VertexId> local_span{};
    std::size_t slot = 0;
    std::uint64_t generation = 0;  ///< slot generation at begin() time
    std::uint64_t count = 0;
    VertexId degree = 0;
    bool cached = false;
    clampi::CachedWindow<VertexId>::Pending pending{};
    rma::GetHandle handle{};
  };

  /// Start fetching adj(v) (the whole row). Local vertices resolve
  /// immediately. Claims the least-recently-used ring slot for remote
  /// vertices, invalidating the span of the fetch issued ring_size() remote
  /// begins ago. Whole-row fetches only exist on 1D partitions
  /// (col_blocks() == 1); debug builds abort otherwise.
  [[nodiscard]] Token begin(VertexId v);

  /// Start fetching the column-block-b segment of adj(v) — the slice of
  /// v's adjacency row whose neighbor ids fall in
  /// partition.col_block_range(b). The two-get protocol is unchanged: the
  /// segment owner's local offsets delimit exactly its stored slice, so
  /// "fetch the owner's row lv" *is* the segment fetch. CLaMPI entries are
  /// keyed by (target rank, offset, count) and therefore already
  /// segment-granular; distinct segments of one row never collide. On 1D
  /// partitions b must be 0 and this is begin(v) — byte-identical
  /// behaviour, so 1D virtual-time baselines are unaffected.
  [[nodiscard]] Token begin(VertexId v, std::uint32_t col_block);

  /// Complete the fetch; see the class comment for the returned span's
  /// lifetime. Debug builds abort if t's slot was already recycled.
  [[nodiscard]] std::span<const VertexId> finish(const Token& t);

  /// Number of fetch buffers (== the engine's effective pipeline depth).
  [[nodiscard]] std::size_t ring_size() const { return buffers_.size(); }

  [[nodiscard]] bool has_offsets_cache() const {
    return c_offsets_.has_value();
  }
  [[nodiscard]] bool has_adj_cache() const { return c_adj_.has_value(); }
  [[nodiscard]] clampi::Cache& offsets_cache() { return c_offsets_->cache(); }
  [[nodiscard]] clampi::Cache& adj_cache() { return c_adj_->cache(); }

  /// Remote adjacency fetches performed (== remote edges processed).
  [[nodiscard]] std::uint64_t remote_fetches() const { return remote_fetches_; }

  /// Per-global-vertex remote read counts (empty unless
  /// EngineConfig::track_remote_reads).
  [[nodiscard]] const std::vector<std::uint64_t>& remote_reads() const {
    return remote_reads_;
  }

 private:
  rma::RankCtx* ctx_;
  const DistGraph* dg_;
  const EngineConfig* config_;
  std::optional<clampi::CachedWindow<EdgeIndex>> c_offsets_;
  std::optional<clampi::CachedWindow<VertexId>> c_adj_;
  std::vector<std::vector<VertexId>> buffers_;   ///< ring of depth slots
  std::vector<std::uint64_t> generations_;       ///< per-slot recycle count
  std::size_t next_slot_ = 0;
  std::uint64_t remote_fetches_ = 0;
  std::uint64_t in_flight_ = 0;  ///< claimed ring slots (trace counter only)
  std::vector<std::uint64_t> remote_reads_;
};

}  // namespace atlc::core
