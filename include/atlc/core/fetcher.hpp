#pragma once

#include <optional>
#include <span>
#include <vector>

#include "atlc/clampi/cached_window.hpp"
#include "atlc/core/dist_graph.hpp"
#include "atlc/core/lcc.hpp"

namespace atlc::core {

/// Fetches the adjacency list of an arbitrary global vertex, implementing
/// the paper's two-get protocol (Fig. 3 steps 4-5):
///   1. get offsets[lv, lv+2) from the owner's w_offsets -> (start, end);
///   2. get adjacencies[start, end) from the owner's w_adj.
/// Step 1 is synchronous (step 2 depends on its result); step 2 can stay in
/// flight while the caller computes — that is the engine's double buffering.
///
/// With caching enabled, both gets go through CLaMPI-style CachedWindows.
/// Per the paper, C_offsets always uses CLaMPI's default eviction scores
/// (there is no useful application score before the degree is known), while
/// C_adj uses the configured policy, scoring entries by the out-degree
/// learned from step 1 (Section III-B2).
class AdjacencyFetcher {
 public:
  AdjacencyFetcher(rma::RankCtx& ctx, const DistGraph& dg,
                   const EngineConfig& config);

  /// In-flight adjacency fetch. At most two may exist concurrently (the
  /// engine's current + prefetched next); each occupies one buffer slot.
  struct Token {
    bool local = false;
    std::span<const VertexId> local_span{};
    int slot = 0;
    std::uint64_t count = 0;
    VertexId degree = 0;
    bool cached = false;
    clampi::CachedWindow<VertexId>::Pending pending{};
    rma::GetHandle handle{};
  };

  /// Start fetching adj(v). Local vertices resolve immediately.
  [[nodiscard]] Token begin(VertexId v);

  /// Complete the fetch; the returned span stays valid until the slot is
  /// reused (i.e. one more begin() after the next).
  [[nodiscard]] std::span<const VertexId> finish(const Token& t);

  [[nodiscard]] bool has_offsets_cache() const {
    return c_offsets_.has_value();
  }
  [[nodiscard]] bool has_adj_cache() const { return c_adj_.has_value(); }
  [[nodiscard]] clampi::Cache& offsets_cache() { return c_offsets_->cache(); }
  [[nodiscard]] clampi::Cache& adj_cache() { return c_adj_->cache(); }

  /// Remote adjacency fetches performed (== remote edges processed).
  [[nodiscard]] std::uint64_t remote_fetches() const { return remote_fetches_; }

  /// Per-global-vertex remote read counts (empty unless
  /// EngineConfig::track_remote_reads).
  [[nodiscard]] const std::vector<std::uint64_t>& remote_reads() const {
    return remote_reads_;
  }

 private:
  rma::RankCtx* ctx_;
  const DistGraph* dg_;
  const EngineConfig* config_;
  std::optional<clampi::CachedWindow<EdgeIndex>> c_offsets_;
  std::optional<clampi::CachedWindow<VertexId>> c_adj_;
  std::vector<VertexId> buffers_[2];
  int next_slot_ = 0;
  std::uint64_t remote_fetches_ = 0;
  std::vector<std::uint64_t> remote_reads_;
};

}  // namespace atlc::core
