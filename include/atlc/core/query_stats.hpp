#pragma once

// Per-query cost accounting for the serving layer (atlc::serve).
//
// QueryStats is the point-query sibling of EdgeAnalyticStats: where an edge
// analytic reports one stats block for one pass over the whole edge stream,
// a serving run reports the same aggregated SPMD/cache/pipeline block PLUS
// the per-query dimension — admission counters, a virtual end-to-end
// latency sample per answered query, and a QueryCost record attributing
// pipeline work (edges driven, remote fetches, virtual service seconds) to
// the individual query that caused it. Deriving from EdgeAnalyticStats is
// load-bearing: the stats-symmetry audit in tests/test_pipeline.cpp runs on
// the base block unchanged, so a counter added to CacheStats/CommStats
// cannot silently drop out of the serving layer's aggregation either.
// DESIGN.md §13.

#include <cstdint>
#include <vector>

#include "atlc/core/edge_pipeline.hpp"
#include "atlc/util/stats.hpp"

namespace atlc::core {

/// Cost attribution of one answered point query. Filled by diffing the
/// owner rank's monotonic pipeline counters around the query's execution,
/// so the fields price exactly the fetch/intersect work this query drove
/// through the engine's cost model (hot-cache hits drive none).
struct QueryCost {
  std::uint64_t id = 0;        ///< submission index in the input stream
  std::uint32_t epoch = 0;     ///< graph epoch the query executed against
  std::uint64_t edges_processed = 0;  ///< pipeline items this query drove
  std::uint64_t remote_edges = 0;     ///< of which needed a remote fetch
  double seconds = 0.0;  ///< virtual service time (excludes queue wait)
};

/// The stats block every serving run reports: the shared edge-analytic
/// aggregation (SPMD run record, per-rank + total cache counters, pipeline
/// totals) plus the query-level accounting.
struct QueryStats : EdgeAnalyticStats {
  std::uint64_t submitted = 0;  ///< queries in the input stream
  std::uint64_t answered = 0;   ///< admitted and executed
  std::uint64_t rejected = 0;   ///< admission-control overflow rejections

  /// Virtual end-to-end latency (epoch arrival -> completion, i.e. queue
  /// wait + service) of each answered query, in submission order.
  std::vector<double> latencies;

  /// Per-query cost records, in submission order (answered queries only).
  std::vector<QueryCost> per_query;

  /// Latency percentile over `latencies` (p in [0, 100]); 0 when no query
  /// was answered. p50/p99 are the serving scenario's headline metrics.
  [[nodiscard]] double latency_percentile(double p) const {
    return latencies.empty() ? 0.0 : util::percentile(latencies, p);
  }
};

}  // namespace atlc::core
