#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atlc/clampi/cache.hpp"
#include "atlc/clampi/config.hpp"
#include "atlc/core/dist_graph.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/intersect/cost_model.hpp"
#include "atlc/intersect/parallel.hpp"
#include "atlc/rma/network_model.hpp"

namespace atlc::core {

/// Sizing of the two CLaMPI caches (paper Section IV-D2): from a total
/// memory budget, C_offsets gets room for 0.4*|V| (start,end) pairs —
/// 6.4*|V| bytes with this engine's 64-bit offsets, capped at half the
/// budget — and C_adj takes the remainder (see paper_default in
/// src/core/lcc.cpp).
struct CacheSizing {
  std::uint64_t offsets_bytes = 1u << 20;
  std::uint64_t adj_bytes = 8u << 20;
  std::size_t offsets_slots = 0;  ///< 0 = derive via paper heuristics
  std::size_t adj_slots = 0;

  /// The paper's allocation rule for a given graph size and budget.
  static CacheSizing paper_default(VertexId num_vertices,
                                   std::uint64_t total_budget_bytes);
};

/// Configuration of the distributed LCC/TC engine (paper Algorithm 3).
struct EngineConfig {
  intersect::Method method = intersect::Method::Hybrid;

  /// Compute-cost model for virtual-time charging (see
  /// intersect/cost_model.hpp). Benches calibrate this once on startup.
  intersect::CostModel cost{};

  /// Enable CLaMPI caching (paper Section III-B). `cache_offsets` /
  /// `cache_adj` select which of the two windows is cached — paper Fig. 7
  /// studies each window's cache in isolation.
  bool use_cache = false;
  bool cache_offsets = true;
  bool cache_adj = true;
  CacheSizing cache_sizing{};
  /// Victim selection: LruPositional = CLaMPI default scores;
  /// UserScore = this paper's degree-centrality extension (Fig. 8).
  clampi::VictimPolicy victim_policy = clampi::VictimPolicy::LruPositional;
  bool cache_adaptive = false;

  /// Overlap the adjacency transfer of edge e_{i+1} with the intersection
  /// of edge e_i (paper Section III-A double buffering).
  bool double_buffer = true;

  /// Count only common neighbors k > j (upper-triangle de-duplication,
  /// paper Section II-C). Halves work for global TC; per-vertex LCC needs
  /// the full count, so LCC runs keep this false.
  bool upper_triangle_only = false;

  /// OpenMP-parallel intersection (paper Section III-C). Off by default in
  /// distributed runs: ranks are already threads in this simulation.
  bool parallel_intersect = false;
  intersect::ParallelConfig parallel{};

  /// Record, per target global vertex, how many remote reads it received
  /// (drives paper Figs. 1, 4, 5). Costs one counter array per rank.
  bool track_remote_reads = false;

  /// Snapshot the C_adj cache contents at the end of the compute phase
  /// (drives paper Fig. 5 right: entry sizes vs reuse).
  bool dump_cache_entries = false;
};

/// Per-rank outcome of the compute phase.
struct RankResult {
  std::vector<std::uint64_t> triangles;  ///< edge-centric t(v), local vertices
  std::vector<double> lcc;               ///< LCC scores, local vertices
  std::uint64_t edges_processed = 0;
  std::uint64_t remote_edges = 0;  ///< edges whose neighbor list was remote
  clampi::CacheStats offsets_cache;  ///< zeroed when caching is off
  clampi::CacheStats adj_cache;
  std::vector<std::uint64_t> remote_reads;  ///< per global vertex, optional
  std::vector<clampi::EntryInfo> adj_cache_entries;  ///< optional snapshot
};

/// Paper Algorithm 3 body for one rank: count triangles for every locally
/// owned vertex, reading remote adjacency lists through the two-get RMA
/// protocol (optionally cached), and derive LCC scores.
[[nodiscard]] RankResult compute_lcc_rank(rma::RankCtx& ctx,
                                          const DistGraph& dg,
                                          const EngineConfig& config);

/// Aggregated outcome of a full distributed run.
struct RunResult {
  std::vector<std::uint64_t> triangles;  ///< per global vertex
  std::vector<double> lcc;               ///< per global vertex
  std::uint64_t global_triangles = 0;    ///< distinct triangles (undirected)
  rma::Runtime::Result run;              ///< per-rank comm stats + clocks
  clampi::CacheStats offsets_cache_total;
  clampi::CacheStats adj_cache_total;
  std::uint64_t edges_processed = 0;
  std::uint64_t remote_edges = 0;
  std::vector<std::uint64_t> remote_reads;  ///< per global vertex, optional
  std::vector<clampi::EntryInfo> adj_cache_entries;  ///< all ranks, optional

  /// Fraction of processed edges requiring a remote adjacency fetch
  /// (paper Section IV-D2: 66% -> 98% for R-MAT S21 EF16, p=4 -> 64).
  [[nodiscard]] double remote_edge_fraction() const {
    return edges_processed
               ? static_cast<double>(remote_edges) /
                     static_cast<double>(edges_processed)
               : 0.0;
  }
};

/// Convenience driver: partition `g` over `ranks` simulated ranks, run the
/// engine on each, and gather per-vertex results. The entry point the
/// examples and benches use.
[[nodiscard]] RunResult run_distributed_lcc(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config = {},
    const rma::NetworkModel& net = {},
    graph::PartitionKind partition = graph::PartitionKind::Block1D);

/// Global triangle count via the same machinery (upper-triangle counting).
/// For undirected graphs returns the number of distinct triangles.
[[nodiscard]] std::uint64_t run_distributed_tc(
    const CSRGraph& g, std::uint32_t ranks, EngineConfig config = {},
    const rma::NetworkModel& net = {});

}  // namespace atlc::core
