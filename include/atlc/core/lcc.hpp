#pragma once

#include <cstdint>
#include <vector>

#include "atlc/clampi/cache.hpp"
#include "atlc/core/edge_pipeline.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/rma/network_model.hpp"

namespace atlc::core {

/// Per-rank outcome of the compute phase.
struct RankResult {
  std::vector<std::uint64_t> triangles;  ///< edge-centric t(v), local vertices
  std::vector<double> lcc;               ///< LCC scores, local vertices
  std::uint64_t edges_processed = 0;
  std::uint64_t remote_edges = 0;  ///< edges whose neighbor list was remote
  clampi::CacheStats offsets_cache;  ///< zeroed when caching is off
  clampi::CacheStats adj_cache;
  std::vector<std::uint64_t> remote_reads;  ///< per global vertex, optional
  std::vector<clampi::EntryInfo> adj_cache_entries;  ///< optional snapshot
};

/// Paper Algorithm 3 body for one rank, as an EdgePipeline kernel: count
/// triangles for every locally owned vertex, reading remote adjacency lists
/// through the two-get RMA protocol (optionally cached), and derive LCC
/// scores. The 3-argument overload builds its own pipeline and fills the
/// RankResult stats block; the 4-argument overload drives a caller-provided
/// pipeline and fills only the per-vertex outputs — its caller (the
/// run_edge_analytic driver) harvests the pipeline counters itself.
[[nodiscard]] RankResult compute_lcc_rank(rma::RankCtx& ctx,
                                          const DistGraph& dg,
                                          const EngineConfig& config);
[[nodiscard]] RankResult compute_lcc_rank(rma::RankCtx& ctx,
                                          const DistGraph& dg,
                                          const EngineConfig& config,
                                          EdgePipeline& pipeline);

/// Aggregated outcome of a full distributed run: the per-analytic outputs
/// plus the stats block every edge analytic shares (edge_pipeline.hpp).
struct RunResult : EdgeAnalyticStats {
  std::vector<std::uint64_t> triangles;  ///< per global vertex
  std::vector<double> lcc;               ///< per global vertex
  std::uint64_t global_triangles = 0;    ///< distinct triangles (undirected)
};

/// Convenience driver: partition `g` over `ranks` simulated ranks, run the
/// engine on each, and gather per-vertex results. The entry point the
/// examples and benches use.
[[nodiscard]] RunResult run_distributed_lcc(
    const CSRGraph& g, std::uint32_t ranks, const EngineConfig& config = {},
    const rma::NetworkModel& net = {},
    graph::PartitionKind partition = graph::PartitionKind::Block1D);

/// Global triangle count via the same machinery. For undirected graphs
/// returns the number of distinct triangles. Two de-duplication paths:
/// the paper's upper-triangle floor trick (default), or — when
/// `config.orient_dodg` is set — a degree-ordered orientation pass
/// (graph::orient_dodg) that enumerates each triangle exactly once with no
/// per-edge trimming and caps every row at O(sqrt(m)) (DESIGN.md §9).
[[nodiscard]] std::uint64_t run_distributed_tc(
    const CSRGraph& g, std::uint32_t ranks, EngineConfig config = {},
    const rma::NetworkModel& net = {},
    graph::PartitionKind partition = graph::PartitionKind::Block1D);

/// Full-record variant of run_distributed_tc: same counting paths, but
/// returns the whole RunResult (makespan, comm/cache stats, per-vertex
/// counts) — the `dodg` bench scenario compares the paths on it. Note that
/// on the DODG path `triangles[v]` is the count of triangles whose
/// (deg, id)-least edge starts at v, NOT the edge-centric t(v);
/// `global_triangles` is exact either way.
[[nodiscard]] RunResult run_distributed_tc_result(
    const CSRGraph& g, std::uint32_t ranks, EngineConfig config = {},
    const rma::NetworkModel& net = {},
    graph::PartitionKind partition = graph::PartitionKind::Block1D);

}  // namespace atlc::core
