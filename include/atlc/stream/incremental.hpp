#pragma once

// Incremental triangle maintenance over update batches: the streaming
// formulation ΔT = Σ |N(u) ∩ N(v)| over the batch's effective edges
// (Tangwongsan et al.), evaluated through the same depth-k EdgePipeline
// the static analytics use — each update edge costs one (cached) remote
// adjacency fetch plus one intersection instead of a full recount.
// DESIGN.md §7 covers the two-phase (deletions-before, insertions-after)
// discipline and the intra-batch min-edge attribution that keeps triangles
// with several in-batch edges from being double-counted.

#include <cstdint>
#include <map>
#include <vector>

#include "atlc/core/edge_pipeline.hpp"
#include "atlc/stream/batch_applier.hpp"

namespace atlc::stream {

/// Triangle deltas attributed by one rank while processing one batch.
/// `per_vertex` holds EDGE-CENTRIC t(v) deltas (±2 per distinct triangle
/// per corner, the convention of core's `triangles` arrays) keyed by
/// GLOBAL vertex id; `distinct_triangles` is this rank's share of ΔT.
struct DeltaSet {
  std::map<VertexId, std::int64_t> per_vertex;
  std::int64_t distinct_triangles = 0;
};

/// Deltas after owner routing: the (local vertex, delta) pairs this rank
/// must fold into its t(v) array, plus the globally reduced ΔT.
struct RoutedDeltas {
  std::vector<std::pair<VertexId, std::int64_t>> local;  ///< (lv, delta)
  std::int64_t global_delta = 0;
};

/// Per-rank incremental counting kernel. Stateless between batches; the
/// pipeline it drives persists so the CLaMPI caches keep their (epoch-
/// checked) contents across batches.
class IncrementalCounter {
 public:
  IncrementalCounter(rma::RankCtx& ctx, const core::DistGraph& dg,
                     core::EdgePipeline& pipeline,
                     const core::EngineConfig& config)
      : ctx_(&ctx), dg_(&dg), pipeline_(&pipeline), config_(&config) {}

  /// Count the triangles destroyed by `eff`'s deletions against the
  /// CURRENT graph state — must run BEFORE the batch is applied, while
  /// every destroyed triangle is still observable. Accumulates into `out`.
  void count_deletions(const EffectiveBatch& eff, DeltaSet& out) {
    count(eff, Op::Delete, out);
  }

  /// Count the triangles created by `eff`'s insertions against the CURRENT
  /// graph state — must run AFTER the batch is applied (and the windows
  /// refreshed), when every created triangle is observable.
  void count_insertions(const EffectiveBatch& eff, DeltaSet& out) {
    count(eff, Op::Insert, out);
  }

  /// Collective: route `deltas` to the owner rank of each vertex over the
  /// all_to_all substrate and reduce ΔT globally.
  [[nodiscard]] RoutedDeltas route(const DeltaSet& deltas);

 private:
  void count(const EffectiveBatch& eff, Op which, DeltaSet& out);

  rma::RankCtx* ctx_;
  const core::DistGraph* dg_;
  core::EdgePipeline* pipeline_;
  const core::EngineConfig* config_;
};

}  // namespace atlc::stream
