#pragma once

// Batched dynamic-graph update primitives (the `atlc::stream` subsystem's
// vocabulary types). A Batch is an ordered list of edge insertions and
// deletions applied atomically between two read epochs; normalize()
// collapses it to its net per-edge effect so the distributed appliers and
// the single-node reference agree on sequential semantics. See DESIGN.md §7.

#include <cstdint>
#include <vector>

#include "atlc/graph/csr.hpp"
#include "atlc/graph/edge_list.hpp"
#include "atlc/graph/types.hpp"

namespace atlc::stream {

using graph::VertexId;

enum class Op : std::uint8_t { Insert, Delete };

/// One requested update against the undirected graph. Endpoint order is
/// irrelevant (the update applies to both stored orientations).
struct EdgeUpdate {
  VertexId u = 0;
  VertexId v = 0;
  Op op = Op::Insert;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// An ordered batch of updates with sequential (in-order) semantics.
using Batch = std::vector<EdgeUpdate>;

/// A batch entry after normalization: canonical endpoints (a < b) and the
/// NET operation for that edge within the batch.
struct CanonicalUpdate {
  VertexId a = 0;
  VertexId b = 0;
  Op op = Op::Insert;

  friend bool operator==(const CanonicalUpdate&,
                         const CanonicalUpdate&) = default;
};

/// Canonical-edge hash key: both endpoints packed into one word. Valid for
/// a < b (canonical form), which also keeps uint64 ordering equal to
/// lexicographic (a, b) ordering — the property the intra-batch
/// min-new-edge triangle attribution relies on.
[[nodiscard]] constexpr std::uint64_t canonical_key(VertexId a, VertexId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Collapse a batch to its net per-edge effect: canonicalize endpoints,
/// drop self loops, and keep only the LAST op targeting each edge (the
/// sequential outcome — e.g. insert-then-delete of an absent edge nets to
/// a delete, which presence adjudication later turns into a no-op).
/// Output is sorted by (a, b) and contains each edge at most once; every
/// rank computes the identical normalization deterministically.
[[nodiscard]] std::vector<CanonicalUpdate> normalize(const Batch& batch);

/// Reference application with the same sequential semantics, used to
/// validate the incremental engine: updates both stored orientations of an
/// undirected edge list (insert skips present edges, delete skips absent
/// ones) and leaves the vertex count unchanged.
void apply_to_edge_list(graph::EdgeList& edges, const Batch& batch);

/// Deterministic synthetic update workload for benches, tools and tests.
struct WorkloadConfig {
  std::size_t num_batches = 4;
  std::size_t batch_size = 256;
  /// Fraction of updates that are insertions; the rest delete a currently
  /// present edge (tracked across batches, so deletions are almost always
  /// effective). A small tail of duplicate/no-op updates is injected on
  /// purpose to keep the dedup paths honest.
  double insert_fraction = 0.7;
  std::uint64_t seed = 1;
};

/// Generate `num_batches` batches against (the evolving state of) `g`.
[[nodiscard]] std::vector<Batch> generate_batches(const graph::CSRGraph& g,
                                                  const WorkloadConfig& cfg);

}  // namespace atlc::stream
