#pragma once

// Distributed batch application: adjudicate a batch's net ops against the
// live partition, replicate the effective sets over the TriC all_to_all
// substrate, and rebuild only the touched CSR rows before republishing the
// partition's windows (collective refresh_window → epoch bump → CLaMPI
// epoch invalidation). DESIGN.md §7 documents the protocol.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "atlc/core/dist_graph.hpp"
#include "atlc/core/engine_config.hpp"
#include "atlc/stream/update.hpp"

namespace atlc::stream {

/// The presence-adjudicated ops of one batch, identical on every rank
/// after the exchange. `ops` is sorted by canonical key and contains each
/// edge at most once; `inserted`/`deleted` index the same ops for the O(1)
/// membership probes the intra-batch triangle attribution performs.
struct EffectiveBatch {
  std::vector<CanonicalUpdate> ops;
  std::unordered_set<std::uint64_t> inserted;
  std::unordered_set<std::uint64_t> deleted;

  [[nodiscard]] bool empty() const { return ops.empty(); }
  [[nodiscard]] std::uint64_t insertions() const { return inserted.size(); }
  [[nodiscard]] std::uint64_t deletions() const { return deleted.size(); }
};

/// The sorted, deduplicated set of vertices whose CSR rows an effective
/// batch rebuilds (both endpoints of every effective op) — the epoch
/// interleaving hook consumers key invalidation on: apply_to_rows touches
/// exactly these rows, and the serving layer's HotVertexCache combines
/// this set with a pre-batch neighborhood test (DESIGN.md §13). Identical
/// on every rank, since the effective sets are replicated.
[[nodiscard]] std::vector<graph::VertexId> touched_vertices(
    const EffectiveBatch& eff);

/// Per-rank batch applier. Owns no graph state; mutates the rank's
/// DistGraph rows in place and republishes its windows.
class BatchApplier {
 public:
  BatchApplier(rma::RankCtx& ctx, core::DistGraph& dg,
               const core::EngineConfig& config)
      : ctx_(&ctx), dg_(&dg), config_(&config) {}

  /// Collective step 1: normalize the batch, adjudicate each op whose
  /// canonical first endpoint this rank owns (insert is effective iff the
  /// edge is absent, delete iff present — one sorted-row binary search per
  /// op, charged to the virtual clock), and exchange verdicts so every
  /// rank returns the identical effective sets.
  [[nodiscard]] EffectiveBatch adjudicate(const Batch& batch);

  /// Collective step 2: rebuild the local CSR rows touched by `eff` (both
  /// endpoints of every effective edge), fold the ops touching replicated
  /// hubs into this rank's HubReplica copy (the effective sets are already
  /// replicated, so no extra traffic — DESIGN.md §8), and republish
  /// w_offsets / w_adj via refresh_window, advancing both window epochs by
  /// one. Callers must have synchronised (barrier) after the last read of
  /// the pre-batch state. Returns the number of local rows rebuilt.
  std::uint64_t apply_to_rows(const EffectiveBatch& eff);

 private:
  rma::RankCtx* ctx_;
  core::DistGraph* dg_;
  const core::EngineConfig* config_;
};

}  // namespace atlc::stream
