#pragma once

// The `atlc::stream` entry point: maintain exact global triangle counts
// and per-vertex LCC over batches of edge insertions/deletions against a
// distributed graph, incrementally — each batch costs O(|batch|)
// adjacency intersections through the cached EdgePipeline instead of a
// full O(|E|) recount. The rma windows are republished per mutating batch
// (refresh_window), and CLaMPI serves the new epoch while recycling stale
// entries (stale-hit-as-miss). Undirected graphs only. DESIGN.md §7.

#include <cstdint>
#include <span>
#include <vector>

#include "atlc/clampi/config.hpp"
#include "atlc/core/engine_config.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/rma/network_model.hpp"
#include "atlc/rma/runtime.hpp"
#include "atlc/stream/update.hpp"

namespace atlc::stream {

struct StreamOptions {
  /// Engine configuration for the cold pass and every batch. Hub-adjacency
  /// replication (engine.hub_fraction > 0) is fully supported: replicas are
  /// built at the cold pass and maintained per batch by BatchApplier.
  core::EngineConfig engine{};
  rma::NetworkModel net{};
  /// Vertex distribution, any of the three kinds (docs/partitioning.md):
  /// Block1D (paper default, contiguous n/p blocks), Cyclic1D (owner =
  /// v mod p, balance-improving on skew), or DegreeBalanced1D (contiguous
  /// ranges cut by degree prefix sum, ~|E|/p edge endpoints per rank —
  /// built from the INITIAL graph's degrees; batches mutate rows but never
  /// re-cut the partition). Per-batch results are identical for all kinds.
  graph::PartitionKind partition = graph::PartitionKind::Block1D;
  /// Record full per-vertex triangle/LCC snapshots after every batch
  /// (tests compare each against a from-scratch reference recount). Costs
  /// one |V| copy per batch; leave off outside validation.
  bool record_snapshots = false;
};

/// Per-batch accounting, filled after the batch committed.
struct BatchOutcome {
  std::uint64_t raw_updates = 0;          ///< updates in the input batch
  std::uint64_t effective_insertions = 0; ///< net inserts that changed the graph
  std::uint64_t effective_deletions = 0;
  std::uint64_t rows_rebuilt = 0;         ///< CSR rows rewritten, all ranks
  std::int64_t triangles_delta = 0;       ///< ΔT in distinct triangles
  std::uint64_t global_triangles = 0;     ///< count after this batch
  double makespan = 0.0;                  ///< virtual seconds for this batch
  std::vector<std::uint64_t> triangles;   ///< snapshot (record_snapshots)
  std::vector<double> lcc;                ///< snapshot (record_snapshots)
};

/// Final state plus the whole-run record. Per-vertex arrays use the same
/// conventions as core::RunResult (edge-centric t(v); LCC per Eq. 2).
struct StreamResult {
  std::vector<std::uint64_t> triangles;
  std::vector<double> lcc;
  std::uint64_t global_triangles = 0;
  double initial_makespan = 0.0;  ///< virtual time of the cold full count
  double stream_makespan = 0.0;   ///< virtual time across all batches
  rma::Runtime::Result run;
  clampi::CacheStats offsets_cache_total;  ///< zeroed when caching is off
  clampi::CacheStats adj_cache_total;
  std::uint64_t edges_processed = 0;  ///< kernel invocations, all phases
  std::uint64_t remote_edges = 0;
  std::vector<BatchOutcome> batches;
};

/// Run the streaming engine: cold full LCC/TC count of `g`, then apply
/// each batch in order, maintaining counts incrementally. Undirected
/// input only; `options.engine.upper_triangle_only` is forced off (LCC
/// needs full per-vertex counts).
[[nodiscard]] StreamResult run_streaming_lcc(
    const graph::CSRGraph& g, std::span<const Batch> batches,
    std::uint32_t ranks, const StreamOptions& options = {});

}  // namespace atlc::stream
