#pragma once

// HotVertexCache: a traffic-skew hotspot cache for the serving layer,
// adapted from CHIME's IdxCache (SNIPPETS.md snippet 1; DESIGN.md §13).
//
// Set-associative buckets keyed by (vertex, query kind); each entry
// memoizes a finished answer (an LCC value or a top-k recommendation list)
// plus a saturating frequency counter. Eviction is the IdxCache
// frequency-decrement discipline made deterministic: an insert into a full
// bucket finds the minimum-frequency victim (lowest slot index on ties)
// and *decrements* it — only a victim already at frequency zero is
// actually replaced, otherwise the incoming entry is rejected. A hot entry
// therefore needs several cold probes-worth of pressure before it falls
// out, which is exactly the behaviour that protects Zipf-head vertices.
//
// Consistency reuses the CLaMPI stale-hit-as-miss discipline from the
// rma/clampi windows: entries are epoch-stamped, the engine marks entries
// whose memo a committed batch may have changed (endpoint-or-neighbor
// predicate, DESIGN.md §13), and a probe that lands on a stale entry
// counts a stale miss and erases it. The cache never returns data from a
// previous epoch, so hot-cache on/off is answer-invariant — the parity
// matrix in tests/test_serve.cpp enforces that, and the fuzz test in the
// same file drives this class against a map-based reference model.
//
// Distinct from the two resident tiers below it: HubReplica (PR 5) is
// degree-skew keyed and replicates raw rows at build time; the CLaMPI
// window cache is access-pattern keyed and caches remote segments.
// HotVertexCache is *traffic*-skew keyed and caches finished answers.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "atlc/serve/query.hpp"

namespace atlc::serve {

struct HotCacheConfig {
  std::size_t entries = 0;  ///< total slots; 0 disables the cache
  std::size_t ways = 4;     ///< bucket associativity (clamped to entries)
  std::int32_t max_freq = 64;  ///< frequency saturation cap
};

struct HotCacheStats {
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        ///< key absent (cold or evicted)
  std::uint64_t stale_misses = 0;  ///< entry present but batch-invalidated
  std::uint64_t short_misses = 0;  ///< top-k memo shallower than requested
  std::uint64_t inserts = 0;       ///< new entry placed in an empty slot
  std::uint64_t updates = 0;       ///< existing key refreshed in place
  std::uint64_t evictions = 0;     ///< zero-frequency victim replaced
  std::uint64_t decrements = 0;    ///< victim decremented, insert rejected
  std::uint64_t rejects = 0;       ///< inserts the full bucket turned away
  std::uint64_t invalidated = 0;   ///< entries marked stale by batches

  HotCacheStats& operator+=(const HotCacheStats& o);

  [[nodiscard]] double hit_rate() const {
    return probes == 0 ? 0.0 : static_cast<double>(hits) /
                                   static_cast<double>(probes);
  }
};

class HotVertexCache {
 public:
  explicit HotVertexCache(const HotCacheConfig& config);

  struct Probe {
    bool hit = false;
    double lcc = 0.0;
    /// First `k` memoized recommendations; valid until the next non-const
    /// call on the cache.
    std::span<const Recommendation> topk;
  };

  [[nodiscard]] bool enabled() const { return num_buckets_ != 0; }

  /// Look up (v, kind). A TopK probe hits only when the memo is at least
  /// `k` deep (it then serves the first k); an Lcc probe ignores `k`.
  [[nodiscard]] Probe probe(VertexId v, QueryKind kind, std::uint32_t k);

  void insert_lcc(VertexId v, double lcc);
  void insert_topk(VertexId v, QueryKind kind, std::uint32_t k,
                   std::vector<Recommendation> topk);

  /// Stamp subsequently inserted entries with `epoch` (after a batch
  /// commit). Entries from earlier epochs stay valid unless invalidated.
  void begin_epoch(std::uint32_t epoch) { epoch_ = epoch; }

  /// Mark every live entry whose vertex satisfies `stale_pred` as stale.
  /// Called between batch adjudication and row application so the
  /// predicate can consult pre-batch neighborhoods (DESIGN.md §13). The
  /// predicate is invoked once per live unstale entry; `probes_out`, when
  /// non-null, accrues the number of invocations for cost charging.
  template <typename Pred>
  void invalidate_if(Pred&& stale_pred, std::uint64_t* probes_out = nullptr) {
    for (Entry& e : slots_) {
      if (!e.used || e.stale) continue;
      if (probes_out != nullptr) ++*probes_out;
      if (stale_pred(e.v)) {
        e.stale = true;
        ++stats_.invalidated;
      }
    }
  }

  /// Convenience form over a sorted, deduplicated vertex list.
  void invalidate(std::span<const VertexId> sorted_vertices);

  [[nodiscard]] const HotCacheStats& stats() const { return stats_; }
  [[nodiscard]] const HotCacheConfig& config() const { return config_; }
  [[nodiscard]] std::size_t live_entries() const;

 private:
  struct Entry {
    VertexId v = 0;
    QueryKind kind = QueryKind::Lcc;
    std::uint32_t k = 0;      ///< memo depth for TopK kinds
    std::uint32_t epoch = 0;  ///< stamp at insert time
    std::int32_t freq = 0;
    bool used = false;
    bool stale = false;
    double lcc = 0.0;
    std::vector<Recommendation> topk;
  };

  [[nodiscard]] std::size_t bucket_of(VertexId v, QueryKind kind) const;
  void insert_entry(VertexId v, QueryKind kind, std::uint32_t k, double lcc,
                    std::vector<Recommendation> topk);

  HotCacheConfig config_;
  std::size_t num_buckets_ = 0;
  std::vector<Entry> slots_;
  HotCacheStats stats_;
  std::uint32_t epoch_ = 0;
};

}  // namespace atlc::serve
