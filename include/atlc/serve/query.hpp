#pragma once

// Vocabulary types of the serving layer (DESIGN.md §13).
//
// A serving workload is a sequence of ServeEpochs. Epoch e's queries arrive
// together at the epoch-open barrier (their virtual arrival time), are
// answered against the graph state with update batches 0..e-1 committed,
// and then epoch e's own batch commits — queries never observe partially
// applied batches. That epoch-consistency contract is what the parity
// matrix in tests/test_serve.cpp pins down: every answer must be
// bit-identical to a from-scratch run of the same analytic on the epoch's
// snapshot.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atlc/graph/types.hpp"
#include "atlc/stream/update.hpp"

namespace atlc::serve {

using graph::VertexId;

enum class QueryKind : std::uint8_t {
  Lcc,            ///< local clustering coefficient of v
  TopKCommon,     ///< top-k friend-of-friend candidates by common neighbors
  TopKAdamicAdar  ///< top-k candidates by Adamic–Adar (1/ln deg weighting)
};

inline constexpr std::size_t kNumQueryKinds = 3;

[[nodiscard]] const char* query_kind_name(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::Lcc;
  VertexId v = 0;
  std::uint32_t k = 8;  ///< result size for TopK kinds; ignored for Lcc
};

/// One ranked candidate of a TopK query. Ordering contract: score
/// descending, vertex id ascending on ties — a total order, so answers are
/// unique and byte-comparable.
struct Recommendation {
  VertexId v = 0;
  double score = 0.0;

  friend bool operator==(const Recommendation&, const Recommendation&) =
      default;
};

struct QueryAnswer {
  std::uint64_t id = 0;  ///< submission index in the input stream
  QueryKind kind = QueryKind::Lcc;
  VertexId v = 0;
  std::uint32_t k = 0;
  std::uint32_t epoch = 0;  ///< graph epoch the query was answered against
  bool rejected = false;    ///< dropped by admission control, no answer
  bool hot_hit = false;     ///< served from the HotVertexCache memo
  double lcc = 0.0;                   ///< Lcc kinds
  std::vector<Recommendation> topk;   ///< TopK kinds
  double arrival = 0.0;     ///< virtual time: epoch-open barrier
  double completion = 0.0;  ///< virtual time: answer materialized

  /// Virtual end-to-end latency: queue wait at the owner rank + service.
  [[nodiscard]] double latency() const { return completion - arrival; }
};

/// One serving epoch: the queries that arrived since the previous batch
/// committed, then the update batch that closes the epoch. Either side may
/// be empty (pure-query or pure-update epochs).
struct ServeEpoch {
  std::vector<Query> queries;
  stream::Batch updates;
};

}  // namespace atlc::serve
