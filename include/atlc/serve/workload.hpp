#pragma once

// Synthetic serving workloads: seeded Zipf-skewed point-query streams
// interleaved with stream::generate_batches update batches (DESIGN.md §13).
//
// Query traffic skew is decoupled from degree skew on purpose: the Zipf
// rank-to-vertex mapping is a seeded permutation, so the hottest query
// vertex is usually NOT the highest-degree vertex. That is the regime
// where HotVertexCache earns its keep over the degree-keyed HubReplica
// tier — and the regime CHIME's IdxCache was designed for.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atlc/graph/csr.hpp"
#include "atlc/serve/query.hpp"
#include "atlc/util/rng.hpp"

namespace atlc::serve {

/// Zipf(s) sampler over [0, n): P(rank i) ∝ 1/(i+1)^s, with a seeded
/// permutation mapping ranks to vertex ids. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(VertexId n, double skew, std::uint64_t seed);

  [[nodiscard]] VertexId sample(util::Xoshiro256& rng) const;

  /// The vertex receiving Zipf rank `r` (r = 0 is the hottest).
  [[nodiscard]] VertexId vertex_of_rank(std::size_t r) const {
    return vertex_of_rank_[r];
  }

 private:
  std::vector<double> cdf_;
  std::vector<VertexId> vertex_of_rank_;
};

struct QueryWorkloadConfig {
  std::size_t num_epochs = 4;
  std::size_t queries_per_epoch = 256;
  double zipf_skew = 1.0;  ///< 0 = uniform traffic
  std::uint32_t topk = 8;
  /// Query-kind mix: P(Lcc) = lcc_fraction, P(TopKCommon) =
  /// common_fraction, remainder TopKAdamicAdar.
  double lcc_fraction = 0.5;
  double common_fraction = 0.3;
  /// Update side, forwarded to stream::generate_batches. batch_size = 0
  /// yields pure-query epochs.
  std::size_t batch_size = 64;
  double insert_fraction = 0.7;
  std::uint64_t seed = 1;
};

/// Deterministic function of (g, cfg): same inputs, same stream, on every
/// rank count — the basis of the admission-determinism test.
[[nodiscard]] std::vector<ServeEpoch> generate_query_stream(
    const graph::CSRGraph& g, const QueryWorkloadConfig& cfg);

}  // namespace atlc::serve
