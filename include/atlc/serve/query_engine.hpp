#pragma once

// QueryEngine: the resident serving layer (ROADMAP item 3, DESIGN.md §13).
//
// Runs a virtual-time-stamped stream of ServeEpochs — point queries
// interleaved with stream::Batch updates — on top of the PR 4 streaming
// engine. Per epoch: admitted queries are answered at their owner ranks by
// driving (lv, neighbor) work lists through EdgePipeline::run_over (so
// every fetch and intersection is priced by the engine's cost model and
// depth-k prefetch ring), then the epoch's batch is adjudicated, the
// HotVertexCache is invalidated against the pre-batch neighborhoods, and
// BatchApplier commits the rows. Epoch-consistency contract: epoch e's
// answers reflect batches 0..e-1 exactly — never partial state — and are
// bit-identical across rank counts and hot-cache settings (the parity
// matrix in tests/test_serve.cpp enforces this against answer_reference).
//
// Admission control is deterministic by construction: the per-epoch bound
// is applied to the submission order of the input stream, a pure function
// every rank evaluates identically, so the accept/reject sequence is
// byte-identical at every rank count (tests/test_serve.cpp pins this).

#include <cstdint>
#include <span>
#include <vector>

#include "atlc/core/engine_config.hpp"
#include "atlc/core/query_stats.hpp"
#include "atlc/graph/csr.hpp"
#include "atlc/graph/partition.hpp"
#include "atlc/rma/network_model.hpp"
#include "atlc/serve/hot_cache.hpp"
#include "atlc/serve/query.hpp"

namespace atlc::serve {

struct ServeOptions {
  core::EngineConfig engine{};
  rma::NetworkModel net{};
  /// 1D partitions only: point queries need whole adjacency rows.
  graph::PartitionKind partition = graph::PartitionKind::Block1D;
  /// Bounded in-flight queue per epoch window: of each epoch's queries, the
  /// first `admission_capacity` (submission order) are admitted, the rest
  /// rejected with `QueryAnswer::rejected` set. 0 rejects everything
  /// (updates still apply).
  std::size_t admission_capacity = 1024;
  /// entries = 0 (default) disables the hot cache — answers are unchanged
  /// either way, only virtual latencies and hit counters move.
  HotCacheConfig hot_cache{};
};

/// Per-epoch accounting, filled on rank 0 at each epoch's commit barrier.
struct EpochOutcome {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t hot_hits = 0;  ///< summed over ranks
  std::uint64_t effective_insertions = 0;
  std::uint64_t effective_deletions = 0;
  std::uint64_t rows_rebuilt = 0;       ///< summed over ranks
  double query_makespan = 0.0;   ///< epoch open -> slowest rank done serving
  double update_makespan = 0.0;  ///< query barrier -> batch commit
};

struct ServeResult {
  /// One answer per submitted query, in submission order (rejected ones
  /// carry only identity + timing).
  std::vector<QueryAnswer> answers;
  core::QueryStats stats;
  HotCacheStats hot_cache_total;  ///< field-wise sum of hot_cache_ranks
  std::vector<HotCacheStats> hot_cache_ranks;
  std::vector<EpochOutcome> epochs;
  double build_makespan = 0.0;  ///< graph build + window setup
  double serve_makespan = 0.0;  ///< epoch loop (queries + updates)
};

class QueryEngine {
 public:
  explicit QueryEngine(const graph::CSRGraph& g, ServeOptions options = {});

  /// Serve the stream over `ranks` simulated ranks. Rejects directed
  /// graphs and Grid2D partitions (ATLC_CHECK).
  [[nodiscard]] ServeResult run(std::span<const ServeEpoch> epochs,
                                std::uint32_t ranks) const;

  [[nodiscard]] const ServeOptions& options() const { return options_; }

 private:
  const graph::CSRGraph* g_;
  ServeOptions options_;
};

/// Convenience wrapper: QueryEngine(g, options).run(epochs, ranks).
[[nodiscard]] ServeResult run_query_stream(const graph::CSRGraph& g,
                                           std::span<const ServeEpoch> epochs,
                                           std::uint32_t ranks,
                                           const ServeOptions& options = {});

/// Single-node from-scratch answer of one query against `g`, sharing the
/// engine's scoring helpers so floating-point accumulation order is
/// identical — the parity matrix compares engine answers to this
/// bit-for-bit at each query's epoch snapshot. No virtual time involved.
[[nodiscard]] QueryAnswer answer_reference(const graph::CSRGraph& g,
                                           const Query& q);

}  // namespace atlc::serve
